// Package cbi_bench benchmarks the statistical debugging pipeline: one
// benchmark per paper table (the analysis that regenerates it) plus
// infrastructure benchmarks for the interpreter, instrumentation
// runtime, samplers, and the core algorithm.
//
// Corpora are generated once per benchmark binary invocation and
// shared; the benchmarks time the analysis, which is what varies
// between algorithm designs.
package cbi_bench

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbi/internal/collector"
	"cbi/internal/core"
	"cbi/internal/experiments"
	"cbi/internal/harness"
	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/lang"
	"cbi/internal/logreg"
	"cbi/internal/report"
	"cbi/internal/sampling"
	"cbi/internal/subjects"
	"cbi/internal/vm"
)

var (
	runnerOnce sync.Once
	benchR     *experiments.Runner
)

// runner returns a shared experiment runner with a smoke-scale corpus.
func runner() *experiments.Runner {
	runnerOnce.Do(func() {
		benchR = experiments.NewRunner(experiments.Scale{Runs: 1500, TrainingRuns: 200})
	})
	return benchR
}

// warm forces the corpus for a subject/mode into the cache so the
// benchmark loop times only the analysis.
func warm(b *testing.B, name string, mode harness.Mode) *harness.Result {
	b.Helper()
	res := runner().Result(name, mode)
	b.ResetTimer()
	return res
}

func BenchmarkTable1Ranking(b *testing.B) {
	warm(b, "moss", harness.SampleUniform)
	for i := 0; i < b.N; i++ {
		experiments.RunTable1(runner(), 8)
	}
}

func BenchmarkTable2Summary(b *testing.B) {
	for _, n := range []string{"moss", "ccrypt", "bc", "exif", "rhythmbox"} {
		runner().Result(n, harness.SampleUniform)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable2(runner())
	}
}

func BenchmarkTable3Validation(b *testing.B) {
	warm(b, "moss", harness.SampleNonuniform)
	for i := 0; i < b.N; i++ {
		experiments.RunTable3(runner())
	}
}

func BenchmarkTable4Ccrypt(b *testing.B) {
	warm(b, "ccrypt", harness.SampleUniform)
	for i := 0; i < b.N; i++ {
		experiments.RunSmallTable(runner(), "ccrypt")
	}
}

func BenchmarkTable5Bc(b *testing.B) {
	warm(b, "bc", harness.SampleUniform)
	for i := 0; i < b.N; i++ {
		experiments.RunSmallTable(runner(), "bc")
	}
}

func BenchmarkTable6Exif(b *testing.B) {
	warm(b, "exif", harness.SampleUniform)
	for i := 0; i < b.N; i++ {
		experiments.RunSmallTable(runner(), "exif")
	}
}

func BenchmarkTable7Rhythmbox(b *testing.B) {
	warm(b, "rhythmbox", harness.SampleUniform)
	for i := 0; i < b.N; i++ {
		experiments.RunSmallTable(runner(), "rhythmbox")
	}
}

func BenchmarkTable8MinRuns(b *testing.B) {
	for _, n := range []string{"moss", "ccrypt", "bc", "exif", "rhythmbox"} {
		runner().Result(n, harness.SampleUniform)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable8(runner())
	}
}

func BenchmarkTable9LogReg(b *testing.B) {
	res := warm(b, "moss", harness.SampleUniform)
	for i := 0; i < b.N; i++ {
		logreg.Train(res.Set, logreg.Options{Lambda: 0.005, Iters: 50, Step: 0.5})
	}
}

func BenchmarkStackClustering(b *testing.B) {
	warm(b, "moss", harness.SampleUniform)
	for i := 0; i < b.N; i++ {
		experiments.RunStackStudy(runner(), "moss")
	}
}

// ---- Infrastructure benchmarks ----

// BenchmarkInterpMossRun measures raw (uninstrumented) interpreter
// throughput on the MOSS analog.
func BenchmarkInterpMossRun(b *testing.B) {
	s := subjects.Moss()
	vm := interp.New(s.Program(true), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Run(s.Input(int64(i % 4096)))
	}
}

// BenchmarkInstrumentedRun measures the per-run cost of instrumentation
// under the three sampling policies — the paper's core performance
// claim is that sparse sampling keeps overhead low.
func BenchmarkInstrumentedRun(b *testing.B) {
	s := subjects.Moss()
	prog := s.Program(true)
	plan := instrument.BuildPlan(prog)
	cases := []struct {
		name    string
		sampler sampling.Sampler
	}{
		{"never", sampling.Never{}},
		{"uniform-1pct", sampling.NewUniform(0.01)},
		{"uniform-100pct", sampling.NewUniform(1.0)},
		{"always", sampling.Always{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			rt := instrument.NewRuntime(plan, c.sampler)
			vm := interp.New(prog, rt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.BeginRun(int64(i) + 1)
				vm.Run(s.Input(int64(i % 4096)))
				rt.Snapshot(false)
			}
		})
	}
}

// BenchmarkEngines compares the tree-walking interpreter with the
// bytecode VM on uninstrumented MOSS runs.
func BenchmarkEngines(b *testing.B) {
	s := subjects.Moss()
	prog := s.Program(true)
	b.Run("tree", func(b *testing.B) {
		eng := interp.New(prog, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Run(s.Input(int64(i % 4096)))
		}
	})
	b.Run("vm", func(b *testing.B) {
		eng := vm.New(vm.MustCompile(prog), nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Run(s.Input(int64(i % 4096)))
		}
	})
}

// BenchmarkVMInstrumented measures the sampled instrumentation cost on
// the compiled backend.
func BenchmarkVMInstrumented(b *testing.B) {
	s := subjects.Moss()
	prog := s.Program(true)
	plan := instrument.BuildPlan(prog)
	mod := vm.MustCompile(prog)
	for _, c := range []struct {
		name    string
		sampler sampling.Sampler
	}{
		{"never", sampling.Never{}},
		{"uniform-1pct", sampling.NewUniform(0.01)},
		{"always", sampling.Always{}},
	} {
		b.Run(c.name, func(b *testing.B) {
			rt := instrument.NewRuntime(plan, c.sampler)
			eng := vm.New(mod, rt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.BeginRun(int64(i) + 1)
				eng.Run(s.Input(int64(i % 4096)))
				rt.Snapshot(false)
			}
		})
	}
}

// BenchmarkSamplerDecision measures a single sampling decision.
func BenchmarkSamplerDecision(b *testing.B) {
	u := sampling.NewUniform(0.01)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if u.Sample(0) {
			n++
		}
	}
	_ = n
}

// BenchmarkAggregate measures one full-corpus aggregation pass.
func BenchmarkAggregate(b *testing.B) {
	res := warm(b, "moss", harness.SampleUniform)
	in := res.CoreInput()
	for i := 0; i < b.N; i++ {
		core.Aggregate(in)
	}
}

// BenchmarkEliminate measures the complete cause-isolation algorithm.
func BenchmarkEliminate(b *testing.B) {
	res := warm(b, "moss", harness.SampleUniform)
	in := res.CoreInput()
	for i := 0; i < b.N; i++ {
		core.Eliminate(in, core.ElimOptions{})
	}
}

// BenchmarkBuildPlan measures instrumentation planning.
func BenchmarkBuildPlan(b *testing.B) {
	prog := subjects.Moss().Program(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instrument.BuildPlan(prog)
	}
}

// BenchmarkParseResolve measures the MiniC frontend.
func BenchmarkParseResolve(b *testing.B) {
	src := subjects.Moss().Source(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := lang.Parse("moss.mc", src)
		if err != nil {
			b.Fatal(err)
		}
		if err := lang.Resolve(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReportEncodeBinary measures wire-format encoding throughput
// over a full MOSS corpus.
func BenchmarkReportEncodeBinary(b *testing.B) {
	res := warm(b, "moss", harness.SampleUniform)
	var buf bytes.Buffer
	if err := res.Set.MarshalBinary(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := res.Set.MarshalBinary(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReportDecodeBinary measures wire-format decoding throughput.
func BenchmarkReportDecodeBinary(b *testing.B) {
	res := warm(b, "moss", harness.SampleUniform)
	var buf bytes.Buffer
	if err := res.Set.MarshalBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.UnmarshalBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeArena measures the pooled arena decoder on the same
// payload as BenchmarkReportDecodeBinary; the gap between the two is
// the ingest hot path's allocation win.
func BenchmarkDecodeArena(b *testing.B) {
	res := warm(b, "moss", harness.SampleUniform)
	var buf bytes.Buffer
	if err := res.Set.MarshalBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	var arena report.Arena
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, lease, err := arena.Decode(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		lease.Release()
	}
}

// BenchmarkReportEncodeText is the baseline the binary codec competes
// with.
func BenchmarkReportEncodeText(b *testing.B) {
	res := warm(b, "moss", harness.SampleUniform)
	for i := 0; i < b.N; i++ {
		if err := res.Set.Marshal(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorIngest measures streaming-aggregation throughput:
// reports/sec folded into the collector's sharded counters from
// parallel ingesters (the server's apply path minus HTTP).
func BenchmarkCollectorIngest(b *testing.B) {
	res := warm(b, "moss", harness.SampleUniform)
	in := res.CoreInput()
	srv, err := collector.New(collector.Config{
		NumSites: in.Set.NumSites,
		NumPreds: in.Set.NumPreds,
		SiteOf:   in.SiteOf,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	reports := in.Set.Reports
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			srv.Ingest(reports[int(i)%len(reports)])
		}
	})
}

// BenchmarkCollectorIngestPlanner is BenchmarkCollectorIngest with the
// closed-loop sampling planner live: re-planning on a millisecond-scale
// tick reads the aggregate concurrently with the fold, so this measures
// what adaptive sampling costs the hot write path. The gate
// (TestPlannerIngestOverhead) asserts the answer is "within noise".
func BenchmarkCollectorIngestPlanner(b *testing.B) {
	res := warm(b, "moss", harness.SampleUniform)
	in := res.CoreInput()
	srv, err := collector.New(collector.Config{
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		PlanEvery:   2 * time.Millisecond,
		PlanMinRuns: 1,
		Logf:        func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	reports := in.Set.Reports
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			srv.Ingest(reports[int(i)%len(reports)])
		}
	})
}

// BenchmarkCollectorIngestBatch measures the durable ingest unit — one
// identified batch through IngestBatch — without a WAL, as the baseline
// BenchmarkCollectorIngestWAL is gated against.
func BenchmarkCollectorIngestBatch(b *testing.B) {
	benchIngestBatch(b, false)
}

// BenchmarkCollectorIngestWAL is BenchmarkCollectorIngestBatch with the
// write-ahead log on: every batch is encoded, CRC-framed, and appended
// to the current WAL segment before it is applied. The gate
// (TestWALIngestOverhead) asserts durability costs at most 5% of batch
// ingest throughput.
func BenchmarkCollectorIngestWAL(b *testing.B) {
	benchIngestBatch(b, true)
}

func benchIngestBatch(b *testing.B, wal bool) {
	res := warm(b, "moss", harness.SampleUniform)
	in := res.CoreInput()
	// Bound the run log so retention reaches steady state early: an
	// unbounded window keeps growing the live heap, and the rising GC
	// tax would make ns/op a function of b.N instead of the ingest path.
	cfg := collector.Config{
		NumSites:   in.Set.NumSites,
		NumPreds:   in.Set.NumPreds,
		SiteOf:     in.SiteOf,
		RunLogSize: 8192,
		Logf:       func(string, ...any) {},
	}
	if wal {
		dir := b.TempDir()
		cfg.SnapshotPath = filepath.Join(dir, "collector.snap")
		cfg.WALPath = filepath.Join(dir, "collector.wal")
		cfg.CheckpointEvery = time.Hour // never during the loop
	}
	srv, err := collector.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	const batchSize = 100
	reports := in.Set.Reports
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * batchSize) % (len(reports) - batchSize)
		if err := srv.IngestBatch(fmt.Sprintf("bench-%d", i), reports[off:off+batchSize]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(batchSize, "reports/op")
}

// TestWALIngestOverhead is the durability throughput gate: batch ingest
// with the write-ahead log on must stay within tolerance (default 5%)
// of the WAL-less batch path. Like TestPlannerIngestOverhead it is
// wall-clock sensitive, so it runs only under CBI_PERF_GATE=1;
// CBI_PERF_TOLERANCE overrides the tolerance.
func TestWALIngestOverhead(t *testing.T) {
	if os.Getenv("CBI_PERF_GATE") == "" {
		t.Skip("set CBI_PERF_GATE=1 to run the WAL ingest throughput gate " +
			"(CBI_PERF_TOLERANCE overrides the default 0.05)")
	}
	tol := 0.05
	if s := os.Getenv("CBI_PERF_TOLERANCE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			t.Fatalf("CBI_PERF_TOLERANCE=%q: want a positive float", s)
		}
		tol = v
	}
	in := runner().Result("moss", harness.SampleUniform).CoreInput()
	// Time a fixed batch count per trial on a fresh server, rather than
	// letting testing.Benchmark pick iteration counts: state (and thus
	// GC tax) grows with batches ingested, so unequal counts between
	// the two sides would bias the comparison. Interleaved best-of-5,
	// as in TestPlannerIngestOverhead.
	const batches, batchSize = 300, 100
	trial := func(trialID int, wal bool) float64 {
		cfg := collector.Config{
			NumSites:   in.Set.NumSites,
			NumPreds:   in.Set.NumPreds,
			SiteOf:     in.SiteOf,
			RunLogSize: 8192,
			Logf:       func(string, ...any) {},
		}
		if wal {
			dir := t.TempDir()
			cfg.SnapshotPath = filepath.Join(dir, "collector.snap")
			cfg.WALPath = filepath.Join(dir, "collector.wal")
			cfg.CheckpointEvery = time.Hour
			// Drop the trial's WAL pages as soon as it ends. Production
			// checkpoints prune segments long before the kernel's
			// writeback expiry; letting seven trials' worth of doomed
			// dirty pages accumulate instead would send writeback storms
			// into the later pairs.
			defer os.RemoveAll(dir)
		}
		srv, err := collector.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		reports := in.Set.Reports
		// Start each timed region from a collected heap so GC cycles
		// land comparably across trials.
		runtime.GC()
		start := time.Now()
		for i := 0; i < batches; i++ {
			off := (i * batchSize) % (len(reports) - batchSize)
			if err := srv.IngestBatch(fmt.Sprintf("gate-%d-%v-%d", trialID, wal, i), reports[off:off+batchSize]); err != nil {
				t.Fatal(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / batches
	}
	// Paired trials, median slowdown: machine drift (page-cache state,
	// writeback, GC phase) moves both sides of a back-to-back pair
	// together, so per-pair ratios are far more stable than comparing
	// the best plain trial against the best WAL trial from different
	// moments of the run.
	const pairs = 7
	ratios := make([]float64, 0, pairs)
	var baseNs, walNs float64
	for i := 0; i < pairs; i++ {
		p := trial(i, false)
		w := trial(i, true)
		baseNs, walNs = p, w
		ratios = append(ratios, w/p)
	}
	sort.Float64s(ratios)
	slowdown := ratios[pairs/2] - 1
	t.Logf("batch ingest %.0f ns/op plain, %.0f ns/op with WAL (last pair); median slowdown %+.2f%% over %d pairs",
		baseNs, walNs, slowdown*100, pairs)
	if slowdown > tol {
		t.Fatalf("WAL slows batch ingest by %.2f%% (median of %d pairs), tolerance %.2f%%", slowdown*100, pairs, tol*100)
	}
}

// TestPlannerIngestOverhead is the throughput gate for the closed loop:
// ingest with the planner re-planning every 2ms must stay within
// tolerance (default 2%) of the plain collector. Wall-clock gates are
// machine-sensitive, so it runs only when CBI_PERF_GATE=1 is set (CI
// machines and laptops under load would flake it); CBI_PERF_TOLERANCE
// overrides the tolerance.
func TestPlannerIngestOverhead(t *testing.T) {
	if os.Getenv("CBI_PERF_GATE") == "" {
		t.Skip("set CBI_PERF_GATE=1 to run the planner ingest throughput gate " +
			"(CBI_PERF_TOLERANCE overrides the default 0.02)")
	}
	tol := 0.02
	if s := os.Getenv("CBI_PERF_TOLERANCE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			t.Fatalf("CBI_PERF_TOLERANCE=%q: want a positive float", s)
		}
		tol = v
	}
	// Generate the corpus before timing anything so neither side's
	// first measurement absorbs generation's allocation burst.
	runner().Result("moss", harness.SampleUniform)
	// Interleave the two sides and keep each one's best of five: the
	// minimum is the stable estimator of how fast a path can go, and
	// interleaving spreads machine-load drift across both.
	baseNs, planNs := math.MaxFloat64, math.MaxFloat64
	for i := 0; i < 5; i++ {
		if ns := float64(testing.Benchmark(BenchmarkCollectorIngest).NsPerOp()); ns < baseNs {
			baseNs = ns
		}
		if ns := float64(testing.Benchmark(BenchmarkCollectorIngestPlanner).NsPerOp()); ns < planNs {
			planNs = ns
		}
	}
	slowdown := planNs/baseNs - 1
	t.Logf("ingest %.0f ns/op plain, %.0f ns/op with planner (%+.2f%%)",
		baseNs, planNs, slowdown*100)
	if slowdown > tol {
		t.Fatalf("planner slows ingest by %.2f%%, tolerance %.2f%%", slowdown*100, tol*100)
	}
}
