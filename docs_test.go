package cbi_bench

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the repository's own documents, whose cross-references
// must resolve. (PAPER.md / PAPERS.md / SNIPPETS.md / ISSUE.md are
// generated scaffolding and may cite external material.)
var docFiles = []string{
	"README.md",
	"DESIGN.md",
	"ENGINES.md",
	"EXPERIMENTS.md",
	"METRICS.md",
	"OPERATIONS.md",
	"ROADMAP.md",
}

var (
	// [text](target) markdown links, excluding images.
	mdLink = regexp.MustCompile(`[^!]\[[^\]]*\]\(([^)\s]+)\)`)
	// `FILE.md` or `dir/file.go` backtick references to repo paths.
	tickRef = regexp.MustCompile("`([A-Za-z0-9_./-]+\\.(?:md|go))`")
)

// TestDocsLinksResolve fails when documentation drifts from the tree:
// every relative markdown link and every backticked file path in the
// repo's own docs must name a file that exists.
func TestDocsLinksResolve(t *testing.T) {
	for _, doc := range docFiles {
		doc := doc
		t.Run(doc, func(t *testing.T) {
			data, err := os.ReadFile(doc)
			if err != nil {
				t.Fatalf("documentation file missing: %v", err)
			}
			text := string(data)
			base := filepath.Dir(doc)

			for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "#") {
					continue // external URL or intra-document anchor
				}
				target = strings.SplitN(target, "#", 2)[0]
				if _, err := os.Stat(filepath.Join(base, target)); err != nil {
					t.Errorf("%s links to %q, which does not exist", doc, m[1])
				}
			}

			for _, m := range tickRef.FindAllStringSubmatch(text, -1) {
				ref := m[1]
				// A backtick path resolves relative to the doc or the
				// repository root (docs cite both styles).
				if _, err := os.Stat(filepath.Join(base, ref)); err == nil {
					continue
				}
				if _, err := os.Stat(ref); err == nil {
					continue
				}
				t.Errorf("%s mentions `%s`, which does not exist", doc, ref)
			}
		})
	}
}
