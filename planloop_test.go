// Closed-loop convergence: the headline property of internal/plan. A
// deterministic fleet (harness workers streaming every run to a live
// collector through a router, with a proxy-mode gateway watching the
// same shard) adopts versioned sampling plans between runs via
// collector.Client.PlanFunc. Driving the collector's planner between
// phases must (a) publish strictly increasing versions that every tier
// — collector, router, gateway — agrees on, (b) raise the observed
// reach of genuinely under-observed sites toward the target, and
// (c) land the first re-plan (computed over a cleanly bootstrap-sampled
// window) on the same rates the offline trainer sampling.PlanRates
// derives from full-observation reach counts.
package cbi_bench

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"cbi/internal/collector"
	"cbi/internal/harness"
	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/report"
	"cbi/internal/sampling"
	"cbi/internal/shard"
	"cbi/internal/subjects"
)

// trainReaches is harness.TrainRates' first half with the intermediate
// exposed: average full-observation per-run reach counts, the ground
// truth the live estimator is trying to recover from membership bits.
func trainReaches(subj *subjects.Subject, iplan *instrument.Plan, trainingRuns int) []float64 {
	prog := subj.Program(true)
	counts := make([]float64, iplan.NumSites())
	rt := instrument.NewRuntime(iplan, sampling.Always{})
	eng := interp.New(prog, rt)
	for i := 0; i < trainingRuns; i++ {
		rt.BeginRun(int64(i) + 1)
		eng.Run(subj.Input(int64(-1 - i)))
		rep := rt.Snapshot(false)
		for _, s := range rep.ObservedSites {
			counts[s] += float64(rt.SiteObservedCount(int(s)))
		}
	}
	for i := range counts {
		counts[i] /= float64(trainingRuns)
	}
	return counts
}

func TestClosedLoopConvergence(t *testing.T) {
	const (
		phaseRuns    = 600
		trainingRuns = 200
		// The subject's per-run reaches split into a rare band (<= 1)
		// and a moderate band (~6-20); a target of 5 sits between them,
		// so the plan has both rate-1 sites and fractional
		// (window-sensitive) rates that keep successive re-plans live.
		planTarget = 5
	)
	quiet := func(string, ...any) {}

	subj := subjects.Ccrypt()
	iplan := instrument.BuildPlan(subj.Program(true))
	numSites, numPreds := iplan.NumSites(), iplan.NumPreds()
	siteOf := make([]int32, numPreds)
	for i, pr := range iplan.Preds {
		siteOf[i] = int32(pr.Site)
	}

	// Offline reference: full-observation reach counts and the rates
	// the paper's trainer would plan from them.
	reaches := trainReaches(subj, iplan, trainingRuns)
	offline := sampling.PlanRates(reaches, planTarget, sampling.DefaultRate)

	srv, err := collector.New(collector.Config{
		NumSites:    numSites,
		NumPreds:    numPreds,
		SiteOf:      siteOf,
		Fingerprint: iplan.Fingerprint(),
		PlanTarget:  planTarget,
		PlanMinRuns: 50,
		Logf:        quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	router, err := shard.NewRouter(shard.RouterConfig{
		Backends:       []string{ts.URL},
		HealthInterval: 50 * time.Millisecond,
		Logf:           quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	// Proxy-mode gateway over the same shard: it plans nothing itself
	// and must surface the collector's version chain unchanged.
	gwSrv, err := shard.NewGateway(shard.GatewayConfig{
		Shards:      []string{ts.URL},
		NumSites:    numSites,
		NumPreds:    numPreds,
		SiteOf:      siteOf,
		Fingerprint: iplan.Fingerprint(),
		PlanTarget:  planTarget,
		Timeout:     5 * time.Second,
		Logf:        quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gwSrv.Close()
	gts := httptest.NewServer(gwSrv.Handler())
	defer gts.Close()

	ctx := context.Background()
	client := collector.NewClient(rts.URL, numSites, numPreds,
		collector.WithClientID("loop-fleet"))
	gwClient := collector.NewClient(gts.URL, numSites, numPreds,
		collector.WithClientID("loop-gw-observer"))

	p, _, err := client.FetchPlan(ctx)
	if err != nil {
		t.Fatalf("bootstrap fetch through router: %v", err)
	}
	if p.Version != 1 {
		t.Fatalf("bootstrap plan v%d through router, want v1", p.Version)
	}

	applied := int64(0)
	waitApplied := func() {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for srv.StatsNow().ReportsApplied < applied {
			if time.Now().After(deadline) {
				t.Fatalf("collector applied %d of %d streamed reports",
					srv.StatsNow().ReportsApplied, applied)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// One fleet phase: deterministic monitored runs whose workers adopt
	// the client's current plan between runs and stream every report to
	// the collector through the router.
	phase := func(seedBase int64) *harness.Result {
		t.Helper()
		res := harness.Run(harness.Config{
			Subject:  subj,
			Runs:     phaseRuns,
			Engine:   harness.EngineVM,
			SeedBase: seedBase,
			Plan:     client.PlanFunc(),
			Stream: func(_ int, rep *report.Report, _ harness.RunMeta) {
				if err := client.Add(ctx, rep); err != nil {
					t.Error(err)
				}
			},
		})
		if err := client.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		if err := router.Drain(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		applied += phaseRuns
		waitApplied()
		return res
	}

	siteObs := func(res *harness.Result) []float64 {
		counts := make([]float64, numSites)
		for _, rep := range res.Set.Reports {
			for _, s := range rep.ObservedSites {
				counts[s]++
			}
		}
		return counts
	}

	// Phase 1 runs entirely under the bootstrap plan (the 1% floor
	// everywhere), so the first re-plan sees a cleanly-sampled window
	// and is directly comparable to the offline fixed point.
	res1 := phase(0)
	obs1 := siteObs(res1)

	p2, published := srv.Replan()
	if !published {
		t.Fatal("re-plan over the first phase did not publish")
	}
	if p2.Version != 2 || p2.Source != "collector" {
		t.Fatalf("first re-plan identity: v%d source=%q", p2.Version, p2.Source)
	}

	// The fleet picks the new plan up through the router; the gateway
	// proxies the same version from the shard.
	p, changed, err := client.FetchPlan(ctx)
	if err != nil || !changed || p.Version != 2 {
		t.Fatalf("router fetch after re-plan: v%d changed=%v err=%v", p.Version, changed, err)
	}
	gp, _, err := gwClient.FetchPlan(ctx)
	if err != nil || gp.Version != 2 {
		t.Fatalf("gateway fetch after re-plan: v%d err=%v", gp.Version, err)
	}

	// Offline match on the pure window. Rare-but-reachable sites (well
	// under target, where the offline trainer plans rate 1) must be
	// raised to 1; moderate-band sites — identifiable at the bootstrap
	// rate — must land within sampling noise of target/reach.
	var rare []int
	moderate := 0
	for i := range reaches {
		f1 := obs1[i] / phaseRuns
		switch {
		case reaches[i] > 0 && reaches[i] <= planTarget/2.0:
			rare = append(rare, i)
			if p2.Rates[i] != 1 {
				t.Errorf("rare site %d (reach %.1f): rate %v, want 1",
					i, reaches[i], p2.Rates[i])
			}
		case offline[i] >= 0.1 && offline[i] <= 0.9 && f1 < 0.9:
			moderate++
			if r := p2.Rates[i] / offline[i]; r < 0.4 || r > 2.5 {
				t.Errorf("moderate site %d (reach %.1f, observed %.0f/%d): live rate %v vs offline %v",
					i, reaches[i], obs1[i], phaseRuns, p2.Rates[i], offline[i])
			}
		}
	}
	if len(rare) == 0 {
		t.Fatal("subject has no rare sites; the convergence assertion is vacuous")
	}
	if moderate == 0 {
		t.Error("subject has no identifiable moderate-band sites; pick a lower target")
	}
	t.Logf("offline match: %d rare sites at rate 1, %d moderate sites within tolerance",
		len(rare), moderate)

	// Phase 2 samples under v2; the shifted cumulative window re-plans
	// to a strictly newer version.
	phase(10_000)
	p3, published := srv.Replan()
	if !published {
		t.Fatal("re-plan over the second phase did not publish")
	}
	if p3.Version <= p2.Version {
		t.Fatalf("plan version not strictly increasing: v%d after v%d", p3.Version, p2.Version)
	}
	p, changed, err = client.FetchPlan(ctx)
	if err != nil || !changed || p.Version != p3.Version {
		t.Fatalf("router fetch after second re-plan: v%d changed=%v err=%v", p.Version, changed, err)
	}

	// Phase 3 samples under v3: the closed loop has had two adaptation
	// steps, so rare sites now run at rate 1.
	res3 := phase(20_000)
	obs3 := siteObs(res3)

	// A final re-plan may or may not publish (the window may have
	// converged); either way every tier reports the same version.
	pFinal, _ := srv.Replan()
	if pFinal.Version < p3.Version {
		t.Fatalf("final plan v%d regressed below v%d", pFinal.Version, p3.Version)
	}
	p, _, err = client.FetchPlan(ctx)
	if err != nil || p.Version != pFinal.Version {
		t.Fatalf("router view v%d, collector v%d (err=%v)", p.Version, pFinal.Version, err)
	}
	gp, _, err = gwClient.FetchPlan(ctx)
	if err != nil || gp.Version != pFinal.Version {
		t.Fatalf("gateway view v%d, collector v%d (err=%v)", gp.Version, pFinal.Version, err)
	}
	for i := range gp.Rates {
		if gp.Rates[i] != pFinal.Rates[i] {
			t.Fatalf("gateway rate[%d]=%v differs from collector's %v", i, gp.Rates[i], pFinal.Rates[i])
		}
	}
	if st := srv.StatsNow(); st.Replans < 2 {
		t.Fatalf("collector re-planned %d times, want >= 2", st.Replans)
	}

	// The point of the loop: under-observed sites are observed far more
	// often once their rates rise. Aggregate over the rare sites: at the
	// 1% bootstrap rate they were nearly invisible; at rate 1 every
	// reach is an observation.
	var sum1, sum3 float64
	for _, i := range rare {
		sum1 += obs1[i]
		sum3 += obs3[i]
	}
	if sum3 < 2*math.Max(sum1, 1) {
		t.Fatalf("rare-site observations did not rise: phase1 %v, phase3 %v", sum1, sum3)
	}
	t.Logf("rare-site observations: phase1 %v -> phase3 %v across %d sites (final plan v%d)",
		sum1, sum3, len(rare), pFinal.Version)

	// Hot sites saturate the membership estimator, so the planner holds
	// them at the floor instead of guessing.
	for i := range reaches {
		if obs1[i]/phaseRuns >= 0.96 && pFinal.Rates[i] != sampling.DefaultRate {
			t.Errorf("saturated site %d (reach %.0f): rate %v, want held at the floor",
				i, reaches[i], pFinal.Rates[i])
		}
	}

	// Batch attribution saw traffic under the then-current plan.
	if st := srv.StatsNow(); st.PlanBatchesCurrent == 0 {
		t.Error("no batches attributed to the current plan version")
	}
}
