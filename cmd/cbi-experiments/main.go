// Command cbi-experiments regenerates the tables of "Scalable
// Statistical Bug Isolation" (PLDI 2005) on the MiniC analog subjects.
//
// Usage:
//
//	cbi-experiments [-scale smoke|default|paper] [-table all|1|2|3|4|5|6|7|8|9|engines]
//	                [-subjects a,b,...] [-stacks] [-ablate discard|dedup|sampling|all]
//	                [-runs N] [-workers N]
//
// Absolute numbers differ from the paper (different subjects, different
// hardware); the tables reproduce the paper's result shapes. See
// EXPERIMENTS.md for the mapping.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cbi/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "default", "experiment scale: smoke, default, or paper")
	table := flag.String("table", "all", "table to regenerate: all, 1-9, or engines")
	subjectsFlag := flag.String("subjects", "moss,ccrypt,bc,exif,rhythmbox", "comma-separated subjects for the engine comparison table")
	stacks := flag.Bool("stacks", false, "run the stack-signature study (§6)")
	ablate := flag.String("ablate", "", "ablation to run: discard, dedup, sampling, nullness, or all")
	runs := flag.Int("runs", 0, "override the number of monitored runs per subject")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "directory for persisted corpora (reused across invocations)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "smoke":
		scale = experiments.SmokeScale
	case "default":
		scale = experiments.DefaultScale
	case "paper":
		scale = experiments.PaperScale
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *runs > 0 {
		scale.Runs = *runs
	}
	scale.Workers = *workers

	r := experiments.NewRunner(scale)
	r.CacheDir = *cacheDir
	start := time.Now()
	all := *table == "all"

	section := func(title string, body func()) {
		fmt.Printf("==== %s ====\n", title)
		t0 := time.Now()
		body()
		fmt.Printf("(%.1fs)\n\n", time.Since(t0).Seconds())
	}

	want := func(n string) bool { return all || *table == n }

	if want("1") {
		section("Table 1: ranking strategies on MOSS (no elimination)", func() {
			fmt.Print(experiments.RunTable1(r, 8).Render())
		})
	}
	if want("2") {
		section("Table 2: summary statistics", func() {
			fmt.Print(experiments.RenderTable2(experiments.RunTable2(r)))
		})
	}
	if want("3") {
		section("Table 3: MOSS validation (nonuniform sampling)", func() {
			fmt.Print(experiments.RunTable3(r).Render())
		})
	}
	smallTables := map[string]string{"4": "ccrypt", "5": "bc", "6": "exif", "7": "rhythmbox"}
	for _, n := range []string{"4", "5", "6", "7"} {
		if want(n) {
			name := smallTables[n]
			section(fmt.Sprintf("Table %s: predictors for %s", n, strings.ToUpper(name)), func() {
				fmt.Print(experiments.RunSmallTable(r, name).Render())
			})
		}
	}
	if want("8") {
		section("Table 8: minimum number of runs needed", func() {
			fmt.Print(experiments.RenderTable8(experiments.RunTable8(r)))
		})
	}
	if want("9") {
		section("Table 9: l1-regularized logistic regression on MOSS", func() {
			fmt.Print(experiments.RunTable9(r).Render())
		})
	}
	if want("engines") {
		var subjectList []string
		for _, s := range strings.Split(*subjectsFlag, ",") {
			if s = strings.TrimSpace(s); s != "" {
				subjectList = append(subjectList, s)
			}
		}
		tbl := experiments.RunEngineTable(r, subjectList, 20)
		if *table == "engines" {
			// Bare output (no section header or timing) so CI can diff
			// the table rows against the committed EXPERIMENTS.md block.
			fmt.Print(tbl.RenderMarkdown())
		} else {
			section("Engine comparison: ground-truth scorecard (see ENGINES.md)", func() {
				fmt.Print(tbl.RenderMarkdown())
			})
		}
	}
	if *stacks || all {
		section("§6: stack-signature clustering baseline", func() {
			studies, overall := experiments.RunStackStudies(r)
			fmt.Print(experiments.RenderStackStudies(studies, overall))
		})
	}
	if *ablate != "" {
		if *ablate == "discard" || *ablate == "all" {
			section("Ablation: run-discard proposals (§5)", func() {
				fmt.Print(experiments.RunDiscardAblation(r, "moss").Render())
			})
		}
		if *ablate == "dedup" || *ablate == "all" {
			section("Ablation: within-site dedup (§3.4)", func() {
				fmt.Print(experiments.RunDedupAblation(r, "moss").Render())
			})
		}
		if *ablate == "sampling" || *ablate == "all" {
			section("Ablation: sampling modes (§4)", func() {
				fmt.Print(experiments.RunSamplingAblation(r, "moss").Render())
			})
		}
		if *ablate == "nullness" || *ablate == "all" {
			section("Extension: nullness scheme (paper future work)", func() {
				fmt.Print(experiments.RunNullnessAblation(r, "rhythmbox").Render())
			})
		}
	}
	fmt.Printf("total: %.1fs at scale %s (%d runs/subject)\n",
		time.Since(start).Seconds(), *scaleName, scale.Runs)
}
