package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"cbi/internal/collector"
	"cbi/internal/plan"
)

// cmdPlan inspects the fleet sampling plan a collector, router, or
// gateway serves at GET /v1/plan: version, provenance, and a rate
// summary an operator can eyeball for "is the loop converging".
func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:7575", "collector, router, or gateway base URL")
	watch := fs.Duration("watch", 0, "keep polling at this interval and print each new version (0 = print once)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	// Dimensions come from the plan itself; 0,0 skips the client's check.
	client := collector.NewClient(*addr, 0, 0)
	p, _, err := client.FetchPlan(ctx)
	if err != nil {
		return err
	}
	printPlan(p)
	if *watch <= 0 {
		return nil
	}
	for {
		time.Sleep(*watch)
		next, changed, err := client.FetchPlan(ctx)
		if err != nil {
			fmt.Printf("plan poll: %v\n", err)
			continue
		}
		if changed {
			printPlan(next)
		}
	}
}

func printPlan(p *plan.Plan) {
	created := "bootstrap"
	if p.CreatedUnix > 0 {
		created = time.Unix(p.CreatedUnix, 0).UTC().Format(time.RFC3339)
	}
	min, max, sum := 1.0, 0.0, 0.0
	atFloor, atOne := 0, 0
	for _, r := range p.Rates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
		sum += r
		if r <= p.MinRate {
			atFloor++
		}
		if r >= 1 {
			atOne++
		}
	}
	fmt.Printf("plan v%d  source=%s  created=%s  window=%d runs\n",
		p.Version, p.Source, created, p.Runs)
	fmt.Printf("  %d sites: rates [%.4g, %.4g] mean %.4g  (%d at floor %.4g, %d at 1)\n",
		len(p.Rates), min, max, sum/float64(len(p.Rates)), atFloor, p.MinRate, atOne)
	if p.BoostSite >= 0 {
		fmt.Printf("  boost: %d sites around top-predictor site %d at rate 1\n",
			len(p.Boosts), p.BoostSite)
	}
}
