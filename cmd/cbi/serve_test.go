package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"cbi/internal/collector"
	"cbi/internal/instrument"
	"cbi/internal/subjects"
)

// freePort grabs an ephemeral port. The tiny close-to-bind window is
// acceptable for a test on localhost.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// TestServeAndSubmitEndToEnd builds the cbi binary, starts a live
// `cbi serve` process, streams a subject experiment into it with
// `cbi submit`'s code path, checks the live stats, and verifies SIGTERM
// drains gracefully and persists a snapshot.
func TestServeAndSubmitEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess end-to-end test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "cbi")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cbi: %v\n%s", err, out)
	}

	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	base := "http://" + addr
	snap := filepath.Join(dir, "collector.snap")

	serve := exec.Command(bin, "serve",
		"-addr", addr, "-subject", "ccrypt", "-snapshot", snap)
	serve.Stdout = os.Stderr
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill()

	plan := instrument.BuildPlan(subjects.Ccrypt().Program(true))
	client := collector.NewClient(base, plan.NumSites(), plan.NumPreds())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for !client.Healthy(ctx) {
		select {
		case <-ctx.Done():
			t.Fatal("server never became healthy")
		case <-time.After(50 * time.Millisecond):
		}
	}

	const runs = 300
	if err := cmdSubmit([]string{
		"-addr", base, "-subject", "ccrypt", "-runs", fmt.Sprint(runs),
		"-mode", "always", "-batch", "32", "-top", "5",
	}); err != nil {
		t.Fatalf("cbi submit: %v", err)
	}

	// The submit path waits for nothing; poll until the server applied
	// everything, then check the live view.
	deadline := time.Now().Add(30 * time.Second)
	for {
		stats, err := client.Stats(ctx)
		if err == nil && stats.ReportsApplied >= runs {
			if stats.Runs != runs {
				t.Fatalf("server counted %d runs, want %d", stats.Runs, runs)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never applied all reports")
		}
		time.Sleep(20 * time.Millisecond)
	}
	scores, err := client.Scores(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("live server returned an empty ranking for a failing subject")
	}

	// SIGTERM must drain and persist a final snapshot, then exit 0.
	if err := serve.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := serve.Wait(); err != nil {
		t.Fatalf("serve exited with error: %v", err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no snapshot after graceful shutdown: %v", err)
	}

	// A restarted server resumes from the snapshot.
	serve2 := exec.Command(bin, "serve",
		"-addr", addr, "-subject", "ccrypt", "-snapshot", snap)
	serve2.Stdout = os.Stderr
	serve2.Stderr = os.Stderr
	if err := serve2.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve2.Process.Kill()
	for !client.Healthy(ctx) {
		select {
		case <-ctx.Done():
			t.Fatal("restarted server never became healthy")
		case <-time.After(50 * time.Millisecond):
		}
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != runs {
		t.Fatalf("restarted server has %d runs, want %d", stats.Runs, runs)
	}
	serve2.Process.Signal(syscall.SIGTERM)
	serve2.Wait()
}
