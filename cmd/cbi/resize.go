package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cbi/internal/migrate"
)

// cmdResize runs one elastic ring resize to completion: it stages the
// topology change at the router, streams the moving state between the
// collectors (export → merge → evict), pauses and cuts the moving key
// ranges over, and commits the new ring. Writes keep flowing the whole
// time; the merged query results are element-for-element what a
// never-resized deployment would serve. Interrupted? Run the same
// command again — the controller resumes the staged resize.
func cmdResize(args []string) error {
	fs := flag.NewFlagSet("resize", flag.ExitOnError)
	router := fs.String("router", "", "router base URL whose ring is being resized (required)")
	add := fs.String("add", "", "collector base URL to bring into the ring")
	remove := fs.String("remove", "", "collector base URL to drain out of the ring")
	key := fs.String("key", "", "API key for the router's POST /v1/ring and the collectors' write endpoints")
	chunk := fs.Int("chunk", 512, "runs per migration chunk")
	drainTimeout := fs.Duration("drain-timeout", 60*time.Second, "how long to wait for sources to quiesce at the pause barrier")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := strings.TrimSuffix(strings.TrimSpace(*router), "/")
	if r == "" {
		return fmt.Errorf("resize: -router is required")
	}
	if (*add == "") == (*remove == "") {
		return fmt.Errorf("resize: exactly one of -add or -remove is required")
	}
	action, url := "add", strings.TrimSuffix(strings.TrimSpace(*add), "/")
	if *remove != "" {
		action, url = "remove", strings.TrimSuffix(strings.TrimSpace(*remove), "/")
	}
	c, err := migrate.New(migrate.Config{
		Router:       r,
		APIKey:       *key,
		ChunkRuns:    *chunk,
		DrainTimeout: *drainTimeout,
		Logf:         log.Printf,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := c.Resize(ctx, action, url)
	if err != nil {
		return err
	}
	fmt.Printf("resize %s %s: %d migration(s), %d runs / %d bytes moved, ring now v%d\n",
		res.Action, url, res.Migrations, res.RunsMoved, res.BytesMoved, res.RingVersion)
	return nil
}
