package main

import (
	"flag"
	"fmt"
	"html"
	"os"
	"strings"

	"cbi/internal/core"
	"cbi/internal/harness"
	"cbi/internal/subjects"
	"cbi/internal/thermo"
)

// cmdHTML writes an interactive-style HTML report for a built-in
// subject: the ranked predictor list with bug thermometers and, per
// predictor, its affinity list — the same artifacts the paper's web UI
// exposes.
func cmdHTML(args []string) error {
	fs := flag.NewFlagSet("html", flag.ExitOnError)
	runs := fs.Int("runs", 4000, "number of runs")
	out := fs.String("o", "cbi-report.html", "output file")
	topAffinity := fs.Int("affinity", 5, "affinity list length per predictor")
	target, rest, err := splitTarget(args, "cbi html <subject> -o report.html")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	subj := subjects.ByName(target)
	if subj == nil {
		return fmt.Errorf("unknown subject %q", target)
	}
	res := harness.Run(harness.Config{Subject: subj, Runs: *runs, Mode: harness.SampleUniform})
	in := res.CoreInput()
	agg := core.Aggregate(in)
	ranked := core.Eliminate(in, core.ElimOptions{})

	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>CBI report</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; }
td, th { padding: 4px 10px; border-bottom: 1px solid #ddd; text-align: left; }
.affinity { color: #555; font-size: 90%; }
code { background: #f4f4f4; padding: 1px 4px; }
</style></head><body>
`)
	fmt.Fprintf(&sb, "<h1>Statistical debugging report: %s</h1>\n", html.EscapeString(subj.Name))
	fmt.Fprintf(&sb, "<p>%d runs, %d failing. %d sites, %d predicates; %d pass the Increase test; %d selected by elimination.</p>\n",
		len(res.Set.Reports), res.NumFailing(), res.Plan.NumSites(), res.Plan.NumPreds(),
		len(core.FilterByIncrease(agg, core.Z95)), len(ranked))

	sb.WriteString("<table>\n<tr><th>#</th><th>Initial</th><th>Effective</th><th>Predicate</th><th>Importance</th><th>Increase</th><th>F</th><th>S</th></tr>\n")
	maxObs := agg.NumF + agg.NumS
	var cands []int
	for _, rk := range ranked {
		cands = append(cands, rk.Pred)
	}
	for i, rk := range ranked {
		ti := thermo.Compute(rk.Initial, rk.InitialScores, maxObs)
		te := thermo.Compute(rk.Effective, rk.EffectiveScores, maxObs)
		fmt.Fprintf(&sb, "<tr><td>%d</td><td>%s</td><td>%s</td><td><code>%s</code></td><td>%.3f</td><td>%.3f ± %.3f</td><td>%d</td><td>%d</td></tr>\n",
			i+1, ti.HTML(140), te.HTML(140), html.EscapeString(res.PredText(rk.Pred)),
			rk.EffectiveScores.Importance, rk.InitialScores.Increase, rk.InitialScores.IncreaseCI,
			rk.Initial.F, rk.Initial.S)
		aff := core.Affinity(in, rk.Pred, cands)
		if len(aff) > *topAffinity {
			aff = aff[:*topAffinity]
		}
		var items []string
		for _, e := range aff {
			items = append(items, fmt.Sprintf("<code>%s</code> (drop %.3f)",
				html.EscapeString(res.PredText(e.Pred)), e.Drop))
		}
		if len(items) > 0 {
			fmt.Fprintf(&sb, "<tr class=\"affinity\"><td></td><td colspan=\"7\">affinity: %s</td></tr>\n",
				strings.Join(items, ", "))
		}
	}
	sb.WriteString("</table>\n</body></html>\n")

	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d predictors)\n", *out, len(ranked))
	return nil
}
