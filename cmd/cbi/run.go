package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cbi/internal/core"
	"cbi/internal/corpus"
	"cbi/internal/harness"
	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/report"
	"cbi/internal/sampling"
	"cbi/internal/subjects"
	"cbi/internal/thermo"
)

// cmdRun fuzzes an arbitrary MiniC program: every run gets a fresh
// seed, fixed -args, and a random integer stream; crashes label runs as
// failures; the cause-isolation algorithm ranks bug predictors.
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	runs := fs.Int("runs", 2000, "number of runs")
	mode := fs.String("mode", "uniform", "sampling: always, uniform, or nonuniform")
	rate := fs.Float64("rate", sampling.DefaultRate, "uniform sampling rate")
	argsCSV := fs.String("args", "", "fixed integer args, comma-separated")
	sargsCSV := fs.String("sargs", "", "fixed string args, comma-separated")
	streamLen := fs.Int("stream-len", 64, "random input stream length")
	streamMax := fs.Int64("stream-max", 256, "random stream values are in [0, max)")
	top := fs.Int("top", 10, "max predictors to print")
	save := fs.String("save", "", "save feedback reports to this file")
	target, rest, err := splitTarget(args, "cbi run <file.mc> [flags]")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	prog, err := loadProgram(target)
	if err != nil {
		return err
	}

	fixedArgs, err := parseInts(*argsCSV)
	if err != nil {
		return fmt.Errorf("-args: %v", err)
	}
	var fixedSArgs []string
	if *sargsCSV != "" {
		fixedSArgs = strings.Split(*sargsCSV, ",")
	}

	plan := instrument.BuildPlan(prog)
	fmt.Printf("%d sites, %d predicates\n", plan.NumSites(), plan.NumPreds())

	var sampler sampling.Sampler
	switch *mode {
	case "always":
		sampler = sampling.Always{}
	case "uniform":
		sampler = sampling.NewUniform(*rate)
	case "nonuniform":
		sampler = sampling.Always{} // rates trained below
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	genInput := func(i int64) interp.Input {
		rng := newStreamRNG(i)
		stream := make([]int64, *streamLen)
		for j := range stream {
			stream[j] = rng.intn(*streamMax)
		}
		return interp.Input{Args: fixedArgs, SArgs: fixedSArgs, Stream: stream, Seed: i}
	}

	if *mode == "nonuniform" {
		counts := make([]float64, plan.NumSites())
		rt := instrument.NewRuntime(plan, sampling.Always{})
		in := interp.New(prog, rt)
		const trainRuns = 200
		for i := int64(0); i < trainRuns; i++ {
			rt.BeginRun(i + 1)
			in.Run(genInput(-1 - i))
			for s := 0; s < plan.NumSites(); s++ {
				counts[s] += float64(rt.SiteObservedCount(s))
			}
		}
		for i := range counts {
			counts[i] /= trainRuns
		}
		sampler = sampling.NewNonuniform(sampling.PlanRates(counts, sampling.DefaultTargetSamples, sampling.DefaultRate))
	}

	set := &report.Set{NumSites: plan.NumSites(), NumPreds: plan.NumPreds()}
	rt := instrument.NewRuntime(plan, sampler)
	in := interp.New(prog, rt)
	crashes := 0
	for i := 0; i < *runs; i++ {
		rt.BeginRun(int64(i) + 1)
		out := in.Run(genInput(int64(i)))
		if out.Crashed {
			crashes++
		}
		set.Reports = append(set.Reports, rt.Snapshot(out.Crashed))
	}
	fmt.Printf("%d runs, %d failing (%.1f%%)\n", *runs, crashes, 100*float64(crashes)/float64(*runs))

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := set.Marshal(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved reports to %s\n", *save)
	}
	if crashes == 0 {
		fmt.Println("no failures; nothing to isolate")
		return nil
	}

	siteOf := make([]int32, plan.NumPreds())
	for i, p := range plan.Preds {
		siteOf[i] = int32(p.Site)
	}
	printRanking(core.Input{Set: set, SiteOf: siteOf}, func(p int) string {
		pr := plan.Preds[p]
		s := plan.Sites[pr.Site]
		return fmt.Sprintf("%s (%s:%d)", pr.Text, s.Func, s.Line)
	}, *top)
	return nil
}

// cmdSubject runs a built-in case-study subject with ground truth.
func cmdSubject(args []string) error {
	fs := flag.NewFlagSet("subject", flag.ExitOnError)
	runs := fs.Int("runs", 8000, "number of runs")
	mode := fs.String("mode", "uniform", "sampling: always, uniform, or nonuniform")
	top := fs.Int("top", 12, "max predictors to print")
	saveCorpus := fs.String("save-corpus", "", "persist the full corpus (reports + ground truth) to this file")
	loadCorpus := fs.String("load-corpus", "", "analyze a previously saved corpus instead of running")
	target, rest, err := splitTarget(args, "cbi subject <moss|ccrypt|bc|exif|rhythmbox> [flags]")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	subj := subjects.ByName(target)
	if subj == nil {
		return fmt.Errorf("unknown subject %q", target)
	}
	var m harness.Mode
	switch *mode {
	case "always":
		m = harness.SampleAlways
	case "uniform":
		m = harness.SampleUniform
	case "nonuniform":
		m = harness.SampleNonuniform
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	var res *harness.Result
	if *loadCorpus != "" {
		f, err := os.Open(*loadCorpus)
		if err != nil {
			return err
		}
		res, err = corpus.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		if res.Config.Subject.Name != subj.Name {
			return fmt.Errorf("corpus is for subject %q, not %q", res.Config.Subject.Name, subj.Name)
		}
	} else {
		res = harness.Run(harness.Config{Subject: subj, Runs: *runs, Mode: m})
	}
	if *saveCorpus != "" {
		f, err := os.Create(*saveCorpus)
		if err != nil {
			return err
		}
		if err := corpus.Save(f, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved corpus to %s\n", *saveCorpus)
	}
	fmt.Printf("%s: %d runs, %d failing; %d sites, %d predicates\n",
		subj.Name, len(res.Set.Reports), res.NumFailing(), res.Plan.NumSites(), res.Plan.NumPreds())
	perBug := res.FailingRunsPerBug()
	fmt.Printf("ground truth failing runs per bug: %v\n", perBug)
	printRanking(res.CoreInput(), res.PredText, *top)
	return nil
}

// printRanking runs the full pipeline (Increase filter + elimination)
// and prints the ranked predictor list with thermometers.
func printRanking(in core.Input, predText func(int) string, top int) {
	agg := core.Aggregate(in)
	keep := core.FilterByIncrease(agg, core.Z95)
	fmt.Printf("predicates with Increase CI > 0: %d of %d\n", len(keep), in.Set.NumPreds)
	ranked := core.Eliminate(in, core.ElimOptions{MaxPredictors: top})
	if len(ranked) == 0 {
		fmt.Println("elimination selected no predictors")
		return
	}
	fmt.Println("ranked bug predictors (initial | effective thermometers):")
	maxObs := agg.NumF + agg.NumS
	for i, rk := range ranked {
		ti := thermo.Compute(rk.Initial, rk.InitialScores, maxObs)
		te := thermo.Compute(rk.Effective, rk.EffectiveScores, maxObs)
		fmt.Printf("%2d. %s %s  Imp=%.3f Inc=%.3f±%.3f F=%d S=%d  %s\n",
			i+1, ti.Text(16), te.Text(16),
			rk.EffectiveScores.Importance, rk.InitialScores.Increase, rk.InitialScores.IncreaseCI,
			rk.Initial.F, rk.Initial.S, predText(rk.Pred))
	}
}

func parseInts(csv string) ([]int64, error) {
	if csv == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// streamRNG is a tiny splitmix64 for fuzzing streams.
type streamRNG struct{ state uint64 }

func newStreamRNG(seed int64) *streamRNG {
	return &streamRNG{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

func (r *streamRNG) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64((z ^ (z >> 31)) % uint64(n))
}
