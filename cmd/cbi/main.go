// Command cbi is the statistical debugging toolchain for MiniC
// programs: it instruments predicates (branches / returns /
// scalar-pairs), runs programs under sparse random sampling, and
// isolates bug predictors with the PLDI 2005 cause-isolation algorithm.
//
// Subcommands:
//
//	cbi check <file.mc>              parse and type-check a program
//	cbi print <file.mc>              pretty-print the normalized source
//	cbi sites <file.mc>              list instrumentation sites and predicates
//	cbi run <file.mc> [flags]        fuzz a program and isolate bug predictors
//	cbi analyze <file.mc> [flags]    re-analyze a saved report corpus
//	cbi subject <name> [flags]       run a built-in case-study subject
//	cbi html <name> -o report.html   write an interactive HTML report
//	cbi serve [flags]                run a feedback-report collector server
//	cbi submit [flags]               stream reports to a running collector
//	cbi predictors [flags]           fetch a collector's live cause-isolation ranking
//	cbi plan [flags]                 inspect the fleet sampling plan a server serves
//	cbi route [flags]                run a sharding router over several collectors
//	cbi gateway [flags]              run a merging query gateway over several collectors
//	cbi merge [flags] <snap>...      merge collector snapshots or push into a live peer
//	cbi resize [flags]               add or remove a collector from a live sharded ring
//
// Run `cbi <subcommand> -h` for per-command flags.
//
// The server subcommands (serve, route, gateway) all export Prometheus
// metrics at GET /metrics and accept -pprof and -slow-request-ms; see
// METRICS.md for the metric reference and OPERATIONS.md for the
// deployment runbook.
package main

import (
	"fmt"
	"os"
	"strings"

	"cbi/internal/instrument"
	"cbi/internal/lang"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "check":
		err = cmdCheck(os.Args[2:])
	case "print":
		err = cmdPrint(os.Args[2:])
	case "sites":
		err = cmdSites(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "subject":
		err = cmdSubject(os.Args[2:])
	case "html":
		err = cmdHTML(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "predictors":
		err = cmdPredictors(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "route":
		err = cmdRoute(os.Args[2:])
	case "gateway":
		err = cmdGateway(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "resize":
		err = cmdResize(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cbi: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbi: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: cbi <subcommand> [flags]

subcommands:
  check <file.mc>     parse and type-check a MiniC program
  print <file.mc>     pretty-print the normalized source
  sites <file.mc>     list instrumentation sites and predicates
  run <file.mc>       fuzz a program and isolate bug predictors
  analyze <file.mc>   re-analyze a corpus saved with run -save
  subject <name>      run a built-in subject (moss, ccrypt, bc, exif, rhythmbox)
  html <name>         write an interactive HTML report for a subject
  serve               run a feedback-report collector (ingestion + live ranking)
  submit              stream reports to a running collector
  predictors          fetch a collector's live cause-isolation ranking
  plan                inspect the fleet sampling plan a server serves
  route               run a sharding router in front of several collectors
  gateway             run a merging query gateway over several collectors
  merge               merge collector snapshots offline or push into a live peer
  resize              add or remove a collector from a live sharded ring
`)
}

// splitTarget peels a leading positional argument (the file or subject
// name) off args, so users can write `cbi run prog.mc -runs 500`
// despite the flag package's flags-first convention.
func splitTarget(args []string, usage string) (string, []string, error) {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return "", nil, fmt.Errorf("usage: %s", usage)
	}
	return args[0], args[1:], nil
}

func loadProgram(path string) (*lang.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := lang.Parse(path, string(src))
	if err != nil {
		return nil, err
	}
	if err := lang.Resolve(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func cmdCheck(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: cbi check <file.mc>")
	}
	prog, err := loadProgram(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("%s: ok (%d structs, %d globals, %d functions)\n",
		args[0], len(prog.Structs), len(prog.Globals), len(prog.Funcs))
	return nil
}

func cmdPrint(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: cbi print <file.mc>")
	}
	prog, err := loadProgram(args[0])
	if err != nil {
		return err
	}
	fmt.Print(lang.Print(prog))
	return nil
}

func cmdSites(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: cbi sites <file.mc>")
	}
	prog, err := loadProgram(args[0])
	if err != nil {
		return err
	}
	plan := instrument.BuildPlan(prog)
	perScheme := map[instrument.Scheme]int{}
	for _, s := range plan.Sites {
		perScheme[s.Scheme]++
	}
	fmt.Printf("%d instrumentation sites, %d predicates\n", plan.NumSites(), plan.NumPreds())
	for _, sch := range []instrument.Scheme{instrument.SchemeBranches, instrument.SchemeReturns, instrument.SchemeScalarPairs} {
		fmt.Printf("  %-12s %d sites\n", sch, perScheme[sch])
	}
	for _, s := range plan.Sites {
		fmt.Printf("site %4d  %-12s %s:%d  %s\n", s.ID, s.Scheme, s.Func, s.Line, siteLabel(s))
	}
	return nil
}

func siteLabel(s *instrument.Site) string {
	switch s.PairKind {
	case instrument.PairVar:
		return fmt.Sprintf("%s ~ %s", s.Text, s.Partner.Name)
	case instrument.PairConst:
		return fmt.Sprintf("%s ~ %d", s.Text, s.Const)
	case instrument.PairOld:
		return fmt.Sprintf("%s ~ old value", s.Text)
	default:
		return s.Text
	}
}
