package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"cbi/internal/collector"
	"cbi/internal/core"
	"cbi/internal/harness"
	"cbi/internal/instrument"
	"cbi/internal/report"
	"cbi/internal/subjects"
	"cbi/internal/thermo"
)

// planFor derives the instrumentation plan for -subject or -program,
// which fixes the collector's site/predicate dimensions.
func planFor(subject, program string) (*instrument.Plan, string, error) {
	switch {
	case subject != "" && program != "":
		return nil, "", fmt.Errorf("use -subject or -program, not both")
	case subject != "":
		subj := subjects.ByName(subject)
		if subj == nil {
			return nil, "", fmt.Errorf("unknown subject %q", subject)
		}
		return instrument.BuildPlan(subj.Program(true)), subject, nil
	case program != "":
		prog, err := loadProgram(program)
		if err != nil {
			return nil, "", err
		}
		return instrument.BuildPlan(prog), program, nil
	default:
		return nil, "", fmt.Errorf("one of -subject or -program is required")
	}
}

func siteOf(plan *instrument.Plan) []int32 {
	out := make([]int32, plan.NumPreds())
	for i, p := range plan.Preds {
		out[i] = int32(p.Site)
	}
	return out
}

// cmdServe runs a collector: a report-ingestion server with streaming
// aggregation, live /v1/scores ranking, and snapshot persistence.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7575", "listen address")
	subject := fs.String("subject", "", "built-in subject fixing the predicate universe")
	program := fs.String("program", "", "MiniC source file fixing the predicate universe")
	snapshot := fs.String("snapshot", "", "snapshot file (restored on start, persisted periodically)")
	snapshotEvery := fs.Duration("snapshot-every", 30*time.Second, "periodic snapshot interval")
	wal := fs.String("wal", "", "write-ahead log base path (segments at <base>.NNNNNNNN; requires -snapshot)")
	checkpointEvery := fs.Duration("checkpoint-every", 0, "checkpoint interval with -wal (0 = -snapshot-every)")
	queueSize := fs.Int("queue", 256, "ingest queue bound in batches (backpressure beyond)")
	shards := fs.Int("shards", 16, "aggregate counter stripes")
	runlog := fs.Int("runlog", 0, "run-log retention cap in runs (0 = default 262144, negative disables /v1/predictors)")
	runlogMaxAge := fs.Duration("runlog-max-age", 0, "evict retained runs older than this (0 = no age cap)")
	runlogMaxBytes := fs.Int64("runlog-max-bytes", 0, "run-log retention cap in encoded bytes (0 = no byte cap; the newest run is never evicted)")
	apiKeysPath := fs.String("api-keys", "", "file of accepted API keys, one per line; write endpoints require Authorization: Bearer")
	rateLimit := fs.Float64("rate-limit", 0, "per-key write rate limit in requests per second (0 = unlimited)")
	rateBurst := fs.Int("rate-burst", 0, "write rate-limit burst allowance (0 = 2x -rate-limit)")
	apiKeysFile := fs.String("api-keys-file", "", "like -api-keys, but re-read on SIGHUP for zero-downtime key rotation")
	planEvery := fs.Duration("plan-every", 0, "re-plan per-site sampling rates from the live aggregate at this interval (0 = planner off)")
	planTarget := fs.Float64("plan-target", 0, "expected samples per site per run the planner aims for (0 = default 100)")
	planMinRate := fs.Float64("plan-min-rate", 0, "floor for planned sampling rates (0 = default 1/100)")
	planMinRuns := fs.Int64("plan-min-runs", 0, "minimum runs in the window before the planner publishes (0 = default 100)")
	planBoostRadius := fs.Int("plan-boost-radius", 0, "half-width of the top-predictor site neighborhood boosted to rate 1 (0 = no boosting)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	slowMs := fs.Int("slow-request-ms", 0, "log any HTTP request slower than this many milliseconds (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, name, err := planFor(*subject, *program)
	if err != nil {
		return err
	}
	if *apiKeysPath != "" && *apiKeysFile != "" {
		return fmt.Errorf("use -api-keys or -api-keys-file, not both")
	}
	keysPath := *apiKeysPath
	if *apiKeysFile != "" {
		keysPath = *apiKeysFile
	}
	keys, err := loadAPIKeys(keysPath)
	if err != nil {
		return err
	}
	srv, err := collector.New(collector.Config{
		NumSites:        plan.NumSites(),
		NumPreds:        plan.NumPreds(),
		SiteOf:          siteOf(plan),
		Fingerprint:     plan.Fingerprint(),
		QueueSize:       *queueSize,
		Shards:          *shards,
		RunLogSize:      *runlog,
		RunLogMaxAge:    *runlogMaxAge,
		RunLogMaxBytes:  *runlogMaxBytes,
		APIKeys:         keys,
		RateLimit:       *rateLimit,
		RateBurst:       *rateBurst,
		SnapshotPath:    *snapshot,
		SnapshotEvery:   *snapshotEvery,
		WALPath:         *wal,
		CheckpointEvery: *checkpointEvery,
		PlanEvery:       *planEvery,
		PlanTarget:      *planTarget,
		PlanMinRate:     *planMinRate,
		PlanMinRuns:     *planMinRuns,
		PlanBoostRadius: *planBoostRadius,
		EnablePprof:     *pprofFlag,
		SlowRequest:     time.Duration(*slowMs) * time.Millisecond,
		Logf:            log.Printf,
	})
	if err != nil {
		return err
	}
	fmt.Printf("collector for %s: %d sites, %d predicates, fingerprint %d\n",
		name, plan.NumSites(), plan.NumPreds(), plan.Fingerprint())

	// SIGHUP rotates API keys in place when -api-keys-file is used: the
	// file is re-read and swapped atomically; a bad reload keeps the
	// current keys so a typo cannot lock the fleet out.
	if *apiKeysFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				next, err := loadAPIKeys(*apiKeysFile)
				if err != nil {
					log.Printf("serve: SIGHUP key reload failed, keeping current keys: %v", err)
					continue
				}
				srv.SetAPIKeys(next)
			}
		}()
	}

	// Drain gracefully on SIGINT/SIGTERM: stop accepting, apply the
	// queue, persist a final snapshot, then close the listener.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	if err := srv.ListenAndServe(*addr); err != nil {
		return err
	}
	return <-done
}

// loadAPIKeys reads one key per line from path, skipping blanks and
// '#' comments. An empty path means no auth.
func loadAPIKeys(path string) ([]string, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		keys = append(keys, line)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("api-keys file %s holds no keys", path)
	}
	return keys, nil
}

// cmdSubmit streams reports to a collector: either a saved report set
// (-reports) or a fresh experiment run live through the harness
// streaming hook (-subject -runs).
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:7575", "collector base URL")
	subject := fs.String("subject", "", "run this built-in subject and stream its reports")
	runs := fs.Int("runs", 2000, "number of runs (with -subject)")
	mode := fs.String("mode", "uniform", "sampling: always, uniform, or nonuniform (with -subject)")
	reportsFile := fs.String("reports", "", "stream a report set saved by `cbi run -save` instead of running")
	batch := fs.Int("batch", 64, "reports per batch")
	top := fs.Int("top", 0, "print the server's top-K ranking after submitting")
	key := fs.String("key", "", "API key for collectors that require one")
	planFollow := fs.Duration("plan-follow", 0, "poll GET /v1/plan at this interval and sample under the served plan (with -subject; 0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()

	var set *report.Set
	switch {
	case *reportsFile != "" && *subject != "":
		return fmt.Errorf("use -subject or -reports, not both")
	case *reportsFile != "":
		f, err := os.Open(*reportsFile)
		if err != nil {
			return err
		}
		set, err = report.Unmarshal(f)
		f.Close()
		if err != nil {
			return err
		}
	case *subject != "":
		// Resolved below; the harness streams as it runs.
	default:
		return fmt.Errorf("one of -subject or -reports is required")
	}

	if set != nil {
		client := collector.NewClient(*addr, set.NumSites, set.NumPreds,
			collector.WithBatchSize(*batch), collector.WithAPIKey(*key))
		if err := client.SubmitSet(ctx, set); err != nil {
			return err
		}
		fmt.Printf("submitted %d reports (%d retries)\n", client.Submitted(), client.Retries())
		return finishSubmit(ctx, client, *top)
	}

	subj := subjects.ByName(*subject)
	if subj == nil {
		return fmt.Errorf("unknown subject %q", *subject)
	}
	var m harness.Mode
	switch *mode {
	case "always":
		m = harness.SampleAlways
	case "uniform":
		m = harness.SampleUniform
	case "nonuniform":
		m = harness.SampleNonuniform
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	plan := instrument.BuildPlan(subj.Program(true))
	client := collector.NewClient(*addr, plan.NumSites(), plan.NumPreds(),
		collector.WithBatchSize(*batch), collector.WithAPIKey(*key))
	var planHook func() (uint64, []float64)
	if *planFollow > 0 {
		if _, _, err := client.FetchPlan(ctx); err != nil {
			return fmt.Errorf("fetching initial sampling plan: %v", err)
		}
		stop := client.FollowPlan(ctx, *planFollow)
		defer stop()
		planHook = client.PlanFunc()
		fmt.Printf("following sampling plan v%d from %s\n", client.CurrentPlan().Version, *addr)
	}
	var streamMu sync.Mutex
	var streamErr error
	res := harness.Run(harness.Config{
		Subject: subj,
		Runs:    *runs,
		Mode:    m,
		Plan:    planHook,
		Stream: func(run int, rep *report.Report, meta harness.RunMeta) {
			if err := client.Add(ctx, rep); err != nil {
				streamMu.Lock()
				if streamErr == nil {
					streamErr = err
				}
				streamMu.Unlock()
			}
		},
	})
	if streamErr != nil {
		return streamErr
	}
	if err := client.Flush(ctx); err != nil {
		return err
	}
	fmt.Printf("%s: streamed %d runs (%d failing) to %s (%d retries)\n",
		subj.Name, len(res.Set.Reports), res.NumFailing(), *addr, client.Retries())
	return finishSubmit(ctx, client, *top)
}

// cmdPredictors fetches a collector's live cause-isolation ranking —
// the /v1/predictors view of the retained run window: elimination
// order, initial and effective thermometers, and affinity lists.
func cmdPredictors(args []string) error {
	fs := flag.NewFlagSet("predictors", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:7575", "collector base URL")
	top := fs.Int("top", 12, "max predictors to fetch (0 = no cap)")
	affinityK := fs.Int("affinity", 3, "affinity entries per predictor (0 = none)")
	engine := fs.String("engine", "", "scoring engine (see ENGINES.md; default: the paper's iterative elimination)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	// Dimensions are only needed for submitting; stats carries them.
	client := collector.NewClient(*addr, 0, 0)
	stats, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("collector: %d retained runs of %d ingested (%d failing), run-log cap %d, %d evicted\n",
		stats.RunLogRuns, stats.ReportsApplied, stats.Failing, stats.RunLogCap, stats.RunLogEvicted)
	if *engine != "" && *engine != core.DefaultEngineName {
		rows, err := client.EnginePredictors(ctx, *engine, *top)
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			fmt.Printf("engine %q selected no predictors (no failing runs in the retained window?)\n", *engine)
			return nil
		}
		fmt.Printf("live ranked bug predictors (engine %s):\n", *engine)
		for _, e := range rows {
			fmt.Printf("%2d. pred %5d  score=%.4f  F=%d S=%d  Fobs=%d Sobs=%d\n",
				e.Rank, e.Pred, e.Score, e.F, e.S, e.Fobs, e.Sobs)
		}
		return nil
	}
	preds, err := client.Predictors(ctx, *top, *affinityK)
	if err != nil {
		return err
	}
	if len(preds) == 0 {
		fmt.Println("elimination selected no predictors (no failing runs in the retained window?)")
		return nil
	}
	fmt.Println("live ranked bug predictors (initial | effective thermometers):")
	for i, e := range preds {
		ti := thermo.Thermometer{Len01: e.Initial.Thermo.Len01, Black: e.Initial.Thermo.Black,
			Dark: e.Initial.Thermo.Dark, Light: e.Initial.Thermo.Light,
			White: e.Initial.Thermo.White, Obs: e.Initial.Thermo.Obs}
		te := thermo.Thermometer{Len01: e.Effective.Thermo.Len01, Black: e.Effective.Thermo.Black,
			Dark: e.Effective.Thermo.Dark, Light: e.Effective.Thermo.Light,
			White: e.Effective.Thermo.White, Obs: e.Effective.Thermo.Obs}
		fmt.Printf("%2d. %s %s  pred %5d  Imp=%.3f Inc=%.3f±%.3f F=%d S=%d\n",
			i+1, ti.Text(16), te.Text(16), e.Pred,
			e.Effective.Importance, e.Initial.Increase, e.Initial.IncreaseCI,
			e.Initial.F, e.Initial.S)
		for _, a := range e.Affinity {
			fmt.Printf("      affinity: pred %5d  drop %.3f (%.3f -> %.3f)\n",
				a.Pred, a.Drop, a.Before, a.After)
		}
	}
	return nil
}

// finishSubmit prints the server's view: stats, plus the live top-K
// ranking when requested. Ingestion is asynchronous — acked batches
// may still be draining through the queue — so it first waits
// (bounded) for the applied count to catch up with the enqueued count
// rather than print an undercount of what was just submitted.
func finishSubmit(ctx context.Context, client *collector.Client, top int) error {
	stats, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	if stats.NumPreds == 0 {
		// A shard router answers /v1/stats with routing counters, not
		// collector counters; per-shard totals live on the shards and
		// the merged view on the gateway.
		fmt.Println("server: submitted via a shard router; query a gateway or shard /v1/stats for applied counts")
		return nil
	}
	deadline := time.Now().Add(10 * time.Second)
	for stats.ReportsApplied < stats.ReportsEnqueued && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		if stats, err = client.Stats(ctx); err != nil {
			return err
		}
	}
	if stats.ReportsApplied < stats.ReportsEnqueued {
		fmt.Printf("server: still draining (%d of %d enqueued reports applied)\n",
			stats.ReportsApplied, stats.ReportsEnqueued)
	}
	fmt.Printf("server: %d runs applied (%d failing, %d successful), queue depth %d\n",
		stats.ReportsApplied, stats.Failing, stats.Successful, stats.QueueDepth)
	if top <= 0 {
		return nil
	}
	scores, err := client.Scores(ctx, top)
	if err != nil {
		return err
	}
	fmt.Printf("live top-%d predictors by Importance:\n", top)
	for i, e := range scores {
		fmt.Printf("%2d. pred %5d  Imp=%.3f Inc=%.3f±%.3f F=%d S=%d\n",
			i+1, e.Pred, e.Importance, e.Increase, e.IncreaseCI, e.F, e.S)
	}
	return nil
}
