package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cbi/internal/collector"
	"cbi/internal/corpus"
	"cbi/internal/report"
	"cbi/internal/shard"
)

// cmdRoute runs the sharded tier's write-path front: a router that
// consistent-hashes each submitting client onto one of the backend
// collectors and forwards its report batches there, with failover when
// a backend is down.
func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", ":7570", "listen address")
	backends := fs.String("backends", "", "comma-separated collector base URLs (required)")
	queue := fs.Int("queue", 256, "pending-forward queue bound per backend, in batches")
	workers := fs.Int("workers", 4, "forwarder goroutines per backend")
	health := fs.Duration("health-every", 2*time.Second, "backend health-probe interval")
	migBuffer := fs.Int("migration-buffer", 1024, "writes parked per migration while its key ranges are paused for cutover")
	planFrom := fs.String("plan-from", "", "base URL GET /v1/plan is forwarded to (default: first live backend; point at the gateway in planner deployments)")
	readFrom := fs.String("read-from", "", "base URL GET /v1/predictors and /v1/compare are relayed to (default: first live backend; point at the gateway for merged fleet-wide rankings)")
	key := fs.String("key", "", "API key presented on router-originated /v1/revoke calls to backends, and required on POST /v1/ring topology changes")
	rateLimit := fs.Float64("rate-limit", 0, "per-key write rate limit on /v1/reports in requests per second (0 = unlimited)")
	rateBurst := fs.Int("rate-burst", 0, "write rate-limit burst allowance (0 = 2x -rate-limit)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	slowMs := fs.Int("slow-request-ms", 0, "log any HTTP request slower than this many milliseconds (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	urls := splitURLs(*backends)
	if len(urls) == 0 {
		return fmt.Errorf("route: -backends is required (comma-separated collector URLs)")
	}
	r, err := shard.NewRouter(shard.RouterConfig{
		Backends:        urls,
		QueueSize:       *queue,
		Workers:         *workers,
		MigrationBuffer: *migBuffer,
		HealthInterval:  *health,
		PlanFrom:        strings.TrimSuffix(strings.TrimSpace(*planFrom), "/"),
		ReadFrom:        strings.TrimSuffix(strings.TrimSpace(*readFrom), "/"),
		APIKey:          *key,
		RateLimit:       *rateLimit,
		RateBurst:       *rateBurst,
		EnablePprof:     *pprofFlag,
		SlowRequest:     time.Duration(*slowMs) * time.Millisecond,
		Logf:            log.Printf,
	})
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("router on %s over %d backends\n", *addr, len(urls))
	return serveUntilSignal(*addr, r.Handler(), func() { r.Drain(10 * time.Second) })
}

// cmdGateway runs the sharded tier's read-path front: a gateway that
// fans queries out to every shard and serves the merged /v1/scores,
// /v1/stats and /v1/predictors — the same responses one unsharded
// collector over all the runs would give.
func cmdGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	addr := fs.String("addr", ":7580", "listen address")
	shardsFlag := fs.String("shards", "", "comma-separated collector base URLs (required unless -ring-from is set)")
	ringFrom := fs.String("ring-from", "", "router base URL whose GET /v1/ring supplies the live shard set (survives elastic resizes)")
	ringRefresh := fs.Duration("ring-refresh", 5*time.Second, "ring polling interval with -ring-from")
	subject := fs.String("subject", "", "built-in subject fixing the predicate universe")
	program := fs.String("program", "", "MiniC source file fixing the predicate universe")
	timeout := fs.Duration("timeout", 15*time.Second, "per-shard fetch timeout")
	planEvery := fs.Duration("plan-every", 0, "re-plan fleet sampling rates from the merged shard view at this interval (0 = proxy plans from shards instead)")
	planTarget := fs.Float64("plan-target", 0, "expected samples per site per run the planner aims for (0 = default 100)")
	planMinRate := fs.Float64("plan-min-rate", 0, "floor for planned sampling rates (0 = default 1/100)")
	planMinRuns := fs.Int64("plan-min-runs", 0, "minimum merged runs before the planner publishes (0 = default 100)")
	planBoostRadius := fs.Int("plan-boost-radius", 0, "half-width of the top-predictor site neighborhood boosted to rate 1 (0 = no boosting)")
	planPushKey := fs.String("plan-push-key", "", "API key presented when pushing plans to shards that require one")
	noDelta := fs.Bool("no-delta", false, "disable warm delta sync; fetch a full snapshot from every shard per query")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	slowMs := fs.Int("slow-request-ms", 0, "log any HTTP request slower than this many milliseconds (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	urls := splitURLs(*shardsFlag)
	ring := strings.TrimSuffix(strings.TrimSpace(*ringFrom), "/")
	if len(urls) == 0 && ring == "" {
		return fmt.Errorf("gateway: -shards or -ring-from is required")
	}
	plan, name, err := planFor(*subject, *program)
	if err != nil {
		return err
	}
	g, err := shard.NewGateway(shard.GatewayConfig{
		Shards:           urls,
		RingFrom:         ring,
		RingRefresh:      *ringRefresh,
		NumSites:         plan.NumSites(),
		NumPreds:         plan.NumPreds(),
		SiteOf:           siteOf(plan),
		Fingerprint:      plan.Fingerprint(),
		Timeout:          *timeout,
		PlanEvery:        *planEvery,
		PlanTarget:       *planTarget,
		PlanMinRate:      *planMinRate,
		PlanMinRuns:      *planMinRuns,
		PlanBoostRadius:  *planBoostRadius,
		PlanPushKey:      *planPushKey,
		DisableDeltaSync: *noDelta,
		EnablePprof:      *pprofFlag,
		SlowRequest:      time.Duration(*slowMs) * time.Millisecond,
		Logf:             log.Printf,
	})
	if err != nil {
		return err
	}
	defer g.Close()
	if ring != "" {
		fmt.Printf("gateway for %s on %s over ring %s (%d seed shards)\n", name, *addr, ring, len(urls))
	} else {
		fmt.Printf("gateway for %s on %s over %d shards\n", name, *addr, len(urls))
	}
	return serveUntilSignal(*addr, g.Handler(), nil)
}

// cmdMerge folds collector state files together offline, or pushes one
// collector's saved state into a live peer's /v1/merge — the reducer
// step of a sharded deployment.
func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "", "write the merged snapshot (and run log) to this path")
	push := fs.String("push", "", "POST each input as a merge segment to this collector base URL")
	key := fs.String("key", "", "API key for -push against collectors that require one")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("usage: cbi merge [-o merged.snap | -push URL] <snapshot>...")
	}
	if (*out == "") == (*push == "") {
		return fmt.Errorf("merge: exactly one of -o or -push is required")
	}

	type state struct {
		snap *corpus.AggSnapshot
		set  *report.Set
	}
	var states []state
	for _, p := range paths {
		snap, err := corpus.ReadAggSnapshotFile(p)
		if err != nil {
			return fmt.Errorf("merge: %s: %v", p, err)
		}
		set, err := corpus.ReadRunLogFile(corpus.RunLogPath(p))
		if err != nil {
			if !os.IsNotExist(err) {
				return fmt.Errorf("merge: %s: %v", corpus.RunLogPath(p), err)
			}
			set = &report.Set{NumSites: snap.NumSites, NumPreds: snap.NumPreds}
		}
		states = append(states, state{snap, set})
	}

	if *push != "" {
		ctx := context.Background()
		first := states[0].snap
		client := collector.NewClient(*push, first.NumSites, first.NumPreds,
			collector.WithAPIKey(*key))
		total := 0
		for i, st := range states {
			if err := client.PushMerge(ctx, st.snap, st.set); err != nil {
				return fmt.Errorf("merge: pushing %s: %v", paths[i], err)
			}
			total += len(st.set.Reports)
			fmt.Printf("pushed %s: %d runs of counters, %d logged runs\n",
				paths[i], st.snap.NumF+st.snap.NumS, len(st.set.Reports))
		}
		fmt.Printf("pushed %d segments (%d logged runs) to %s\n", len(states), total, *push)
		return nil
	}

	merged := corpus.NewAggSnapshot(states[0].snap.NumSites, states[0].snap.NumPreds)
	set := &report.Set{NumSites: merged.NumSites, NumPreds: merged.NumPreds}
	for i, st := range states {
		if err := corpus.MergeAggSnapshot(merged, st.snap); err != nil {
			return fmt.Errorf("merge: %s: %v", paths[i], err)
		}
		set.Reports = append(set.Reports, st.set.Reports...)
	}
	merged.Logged = int64(len(set.Reports))
	if err := corpus.WriteRunLogFile(corpus.RunLogPath(*out), set); err != nil {
		return err
	}
	if err := corpus.WriteAggSnapshotFile(*out, merged); err != nil {
		return err
	}
	fmt.Printf("merged %d snapshots: %d runs of counters (%d failing), %d logged runs -> %s\n",
		len(states), merged.NumF+merged.NumS, merged.NumF, len(set.Reports), *out)
	return nil
}

func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(u), "/"))
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

// serveUntilSignal serves handler on addr until SIGINT/SIGTERM, then
// shuts the HTTP server down gracefully and runs drain (when set)
// before returning.
func serveUntilSignal(addr string, handler http.Handler, drain func()) error {
	srv := &http.Server{Addr: addr, Handler: handler}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		if drain != nil {
			drain()
		}
		done <- err
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return <-done
}
