package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cbi/internal/instrument"
	"cbi/internal/lang"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if got, err := parseInts(""); err != nil || got != nil {
		t.Errorf("empty: %v, %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad int accepted")
	}
}

func TestSplitTarget(t *testing.T) {
	target, rest, err := splitTarget([]string{"prog.mc", "-runs", "5"}, "usage")
	if err != nil || target != "prog.mc" || len(rest) != 2 {
		t.Errorf("splitTarget = %q, %v, %v", target, rest, err)
	}
	if _, _, err := splitTarget([]string{"-runs", "5"}, "usage"); err == nil {
		t.Error("flag-first args accepted as target")
	}
	if _, _, err := splitTarget(nil, "usage"); err == nil {
		t.Error("empty args accepted")
	}
}

func TestSiteLabel(t *testing.T) {
	sym := &lang.Symbol{Name: "y"}
	cases := []struct {
		site *instrument.Site
		want string
	}{
		{&instrument.Site{Text: "x > 0"}, "x > 0"},
		{&instrument.Site{Text: "x", PairKind: instrument.PairVar, Partner: sym}, "x ~ y"},
		{&instrument.Site{Text: "x", PairKind: instrument.PairConst, Const: 7}, "x ~ 7"},
		{&instrument.Site{Text: "x", PairKind: instrument.PairOld}, "x ~ old value"},
	}
	for _, c := range cases {
		if got := siteLabel(c.site); got != c.want {
			t.Errorf("siteLabel = %q, want %q", got, c.want)
		}
	}
}

func TestLoadProgram(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.mc")
	os.WriteFile(good, []byte("int main() { return 0; }"), 0o644)
	if _, err := loadProgram(good); err != nil {
		t.Errorf("good program rejected: %v", err)
	}
	bad := filepath.Join(dir, "bad.mc")
	os.WriteFile(bad, []byte("int main() { return x; }"), 0o644)
	if _, err := loadProgram(bad); err == nil {
		t.Error("ill-typed program accepted")
	}
	if _, err := loadProgram(filepath.Join(dir, "missing.mc")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCmdCheckAndSites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mc")
	os.WriteFile(path, []byte(`
int main() {
  int x = read();
  if (x > 3) { output(x); }
  return 0;
}`), 0o644)
	if err := cmdCheck([]string{path}); err != nil {
		t.Errorf("cmdCheck: %v", err)
	}
	if err := cmdPrint([]string{path}); err != nil {
		t.Errorf("cmdPrint: %v", err)
	}
	if err := cmdSites([]string{path}); err != nil {
		t.Errorf("cmdSites: %v", err)
	}
	if err := cmdCheck([]string{}); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Error("cmdCheck without args should fail with usage")
	}
}

func TestCmdRunAndAnalyzeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "buggy.mc")
	os.WriteFile(path, []byte(`
int main() {
  int a = read();
  int b = read();
  if (a > 200 && b < 10) {
    int* p = null;
    p[0] = 1;
  }
  output(a + b);
  return 0;
}`), 0o644)
	reports := filepath.Join(dir, "reports.txt")
	if err := cmdRun([]string{path, "-runs", "400", "-mode", "always", "-save", reports}); err != nil {
		t.Fatalf("cmdRun: %v", err)
	}
	if err := cmdAnalyze([]string{path, "-reports", reports}); err != nil {
		t.Fatalf("cmdAnalyze: %v", err)
	}
	// Analyzing with a different program must be refused.
	other := filepath.Join(dir, "other.mc")
	os.WriteFile(other, []byte("int main() { return 0; }"), 0o644)
	if err := cmdAnalyze([]string{other, "-reports", reports}); err == nil {
		t.Error("corpus/program mismatch accepted")
	}
}
