package main

import (
	"flag"
	"fmt"
	"os"

	"cbi/internal/core"
	"cbi/internal/instrument"
	"cbi/internal/report"
)

// cmdAnalyze re-analyzes a saved feedback-report corpus (produced by
// `cbi run -save`). The instrumentation plan is re-derived from the
// program source, which must be the same source the corpus was
// collected from; the report header's site/predicate counts are
// checked against the plan to catch mismatches.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	reports := fs.String("reports", "", "saved feedback reports (required)")
	top := fs.Int("top", 10, "max predictors to print")
	target, rest, err := splitTarget(args, "cbi analyze <file.mc> -reports saved.txt")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *reports == "" {
		return fmt.Errorf("usage: cbi analyze <file.mc> -reports saved.txt")
	}
	prog, err := loadProgram(target)
	if err != nil {
		return err
	}
	plan := instrument.BuildPlan(prog)

	f, err := os.Open(*reports)
	if err != nil {
		return err
	}
	defer f.Close()
	set, err := report.Unmarshal(f)
	if err != nil {
		return err
	}
	if set.NumSites != plan.NumSites() || set.NumPreds != plan.NumPreds() {
		return fmt.Errorf("corpus was collected from a different program: corpus has %d sites / %d predicates, %s yields %d / %d",
			set.NumSites, set.NumPreds, target, plan.NumSites(), plan.NumPreds())
	}
	fmt.Printf("%d reports (%d failing), %d sites, %d predicates\n",
		len(set.Reports), set.NumFailing(), set.NumSites, set.NumPreds)
	if set.NumFailing() == 0 {
		fmt.Println("no failing runs; nothing to isolate")
		return nil
	}

	siteOf := make([]int32, plan.NumPreds())
	for i, p := range plan.Preds {
		siteOf[i] = int32(p.Site)
	}
	printRanking(core.Input{Set: set, SiteOf: siteOf}, func(p int) string {
		pr := plan.Preds[p]
		s := plan.Sites[pr.Site]
		return fmt.Sprintf("%s (%s:%d)", pr.Text, s.Func, s.Line)
	}, *top)
	return nil
}
