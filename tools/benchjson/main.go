// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark record, and optionally appends it to a trajectory
// artifact — a committed JSON array that accumulates one entry per
// recorded speed pass, so ingest-throughput history survives in the
// repository instead of in someone's scrollback.
//
// Usage:
//
//	go test -run=xxx -bench 'BenchmarkCollectorIngest' . |
//	  go run ./tools/benchjson -note "baseline" -append -o BENCH_collector.json
//
// Without -o the entry is printed to stdout. With -append the existing
// artifact (if any) is read first and the new entry appended; without
// it the file is overwritten with a single-entry trajectory.
//
// With -gate-allocs N the new entry is first compared against the
// latest trajectory entry recording each benchmark: any benchmark
// whose allocs/op regressed by more than N percent fails the run
// before anything is written, so CI can gate allocation regressions on
// the committed history. Entries recorded without -benchmem carry no
// alloc metrics and are skipped when looking for a baseline. Adding
// -check makes the run gate-only: the -o trajectory supplies the
// baselines but is never rewritten (the CI mode).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one `BenchmarkName-P  N  ...` result line.
type Benchmark struct {
	Name    string  `json:"name"`
	Pkg     string  `json:"pkg,omitempty"`
	Procs   int     `json:"procs,omitempty"`
	Runs    int64   `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other reported unit (MB/s, B/op, allocs/op,
	// custom b.ReportMetric units like reports/op).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Entry is one trajectory record: the machine context `go test` printed
// plus every benchmark parsed from the stream.
type Entry struct {
	Note       string      `json:"note,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func parse(r io.Reader) (*Entry, error) {
	e := &Entry{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			e.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			e.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			e.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			b.Pkg = pkg
			e.Benchmarks = append(e.Benchmarks, *b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(e.Benchmarks) == 0 {
		return nil, errors.New("no benchmark result lines on stdin")
	}
	sort.Slice(e.Benchmarks, func(i, j int) bool {
		a, b := e.Benchmarks[i], e.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	return e, nil
}

// parseBench parses `BenchmarkFoo-8  1000  22749 ns/op  1.2 MB/s ...`:
// the name (with a trailing -GOMAXPROCS suffix), the iteration count,
// then value/unit pairs.
func parseBench(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, errors.New("too few fields")
	}
	b := &Benchmark{Name: fields[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("iteration count: %w", err)
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("metric value %q: %w", fields[i], err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, nil
}

// gateAllocs compares each new benchmark's allocs/op against the most
// recent trajectory entry that recorded the same benchmark with an
// allocs/op metric; a regression beyond pct percent is an error.
// History entries without alloc metrics (recorded before -benchmem was
// part of the bench step) are skipped, so the gate arms itself on the
// first entry that carries them.
func gateAllocs(trajectory []*Entry, entry *Entry, pct float64) error {
	var violations []string
	for _, b := range entry.Benchmarks {
		now, ok := b.Metrics["allocs/op"]
		if !ok {
			continue
		}
		base, found := -1.0, false
		for i := len(trajectory) - 1; i >= 0 && !found; i-- {
			for _, old := range trajectory[i].Benchmarks {
				if old.Name == b.Name && old.Pkg == b.Pkg {
					if v, ok := old.Metrics["allocs/op"]; ok {
						base, found = v, true
					}
					break
				}
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "benchjson: %s: no prior allocs/op in trajectory; gate skipped\n", b.Name)
			continue
		}
		if now > base*(1+pct/100) {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op %.1f exceeds baseline %.1f by more than %.0f%%", b.Name, now, base, pct))
		}
	}
	if len(violations) > 0 {
		return errors.New("allocs/op regression:\n  " + strings.Join(violations, "\n  "))
	}
	return nil
}

func run() error {
	out := flag.String("o", "", "trajectory file to write (default: print the entry to stdout)")
	appendTo := flag.Bool("append", false, "append to the existing -o trajectory instead of replacing it")
	note := flag.String("note", "", "free-form label stored with the entry")
	gatePct := flag.Float64("gate-allocs", 0,
		"fail if any benchmark's allocs/op regresses more than this percent vs the latest trajectory entry recording it (0 = off)")
	check := flag.Bool("check", false,
		"gate-only mode: read the -o trajectory for baselines, print the entry, write nothing")
	flag.Parse()

	entry, err := parse(os.Stdin)
	if err != nil {
		return err
	}
	entry.Note = *note

	var trajectory []*Entry
	if *out != "" && (*appendTo || *gatePct > 0 || *check) {
		data, err := os.ReadFile(*out)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First entry.
		case err != nil:
			return err
		default:
			if err := json.Unmarshal(data, &trajectory); err != nil {
				return fmt.Errorf("existing trajectory %s: %w", *out, err)
			}
		}
	}

	if *gatePct > 0 {
		if err := gateAllocs(trajectory, entry, *gatePct); err != nil {
			return err
		}
	}

	if *out == "" || *check {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(entry)
	}

	if !*appendTo {
		trajectory = nil
	}
	trajectory = append(trajectory, entry)
	data, err := json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*out, append(data, '\n'), 0o644)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
