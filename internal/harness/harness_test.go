package harness

import (
	"testing"

	"cbi/internal/core"
	"cbi/internal/instrument"
	"cbi/internal/subjects"
)

func TestCcryptEndToEnd(t *testing.T) {
	res := Run(Config{Subject: subjects.Ccrypt(), Runs: 1200, Mode: SampleAlways, Workers: 4})
	if len(res.Set.Reports) != 1200 {
		t.Fatalf("reports: %d", len(res.Set.Reports))
	}
	failing := res.NumFailing()
	if failing < 200 || failing > 500 {
		t.Fatalf("failing = %d, want ~30%% of 1200", failing)
	}

	in := res.CoreInput()
	agg := core.Aggregate(in)
	keep := core.FilterByIncrease(agg, core.Z95)
	if len(keep) == 0 {
		t.Fatal("Increase filter kept nothing")
	}
	if len(keep) >= res.Plan.NumPreds()/2 {
		t.Errorf("Increase filter kept %d of %d predicates; expected a large reduction",
			len(keep), res.Plan.NumPreds())
	}

	ranked := core.Eliminate(in, core.ElimOptions{})
	if len(ranked) == 0 {
		t.Fatal("elimination selected nothing")
	}
	// The top predictor must actually predict the bug: most failing
	// runs exhibiting bug 1 have it true.
	top := ranked[0].Pred
	var withBug, predicted int
	for i, m := range res.Metas {
		if m.Failed() && m.HasBug(1) {
			withBug++
			if res.Set.Reports[i].True(int32(top)) {
				predicted++
			}
		}
	}
	if withBug == 0 {
		t.Fatal("no failing runs with bug 1")
	}
	if float64(predicted)/float64(withBug) < 0.8 {
		t.Errorf("top predictor %q covers only %d/%d bug-1 failures",
			res.PredText(top), predicted, withBug)
	}
	t.Logf("ccrypt top predictor: %s (covers %d/%d)", res.PredText(top), predicted, withBug)
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Subject: subjects.Bc(), Runs: 300, Mode: SampleUniform, UniformRate: 0.1, Workers: 3}
	a := Run(cfg)
	b := Run(cfg)
	for i := range a.Set.Reports {
		ra, rb := a.Set.Reports[i], b.Set.Reports[i]
		if ra.Failed != rb.Failed || len(ra.TruePreds) != len(rb.TruePreds) {
			t.Fatalf("run %d differs across identical experiments", i)
		}
		for j := range ra.TruePreds {
			if ra.TruePreds[j] != rb.TruePreds[j] {
				t.Fatalf("run %d pred lists differ", i)
			}
		}
	}
}

func TestUniformSamplingSparsifiesReports(t *testing.T) {
	full := Run(Config{Subject: subjects.Bc(), Runs: 200, Mode: SampleAlways, Workers: 4})
	sparse := Run(Config{Subject: subjects.Bc(), Runs: 200, Mode: SampleUniform, UniformRate: 0.01, Workers: 4})
	var fullObs, sparseObs int
	for i := range full.Set.Reports {
		fullObs += len(full.Set.Reports[i].ObservedSites)
		sparseObs += len(sparse.Set.Reports[i].ObservedSites)
	}
	if sparseObs*5 > fullObs {
		t.Errorf("1%% sampling observed %d site-runs vs %d at 100%%; expected a big reduction",
			sparseObs, fullObs)
	}
	// Labels are identical regardless of sampling (sampling never
	// perturbs execution).
	for i := range full.Metas {
		if full.Metas[i].Failed() != sparse.Metas[i].Failed() {
			t.Fatalf("run %d label changed under sampling", i)
		}
	}
}

func TestTrainRatesShape(t *testing.T) {
	s := subjects.Bc()
	plan := planFor(t, s)
	rates := TrainRates(s, plan, 100, 100)
	if len(rates) != plan.NumSites() {
		t.Fatalf("rates: %d, sites: %d", len(rates), plan.NumSites())
	}
	var lows, highs int
	for _, r := range rates {
		switch {
		case r == 1:
			highs++
		case r < 1:
			lows++
		}
	}
	// Rarely-reached sites keep rate 1; the calculator's hot loop sites
	// must be sampled sparsely.
	if highs == 0 {
		t.Error("no site kept rate 1 (rare sites should)")
	}
	if lows == 0 {
		t.Error("no hot site received a low rate")
	}
}

func planFor(t *testing.T, s *subjects.Subject) *instrument.Plan {
	t.Helper()
	res := Run(Config{Subject: s, Runs: 1, Mode: SampleAlways, Workers: 1})
	return res.Plan
}

func TestFailingRunsPerBug(t *testing.T) {
	res := Run(Config{Subject: subjects.Rhythmbox(), Runs: 500, Mode: SampleAlways, Workers: 4})
	per := res.FailingRunsPerBug()
	if per[1] == 0 || per[2] == 0 {
		t.Errorf("expected both rhythmbox bugs among failures: %v", per)
	}
}

func TestOracleLabelsNonCrashingBug(t *testing.T) {
	res := Run(Config{Subject: subjects.Moss(), Runs: 600, Mode: SampleUniform, UniformRate: 0.2, Workers: 4})
	var oracleOnly int
	for i := range res.Metas {
		if res.Metas[i].OracleMismatch && !res.Metas[i].Crashed {
			oracleOnly++
		}
	}
	if oracleOnly == 0 {
		t.Error("oracle never labeled a non-crashing run as failing")
	}
}

// TestEngineEquivalence: the VM backend must produce byte-identical
// experiment results to the tree-walker — same labels, same reports.
func TestEngineEquivalence(t *testing.T) {
	base := Config{Subject: subjects.Exif(), Runs: 400, Mode: SampleUniform, UniformRate: 0.05, Workers: 4}
	vmCfg := base
	vmCfg.Engine = EngineVM
	a := Run(base)
	b := Run(vmCfg)
	if a.NumFailing() != b.NumFailing() {
		t.Fatalf("failing counts differ: tree %d vs vm %d", a.NumFailing(), b.NumFailing())
	}
	for i := range a.Set.Reports {
		ra, rb := a.Set.Reports[i], b.Set.Reports[i]
		if ra.Failed != rb.Failed || len(ra.TruePreds) != len(rb.TruePreds) {
			t.Fatalf("run %d differs across engines", i)
		}
		for j := range ra.TruePreds {
			if ra.TruePreds[j] != rb.TruePreds[j] {
				t.Fatalf("run %d pred lists differ across engines", i)
			}
		}
	}
}

// TestRelabelBy isolates predictors of an arbitrary event (paper §5):
// here, "the run crashed with a stack-overflow-free null dereference",
// using ground truth only to verify the result.
func TestRelabelBy(t *testing.T) {
	res := Run(Config{Subject: subjects.Rhythmbox(), Runs: 800, Mode: SampleAlways, Workers: 4})
	// Event: the run exercised ground-truth bug 1 (the timer race).
	in := res.RelabelBy(nil, func(i int, m *RunMeta) bool { return m.HasBug(1) })
	ranked := core.Eliminate(in, core.ElimOptions{MaxPredictors: 3})
	if len(ranked) == 0 {
		t.Fatal("no predictors for the custom event")
	}
	// The top predictor must concentrate on bug-1 runs.
	top := int32(ranked[0].Pred)
	var eventRuns, predicted int
	for i := range res.Metas {
		if res.Metas[i].HasBug(1) {
			eventRuns++
			if res.Set.Reports[i].True(top) {
				predicted++
			}
		}
	}
	if eventRuns == 0 {
		t.Fatal("event never occurred")
	}
	if float64(predicted)/float64(eventRuns) < 0.5 {
		t.Errorf("top predictor %s covers %d/%d event runs", res.PredText(int(top)), predicted, eventRuns)
	}
	// Dropping runs via keep must shrink the set.
	in2 := res.RelabelBy(func(i int, m *RunMeta) bool { return !m.Crashed }, func(i int, m *RunMeta) bool { return m.OracleMismatch })
	if len(in2.Set.Reports) >= len(res.Set.Reports) {
		t.Error("keep filter dropped nothing")
	}
}
