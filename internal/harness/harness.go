// Package harness drives end-to-end statistical debugging experiments:
// it instruments a subject program, optionally trains nonuniform
// sampling rates, executes many randomized runs in parallel, labels
// each run (crash, or output-oracle mismatch for subjects with
// non-crashing bugs), and bundles the feedback reports with ground
// truth for analysis.
package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"cbi/internal/core"
	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/lang"
	"cbi/internal/report"
	"cbi/internal/sampling"
	"cbi/internal/subjects"
	"cbi/internal/vm"
)

// engineRunner is the interface both execution backends satisfy.
type engineRunner interface {
	Run(interp.Input) *interp.Outcome
}

// Mode selects the sampling policy for an experiment.
type Mode int

// Sampling modes.
const (
	// SampleAlways observes every site reach (the paper's validation
	// configuration "sampling rate of all predicates set to 100%").
	SampleAlways Mode = iota
	// SampleUniform uses one rate for every site (default 1/100).
	SampleUniform
	// SampleNonuniform trains per-site rates on a training set so each
	// site expects ~TargetSamples observations per run (paper §4).
	SampleNonuniform
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case SampleAlways:
		return "always"
	case SampleUniform:
		return "uniform"
	default:
		return "nonuniform"
	}
}

// Engine selects the execution backend.
type Engine int

// Execution engines.
const (
	// EngineTree is the tree-walking interpreter (default).
	EngineTree Engine = iota
	// EngineVM is the bytecode compiler + stack VM, semantically
	// identical (verified by the vm package's differential tests) and
	// considerably faster.
	EngineVM
)

// String names the engine.
func (e Engine) String() string {
	if e == EngineVM {
		return "vm"
	}
	return "tree"
}

// Config configures one experiment.
type Config struct {
	Subject *subjects.Subject
	// Runs is the number of monitored runs (the paper uses ~32,000).
	Runs int
	Mode Mode
	// Engine selects the execution backend (default: tree-walker).
	Engine Engine
	// UniformRate is the rate for SampleUniform (default 1/100).
	UniformRate float64
	// TrainingRuns is the size of the rate-training set for
	// SampleNonuniform (default 1,000, as in the paper).
	TrainingRuns int
	// TargetSamples is the expected per-run sample count targeted by
	// nonuniform planning (default 100).
	TargetSamples float64
	// Workers is the number of parallel workers (default GOMAXPROCS).
	Workers int
	// Instrument selects instrumentation schemes (zero value: all).
	Instrument instrument.Options
	// SeedBase offsets run seeds, for run-to-run variation studies.
	SeedBase int64
	// Stream, if non-nil, receives every completed run's feedback
	// report and ground truth as soon as the run finishes — the hook a
	// deployment uses to feed a live collector (internal/collector)
	// instead of, or as well as, the in-memory Set. It is invoked
	// concurrently from worker goroutines and must be safe for
	// concurrent use (collector.Client is).
	Stream func(run int, rep *report.Report, meta RunMeta)
	// Plan, if non-nil, closes the sampling loop: before each run, every
	// worker consults it for the current fleet plan (version, per-site
	// rates) and adopts the rates when the version changed since the
	// worker's last look — the client half of internal/plan's live
	// re-planning. It overrides Mode's sampler choice with a Nonuniform
	// sampler seeded from the first non-nil rates (UniformRate everywhere
	// until then). collector.Client.PlanFunc is the intended source; it
	// must be safe for concurrent use (it is called from every worker).
	Plan func() (version uint64, rates []float64)
}

// RunMeta is per-run ground truth and crash metadata, which a real
// deployment would NOT have; it is used to evaluate the analysis.
type RunMeta struct {
	Crashed        bool
	OracleMismatch bool
	Trap           interp.TrapKind
	StackSig       string
	Bugs           []int
}

// Failed reports the run label used by the analysis.
func (m *RunMeta) Failed() bool { return m.Crashed || m.OracleMismatch }

// HasBug reports whether ground truth recorded the bug.
func (m *RunMeta) HasBug(k int) bool {
	for _, b := range m.Bugs {
		if b == k {
			return true
		}
	}
	return false
}

// Result bundles everything an experiment produced.
type Result struct {
	Config Config
	Plan   *instrument.Plan
	Set    *report.Set
	Metas  []RunMeta
	// Rates holds the trained per-site rates (nonuniform mode only).
	Rates []float64
}

// CoreInput adapts the result for the core analysis package.
func (r *Result) CoreInput() core.Input {
	siteOf := make([]int32, r.Plan.NumPreds())
	for i, p := range r.Plan.Preds {
		siteOf[i] = int32(p.Site)
	}
	return core.Input{Set: r.Set, SiteOf: siteOf}
}

// PredText returns the human-readable text of predicate p, with its
// function and line (the paper's interactive listing shows the same).
func (r *Result) PredText(p int) string {
	pr := r.Plan.Preds[p]
	site := r.Plan.Sites[pr.Site]
	return fmt.Sprintf("%s (%s:%d)", pr.Text, site.Func, site.Line)
}

// Run executes the experiment.
func Run(cfg Config) *Result {
	if cfg.Subject == nil {
		panic("harness: Config.Subject is nil")
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 1000
	}
	if cfg.UniformRate == 0 {
		cfg.UniformRate = sampling.DefaultRate
	}
	if cfg.TrainingRuns <= 0 {
		cfg.TrainingRuns = 1000
	}
	if cfg.TargetSamples == 0 {
		cfg.TargetSamples = sampling.DefaultTargetSamples
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}

	prog := cfg.Subject.Program(true)
	plan := instrument.BuildPlanOpts(prog, cfg.Instrument)

	res := &Result{
		Config: cfg,
		Plan:   plan,
		Set: &report.Set{
			NumSites: plan.NumSites(),
			NumPreds: plan.NumPreds(),
			Reports:  make([]*report.Report, cfg.Runs),
		},
		Metas: make([]RunMeta, cfg.Runs),
	}

	if cfg.Mode == SampleNonuniform {
		res.Rates = TrainRates(cfg.Subject, plan, cfg.TrainingRuns, cfg.TargetSamples)
	}

	newSampler := func() sampling.Sampler {
		switch cfg.Mode {
		case SampleAlways:
			return sampling.Always{}
		case SampleUniform:
			return sampling.NewUniform(cfg.UniformRate)
		default:
			return sampling.NewNonuniform(res.Rates)
		}
	}

	// Compile once when using the VM backend.
	var buggyMod, refMod *vm.Module
	if cfg.Engine == EngineVM {
		buggyMod = vm.MustCompile(prog)
		if cfg.Subject.HasOracle {
			refMod = vm.MustCompile(cfg.Subject.Program(false))
		}
	}
	newEngine := func(p *lang.Program, m *vm.Module, obs interp.Observer) engineRunner {
		if cfg.Engine == EngineVM {
			return vm.New(m, obs)
		}
		return interp.New(p, obs)
	}

	var wg sync.WaitGroup
	next := make(chan int, cfg.Workers*4)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sampler := newSampler()
			// Closed-loop mode: each worker runs its own Nonuniform
			// sampler and adopts new fleet rates whenever the plan
			// version moves, between runs (never mid-run, so each run is
			// sampled under exactly one plan).
			var planSampler *sampling.Nonuniform
			var planVersion uint64
			if cfg.Plan != nil {
				init := make([]float64, plan.NumSites())
				for i := range init {
					init[i] = cfg.UniformRate
				}
				if v, rates := cfg.Plan(); rates != nil && len(rates) == len(init) {
					copy(init, rates)
					planVersion = v
				}
				planSampler = sampling.NewNonuniform(init)
				sampler = planSampler
			}
			rt := instrument.NewRuntime(plan, sampler)
			buggy := newEngine(prog, buggyMod, rt)
			var ref engineRunner
			if cfg.Subject.HasOracle {
				ref = newEngine(cfg.Subject.Program(false), refMod, nil)
			}
			for i := range next {
				if planSampler != nil {
					if v, rates := cfg.Plan(); v != planVersion && rates != nil && len(rates) == plan.NumSites() {
						planSampler.SetRates(rates)
						planVersion = v
					}
				}
				input := cfg.Subject.Input(int64(i))
				input.Seed += cfg.SeedBase
				rt.BeginRun(int64(i) + cfg.SeedBase + 1)
				out := buggy.Run(input)
				meta := RunMeta{
					Crashed:  out.Crashed,
					Trap:     out.Trap,
					StackSig: out.StackSignature(),
					Bugs:     out.BugsObserved,
				}
				if !out.Crashed && ref != nil {
					refOut := ref.Run(input)
					if !refOut.Crashed &&
						strings.Join(out.Output, "\n") != strings.Join(refOut.Output, "\n") {
						meta.OracleMismatch = true
					}
				}
				res.Metas[i] = meta
				res.Set.Reports[i] = rt.Snapshot(meta.Failed())
				if cfg.Stream != nil {
					cfg.Stream(i, res.Set.Reports[i], meta)
				}
			}
		}()
	}
	for i := 0; i < cfg.Runs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return res
}

// TrainRates runs the subject TrainingRuns times with full observation,
// averages per-site reach counts, and plans nonuniform rates (paper §4:
// "we set the sampling rate of each predicate so as to obtain an
// expected 100 samples of each predicate in subsequent executions",
// clamped to a minimum of 1/100).
func TrainRates(subject *subjects.Subject, plan *instrument.Plan, trainingRuns int, target float64) []float64 {
	prog := subject.Program(true)
	counts := make([]float64, plan.NumSites())
	rt := instrument.NewRuntime(plan, sampling.Always{})
	in := interp.New(prog, rt)
	for i := 0; i < trainingRuns; i++ {
		// Training inputs use a disjoint index range so the monitored
		// runs are not the training runs.
		rt.BeginRun(int64(i) + 1)
		in.Run(subject.Input(int64(-1 - i)))
		rep := rt.Snapshot(false)
		for _, s := range rep.ObservedSites {
			counts[s] += float64(rt.SiteObservedCount(int(s)))
		}
	}
	for i := range counts {
		counts[i] /= float64(trainingRuns)
	}
	return sampling.PlanRates(counts, target, sampling.DefaultRate)
}

// FailingRunsPerBug counts, for each ground-truth bug id, the number of
// failing runs exhibiting it.
func (r *Result) FailingRunsPerBug() map[int]int {
	out := map[int]int{}
	for i := range r.Metas {
		m := &r.Metas[i]
		if !m.Failed() {
			continue
		}
		for _, b := range m.Bugs {
			out[b]++
		}
	}
	return out
}

// NumFailing returns the number of failing runs.
func (r *Result) NumFailing() int {
	n := 0
	for i := range r.Metas {
		if r.Metas[i].Failed() {
			n++
		}
	}
	return n
}

// RelabelBy builds an analysis input whose failure labels come from an
// arbitrary per-run predicate instead of the crash/oracle labels — the
// paper's §5 generalization: "the same ideas can be used to isolate
// predictors of any program event ... all that is required is a way to
// label each run". keep filters runs out entirely (return false to
// drop a run); label decides the event bit for kept runs.
func (r *Result) RelabelBy(keep func(i int, m *RunMeta) bool, label func(i int, m *RunMeta) bool) core.Input {
	sub := &report.Set{NumSites: r.Set.NumSites, NumPreds: r.Set.NumPreds}
	for i, rep := range r.Set.Reports {
		m := &r.Metas[i]
		if keep != nil && !keep(i, m) {
			continue
		}
		sub.Reports = append(sub.Reports, &report.Report{
			Failed:        label(i, m),
			ObservedSites: rep.ObservedSites,
			TruePreds:     rep.TruePreds,
		})
	}
	siteOf := make([]int32, r.Plan.NumPreds())
	for i, p := range r.Plan.Preds {
		siteOf[i] = int32(p.Site)
	}
	return core.Input{Set: sub, SiteOf: siteOf}
}
