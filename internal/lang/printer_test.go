package lang

import (
	"strings"
	"testing"
)

func TestExprStringPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { int x = (1 + 2) * 3; return x; }`, "(1 + 2) * 3"},
		{`int main() { int x = 1 + 2 * 3; return x; }`, "1 + 2 * 3"},
		{`int main() { int x = -(1 + 2); return x; }`, "-(1 + 2)"},
		{`int main() { int x = 1 < 2 && 3 < 4; return x; }`, "1 < 2 && 3 < 4"},
		{`int main() { int x = (1 < 2 || 0) && 1; return x; }`, "(1 < 2 || 0) && 1"},
		{`int main() { int x = strlen("a" + "b"); return x; }`, `strlen("a" + "b")`},
		{`int main() { int x = !0; return x; }`, "!0"},
	}
	for _, tc := range cases {
		prog := mustResolve(t, tc.src)
		decl := prog.Funcs[0].Body.Stmts[0].(*VarDecl)
		if got := ExprString(decl.Init); got != tc.want {
			t.Errorf("ExprString = %q, want %q", got, tc.want)
		}
	}
}

func TestExprStringStructures(t *testing.T) {
	prog := mustResolve(t, `
struct P { int x; P* next; }
int main() {
  P* a = new P[4];
  a[1].x = 3;
  P* s = new P;
  s->next = a;
  string q = "say \"hi\"";
  output(q);
  return a[1].x + s->next[0].x;
}`)
	var texts []string
	WalkStmts(prog, func(_ *FuncDecl, st Stmt) {
		if as, ok := st.(*Assign); ok {
			texts = append(texts, ExprString(as.LHS)+" = "+ExprString(as.Value))
		}
	})
	want := []string{"a[1].x = 3", "s->next = a"}
	for i, w := range want {
		if texts[i] != w {
			t.Errorf("assign %d printed %q, want %q", i, texts[i], w)
		}
	}
	printed := Print(prog)
	for _, frag := range []string{"new P[4]", "new P;", `"say \"hi\""`, "s->next[0].x"} {
		if !strings.Contains(printed, frag) {
			t.Errorf("Print missing %q:\n%s", frag, printed)
		}
	}
}

func TestPrintAllStatementForms(t *testing.T) {
	src := `
int g = 5;
void helper() {
  return;
}
int main() {
  int i = 0;
  while (i < 3) {
    i = i + 1;
    if (i == 2) {
      continue;
    } else if (i == 1) {
      helper();
    } else {
      break;
    }
  }
  for (int j = 0; j < 2; j = j + 1) {
    output(j);
  }
  for (; ; ) {
    break;
  }
  return g;
}`
	prog := mustResolve(t, src)
	printed := Print(prog)
	for _, frag := range []string{"while (", "for (int j = 0; j < 2; j = j + 1)", "continue;", "break;", "else if", "return;", "int g = 5;"} {
		if !strings.Contains(printed, frag) {
			t.Errorf("Print missing %q:\n%s", frag, printed)
		}
	}
	// Round-trip once more for this statement zoo.
	prog2, err := Parse("rt", printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if err := Resolve(prog2); err != nil {
		t.Fatalf("re-resolve: %v", err)
	}
}

func TestWalkExprsVisitsEverything(t *testing.T) {
	prog := mustResolve(t, `
int g = 7;
int f(int a) { return a * 2; }
int main() {
  int x = f(g) + 1;
  int* p = new int[x];
  p[0] = x;
  for (int i = 0; i < x && i < 10; i = i + 1) {
    output(p[0], "v", i);
  }
  return p[0];
}`)
	kinds := map[string]int{}
	WalkExprs(prog, func(_ *FuncDecl, e Expr) {
		switch e.(type) {
		case *IntLit:
			kinds["int"]++
		case *VarRef:
			kinds["var"]++
		case *Binary:
			kinds["bin"]++
		case *Call:
			kinds["call"]++
		case *Index:
			kinds["index"]++
		case *NewArray:
			kinds["new"]++
		case *StrLit:
			kinds["str"]++
		}
	})
	for _, k := range []string{"int", "var", "bin", "call", "index", "new", "str"} {
		if kinds[k] == 0 {
			t.Errorf("walk visited no %s nodes: %v", k, kinds)
		}
	}
}

func TestBinOpIsComparison(t *testing.T) {
	for _, op := range []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if !op.IsComparison() {
			t.Errorf("%s should be a comparison", op)
		}
	}
	for _, op := range []BinOp{OpAdd, OpAnd, OpOr, OpMul} {
		if op.IsComparison() {
			t.Errorf("%s should not be a comparison", op)
		}
	}
}

func TestTypeEquality(t *testing.T) {
	if !Pointer(Int).Equal(Pointer(Int)) {
		t.Error("structurally equal pointer types differ")
	}
	if Pointer(Int).Equal(Pointer(String)) {
		t.Error("int* equals string*")
	}
	a := &StructType{Name: "S"}
	b := &StructType{Name: "S"}
	if a.Equal(b) {
		t.Error("distinct struct declarations compare equal (should be nominal)")
	}
	if !a.Equal(a) {
		t.Error("struct type not equal to itself")
	}
	if SizeOf(Int) != 1 || SizeOf(Pointer(a)) != 1 {
		t.Error("scalar sizes wrong")
	}
	s := &StructType{Name: "T", Fields: []Param{{Name: "a", Typ: Int}, {Name: "b", Typ: String}}}
	if SizeOf(s) != 2 || s.FieldIndex("b") != 1 || s.FieldIndex("zz") != -1 {
		t.Error("struct layout helpers wrong")
	}
}
