package lang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := LexAll("t", `int x = 41 + 1;`)
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	want := []Kind{KW_INT, IDENT, ASSIGN, INT_LIT, PLUS, INT_LIT, SEMI, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
	if toks[3].Int != 41 {
		t.Errorf("literal value: got %d, want 41", toks[3].Int)
	}
}

func TestLexOperators(t *testing.T) {
	src := `== != < <= > >= && || ! = + - * / % -> . & [ ] ( ) { } , ;`
	toks, err := LexAll("t", src)
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	want := []Kind{EQ, NE, LT, LE, GT, GE, ANDAND, OROR, NOT, ASSIGN,
		PLUS, MINUS, STAR, SLASH, PERCENT, ARROW, DOT, AMP,
		LBRACKET, RBRACKET, LPAREN, RPAREN, LBRACE, RBRACE, COMMA, SEMI, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count: got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := LexAll("t", `if ifx while whiley return returns null nullable new news`)
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	want := []Kind{KW_IF, IDENT, KW_WHILE, IDENT, KW_RETURN, IDENT, KW_NULL, IDENT, KW_NEW, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := LexAll("t", `"a\nb\t\"q\"\\"`)
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	if toks[0].Kind != STR_LIT {
		t.Fatalf("got %s, want string", toks[0])
	}
	if want := "a\nb\t\"q\"\\"; toks[0].Text != want {
		t.Errorf("decoded string: got %q, want %q", toks[0].Text, want)
	}
}

func TestLexComments(t *testing.T) {
	src := "1 // line comment\n 2 /* block\n comment */ 3"
	toks, err := LexAll("t", src)
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	if len(toks) != 4 { // 1 2 3 EOF
		t.Fatalf("got %d tokens %v, want 4", len(toks), toks)
	}
	for i, want := range []int64{1, 2, 3} {
		if toks[i].Int != want {
			t.Errorf("token %d: got %d, want %d", i, toks[i].Int, want)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("t", "a\n  bb\n")
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("bb at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unterminated string", `"abc`, "unterminated string"},
		{"unterminated comment", `/* abc`, "unterminated block comment"},
		{"bad char", `a $ b`, "unexpected character"},
		{"single pipe", `a | b`, "did you mean ||"},
		{"bad escape", `"\q"`, "unknown escape"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LexAll("t", tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestLexEOFIdempotent(t *testing.T) {
	lx := NewLexer("t", "x")
	lx.Next()
	for i := 0; i < 3; i++ {
		if tok := lx.Next(); tok.Kind != EOF {
			t.Fatalf("call %d after end: got %s, want EOF", i, tok)
		}
	}
}

func TestLexArrowVsMinus(t *testing.T) {
	toks, err := LexAll("t", "a->b - c -> d-e")
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	want := []Kind{IDENT, ARROW, IDENT, MINUS, IDENT, ARROW, IDENT, MINUS, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}
