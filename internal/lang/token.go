// Package lang implements MiniC, a small statically typed C-like language.
//
// MiniC plays the role that C plays in the PLDI 2005 paper "Scalable
// Statistical Bug Isolation": it is the language in which subject programs
// are written and whose syntactic structure (conditionals, call sites,
// scalar assignments) drives predicate instrumentation. The package
// provides a lexer, a recursive-descent parser, an AST, a resolver/type
// checker, and a pretty-printer.
package lang

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds appear after the operator kinds.
const (
	EOF Kind = iota
	IDENT
	INT_LIT
	STR_LIT

	// Operators and punctuation.
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	ASSIGN   // =
	EQ       // ==
	NE       // !=
	LT       // <
	LE       // <=
	GT       // >
	GE       // >=
	NOT      // !
	ANDAND   // &&
	OROR     // ||
	AMP      // &
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;
	DOT      // .
	ARROW    // ->

	// Keywords.
	KW_INT
	KW_STRING
	KW_VOID
	KW_STRUCT
	KW_IF
	KW_ELSE
	KW_WHILE
	KW_FOR
	KW_RETURN
	KW_BREAK
	KW_CONTINUE
	KW_NEW
	KW_NULL
)

var kindNames = map[Kind]string{
	EOF:      "EOF",
	IDENT:    "identifier",
	INT_LIT:  "integer literal",
	STR_LIT:  "string literal",
	PLUS:     "+",
	MINUS:    "-",
	STAR:     "*",
	SLASH:    "/",
	PERCENT:  "%",
	ASSIGN:   "=",
	EQ:       "==",
	NE:       "!=",
	LT:       "<",
	LE:       "<=",
	GT:       ">",
	GE:       ">=",
	NOT:      "!",
	ANDAND:   "&&",
	OROR:     "||",
	AMP:      "&",
	LPAREN:   "(",
	RPAREN:   ")",
	LBRACE:   "{",
	RBRACE:   "}",
	LBRACKET: "[",
	RBRACKET: "]",
	COMMA:    ",",
	SEMI:     ";",
	DOT:      ".",
	ARROW:    "->",

	KW_INT:      "int",
	KW_STRING:   "string",
	KW_VOID:     "void",
	KW_STRUCT:   "struct",
	KW_IF:       "if",
	KW_ELSE:     "else",
	KW_WHILE:    "while",
	KW_FOR:      "for",
	KW_RETURN:   "return",
	KW_BREAK:    "break",
	KW_CONTINUE: "continue",
	KW_NEW:      "new",
	KW_NULL:     "null",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int":      KW_INT,
	"string":   KW_STRING,
	"void":     KW_VOID,
	"struct":   KW_STRUCT,
	"if":       KW_IF,
	"else":     KW_ELSE,
	"while":    KW_WHILE,
	"for":      KW_FOR,
	"return":   KW_RETURN,
	"break":    KW_BREAK,
	"continue": KW_CONTINUE,
	"new":      KW_NEW,
	"null":     KW_NULL,
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Valid reports whether the position has been set.
func (p Pos) Valid() bool { return p.Line > 0 }

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT; decoded value for STR_LIT
	Int  int64  // value for INT_LIT
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case INT_LIT:
		return fmt.Sprintf("integer %d", t.Int)
	case STR_LIT:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}
