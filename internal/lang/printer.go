package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// ExprString renders an expression as MiniC source text. It is used to
// produce human-readable predicate descriptions like the ones in the
// paper's tables (e.g. "files[filesindex].language > 16").
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e, 0)
	return sb.String()
}

// Operator precedence levels for minimal parenthesization.
func binPrec(op BinOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpAdd, OpSub:
		return 4
	default: // * / %
		return 5
	}
}

func writeExpr(sb *strings.Builder, e Expr, prec int) {
	switch ex := e.(type) {
	case *IntLit:
		sb.WriteString(strconv.FormatInt(ex.Value, 10))
	case *StrLit:
		sb.WriteString(strconv.Quote(ex.Value))
	case *NullLit:
		sb.WriteString("null")
	case *VarRef:
		sb.WriteString(ex.Name)
	case *Binary:
		p := binPrec(ex.Op)
		if p < prec {
			sb.WriteByte('(')
		}
		writeExpr(sb, ex.L, p)
		sb.WriteByte(' ')
		sb.WriteString(ex.Op.String())
		sb.WriteByte(' ')
		writeExpr(sb, ex.R, p+1)
		if p < prec {
			sb.WriteByte(')')
		}
	case *Unary:
		sb.WriteString(ex.Op.String())
		writeExpr(sb, ex.E, 6)
	case *Call:
		sb.WriteString(ex.Name)
		sb.WriteByte('(')
		for i, a := range ex.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a, 0)
		}
		sb.WriteByte(')')
	case *Index:
		writeExpr(sb, ex.Base, 7)
		sb.WriteByte('[')
		writeExpr(sb, ex.Idx, 0)
		sb.WriteByte(']')
	case *Field:
		writeExpr(sb, ex.Base, 7)
		if ex.Arrow {
			sb.WriteString("->")
		} else {
			sb.WriteByte('.')
		}
		sb.WriteString(ex.Name)
	case *NewArray:
		fmt.Fprintf(sb, "new %s[", ex.Elem)
		writeExpr(sb, ex.Count, 0)
		sb.WriteByte(']')
	case *NewStruct:
		fmt.Fprintf(sb, "new %s", ex.Struct.Name)
	default:
		fmt.Fprintf(sb, "<%T>", e)
	}
}

// Print renders a whole program back to (normalized) MiniC source.
// Round-tripping Print through Parse yields an equivalent program; tests
// rely on this.
func Print(prog *Program) string {
	var sb strings.Builder
	for _, sd := range prog.Structs {
		fmt.Fprintf(&sb, "struct %s {\n", sd.Name)
		for _, f := range sd.Fields {
			fmt.Fprintf(&sb, "  %s %s;\n", f.Typ, f.Name)
		}
		sb.WriteString("}\n\n")
	}
	for _, g := range prog.Globals {
		fmt.Fprintf(&sb, "%s %s", g.DeclType, g.Name)
		if g.Init != nil {
			sb.WriteString(" = ")
			writeExpr(&sb, g.Init, 0)
		}
		sb.WriteString(";\n")
	}
	if len(prog.Globals) > 0 {
		sb.WriteByte('\n')
	}
	for i, f := range prog.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%s %s(", f.Ret, f.Name)
		for j, p := range f.Params {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %s", p.Typ, p.Name)
		}
		sb.WriteString(") ")
		writeBlock(&sb, f.Body, 0)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func writeBlock(sb *strings.Builder, b *Block, depth int) {
	sb.WriteString("{\n")
	for _, s := range b.Stmts {
		writeStmt(sb, s, depth+1)
	}
	indent(sb, depth)
	sb.WriteString("}")
}

func writeStmt(sb *strings.Builder, s Stmt, depth int) {
	indent(sb, depth)
	writeStmtInline(sb, s, depth)
	sb.WriteByte('\n')
}

// writeSimple renders a statement without indentation or newline, for
// for-loop headers.
func writeSimple(sb *strings.Builder, s Stmt) {
	switch st := s.(type) {
	case *VarDecl:
		fmt.Fprintf(sb, "%s %s", st.DeclType, st.Name)
		if st.Init != nil {
			sb.WriteString(" = ")
			writeExpr(sb, st.Init, 0)
		}
	case *Assign:
		writeExpr(sb, st.LHS, 0)
		sb.WriteString(" = ")
		writeExpr(sb, st.Value, 0)
	case *ExprStmt:
		writeExpr(sb, st.E, 0)
	}
}

func writeStmtInline(sb *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *VarDecl, *Assign, *ExprStmt:
		writeSimple(sb, s)
		sb.WriteByte(';')
	case *If:
		sb.WriteString("if (")
		writeExpr(sb, st.Cond, 0)
		sb.WriteString(") ")
		writeBlock(sb, st.Then, depth)
		if st.Else != nil {
			sb.WriteString(" else ")
			if elif, ok := st.Else.(*If); ok {
				writeStmtInline(sb, elif, depth)
			} else {
				writeBlock(sb, st.Else.(*Block), depth)
			}
		}
	case *While:
		sb.WriteString("while (")
		writeExpr(sb, st.Cond, 0)
		sb.WriteString(") ")
		writeBlock(sb, st.Body, depth)
	case *For:
		sb.WriteString("for (")
		if st.Init != nil {
			writeSimple(sb, st.Init)
		}
		sb.WriteString("; ")
		if st.Cond != nil {
			writeExpr(sb, st.Cond, 0)
		}
		sb.WriteString("; ")
		if st.Post != nil {
			writeSimple(sb, st.Post)
		}
		sb.WriteString(") ")
		writeBlock(sb, st.Body, depth)
	case *Return:
		sb.WriteString("return")
		if st.Value != nil {
			sb.WriteByte(' ')
			writeExpr(sb, st.Value, 0)
		}
		sb.WriteByte(';')
	case *Break:
		sb.WriteString("break;")
	case *Continue:
		sb.WriteString("continue;")
	case *Block:
		writeBlock(sb, st, depth)
	default:
		fmt.Fprintf(sb, "<%T>;", s)
	}
}
