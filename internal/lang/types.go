package lang

// Type is the interface of MiniC static types. Types are compared with
// Equal; struct types are canonical (one *StructType per declaration), so
// pointer identity works for them.
type Type interface {
	String() string
	Equal(Type) bool
}

// Primitive type singletons.
var (
	// Int is the 64-bit integer type.
	Int Type = intType{}
	// String is the immutable string type.
	String Type = stringType{}
	// Void is the function "no result" type.
	Void Type = voidType{}
)

type intType struct{}

func (intType) String() string    { return "int" }
func (intType) Equal(o Type) bool { _, ok := o.(intType); return ok }

type stringType struct{}

func (stringType) String() string    { return "string" }
func (stringType) Equal(o Type) bool { _, ok := o.(stringType); return ok }

type voidType struct{}

func (voidType) String() string    { return "void" }
func (voidType) Equal(o Type) bool { _, ok := o.(voidType); return ok }

// PointerType is a pointer to Elem. `new T[n]` yields *T; indexing
// p[i] yields T; null inhabits every pointer type.
type PointerType struct {
	Elem Type
}

// Pointer returns the pointer type to elem, interning nothing: pointer
// types compare structurally.
func Pointer(elem Type) *PointerType { return &PointerType{Elem: elem} }

// String renders the type C-style, e.g. "int*".
func (p *PointerType) String() string { return p.Elem.String() + "*" }

// Equal compares pointer types structurally.
func (p *PointerType) Equal(o Type) bool {
	q, ok := o.(*PointerType)
	return ok && p.Elem.Equal(q.Elem)
}

// StructType is a nominal struct type. Size (in value slots) equals
// len(Fields): every field occupies one slot.
type StructType struct {
	Name   string
	Fields []Param
}

// String returns the struct's name.
func (s *StructType) String() string { return s.Name }

// Equal compares struct types nominally (by canonical identity).
func (s *StructType) Equal(o Type) bool {
	q, ok := o.(*StructType)
	return ok && q == s
}

// FieldIndex returns the slot offset of the named field, or -1.
func (s *StructType) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Size returns the number of value slots a struct value occupies.
func (s *StructType) Size() int { return len(s.Fields) }

// SizeOf returns the number of heap slots one element of t occupies.
func SizeOf(t Type) int {
	if st, ok := t.(*StructType); ok {
		return st.Size()
	}
	return 1
}

// IsScalar reports whether t is the int type — the type the scalar-pairs
// instrumentation scheme tracks.
func IsScalar(t Type) bool { return t != nil && t.Equal(Int) }

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool { _, ok := t.(*PointerType); return ok }

// Builtin describes a builtin function's signature. The interpreter
// provides the implementations.
type Builtin struct {
	Name string
	// Params is the fixed parameter list; ignored when Variadic.
	Params []Type
	// Variadic accepts any number of int/string arguments.
	Variadic bool
	Ret      Type
	// Pure builtins have no side effects and may be instrumented freely.
	Pure bool
	// Special builtins have signatures the table cannot express (e.g.
	// len, which takes any pointer); the resolver checks them by name.
	Special bool
}

// Builtins is the table of MiniC builtin functions.
var Builtins = map[string]*Builtin{
	// I/O and run outcome.
	"print":  {Name: "print", Variadic: true, Ret: Void},
	"output": {Name: "output", Variadic: true, Ret: Void},
	"fail":   {Name: "fail", Params: []Type{String}, Ret: Void},

	// Input vector access.
	"arg":    {Name: "arg", Params: []Type{Int}, Ret: Int, Pure: true},
	"nargs":  {Name: "nargs", Params: []Type{}, Ret: Int, Pure: true},
	"sarg":   {Name: "sarg", Params: []Type{Int}, Ret: String, Pure: true},
	"nsargs": {Name: "nsargs", Params: []Type{}, Ret: Int, Pure: true},
	"read":   {Name: "read", Params: []Type{}, Ret: Int},

	// Strings.
	"strlen":  {Name: "strlen", Params: []Type{String}, Ret: Int, Pure: true},
	"strcmp":  {Name: "strcmp", Params: []Type{String, String}, Ret: Int, Pure: true},
	"strcat":  {Name: "strcat", Params: []Type{String, String}, Ret: String, Pure: true},
	"substr":  {Name: "substr", Params: []Type{String, Int, Int}, Ret: String, Pure: true},
	"char_at": {Name: "char_at", Params: []Type{String, Int}, Ret: Int, Pure: true},
	"itoa":    {Name: "itoa", Params: []Type{Int}, Ret: String, Pure: true},
	"hash":    {Name: "hash", Params: []Type{String}, Ret: Int, Pure: true},

	// Misc.
	"rand": {Name: "rand", Params: []Type{Int}, Ret: Int},
	"len":  {Name: "len", Ret: Int, Pure: true, Special: true},

	// Ground-truth oracle intrinsic: records that bug #k occurred in
	// this run. Invisible to instrumentation (no predicates are
	// generated from it) and has no effect on program semantics.
	"observe_bug": {Name: "observe_bug", Params: []Type{Int}, Ret: Void},
}

// LookupBuiltin returns the builtin with the given name, or nil.
func LookupBuiltin(name string) *Builtin { return Builtins[name] }
