package lang

import (
	"fmt"
	"sort"
)

// Resolve performs name resolution and type checking on a parsed program.
// It fills in symbol tables, expression types, frame layouts, the
// per-function integer-constant pools used by the scalar-pairs
// instrumentation scheme, and the per-assignment scalar scope tables.
//
// Resolve must be called exactly once per Program before interpretation
// or instrumentation.
func Resolve(prog *Program) error {
	r := &resolver{
		prog:       prog,
		file:       prog.File,
		globals:    map[string]*Symbol{},
		scalarEnvs: map[NodeID][]*Symbol{},
	}
	r.run()
	prog.IntConstsByFunc = r.intConsts
	prog.ScalarScopes = r.scalarEnvs
	return r.errs.Err()
}

type resolver struct {
	prog *Program
	file string
	errs ErrorList

	globals map[string]*Symbol

	// Per-function state.
	fn        *FuncDecl
	scopes    []map[string]*Symbol
	nextSlot  int
	loopDepth int

	intConsts  map[string][]int64
	constSet   map[int64]bool
	scalarEnvs map[NodeID][]*Symbol
}

func (r *resolver) errorf(pos Pos, format string, args ...any) {
	if len(r.errs) < 50 {
		r.errs = append(r.errs, &Error{File: r.file, Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (r *resolver) run() {
	prog := r.prog
	prog.FuncByName = map[string]*FuncDecl{}
	r.intConsts = map[string][]int64{}

	// Struct declarations: validate field types.
	for _, sd := range prog.Structs {
		for _, f := range sd.Fields {
			if _, isStruct := f.Typ.(*StructType); isStruct {
				r.errorf(f.Pos, "field %s of struct %s: struct-typed fields must be pointers", f.Name, sd.Name)
			}
			if f.Typ.Equal(Void) {
				r.errorf(f.Pos, "field %s of struct %s has void type", f.Name, sd.Name)
			}
		}
	}

	// Globals: allocate slots, check initializers (constants only for
	// simplicity: int/string/null literals).
	for _, g := range prog.Globals {
		if _, dup := r.globals[g.Name]; dup {
			r.errorf(g.Pos(), "global %s redeclared", g.Name)
			continue
		}
		r.checkVarType(g.Pos(), g.DeclType)
		sym := &Symbol{Name: g.Name, Kind: SymGlobal, Slot: prog.GlobalSlots, Typ: g.DeclType, Pos: g.Pos()}
		prog.GlobalSlots++
		g.Sym = sym
		r.globals[g.Name] = sym
		if g.Init != nil {
			switch g.Init.(type) {
			case *IntLit, *StrLit, *NullLit:
				t := r.literalType(g.Init)
				if !assignable(g.DeclType, t) {
					r.errorf(g.Pos(), "cannot initialize global %s (%s) with %s", g.Name, g.DeclType, t)
				}
			default:
				r.errorf(g.Pos(), "global initializer for %s must be a literal", g.Name)
			}
		}
	}

	// Function signatures first (mutual recursion).
	for _, f := range prog.Funcs {
		if _, dup := prog.FuncByName[f.Name]; dup {
			r.errorf(f.Pos(), "function %s redeclared", f.Name)
			continue
		}
		if LookupBuiltin(f.Name) != nil {
			r.errorf(f.Pos(), "function %s shadows a builtin", f.Name)
			continue
		}
		prog.FuncByName[f.Name] = f
	}

	for _, f := range prog.Funcs {
		r.resolveFunc(f)
	}

	if main, ok := prog.FuncByName["main"]; !ok {
		r.errorf(Pos{Line: 1, Col: 1}, "program has no main function")
	} else {
		if len(main.Params) != 0 {
			r.errorf(main.Pos(), "main must take no parameters")
		}
		if !main.Ret.Equal(Int) {
			r.errorf(main.Pos(), "main must return int")
		}
	}
}

func (r *resolver) literalType(e Expr) Type {
	switch lit := e.(type) {
	case *IntLit:
		lit.setType(Int)
		return Int
	case *StrLit:
		lit.setType(String)
		return String
	case *NullLit:
		lit.setType(Pointer(Int)) // placeholder; assignable handles null
		return lit.Type()
	}
	return nil
}

func (r *resolver) checkVarType(pos Pos, t Type) {
	switch t.(type) {
	case *StructType:
		r.errorf(pos, "struct values must be accessed through pointers; declare %s*", t)
	case voidType:
		r.errorf(pos, "variable cannot have void type")
	}
}

func (r *resolver) resolveFunc(f *FuncDecl) {
	r.fn = f
	r.scopes = []map[string]*Symbol{{}}
	r.nextSlot = 0
	r.loopDepth = 0
	r.constSet = map[int64]bool{}

	for i := range f.Params {
		p := &f.Params[i]
		r.checkVarType(p.Pos, p.Typ)
		if _, dup := r.scopes[0][p.Name]; dup {
			r.errorf(p.Pos, "parameter %s redeclared", p.Name)
			continue
		}
		sym := &Symbol{Name: p.Name, Kind: SymParam, Slot: r.nextSlot, Typ: p.Typ, Pos: p.Pos, Func: f.Name}
		r.nextSlot++
		p.Sym = sym
		r.scopes[0][p.Name] = sym
	}

	r.resolveBlock(f.Body, false)
	f.Locals = r.nextSlot

	consts := make([]int64, 0, len(r.constSet))
	for c := range r.constSet {
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i] < consts[j] })
	r.intConsts[f.Name] = consts
}

func (r *resolver) pushScope() { r.scopes = append(r.scopes, map[string]*Symbol{}) }
func (r *resolver) popScope()  { r.scopes = r.scopes[:len(r.scopes)-1] }

func (r *resolver) lookup(name string) *Symbol {
	for i := len(r.scopes) - 1; i >= 0; i-- {
		if s, ok := r.scopes[i][name]; ok {
			return s
		}
	}
	return r.globals[name]
}

// scalarsInScope returns the int-typed variables currently visible:
// locals and parameters in scope plus all int globals. The result is a
// fresh slice ordered globals-first then by declaration.
func (r *resolver) scalarsInScope() []*Symbol {
	var out []*Symbol
	for _, g := range r.prog.Globals {
		if g.Sym != nil && IsScalar(g.Sym.Typ) {
			out = append(out, g.Sym)
		}
	}
	seen := map[string]bool{}
	// Inner scopes shadow outer ones; walk outside-in but let inner
	// declarations win by overwriting.
	byName := map[string]*Symbol{}
	var order []string
	for _, sc := range r.scopes {
		for name, sym := range sc {
			if !IsScalar(sym.Typ) {
				continue
			}
			if _, ok := byName[name]; !ok {
				order = append(order, name)
			}
			byName[name] = sym
		}
	}
	sort.Strings(order)
	for _, name := range order {
		if !seen[name] {
			seen[name] = true
			out = append(out, byName[name])
		}
	}
	return out
}

func (r *resolver) resolveBlock(b *Block, _ bool) {
	r.pushScope()
	defer r.popScope()
	for _, s := range b.Stmts {
		r.resolveStmt(s)
	}
}

func (r *resolver) declareLocal(d *VarDecl) {
	r.checkVarType(d.Pos(), d.DeclType)
	top := r.scopes[len(r.scopes)-1]
	if _, dup := top[d.Name]; dup {
		r.errorf(d.Pos(), "variable %s redeclared in this scope", d.Name)
	}
	sym := &Symbol{Name: d.Name, Kind: SymLocal, Slot: r.nextSlot, Typ: d.DeclType, Pos: d.Pos(), Func: r.fn.Name}
	r.nextSlot++
	d.Sym = sym
	top[d.Name] = sym
}

func (r *resolver) resolveStmt(s Stmt) {
	switch st := s.(type) {
	case *VarDecl:
		if st.Init != nil {
			t := r.resolveExpr(st.Init)
			if !assignable(st.DeclType, t) {
				r.errorf(st.Pos(), "cannot assign %s to %s %s", typeName(t), st.DeclType, st.Name)
			}
		}
		// Record the scalar environment before declaring so the new
		// variable is not its own pair partner, then declare after
		// resolving the initializer: `int x = x;` refers to any outer x.
		if IsScalar(st.DeclType) && st.Init != nil {
			r.scalarEnvs[st.ID()] = r.scalarsInScope()
		}
		r.declareLocal(st)
	case *Assign:
		lt := r.resolveExpr(st.LHS)
		if !isLValue(st.LHS) {
			r.errorf(st.Pos(), "left side of assignment is not assignable")
		}
		vt := r.resolveExpr(st.Value)
		if lt != nil && !assignable(lt, vt) {
			r.errorf(st.Pos(), "cannot assign %s to %s", typeName(vt), typeName(lt))
		}
		if IsScalar(lt) {
			r.scalarEnvs[st.ID()] = r.scalarsInScope()
		}
	case *If:
		r.wantInt(st.Cond, "if condition")
		r.resolveBlock(st.Then, true)
		if st.Else != nil {
			r.resolveStmt(st.Else)
		}
	case *While:
		r.wantInt(st.Cond, "while condition")
		r.loopDepth++
		r.resolveBlock(st.Body, true)
		r.loopDepth--
	case *For:
		r.pushScope()
		if st.Init != nil {
			r.resolveStmt(st.Init)
		}
		if st.Cond != nil {
			r.wantInt(st.Cond, "for condition")
		}
		if st.Post != nil {
			r.resolveStmt(st.Post)
		}
		r.loopDepth++
		r.resolveBlock(st.Body, true)
		r.loopDepth--
		r.popScope()
	case *Return:
		if st.Value == nil {
			if !r.fn.Ret.Equal(Void) {
				r.errorf(st.Pos(), "missing return value in function %s returning %s", r.fn.Name, r.fn.Ret)
			}
			return
		}
		t := r.resolveExpr(st.Value)
		if r.fn.Ret.Equal(Void) {
			r.errorf(st.Pos(), "void function %s returns a value", r.fn.Name)
		} else if !assignable(r.fn.Ret, t) {
			r.errorf(st.Pos(), "function %s returns %s, not %s", r.fn.Name, r.fn.Ret, typeName(t))
		}
	case *Break:
		if r.loopDepth == 0 {
			r.errorf(st.Pos(), "break outside loop")
		}
	case *Continue:
		if r.loopDepth == 0 {
			r.errorf(st.Pos(), "continue outside loop")
		}
	case *ExprStmt:
		t := r.resolveExpr(st.E)
		if _, isCall := st.E.(*Call); !isCall {
			r.errorf(st.Pos(), "expression statement must be a call")
		}
		_ = t
	case *Block:
		r.resolveBlock(st, true)
	default:
		r.errorf(s.Pos(), "internal: unknown statement %T", s)
	}
}

func (r *resolver) wantInt(e Expr, what string) {
	t := r.resolveExpr(e)
	if t != nil && !t.Equal(Int) {
		r.errorf(e.Pos(), "%s must be int, have %s", what, typeName(t))
	}
}

func (r *resolver) resolveExpr(e Expr) Type {
	switch ex := e.(type) {
	case *IntLit:
		ex.setType(Int)
		r.constSet[ex.Value] = true
		return Int
	case *StrLit:
		ex.setType(String)
		return String
	case *NullLit:
		// Null is a polymorphic pointer; give it a concrete placeholder
		// type. assignable() special-cases it.
		ex.setType(nullPtr)
		return nullPtr
	case *VarRef:
		sym := r.lookup(ex.Name)
		if sym == nil {
			r.errorf(ex.Pos(), "undefined variable %s", ex.Name)
			ex.setType(Int)
			return Int
		}
		ex.Sym = sym
		ex.setType(sym.Typ)
		return sym.Typ
	case *Binary:
		return r.resolveBinary(ex)
	case *Unary:
		t := r.resolveExpr(ex.E)
		if t != nil && !t.Equal(Int) {
			r.errorf(ex.Pos(), "operand of %s must be int, have %s", ex.Op, typeName(t))
		}
		ex.setType(Int)
		return Int
	case *Call:
		return r.resolveCall(ex)
	case *Index:
		bt := r.resolveExpr(ex.Base)
		r.wantInt(ex.Idx, "index")
		pt, ok := bt.(*PointerType)
		if !ok {
			if bt != nil {
				r.errorf(ex.Pos(), "cannot index %s", typeName(bt))
			}
			ex.setType(Int)
			return Int
		}
		ex.setType(pt.Elem)
		return pt.Elem
	case *Field:
		return r.resolveField(ex)
	case *NewArray:
		if ex.Elem.Equal(Void) {
			r.errorf(ex.Pos(), "cannot allocate array of void")
		}
		r.wantInt(ex.Count, "allocation count")
		t := Pointer(ex.Elem)
		ex.setType(t)
		return t
	case *NewStruct:
		t := Pointer(ex.Struct)
		ex.setType(t)
		return t
	}
	r.errorf(e.Pos(), "internal: unknown expression %T", e)
	return nil
}

func (r *resolver) resolveBinary(b *Binary) Type {
	lt := r.resolveExpr(b.L)
	rt := r.resolveExpr(b.R)
	b.setType(Int)
	switch b.Op {
	case OpEq, OpNe:
		// int==int, string==string, ptr==ptr(/null).
		if !comparable2(lt, rt) {
			r.errorf(b.Pos(), "invalid comparison: %s %s %s", typeName(lt), b.Op, typeName(rt))
		}
	case OpLt, OpLe, OpGt, OpGe:
		okInt := lt != nil && rt != nil && lt.Equal(Int) && rt.Equal(Int)
		okStr := lt != nil && rt != nil && lt.Equal(String) && rt.Equal(String)
		if !okInt && !okStr {
			r.errorf(b.Pos(), "invalid comparison: %s %s %s", typeName(lt), b.Op, typeName(rt))
		}
	case OpAdd:
		// int+int or string+string (concatenation).
		if lt != nil && lt.Equal(String) && rt != nil && rt.Equal(String) {
			b.setType(String)
			return String
		}
		if !(lt != nil && lt.Equal(Int) && rt != nil && rt.Equal(Int)) {
			r.errorf(b.Pos(), "invalid operands: %s + %s", typeName(lt), typeName(rt))
		}
	default:
		if !(lt != nil && lt.Equal(Int) && rt != nil && rt.Equal(Int)) {
			r.errorf(b.Pos(), "invalid operands: %s %s %s", typeName(lt), b.Op, typeName(rt))
		}
	}
	return Int
}

func (r *resolver) resolveCall(c *Call) Type {
	if b := LookupBuiltin(c.Name); b != nil {
		c.Builtin = b
		if b.Special {
			// len(p): one argument of any pointer type.
			if len(c.Args) != 1 {
				r.errorf(c.Pos(), "len expects 1 argument, got %d", len(c.Args))
			}
			for _, a := range c.Args {
				t := r.resolveExpr(a)
				if t != nil && !IsPointer(t) {
					r.errorf(a.Pos(), "len argument must be a pointer, have %s", typeName(t))
				}
			}
			c.setType(b.Ret)
			return b.Ret
		}
		if b.Variadic {
			for _, a := range c.Args {
				t := r.resolveExpr(a)
				if t != nil && !t.Equal(Int) && !t.Equal(String) {
					r.errorf(a.Pos(), "%s argument must be int or string, have %s", b.Name, typeName(t))
				}
			}
		} else {
			if len(c.Args) != len(b.Params) {
				r.errorf(c.Pos(), "%s expects %d arguments, got %d", b.Name, len(b.Params), len(c.Args))
			}
			for i, a := range c.Args {
				t := r.resolveExpr(a)
				if i < len(b.Params) && t != nil && !assignable(b.Params[i], t) {
					r.errorf(a.Pos(), "%s argument %d must be %s, have %s", b.Name, i+1, b.Params[i], typeName(t))
				}
			}
		}
		c.setType(b.Ret)
		return b.Ret
	}
	fn, ok := r.prog.FuncByName[c.Name]
	if !ok {
		r.errorf(c.Pos(), "undefined function %s", c.Name)
		for _, a := range c.Args {
			r.resolveExpr(a)
		}
		c.setType(Int)
		return Int
	}
	c.Fn = fn
	if len(c.Args) != len(fn.Params) {
		r.errorf(c.Pos(), "%s expects %d arguments, got %d", c.Name, len(fn.Params), len(c.Args))
	}
	for i, a := range c.Args {
		t := r.resolveExpr(a)
		if i < len(fn.Params) && t != nil && !assignable(fn.Params[i].Typ, t) {
			r.errorf(a.Pos(), "%s argument %d must be %s, have %s", c.Name, i+1, fn.Params[i].Typ, typeName(t))
		}
	}
	c.setType(fn.Ret)
	return fn.Ret
}

func (r *resolver) resolveField(f *Field) Type {
	bt := r.resolveExpr(f.Base)
	var st *StructType
	if f.Arrow {
		pt, ok := bt.(*PointerType)
		if ok {
			st, ok = pt.Elem.(*StructType)
			if !ok {
				st = nil
			}
		}
		if st == nil {
			r.errorf(f.Pos(), "-> requires a struct pointer, have %s", typeName(bt))
		}
	} else {
		var ok bool
		st, ok = bt.(*StructType)
		if !ok {
			r.errorf(f.Pos(), ". requires a struct value (e.g. arr[i].f), have %s", typeName(bt))
		}
	}
	if st == nil {
		f.setType(Int)
		return Int
	}
	idx := st.FieldIndex(f.Name)
	if idx < 0 {
		r.errorf(f.Pos(), "struct %s has no field %s", st.Name, f.Name)
		f.setType(Int)
		return Int
	}
	f.FieldIndex = idx
	t := st.Fields[idx].Typ
	f.setType(t)
	return t
}

// nullPtr is the placeholder type of the null literal.
var nullPtr = &PointerType{Elem: Void}

func isNullType(t Type) bool {
	p, ok := t.(*PointerType)
	return ok && p == nullPtr || (ok && p.Elem.Equal(Void))
}

// assignable reports whether a value of type src may be stored in a
// location of type dst.
func assignable(dst, src Type) bool {
	if dst == nil || src == nil {
		return true // error already reported
	}
	if isNullType(src) {
		return IsPointer(dst)
	}
	return dst.Equal(src)
}

// comparable2 reports whether == / != is defined between the two types.
func comparable2(a, b Type) bool {
	if a == nil || b == nil {
		return true
	}
	if a.Equal(Int) && b.Equal(Int) {
		return true
	}
	if a.Equal(String) && b.Equal(String) {
		return true
	}
	aPtr, bPtr := IsPointer(a), IsPointer(b)
	if aPtr && bPtr {
		return a.Equal(b) || isNullType(a) || isNullType(b)
	}
	return false
}

func isLValue(e Expr) bool {
	switch e.(type) {
	case *VarRef, *Index, *Field:
		return true
	}
	return false
}

func typeName(t Type) string {
	if t == nil {
		return "<error>"
	}
	if isNullType(t) {
		return "null"
	}
	return t.String()
}
