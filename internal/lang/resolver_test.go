package lang

import (
	"strings"
	"testing"
)

func resolveErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := Parse("t", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return Resolve(prog)
}

func TestResolveTypeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined var", `int main() { return x; }`, "undefined variable x"},
		{"undefined func", `int main() { return f(); }`, "undefined function f"},
		{"no main", `int f() { return 0; }`, "no main function"},
		{"main with params", `int main(int x) { return x; }`, "main must take no parameters"},
		{"main returns void", `void main() { }`, "main must return int"},
		{"int plus string", `int main() { int x = 1 + "a"; return x; }`, "invalid operands"},
		{"string minus", `int main() { string s = "a" - "b"; return 0; }`, "invalid operands"},
		{"assign mismatch", `int main() { int x = "s"; return x; }`, "cannot assign"},
		{"cond not int", `int main() { if ("s") { return 1; } return 0; }`, "must be int"},
		{"break outside loop", `int main() { break; return 0; }`, "break outside loop"},
		{"continue outside loop", `int main() { continue; return 0; }`, "continue outside loop"},
		{"void in expr", `int main() { int x = print("a"); return x; }`, "cannot assign"},
		{"missing return value", `int main() { return; }`, "missing return value"},
		{"void returns value", `void f() { return 3; } int main() { f(); return 0; }`, "void function f returns a value"},
		{"wrong return type", `int main() { return "s"; }`, "returns int, not string"},
		{"arity", `int f(int a) { return a; } int main() { return f(1, 2); }`, "expects 1 arguments, got 2"},
		{"arg type", `int f(int a) { return a; } int main() { return f("s"); }`, "argument 1 must be int"},
		{"builtin arity", `int main() { return strlen(); }`, "strlen expects 1 arguments"},
		{"builtin arg type", `int main() { return strlen(3); }`, "must be string"},
		{"redeclared var", `int main() { int x = 1; int x = 2; return x; }`, "redeclared in this scope"},
		{"redeclared func", `int f() { return 0; } int f() { return 1; } int main() { return 0; }`, "function f redeclared"},
		{"shadow builtin", `int strlen(int x) { return x; } int main() { return 0; }`, "shadows a builtin"},
		{"index non-pointer", `int main() { int x = 1; return x[0]; }`, "cannot index int"},
		{"index non-int", `int main() { int* p = new int[3]; return p["a"]; }`, "index must be int"},
		{"arrow on value", `struct S { int v; } int main() { int x = 0; return x->v; }`, "requires a struct pointer"},
		{"dot on non-struct", `int main() { int x = 0; return x.f; }`, "requires a struct value"},
		{"missing field", `struct S { int v; } int main() { S* p = new S; return p->w; }`, "has no field w"},
		{"struct value var", `struct S { int v; } int main() { S s; return 0; }`, "through pointers"},
		{"struct field struct", `struct A { int v; } struct B { A inner; } int main() { return 0; }`, "must be pointers"},
		{"void var", `int main() { void v; return 0; }`, "void type"},
		{"global redeclared", `int g = 0; int g = 1; int main() { return g; }`, "global g redeclared"},
		{"global nonliteral init", `int g = strlen("ab"); int main() { return g; }`, "must be a literal"},
		{"assign to call", `int f() { return 0; } int main() { f() = 3; return 0; }`, "not assignable"},
		{"expr stmt not call", `int main() { 1 + 2; return 0; }`, "must be a call"},
		{"compare ptr int", `int main() { int* p = new int[1]; if (p == 0) { return 1; } return 0; }`, "invalid comparison"},
		{"order ptrs", `int main() { int* p = new int[1]; int* q = new int[1]; if (p < q) { return 1; } return 0; }`, "invalid comparison"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := resolveErr(t, tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestResolveValidPrograms(t *testing.T) {
	cases := []struct{ name, src string }{
		{"null compare", `struct S { int v; } int main() { S* p = null; if (p == null) { return 1; } return 0; }`},
		{"string concat", `int main() { string s = "a" + "b"; output(s); return strlen(s); }`},
		{"string order", `int main() { if ("a" < "b") { return 1; } return 0; }`},
		{"self-referential struct", `struct N { int v; N* next; } int main() { N* n = new N; n->next = n; return n->next->v; }`},
		{"shadowing", `int x = 1; int main() { int x = 2; { int x = 3; output(x); } return x; }`},
		{"recursion", `int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } int main() { return fib(10); }`},
		{"mutual recursion", `int odd(int n) { if (n == 0) { return 0; } return even(n-1); } int even(int n) { if (n == 0) { return 1; } return odd(n-1); } int main() { return even(10); }`},
		{"variadic print", `int main() { print("x=", 3, " y=", 4); return 0; }`},
		{"struct array field access", `struct P { int x; int y; } int main() { P* a = new P[4]; a[2].x = 7; return a[2].x + a[0].y; }`},
		{"init refers to outer", `int x = 5; int main() { int y = x; int x = y + 1; return x; }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := resolveErr(t, tc.src); err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
}

func TestResolveSlotAllocation(t *testing.T) {
	prog := mustResolve(t, `
int g1 = 0;
int g2 = 1;
int f(int a, int b) {
  int c = a + b;
  { int d = c; output(d); }
  return c;
}
int main() { return f(1, 2); }
`)
	if prog.GlobalSlots != 2 {
		t.Errorf("GlobalSlots = %d, want 2", prog.GlobalSlots)
	}
	f := prog.FuncByName["f"]
	if f.Locals != 4 { // a, b, c, d
		t.Errorf("f.Locals = %d, want 4", f.Locals)
	}
	if f.Params[0].Sym.Slot != 0 || f.Params[1].Sym.Slot != 1 {
		t.Errorf("param slots: %d, %d", f.Params[0].Sym.Slot, f.Params[1].Sym.Slot)
	}
}

func TestResolveIntConstPool(t *testing.T) {
	prog := mustResolve(t, `
int main() {
  int x = 10;
  if (x > 100) { x = 10; }
  while (x < 500) { x = x + 25; }
  return x;
}`)
	consts := prog.IntConstsByFunc["main"]
	want := []int64{10, 25, 100, 500}
	if len(consts) != len(want) {
		t.Fatalf("consts = %v, want %v", consts, want)
	}
	for i := range want {
		if consts[i] != want[i] {
			t.Errorf("consts[%d] = %d, want %d", i, consts[i], want[i])
		}
	}
}

func TestResolveScalarScopes(t *testing.T) {
	prog := mustResolve(t, `
int g = 0;
int main() {
  int a = 1;
  string s = "x";
  int* p = new int[3];
  int b = a + 2;
  output(s);
  p[0] = b;
  return b;
}`)
	// Find the VarDecl for b.
	var bDecl *VarDecl
	WalkStmts(prog, func(_ *FuncDecl, s Stmt) {
		if d, ok := s.(*VarDecl); ok && d.Name == "b" {
			bDecl = d
		}
	})
	if bDecl == nil {
		t.Fatal("no decl for b")
	}
	env := prog.ScalarScopes[bDecl.ID()]
	var names []string
	for _, sym := range env {
		names = append(names, sym.Name)
	}
	// In scope at `int b = a + 2`: global g and local a (int-typed only;
	// b itself is declared after its initializer resolves).
	if len(names) != 2 || names[0] != "g" || names[1] != "a" {
		t.Errorf("scalar scope at b = %v, want [g a]", names)
	}
	// p[0] = b is a scalar assignment through a pointer; its env
	// includes g, a, b.
	var asn *Assign
	WalkStmts(prog, func(_ *FuncDecl, s Stmt) {
		if a, ok := s.(*Assign); ok {
			if _, isIdx := a.LHS.(*Index); isIdx {
				asn = a
			}
		}
	})
	if asn == nil {
		t.Fatal("no index assignment found")
	}
	env = prog.ScalarScopes[asn.ID()]
	if len(env) != 3 {
		t.Errorf("scalar scope at p[0]=b has %d entries, want 3", len(env))
	}
}

func TestResolveExprTypesSet(t *testing.T) {
	prog := mustResolve(t, tinyProg)
	WalkExprs(prog, func(_ *FuncDecl, e Expr) {
		if e.Type() == nil {
			t.Errorf("expression %s has no type", ExprString(e))
		}
	})
}
