package lang

// WalkExprs calls fn for every expression in the program, in a
// deterministic pre-order traversal.
func WalkExprs(prog *Program, fn func(owner *FuncDecl, e Expr)) {
	for _, g := range prog.Globals {
		if g.Init != nil {
			walkExpr(nil, g.Init, fn)
		}
	}
	for _, f := range prog.Funcs {
		walkBlockExprs(f, f.Body, fn)
	}
}

func walkBlockExprs(owner *FuncDecl, b *Block, fn func(*FuncDecl, Expr)) {
	for _, s := range b.Stmts {
		walkStmtExprs(owner, s, fn)
	}
}

func walkStmtExprs(owner *FuncDecl, s Stmt, fn func(*FuncDecl, Expr)) {
	switch st := s.(type) {
	case *VarDecl:
		if st.Init != nil {
			walkExpr(owner, st.Init, fn)
		}
	case *Assign:
		walkExpr(owner, st.LHS, fn)
		walkExpr(owner, st.Value, fn)
	case *If:
		walkExpr(owner, st.Cond, fn)
		walkBlockExprs(owner, st.Then, fn)
		if st.Else != nil {
			walkStmtExprs(owner, st.Else, fn)
		}
	case *While:
		walkExpr(owner, st.Cond, fn)
		walkBlockExprs(owner, st.Body, fn)
	case *For:
		if st.Init != nil {
			walkStmtExprs(owner, st.Init, fn)
		}
		if st.Cond != nil {
			walkExpr(owner, st.Cond, fn)
		}
		if st.Post != nil {
			walkStmtExprs(owner, st.Post, fn)
		}
		walkBlockExprs(owner, st.Body, fn)
	case *Return:
		if st.Value != nil {
			walkExpr(owner, st.Value, fn)
		}
	case *ExprStmt:
		walkExpr(owner, st.E, fn)
	case *Block:
		walkBlockExprs(owner, st, fn)
	}
}

func walkExpr(owner *FuncDecl, e Expr, fn func(*FuncDecl, Expr)) {
	fn(owner, e)
	switch ex := e.(type) {
	case *Binary:
		walkExpr(owner, ex.L, fn)
		walkExpr(owner, ex.R, fn)
	case *Unary:
		walkExpr(owner, ex.E, fn)
	case *Call:
		for _, a := range ex.Args {
			walkExpr(owner, a, fn)
		}
	case *Index:
		walkExpr(owner, ex.Base, fn)
		walkExpr(owner, ex.Idx, fn)
	case *Field:
		walkExpr(owner, ex.Base, fn)
	case *NewArray:
		walkExpr(owner, ex.Count, fn)
	}
}

// WalkStmts calls fn for every statement in the program (including
// nested blocks), in a deterministic pre-order traversal.
func WalkStmts(prog *Program, fn func(owner *FuncDecl, s Stmt)) {
	for _, f := range prog.Funcs {
		walkStmt(f, f.Body, fn)
	}
}

func walkStmt(owner *FuncDecl, s Stmt, fn func(*FuncDecl, Stmt)) {
	fn(owner, s)
	switch st := s.(type) {
	case *If:
		walkStmt(owner, st.Then, fn)
		if st.Else != nil {
			walkStmt(owner, st.Else, fn)
		}
	case *While:
		walkStmt(owner, st.Body, fn)
	case *For:
		if st.Init != nil {
			walkStmt(owner, st.Init, fn)
		}
		if st.Post != nil {
			walkStmt(owner, st.Post, fn)
		}
		walkStmt(owner, st.Body, fn)
	case *Block:
		for _, inner := range st.Stmts {
			walkStmt(owner, inner, fn)
		}
	}
}
