package lang

import "fmt"

// Parser is a recursive-descent parser for MiniC. It parses an entire
// token stream (produced by the lexer) into a Program, assigning dense
// NodeIDs as it goes.
type Parser struct {
	file   string
	toks   []Token
	pos    int
	errs   ErrorList
	nextID NodeID
	// structs collects struct types by name as they are declared so
	// that later type syntax can refer to them.
	structs map[string]*StructType
}

const maxParseErrors = 25

// Parse parses MiniC source text into a Program. On syntax errors it
// returns a partial Program together with an ErrorList.
func Parse(file, src string) (*Program, error) {
	toks, lerr := LexAll(file, src)
	p := &Parser{file: file, toks: toks, nextID: 1, structs: map[string]*StructType{}}
	if lerr != nil {
		p.errs = append(p.errs, lerr.(ErrorList)...)
	}
	prog := p.parseProgram()
	prog.File = file
	prog.NumNodes = int(p.nextID)
	return prog, p.errs.Err()
}

// MustParse parses src and panics on error. Intended for embedded subject
// programs and tests.
func MustParse(file, src string) *Program {
	prog, err := Parse(file, src)
	if err != nil {
		panic(fmt.Sprintf("lang.MustParse(%s): %v", file, err))
	}
	return prog
}

func (p *Parser) id() NodeID {
	id := p.nextID
	p.nextID++
	return id
}

func (p *Parser) cur() Token     { return p.toks[p.pos] }
func (p *Parser) kind() Kind     { return p.toks[p.pos].Kind }
func (p *Parser) at(k Kind) bool { return p.toks[p.pos].Kind == k }

func (p *Parser) peekKind(n int) Kind {
	i := p.pos + n
	if i >= len(p.toks) {
		return EOF
	}
	return p.toks[i].Kind
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	if len(p.errs) < maxParseErrors {
		p.errs = append(p.errs, &Error{File: p.file, Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *Parser) expect(k Kind) Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return Token{Kind: k, Pos: p.cur().Pos}
}

// syncStmt skips tokens until a plausible statement boundary.
func (p *Parser) syncStmt() {
	for !p.at(EOF) {
		switch p.kind() {
		case SEMI:
			p.next()
			return
		case RBRACE, KW_IF, KW_WHILE, KW_FOR, KW_RETURN:
			return
		}
		p.next()
	}
}

func (p *Parser) parseProgram() *Program {
	prog := &Program{}
	for !p.at(EOF) {
		switch p.kind() {
		case KW_STRUCT:
			prog.Structs = append(prog.Structs, p.parseStructDecl())
		case KW_INT, KW_STRING, KW_VOID, IDENT:
			// type IDENT ( ... )  => function
			// type IDENT [= expr] ; => global
			start := p.pos
			typ, ok := p.tryParseType()
			if !ok {
				p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur())
				p.syncStmt()
				continue
			}
			name := p.expect(IDENT)
			if p.at(LPAREN) {
				prog.Funcs = append(prog.Funcs, p.parseFuncRest(typ, name))
			} else {
				p.pos = start
				prog.Globals = append(prog.Globals, p.parseVarDecl())
			}
		default:
			p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur())
			p.next()
		}
	}
	return prog
}

func (p *Parser) parseStructDecl() *StructDecl {
	kw := p.expect(KW_STRUCT)
	name := p.expect(IDENT)
	st := &StructType{Name: name.Text}
	if _, dup := p.structs[name.Text]; dup {
		p.errorf(name.Pos, "struct %s redeclared", name.Text)
	}
	// Register before parsing fields so self-referential pointer fields
	// (linked lists) work.
	p.structs[name.Text] = st
	p.expect(LBRACE)
	for !p.at(RBRACE) && !p.at(EOF) {
		ft, ok := p.tryParseType()
		if !ok {
			p.errorf(p.cur().Pos, "expected field type, found %s", p.cur())
			p.syncStmt()
			continue
		}
		fn := p.expect(IDENT)
		p.expect(SEMI)
		if st.FieldIndex(fn.Text) >= 0 {
			p.errorf(fn.Pos, "duplicate field %s in struct %s", fn.Text, name.Text)
			continue
		}
		st.Fields = append(st.Fields, Param{Name: fn.Text, Typ: ft, Pos: fn.Pos})
	}
	p.expect(RBRACE)
	d := &StructDecl{Name: name.Text, Typ: st}
	d.id, d.pos = p.id(), kw.Pos
	d.Fields = st.Fields
	return d
}

// tryParseType parses a type if the upcoming tokens form one. It only
// consumes tokens on success.
func (p *Parser) tryParseType() (Type, bool) {
	var base Type
	switch p.kind() {
	case KW_INT:
		base = Int
	case KW_STRING:
		base = String
	case KW_VOID:
		base = Void
	case IDENT:
		st, ok := p.structs[p.cur().Text]
		if !ok {
			return nil, false
		}
		base = st
	default:
		return nil, false
	}
	p.next()
	for p.at(STAR) {
		p.next()
		base = Pointer(base)
	}
	return base, true
}

// looksLikeDecl reports whether the statement starting at the current
// token is a variable declaration.
func (p *Parser) looksLikeDecl() bool {
	switch p.kind() {
	case KW_INT, KW_STRING, KW_VOID:
		return true
	case IDENT:
		if _, ok := p.structs[p.cur().Text]; !ok {
			return false
		}
		// IDENT STAR* IDENT => declaration.
		i := 1
		for p.peekKind(i) == STAR {
			i++
		}
		return p.peekKind(i) == IDENT
	}
	return false
}

func (p *Parser) parseFuncRest(ret Type, name Token) *FuncDecl {
	f := &FuncDecl{Name: name.Text, Ret: ret}
	f.id, f.pos = p.id(), name.Pos
	p.expect(LPAREN)
	for !p.at(RPAREN) && !p.at(EOF) {
		pt, ok := p.tryParseType()
		if !ok {
			p.errorf(p.cur().Pos, "expected parameter type, found %s", p.cur())
			p.syncStmt()
			break
		}
		pn := p.expect(IDENT)
		f.Params = append(f.Params, Param{Name: pn.Text, Typ: pt, Pos: pn.Pos})
		if !p.at(COMMA) {
			break
		}
		p.next()
	}
	p.expect(RPAREN)
	f.Body = p.parseBlock()
	return f
}

func (p *Parser) parseVarDecl() *VarDecl {
	pos := p.cur().Pos
	typ, ok := p.tryParseType()
	if !ok {
		p.errorf(pos, "expected type, found %s", p.cur())
		p.syncStmt()
		typ = Int
	}
	name := p.expect(IDENT)
	d := &VarDecl{DeclType: typ, Name: name.Text}
	d.id, d.pos = p.id(), pos
	if p.at(ASSIGN) {
		p.next()
		d.Init = p.parseExpr()
	}
	p.expect(SEMI)
	return d
}

func (p *Parser) parseBlock() *Block {
	b := &Block{}
	b.id, b.pos = p.id(), p.cur().Pos
	p.expect(LBRACE)
	for !p.at(RBRACE) && !p.at(EOF) {
		before := p.pos
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.pos == before {
			// Defensive: guarantee progress on malformed input.
			p.next()
		}
	}
	p.expect(RBRACE)
	return b
}

func (p *Parser) parseStmt() Stmt {
	switch p.kind() {
	case LBRACE:
		return p.parseBlock()
	case KW_IF:
		return p.parseIf()
	case KW_WHILE:
		return p.parseWhile()
	case KW_FOR:
		return p.parseFor()
	case KW_RETURN:
		return p.parseReturn()
	case KW_BREAK:
		t := p.next()
		p.expect(SEMI)
		s := &Break{}
		s.id, s.pos = p.id(), t.Pos
		return s
	case KW_CONTINUE:
		t := p.next()
		p.expect(SEMI)
		s := &Continue{}
		s.id, s.pos = p.id(), t.Pos
		return s
	case SEMI:
		// Empty statement: model as an empty block.
		t := p.next()
		b := &Block{}
		b.id, b.pos = p.id(), t.Pos
		return b
	}
	if p.looksLikeDecl() {
		return p.parseVarDecl()
	}
	s := p.parseSimpleStmt()
	p.expect(SEMI)
	return s
}

// parseSimpleStmt parses an assignment or an expression statement,
// without the trailing semicolon (shared by for-headers).
func (p *Parser) parseSimpleStmt() Stmt {
	pos := p.cur().Pos
	e := p.parseExpr()
	if p.at(ASSIGN) {
		p.next()
		v := p.parseExpr()
		s := &Assign{LHS: e, Value: v}
		s.id, s.pos = p.id(), pos
		return s
	}
	s := &ExprStmt{E: e}
	s.id, s.pos = p.id(), pos
	return s
}

func (p *Parser) parseIf() Stmt {
	kw := p.expect(KW_IF)
	p.expect(LPAREN)
	cond := p.parseExpr()
	p.expect(RPAREN)
	then := p.parseBlock()
	s := &If{Cond: cond, Then: then}
	s.id, s.pos = p.id(), kw.Pos
	if p.at(KW_ELSE) {
		p.next()
		if p.at(KW_IF) {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *Parser) parseWhile() Stmt {
	kw := p.expect(KW_WHILE)
	p.expect(LPAREN)
	cond := p.parseExpr()
	p.expect(RPAREN)
	body := p.parseBlock()
	s := &While{Cond: cond, Body: body}
	s.id, s.pos = p.id(), kw.Pos
	return s
}

func (p *Parser) parseFor() Stmt {
	kw := p.expect(KW_FOR)
	p.expect(LPAREN)
	s := &For{}
	s.id, s.pos = p.id(), kw.Pos
	if !p.at(SEMI) {
		if p.looksLikeDecl() {
			// parseVarDecl consumes the semicolon.
			s.Init = p.parseVarDecl()
		} else {
			s.Init = p.parseSimpleStmt()
			p.expect(SEMI)
		}
	} else {
		p.expect(SEMI)
	}
	if !p.at(SEMI) {
		s.Cond = p.parseExpr()
	}
	p.expect(SEMI)
	if !p.at(RPAREN) {
		s.Post = p.parseSimpleStmt()
	}
	p.expect(RPAREN)
	s.Body = p.parseBlock()
	return s
}

func (p *Parser) parseReturn() Stmt {
	kw := p.expect(KW_RETURN)
	s := &Return{}
	s.id, s.pos = p.id(), kw.Pos
	if !p.at(SEMI) {
		s.Value = p.parseExpr()
	}
	p.expect(SEMI)
	return s
}

// Expression parsing: precedence climbing.

func (p *Parser) parseExpr() Expr { return p.parseOr() }

func (p *Parser) parseOr() Expr {
	e := p.parseAnd()
	for p.at(OROR) {
		t := p.next()
		r := p.parseAnd()
		b := &Binary{Op: OpOr, L: e, R: r}
		b.id, b.pos = p.id(), t.Pos
		e = b
	}
	return e
}

func (p *Parser) parseAnd() Expr {
	e := p.parseCmp()
	for p.at(ANDAND) {
		t := p.next()
		r := p.parseCmp()
		b := &Binary{Op: OpAnd, L: e, R: r}
		b.id, b.pos = p.id(), t.Pos
		e = b
	}
	return e
}

var cmpOps = map[Kind]BinOp{EQ: OpEq, NE: OpNe, LT: OpLt, LE: OpLe, GT: OpGt, GE: OpGe}

func (p *Parser) parseCmp() Expr {
	e := p.parseAdd()
	if op, ok := cmpOps[p.kind()]; ok {
		t := p.next()
		r := p.parseAdd()
		b := &Binary{Op: op, L: e, R: r}
		b.id, b.pos = p.id(), t.Pos
		e = b
	}
	return e
}

func (p *Parser) parseAdd() Expr {
	e := p.parseMul()
	for p.at(PLUS) || p.at(MINUS) {
		t := p.next()
		op := OpAdd
		if t.Kind == MINUS {
			op = OpSub
		}
		r := p.parseMul()
		b := &Binary{Op: op, L: e, R: r}
		b.id, b.pos = p.id(), t.Pos
		e = b
	}
	return e
}

func (p *Parser) parseMul() Expr {
	e := p.parseUnary()
	for p.at(STAR) || p.at(SLASH) || p.at(PERCENT) {
		t := p.next()
		var op BinOp
		switch t.Kind {
		case STAR:
			op = OpMul
		case SLASH:
			op = OpDiv
		default:
			op = OpMod
		}
		r := p.parseUnary()
		b := &Binary{Op: op, L: e, R: r}
		b.id, b.pos = p.id(), t.Pos
		e = b
	}
	return e
}

func (p *Parser) parseUnary() Expr {
	switch p.kind() {
	case MINUS:
		t := p.next()
		e := p.parseUnary()
		u := &Unary{Op: OpNeg, E: e}
		u.id, u.pos = p.id(), t.Pos
		return u
	case NOT:
		t := p.next()
		e := p.parseUnary()
		u := &Unary{Op: OpNot, E: e}
		u.id, u.pos = p.id(), t.Pos
		return u
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	e := p.parsePrimary()
	for {
		switch p.kind() {
		case LBRACKET:
			t := p.next()
			idx := p.parseExpr()
			p.expect(RBRACKET)
			n := &Index{Base: e, Idx: idx}
			n.id, n.pos = p.id(), t.Pos
			e = n
		case DOT, ARROW:
			t := p.next()
			name := p.expect(IDENT)
			n := &Field{Base: e, Name: name.Text, Arrow: t.Kind == ARROW}
			n.id, n.pos = p.id(), t.Pos
			e = n
		default:
			return e
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	switch p.kind() {
	case INT_LIT:
		t := p.next()
		n := &IntLit{Value: t.Int}
		n.id, n.pos = p.id(), t.Pos
		return n
	case STR_LIT:
		t := p.next()
		n := &StrLit{Value: t.Text}
		n.id, n.pos = p.id(), t.Pos
		return n
	case KW_NULL:
		t := p.next()
		n := &NullLit{}
		n.id, n.pos = p.id(), t.Pos
		return n
	case KW_NEW:
		return p.parseNew()
	case IDENT:
		t := p.next()
		if p.at(LPAREN) {
			p.next()
			c := &Call{Name: t.Text}
			c.id, c.pos = p.id(), t.Pos
			for !p.at(RPAREN) && !p.at(EOF) {
				c.Args = append(c.Args, p.parseExpr())
				if !p.at(COMMA) {
					break
				}
				p.next()
			}
			p.expect(RPAREN)
			return c
		}
		n := &VarRef{Name: t.Text}
		n.id, n.pos = p.id(), t.Pos
		return n
	case LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(RPAREN)
		return e
	}
	t := p.cur()
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	n := &IntLit{Value: 0}
	n.id, n.pos = p.id(), t.Pos
	return n
}

func (p *Parser) parseNew() Expr {
	kw := p.expect(KW_NEW)
	typ, ok := p.tryParseType()
	if !ok {
		p.errorf(p.cur().Pos, "expected type after new, found %s", p.cur())
		typ = Int
	}
	if p.at(LBRACKET) {
		p.next()
		count := p.parseExpr()
		p.expect(RBRACKET)
		n := &NewArray{Elem: typ, Count: count}
		n.id, n.pos = p.id(), kw.Pos
		return n
	}
	st, ok := typ.(*StructType)
	if !ok {
		p.errorf(kw.Pos, "new without [count] requires a struct type, have %s", typ)
		st = &StructType{Name: "<error>"}
	}
	n := &NewStruct{Struct: st}
	n.id, n.pos = p.id(), kw.Pos
	return n
}
