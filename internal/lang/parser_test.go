package lang

import (
	"strings"
	"testing"
)

const tinyProg = `
struct Node {
  int val;
  Node* next;
}

int total = 0;

int sum(Node* head) {
  int s = 0;
  Node* p = head;
  while (p != null) {
    s = s + p->val;
    p = p->next;
  }
  return s;
}

int main() {
  Node* a = new Node;
  a->val = 3;
  Node* b = new Node;
  b->val = 4;
  a->next = b;
  total = sum(a);
  output(total);
  return 0;
}
`

func mustResolve(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse("test.mc", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Resolve(prog); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	return prog
}

func TestParseTinyProgram(t *testing.T) {
	prog := mustResolve(t, tinyProg)
	if len(prog.Structs) != 1 || prog.Structs[0].Name != "Node" {
		t.Fatalf("structs: %+v", prog.Structs)
	}
	if len(prog.Globals) != 1 || prog.Globals[0].Name != "total" {
		t.Fatalf("globals: %+v", prog.Globals)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs: got %d, want 2", len(prog.Funcs))
	}
	if prog.FuncByName["sum"] == nil || prog.FuncByName["main"] == nil {
		t.Fatal("FuncByName missing entries")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustResolve(t, `int main() { int x = 1 + 2 * 3 - 4 / 2; output(x); return x; }`)
	decl := prog.Funcs[0].Body.Stmts[0].(*VarDecl)
	if got := ExprString(decl.Init); got != "1 + 2 * 3 - 4 / 2" {
		t.Errorf("printed: %q", got)
	}
	// Structure: ((1 + (2*3)) - (4/2))
	top := decl.Init.(*Binary)
	if top.Op != OpSub {
		t.Fatalf("top op: %s", top.Op)
	}
	l := top.L.(*Binary)
	if l.Op != OpAdd {
		t.Fatalf("left op: %s", l.Op)
	}
	if l.R.(*Binary).Op != OpMul {
		t.Fatalf("left-right op: %s", l.R.(*Binary).Op)
	}
	if top.R.(*Binary).Op != OpDiv {
		t.Fatalf("right op: %s", top.R.(*Binary).Op)
	}
}

func TestParseShortCircuitNesting(t *testing.T) {
	prog := mustResolve(t, `int main() { if (1 < 2 && 2 < 3 || 0) { return 1; } return 0; }`)
	cond := prog.Funcs[0].Body.Stmts[0].(*If).Cond.(*Binary)
	if cond.Op != OpOr {
		t.Fatalf("top op: %s, want ||", cond.Op)
	}
	if cond.L.(*Binary).Op != OpAnd {
		t.Fatalf("left op: %s, want &&", cond.L.(*Binary).Op)
	}
}

func TestParseForLoopVariants(t *testing.T) {
	prog := mustResolve(t, `
int main() {
  int s = 0;
  for (int i = 0; i < 10; i = i + 1) { s = s + i; }
  for (; s > 0; ) { s = s - 1; break; }
  int j = 0;
  for (j = 5; ; j = j - 1) { if (j < 1) { break; } }
  return s;
}`)
	body := prog.Funcs[0].Body.Stmts
	f1 := body[1].(*For)
	if f1.Init == nil || f1.Cond == nil || f1.Post == nil {
		t.Error("for #1 should have all three clauses")
	}
	f2 := body[2].(*For)
	if f2.Init != nil || f2.Cond == nil || f2.Post != nil {
		t.Error("for #2 should have only a condition")
	}
	f3 := body[4].(*For)
	if f3.Init == nil || f3.Cond != nil || f3.Post == nil {
		t.Error("for #3 should have init and post but no condition")
	}
}

func TestParseDanglingElse(t *testing.T) {
	prog := mustResolve(t, `
int main() {
  if (1) { if (0) { return 1; } else { return 2; } }
  return 3;
}`)
	outer := prog.Funcs[0].Body.Stmts[0].(*If)
	if outer.Else != nil {
		t.Error("outer if should have no else")
	}
	inner := outer.Then.Stmts[0].(*If)
	if inner.Else == nil {
		t.Error("inner if should have the else")
	}
}

func TestParseElseIfChain(t *testing.T) {
	prog := mustResolve(t, `
int main() {
  int x = 5;
  if (x < 1) { return 1; } else if (x < 10) { return 2; } else { return 3; }
}`)
	s := prog.Funcs[0].Body.Stmts[1].(*If)
	elif, ok := s.Else.(*If)
	if !ok {
		t.Fatalf("else branch is %T, want *If", s.Else)
	}
	if _, ok := elif.Else.(*Block); !ok {
		t.Fatalf("final else is %T, want *Block", elif.Else)
	}
}

func TestParsePointerDeclVsMultiply(t *testing.T) {
	prog := mustResolve(t, `
struct T { int v; }
int main() {
  T* p = new T;
  int a = 2;
  int b = 3;
  int c = a * b;
  p->v = c;
  return p->v;
}`)
	stmts := prog.Funcs[0].Body.Stmts
	if _, ok := stmts[0].(*VarDecl); !ok {
		t.Errorf("T* p: got %T, want VarDecl", stmts[0])
	}
	c := stmts[3].(*VarDecl)
	if c.Init.(*Binary).Op != OpMul {
		t.Errorf("a * b should parse as multiplication")
	}
}

func TestParseNodeIDsDense(t *testing.T) {
	prog := mustResolve(t, tinyProg)
	seen := map[NodeID]bool{}
	WalkExprs(prog, func(_ *FuncDecl, e Expr) {
		if e.ID() == NoNode {
			t.Errorf("expression %s has no ID", ExprString(e))
		}
		if seen[e.ID()] {
			t.Errorf("duplicate node ID %d", e.ID())
		}
		seen[e.ID()] = true
		if int(e.ID()) >= prog.NumNodes {
			t.Errorf("node ID %d out of range %d", e.ID(), prog.NumNodes)
		}
	})
	WalkStmts(prog, func(_ *FuncDecl, s Stmt) {
		if seen[s.ID()] {
			t.Errorf("duplicate node ID %d (stmt)", s.ID())
		}
		seen[s.ID()] = true
	})
	if len(seen) == 0 {
		t.Fatal("walk visited nothing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"missing semi", `int main() { int x = 1 return x; }`, "expected"},
		{"bad decl", `42`, "expected declaration"},
		{"unclosed brace", `int main() { return 0;`, "expected"},
		{"new non-struct", `int main() { int x = 0; x = new int; return x; }`, "requires a struct type"},
		{"missing paren", `int main( { return 0; }`, "expected parameter type"},
		{"duplicate field", `struct S { int a; int a; } int main() { return 0; }`, "duplicate field"},
		{"struct redeclared", `struct S { int a; } struct S { int b; } int main() { return 0; }`, "redeclared"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("t", tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestPrintRoundTrip(t *testing.T) {
	prog := mustResolve(t, tinyProg)
	printed := Print(prog)
	prog2, err := Parse("roundtrip.mc", printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, printed)
	}
	if err := Resolve(prog2); err != nil {
		t.Fatalf("re-resolve failed: %v", err)
	}
	printed2 := Print(prog2)
	if printed != printed2 {
		t.Errorf("print not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestMustParsePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad source")
		}
	}()
	MustParse("bad", "not a program")
}
