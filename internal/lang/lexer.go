package lang

import (
	"fmt"
	"strings"
)

// Error is a positioned compile-time diagnostic (lexical, syntactic, or
// semantic).
type Error struct {
	Pos  Pos
	Msg  string
	File string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// ErrorList collects several diagnostics into one error value.
type ErrorList []*Error

// Error implements the error interface by joining the individual messages.
func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "\n")
}

// Err returns the list as an error, or nil if it is empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Lexer splits MiniC source text into tokens. Comments (// and /* */) and
// whitespace are skipped. The lexer never fails hard: malformed input
// produces an error and a best-effort resynchronization.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
	errs ErrorList
}

// NewLexer returns a lexer over src. The file name is used only in
// diagnostics and may be empty.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the diagnostics accumulated so far.
func (lx *Lexer) Errors() ErrorList { return lx.errs }

func (lx *Lexer) errorf(p Pos, format string, args ...any) {
	lx.errs = append(lx.errs, &Error{Pos: p, File: lx.file, Msg: fmt.Sprintf(format, args...)})
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns an EOF token,
// and keeps returning EOF tokens thereafter.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: p}
	}
	c := lx.peek()
	switch {
	case isDigit(c):
		return lx.lexNumber(p)
	case isIdentStart(c):
		return lx.lexIdent(p)
	case c == '"':
		return lx.lexString(p)
	}
	lx.advance()
	two := func(second byte, withKind, withoutKind Kind) Token {
		if lx.peek() == second {
			lx.advance()
			return Token{Kind: withKind, Pos: p}
		}
		return Token{Kind: withoutKind, Pos: p}
	}
	switch c {
	case '+':
		return Token{Kind: PLUS, Pos: p}
	case '-':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: ARROW, Pos: p}
		}
		return Token{Kind: MINUS, Pos: p}
	case '*':
		return Token{Kind: STAR, Pos: p}
	case '/':
		return Token{Kind: SLASH, Pos: p}
	case '%':
		return Token{Kind: PERCENT, Pos: p}
	case '=':
		return two('=', EQ, ASSIGN)
	case '!':
		return two('=', NE, NOT)
	case '<':
		return two('=', LE, LT)
	case '>':
		return two('=', GE, GT)
	case '&':
		return two('&', ANDAND, AMP)
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: OROR, Pos: p}
		}
		lx.errorf(p, "unexpected character %q (did you mean ||?)", string(c))
		return lx.Next()
	case '(':
		return Token{Kind: LPAREN, Pos: p}
	case ')':
		return Token{Kind: RPAREN, Pos: p}
	case '{':
		return Token{Kind: LBRACE, Pos: p}
	case '}':
		return Token{Kind: RBRACE, Pos: p}
	case '[':
		return Token{Kind: LBRACKET, Pos: p}
	case ']':
		return Token{Kind: RBRACKET, Pos: p}
	case ',':
		return Token{Kind: COMMA, Pos: p}
	case ';':
		return Token{Kind: SEMI, Pos: p}
	case '.':
		return Token{Kind: DOT, Pos: p}
	}
	lx.errorf(p, "unexpected character %q", string(c))
	return lx.Next()
}

func (lx *Lexer) lexNumber(p Pos) Token {
	var v int64
	overflow := false
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		d := int64(lx.advance() - '0')
		nv := v*10 + d
		if nv < v {
			overflow = true
		}
		v = nv
	}
	if overflow {
		lx.errorf(p, "integer literal overflows int64")
	}
	return Token{Kind: INT_LIT, Int: v, Pos: p}
}

func (lx *Lexer) lexIdent(p Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if kw, ok := keywords[text]; ok {
		return Token{Kind: kw, Text: text, Pos: p}
	}
	return Token{Kind: IDENT, Text: text, Pos: p}
}

func (lx *Lexer) lexString(p Pos) Token {
	lx.advance() // opening quote
	var sb strings.Builder
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == '"' {
			lx.advance()
			return Token{Kind: STR_LIT, Text: sb.String(), Pos: p}
		}
		if c == '\n' {
			break
		}
		if c == '\\' {
			lx.advance()
			if lx.off >= len(lx.src) {
				break
			}
			e := lx.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case '0':
				sb.WriteByte(0)
			default:
				lx.errorf(p, "unknown escape sequence \\%s", string(e))
			}
			continue
		}
		sb.WriteByte(lx.advance())
	}
	lx.errorf(p, "unterminated string literal")
	return Token{Kind: STR_LIT, Text: sb.String(), Pos: p}
}

// LexAll tokenizes the whole input, returning all tokens up to and
// including the terminating EOF token.
func LexAll(file, src string) ([]Token, error) {
	lx := NewLexer(file, src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return toks, lx.Errors().Err()
}
