package lang

// NodeID uniquely identifies an AST node within a Program. IDs are
// assigned densely by the parser, which lets later phases (the
// instrumenter, the interpreter) attach side tables keyed by node.
type NodeID int

// NoNode is the zero NodeID, used for "no node".
const NoNode NodeID = 0

type node struct {
	id  NodeID
	pos Pos
}

// ID returns the node's unique identifier.
func (n *node) ID() NodeID { return n.id }

// Pos returns the node's source position.
func (n *node) Pos() Pos { return n.pos }

// Node is the common interface of all AST nodes.
type Node interface {
	ID() NodeID
	Pos() Pos
}

// Expr is an expression node. Type is populated by the resolver.
type Expr interface {
	Node
	// Type returns the static type of the expression (nil before
	// resolution).
	Type() Type
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

type exprBase struct {
	node
	typ Type
}

func (e *exprBase) Type() Type     { return e.typ }
func (e *exprBase) setType(t Type) { e.typ = t }
func (e *exprBase) exprNode()      {}

type stmtBase struct{ node }

func (s *stmtBase) stmtNode() {}

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota // +
	OpSub              // -
	OpMul              // *
	OpDiv              // /
	OpMod              // %
	OpEq               // ==
	OpNe               // !=
	OpLt               // <
	OpLe               // <=
	OpGt               // >
	OpGe               // >=
	OpAnd              // && (short-circuit)
	OpOr               // || (short-circuit)
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||",
}

// String returns the operator's source spelling.
func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether the operator yields a 0/1 truth value.
func (op BinOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// UnOp is a unary operator.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota // -
	OpNot             // !
)

// String returns the operator's source spelling.
func (op UnOp) String() string {
	if op == OpNeg {
		return "-"
	}
	return "!"
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// StrLit is a string literal.
type StrLit struct {
	exprBase
	Value string
}

// NullLit is the null pointer literal.
type NullLit struct {
	exprBase
}

// VarRef is a reference to a named variable (local, parameter, or global).
type VarRef struct {
	exprBase
	Name string
	// Sym is filled in by the resolver.
	Sym *Symbol
}

// Binary is a binary operation. && and || short-circuit; their right
// operand evaluation is an implicit conditional (a branch site in the
// instrumentation sense).
type Binary struct {
	exprBase
	Op   BinOp
	L, R Expr
}

// Unary is a unary operation.
type Unary struct {
	exprBase
	Op UnOp
	E  Expr
}

// Call is a direct function call, either to a declared function or to a
// builtin. Builtin is non-nil after resolution if the callee is a builtin.
type Call struct {
	exprBase
	Name string
	Args []Expr
	// Fn is the resolved user function (nil for builtins).
	Fn *FuncDecl
	// Builtin is the resolved builtin (nil for user functions).
	Builtin *Builtin
}

// Index is a pointer-indexing expression p[i]. If the pointee is a struct
// type the result is a struct lvalue usable only as the base of a Field.
type Index struct {
	exprBase
	Base Expr
	Idx  Expr
}

// Field accesses a struct field: base.f (base is a struct lvalue, e.g.
// arr[i].f) or base->f (base is a struct pointer).
type Field struct {
	exprBase
	Base  Expr
	Name  string
	Arrow bool
	// FieldIndex is the field's slot offset, filled by the resolver.
	FieldIndex int
}

// NewArray is `new T[n]`: allocates a zeroed block of n elements of T and
// yields a pointer to its first element.
type NewArray struct {
	exprBase
	Elem  Type
	Count Expr
}

// NewStruct is `new S`: allocates a single zeroed struct and yields a
// pointer to it.
type NewStruct struct {
	exprBase
	Struct *StructType
}

// VarDecl declares a variable with an optional initializer. At top level
// it declares a global; inside a block, a local.
type VarDecl struct {
	stmtBase
	DeclType Type
	Name     string
	Init     Expr // may be nil (zero value)
	// Sym is filled in by the resolver.
	Sym *Symbol
}

// Assign stores Value into the location denoted by LHS (a VarRef, Index,
// or Field).
type Assign struct {
	stmtBase
	LHS   Expr
	Value Expr
}

// If is a conditional statement. Else may be nil.
type If struct {
	stmtBase
	Cond Expr
	Then *Block
	Else Stmt // *Block or *If or nil
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body *Block
}

// For is a C-style for loop. Init and Post may be nil; Cond may be nil
// (infinite loop).
type For struct {
	stmtBase
	Init Stmt // VarDecl, Assign, or ExprStmt
	Cond Expr
	Post Stmt // Assign or ExprStmt
	Body *Block
}

// Return exits the enclosing function. Value is nil for void functions.
type Return struct {
	stmtBase
	Value Expr
}

// Break exits the innermost loop.
type Break struct{ stmtBase }

// Continue jumps to the next iteration of the innermost loop.
type Continue struct{ stmtBase }

// ExprStmt evaluates an expression for effect (a call).
type ExprStmt struct {
	stmtBase
	E Expr
}

// Block is a brace-delimited statement list introducing a scope.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// Param is a function parameter or struct field.
type Param struct {
	Name string
	Typ  Type
	Pos  Pos
	// Sym is filled in by the resolver (parameters only).
	Sym *Symbol
}

// FuncDecl declares a function.
type FuncDecl struct {
	node
	Name   string
	Params []Param
	Ret    Type
	Body   *Block
	// Locals is the number of local slots (params + locals), filled by
	// the resolver.
	Locals int
}

// ID returns the declaration's node ID.
func (f *FuncDecl) ID() NodeID { return f.id }

// Pos returns the declaration's source position.
func (f *FuncDecl) Pos() Pos { return f.pos }

// StructDecl declares a struct type.
type StructDecl struct {
	node
	Name   string
	Fields []Param
	// Typ is the canonical StructType, filled by the parser.
	Typ *StructType
}

// Program is a parsed (and, after Resolve, checked) MiniC compilation
// unit.
type Program struct {
	File    string
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl

	// NumNodes is one past the largest NodeID in the program.
	NumNodes int

	// FuncByName maps function names to declarations (resolver).
	FuncByName map[string]*FuncDecl
	// GlobalSlots is the number of global variable slots (resolver).
	GlobalSlots int
	// IntConstsByFunc lists the distinct integer constants appearing
	// lexically in each function, used by the scalar-pairs scheme
	// (resolver).
	IntConstsByFunc map[string][]int64
	// ScalarScopes maps each scalar assignment (Assign or VarDecl node)
	// to the int-typed variables in scope there, for the scalar-pairs
	// scheme (resolver).
	ScalarScopes map[NodeID][]*Symbol
}

// SymbolKind distinguishes storage classes.
type SymbolKind int

// Symbol storage classes.
const (
	SymGlobal SymbolKind = iota
	SymParam
	SymLocal
)

// Symbol is a resolved variable: its storage class, slot index within its
// storage area, and type.
type Symbol struct {
	Name string
	Kind SymbolKind
	Slot int
	Typ  Type
	Pos  Pos
	// Func is the defining function name ("" for globals).
	Func string
}
