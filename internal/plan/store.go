package plan

import "sync"

// Store holds the current plan for one serving tier. Publication is
// monotone: a plan is accepted only if its version is strictly newer
// than the current one, so late or duplicate pushes (a gateway retry, a
// restarted planner catching up) can never roll a fleet's rates back.
type Store struct {
	mu  sync.RWMutex
	cur *Plan
}

// NewStore returns a store holding the given initial plan (may be nil).
func NewStore(initial *Plan) *Store { return &Store{cur: initial} }

// Current returns the current plan, nil if none was ever published.
// The returned plan is shared and must not be mutated.
func (s *Store) Current() *Plan {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur
}

// Version returns the current plan version (0 when empty).
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.cur == nil {
		return 0
	}
	return s.cur.Version
}

// Publish installs p if it is strictly newer than the current plan and
// reports whether it was accepted.
func (s *Store) Publish(p *Plan) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != nil && p.Version <= s.cur.Version {
		return false
	}
	s.cur = p
	return true
}
