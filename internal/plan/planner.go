package plan

import (
	"time"

	"cbi/internal/sampling"
)

// Input is one planning observation: the per-site observed-run counts
// and total run count of the aggregate window the plan is computed
// from, plus an optional targeted-deployment hint.
type Input struct {
	// Observed[i] is the number of retained runs (failing + successful)
	// that observed site i at least once.
	Observed []int64
	// Runs is the total number of retained runs.
	Runs int64
	// TopSite is the site of the current top predictor, or -1 when there
	// is none; its neighborhood is boosted to rate 1 so the fleet
	// confirms or kills the leading cause faster.
	TopSite int
}

// PlannerConfig configures a Planner. Zero values get defaults from
// sampling (Target, MinRate) and DefaultMinRuns.
type PlannerConfig struct {
	// Source supplies the aggregate window each re-plan reads. Required.
	Source func() Input
	// Target is the expected per-run sample count each site is planned
	// toward (default sampling.DefaultTargetSamples).
	Target float64
	// MinRate floors planned rates (default sampling.DefaultRate).
	MinRate float64
	// MinRuns gates planning: no re-plan until the window holds at least
	// this many runs (default DefaultMinRuns), so a cold collector does
	// not thrash rates off a handful of runs.
	MinRuns int64
	// BoostRadius is the half-width of the site neighborhood boosted to
	// rate 1 around Input.TopSite. 0 disables boosting.
	BoostRadius int
	// Fingerprint stamps published plans (0 = unchecked).
	Fingerprint uint64
	// SourceName stamps Plan.Source ("collector", "gateway").
	SourceName string
	// Now supplies plan timestamps (default time.Now).
	Now func() time.Time
}

// DefaultMinRuns is the default planning gate: at least this many runs
// in the window before the first re-plan.
const DefaultMinRuns = 100

// Planner computes successor plans from live aggregate windows and
// publishes them to a Store. It is a pure compute component: owners
// (collector, gateway) drive it from their own tickers and persist /
// push what it publishes.
type Planner struct {
	store *Store
	cfg   PlannerConfig
}

// NewPlanner returns a planner publishing into store.
func NewPlanner(store *Store, cfg PlannerConfig) *Planner {
	if cfg.Source == nil {
		panic("plan: PlannerConfig.Source is required")
	}
	if cfg.Target <= 0 {
		cfg.Target = sampling.DefaultTargetSamples
	}
	if cfg.MinRate <= 0 {
		cfg.MinRate = sampling.DefaultRate
	}
	if cfg.MinRuns <= 0 {
		cfg.MinRuns = DefaultMinRuns
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Planner{store: store, cfg: cfg}
}

// Replan reads one Input from the source and publishes a successor plan
// if the window is large enough and the resulting rates differ from the
// current plan. It returns the store's plan after the attempt and
// whether a new version was published.
//
// Per-site policy (see the package comment for the identifiability
// argument): sites whose reach count is identifiable from the window
// get the paper's rate target/reaches via sampling.PlanRates; saturated
// sites hold their current base rate. Boosting then overlays rate 1 on
// the TopSite neighborhood, with the base rates preserved in
// Plan.BaseRates so a later re-plan can release the boost cleanly.
func (p *Planner) Replan() (*Plan, bool) {
	cur := p.store.Current()
	if cur == nil {
		return nil, false
	}
	in := p.cfg.Source()
	if in.Runs < p.cfg.MinRuns || len(in.Observed) != len(cur.Rates) {
		return cur, false
	}
	est, identified := sampling.EstimateReaches(in.Observed, in.Runs, cur.Rates)
	planned := sampling.PlanRates(est, p.cfg.Target, p.cfg.MinRate)
	base := make([]float64, len(planned))
	for i := range base {
		if identified[i] {
			base[i] = planned[i]
		} else {
			base[i] = cur.BaseRate(i)
		}
	}

	rates := base
	var boosts []int32
	boostSite := -1
	if p.cfg.BoostRadius > 0 && in.TopSite >= 0 && in.TopSite < len(base) {
		boostSite = in.TopSite
		lo := boostSite - p.cfg.BoostRadius
		if lo < 0 {
			lo = 0
		}
		hi := boostSite + p.cfg.BoostRadius
		if hi >= len(base) {
			hi = len(base) - 1
		}
		rates = append([]float64(nil), base...)
		for s := lo; s <= hi; s++ {
			rates[s] = 1
			boosts = append(boosts, int32(s))
		}
	}

	if float64sEqual(rates, cur.Rates) && int32sEqual(boosts, cur.Boosts) {
		return cur, false
	}
	next := &Plan{
		Version:     cur.Version + 1,
		Fingerprint: p.cfg.Fingerprint,
		CreatedUnix: p.cfg.Now().Unix(),
		Source:      p.cfg.SourceName,
		Target:      p.cfg.Target,
		MinRate:     p.cfg.MinRate,
		Runs:        in.Runs,
		Rates:       rates,
		BoostSite:   boostSite,
		Boosts:      boosts,
	}
	if boosts != nil {
		next.BaseRates = base
	}
	if !p.store.Publish(next) {
		return p.store.Current(), false
	}
	return next, true
}

func float64sEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
