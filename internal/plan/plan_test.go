package plan

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
)

func validPlan() *Plan {
	return &Plan{
		Version:   3,
		Target:    100,
		MinRate:   0.01,
		Rates:     []float64{0.01, 1, 0.5},
		BoostSite: -1,
	}
}

func TestValidate(t *testing.T) {
	if err := validPlan().Validate(3); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := validPlan().Validate(0); err != nil {
		t.Fatalf("dimension-free validation rejected: %v", err)
	}
	cases := []struct {
		name     string
		mutate   func(*Plan)
		numSites int
	}{
		{"zero version", func(p *Plan) { p.Version = 0 }, 3},
		{"wrong dimension", func(p *Plan) {}, 4},
		{"zero target", func(p *Plan) { p.Target = 0 }, 3},
		{"min rate above one", func(p *Plan) { p.MinRate = 1.5 }, 3},
		{"zero rate", func(p *Plan) { p.Rates[1] = 0 }, 3},
		{"rate above one", func(p *Plan) { p.Rates[1] = 1.0001 }, 3},
		{"base rates wrong length", func(p *Plan) { p.BaseRates = []float64{0.5} }, 3},
		{"base rate zero", func(p *Plan) { p.BaseRates = []float64{0.5, 0, 0.5} }, 3},
		{"boost site out of range", func(p *Plan) { p.BoostSite = 3 }, 3},
		{"boost site below -1", func(p *Plan) { p.BoostSite = -2 }, 3},
		{"boost out of range", func(p *Plan) { p.Boosts = []int32{3} }, 3},
		{"boosts not ascending", func(p *Plan) { p.Boosts = []int32{1, 1} }, 3},
	}
	for _, tc := range cases {
		p := validPlan()
		tc.mutate(p)
		if err := p.Validate(tc.numSites); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
	}
}

func TestBaseRate(t *testing.T) {
	p := validPlan()
	if got := p.BaseRate(1); got != 1 {
		t.Fatalf("BaseRate without boosts = %v, want the effective rate", got)
	}
	p.BaseRates = []float64{0.01, 0.25, 0.5}
	if got := p.BaseRate(1); got != 0.25 {
		t.Fatalf("BaseRate with boosts = %v, want 0.25", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := validPlan()
	p.BaseRates = []float64{0.01, 0.25, 0.5}
	p.BoostSite = 1
	p.Boosts = []int32{1, 2}
	p.Fingerprint = 0xfeed
	p.Source = "collector"
	p.Runs = 1234
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip: got %+v, want %+v", got, p)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte(`{"version":0}`)), 0); err == nil {
		t.Fatal("Decode accepted an invalid plan")
	}
	if _, err := Decode(bytes.NewReader([]byte(`not json`)), 0); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	a, b := Bootstrap(4, 7, 100, 0.01), Bootstrap(4, 7, 100, 0.01)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("bootstrap plans differ across calls")
	}
	if a.Version != 1 || a.CreatedUnix != 0 || a.Source != "bootstrap" {
		t.Fatalf("bootstrap identity fields: %+v", a)
	}
	for i, r := range a.Rates {
		if r != 0.01 {
			t.Fatalf("bootstrap rate[%d] = %v, want the floor", i, r)
		}
	}
	if err := a.Validate(4); err != nil {
		t.Fatalf("bootstrap plan invalid: %v", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := Path(filepath.Join(dir, "collector.snap"))
	if p, err := ReadFile(path, 0); p != nil || err != nil {
		t.Fatalf("missing file: got (%v, %v), want (nil, nil)", p, err)
	}
	want := validPlan()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("file round trip: got %+v, want %+v", got, want)
	}
}

func TestStoreMonotonic(t *testing.T) {
	st := NewStore(nil)
	if st.Current() != nil || st.Version() != 0 {
		t.Fatal("empty store not empty")
	}
	p3 := validPlan()
	if !st.Publish(p3) {
		t.Fatal("publish into empty store rejected")
	}
	if st.Version() != 3 {
		t.Fatalf("version = %d, want 3", st.Version())
	}
	same := validPlan()
	if st.Publish(same) {
		t.Fatal("publish of an equal version accepted")
	}
	older := validPlan()
	older.Version = 2
	if st.Publish(older) {
		t.Fatal("publish of an older version accepted")
	}
	newer := validPlan()
	newer.Version = 4
	if !st.Publish(newer) {
		t.Fatal("publish of a newer version rejected")
	}
}

func TestServeGet(t *testing.T) {
	st := NewStore(nil)
	get := func(target string, inm string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		w := httptest.NewRecorder()
		ServeGet(w, req, st)
		return w
	}

	if w := get("/v1/plan", ""); w.Code != http.StatusNotFound {
		t.Fatalf("empty store: %d, want 404", w.Code)
	}

	st.Publish(validPlan()) // version 3
	w := get("/v1/plan", "")
	if w.Code != http.StatusOK {
		t.Fatalf("plain GET: %d, want 200", w.Code)
	}
	if w.Header().Get("ETag") != `"v3"` || w.Header().Get("X-CBI-Plan-Version") != "3" {
		t.Fatalf("headers: ETag=%q version=%q", w.Header().Get("ETag"), w.Header().Get("X-CBI-Plan-Version"))
	}
	if _, err := Decode(w.Body, 3); err != nil {
		t.Fatalf("body does not decode: %v", err)
	}

	if w := get("/v1/plan?since=3", ""); w.Code != http.StatusNotModified {
		t.Fatalf("since=current: %d, want 304", w.Code)
	}
	if w := get("/v1/plan?since=7", ""); w.Code != http.StatusNotModified {
		t.Fatalf("since=future: %d, want 304", w.Code)
	}
	if w := get("/v1/plan?since=2", ""); w.Code != http.StatusOK {
		t.Fatalf("since=older: %d, want 200", w.Code)
	}
	if w := get("/v1/plan", `"v3"`); w.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match match: %d, want 304", w.Code)
	}
	if w := get("/v1/plan", `"v2"`); w.Code != http.StatusOK {
		t.Fatalf("If-None-Match mismatch: %d, want 200", w.Code)
	}
	// 304s still carry the version headers so pollers can log them.
	if w := get("/v1/plan?since=3", ""); w.Header().Get("X-CBI-Plan-Version") != "3" {
		t.Fatal("304 lost the version header")
	}
}
