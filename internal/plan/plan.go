// Package plan closes the paper's §4 sampling loop at fleet scale. The
// offline story — train per-site rates on a 1,000-run corpus, deploy,
// hope the workload matches — becomes a control loop: a Planner
// periodically re-plans per-site rates from the live aggregate's
// observation counts (via sampling.EstimateReaches + sampling.PlanRates),
// versions the result as an immutable Plan, and publishes it through a
// Store that collectors, gateways, and routers serve at GET /v1/plan.
// Clients poll with `?since=<version>` (or If-None-Match), pick up new
// rates between batches, and stamp subsequent report batches with the
// plan version so the aggregator can attribute counts to the rates that
// produced them.
//
// Identifiability caveat, documented once here and honored everywhere:
// the live aggregate records *run-level membership* (how many retained
// runs observed each site), not sample multiplicities. Inverting
// P(observed) = 1-(1-rate)^reaches recovers a site's per-run reach count
// only while that probability is usefully below 1; a site observed in
// virtually every run is saturated, and its true frequency — and hence
// its paper-exact rate target/reaches — is unidentifiable from
// membership bits. The planner therefore raises under-observed sites
// aggressively (the direction the signal actually supports, and the
// payoff of §4's nonuniform sampling) and holds saturated sites at
// their current rate: they are already observed in essentially every
// retained run, which is exactly the quantity the scoring denominators
// Fobs/Sobs consume.
package plan

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
)

// Plan is one immutable, versioned fleet sampling plan. Versions are
// assigned by the publishing Store and are strictly increasing per
// store; a Plan is never mutated after publication — re-planning
// allocates a successor.
type Plan struct {
	// Version orders plans; clients poll /v1/plan?since=<version> and a
	// store only accepts a pushed plan with a newer version.
	Version uint64 `json:"version"`
	// Fingerprint identifies the instrumentation plan the rates index
	// into (0 = unchecked), mirroring snapshot fingerprinting.
	Fingerprint uint64 `json:"fingerprint,omitempty"`
	// CreatedUnix is the planning wall-clock second (0 for the
	// deterministic bootstrap plan).
	CreatedUnix int64 `json:"created_unix,omitempty"`
	// Source names the planning tier ("bootstrap", "collector",
	// "gateway") for operator forensics.
	Source string `json:"source,omitempty"`
	// Target and MinRate are the sampling.PlanRates parameters the plan
	// was computed with.
	Target  float64 `json:"target"`
	MinRate float64 `json:"min_rate"`
	// Runs is the retained-window run count the plan was computed from
	// (0 for bootstrap).
	Runs int64 `json:"runs,omitempty"`
	// Rates is the effective per-site sampling rate vector, boosts
	// included — what a client's sampler should run.
	Rates []float64 `json:"rates"`
	// BaseRates preserves the unboosted rates when Boosts is non-empty,
	// so the next re-plan can release a boost without the temporary
	// rate-1 neighborhood masquerading as the site's planned rate. Nil
	// when no boost is active (Rates are the base rates).
	BaseRates []float64 `json:"base_rates,omitempty"`
	// BoostSite is the site whose neighborhood is boosted to rate 1 —
	// the site of the current top predictor — or -1 when no boost is
	// active.
	BoostSite int `json:"boost_site"`
	// Boosts lists the boosted site ids, ascending.
	Boosts []int32 `json:"boosts,omitempty"`
}

// BaseRate returns site i's unboosted rate.
func (p *Plan) BaseRate(i int) float64 {
	if p.BaseRates != nil {
		return p.BaseRates[i]
	}
	return p.Rates[i]
}

// ETag is the plan's HTTP entity tag.
func (p *Plan) ETag() string { return `"v` + strconv.FormatUint(p.Version, 10) + `"` }

// Validate checks the structural invariants every Plan consumer relies
// on. numSites > 0 additionally pins the dimension (0 skips the check,
// for consumers that learn dimensions from the plan itself).
func (p *Plan) Validate(numSites int) error {
	if p.Version < 1 {
		return fmt.Errorf("plan: version %d < 1", p.Version)
	}
	if numSites > 0 && len(p.Rates) != numSites {
		return fmt.Errorf("plan: %d rates for %d sites", len(p.Rates), numSites)
	}
	if !(p.Target > 0) {
		return fmt.Errorf("plan: target %v must be positive", p.Target)
	}
	if !(p.MinRate > 0 && p.MinRate <= 1) {
		return fmt.Errorf("plan: min_rate %v out of (0, 1]", p.MinRate)
	}
	for i, r := range p.Rates {
		if !(r > 0 && r <= 1) {
			return fmt.Errorf("plan: rate %v out of (0, 1] at site %d", r, i)
		}
	}
	if p.BaseRates != nil {
		if len(p.BaseRates) != len(p.Rates) {
			return fmt.Errorf("plan: %d base rates for %d rates", len(p.BaseRates), len(p.Rates))
		}
		for i, r := range p.BaseRates {
			if !(r > 0 && r <= 1) {
				return fmt.Errorf("plan: base rate %v out of (0, 1] at site %d", r, i)
			}
		}
	}
	if p.BoostSite < -1 || p.BoostSite >= len(p.Rates) {
		return fmt.Errorf("plan: boost site %d out of range", p.BoostSite)
	}
	prev := int32(-1)
	for _, s := range p.Boosts {
		if s < 0 || int(s) >= len(p.Rates) {
			return fmt.Errorf("plan: boosted site %d out of range", s)
		}
		if s <= prev {
			return fmt.Errorf("plan: boosted sites not strictly ascending at %d", s)
		}
		prev = s
	}
	return nil
}

// Encode writes the plan as JSON (one object, trailing newline).
func (p *Plan) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}

// MaxEncodedBytes bounds one plan document on the wire and at rest
// (a 10M-site fleet plan is ~200MB of JSON; nobody's plan is close).
const MaxEncodedBytes = 64 << 20

// Decode parses and validates one plan. numSites > 0 pins the rate
// vector's dimension.
func Decode(r io.Reader, numSites int) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(io.LimitReader(r, MaxEncodedBytes))
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("plan: decoding: %v", err)
	}
	if err := p.Validate(numSites); err != nil {
		return nil, err
	}
	return &p, nil
}

// Bootstrap returns the deterministic version-1 plan every store starts
// from: the paper's uniform default — every site at minRate — so a
// fleet has defined sampling behavior before the first re-plan, and
// every tier's bootstrap is byte-identical (CreatedUnix is 0 on
// purpose: a timestamp would make collector and gateway bootstraps
// spuriously differ).
func Bootstrap(numSites int, fingerprint uint64, target, minRate float64) *Plan {
	rates := make([]float64, numSites)
	for i := range rates {
		rates[i] = minRate
	}
	return &Plan{
		Version:     1,
		Fingerprint: fingerprint,
		Source:      "bootstrap",
		Target:      target,
		MinRate:     minRate,
		Rates:       rates,
		BoostSite:   -1,
	}
}

// Path returns the plan sidecar path beside a collector snapshot.
func Path(snapshotPath string) string { return snapshotPath + ".plan" }

// WriteFile persists a plan via temp file + rename, like the snapshot
// writer: a crash mid-write never clobbers the previous plan.
func WriteFile(path string, p *Plan) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := p.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads a persisted plan; (nil, nil) when the file does not
// exist.
func ReadFile(path string, numSites int) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	return Decode(f, numSites)
}

// ServeGet answers GET /v1/plan from a store with the conditional
// protocol every tier shares: the response always carries the plan's
// ETag and X-CBI-Plan-Version; a request whose `?since=<version>` is
// current (or whose If-None-Match matches) gets 304 with no body, so a
// million polling clients cost bytes only when the plan actually
// changes. Returns whether a 304 was served (for the caller's
// fetch/not-modified counters).
func ServeGet(w http.ResponseWriter, r *http.Request, st *Store) (notModified bool) {
	cur := st.Current()
	if cur == nil {
		http.Error(w, "no plan published", http.StatusNotFound)
		return false
	}
	etag := cur.ETag()
	w.Header().Set("ETag", etag)
	w.Header().Set("X-CBI-Plan-Version", strconv.FormatUint(cur.Version, 10))
	w.Header().Set("Cache-Control", "no-cache")
	if since := r.URL.Query().Get("since"); since != "" {
		if v, err := strconv.ParseUint(since, 10, 64); err == nil && cur.Version <= v {
			w.WriteHeader(http.StatusNotModified)
			return true
		}
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == etag {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	w.Header().Set("Content-Type", "application/json")
	cur.Encode(w)
	return false
}
