package plan

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cbi/internal/sampling"
)

// simulate draws the run-membership bits a fleet sampling at rates
// would produce: each of runs runs observes site i with probability
// 1-(1-rates[i])^reaches[i].
func simulate(rng *rand.Rand, reaches []float64, rates []float64, runs int64) []int64 {
	observed := make([]int64, len(reaches))
	for i := range reaches {
		pMiss := math.Pow(1-rates[i], reaches[i])
		for r := int64(0); r < runs; r++ {
			if rng.Float64() >= pMiss {
				observed[i]++
			}
		}
	}
	return observed
}

func testPlanner(src func() Input, boostRadius int) (*Store, *Planner) {
	st := NewStore(Bootstrap(4, 0, 100, 0.01))
	pl := NewPlanner(st, PlannerConfig{
		Source:      src,
		Target:      100,
		MinRate:     0.01,
		MinRuns:     10,
		BoostRadius: boostRadius,
		SourceName:  "test",
		Now:         func() time.Time { return time.Unix(1_700_000_000, 0) },
	})
	return st, pl
}

// TestReplanMatchesOfflineFixedPoint is the closed-loop core property:
// one re-plan over a simulated window recovers (within sampling noise)
// the rates the offline trainer sampling.PlanRates would pick from the
// true reach counts — and a second re-plan over a window sampled at the
// new rates holds them (the fixed point).
func TestReplanMatchesOfflineFixedPoint(t *testing.T) {
	// True per-run reach counts: one rare site (raise to 1), two
	// moderate (identifiable at the 1% bootstrap rate, plan
	// target/reaches), one absent.
	reaches := []float64{3, 150, 250, 0}
	offline := sampling.PlanRates(reaches, 100, 0.01)

	rng := rand.New(rand.NewSource(42))
	const runs = 50_000
	var in Input
	_, pl := testPlanner(func() Input { return in }, 0)

	in = Input{
		Observed: simulate(rng, reaches, []float64{0.01, 0.01, 0.01, 0.01}, runs),
		Runs:     runs,
		TopSite:  -1,
	}
	p, published := pl.Replan()
	if !published {
		t.Fatal("first re-plan did not publish")
	}
	if p.Version != 2 || p.Source != "test" || p.Runs != runs {
		t.Fatalf("published plan identity: %+v", p)
	}
	for i, want := range offline {
		got := p.Rates[i]
		if want == 1 {
			if got != 1 {
				t.Fatalf("site %d: rate %v, want exactly 1 (under target)", i, got)
			}
			continue
		}
		if got < want/1.5 || got > want*1.5 {
			t.Fatalf("site %d: rate %v, offline fixed point %v", i, got, want)
		}
	}

	// Second cycle: a window sampled under the new plan re-plans to
	// (approximately) the same rates — no publish when nothing moved
	// materially is not required, but rates must stay near the fixed
	// point rather than oscillate.
	in = Input{
		Observed: simulate(rng, reaches, p.Rates, runs),
		Runs:     runs,
		TopSite:  -1,
	}
	p2, _ := pl.Replan()
	for i := range offline {
		if p.Rates[i] == 1 && p2.Rates[i] != 1 {
			t.Fatalf("site %d: rate-1 site regressed to %v", i, p2.Rates[i])
		}
		if ratio := p2.Rates[i] / p.Rates[i]; ratio < 0.5 || ratio > 2 {
			t.Fatalf("site %d: fixed point oscillates %v -> %v", i, p.Rates[i], p2.Rates[i])
		}
	}
}

// TestReplanHoldsSaturatedSites: a site observed in every run is
// unidentifiable from membership bits; the planner must hold its
// current rate, not slam it to 1.
func TestReplanHoldsSaturatedSites(t *testing.T) {
	const runs = 1000
	var in Input
	st, pl := testPlanner(func() Input { return in }, 0)
	in = Input{
		// Site 0 saturated, site 1 never observed, sites 2-3 moderate.
		Observed: []int64{runs, 0, 100, 100},
		Runs:     runs,
		TopSite:  -1,
	}
	p, published := pl.Replan()
	if !published {
		t.Fatal("re-plan did not publish")
	}
	if p.Rates[0] != st.Current().BaseRate(0) {
		t.Fatalf("saturated site re-planned to %v, want held at %v", p.Rates[0], 0.01)
	}
	if p.Rates[0] != 0.01 {
		t.Fatalf("saturated site rate = %v, want the held bootstrap rate 0.01", p.Rates[0])
	}
	if p.Rates[1] != 1 {
		t.Fatalf("unobserved site rate = %v, want 1", p.Rates[1])
	}
}

func TestReplanMinRunsGate(t *testing.T) {
	var in Input
	st, pl := testPlanner(func() Input { return in }, 0)
	in = Input{Observed: []int64{1, 0, 0, 0}, Runs: 5, TopSite: -1}
	p, published := pl.Replan()
	if published {
		t.Fatal("re-plan published under the MinRuns gate")
	}
	if p != st.Current() || p.Version != 1 {
		t.Fatalf("gated re-plan returned %+v, want the current bootstrap", p)
	}
}

func TestReplanDimensionGate(t *testing.T) {
	var in Input
	_, pl := testPlanner(func() Input { return in }, 0)
	in = Input{Observed: []int64{1, 2}, Runs: 100, TopSite: -1}
	if _, published := pl.Replan(); published {
		t.Fatal("re-plan published with a mismatched window dimension")
	}
}

// TestReplanBoost: the top predictor's site neighborhood is raised to
// rate 1, BaseRates preserves the planned rates, and releasing the
// boost restores them.
func TestReplanBoost(t *testing.T) {
	const runs = 1000
	var in Input
	_, pl := testPlanner(func() Input { return in }, 1)
	// f = 0.8 at the 1% bootstrap rate: identifiable, est ≈ 160 reaches,
	// planned rate ≈ 0.63 — comfortably below 1 so the boost is visible.
	in = Input{
		Observed: []int64{800, 800, 800, 800},
		Runs:     runs,
		TopSite:  2,
	}
	p, published := pl.Replan()
	if !published {
		t.Fatal("boosted re-plan did not publish")
	}
	if p.BoostSite != 2 {
		t.Fatalf("BoostSite = %d, want 2", p.BoostSite)
	}
	wantBoosts := []int32{1, 2, 3}
	if len(p.Boosts) != len(wantBoosts) {
		t.Fatalf("Boosts = %v, want %v", p.Boosts, wantBoosts)
	}
	for i, s := range wantBoosts {
		if p.Boosts[i] != s {
			t.Fatalf("Boosts = %v, want %v", p.Boosts, wantBoosts)
		}
		if p.Rates[s] != 1 {
			t.Fatalf("boosted site %d rate = %v, want 1", s, p.Rates[s])
		}
	}
	if p.BaseRates == nil {
		t.Fatal("boosted plan lost its base rates")
	}
	if p.Rates[0] != p.BaseRates[0] {
		t.Fatal("unboosted site's effective rate differs from its base rate")
	}
	if p.BaseRates[2] >= 1 {
		t.Fatalf("base rate under the boost = %v, want the planned (unboosted) rate", p.BaseRates[2])
	}

	// The boost moves to site 0. The previously boosted sites saturated
	// under rate 1 (observed in every run), so the planner must release
	// them to their preserved *base* rates — not hold the temporary
	// rate-1 boost as if it were planned.
	in = Input{
		Observed: []int64{800, 1000, 1000, 1000},
		Runs:     runs,
		TopSite:  0,
	}
	p2, published := pl.Replan()
	if !published {
		t.Fatal("boost move did not publish")
	}
	if p2.BoostSite != 0 || len(p2.Boosts) != 2 {
		t.Fatalf("moved boost: site %d, boosts %v", p2.BoostSite, p2.Boosts)
	}
	if p2.Rates[3] == 1 {
		t.Fatal("released site still at boost rate 1")
	}
	if p2.Rates[3] != p.BaseRates[3] {
		t.Fatalf("released site rate = %v, want its preserved base rate %v", p2.Rates[3], p.BaseRates[3])
	}
}

// TestReplanNoChangeSuppressed: an identical window publishes nothing.
func TestReplanNoChangeSuppressed(t *testing.T) {
	const runs = 1000
	var in Input
	_, pl := testPlanner(func() Input { return in }, 0)
	in = Input{Observed: []int64{100, 100, 100, 100}, Runs: runs, TopSite: -1}
	p1, published := pl.Replan()
	if !published {
		t.Fatal("first re-plan did not publish")
	}
	p2, published := pl.Replan()
	if published {
		t.Fatal("unchanged window published a new version")
	}
	if p2 != p1 {
		t.Fatal("suppressed re-plan did not return the current plan")
	}
}
