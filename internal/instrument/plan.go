// Package instrument implements predicate instrumentation for MiniC
// programs: the three instrumentation schemes of the PLDI 2005 paper
// (§2) and the sampling runtime that turns program executions into
// feedback reports.
//
// Schemes:
//
//   - branches: at each conditional (if/while/for conditions and the
//     implicit conditionals of && and ||), two predicates track whether
//     the true and false branches were ever taken.
//   - returns: at each int-returning call site, six predicates track
//     whether the returned value was ever <0, <=0, >0, >=0, ==0, !=0.
//   - scalar-pairs: at each scalar assignment x = ..., for each
//     same-typed in-scope variable y and each integer constant c of the
//     enclosing function, six predicates compare the new value of x
//     with y (or c); one extra site compares the new value of x with
//     its own old value. Each (x, y) pair is a distinct site.
//
// All predicates at a site are sampled jointly: one coin flip per site
// reach decides whether the whole site is observed (paper §2).
package instrument

import (
	"fmt"

	"cbi/internal/lang"
)

// Scheme identifies an instrumentation scheme.
type Scheme int

// Instrumentation schemes.
const (
	SchemeBranches Scheme = iota
	SchemeReturns
	SchemeScalarPairs
	// SchemeNullness is this reproduction's implementation of the heap
	// predicates the paper flags as future work (§2: "we believe it
	// would be useful to have predicates on heap structures as well";
	// §4.2.4 blames missing heap predicates for the hours spent on the
	// RHYTHMBOX bugs). At each pointer assignment, two predicates
	// track whether the stored pointer was ever null / non-null.
	// Disabled by default; see Options.EnableNullness.
	SchemeNullness
)

// String names the scheme as in the paper.
func (s Scheme) String() string {
	switch s {
	case SchemeBranches:
		return "branches"
	case SchemeReturns:
		return "returns"
	case SchemeNullness:
		return "nullness"
	default:
		return "scalar-pairs"
	}
}

// CmpOp is one of the six comparison predicates used by the returns and
// scalar-pairs schemes, in the paper's order.
type CmpOp int

// Comparison operators.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

// NumCmpOps is the number of comparison predicates per site.
const NumCmpOps = 6

var cmpNames = [...]string{"<", "<=", ">", ">=", "==", "!="}

// String returns the operator's spelling.
func (op CmpOp) String() string { return cmpNames[op] }

// Eval applies the comparison.
func (op CmpOp) Eval(a, b int64) bool {
	switch op {
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	case CmpEQ:
		return a == b
	default:
		return a != b
	}
}

// PairKind distinguishes the partner of a scalar-pairs site.
type PairKind int

// Scalar-pairs partner kinds.
const (
	PairNone  PairKind = iota // not a scalar-pairs site
	PairVar                   // partner is an in-scope variable
	PairConst                 // partner is an integer constant
	PairOld                   // partner is the old value of the target
)

// Site is one instrumentation site: a program point plus, for
// scalar-pairs, a partner. All predicates of a site are observed
// jointly.
type Site struct {
	ID     int
	Scheme Scheme
	// Func is the enclosing function name.
	Func string
	// Line is the source line of the site.
	Line int
	// Node is the AST node the site instruments (condition root or
	// &&/|| left operand for branches; call for returns; assignment for
	// scalar-pairs).
	Node lang.NodeID
	// Text describes the instrumented program fragment: the condition,
	// the call, or the assignment target.
	Text string

	// Scalar-pairs fields.
	PairKind PairKind
	Partner  *lang.Symbol // PairVar only
	Const    int64        // PairConst only

	// FirstPred is the dense id of the site's first predicate;
	// NumPreds predicates follow consecutively (2 for branches, 6
	// otherwise).
	FirstPred int
	NumPreds  int
}

// Predicate is a single instrumented predicate.
type Predicate struct {
	ID   int
	Site int
	// Text is the human-readable predicate, e.g.
	// "files[filesindex].language > 16" or "tmp == 0 is TRUE".
	Text string
}

// Plan is the instrumentation plan for one program: the full set of
// sites and predicates, with dense node-indexed dispatch tables used by
// the runtime.
type Plan struct {
	Prog  *lang.Program
	Sites []*Site
	Preds []Predicate

	// branchSite maps a node id to its branch site id (-1 if none).
	branchSite []int32
	// returnSite maps a call node id to its returns site id (-1).
	returnSite []int32
	// pairSites maps an assignment node id to its scalar-pairs sites.
	pairSites [][]int32
	// nullSite maps a pointer-assignment node id to its nullness site
	// (-1 if none).
	nullSite []int32
	// derefSite maps a dereference node id (Index or arrow Field) to
	// its nullness site (-1 if none).
	derefSite []int32
}

// NumSites returns the number of instrumentation sites.
func (p *Plan) NumSites() int { return len(p.Sites) }

// NumPreds returns the number of predicates.
func (p *Plan) NumPreds() int { return len(p.Preds) }

// SiteOf returns the site owning predicate id.
func (p *Plan) SiteOf(pred int) *Site { return p.Sites[p.Preds[pred].Site] }

// Options selects which schemes to instrument. The zero value enables
// everything (the paper's configuration).
type Options struct {
	DisableBranches    bool
	DisableReturns     bool
	DisableScalarPairs bool
	// MaxConstPartners caps the number of constant partners per
	// assignment (0 = unlimited). Large constant pools blow up the
	// predicate count quadratically; the paper keeps them all, and so
	// do we by default.
	MaxConstPartners int
	// EnableNullness adds the nullness scheme (pointer assignments
	// tracked as == null / != null), this reproduction's take on the
	// paper's future-work heap predicates. Off by default so the
	// default predicate universe matches the paper's three schemes.
	EnableNullness bool
}

// BuildPlan computes the instrumentation plan for a resolved program.
func BuildPlan(prog *lang.Program) *Plan { return BuildPlanOpts(prog, Options{}) }

// BuildPlanOpts computes the instrumentation plan with scheme options.
func BuildPlanOpts(prog *lang.Program, opts Options) *Plan {
	b := &planBuilder{
		plan: &Plan{
			Prog:       prog,
			branchSite: fillNeg(prog.NumNodes),
			returnSite: fillNeg(prog.NumNodes),
			pairSites:  make([][]int32, prog.NumNodes),
			nullSite:   fillNeg(prog.NumNodes),
			derefSite:  fillNeg(prog.NumNodes),
		},
		opts: opts,
	}
	for _, f := range prog.Funcs {
		b.fn = f
		b.stmt(f.Body)
	}
	return b.plan
}

func fillNeg(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

type planBuilder struct {
	plan *Plan
	opts Options
	fn   *lang.FuncDecl
}

func (b *planBuilder) newSite(s *Site) *Site {
	s.ID = len(b.plan.Sites)
	s.Func = b.fn.Name
	s.FirstPred = len(b.plan.Preds)
	b.plan.Sites = append(b.plan.Sites, s)
	return s
}

func (b *planBuilder) addPred(site *Site, text string) {
	b.plan.Preds = append(b.plan.Preds, Predicate{
		ID:   len(b.plan.Preds),
		Site: site.ID,
		Text: text,
	})
	site.NumPreds++
}

// branchSiteFor registers a branch site keyed by the given node, with
// condition text from text.
func (b *planBuilder) branchSiteFor(node lang.Node, text string) {
	if b.opts.DisableBranches {
		return
	}
	s := b.newSite(&Site{
		Scheme: SchemeBranches,
		Line:   node.Pos().Line,
		Node:   node.ID(),
		Text:   text,
	})
	b.addPred(s, text+" is TRUE")
	b.addPred(s, text+" is FALSE")
	b.plan.branchSite[node.ID()] = int32(s.ID)
}

// cond registers the branch site for a statement condition and then
// scans the expression for nested sites.
func (b *planBuilder) cond(e lang.Expr) {
	if e == nil {
		return
	}
	b.branchSiteFor(e, lang.ExprString(e))
	b.expr(e)
}

// expr scans an expression for implicit conditionals (&& / ||) and
// int-returning call sites, in evaluation order.
func (b *planBuilder) expr(e lang.Expr) {
	switch ex := e.(type) {
	case *lang.Binary:
		if ex.Op == lang.OpAnd || ex.Op == lang.OpOr {
			// The implicit conditional tests the left operand and is
			// keyed by the left operand's node.
			b.branchSiteFor(ex.L, lang.ExprString(ex.L))
		}
		b.expr(ex.L)
		b.expr(ex.R)
	case *lang.Unary:
		b.expr(ex.E)
	case *lang.Call:
		for _, a := range ex.Args {
			b.expr(a)
		}
		if !b.opts.DisableReturns && ex.Type() != nil && ex.Type().Equal(lang.Int) {
			text := lang.ExprString(ex)
			s := b.newSite(&Site{
				Scheme: SchemeReturns,
				Line:   ex.Pos().Line,
				Node:   ex.ID(),
				Text:   text,
			})
			for op := CmpLT; op <= CmpNE; op++ {
				b.addPred(s, fmt.Sprintf("%s %s 0", text, op))
			}
			b.plan.returnSite[ex.ID()] = int32(s.ID)
		}
	case *lang.Index:
		b.expr(ex.Base)
		b.expr(ex.Idx)
		if lang.IsPointer(ex.Base.Type()) {
			b.nullDeref(ex, lang.ExprString(ex.Base))
		}
	case *lang.Field:
		b.expr(ex.Base)
		if ex.Arrow {
			b.nullDeref(ex, lang.ExprString(ex.Base))
		}
	case *lang.NewArray:
		b.expr(ex.Count)
	}
}

// scalarAssign registers the scalar-pairs sites for an assignment node
// whose target renders as lhs.
func (b *planBuilder) scalarAssign(node lang.Node, lhs string, target *lang.Symbol) {
	if b.opts.DisableScalarPairs {
		return
	}
	env := b.plan.Prog.ScalarScopes[node.ID()]
	if env == nil {
		return
	}
	addSite := func(s *Site, partner string) {
		for op := CmpLT; op <= CmpNE; op++ {
			b.addPred(s, fmt.Sprintf("%s %s %s", lhs, op, partner))
		}
		b.plan.pairSites[node.ID()] = append(b.plan.pairSites[node.ID()], int32(s.ID))
	}

	// Old-value partner: "new value of x <op> old value of x".
	s := b.newSite(&Site{
		Scheme:   SchemeScalarPairs,
		Line:     node.Pos().Line,
		Node:     node.ID(),
		Text:     lhs,
		PairKind: PairOld,
	})
	for op := CmpLT; op <= CmpNE; op++ {
		b.addPred(s, fmt.Sprintf("new value of %s %s old value of %s", lhs, op, lhs))
	}
	b.plan.pairSites[node.ID()] = append(b.plan.pairSites[node.ID()], int32(s.ID))

	// Variable partners.
	for _, sym := range env {
		if target != nil && sym == target {
			continue // covered by the old-value site
		}
		s := b.newSite(&Site{
			Scheme:   SchemeScalarPairs,
			Line:     node.Pos().Line,
			Node:     node.ID(),
			Text:     lhs,
			PairKind: PairVar,
			Partner:  sym,
		})
		addSite(s, sym.Name)
	}

	// Constant partners.
	consts := b.plan.Prog.IntConstsByFunc[b.fn.Name]
	if b.opts.MaxConstPartners > 0 && len(consts) > b.opts.MaxConstPartners {
		consts = consts[:b.opts.MaxConstPartners]
	}
	for _, c := range consts {
		s := b.newSite(&Site{
			Scheme:   SchemeScalarPairs,
			Line:     node.Pos().Line,
			Node:     node.ID(),
			Text:     lhs,
			PairKind: PairConst,
			Const:    c,
		})
		addSite(s, fmt.Sprintf("%d", c))
	}
}

// nullDeref registers a nullness site for a pointer dereference (the
// base of p[i] or p->f). This is the reading half of the nullness
// scheme — the one that catches missing null checks, where no branch
// site exists to observe.
func (b *planBuilder) nullDeref(node lang.Node, baseText string) {
	if !b.opts.EnableNullness {
		return
	}
	s := b.newSite(&Site{
		Scheme: SchemeNullness,
		Line:   node.Pos().Line,
		Node:   node.ID(),
		Text:   baseText,
	})
	b.addPred(s, baseText+" == null (deref)")
	b.addPred(s, baseText+" != null (deref)")
	b.plan.derefSite[node.ID()] = int32(s.ID)
}

// nullAssign registers a nullness site for a pointer assignment.
func (b *planBuilder) nullAssign(node lang.Node, lhs string) {
	if !b.opts.EnableNullness {
		return
	}
	s := b.newSite(&Site{
		Scheme: SchemeNullness,
		Line:   node.Pos().Line,
		Node:   node.ID(),
		Text:   lhs,
	})
	b.addPred(s, lhs+" == null")
	b.addPred(s, lhs+" != null")
	b.plan.nullSite[node.ID()] = int32(s.ID)
}

func (b *planBuilder) stmt(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.VarDecl:
		if st.Init != nil {
			b.expr(st.Init)
			if lang.IsScalar(st.DeclType) {
				b.scalarAssign(st, st.Name, st.Sym)
			} else if lang.IsPointer(st.DeclType) {
				b.nullAssign(st, st.Name)
			}
		}
	case *lang.Assign:
		b.expr(st.LHS)
		b.expr(st.Value)
		if lang.IsScalar(st.LHS.Type()) {
			var target *lang.Symbol
			if vr, ok := st.LHS.(*lang.VarRef); ok {
				target = vr.Sym
			}
			b.scalarAssign(st, lang.ExprString(st.LHS), target)
		} else if lang.IsPointer(st.LHS.Type()) {
			b.nullAssign(st, lang.ExprString(st.LHS))
		}
	case *lang.If:
		b.cond(st.Cond)
		b.stmt(st.Then)
		if st.Else != nil {
			b.stmt(st.Else)
		}
	case *lang.While:
		b.cond(st.Cond)
		b.stmt(st.Body)
	case *lang.For:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.cond(st.Cond)
		if st.Post != nil {
			b.stmt(st.Post)
		}
		b.stmt(st.Body)
	case *lang.Return:
		if st.Value != nil {
			b.expr(st.Value)
		}
	case *lang.ExprStmt:
		b.expr(st.E)
	case *lang.Block:
		for _, inner := range st.Stmts {
			b.stmt(inner)
		}
	}
}

// Fingerprint returns a stable hash of the plan's structure (schemes,
// sites, predicate texts). Two plans with equal fingerprints index the
// same predicate universe, so feedback corpora recorded under one can
// be analyzed under the other.
func (p *Plan) Fingerprint() uint64 {
	var h uint64 = 1469598103934665603
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= uint64(0xff)
		h *= 1099511628211
	}
	for _, s := range p.Sites {
		mix(s.Scheme.String())
		mix(s.Func)
		mix(s.Text)
		h ^= uint64(s.Line)
		h *= 1099511628211
	}
	for _, pr := range p.Preds {
		mix(pr.Text)
	}
	return h
}
