package instrument

import (
	"sort"

	"cbi/internal/interp"
	"cbi/internal/lang"
	"cbi/internal/report"
	"cbi/internal/sampling"
)

// Runtime implements the interpreter's observer interface.
var _ interp.Observer = (*Runtime)(nil)

// Runtime is the client-side instrumentation runtime: it receives raw
// events from the interpreter, applies site-level sampling, accumulates
// counters, and summarizes each run into a sparse feedback report
// (paper §2: "client-side summarization of the data").
//
// A Runtime is not safe for concurrent use; give each worker goroutine
// its own.
type Runtime struct {
	plan    *Plan
	sampler sampling.Sampler

	siteObs  []uint32
	predTrue []uint32
	// touched lists give O(touched) snapshot cost instead of
	// O(all predicates).
	touchedSites []int32
	touchedPreds []int32
}

// NewRuntime creates a runtime for the given plan and sampler.
func NewRuntime(plan *Plan, sampler sampling.Sampler) *Runtime {
	return &Runtime{
		plan:     plan,
		sampler:  sampler,
		siteObs:  make([]uint32, plan.NumSites()),
		predTrue: make([]uint32, plan.NumPreds()),
	}
}

// Plan returns the instrumentation plan.
func (rt *Runtime) Plan() *Plan { return rt.plan }

// BeginRun resets per-run counters and re-seeds the sampler.
func (rt *Runtime) BeginRun(seed int64) {
	for _, s := range rt.touchedSites {
		rt.siteObs[s] = 0
	}
	for _, p := range rt.touchedPreds {
		rt.predTrue[p] = 0
	}
	rt.touchedSites = rt.touchedSites[:0]
	rt.touchedPreds = rt.touchedPreds[:0]
	rt.sampler.Reset(seed)
}

func (rt *Runtime) observeSite(site int32) {
	if rt.siteObs[site] == 0 {
		rt.touchedSites = append(rt.touchedSites, site)
	}
	rt.siteObs[site]++
}

func (rt *Runtime) markTrue(pred int32) {
	if rt.predTrue[pred] == 0 {
		rt.touchedPreds = append(rt.touchedPreds, pred)
	}
	rt.predTrue[pred]++
}

// Branch implements interp.Observer.
func (rt *Runtime) Branch(id lang.NodeID, cond bool) {
	site := rt.plan.branchSite[id]
	if site < 0 || !rt.sampler.Sample(int(site)) {
		return
	}
	rt.observeSite(site)
	s := rt.plan.Sites[site]
	if cond {
		rt.markTrue(int32(s.FirstPred))
	} else {
		rt.markTrue(int32(s.FirstPred + 1))
	}
}

// IntReturn implements interp.Observer.
func (rt *Runtime) IntReturn(id lang.NodeID, val int64) {
	site := rt.plan.returnSite[id]
	if site < 0 || !rt.sampler.Sample(int(site)) {
		return
	}
	rt.observeSite(site)
	s := rt.plan.Sites[site]
	rt.markCmps(s, val, 0)
}

// markCmps records the six comparison predicates of site s for a vs b.
func (rt *Runtime) markCmps(s *Site, a, b int64) {
	for op := CmpLT; op <= CmpNE; op++ {
		if op.Eval(a, b) {
			rt.markTrue(int32(s.FirstPred + int(op)))
		}
	}
}

// ScalarAssign implements interp.Observer.
func (rt *Runtime) ScalarAssign(id lang.NodeID, newVal, oldVal int64, oldOK bool, read interp.SymReader) {
	for _, site := range rt.plan.pairSites[id] {
		if !rt.sampler.Sample(int(site)) {
			continue
		}
		s := rt.plan.Sites[site]
		var partner int64
		switch s.PairKind {
		case PairOld:
			if !oldOK {
				continue // the old value is not an integer; skip
			}
			partner = oldVal
		case PairVar:
			v, ok := read(s.Partner)
			if !ok {
				continue
			}
			partner = v
		case PairConst:
			partner = s.Const
		default:
			continue
		}
		rt.observeSite(site)
		rt.markCmps(s, newVal, partner)
	}
}

// PtrAssign implements interp.Observer: the nullness scheme.
func (rt *Runtime) PtrAssign(id lang.NodeID, isNull bool) {
	site := rt.plan.nullSite[id]
	if site < 0 || !rt.sampler.Sample(int(site)) {
		return
	}
	rt.observeSite(site)
	s := rt.plan.Sites[site]
	if isNull {
		rt.markTrue(int32(s.FirstPred))
	} else {
		rt.markTrue(int32(s.FirstPred + 1))
	}
}

// PtrDeref implements interp.Observer: the dereference half of the
// nullness scheme.
func (rt *Runtime) PtrDeref(id lang.NodeID, isNull bool) {
	site := rt.plan.derefSite[id]
	if site < 0 || !rt.sampler.Sample(int(site)) {
		return
	}
	rt.observeSite(site)
	s := rt.plan.Sites[site]
	if isNull {
		rt.markTrue(int32(s.FirstPred))
	} else {
		rt.markTrue(int32(s.FirstPred + 1))
	}
}

// Snapshot summarizes the counters accumulated since BeginRun into a
// feedback report with the given run label.
func (rt *Runtime) Snapshot(failed bool) *report.Report {
	rep := &report.Report{
		Failed:        failed,
		ObservedSites: make([]int32, len(rt.touchedSites)),
		TruePreds:     make([]int32, len(rt.touchedPreds)),
	}
	copy(rep.ObservedSites, rt.touchedSites)
	copy(rep.TruePreds, rt.touchedPreds)
	sort.Slice(rep.ObservedSites, func(i, j int) bool { return rep.ObservedSites[i] < rep.ObservedSites[j] })
	sort.Slice(rep.TruePreds, func(i, j int) bool { return rep.TruePreds[i] < rep.TruePreds[j] })
	return rep
}

// SiteObservedCount returns how many times the site was observed in the
// current run (for tests and rate training).
func (rt *Runtime) SiteObservedCount(site int) uint32 { return rt.siteObs[site] }

// TrueCount returns how many times the predicate was observed true in
// the current run.
func (rt *Runtime) TrueCount(pred int) uint32 { return rt.predTrue[pred] }
