package instrument

import (
	"strings"
	"testing"

	"cbi/internal/interp"
	"cbi/internal/lang"
	"cbi/internal/report"
	"cbi/internal/sampling"
)

func compile(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse("test.mc", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := lang.Resolve(prog); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	return prog
}

const demoSrc = `
int counter = 0;

int bump(int d) {
  counter = counter + d;
  return counter;
}

int main() {
  int x = arg(0);
  int limit = 10;
  if (x > limit) {
    x = limit;
  }
  while (x > 0 && counter < 100) {
    int r = bump(x);
    x = x - 1;
  }
  return counter;
}
`

func findSites(p *Plan, scheme Scheme) []*Site {
	var out []*Site
	for _, s := range p.Sites {
		if s.Scheme == scheme {
			out = append(out, s)
		}
	}
	return out
}

func findPred(t *testing.T, p *Plan, text string) Predicate {
	t.Helper()
	for _, pr := range p.Preds {
		if pr.Text == text {
			return pr
		}
	}
	var all []string
	for _, pr := range p.Preds {
		all = append(all, pr.Text)
	}
	t.Fatalf("no predicate %q; have:\n%s", text, strings.Join(all, "\n"))
	return Predicate{}
}

func TestPlanBranchSites(t *testing.T) {
	p := BuildPlan(compile(t, demoSrc))
	branches := findSites(p, SchemeBranches)
	// Conditions: if (x > limit), while (...), plus the implicit
	// conditional for && keyed on its left operand (x > 0).
	var texts []string
	for _, s := range branches {
		texts = append(texts, s.Text)
	}
	want := []string{"x > limit", "x > 0 && counter < 100", "x > 0"}
	for _, w := range want {
		found := false
		for _, g := range texts {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing branch site %q in %v", w, texts)
		}
	}
	for _, s := range branches {
		if s.NumPreds != 2 {
			t.Errorf("branch site %q has %d preds, want 2", s.Text, s.NumPreds)
		}
	}
}

func TestPlanReturnSites(t *testing.T) {
	p := BuildPlan(compile(t, demoSrc))
	rets := findSites(p, SchemeReturns)
	// int-returning calls: arg(0) and bump(x).
	var texts []string
	for _, s := range rets {
		texts = append(texts, s.Text)
	}
	for _, w := range []string{"arg(0)", "bump(x)"} {
		found := false
		for _, g := range texts {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing returns site %q in %v", w, texts)
		}
	}
	for _, s := range rets {
		if s.NumPreds != 6 {
			t.Errorf("returns site %q has %d preds, want 6", s.Text, s.NumPreds)
		}
	}
	// Predicate texts use the paper's six-way vocabulary.
	findPred(t, p, "bump(x) > 0")
	findPred(t, p, "arg(0) == 0")
}

func TestPlanScalarPairSites(t *testing.T) {
	p := BuildPlan(compile(t, demoSrc))
	pairs := findSites(p, SchemeScalarPairs)
	if len(pairs) == 0 {
		t.Fatal("no scalar-pairs sites")
	}
	// x = x - 1 must have an old-value site and partners for counter
	// (global), limit, r (locals in scope), and function constants.
	findPred(t, p, "new value of x < old value of x")
	findPred(t, p, "x < limit")
	findPred(t, p, "x == counter")
	findPred(t, p, "x >= 10")
	// The declaration `int r = bump(x)` pairs with x and limit.
	findPred(t, p, "r > x")
	// Assignments never pair a variable with itself.
	for _, pr := range p.Preds {
		if pr.Text == "x < x" || pr.Text == "counter == counter" {
			t.Errorf("self-pair predicate %q", pr.Text)
		}
	}
	for _, s := range pairs {
		if s.NumPreds != 6 {
			t.Errorf("pair site %q has %d preds, want 6", s.Text, s.NumPreds)
		}
	}
}

func TestPlanPredicateIndexing(t *testing.T) {
	p := BuildPlan(compile(t, demoSrc))
	if p.NumPreds() == 0 || p.NumSites() == 0 {
		t.Fatal("empty plan")
	}
	// Predicates are dense, contiguous per site, and back-reference
	// their site.
	next := 0
	for _, s := range p.Sites {
		if s.FirstPred != next {
			t.Fatalf("site %d: FirstPred = %d, want %d", s.ID, s.FirstPred, next)
		}
		for i := 0; i < s.NumPreds; i++ {
			pr := p.Preds[s.FirstPred+i]
			if pr.Site != s.ID {
				t.Fatalf("pred %d points at site %d, want %d", pr.ID, pr.Site, s.ID)
			}
			if pr.ID != s.FirstPred+i {
				t.Fatalf("pred ID %d misnumbered", pr.ID)
			}
		}
		next += s.NumPreds
	}
	if next != p.NumPreds() {
		t.Fatalf("preds not contiguous: %d vs %d", next, p.NumPreds())
	}
}

func TestPlanOptionsDisableSchemes(t *testing.T) {
	prog := compile(t, demoSrc)
	full := BuildPlan(prog)
	noBranch := BuildPlanOpts(prog, Options{DisableBranches: true})
	noRet := BuildPlanOpts(prog, Options{DisableReturns: true})
	noPairs := BuildPlanOpts(prog, Options{DisableScalarPairs: true})
	if len(findSites(noBranch, SchemeBranches)) != 0 {
		t.Error("DisableBranches left branch sites")
	}
	if len(findSites(noRet, SchemeReturns)) != 0 {
		t.Error("DisableReturns left returns sites")
	}
	if len(findSites(noPairs, SchemeScalarPairs)) != 0 {
		t.Error("DisableScalarPairs left pair sites")
	}
	if full.NumPreds() <= noPairs.NumPreds() {
		t.Error("scalar-pairs adds no predicates?")
	}
}

// runOnce executes the demo program with the given input under a fresh
// runtime and returns the feedback report.
func runOnce(t *testing.T, prog *lang.Program, plan *Plan, s sampling.Sampler, input interp.Input, wantCrash bool) *report.Report {
	t.Helper()
	rt := NewRuntime(plan, s)
	rt.BeginRun(input.Seed)
	out := interp.Run(prog, input, rt)
	if out.Crashed != wantCrash {
		t.Fatalf("crashed = %v, want %v (%s %s)", out.Crashed, wantCrash, out.Trap, out.Msg)
	}
	return rt.Snapshot(out.Crashed)
}

func TestRuntimeFullObservation(t *testing.T) {
	prog := compile(t, demoSrc)
	plan := BuildPlan(prog)
	rep := runOnce(t, prog, plan, sampling.Always{}, interp.Input{Args: []int64{5}}, false)

	check := func(text string, want bool) {
		t.Helper()
		pr := findPred(t, plan, text)
		if got := rep.True(int32(pr.ID)); got != want {
			t.Errorf("R(%q) = %v, want %v", text, got, want)
		}
	}
	// x = arg(0) = 5; limit = 10; if (x > limit) not taken.
	check("x > limit is TRUE", false)
	check("x > limit is FALSE", true)
	// The loop ran: x > 0 was both true (5 times) and false (final).
	check("x > 0 is TRUE", true)
	check("x > 0 is FALSE", true)
	// bump returns cumulative positive counters.
	check("bump(x) > 0", true)
	check("bump(x) < 0", false)

	// x = x - 1 decrements. Note "new value of x ..." predicates also
	// exist for the declaration `int x = arg(0)`, so select the site on
	// the decrement's line (predicate text alone is ambiguous, as in
	// the paper, where the UI shows file/line alongside).
	decLine := 0
	for i, ln := range strings.Split(demoSrc, "\n") {
		if strings.Contains(ln, "x = x - 1") {
			decLine = i + 1
		}
	}
	checkAt := func(text string, line int, want bool) {
		t.Helper()
		for _, pr := range plan.Preds {
			if pr.Text == text && plan.SiteOf(pr.ID).Line == line {
				if got := rep.True(int32(pr.ID)); got != want {
					t.Errorf("R(%q@%d) = %v, want %v", text, line, got, want)
				}
				return
			}
		}
		t.Errorf("no predicate %q at line %d", text, line)
	}
	checkAt("new value of x < old value of x", decLine, true)
	checkAt("new value of x > old value of x", decLine, false)

	// Observed-site semantics: the site for "x > limit" was observed
	// even though only one of its predicates was true.
	pr := findPred(t, plan, "x > limit is TRUE")
	site := plan.Preds[pr.ID].Site
	if !rep.ObservedSite(int32(site)) {
		t.Error("branch site not marked observed")
	}
}

func TestRuntimeUnreachedSitesUnobserved(t *testing.T) {
	src := `
int main() {
  int x = arg(0);
  if (x > 1000) {
    int y = x * 2;
    output(y);
  }
  return 0;
}`
	prog := compile(t, src)
	plan := BuildPlan(prog)
	rep := runOnce(t, prog, plan, sampling.Always{}, interp.Input{Args: []int64{1}}, false)
	// The y-assignment pair sites are inside the untaken branch.
	for _, s := range plan.Sites {
		if s.Scheme == SchemeScalarPairs && s.Text == "y" {
			if rep.ObservedSite(int32(s.ID)) {
				t.Errorf("unreached site %d observed", s.ID)
			}
		}
	}
}

func TestRuntimeCrashStillSnapshots(t *testing.T) {
	src := `
int main() {
  int x = arg(0);
  int* p = null;
  if (x == 13) {
    p[0] = 1;
  }
  return 0;
}`
	prog := compile(t, src)
	plan := BuildPlan(prog)
	rep := runOnce(t, prog, plan, sampling.Always{}, interp.Input{Args: []int64{13}}, true)
	if !rep.Failed {
		t.Error("report not labeled failed")
	}
	pr := findPred(t, plan, "x == 13 is TRUE")
	if !rep.True(int32(pr.ID)) {
		t.Error("crash-predicting branch not recorded before the crash")
	}
}

func TestRuntimeSamplingReducesObservations(t *testing.T) {
	prog := compile(t, `
int main() {
  int s = 0;
  for (int i = 0; i < 2000; i = i + 1) {
    s = s + 1;
  }
  return s;
}`)
	plan := BuildPlan(prog)

	rtFull := NewRuntime(plan, sampling.Always{})
	rtFull.BeginRun(1)
	interp.Run(prog, interp.Input{}, rtFull)
	full := rtFull.Snapshot(false)

	rtSparse := NewRuntime(plan, sampling.NewUniform(0.01))
	rtSparse.BeginRun(1)
	interp.Run(prog, interp.Input{}, rtSparse)

	// The loop condition site is reached 2001 times; sampled at 1/100
	// it should be observed roughly 20 times, not 2001.
	var condSite *Site
	for _, s := range plan.Sites {
		if s.Scheme == SchemeBranches && s.Text == "i < 2000" {
			condSite = s
		}
	}
	if condSite == nil {
		t.Fatal("no loop condition site")
	}
	fullCount := rtFull.SiteObservedCount(condSite.ID)
	sparseCount := rtSparse.SiteObservedCount(condSite.ID)
	if fullCount != 2001 {
		t.Errorf("full observation count = %d, want 2001", fullCount)
	}
	if sparseCount == 0 || sparseCount > 100 {
		t.Errorf("sparse observation count = %d, want ~20", sparseCount)
	}
	_ = full
}

func TestRuntimeDeterministicAcrossRuns(t *testing.T) {
	prog := compile(t, demoSrc)
	plan := BuildPlan(prog)
	s := sampling.NewUniform(0.1)
	rt := NewRuntime(plan, s)

	snap := func(seed int64) *report.Report {
		rt.BeginRun(seed)
		interp.Run(prog, interp.Input{Args: []int64{7}, Seed: seed}, rt)
		return rt.Snapshot(false)
	}
	a, b := snap(3), snap(3)
	if len(a.TruePreds) != len(b.TruePreds) || len(a.ObservedSites) != len(b.ObservedSites) {
		t.Fatalf("same seed produced different reports: %v vs %v", a, b)
	}
	for i := range a.TruePreds {
		if a.TruePreds[i] != b.TruePreds[i] {
			t.Fatalf("pred lists differ at %d", i)
		}
	}
}

func TestRuntimeBeginRunResets(t *testing.T) {
	prog := compile(t, demoSrc)
	plan := BuildPlan(prog)
	rt := NewRuntime(plan, sampling.Always{})
	rt.BeginRun(1)
	interp.Run(prog, interp.Input{Args: []int64{9}}, rt)
	first := rt.Snapshot(false)
	if len(first.TruePreds) == 0 {
		t.Fatal("first run observed nothing")
	}
	rt.BeginRun(2)
	empty := rt.Snapshot(false)
	if len(empty.TruePreds) != 0 || len(empty.ObservedSites) != 0 {
		t.Error("BeginRun did not clear counters")
	}
}

func TestReportsSortedAndUnique(t *testing.T) {
	prog := compile(t, demoSrc)
	plan := BuildPlan(prog)
	rep := runOnce(t, prog, plan, sampling.Always{}, interp.Input{Args: []int64{8}}, false)
	for i := 1; i < len(rep.TruePreds); i++ {
		if rep.TruePreds[i] <= rep.TruePreds[i-1] {
			t.Fatalf("TruePreds not strictly increasing at %d", i)
		}
	}
	for i := 1; i < len(rep.ObservedSites); i++ {
		if rep.ObservedSites[i] <= rep.ObservedSites[i-1] {
			t.Fatalf("ObservedSites not strictly increasing at %d", i)
		}
	}
}

func TestMaxConstPartnersCap(t *testing.T) {
	prog := compile(t, demoSrc)
	capped := BuildPlanOpts(prog, Options{MaxConstPartners: 1})
	full := BuildPlan(prog)
	if capped.NumPreds() >= full.NumPreds() {
		t.Errorf("cap did not reduce predicates: %d vs %d", capped.NumPreds(), full.NumPreds())
	}
}

func TestNullnessScheme(t *testing.T) {
	src := `
struct N { int v; N* next; }
int main() {
  N* head = null;
  if (arg(0) > 5) {
    head = new N;
  }
  N* cursor = head;
  int n = 0;
  while (cursor != null) {
    n = n + 1;
    cursor = cursor->next;
  }
  return n;
}`
	prog := compile(t, src)

	// Off by default: no nullness sites.
	if sites := findSites(BuildPlan(prog), SchemeNullness); len(sites) != 0 {
		t.Fatalf("default plan has %d nullness sites, want 0", len(sites))
	}

	plan := BuildPlanOpts(prog, Options{EnableNullness: true})
	sites := findSites(plan, SchemeNullness)
	// Pointer assignments: head = null (decl), head = new N,
	// cursor = head (decl), cursor = cursor->next — plus one deref
	// site for the cursor->next read.
	if len(sites) != 5 {
		var texts []string
		for _, s := range sites {
			texts = append(texts, s.Text)
		}
		t.Fatalf("nullness sites = %v, want 5", texts)
	}
	for _, s := range sites {
		if s.NumPreds != 2 {
			t.Errorf("nullness site %q has %d preds", s.Text, s.NumPreds)
		}
	}

	rep := runOnce(t, prog, plan, sampling.Always{}, interp.Input{Args: []int64{9}}, false)
	// Several assignments share predicate text (the decl and the
	// reassignment of head both yield "head != null"), so check whether
	// ANY same-text predicate was true.
	anyTrue := func(text string) bool {
		for _, pr := range plan.Preds {
			if pr.Text == text && rep.True(int32(pr.ID)) {
				return true
			}
		}
		return false
	}
	check := func(text string, want bool) {
		t.Helper()
		if got := anyTrue(text); got != want {
			t.Errorf("any R(%q) = %v, want %v", text, got, want)
		}
	}
	// arg(0)=9 > 5: head reassigned non-null; decl stored null first.
	check("head == null", true) // the declaration's initializer
	check("head != null", true) // the reassignment
	check("cursor != null", true)
	// cursor walks to null via cursor = cursor->next.
	check("cursor == null", true)
	// The deref site: cursor->next is only dereferenced under the loop
	// guard, so the dereferenced pointer is never null.
	check("cursor != null (deref)", true)
	check("cursor == null (deref)", false)
}

func TestNullnessSampledJointly(t *testing.T) {
	src := `
int main() {
  int* p = null;
  for (int i = 0; i < 1000; i = i + 1) {
    p = new int[1];
  }
  return 0;
}`
	prog := compile(t, src)
	plan := BuildPlanOpts(prog, Options{EnableNullness: true})
	rt := NewRuntime(plan, sampling.NewUniform(0.01))
	rt.BeginRun(1)
	interp.Run(prog, interp.Input{}, rt)
	var loopSite *Site
	for _, s := range findSites(plan, SchemeNullness) {
		if s.Text == "p" && s.Line == 5 {
			loopSite = s
		}
	}
	if loopSite == nil {
		t.Fatal("no nullness site for the loop assignment")
	}
	count := rt.SiteObservedCount(loopSite.ID)
	if count == 0 || count > 100 {
		t.Errorf("sampled nullness observations = %d, want ~10 of 1000", count)
	}
}
