package core

import (
	"testing"
	"testing/quick"

	"cbi/internal/report"
)

// synth builds a synthetic analysis input. Each predicate p lives on
// site siteOf[p]; rows give per-run labels, true predicates, and
// observed sites.
type row struct {
	failed bool
	preds  []int32
	sites  []int32
}

func synth(numPreds, numSites int, siteOf []int32, rows []row) Input {
	set := &report.Set{NumSites: numSites, NumPreds: numPreds}
	for _, r := range rows {
		set.Reports = append(set.Reports, &report.Report{
			Failed:        r.failed,
			TruePreds:     r.preds,
			ObservedSites: r.sites,
		})
	}
	return Input{Set: set, SiteOf: siteOf}
}

// twoBugWorld builds a classic two-bug corpus:
//
//	pred 0: predictor of bug A (common)
//	pred 1: predictor of bug B (rarer)
//	pred 2: super-bug predictor, true in most failing runs of both
//	        bugs and in many successful runs
//	pred 3: sub-bug predictor, true in a small subset of bug A runs
//	pred 4: irrelevant invariant, true everywhere it is observed
//
// Every predicate's site is observed in every run (full coverage), so
// observation effects do not confound the test.
func twoBugWorld() Input {
	siteOf := []int32{0, 1, 2, 3, 4}
	allSites := []int32{0, 1, 2, 3, 4}
	var rows []row
	// 60 failing runs of bug A; half also show the super-bug pred;
	// 12 show the sub-bug pred.
	for i := 0; i < 60; i++ {
		preds := []int32{0}
		if i%2 == 0 {
			preds = append(preds, 2)
		}
		if i < 12 {
			preds = append(preds, 3)
		}
		preds = append(preds, 4)
		rows = append(rows, row{failed: true, preds: sorted32(preds), sites: allSites})
	}
	// 20 failing runs of bug B.
	for i := 0; i < 20; i++ {
		preds := []int32{1}
		if i%2 == 0 {
			preds = append(preds, 2)
		}
		preds = append(preds, 4)
		rows = append(rows, row{failed: true, preds: sorted32(preds), sites: allSites})
	}
	// 320 successful runs; the super-bug predictor fires in a third of
	// them, the invariant in all.
	for i := 0; i < 320; i++ {
		preds := []int32{4}
		if i%3 == 0 {
			preds = append(preds, 2)
		}
		rows = append(rows, row{failed: false, preds: sorted32(preds), sites: allSites})
	}
	return synth(5, 5, siteOf, rows)
}

func sorted32(xs []int32) []int32 {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

func TestAggregateCounts(t *testing.T) {
	in := twoBugWorld()
	agg := Aggregate(in)
	if agg.NumF != 80 || agg.NumS != 320 {
		t.Fatalf("NumF=%d NumS=%d, want 80/320", agg.NumF, agg.NumS)
	}
	if st := agg.Stats[0]; st.F != 60 || st.S != 0 || st.Fobs != 80 || st.Sobs != 320 {
		t.Errorf("pred 0 stats = %+v", st)
	}
	if st := agg.Stats[1]; st.F != 20 || st.S != 0 {
		t.Errorf("pred 1 stats = %+v", st)
	}
	if st := agg.Stats[4]; st.F != 80 || st.S != 320 {
		t.Errorf("pred 4 stats = %+v", st)
	}
}

func TestFilterByIncreaseDropsInvariantsAndKeepsPredictors(t *testing.T) {
	in := twoBugWorld()
	agg := Aggregate(in)
	keep := FilterByIncrease(agg, Z95)
	has := func(p int) bool {
		for _, q := range keep {
			if q == p {
				return true
			}
		}
		return false
	}
	if !has(0) || !has(1) {
		t.Errorf("bug predictors pruned: keep=%v", keep)
	}
	if has(4) {
		t.Errorf("program invariant survived the Increase test: keep=%v", keep)
	}
}

func TestEliminateSelectsBothBugs(t *testing.T) {
	in := twoBugWorld()
	ranked := Eliminate(in, ElimOptions{})
	if len(ranked) < 2 {
		t.Fatalf("selected %d predictors, want >= 2: %+v", len(ranked), ranked)
	}
	if ranked[0].Pred != 0 {
		t.Errorf("first predictor = %d, want 0 (the common bug)", ranked[0].Pred)
	}
	// Bug B's predictor must appear.
	foundB := false
	for _, r := range ranked {
		if r.Pred == 1 {
			foundB = true
		}
	}
	if !foundB {
		t.Errorf("bug B predictor not selected: %+v", ranked)
	}
	// The super-bug predictor must not outrank both real predictors.
	if ranked[0].Pred == 2 {
		t.Error("super-bug predictor ranked first")
	}
}

func TestEliminateEffectiveStatsShrink(t *testing.T) {
	in := twoBugWorld()
	ranked := Eliminate(in, ElimOptions{})
	for i, r := range ranked {
		if i == 0 {
			if r.Effective != r.Initial {
				t.Errorf("first selection should have identical initial/effective stats")
			}
			continue
		}
		if r.Effective.F > r.Initial.F {
			t.Errorf("predictor %d: effective F %d > initial F %d", r.Pred, r.Effective.F, r.Initial.F)
		}
	}
}

func TestEliminateTerminatesWhenRunsExhausted(t *testing.T) {
	in := twoBugWorld()
	ranked := Eliminate(in, ElimOptions{})
	// After covering both bugs the algorithm must stop; with the
	// sub-bug predictor covered by bug A's discard, at most 3-4
	// predictors are selectable.
	if len(ranked) > 4 {
		t.Errorf("selected too many predictors: %d", len(ranked))
	}
}

func TestEliminateMaxPredictorsCap(t *testing.T) {
	in := twoBugWorld()
	ranked := Eliminate(in, ElimOptions{MaxPredictors: 1})
	if len(ranked) != 1 {
		t.Errorf("cap ignored: got %d", len(ranked))
	}
}

// TestLemma31Coverage is the paper's Lemma 3.1: if every bug profile
// intersects the union of the candidate predicates' true-run sets, the
// algorithm selects at least one predicate predicting at least one
// failure of each bug.
func TestLemma31Coverage(t *testing.T) {
	in := twoBugWorld()
	// Ground truth: bug A failing runs are rows 0..59, bug B 60..79.
	bugRuns := map[string][]int{}
	for i := 0; i < 60; i++ {
		bugRuns["A"] = append(bugRuns["A"], i)
	}
	for i := 60; i < 80; i++ {
		bugRuns["B"] = append(bugRuns["B"], i)
	}
	ranked := Eliminate(in, ElimOptions{})
	for bug, runs := range bugRuns {
		covered := false
		for _, r := range ranked {
			for _, runIdx := range runs {
				if in.Set.Reports[runIdx].True(int32(r.Pred)) {
					covered = true
				}
			}
		}
		if !covered {
			t.Errorf("bug %s not covered by any selected predictor", bug)
		}
	}
}

func TestDiscardPolicies(t *testing.T) {
	in := twoBugWorld()
	for _, policy := range []DiscardPolicy{DiscardAllRuns, DiscardFailingRuns, RelabelFailingRuns} {
		t.Run(policy.String(), func(t *testing.T) {
			ranked := Eliminate(in, ElimOptions{Policy: policy})
			if len(ranked) < 2 {
				t.Fatalf("policy %s selected %d predictors", policy, len(ranked))
			}
			found := map[int]bool{}
			for _, r := range ranked {
				found[r.Pred] = true
			}
			if !found[0] || !found[1] {
				t.Errorf("policy %s missed a bug predictor: %v", policy, found)
			}
		})
	}
}

// TestNegatedPredicateTheorem checks the §5 result: immediately after P
// is selected (and its runs discarded under any proposal), the Increase
// score of ¬P is ≥ 0 whenever it is defined. We model P/¬P as the two
// branch predicates of one site.
func TestNegatedPredicateTheorem(t *testing.T) {
	// Site 0 hosts preds 0 (P) and 1 (¬P); exactly one is true whenever
	// the site is observed. Bug X fails when P; bug Y fails when ¬P.
	siteOf := []int32{0, 0}
	var rows []row
	add := func(failed bool, p bool, n int) {
		for i := 0; i < n; i++ {
			pred := int32(0)
			if !p {
				pred = 1
			}
			rows = append(rows, row{failed: failed, preds: []int32{pred}, sites: []int32{0}})
		}
	}
	add(true, true, 30)   // P-true failures
	add(true, false, 20)  // ¬P-true failures
	add(false, true, 100) // successes both ways
	add(false, false, 100)
	in := synth(2, 1, siteOf, rows)

	for _, policy := range []DiscardPolicy{DiscardAllRuns, DiscardFailingRuns, RelabelFailingRuns} {
		// Select P (pred 0) manually, apply the policy, and check
		// Increase(¬P).
		active := make([]bool, len(in.Set.Reports))
		relabel := make([]bool, len(in.Set.Reports))
		for i, r := range in.Set.Reports {
			active[i] = true
			relabel[i] = r.Failed
		}
		for i, r := range in.Set.Reports {
			if !r.True(0) {
				continue
			}
			switch policy {
			case DiscardAllRuns:
				active[i] = false
			case DiscardFailingRuns:
				if r.Failed {
					active[i] = false
				}
			case RelabelFailingRuns:
				if r.Failed {
					relabel[i] = false
				}
			}
		}
		var agg *Agg
		if policy == RelabelFailingRuns {
			agg = AggregateSubset(in, active, relabel)
		} else {
			agg = AggregateSubset(in, active, nil)
		}
		inc := Increase(agg.Stats[1])
		if !(inc >= 0) { // also catches NaN, which would mean undefined
			t.Errorf("policy %s: Increase(¬P) = %v, want >= 0", policy, inc)
		}
	}
}

func TestAffinityIdentifiesRelatedPredicates(t *testing.T) {
	in := twoBugWorld()
	cands := []int{0, 1, 2, 3}
	// Pred 3 (sub-bug of A) must have pred 0 at the top of... rather:
	// removing pred 0's runs kills pred 3's importance, so 3 appears
	// high on 0's affinity list, and 1 (independent bug) appears low.
	list := Affinity(in, 0, cands)
	pos := map[int]int{}
	for i, e := range list {
		pos[e.Pred] = i
	}
	if pos[3] > pos[1] {
		t.Errorf("sub-bug predictor 3 (pos %d) should rank above independent predictor 1 (pos %d)", pos[3], pos[1])
	}
	// The independent bug B predictor's importance barely drops.
	for _, e := range list {
		if e.Pred == 1 && e.Drop > 0.1 {
			t.Errorf("independent predictor dropped too much: %+v", e)
		}
	}
	if top := TopAffinity(in, 0, cands); top != list[0].Pred {
		t.Errorf("TopAffinity = %d, want %d", top, list[0].Pred)
	}
}

func TestRankingStrategies(t *testing.T) {
	in := twoBugWorld()
	cands := []int{0, 1, 2, 3}
	byF := RankByF(in, cands)
	// F counts: pred 0: 60, pred 2: 40, pred 1: 20, pred 3: 12.
	if byF[0] != 0 || byF[1] != 2 || byF[2] != 1 || byF[3] != 3 {
		t.Errorf("RankByF = %v", byF)
	}
	byInc := RankByIncrease(in, cands)
	// Deterministic predictors (0, 1, 3) have Failure=1; pred 3's
	// context equals the others' (all sites fully observed), so all
	// deterministic preds share Increase = 0.8; super-bug pred 2 is
	// lower.
	if byInc[3] != 2 {
		t.Errorf("super-bug predictor should rank last by Increase: %v", byInc)
	}
	byImp := RankByImportance(in, cands)
	if byImp[0] != 0 {
		t.Errorf("Importance should rank the common bug predictor first: %v", byImp)
	}
}

// Property: Eliminate never selects the same predicate twice and the
// selection order is deterministic.
func TestEliminateNoDuplicatesProperty(t *testing.T) {
	f := func(seedRows []uint32) bool {
		const numPreds = 8
		siteOf := make([]int32, numPreds)
		for i := range siteOf {
			siteOf[i] = int32(i)
		}
		var rows []row
		for _, x := range seedRows {
			var preds, sites []int32
			for p := 0; p < numPreds; p++ {
				if x&(1<<p) != 0 {
					preds = append(preds, int32(p))
				}
				if x&(1<<(p+numPreds)) != 0 || x&(1<<p) != 0 {
					sites = append(sites, int32(p))
				}
			}
			rows = append(rows, row{failed: x&(1<<30) != 0, preds: preds, sites: sites})
		}
		in := synth(numPreds, numPreds, siteOf, rows)
		a := Eliminate(in, ElimOptions{})
		b := Eliminate(in, ElimOptions{})
		if len(a) != len(b) {
			return false
		}
		seen := map[int]bool{}
		for i := range a {
			if a[i].Pred != b[i].Pred {
				return false
			}
			if seen[a[i].Pred] {
				return false
			}
			seen[a[i].Pred] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
