package core

import (
	"math"
	"reflect"
	"testing"

	"cbi/internal/report"
)

func TestEngineRegistry(t *testing.T) {
	names := EngineNames()
	for _, want := range []string{"eliminate", "importance", "ochiai", "tarantula", "jaccard"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in engine %q not registered (have %v)", want, names)
		}
	}
	if _, ok := EngineByName("no-such-engine"); ok {
		t.Error("EngineByName returned an unregistered engine")
	}
	e, ok := EngineByName(DefaultEngineName)
	if !ok || e.Name() != DefaultEngineName {
		t.Fatalf("default engine %q not resolvable", DefaultEngineName)
	}
	// Names are sorted for stable 400 bodies and docs.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("EngineNames not sorted: %v", names)
		}
	}
}

func TestMeasureFormulas(t *testing.T) {
	st := Stats{F: 8, S: 2, Fobs: 10, Sobs: 10}
	numF, numS := 10, 40

	if got, want := Ochiai(st, numF, numS), 8/math.Sqrt(10*10.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Ochiai = %v, want %v", got, want)
	}
	// fr = 0.8, sr = 0.05 → 0.8/0.85
	if got, want := Tarantula(st, numF, numS), 0.8/0.85; math.Abs(got-want) > 1e-12 {
		t.Errorf("Tarantula = %v, want %v", got, want)
	}
	if got, want := Jaccard(st, numF, numS), 8.0/12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Jaccard = %v, want %v", got, want)
	}

	// Degenerate inputs score 0, never NaN/Inf.
	zero := Stats{}
	for name, fn := range map[string]MeasureFunc{"ochiai": Ochiai, "tarantula": Tarantula, "jaccard": Jaccard} {
		if got := fn(zero, 0, 0); got != 0 {
			t.Errorf("%s on empty stats = %v, want 0", name, got)
		}
		if got := fn(Stats{F: 3}, 3, 0); math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s with no successful runs = %v, want finite", name, got)
		}
	}
}

// TestEnginesRankBugPredictorFirst: on the two-bug world every engine
// must put a genuine bug predictor (pred 0, the common bug) at the
// top, never the invariant pred 4.
func TestEnginesRankBugPredictorFirst(t *testing.T) {
	in := twoBugWorld()
	for _, name := range EngineNames() {
		e, _ := EngineByName(name)
		ranked := e.Score(in, 10)
		if len(ranked) == 0 {
			t.Errorf("%s: empty ranking on a corpus with 80 failing runs", name)
			continue
		}
		if top := ranked[0].Pred; top == 4 {
			t.Errorf("%s: ranked the always-true invariant first", name)
		}
		for i, r := range ranked {
			if r.Score <= 0 || math.IsNaN(r.Score) {
				t.Errorf("%s: rank %d has non-positive score %v", name, i, r.Score)
			}
		}
	}
}

// TestEngineDeterminismUnderPermutation: counting engines must return
// identical rankings when the report order is permuted — the property
// that makes merged gateway answers equal single-collector answers.
func TestEngineDeterminismUnderPermutation(t *testing.T) {
	in := twoBugWorld()
	permuted := Input{Set: cloneSetReversed(in), SiteOf: in.SiteOf}
	for _, name := range []string{"eliminate", "importance", "ochiai", "tarantula", "jaccard", "stacktrace"} {
		e, ok := EngineByName(name)
		if !ok {
			// stacktrace registers from its own package; skip when this
			// test binary does not link it.
			continue
		}
		a, b := e.Score(in, 0), e.Score(permuted, 0)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: ranking changed under report permutation", name)
		}
	}
}

func cloneSetReversed(in Input) *report.Set {
	set := &report.Set{NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds}
	for i := len(in.Set.Reports) - 1; i >= 0; i-- {
		set.Reports = append(set.Reports, in.Set.Reports[i])
	}
	return set
}

func TestEngineKCap(t *testing.T) {
	in := twoBugWorld()
	for _, name := range EngineNames() {
		e, _ := EngineByName(name)
		all := e.Score(in, 0)
		capped := e.Score(in, 2)
		if len(capped) > 2 {
			t.Errorf("%s: k=2 returned %d predictors", name, len(capped))
		}
		if len(all) >= 2 && len(capped) == 2 {
			// The cap must be a prefix for pure-ranking engines. The
			// eliminate engine re-plans each round but its selection
			// order is also prefix-stable under MaxPredictors.
			if capped[0].Pred != all[0].Pred || capped[1].Pred != all[1].Pred {
				t.Errorf("%s: k=2 is not a prefix of the full ranking", name)
			}
		}
	}
}
