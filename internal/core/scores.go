package core

import "math"

// Z95 is the normal quantile for a 95% confidence interval.
const Z95 = 1.959963984540054

// Scores are the paper's per-predicate metrics (§3.1, §3.3).
type Scores struct {
	// Failure = Pr(Crash | P observed to be true), estimated as
	// F / (S + F).
	Failure float64
	// Context = Pr(Crash | P observed), estimated as
	// Fobs / (Sobs + Fobs).
	Context float64
	// Increase = Failure − Context.
	Increase float64
	// IncreaseCI is the half-width of the 95% confidence interval on
	// Increase (two-proportion normal approximation).
	IncreaseCI float64
	// Importance is the harmonic mean of Increase and the normalized
	// log-transformed failure count log(F)/log(NumF); 0 when undefined.
	Importance float64
	// ImportanceCI is a delta-method approximation of the 95% CI
	// half-width on Importance.
	ImportanceCI float64
}

// Failure computes F/(S+F); NaN when the predicate was never observed
// true.
func Failure(st Stats) float64 {
	if st.F+st.S == 0 {
		return math.NaN()
	}
	return float64(st.F) / float64(st.F+st.S)
}

// Context computes Fobs/(Sobs+Fobs); NaN when the site was never
// observed.
func Context(st Stats) float64 {
	if st.Fobs+st.Sobs == 0 {
		return math.NaN()
	}
	return float64(st.Fobs) / float64(st.Fobs+st.Sobs)
}

// Increase computes Failure − Context; NaN when either is undefined.
func Increase(st Stats) float64 { return Failure(st) - Context(st) }

// increaseVariance is the variance estimate used for the Increase CI:
// Var(Failure) + Var(Context) under the binomial proportion model.
func increaseVariance(st Stats) float64 {
	fail, ctx := Failure(st), Context(st)
	n1 := float64(st.F + st.S)
	n2 := float64(st.Fobs + st.Sobs)
	if n1 == 0 || n2 == 0 {
		return math.NaN()
	}
	return fail*(1-fail)/n1 + ctx*(1-ctx)/n2
}

// IncreaseCI returns the half-width of the 95% CI on Increase.
func IncreaseCI(st Stats) float64 {
	v := increaseVariance(st)
	if math.IsNaN(v) {
		return math.NaN()
	}
	return Z95 * math.Sqrt(v)
}

// PassesIncreaseTest reports whether the 95% confidence interval on
// Increase(P) lies strictly above zero — the paper's pruning test
// (§3.1). z is the normal quantile (use Z95 for the paper's setting).
//
// §3.2 shows this test is a simplified two-proportion likelihood-ratio
// test of H1: pf > ps; TestIncreaseEquivalentToProportionTest verifies
// the sign equivalence.
func PassesIncreaseTest(st Stats, z float64) bool {
	inc := Increase(st)
	v := increaseVariance(st)
	if math.IsNaN(inc) || math.IsNaN(v) {
		return false
	}
	return inc-z*math.Sqrt(v) > 0
}

// Importance computes the harmonic mean of Increase(P) and
// log(F(P))/log(NumF) (§3.3):
//
//	Importance(P) = 2 / (1/Increase(P) + log(NumF)/log(F(P)))
//
// Following the paper, the result is 0 whenever the formula is
// undefined (F = 0, F = 1, NumF ≤ 1, or non-positive Increase — a
// non-positive term would otherwise make the "mean" meaningless).
func Importance(st Stats, numF int) float64 {
	inc := Increase(st)
	if math.IsNaN(inc) || inc <= 0 {
		return 0
	}
	sens := logSensitivity(st.F, numF)
	if sens <= 0 {
		return 0
	}
	return 2 / (1/inc + 1/sens)
}

// logSensitivity is the normalized log-transformed failure count
// log(F)/log(NumF); 0 when undefined.
func logSensitivity(f, numF int) float64 {
	if f <= 1 || numF <= 1 {
		return 0
	}
	return math.Log(float64(f)) / math.Log(float64(numF))
}

// ImportanceCI approximates the 95% CI half-width on Importance via the
// delta method (§3.3 points to Lehmann & Casella). With
// h(I, L) = 2IL/(I+L), I the Increase estimate and L = log F / log NumF:
//
//	Var(h) ≈ (∂h/∂I)²·Var(I) + (∂h/∂L)²·Var(L)
//
// where Var(I) is the two-proportion variance and Var(L) propagates the
// binomial variance of F through the log transform, conditioning (as
// the paper notes) on the counts being non-zero.
func ImportanceCI(st Stats, numF int) float64 {
	inc := Increase(st)
	sens := logSensitivity(st.F, numF)
	if math.IsNaN(inc) || inc <= 0 || sens <= 0 {
		return 0
	}
	varI := increaseVariance(st)

	// Var(F) under F ~ Binomial(Fobs, pf).
	var varL float64
	if st.Fobs > 0 && numF > 1 {
		pf := float64(st.F) / float64(st.Fobs)
		varF := float64(st.Fobs) * pf * (1 - pf)
		// dL/dF = 1 / (F ln NumF)
		dLdF := 1 / (float64(st.F) * math.Log(float64(numF)))
		varL = dLdF * dLdF * varF
	}

	sum := inc + sens
	dhdI := 2 * sens * sens / (sum * sum)
	dhdL := 2 * inc * inc / (sum * sum)
	v := dhdI*dhdI*varI + dhdL*dhdL*varL
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return Z95 * math.Sqrt(v)
}

// ComputeScores bundles all metrics for one predicate.
func ComputeScores(st Stats, numF int) Scores {
	return Scores{
		Failure:      Failure(st),
		Context:      Context(st),
		Increase:     Increase(st),
		IncreaseCI:   IncreaseCI(st),
		Importance:   Importance(st, numF),
		ImportanceCI: ImportanceCI(st, numF),
	}
}

// FilterByIncrease returns the predicates whose Increase CI lies
// strictly above zero on the aggregated set — the first pruning step,
// which in the paper removes ~99% of predicates.
func FilterByIncrease(agg *Agg, z float64) []int {
	var keep []int
	for p, st := range agg.Stats {
		if PassesIncreaseTest(st, z) {
			keep = append(keep, p)
		}
	}
	return keep
}

// ZScore computes the two-proportion Z statistic of §3.2's likelihood
// ratio test: Z = (p̂f − p̂s) / √(p̂f(1−p̂f)/nf + p̂s(1−p̂s)/ns), with
// p̂f = F/Fobs and p̂s = S/Sobs. The paper shows choosing H1 (pf > ps)
// requires Z above the confidence quantile, and that p̂f > p̂s is
// algebraically equivalent to Increase > 0. NaN when either proportion
// is undefined.
func ZScore(st Stats) float64 {
	if st.Fobs == 0 || st.Sobs == 0 {
		return math.NaN()
	}
	pf := float64(st.F) / float64(st.Fobs)
	ps := float64(st.S) / float64(st.Sobs)
	v := pf*(1-pf)/float64(st.Fobs) + ps*(1-ps)/float64(st.Sobs)
	if v == 0 {
		// Degenerate: both proportions are 0 or 1 with no variance.
		switch {
		case pf > ps:
			return math.Inf(1)
		case pf < ps:
			return math.Inf(-1)
		default:
			return 0
		}
	}
	return (pf - ps) / math.Sqrt(v)
}

// PassesZTest reports whether the §3.2 hypothesis test chooses
// H1: pf > ps at quantile z — the statistical formulation of the
// Increase pruning test.
func PassesZTest(st Stats, z float64) bool {
	score := ZScore(st)
	return !math.IsNaN(score) && score > z
}
