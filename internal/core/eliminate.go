package core

import (
	"math"
	"sort"
)

// DiscardPolicy selects what happens to runs where the chosen
// predicate was observed true (paper §5's three proposals).
type DiscardPolicy int

// Discard policies.
const (
	// DiscardAllRuns removes every run R with R(P)=1 — the paper's
	// default (proposal 1).
	DiscardAllRuns DiscardPolicy = iota
	// DiscardFailingRuns removes only failing runs with R(P)=1
	// (proposal 2).
	DiscardFailingRuns
	// RelabelFailingRuns relabels failing runs with R(P)=1 as
	// successful (proposal 3).
	RelabelFailingRuns
)

// String names the policy.
func (p DiscardPolicy) String() string {
	switch p {
	case DiscardAllRuns:
		return "discard-all"
	case DiscardFailingRuns:
		return "discard-failing"
	default:
		return "relabel-failing"
	}
}

// Ranked is one predictor selected by the elimination algorithm.
type Ranked struct {
	// Pred is the predicate id.
	Pred int
	// Round is the elimination iteration (0-based) that selected it.
	Round int
	// Initial are the predicate's statistics and scores over the full
	// report set (the paper's "initial bug thermometer").
	Initial       Stats
	InitialScores Scores
	// Effective are the statistics at selection time, after
	// higher-ranked predicates' runs were discarded (the "effective
	// bug thermometer").
	Effective       Stats
	EffectiveScores Scores
}

// ElimOptions configure the elimination algorithm.
type ElimOptions struct {
	// Policy is the run-discard proposal (default: DiscardAllRuns).
	Policy DiscardPolicy
	// Z is the confidence quantile for the Increase pruning test
	// (default Z95).
	Z float64
	// MaxPredictors caps the output length (0 = no cap).
	MaxPredictors int
	// Candidates restricts the candidate predicate set (nil = apply
	// the Increase test on the full set first, the paper's pipeline).
	// For DiscardFailingRuns and RelabelFailingRuns the paper (§5)
	// notes predicates with non-positive initial Increase should NOT
	// be pre-pruned, since they can become predictive later; callers
	// wanting that behaviour pass an explicit candidate list (e.g. all
	// predicates).
	Candidates []int
}

// Eliminate runs the iterative redundancy-elimination algorithm
// (§3.4):
//
//  1. Rank candidate predicates by Importance over the active runs.
//  2. Select the top-ranked predicate; discard (per the policy) the
//     runs where it was observed true.
//  3. Repeat until no failing runs remain, no candidate has positive
//     Importance, or the candidate set is exhausted.
//
// The returned predictors are in selection order, which is the paper's
// ranked output list.
//
// The output is fully deterministic for a given report multiset:
// candidates are scanned in ascending predicate id, so an Importance
// tie always selects the smaller id. TopKImportance applies the same
// rule, which is what lets a live collector's incremental ranking be
// compared element-for-element against this batch path.
func Eliminate(in Input, opts ElimOptions) []Ranked {
	if opts.Z == 0 {
		opts.Z = Z95
	}
	full := Aggregate(in)

	candidates := opts.Candidates
	if candidates == nil {
		candidates = FilterByIncrease(full, opts.Z)
	}
	inCand := make([]bool, in.Set.NumPreds)
	for _, p := range candidates {
		inCand[p] = true
	}

	active := make([]bool, len(in.Set.Reports))
	for i := range active {
		active[i] = true
	}
	var relabel []bool
	if opts.Policy == RelabelFailingRuns {
		relabel = make([]bool, len(in.Set.Reports))
		for i, r := range in.Set.Reports {
			relabel[i] = r.Failed
		}
	}

	var out []Ranked
	for round := 0; ; round++ {
		if opts.MaxPredictors > 0 && len(out) >= opts.MaxPredictors {
			break
		}
		agg := AggregateSubset(in, active, relabel)
		if agg.NumF == 0 {
			break
		}
		// Scan ascending so ties break toward the smaller predicate id.
		best, bestImp := -1, 0.0
		for p := 0; p < in.Set.NumPreds; p++ {
			if !inCand[p] {
				continue
			}
			if imp := Importance(agg.Stats[p], agg.NumF); imp > bestImp {
				best, bestImp = p, imp
			}
		}
		if best < 0 || bestImp <= 0 {
			break
		}

		out = append(out, Ranked{
			Pred:            best,
			Round:           round,
			Initial:         full.Stats[best],
			InitialScores:   ComputeScores(full.Stats[best], full.NumF),
			Effective:       agg.Stats[best],
			EffectiveScores: ComputeScores(agg.Stats[best], agg.NumF),
		})
		inCand[best] = false

		for _, i := range runsWhereTrue(in, int32(best), active) {
			r := in.Set.Reports[i]
			failed := r.Failed
			if relabel != nil {
				failed = relabel[i]
			}
			switch opts.Policy {
			case DiscardAllRuns:
				active[i] = false
			case DiscardFailingRuns:
				if failed {
					active[i] = false
				}
			case RelabelFailingRuns:
				if failed {
					relabel[i] = false
				}
			}
		}
	}
	return out
}

// RankByImportance returns all candidate predicates ordered by
// decreasing Importance over the full set, without elimination — the
// Table 1(c) ranking. Ties break toward smaller predicate ids.
func RankByImportance(in Input, candidates []int) []int {
	agg := Aggregate(in)
	return rankBy(candidates, func(p int) float64 { return Importance(agg.Stats[p], agg.NumF) })
}

// RankByIncrease orders candidates by decreasing Increase (Table 1(b)).
func RankByIncrease(in Input, candidates []int) []int {
	agg := Aggregate(in)
	return rankBy(candidates, func(p int) float64 {
		inc := Increase(agg.Stats[p])
		if math.IsNaN(inc) {
			return math.Inf(-1)
		}
		return inc
	})
}

// RankByF orders candidates by decreasing F(P) (Table 1(a)).
func RankByF(in Input, candidates []int) []int {
	agg := Aggregate(in)
	return rankBy(candidates, func(p int) float64 { return float64(agg.Stats[p].F) })
}

func rankBy(candidates []int, score func(int) float64) []int {
	out := make([]int, len(candidates))
	copy(out, candidates)
	scores := make(map[int]float64, len(out))
	for _, p := range out {
		scores[p] = score(p)
	}
	sort.Slice(out, func(i, j int) bool {
		sa, sb := scores[out[i]], scores[out[j]]
		if sa != sb {
			return sa > sb
		}
		return out[i] < out[j]
	})
	return out
}
