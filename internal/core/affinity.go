package core

import "sort"

// AffinityEntry records how strongly a selected predicate P implies
// another predicate Q: the drop in Q's Importance when the runs where
// P was observed true are removed (paper §4.1: "each predicate P in
// the final, ranked list links to an affinity list of all predicates
// ranked by how much P causes their ranking score to decrease").
type AffinityEntry struct {
	Pred int
	// Before and After are Q's Importance with and without P's true
	// runs.
	Before, After float64
	// Drop = Before − After; large drops mean P and Q predict the same
	// failing runs.
	Drop float64
}

// Affinity computes the affinity list of predicate p over the given
// candidate predicates (p itself is skipped). Entries are ordered by
// decreasing Drop.
func Affinity(in Input, p int, candidates []int) []AffinityEntry {
	before := Aggregate(in)

	active := make([]bool, len(in.Set.Reports))
	for i := range active {
		active[i] = true
	}
	for _, i := range runsWhereTrue(in, int32(p), nil) {
		active[i] = false
	}
	after := AggregateSubset(in, active, nil)

	out := make([]AffinityEntry, 0, len(candidates))
	for _, q := range candidates {
		if q == p {
			continue
		}
		b := Importance(before.Stats[q], before.NumF)
		a := Importance(after.Stats[q], after.NumF)
		out = append(out, AffinityEntry{Pred: q, Before: b, After: a, Drop: b - a})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Drop != out[j].Drop {
			return out[i].Drop > out[j].Drop
		}
		return out[i].Pred < out[j].Pred
	})
	return out
}

// TopAffinity returns the predicate at the head of p's affinity list,
// or -1 if the list is empty — used to recognize sub-bug predictors
// (paper §4.2.1: "the first predicate is listed first in the second
// predicate's affinity list, indicating the first predicate is a
// sub-bug predictor associated with the second").
func TopAffinity(in Input, p int, candidates []int) int {
	list := Affinity(in, p, candidates)
	if len(list) == 0 {
		return -1
	}
	return list[0].Pred
}
