package core

import "sort"

// PredScore pairs a predicate with its scores, for ranked listings that
// carry the metrics along (the collector's live ranking endpoint and
// the batch pipeline share this shape).
type PredScore struct {
	Pred   int
	Stats  Stats
	Scores Scores
}

// TopKImportance returns the k highest-Importance predicates of an
// aggregation, in decreasing Importance order with ties broken toward
// smaller predicate ids. Predicates with zero Importance (undefined or
// non-positive Increase) are excluded, so the result may be shorter
// than k; k <= 0 means no cap.
//
// This is the streaming counterpart of RankByImportance: it consumes
// only an Agg — which incremental aggregators (internal/collector) can
// maintain per report — rather than the report set itself, so it can be
// recomputed per scores query against a live aggregate.
func TopKImportance(agg *Agg, k int) []PredScore {
	type cand struct {
		ps  PredScore
		imp float64
	}
	var cands []cand
	for p, st := range agg.Stats {
		imp := Importance(st, agg.NumF)
		if imp <= 0 {
			continue
		}
		cands = append(cands, cand{PredScore{Pred: p, Stats: st}, imp})
	}
	// Stable sort + ascending-id candidates = ties break toward the
	// smaller predicate id, matching Eliminate's tie policy.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].imp > cands[j].imp })
	if k > 0 && len(cands) > k {
		cands = cands[:k]
	}
	out := make([]PredScore, len(cands))
	for i, c := range cands {
		out[i] = c.ps
		out[i].Scores = ComputeScores(out[i].Stats, agg.NumF)
	}
	return out
}
