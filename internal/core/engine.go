package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// EnginePredictor is one row of an Engine's ranked output: a predicate,
// the engine's own suspiciousness score for it, and its statistics over
// the full report set (for context columns and thermometers).
type EnginePredictor struct {
	Pred  int
	Score float64
	Stats Stats
}

// Engine is a pluggable scoring strategy over a run log. The paper's
// iterative elimination is one member of a family of statistical
// fault-localisation measures (Doric formalises the family; logistic
// regression and stack clustering are the paper's own baselines); an
// Engine is any of them exposed under one interface so the same
// ingestion fleet can answer /v1/predictors with whichever estimator
// fits the workload.
//
// Score must be deterministic for a given report multiset and
// independent of report order: ties break toward the smaller predicate
// id (after any engine-specific secondary key), which is what lets a
// merged gateway answer be compared element-for-element against a
// single collector's.
type Engine interface {
	// Name is the registry key, used in ?engine= and -engine.
	Name() string
	// Doc is a one-line description for listings and error messages.
	Doc() string
	// Score ranks predicates over the run log; k caps the output
	// (0 = no cap).
	Score(in Input, k int) []EnginePredictor
}

// DefaultEngineName is the engine /v1/predictors serves when the
// request names none: the paper's iterative elimination.
const DefaultEngineName = "eliminate"

var (
	engineMu sync.RWMutex
	engines  = map[string]Engine{}
)

// RegisterEngine adds an engine to the registry. It panics on an empty
// name or a duplicate registration — engines register from package
// init, so either is a programming error worth failing loudly on.
func RegisterEngine(e Engine) {
	name := e.Name()
	if name == "" {
		panic("core: RegisterEngine with empty name")
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := engines[name]; dup {
		panic(fmt.Sprintf("core: engine %q registered twice", name))
	}
	engines[name] = e
}

// EngineByName looks up a registered engine.
func EngineByName(name string) (Engine, bool) {
	engineMu.RLock()
	defer engineMu.RUnlock()
	e, ok := engines[name]
	return e, ok
}

// EngineNames lists the registered engines, sorted.
func EngineNames() []string {
	engineMu.RLock()
	defer engineMu.RUnlock()
	out := make([]string, 0, len(engines))
	for n := range engines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---- eliminate: the paper's pipeline as an engine ----

type eliminateEngine struct{}

func (eliminateEngine) Name() string { return DefaultEngineName }
func (eliminateEngine) Doc() string {
	return "iterative redundancy elimination over Importance (PLDI'05 §3.4, the default)"
}

// Score runs exactly the BuildPredictors pipeline — Increase-CI
// pruning then iterative elimination — so the engine's ranking is the
// same predicate sequence /v1/predictors has always served. The score
// is the effective (selection-time) Importance.
func (eliminateEngine) Score(in Input, k int) []EnginePredictor {
	full := Aggregate(in)
	ranked := Eliminate(in, ElimOptions{
		MaxPredictors: k,
		Candidates:    FilterByIncrease(full, Z95),
	})
	out := make([]EnginePredictor, len(ranked))
	for i, r := range ranked {
		out[i] = EnginePredictor{
			Pred:  r.Pred,
			Score: r.EffectiveScores.Importance,
			Stats: full.Stats[r.Pred],
		}
	}
	return out
}

// ---- importance: Table 1(c) without elimination ----

type importanceEngine struct{}

func (importanceEngine) Name() string { return "importance" }
func (importanceEngine) Doc() string {
	return "Increase-filtered predicates ranked by Importance, no elimination (Table 1c)"
}

func (importanceEngine) Score(in Input, k int) []EnginePredictor {
	agg := Aggregate(in)
	var out []EnginePredictor
	for _, p := range FilterByIncrease(agg, Z95) {
		if imp := Importance(agg.Stats[p], agg.NumF); imp > 0 {
			out = append(out, EnginePredictor{Pred: p, Score: imp, Stats: agg.Stats[p]})
		}
	}
	return capRanked(out, k)
}

// ---- Doric-family set-similarity measures ----

// MeasureFunc computes a suspiciousness score from one predicate's
// statistics plus the set-level run counts. Non-positive and NaN
// scores drop the predicate from the ranking.
type MeasureFunc func(st Stats, numF, numS int) float64

// measureEngine ranks every predicate by one Doric-family formula.
type measureEngine struct {
	name, doc string
	fn        MeasureFunc
}

func (m *measureEngine) Name() string { return m.name }
func (m *measureEngine) Doc() string  { return m.doc }

func (m *measureEngine) Score(in Input, k int) []EnginePredictor {
	agg := Aggregate(in)
	var out []EnginePredictor
	for p := 0; p < in.Set.NumPreds; p++ {
		sc := m.fn(agg.Stats[p], agg.NumF, agg.NumS)
		if math.IsNaN(sc) || sc <= 0 {
			continue
		}
		out = append(out, EnginePredictor{Pred: p, Score: sc, Stats: agg.Stats[p]})
	}
	return capRanked(out, k)
}

// capRanked orders predictors by descending score, breaking ties by
// descending F (more failing evidence first) then ascending predicate
// id, and truncates to k (0 = no cap).
func capRanked(out []EnginePredictor, k int) []EnginePredictor {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Stats.F != out[j].Stats.F {
			return out[i].Stats.F > out[j].Stats.F
		}
		return out[i].Pred < out[j].Pred
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Ochiai computes F/√(NumF·(F+S)) — the cosine-style measure that is
// the strongest single formula in most fault-localisation comparisons.
func Ochiai(st Stats, numF, _ int) float64 {
	if st.F == 0 || numF == 0 {
		return 0
	}
	return float64(st.F) / math.Sqrt(float64(numF)*float64(st.F+st.S))
}

// Tarantula computes the classic visualisation measure:
// (F/NumF) / (F/NumF + S/NumS). With no successful runs the successful
// rate is taken as 0, giving 1 for any predicate true in a failure.
func Tarantula(st Stats, numF, numS int) float64 {
	if st.F == 0 || numF == 0 {
		return 0
	}
	fr := float64(st.F) / float64(numF)
	sr := 0.0
	if numS > 0 {
		sr = float64(st.S) / float64(numS)
	}
	return fr / (fr + sr)
}

// Jaccard computes F/(NumF+S): set similarity between "runs where P
// was true" and "failing runs".
func Jaccard(st Stats, numF, _ int) float64 {
	if st.F == 0 || numF+st.S == 0 {
		return 0
	}
	return float64(st.F) / float64(numF+st.S)
}

func init() {
	RegisterEngine(eliminateEngine{})
	RegisterEngine(importanceEngine{})
	RegisterEngine(&measureEngine{
		name: "ochiai",
		doc:  "Ochiai set similarity F/sqrt(NumF*(F+S)) over every predicate",
		fn:   Ochiai,
	})
	RegisterEngine(&measureEngine{
		name: "tarantula",
		doc:  "Tarantula failure-rate ratio (F/NumF)/(F/NumF + S/NumS)",
		fn:   Tarantula,
	})
	RegisterEngine(&measureEngine{
		name: "jaccard",
		doc:  "Jaccard set similarity F/(NumF+S)",
		fn:   Jaccard,
	})
}
