// Package core implements the statistical debugging algorithm of
// "Scalable Statistical Bug Isolation" (Liblit et al., PLDI 2005):
// predicate scoring (Failure, Context, Increase with confidence
// intervals, Importance), Increase-based pruning, the iterative
// redundancy-elimination algorithm with the paper's three run-discard
// proposals, and affinity lists.
//
// The package is decoupled from instrumentation: it consumes feedback
// reports plus a predicate→site map (needed for the "P observed"
// semantics — all predicates at a site are observed together).
package core

import "cbi/internal/report"

// Input is the analysis input: a set of feedback reports and the
// predicate→site mapping.
type Input struct {
	Set *report.Set
	// SiteOf maps each predicate id to its site id.
	SiteOf []int32
}

// Stats are the per-predicate counts the paper's estimators use
// (§3.1): how often the predicate was observed true, and how often its
// site was observed at all, split by run outcome.
type Stats struct {
	// F and S count runs where the predicate was observed to be true,
	// among failing and successful runs respectively.
	F, S int
	// Fobs and Sobs count runs where the predicate's site was observed
	// (reached and sampled), regardless of the predicate's value.
	Fobs, Sobs int
}

// Agg is an aggregation of a report (sub)set: per-predicate Stats plus
// the set-level run counts.
type Agg struct {
	Stats []Stats
	// NumF and NumS are the numbers of failing and successful runs in
	// the aggregated subset.
	NumF, NumS int
}

// Aggregate computes per-predicate statistics over all runs.
func Aggregate(in Input) *Agg {
	active := make([]bool, len(in.Set.Reports))
	for i := range active {
		active[i] = true
	}
	return AggregateSubset(in, active, nil)
}

// AggregateSubset computes per-predicate statistics over the runs with
// active[i] == true. If relabel is non-nil, relabel[i] overrides the
// report's own failure label (used by discard proposal 3).
func AggregateSubset(in Input, active []bool, relabel []bool) *Agg {
	numPreds := in.Set.NumPreds
	numSites := in.Set.NumSites
	agg := &Agg{Stats: make([]Stats, numPreds)}

	fObsSite := make([]int32, numSites)
	sObsSite := make([]int32, numSites)

	for i, r := range in.Set.Reports {
		if !active[i] {
			continue
		}
		failed := r.Failed
		if relabel != nil {
			failed = relabel[i]
		}
		if failed {
			agg.NumF++
			for _, s := range r.ObservedSites {
				fObsSite[s]++
			}
			for _, p := range r.TruePreds {
				agg.Stats[p].F++
			}
		} else {
			agg.NumS++
			for _, s := range r.ObservedSites {
				sObsSite[s]++
			}
			for _, p := range r.TruePreds {
				agg.Stats[p].S++
			}
		}
	}

	for p := 0; p < numPreds; p++ {
		site := in.SiteOf[p]
		agg.Stats[p].Fobs = int(fObsSite[site])
		agg.Stats[p].Sobs = int(sObsSite[site])
	}
	return agg
}

// runsWhereTrue returns the indices of active runs in which predicate p
// was observed true. A nil active slice means all runs.
func runsWhereTrue(in Input, p int32, active []bool) []int {
	var out []int
	for i, r := range in.Set.Reports {
		if active != nil && !active[i] {
			continue
		}
		if r.True(p) {
			out = append(out, i)
		}
	}
	return out
}
