package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFailureContextIncrease(t *testing.T) {
	// The paper's motivating example: f == NULL at line (b) is a
	// deterministic bug predictor — never true in successful runs.
	st := Stats{F: 10, S: 0, Fobs: 10, Sobs: 90}
	if got := Failure(st); got != 1.0 {
		t.Errorf("Failure = %v, want 1", got)
	}
	if got := Context(st); got != 0.1 {
		t.Errorf("Context = %v, want 0.1", got)
	}
	if got := Increase(st); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Increase = %v, want 0.9", got)
	}
}

func TestDoomedPredicateHasZeroIncrease(t *testing.T) {
	// x == 0 at line (c): checked only on runs that already crash, so
	// Failure = Context = 1 and Increase = 0 (the paper's key insight
	// about control-dependent predicates).
	st := Stats{F: 50, S: 0, Fobs: 50, Sobs: 0}
	if got := Increase(st); got != 0 {
		t.Errorf("Increase = %v, want 0", got)
	}
	if PassesIncreaseTest(st, Z95) {
		t.Error("doomed predicate passed the Increase test")
	}
}

func TestUnobservedPredicateScoresUndefined(t *testing.T) {
	st := Stats{}
	if !math.IsNaN(Failure(st)) || !math.IsNaN(Context(st)) || !math.IsNaN(Increase(st)) {
		t.Error("unobserved predicate should have NaN scores")
	}
	if PassesIncreaseTest(st, Z95) {
		t.Error("unobserved predicate passed the Increase test")
	}
	if Importance(st, 100) != 0 {
		t.Error("unobserved predicate has non-zero Importance")
	}
}

func TestIncreaseTestRespectsConfidence(t *testing.T) {
	// One failing observation out of one: Increase is high but the
	// interval is enormous; the test must reject.
	tiny := Stats{F: 1, S: 0, Fobs: 1, Sobs: 1}
	if PassesIncreaseTest(tiny, Z95) {
		t.Error("1-observation predicate passed at 95%")
	}
	// Plenty of evidence: must pass.
	big := Stats{F: 500, S: 10, Fobs: 520, Sobs: 4000}
	if !PassesIncreaseTest(big, Z95) {
		t.Error("well-supported predictor failed the Increase test")
	}
}

// TestIncreaseEquivalentToProportionTest checks the paper's §3.2
// algebra: Increase(P) > 0 ⇔ p̂f(P) > p̂s(P), with
// p̂f = F/Fobs and p̂s = S/Sobs.
func TestIncreaseEquivalentToProportionTest(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		st := Stats{
			F: int(a), S: int(b),
			Fobs: int(a) + int(c), // F(P obs) >= F(P)
			Sobs: int(b) + int(d),
		}
		if st.F+st.S == 0 || st.Fobs == 0 || st.Sobs == 0 {
			return true // scores undefined; nothing to check
		}
		inc := Increase(st)
		pf := float64(st.F) / float64(st.Fobs)
		ps := float64(st.S) / float64(st.Sobs)
		return (inc > 1e-15) == (pf-ps > 1e-15) || math.Abs(inc) <= 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestImportanceBalancesSpecificityAndSensitivity(t *testing.T) {
	const numF = 1000
	// Sub-bug predictor: perfect Increase, tiny F (Table 1(b) shape).
	sub := Stats{F: 10, S: 0, Fobs: 10, Sobs: 90}
	// Super-bug-ish predictor: huge F, small Increase (Table 1(a)).
	super := Stats{F: 900, S: 4000, Fobs: 950, Sobs: 4500}
	// Balanced predictor: high Increase and large F (Table 1(c)).
	good := Stats{F: 800, S: 100, Fobs: 820, Sobs: 4000}

	iSub := Importance(sub, numF)
	iSuper := Importance(super, numF)
	iGood := Importance(good, numF)
	if !(iGood > iSub) {
		t.Errorf("balanced (%v) should beat sub-bug (%v)", iGood, iSub)
	}
	if !(iGood > iSuper) {
		t.Errorf("balanced (%v) should beat super-bug (%v)", iGood, iSuper)
	}
}

func TestImportanceUndefinedCases(t *testing.T) {
	if Importance(Stats{F: 0, S: 0, Fobs: 5, Sobs: 5}, 100) != 0 {
		t.Error("F=0 should give Importance 0")
	}
	if Importance(Stats{F: 1, S: 0, Fobs: 1, Sobs: 9}, 100) != 0 {
		t.Error("F=1 makes log(F)=0; Importance must be 0 (division by zero case)")
	}
	if Importance(Stats{F: 10, S: 0, Fobs: 10, Sobs: 0}, 1) != 0 {
		t.Error("NumF=1 makes log(NumF)=0; Importance must be 0")
	}
	neg := Stats{F: 5, S: 95, Fobs: 50, Sobs: 50}
	if Importance(neg, 100) != 0 {
		t.Error("negative Increase should give Importance 0")
	}
}

// Property: Importance is a harmonic mean of two values in (0, 1], so
// it lies in [0, 1], between min and max of its components, and below
// twice the minimum.
func TestImportanceBoundsProperty(t *testing.T) {
	f := func(a, b, c, d uint16, numFRaw uint16) bool {
		numF := int(numFRaw%5000) + 2
		st := Stats{F: int(a % 2000), S: int(b % 2000)}
		st.Fobs = st.F + int(c%2000)
		st.Sobs = st.S + int(d%2000)
		if st.F > numF {
			st.F = numF
		}
		imp := Importance(st, numF)
		if imp < 0 || imp > 1.0000001 {
			return false
		}
		if imp > 0 {
			inc := Increase(st)
			sens := math.Log(float64(st.F)) / math.Log(float64(numF))
			lo, hi := inc, sens
			if lo > hi {
				lo, hi = hi, lo
			}
			if imp < lo-1e-9 || imp > hi+1e-9 || imp > 2*lo+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestImportanceCIBehaviour(t *testing.T) {
	// More evidence means tighter intervals.
	small := Stats{F: 8, S: 2, Fobs: 12, Sobs: 30}
	big := Stats{F: 800, S: 200, Fobs: 1200, Sobs: 3000}
	ciSmall := ImportanceCI(small, 1000)
	ciBig := ImportanceCI(big, 1000)
	if ciSmall <= ciBig {
		t.Errorf("CI should shrink with data: small=%v big=%v", ciSmall, ciBig)
	}
	if ciBig <= 0 {
		t.Errorf("CI should be positive for a defined Importance, got %v", ciBig)
	}
	if ImportanceCI(Stats{}, 1000) != 0 {
		t.Error("undefined Importance should have zero CI")
	}
}

func TestComputeScoresConsistency(t *testing.T) {
	st := Stats{F: 100, S: 20, Fobs: 150, Sobs: 850}
	sc := ComputeScores(st, 500)
	if sc.Failure != Failure(st) || sc.Context != Context(st) ||
		sc.Increase != Increase(st) || sc.Importance != Importance(st, 500) {
		t.Error("ComputeScores disagrees with individual functions")
	}
	if math.Abs(sc.Increase-(sc.Failure-sc.Context)) > 1e-15 {
		t.Error("Increase != Failure - Context")
	}
}

// TestZScoreSignMatchesIncrease is §3.2's claim: the Z statistic is
// positive exactly when Increase is positive (p̂f > p̂s ⇔ Increase > 0).
func TestZScoreSignMatchesIncrease(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		st := Stats{
			F: int(a), S: int(b),
			Fobs: int(a) + int(c),
			Sobs: int(b) + int(d),
		}
		if st.Fobs == 0 || st.Sobs == 0 || st.F+st.S == 0 {
			return true
		}
		z := ZScore(st)
		inc := Increase(st)
		if math.IsNaN(z) || math.IsNaN(inc) {
			return true
		}
		if math.Abs(inc) < 1e-12 {
			return true // boundary; both are ~0
		}
		return (z > 0) == (inc > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestZTestAgreesWithIncreaseTestOnStrongEvidence(t *testing.T) {
	// Both formulations accept a well-supported predictor and reject a
	// doomed-path predicate.
	strong := Stats{F: 500, S: 10, Fobs: 520, Sobs: 4000}
	if !PassesZTest(strong, Z95) || !PassesIncreaseTest(strong, Z95) {
		t.Error("strong predictor rejected")
	}
	doomed := Stats{F: 50, S: 0, Fobs: 50, Sobs: 0}
	if PassesZTest(doomed, Z95) || PassesIncreaseTest(doomed, Z95) {
		t.Error("doomed predicate accepted")
	}
	// Deterministic with plenty of evidence: Z is +Inf (zero variance).
	det := Stats{F: 100, S: 0, Fobs: 100, Sobs: 900}
	if z := ZScore(det); !math.IsInf(z, 1) {
		t.Errorf("deterministic predictor Z = %v, want +Inf", z)
	}
}

func TestZScoreUndefined(t *testing.T) {
	if !math.IsNaN(ZScore(Stats{})) {
		t.Error("Z defined with no observations")
	}
	if !math.IsNaN(ZScore(Stats{Fobs: 10})) {
		t.Error("Z defined with no successful observations")
	}
}
