package core

import (
	"math/rand"
	"testing"

	"cbi/internal/report"
)

// randomInput builds a random report set with one site per two preds.
func randomInput(rng *rand.Rand, numSites, numPreds, runs int) Input {
	siteOf := make([]int32, numPreds)
	for p := range siteOf {
		siteOf[p] = int32(p % numSites)
	}
	set := &report.Set{NumSites: numSites, NumPreds: numPreds}
	for i := 0; i < runs; i++ {
		r := &report.Report{Failed: rng.Intn(3) == 0}
		for s := 0; s < numSites; s++ {
			if rng.Intn(2) == 0 {
				r.ObservedSites = append(r.ObservedSites, int32(s))
			}
		}
		for p := 0; p < numPreds; p++ {
			if r.ObservedSite(siteOf[p]) && rng.Intn(3) == 0 {
				r.TruePreds = append(r.TruePreds, int32(p))
			}
		}
		set.Reports = append(set.Reports, r)
	}
	return Input{Set: set, SiteOf: siteOf}
}

func TestTopKImportanceMatchesRankByImportance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in := randomInput(rng, 8, 40, 400)
	agg := Aggregate(in)

	all := make([]int, in.Set.NumPreds)
	for p := range all {
		all[p] = p
	}
	ranked := RankByImportance(in, all)

	top := TopKImportance(agg, 0)
	if len(top) == 0 {
		t.Fatal("expected some positive-Importance predicates")
	}
	for i, ps := range top {
		if ranked[i] != ps.Pred {
			t.Fatalf("rank %d: TopKImportance=%d, RankByImportance=%d", i, ps.Pred, ranked[i])
		}
		want := ComputeScores(agg.Stats[ps.Pred], agg.NumF)
		if ps.Scores != want {
			t.Fatalf("pred %d scores mismatch: %+v vs %+v", ps.Pred, ps.Scores, want)
		}
	}

	k := 3
	topK := TopKImportance(agg, k)
	if len(topK) != k {
		t.Fatalf("k=%d returned %d entries", k, len(topK))
	}
	for i := range topK {
		if topK[i] != top[i] {
			t.Fatalf("truncation changed entry %d", i)
		}
	}
}

func TestTopKImportanceEmpty(t *testing.T) {
	agg := &Agg{Stats: make([]Stats, 10)}
	if got := TopKImportance(agg, 5); len(got) != 0 {
		t.Fatalf("empty agg: got %d entries", len(got))
	}
}
