package core

import (
	"reflect"
	"testing"
)

// TestEliminateAndTopKEdgeCases is a shared table-driven suite: every
// degenerate corpus is pushed through BOTH ranking paths — iterative
// elimination and the streaming top-K — and each must produce exactly
// the expected predicate sequence. The tie cases pin down the
// deterministic tie-breaking rule (equal Importance resolves toward the
// smaller predicate id in both paths), which is what makes live/batch
// output comparison well-defined at all.
func TestEliminateAndTopKEdgeCases(t *testing.T) {
	// In every corpus below all sites are observed in every run, so
	// observation effects cannot confound the expectations.
	obs := func(n int) []int32 {
		sites := make([]int32, n)
		for i := range sites {
			sites[i] = int32(i)
		}
		return sites
	}
	ids := func(n int) []int32 { return obs(n) }

	cases := []struct {
		name     string
		in       Input
		wantElim []int // predicate ids in selection order
		wantTopK []int // predicate ids in ranking order
	}{
		{
			// No reports at all: nothing to rank, nothing to select, no
			// panics on empty aggregates.
			name:     "empty corpus",
			in:       synth(3, 3, ids(3), nil),
			wantElim: nil,
			wantTopK: nil,
		},
		{
			// Zero failing runs: Importance is identically 0 (its
			// log-sensitivity term needs NumF > 1), so elimination stops
			// before its first round and the ranking is empty — even for
			// a predicate true in every run.
			name: "zero failing runs",
			in: synth(2, 2, ids(2), []row{
				{failed: false, preds: []int32{0}, sites: obs(2)},
				{failed: false, preds: []int32{0, 1}, sites: obs(2)},
				{failed: false, preds: []int32{0}, sites: obs(2)},
			}),
			wantElim: nil,
			wantTopK: nil,
		},
		{
			// All runs failing: Context(P) = 1 for every observed
			// predicate, so Increase = Failure - Context <= 0 everywhere
			// and no predicate can look predictive — there is no
			// successful behaviour to contrast against.
			name: "all runs failing",
			in: synth(2, 2, ids(2), []row{
				{failed: true, preds: []int32{0}, sites: obs(2)},
				{failed: true, preds: []int32{0, 1}, sites: obs(2)},
				{failed: true, preds: []int32{0}, sites: obs(2)},
				{failed: true, preds: []int32{1}, sites: obs(2)},
			}),
			wantElim: nil,
			wantTopK: nil,
		},
		{
			// A single predicate that cleanly separates failures from
			// successes: both paths select exactly it.
			name: "single predicate",
			in: func() Input {
				var rows []row
				for i := 0; i < 10; i++ {
					rows = append(rows, row{failed: true, preds: []int32{0}, sites: obs(1)})
				}
				for i := 0; i < 10; i++ {
					rows = append(rows, row{failed: false, sites: obs(1)})
				}
				return synth(1, 1, ids(1), rows)
			}(),
			wantElim: []int{0},
			wantTopK: []int{0},
		},
		{
			// Importance tie: preds 0 and 2 are exact mirrors (each true
			// in its own half of the failing runs, never in successful
			// ones), so their scores are bit-identical. Both paths must
			// order the tie deterministically toward the smaller id:
			// TopK ranks [0, 2]; Eliminate selects 0 first, and — its
			// failing runs being disjoint from pred 2's — still finds 2
			// predictive in round 1. Pred 1 is an invariant (true
			// everywhere) and must appear in neither.
			name: "importance tie breaks toward smaller id",
			in: func() Input {
				var rows []row
				for i := 0; i < 20; i++ {
					winner := int32(0)
					if i >= 10 {
						winner = 2
					}
					rows = append(rows, row{failed: true,
						preds: sorted32([]int32{winner, 1}), sites: obs(3)})
				}
				for i := 0; i < 20; i++ {
					rows = append(rows, row{failed: false, preds: []int32{1}, sites: obs(3)})
				}
				return synth(3, 3, ids(3), rows)
			}(),
			wantElim: []int{0, 2},
			wantTopK: []int{0, 2},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ranked := Eliminate(tc.in, ElimOptions{})
			var gotElim []int
			for _, rk := range ranked {
				gotElim = append(gotElim, rk.Pred)
			}
			if !reflect.DeepEqual(gotElim, tc.wantElim) {
				t.Errorf("Eliminate order = %v, want %v", gotElim, tc.wantElim)
			}

			agg := Aggregate(tc.in)
			var gotTopK []int
			for _, ps := range TopKImportance(agg, 0) {
				gotTopK = append(gotTopK, ps.Pred)
			}
			if !reflect.DeepEqual(gotTopK, tc.wantTopK) {
				t.Errorf("TopKImportance order = %v, want %v", gotTopK, tc.wantTopK)
			}
		})
	}
}

// TestImportanceTieIsExact guards the tie fixture above against
// becoming vacuous: the mirrored predicates really do score identically
// (same Stats, same Importance), so the orderings asserted there are
// decided by the tie rule, not by a hidden score difference.
func TestImportanceTieIsExact(t *testing.T) {
	var rows []row
	sites := []int32{0, 1, 2}
	for i := 0; i < 20; i++ {
		winner := int32(0)
		if i >= 10 {
			winner = 2
		}
		rows = append(rows, row{failed: true, preds: sorted32([]int32{winner, 1}), sites: sites})
	}
	for i := 0; i < 20; i++ {
		rows = append(rows, row{failed: false, preds: []int32{1}, sites: sites})
	}
	in := synth(3, 3, []int32{0, 1, 2}, rows)
	agg := Aggregate(in)
	if agg.Stats[0] != agg.Stats[2] {
		t.Fatalf("mirror predicates have different stats: %+v vs %+v", agg.Stats[0], agg.Stats[2])
	}
	imp0 := Importance(agg.Stats[0], agg.NumF)
	imp2 := Importance(agg.Stats[2], agg.NumF)
	if imp0 != imp2 || imp0 <= 0 {
		t.Fatalf("tie is not exact and positive: Importance %v vs %v", imp0, imp2)
	}
}
