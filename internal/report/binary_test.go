package report

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func randomSet(rng *rand.Rand, numSites, numPreds, numReports int) *Set {
	set := &Set{NumSites: numSites, NumPreds: numPreds}
	for i := 0; i < numReports; i++ {
		r := &Report{Failed: rng.Intn(2) == 0}
		r.ObservedSites = randomAscending(rng, numSites)
		r.TruePreds = randomAscending(rng, numPreds)
		set.Reports = append(set.Reports, r)
	}
	return set
}

func randomAscending(rng *rand.Rand, dim int) []int32 {
	if dim == 0 {
		return nil
	}
	var out []int32
	for v := rng.Intn(4); v < dim; v += 1 + rng.Intn(5) {
		out = append(out, int32(v))
	}
	if rng.Intn(4) == 0 {
		return nil
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		set := randomSet(rng, 1+rng.Intn(200), 1+rng.Intn(600), rng.Intn(30))
		var buf bytes.Buffer
		if err := set.MarshalBinary(&buf); err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := UnmarshalBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !reflect.DeepEqual(canonSet(set), canonSet(got)) {
			t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", set, got)
		}
	}
}

// canonSet normalizes nil vs empty slices so DeepEqual compares
// membership, which is what the codec promises to preserve.
func canonSet(s *Set) *Set {
	out := &Set{NumSites: s.NumSites, NumPreds: s.NumPreds}
	for _, r := range s.Reports {
		cr := &Report{Failed: r.Failed}
		cr.ObservedSites = append([]int32{}, r.ObservedSites...)
		cr.TruePreds = append([]int32{}, r.TruePreds...)
		out.Reports = append(out.Reports, cr)
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		numSites, numPreds := 1+rng.Intn(300), 1+rng.Intn(900)
		want := &Report{Failed: rng.Intn(2) == 0}
		want.ObservedSites = randomAscending(rng, numSites)
		want.TruePreds = randomAscending(rng, numPreds)

		rec := AppendRecord(nil, want)
		got, err := ReadRecord(bytes.NewReader(rec), numSites, numPreds)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Failed != want.Failed ||
			!reflect.DeepEqual(append([]int32{}, got.ObservedSites...), append([]int32{}, want.ObservedSites...)) ||
			!reflect.DeepEqual(append([]int32{}, got.TruePreds...), append([]int32{}, want.TruePreds...)) {
			t.Fatalf("record round trip mismatch:\nin:  %+v\nout: %+v", want, got)
		}
	}
}

// TestRecordMatchesSetEncoding pins the promise the run log relies on:
// a set's binary body is exactly the concatenation of its reports'
// records, so records written by either path decode with the other.
func TestRecordMatchesSetEncoding(t *testing.T) {
	set := randomSet(rand.New(rand.NewSource(23)), 40, 90, 12)
	var buf bytes.Buffer
	if err := set.MarshalBinary(&buf); err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, r := range set.Reports {
		want = AppendRecord(want, r)
	}
	full := buf.Bytes()
	if !bytes.HasSuffix(full, want) {
		t.Fatal("set encoding body is not the concatenation of AppendRecord outputs")
	}
}

func TestRecordMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"bad flags":     {0x7f},
		"truncated":     {0x01, 0x02, 0x00},
		"huge list len": {0x00, 0xff, 0xff, 0xff, 0x7f},
		"zero delta":    {0x00, 0x02, 0x01, 0x00, 0x00},
		"out of range":  {0x00, 0x01, 0x63, 0x00},
	}
	for name, data := range cases {
		if _, err := ReadRecord(bytes.NewReader(data), 10, 10); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	set := randomSet(rng, 500, 2000, 200)
	var bin, txt bytes.Buffer
	if err := set.MarshalBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := set.Marshal(&txt); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Errorf("binary (%d bytes) not smaller than text (%d bytes)", bin.Len(), txt.Len())
	}
}

func TestBinaryMalformed(t *testing.T) {
	var buf bytes.Buffer
	set := randomSet(rand.New(rand.NewSource(3)), 50, 120, 5)
	if err := set.MarshalBinary(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":          {},
		"short magic":    []byte("CB"),
		"wrong magic":    []byte("XXXX\x01\x01\x00"),
		"truncated body": valid[:len(valid)-3],
		"header only":    valid[:7],
	}
	for name, data := range cases {
		if _, err := UnmarshalBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}

	// Flipping bytes must never panic; errors are fine, and a byte flip
	// that still decodes is acceptable (e.g. a flipped failure flag).
	for i := range valid {
		mut := append([]byte{}, valid...)
		mut[i] ^= 0xff
		UnmarshalBinary(bytes.NewReader(mut))
	}
}

func TestBinaryRejectsHugeHeader(t *testing.T) {
	// numSites = 2^40 must be rejected before any allocation.
	data := []byte("CBR1\x80\x80\x80\x80\x80\x80\x80\x80\x01")
	if _, err := UnmarshalBinary(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("huge numSites: got %v, want limit error", err)
	}
}

func TestBinaryHugeListLengthBoundedAlloc(t *testing.T) {
	// A tiny payload declaring a 2^30-entry site list (legal against
	// dim = 2^30, but with no list bytes following) must fail on EOF
	// without first allocating a ~4 GiB slice for the declared length.
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { n := binary.PutUvarint(tmp[:], v); buf.Write(tmp[:n]) }
	put(1 << 30) // numSites
	put(1 << 30) // numPreds
	put(1)       // numReports
	buf.WriteByte(0)
	put(1 << 30) // claimed sites list length, then EOF
	payload := buf.Bytes()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err := UnmarshalBinary(bytes.NewReader(payload))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated huge list decoded without error")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
		t.Errorf("decoding a %d-byte hostile payload allocated %d bytes", len(payload), grew)
	}
}

func TestBinaryLyingLengthAtPreallocCap(t *testing.T) {
	// A batch of reports each declaring a list length at or just past
	// the preallocation cap — legal against the declared dims, but with
	// no list bytes following — must fail on EOF with total allocation
	// bounded by a handful of capped hints, not reports × declared
	// length. This pins the capHint clamp in UnmarshalBinary and
	// readDeltaList at the exact cap boundary.
	for _, claim := range []uint64{maxListPrealloc, maxListPrealloc + 1, 1 << 20} {
		var buf bytes.Buffer
		buf.WriteString(binaryMagic)
		var tmp [binary.MaxVarintLen64]byte
		put := func(v uint64) { n := binary.PutUvarint(tmp[:], v); buf.Write(tmp[:n]) }
		put(1 << 21) // numSites
		put(1 << 21) // numPreds
		put(1 << 20) // numReports: also stresses the report-slice capHint
		buf.WriteByte(0)
		put(claim) // claimed sites list length, then EOF
		payload := buf.Bytes()

		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		_, err := UnmarshalBinary(bytes.NewReader(payload))
		runtime.ReadMemStats(&after)
		if err == nil {
			t.Fatalf("claim=%d: truncated payload decoded without error", claim)
		}
		if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
			t.Errorf("claim=%d: %d-byte hostile payload allocated %d bytes", claim, len(payload), grew)
		}
	}
}

func TestBinaryListLongerThanPreallocCapRoundTrips(t *testing.T) {
	// The preallocation cap bounds the initial hint, not the list
	// length: a legitimate list twice the cap must round-trip exactly.
	const dim = 10000
	const n = 2 * maxListPrealloc // 8192 > maxListPrealloc
	r := &Report{Failed: true}
	for i := 0; i < n; i++ {
		r.ObservedSites = append(r.ObservedSites, int32(i))
		r.TruePreds = append(r.TruePreds, int32(i))
	}
	set := &Set{NumSites: dim, NumPreds: dim, Reports: []*Report{r}}
	var buf bytes.Buffer
	if err := set.MarshalBinary(&buf); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(canonSet(set), canonSet(got)) {
		t.Fatal("round trip mismatch for list longer than prealloc cap")
	}
}
