// Arena decoding for the binary wire codec: a sync.Pool-backed
// workspace that reuses Set/Report/id buffers across batches, so the
// collector's steady-state decode path stops allocating per report.
//
// The contract is lease-based. Arena.Decode returns the decoded *Set
// together with a *Lease that owns every buffer backing it. When the
// caller is done with the Set it calls Lease.Release, which severs the
// returned Set (dims zeroed, Reports nil) before recycling the buffers
// — a stale reader holding the old *Set observes an empty set, never
// another batch's recycled data. Holding interior slices (a Report's
// id lists) past Release is a contract violation; the -race tests in
// arena_test.go pin the Set-level guarantee.
//
// The decoder enforces exactly the invariants of UnmarshalBinary —
// bounded dims, strictly ascending lists, allocation tracking bytes
// read rather than claimed lengths (fuzz-verified by
// FuzzReportRoundTripBinaryArena against the classic decoder).
package report

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Arena hands out pooled decode workspaces. The zero value is ready to
// use; one Arena is meant to be shared by all decoders in a process
// (the collector keeps one per server).
type Arena struct {
	pool    sync.Pool
	active  atomic.Int64
	decodes atomic.Int64
	misses  atomic.Int64
}

// ArenaStats is a point-in-time view of pool behaviour, exported as
// collector gauges.
type ArenaStats struct {
	// ActiveLeases counts Sets decoded but not yet released.
	ActiveLeases int64
	// Decodes counts Decode calls.
	Decodes int64
	// PoolMisses counts Decode calls that had to build a fresh
	// workspace instead of reusing a pooled one.
	PoolMisses int64
}

// Stats reports pool counters. Counts are monotonic except
// ActiveLeases; all may lag in-flight decodes by a moment.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{
		ActiveLeases: a.active.Load(),
		Decodes:      a.decodes.Load(),
		PoolMisses:   a.misses.Load(),
	}
}

// Lease owns the buffers backing one arena-decoded Set.
type Lease struct {
	arena *Arena
	br    *bufio.Reader
	// out is the Set handed to the caller; Release severs it so the
	// caller's pointer can never observe recycled contents.
	out      *Set
	reports  []Report
	ptrs     []*Report
	ids      []int32
	spans    []idSpan
	released bool
}

// idSpan records one report's id-list extents inside the shared slab:
// sites occupy ids[s0:s1], preds ids[s1:p1].
type idSpan struct {
	s0, s1, p1 int
}

// Decode parses a binary-format batch using pooled buffers. On success
// the returned Lease must be Released exactly once when the Set is no
// longer needed; on error the workspace is recycled internally and the
// lease is nil.
func (a *Arena) Decode(r io.Reader) (*Set, *Lease, error) {
	a.decodes.Add(1)
	var l *Lease
	if v := a.pool.Get(); v != nil {
		l = v.(*Lease)
	} else {
		a.misses.Add(1)
		l = &Lease{br: bufio.NewReaderSize(nil, 1<<15)}
	}
	l.arena = a
	l.released = false
	a.active.Add(1)
	set, err := l.decode(r)
	if err != nil {
		l.Release()
		return nil, nil, err
	}
	return set, l, nil
}

func (l *Lease) decode(r io.Reader) (*Set, error) {
	br := l.br
	br.Reset(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("report: binary magic: %v", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, fmt.Errorf("report: bad binary magic %q", magic[:])
	}
	numSites, err := readDim(br, "numSites")
	if err != nil {
		return nil, err
	}
	numPreds, err := readDim(br, "numPreds")
	if err != nil {
		return nil, err
	}
	numReports, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("report: binary numReports: %v", err)
	}
	l.reports = l.reports[:0]
	l.spans = l.spans[:0]
	l.ids = l.ids[:0]
	for i := uint64(0); i < numReports; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("report: binary report %d: record flags: %v", i, err)
		}
		if flags > 1 {
			return nil, fmt.Errorf("report: binary report %d: record: unknown flags %#x", i, flags)
		}
		var sp idSpan
		sp.s0 = len(l.ids)
		n, err := readListLen(br, numSites)
		if err == nil {
			l.ids, err = appendDeltaList(br, numSites, n, l.ids)
		}
		if err != nil {
			return nil, fmt.Errorf("report: binary report %d: record sites: %v", i, err)
		}
		sp.s1 = len(l.ids)
		n, err = readListLen(br, numPreds)
		if err == nil {
			l.ids, err = appendDeltaList(br, numPreds, n, l.ids)
		}
		if err != nil {
			return nil, fmt.Errorf("report: binary report %d: record preds: %v", i, err)
		}
		sp.p1 = len(l.ids)
		l.reports = append(l.reports, Report{Failed: flags&1 != 0})
		l.spans = append(l.spans, sp)
	}
	// Materialize the id sub-slices only now that the slab has stopped
	// growing — slicing mid-decode would be invalidated by append
	// reallocation. Full-capacity slice expressions keep a report from
	// appending into its neighbour's ids.
	l.ptrs = l.ptrs[:0]
	for i := range l.reports {
		sp := l.spans[i]
		rp := &l.reports[i]
		if sp.s1 > sp.s0 {
			rp.ObservedSites = l.ids[sp.s0:sp.s1:sp.s1]
		}
		if sp.p1 > sp.s1 {
			rp.TruePreds = l.ids[sp.s1:sp.p1:sp.p1]
		}
		l.ptrs = append(l.ptrs, rp)
	}
	l.out = &Set{NumSites: numSites, NumPreds: numPreds, Reports: l.ptrs}
	return l.out, nil
}

// Release severs the Set returned by Decode and recycles the lease's
// buffers. The Set header is the one per-decode allocation precisely so
// it can be zeroed here: a caller that erroneously reads it after
// Release sees an empty set, never a later batch's data. Safe to call
// more than once; extra calls are no-ops.
func (l *Lease) Release() {
	if l == nil || l.released {
		return
	}
	l.released = true
	if l.out != nil {
		*l.out = Set{}
		l.out = nil
	}
	for i := range l.reports {
		l.reports[i] = Report{}
	}
	a := l.arena
	a.active.Add(-1)
	a.pool.Put(l)
}
