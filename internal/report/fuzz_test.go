package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// fuzzSeeds returns a few valid sets whose encodings seed both fuzzers.
func fuzzSeeds() []*Set {
	return []*Set{
		{NumSites: 0, NumPreds: 0},
		{NumSites: 3, NumPreds: 6, Reports: []*Report{
			{Failed: true, ObservedSites: []int32{0, 2}, TruePreds: []int32{1, 4, 5}},
			{Failed: false},
		}},
		{NumSites: 1000, NumPreds: 4000, Reports: []*Report{
			{Failed: false, ObservedSites: []int32{999}, TruePreds: []int32{0, 3999}},
		}},
	}
}

// FuzzReportRoundTripBinary checks the binary codec: arbitrary input
// never panics, and any input that decodes re-encodes to a set that
// decodes identically (decode∘encode is the identity on valid data).
func FuzzReportRoundTripBinary(f *testing.F) {
	for _, set := range fuzzSeeds() {
		var buf bytes.Buffer
		if err := set.MarshalBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("CBR1"))
	f.Add([]byte("cbi-reports 1 0 0 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := UnmarshalBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := set.MarshalBinary(&buf); err != nil {
			t.Fatalf("re-encode of decoded set failed: %v", err)
		}
		again, err := UnmarshalBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(canonSet(set), canonSet(again)) {
			t.Fatalf("round trip mismatch:\nfirst:  %+v\nsecond: %+v", set, again)
		}
	})
}

// FuzzRunLogRoundTrip checks the per-report record codec the
// collector's run log is built on: arbitrary input never panics and
// never allocates unboundedly, decoded records obey the package
// invariants (strictly ascending, in-range id lists), and any record
// that decodes re-encodes to the identical byte string — so a run log
// replay is bit-for-bit faithful to what was ingested.
func FuzzRunLogRoundTrip(f *testing.F) {
	for _, set := range fuzzSeeds() {
		for _, r := range set.Reports {
			f.Add(uint32(set.NumSites), uint32(set.NumPreds), AppendRecord(nil, r))
		}
	}
	f.Add(uint32(10), uint32(10), []byte{0x01, 0x02, 0x00, 0x03, 0x01, 0x04})
	f.Add(uint32(0), uint32(0), []byte{0x00, 0x00, 0x00})
	f.Add(uint32(1<<30), uint32(1<<30), []byte{0x00, 0xff, 0xff, 0xff, 0xff, 0x03})
	f.Fuzz(func(t *testing.T, numSites, numPreds uint32, data []byte) {
		if numSites > maxDim || numPreds > maxDim {
			t.Skip()
		}
		rec, err := ReadRecord(bytes.NewReader(data), int(numSites), int(numPreds))
		if err != nil {
			return
		}
		checkAscending := func(what string, ids []int32, dim uint32) {
			prev := int32(-1)
			for _, id := range ids {
				if id <= prev || id < 0 || uint32(id) >= dim {
					t.Fatalf("decoded %s list violates invariants: %v (dim %d)", what, ids, dim)
				}
				prev = id
			}
		}
		checkAscending("site", rec.ObservedSites, numSites)
		checkAscending("pred", rec.TruePreds, numPreds)

		enc := AppendRecord(nil, rec)
		again, err := ReadRecord(bytes.NewReader(enc), int(numSites), int(numPreds))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(AppendRecord(nil, again), enc) {
			t.Fatalf("record round trip not stable:\nfirst:  %x\nsecond: %x", enc, AppendRecord(nil, again))
		}
	})
}

// FuzzReportRoundTripText does the same for the line-oriented text
// codec, which enforces the same invariants as the binary one (bounded
// dimensions, ascending in-range ids), so any input that decodes obeys
// the decode∘encode identity.
func FuzzReportRoundTripText(f *testing.F) {
	for _, set := range fuzzSeeds() {
		var buf bytes.Buffer
		if err := set.Marshal(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add("cbi-reports 1 2 2 1\nF | 0 | 1\n")
	f.Add("cbi-reports 9 0 0 0\n")
	f.Fuzz(func(t *testing.T, text string) {
		set, err := Unmarshal(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := set.Marshal(&buf); err != nil {
			t.Fatalf("re-encode of decoded set failed: %v", err)
		}
		again, err := Unmarshal(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(canonSet(set), canonSet(again)) {
			t.Fatalf("round trip mismatch:\nfirst:  %+v\nsecond: %+v", set, again)
		}
	})
}

// FuzzReportRoundTripBinaryArena checks that the pooled arena decoder
// agrees byte-for-byte with the allocating decoder on every input:
// same accept/reject decision, same decoded set on success. Runs each
// input through one shared arena twice so recycled workspaces are
// exercised inside a single fuzz execution.
func FuzzReportRoundTripBinaryArena(f *testing.F) {
	for _, set := range fuzzSeeds() {
		var buf bytes.Buffer
		if err := set.MarshalBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("CBR1"))
	var arena Arena
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := UnmarshalBinary(bytes.NewReader(data))
		for pass := 0; pass < 2; pass++ {
			got, lease, err := arena.Decode(bytes.NewReader(data))
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("pass %d: arena err=%v, plain err=%v", pass, err, wantErr)
			}
			if err != nil {
				continue
			}
			if !reflect.DeepEqual(canonSet(want), canonSet(got)) {
				t.Fatalf("pass %d: arena decode differs:\nplain: %+v\narena: %+v", pass, want, got)
			}
			lease.Release()
			if got.NumSites != 0 || got.NumPreds != 0 || len(got.Reports) != 0 {
				t.Fatalf("pass %d: released set still shows data: %+v", pass, got)
			}
		}
	})
}
