package report

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func encodeSet(t testing.TB, set *Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := set.MarshalBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestArenaDecodeMatchesUnmarshal: the arena decoder and the
// allocating decoder agree on a spread of random sets, including
// repeated decodes through the same recycled workspace.
func TestArenaDecodeMatchesUnmarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var arena Arena
	for trial := 0; trial < 60; trial++ {
		set := randomSet(rng, 1+rng.Intn(200), 1+rng.Intn(600), rng.Intn(30))
		data := encodeSet(t, set)
		want, err := UnmarshalBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		got, lease, err := arena.Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("trial %d: arena decode: %v", trial, err)
		}
		if !setsEqual(canonSet(want), canonSet(got)) {
			t.Fatalf("trial %d: arena decode differs from UnmarshalBinary", trial)
		}
		lease.Release()
		lease.Release() // idempotent
	}
	st := arena.Stats()
	if st.ActiveLeases != 0 {
		t.Fatalf("active leases = %d after releasing everything", st.ActiveLeases)
	}
	if st.Decodes != 60 {
		t.Fatalf("decodes = %d, want 60", st.Decodes)
	}
	if st.PoolMisses < 1 || st.PoolMisses > 60 {
		t.Fatalf("pool misses = %d, want within [1, 60]", st.PoolMisses)
	}
}

func setsEqual(a, b *Set) bool {
	if a.NumSites != b.NumSites || a.NumPreds != b.NumPreds || len(a.Reports) != len(b.Reports) {
		return false
	}
	for i := range a.Reports {
		ra, rb := a.Reports[i], b.Reports[i]
		if ra.Failed != rb.Failed || !int32sEqual(ra.ObservedSites, rb.ObservedSites) || !int32sEqual(ra.TruePreds, rb.TruePreds) {
			return false
		}
	}
	return true
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestArenaDecodeErrorReturnsNoLease: a failed decode must not leak an
// active lease, and the workspace must go straight back to the pool.
func TestArenaDecodeErrorReturnsNoLease(t *testing.T) {
	var arena Arena
	for _, data := range [][]byte{nil, []byte("CBR"), []byte("CBR1"), []byte("garbage")} {
		set, lease, err := arena.Decode(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("decode of %q succeeded", data)
		}
		if set != nil || lease != nil {
			t.Fatalf("decode of %q returned set=%v lease=%v alongside error", data, set, lease)
		}
	}
	if st := arena.Stats(); st.ActiveLeases != 0 {
		t.Fatalf("active leases = %d after failed decodes", st.ActiveLeases)
	}
}

// TestArenaReleasedSetNeverShowsRecycledData pins the lease contract
// under the race detector: once a lease is released, the *Set it
// produced reads as permanently empty — a stale holder can never
// observe the next batch's data through it, even while other
// goroutines churn decodes through the same recycled workspaces.
func TestArenaReleasedSetNeverShowsRecycledData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var arena Arena

	// Decode and release a first batch, keeping its (now severed) Set.
	first := encodeSet(t, randomSet(rng, 100, 150, 20))
	stale, lease, err := arena.Decode(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	if stale.NumSites != 0 || stale.NumPreds != 0 || len(stale.Reports) != 0 {
		t.Fatalf("released set still shows data: %+v", stale)
	}

	// Churn decodes through the arena from several goroutines while
	// concurrently re-reading the stale set. Any aliasing between the
	// severed header and a recycled workspace shows up as a data race
	// or as the stale set going non-empty.
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = encodeSet(t, randomSet(rng, 100, 150, 10+i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				data := payloads[(g*200+i)%len(payloads)]
				set, l, err := arena.Decode(bytes.NewReader(data))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				// Walk the decoded data as a consumer would.
				n := 0
				for _, r := range set.Reports {
					n += len(r.ObservedSites) + len(r.TruePreds)
				}
				if n == 0 {
					t.Errorf("goroutine %d: decoded batch is empty", g)
				}
				l.Release()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			if stale.NumSites != 0 || stale.NumPreds != 0 || len(stale.Reports) != 0 {
				t.Errorf("stale set observed recycled data on read %d", i)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if st := arena.Stats(); st.ActiveLeases != 0 {
		t.Fatalf("active leases = %d after churn", st.ActiveLeases)
	}
}
