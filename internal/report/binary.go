// Binary wire codec for feedback reports — the compact format clients
// use to ship batches to a collector (and a denser at-rest alternative
// to the text codec).
//
// Layout (all integers are unsigned LEB128 varints):
//
//	magic   "CBR1" (4 bytes)
//	header  numSites numPreds numReports
//	record  flags(1 byte: bit0 = failed)
//	        len(sites)  sites delta-encoded (first absolute, then gaps)
//	        len(preds)  preds delta-encoded
//
// Site and predicate lists are strictly ascending, so every gap after
// the first element is at least 1; delta encoding keeps typical entries
// to one or two bytes even in large predicate spaces. The decoder
// validates monotonicity and range, and never panics or over-allocates
// on malformed input (fuzz-verified by FuzzReportRoundTripBinary).
//
// The per-report record encoding is exposed on its own as
// AppendRecord/ReadRecord: the collector's run-level membership log
// stores each retained run as exactly one such record (fuzz-verified by
// FuzzRunLogRoundTrip), so the wire format and the run log cannot
// drift apart.
package report

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// binaryMagic identifies the binary report format, version 1.
const binaryMagic = "CBR1"

// maxDim bounds the site/predicate index spaces so ids fit in int32 and
// a hostile header cannot demand absurd allocations.
const maxDim = 1 << 30

// Preallocation caps for length headers. A hostile header can claim up
// to maxDim entries before a single payload byte arrives, so initial
// make() sizes are clamped well below what the claim alone would
// justify: 4096 report pointers (32 KiB) and 4096 ids (16 KiB).
// Legitimate batches larger than the cap still decode in amortized
// linear time — append grows geometrically, so re-growth past the hint
// costs O(n) total, never quadratic.
const (
	maxReportPrealloc = 1 << 12
	maxListPrealloc   = 1 << 12
)

// MarshalBinary writes the set in the compact binary wire format.
func (s *Set) MarshalBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(binaryMagic)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		bw.Write(tmp[:n])
	}
	putUvarint(uint64(s.NumSites))
	putUvarint(uint64(s.NumPreds))
	putUvarint(uint64(len(s.Reports)))
	var rec []byte
	for _, r := range s.Reports {
		rec = AppendRecord(rec[:0], r)
		bw.Write(rec)
	}
	return bw.Flush()
}

// AppendRecord appends the binary record encoding of one report to dst
// and returns the extended slice: a flags byte (bit0 = failed) followed
// by the delta/varint-encoded ObservedSites and TruePreds lists. This
// is exactly the per-report layout of MarshalBinary.
func AppendRecord(dst []byte, r *Report) []byte {
	var flags byte
	if r.Failed {
		flags |= 1
	}
	// Grow once to the worst case (5 varint bytes per id) and write by
	// index: this encoder is the per-report ingest hot path, and the
	// per-varint append-through-a-scratch-buffer it replaced was the
	// single biggest CPU sink in the fold.
	need := 1 + 2*binary.MaxVarintLen64 +
		binary.MaxVarintLen32*(len(r.ObservedSites)+len(r.TruePreds))
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[:cap(dst)]
	n := len(dst)
	buf[n] = flags
	n++
	for _, list := range [2][]int32{r.ObservedSites, r.TruePreds} {
		n += binary.PutUvarint(buf[n:], uint64(len(list)))
		prev := int32(0)
		for _, v := range list {
			d := uint64(uint32(v - prev))
			prev = v
			// Ascending ids make most deltas tiny; the one-byte case
			// skips PutUvarint's loop entirely.
			if d < 0x80 {
				buf[n] = byte(d)
				n++
			} else {
				n += binary.PutUvarint(buf[n:], d)
			}
		}
	}
	return buf[:n]
}

// ReadRecord decodes one record written by AppendRecord, validating the
// same invariants as UnmarshalBinary: known flags, strictly ascending
// id lists, every id inside [0, numSites) / [0, numPreds). It is safe
// on arbitrary input — it returns an error rather than panicking, and
// allocation is bounded by the input size (fuzz-verified by
// FuzzRunLogRoundTrip).
func ReadRecord(br io.ByteReader, numSites, numPreds int) (*Report, error) {
	flags, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("report: record flags: %v", err)
	}
	if flags > 1 {
		return nil, fmt.Errorf("report: record: unknown flags %#x", flags)
	}
	rep := &Report{Failed: flags&1 != 0}
	if rep.ObservedSites, err = readDeltaList(br, numSites); err != nil {
		return nil, fmt.Errorf("report: record sites: %v", err)
	}
	if rep.TruePreds, err = readDeltaList(br, numPreds); err != nil {
		return nil, fmt.Errorf("report: record preds: %v", err)
	}
	return rep, nil
}

// UnmarshalBinary parses a set written by MarshalBinary. It is safe on
// arbitrary (malformed, truncated, hostile) input: it returns an error
// rather than panicking, and allocation is bounded by the input size.
func UnmarshalBinary(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("report: binary magic: %v", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, fmt.Errorf("report: bad binary magic %q", magic[:])
	}
	numSites, err := readDim(br, "numSites")
	if err != nil {
		return nil, err
	}
	numPreds, err := readDim(br, "numPreds")
	if err != nil {
		return nil, err
	}
	numReports, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("report: binary numReports: %v", err)
	}
	// Each report needs at least 3 bytes on the wire; cap the
	// preallocation so a lying header cannot force OOM or even a
	// noticeable over-allocation before the body disproves the claim.
	capHint := int(numReports)
	if capHint > maxReportPrealloc {
		capHint = maxReportPrealloc
	}
	set := &Set{NumSites: numSites, NumPreds: numPreds,
		Reports: make([]*Report, 0, capHint)}
	for i := uint64(0); i < numReports; i++ {
		rep, err := ReadRecord(br, numSites, numPreds)
		if err != nil {
			return nil, fmt.Errorf("report: binary report %d: %v", i, err)
		}
		set.Reports = append(set.Reports, rep)
	}
	return set, nil
}

func readDim(br *bufio.Reader, what string) (int, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("report: binary %s: %v", what, err)
	}
	if v > maxDim {
		return 0, fmt.Errorf("report: binary %s %d exceeds limit", what, v)
	}
	return int(v), nil
}

// readDeltaList decodes a strictly ascending id list with ids in
// [0, dim). The length is implicitly bounded by dim: an ascending list
// cannot hold more distinct values than the index space.
func readDeltaList(br io.ByteReader, dim int) ([]int32, error) {
	n, err := readListLen(br, dim)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Preallocate conservatively: every entry costs at least one wire
	// byte, so a lying length (up to dim = 2^30) must not be able to
	// force a large allocation before any list bytes are read.
	capHint := n
	if capHint > maxListPrealloc {
		capHint = maxListPrealloc
	}
	return appendDeltaList(br, dim, n, make([]int32, 0, capHint))
}

// readListLen reads a list length header and validates it against dim.
func readListLen(br io.ByteReader, dim int) (int, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if n > uint64(dim) {
		return 0, fmt.Errorf("list length %d exceeds dimension %d", n, dim)
	}
	return int(n), nil
}

// appendDeltaList decodes n delta-encoded entries onto dst, validating
// ascending order and range. Allocation tracks bytes actually read —
// append growth, never the claimed length — so the arena decoder can
// feed it a shared id slab.
func appendDeltaList(br io.ByteReader, dim, n int, dst []int32) ([]int32, error) {
	prev := int64(-1)
	for i := 0; i < n; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return dst, err
		}
		if d > uint64(dim) {
			return dst, fmt.Errorf("id delta %d out of range [0,%d)", d, dim)
		}
		var v int64
		if prev < 0 {
			v = int64(d)
		} else {
			if d == 0 {
				return dst, fmt.Errorf("non-ascending entry at index %d", i)
			}
			v = prev + int64(d)
		}
		if v >= int64(dim) {
			return dst, fmt.Errorf("id %d out of range [0,%d)", v, dim)
		}
		dst = append(dst, int32(v))
		prev = v
	}
	return dst, nil
}

// MarshalRecords writes the binary wire format directly from
// pre-encoded per-report records (canonical AppendRecord encodings,
// e.g. the collector run log's retained bytes). The output is
// byte-identical to MarshalBinary over the decoded reports — pinned by
// TestRecordMatchesSetEncoding — which lets snapshot/export paths skip
// a decode → re-encode round trip.
func MarshalRecords(w io.Writer, numSites, numPreds int, recs [][]byte) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(binaryMagic)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		bw.Write(tmp[:n])
	}
	putUvarint(uint64(numSites))
	putUvarint(uint64(numPreds))
	putUvarint(uint64(len(recs)))
	for _, rec := range recs {
		bw.Write(rec)
	}
	return bw.Flush()
}
