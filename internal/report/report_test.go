package report

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestReportMembership(t *testing.T) {
	r := &Report{
		Failed:        true,
		ObservedSites: []int32{1, 5, 9},
		TruePreds:     []int32{2, 3, 100},
	}
	for _, s := range []int32{1, 5, 9} {
		if !r.ObservedSite(s) {
			t.Errorf("site %d should be observed", s)
		}
	}
	for _, s := range []int32{0, 2, 10} {
		if r.ObservedSite(s) {
			t.Errorf("site %d should not be observed", s)
		}
	}
	if !r.True(100) || r.True(99) || r.True(101) {
		t.Error("True membership wrong")
	}
}

func TestSetCounts(t *testing.T) {
	s := &Set{
		NumSites: 10, NumPreds: 20,
		Reports: []*Report{
			{Failed: true},
			{Failed: false},
			{Failed: true},
		},
	}
	if s.NumFailing() != 2 || s.NumSuccessful() != 1 {
		t.Errorf("failing=%d successful=%d", s.NumFailing(), s.NumSuccessful())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := &Set{
		NumSites: 7, NumPreds: 30,
		Reports: []*Report{
			{Failed: true, ObservedSites: []int32{0, 3}, TruePreds: []int32{5, 6, 29}},
			{Failed: false, ObservedSites: []int32{1}, TruePreds: nil},
			{Failed: false, ObservedSites: nil, TruePreds: nil},
		},
	}
	var buf bytes.Buffer
	if err := s.Marshal(&buf); err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(&buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v\ninput:\n%s", err, buf.String())
	}
	if got.NumSites != 7 || got.NumPreds != 30 || len(got.Reports) != 3 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i, r := range got.Reports {
		w := s.Reports[i]
		if r.Failed != w.Failed {
			t.Errorf("report %d: Failed = %v", i, r.Failed)
		}
		if len(r.ObservedSites) != len(w.ObservedSites) || len(r.TruePreds) != len(w.TruePreds) {
			t.Errorf("report %d: lengths differ: %+v vs %+v", i, r, w)
			continue
		}
		for j := range r.ObservedSites {
			if r.ObservedSites[j] != w.ObservedSites[j] {
				t.Errorf("report %d site %d mismatch", i, j)
			}
		}
		for j := range r.TruePreds {
			if r.TruePreds[j] != w.TruePreds[j] {
				t.Errorf("report %d pred %d mismatch", i, j)
			}
		}
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(failed []bool, sites [][]uint16, preds [][]uint16) bool {
		set := &Set{NumSites: 1 << 16, NumPreds: 1 << 16}
		for i := range failed {
			r := &Report{Failed: failed[i]}
			if i < len(sites) {
				r.ObservedSites = sortedUniq(sites[i])
			}
			if i < len(preds) {
				r.TruePreds = sortedUniq(preds[i])
			}
			set.Reports = append(set.Reports, r)
		}
		var buf bytes.Buffer
		if err := set.Marshal(&buf); err != nil {
			return false
		}
		got, err := Unmarshal(&buf)
		if err != nil {
			return false
		}
		if len(got.Reports) != len(set.Reports) {
			return false
		}
		for i := range got.Reports {
			a, b := got.Reports[i], set.Reports[i]
			if a.Failed != b.Failed || len(a.ObservedSites) != len(b.ObservedSites) || len(a.TruePreds) != len(b.TruePreds) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func sortedUniq(xs []uint16) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, x := range xs {
		seen[int32(x)] = true
	}
	for i := int32(0); i < 1<<16; i++ {
		if seen[i] {
			out = append(out, i)
		}
	}
	return out
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad header", "nonsense\n"},
		{"bad version", "cbi-reports 2 1 1 0\n"},
		{"bad line", "cbi-reports 1 1 1 1\nF | 1\n"},
		{"bad int", "cbi-reports 1 1 1 1\nF | x | \n"},
		{"count mismatch", "cbi-reports 1 1 1 5\nF |  | \n"},
		{"negative sites", "cbi-reports 1 -1 1 0\n"},
		{"negative preds", "cbi-reports 1 1 -1 0\n"},
		{"negative count", "cbi-reports 1 1 1 -1\n"},
		{"huge sites", "cbi-reports 1 1073741825 1 0\n"},
		{"bad label", "cbi-reports 1 1 1 1\nX |  | \n"},
		{"site out of range", "cbi-reports 1 4 8 1\nF | 4 | \n"},
		{"pred out of range", "cbi-reports 1 4 8 1\nF | 2 | 999\n"},
		{"negative id", "cbi-reports 1 4 8 1\nF | -1 | \n"},
		{"non-ascending", "cbi-reports 1 8 8 1\nF | 3,2 | \n"},
		{"duplicate id", "cbi-reports 1 8 8 1\nF |  | 5,5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Unmarshal(strings.NewReader(tc.in)); err == nil {
				t.Errorf("no error for %q", tc.in)
			}
		})
	}
}
