// Package report defines feedback reports — the data a deployed,
// instrumented program ships home after each run (paper §1).
//
// A feedback report R consists of one bit indicating whether the run
// succeeded or failed, plus, for each predicate P, whether P's site was
// observed (reached and sampled) and whether P was observed to be true
// at least once. Reports are stored sparsely: a run touches a tiny
// fraction of all predicates, especially under 1/100 sampling.
package report

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Report is the feedback report for one run.
type Report struct {
	// Failed is the run label: true for failing runs (crashes, oracle
	// mismatches, or whatever labeling the deployment uses).
	Failed bool
	// ObservedSites lists the sites observed at least once, ascending.
	ObservedSites []int32
	// TruePreds lists the predicates observed to be true at least once,
	// ascending.
	TruePreds []int32
}

// ObservedSite reports whether site s was observed in this run.
func (r *Report) ObservedSite(s int32) bool {
	i := sort.Search(len(r.ObservedSites), func(i int) bool { return r.ObservedSites[i] >= s })
	return i < len(r.ObservedSites) && r.ObservedSites[i] == s
}

// True reports whether predicate p was observed to be true (R(P) = 1).
func (r *Report) True(p int32) bool {
	i := sort.Search(len(r.TruePreds), func(i int) bool { return r.TruePreds[i] >= p })
	return i < len(r.TruePreds) && r.TruePreds[i] == p
}

// Set is a collection of feedback reports for one experiment.
type Set struct {
	// NumSites and NumPreds fix the dense index spaces.
	NumSites int
	NumPreds int
	Reports  []*Report
}

// NumFailing returns the number of failing runs in the set.
func (s *Set) NumFailing() int {
	n := 0
	for _, r := range s.Reports {
		if r.Failed {
			n++
		}
	}
	return n
}

// NumSuccessful returns the number of successful runs in the set.
func (s *Set) NumSuccessful() int { return len(s.Reports) - s.NumFailing() }

// Marshal serializes the set to a simple line-oriented text format:
//
//	cbi-reports 1 <numSites> <numPreds> <numReports>
//	<label> | <site,site,...> | <pred,pred,...>
//
// The format is diffable and stable, suitable for storing corpora.
func (s *Set) Marshal(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cbi-reports 1 %d %d %d\n", s.NumSites, s.NumPreds, len(s.Reports))
	for _, r := range s.Reports {
		label := "S"
		if r.Failed {
			label = "F"
		}
		bw.WriteString(label)
		bw.WriteString(" | ")
		writeInts(bw, r.ObservedSites)
		bw.WriteString(" | ")
		writeInts(bw, r.TruePreds)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func writeInts(bw *bufio.Writer, xs []int32) {
	for i, x := range xs {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(strconv.Itoa(int(x)))
	}
}

// Unmarshal parses a set previously written by Marshal. It enforces the
// same structural invariants as the binary decoder: dimensions are
// bounded, labels are "S" or "F", and id lists are strictly ascending
// with every id inside [0, NumSites) / [0, NumPreds). Hostile or
// corrupt input is rejected here rather than handed to downstream
// consumers that index dense counter arrays by id.
func Unmarshal(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("report: empty input")
	}
	var version, numSites, numPreds, numReports int
	if _, err := fmt.Sscanf(sc.Text(), "cbi-reports %d %d %d %d", &version, &numSites, &numPreds, &numReports); err != nil {
		return nil, fmt.Errorf("report: bad header %q: %v", sc.Text(), err)
	}
	if version != 1 {
		return nil, fmt.Errorf("report: unsupported version %d", version)
	}
	if numSites < 0 || numSites > maxDim {
		return nil, fmt.Errorf("report: numSites %d out of range", numSites)
	}
	if numPreds < 0 || numPreds > maxDim {
		return nil, fmt.Errorf("report: numPreds %d out of range", numPreds)
	}
	if numReports < 0 {
		return nil, fmt.Errorf("report: negative report count %d", numReports)
	}
	// Preallocate conservatively: the count is validated against the
	// actual line count only after the scan, so a lying header must not
	// be able to force a huge allocation up front.
	capHint := numReports
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	set := &Set{NumSites: numSites, NumPreds: numPreds, Reports: make([]*Report, 0, capHint)}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.Split(line, " | ")
		if len(parts) != 3 {
			return nil, fmt.Errorf("report: bad line %q", line)
		}
		label := strings.TrimSpace(parts[0])
		if label != "S" && label != "F" {
			return nil, fmt.Errorf("report: bad label %q in %q", label, line)
		}
		rep := &Report{Failed: label == "F"}
		var err error
		if rep.ObservedSites, err = parseIDList(parts[1], numSites); err != nil {
			return nil, fmt.Errorf("report: bad sites in %q: %v", line, err)
		}
		if rep.TruePreds, err = parseIDList(parts[2], numPreds); err != nil {
			return nil, fmt.Errorf("report: bad preds in %q: %v", line, err)
		}
		set.Reports = append(set.Reports, rep)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(set.Reports) != numReports {
		return nil, fmt.Errorf("report: header promised %d reports, found %d", numReports, len(set.Reports))
	}
	return set, nil
}

// parseIDList parses a comma-separated id list, requiring strictly
// ascending ids in [0, dim) — the invariant every Report consumer
// (binary search membership, dense counter bumps) relies on.
func parseIDList(s string, dim int) ([]int32, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int32, 0, len(parts))
	prev := -1
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		if v < 0 || v >= dim {
			return nil, fmt.Errorf("id %d out of range [0,%d)", v, dim)
		}
		if v <= prev {
			return nil, fmt.Errorf("non-ascending id %d after %d", v, prev)
		}
		out = append(out, int32(v))
		prev = v
	}
	return out, nil
}
