package corpus

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cbi/internal/report"
)

func walSampleReports() []*report.Report {
	return []*report.Report{
		{Failed: true, ObservedSites: []int32{0, 2}, TruePreds: []int32{1, 4}},
		{Failed: false, ObservedSites: []int32{1}, TruePreds: []int32{3}},
		{Failed: false, ObservedSites: []int32{0, 1, 2}, TruePreds: nil},
	}
}

func walSampleRecords() []*WALRecord {
	snap := sampleSnap()
	snap.Logged = 1
	return []*WALRecord{
		{Kind: WALBatch, Seq: 1, BatchID: "batch-a", Reports: walSampleReports()},
		{Kind: WALBatch, Seq: 2, Reports: nil}, // empty batch, empty id
		{Kind: WALMerge, Seq: 3, BatchID: "merge-7", Snap: snap,
			Reports: walSampleReports()[:1]},
		{Kind: WALRevoke, Seq: 4, IDs: []string{"batch-a", "batch-zz"}},
		{Kind: WALRevoke, Seq: 5, IDs: nil},
	}
}

// sameWALRecord compares semantically: the merge snapshot is compared
// through its counters (the codec may normalize Logged).
func sameWALRecord(t *testing.T, want, got *WALRecord) {
	t.Helper()
	if got.Kind != want.Kind || got.Seq != want.Seq || got.BatchID != want.BatchID {
		t.Fatalf("record envelope mismatch: want %c/%d/%q, got %c/%d/%q",
			want.Kind, want.Seq, want.BatchID, got.Kind, got.Seq, got.BatchID)
	}
	if len(got.Reports) != len(want.Reports) {
		t.Fatalf("record %d: %d reports, want %d", want.Seq, len(got.Reports), len(want.Reports))
	}
	for i := range want.Reports {
		if !reflect.DeepEqual(normReport(want.Reports[i]), normReport(got.Reports[i])) {
			t.Fatalf("record %d report %d mismatch:\nwant %+v\ngot  %+v",
				want.Seq, i, want.Reports[i], got.Reports[i])
		}
	}
	if !reflect.DeepEqual(want.IDs, got.IDs) && !(len(want.IDs) == 0 && len(got.IDs) == 0) {
		t.Fatalf("record %d ids: want %v, got %v", want.Seq, want.IDs, got.IDs)
	}
	if (want.Snap == nil) != (got.Snap == nil) {
		t.Fatalf("record %d snap presence: want %v, got %v", want.Seq, want.Snap != nil, got.Snap != nil)
	}
	if want.Snap != nil {
		w, g := *want.Snap, *got.Snap
		w.Logged, g.Logged = 0, 0
		w.WALSeq, g.WALSeq = 0, 0
		w.WALIslands, g.WALIslands = nil, nil
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("record %d snapshot mismatch:\nwant %+v\ngot  %+v", want.Seq, w, g)
		}
	}
}

// normReport maps nil and empty slices together for comparison.
func normReport(r *report.Report) *report.Report {
	out := &report.Report{Failed: r.Failed,
		ObservedSites: append([]int32{}, r.ObservedSites...),
		TruePreds:     append([]int32{}, r.TruePreds...)}
	return out
}

func TestWALRecordRoundTrip(t *testing.T) {
	var buf []byte
	recs := walSampleRecords()
	for _, rec := range recs {
		var err error
		buf, err = AppendWALRecord(buf, rec, 3, 5)
		if err != nil {
			t.Fatalf("append seq %d: %v", rec.Seq, err)
		}
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	for _, want := range recs {
		got, err := ReadWALRecord(br, 3, 5)
		if err != nil {
			t.Fatalf("read seq %d: %v", want.Seq, err)
		}
		sameWALRecord(t, want, got)
	}
	if _, err := ReadWALRecord(br, 3, 5); err != io.EOF {
		t.Fatalf("after last record: got %v, want io.EOF", err)
	}
}

// TestWALRecordPreEncoded pins the fast path the collector's ingest
// uses: a batch record built from pre-encoded Recs must be
// byte-identical to one built from the Reports themselves.
func TestWALRecordPreEncoded(t *testing.T) {
	reports := walSampleReports()
	slow, err := AppendWALRecord(nil, &WALRecord{
		Kind: WALBatch, Seq: 7, BatchID: "batch-7", Reports: reports,
	}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([][]byte, len(reports))
	for i, r := range reports {
		recs[i] = report.AppendRecord(nil, r)
	}
	fast, err := AppendWALRecord(nil, &WALRecord{
		Kind: WALBatch, Seq: 7, BatchID: "batch-7", Recs: recs,
	}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(slow, fast) {
		t.Fatalf("pre-encoded batch record diverges:\nreports %x\nrecs    %x", slow, fast)
	}
}

func TestWALSegmentReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "collector.wal.00000001")
	w, err := CreateWALSegment(path, 3, 5, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	recs := walSampleRecords()
	for _, rec := range recs {
		if err := w.Append(rec, 3, 5); err != nil {
			t.Fatalf("append seq %d: %v", rec.Seq, err)
		}
	}
	if w.Empty() {
		t.Fatal("segment with records reports Empty")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := ReplayWALFile(path, 3, 5, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn {
		t.Fatal("clean segment reported torn")
	}
	if rep.MaxSeq != recs[len(recs)-1].Seq {
		t.Fatalf("MaxSeq = %d, want %d", rep.MaxSeq, recs[len(recs)-1].Seq)
	}
	if len(rep.Records) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), len(recs))
	}
	for i, want := range recs {
		sameWALRecord(t, want, rep.Records[i])
	}
	fi, _ := os.Stat(path)
	if rep.ValidBytes != fi.Size() {
		t.Fatalf("ValidBytes = %d, file is %d", rep.ValidBytes, fi.Size())
	}
}

// TestWALTornTails truncates a clean segment at every byte offset and
// replays each prefix: the result must be some intact record prefix,
// flagged torn whenever bytes were cut mid-record, and never an error
// or a panic. This is the crash-mid-write model: a torn tail is data
// the collector never acked, so dropping it is correct.
func TestWALTornTails(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal.00000001")
	w, err := CreateWALSegment(full, 3, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	recs := walSampleRecords()
	// Record the valid prefix length after the header and after each append.
	offsets := []int64{w.Size()}
	for _, rec := range recs {
		if err := w.Append(rec, 3, 5); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, w.Size())
	}
	w.Close()
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "cut.wal.00000001")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := ReplayWALFile(path, 3, 5, 77)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		// The intact prefix is the records wholly inside the cut.
		whole := 0
		for whole < len(recs) && offsets[whole+1] <= int64(cut) {
			whole++
		}
		if len(rep.Records) != whole {
			t.Fatalf("cut at %d: %d records survived, want %d", cut, len(rep.Records), whole)
		}
		for i := 0; i < whole; i++ {
			sameWALRecord(t, recs[i], rep.Records[i])
		}
		atBoundary := int64(cut) == offsets[whole]
		if rep.Torn == atBoundary && cut > 0 {
			// cut==0 (empty file) parses as an un-torn empty segment.
			t.Fatalf("cut at %d: Torn=%v, boundary=%v", cut, rep.Torn, atBoundary)
		}
		// A cut inside the header leaves ValidBytes at zero; past it,
		// the valid prefix is exactly the intact records.
		if rep.Torn && int64(cut) >= offsets[0] && rep.ValidBytes != offsets[whole] {
			t.Fatalf("cut at %d: ValidBytes=%d, want %d", cut, rep.ValidBytes, offsets[whole])
		}
	}
}

// TestWALCorruptMiddle flips one byte inside the first record: replay
// must stop before it — corruption is indistinguishable from a torn
// tail at that point — and surface only the empty prefix.
func TestWALCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal.00000001")
	w, err := CreateWALSegment(path, 3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := w.Size()
	recs := walSampleRecords()
	for _, rec := range recs {
		w.Append(rec, 3, 5)
	}
	w.Close()
	data, _ := os.ReadFile(path)
	data[hdr+5] ^= 0x40
	os.WriteFile(path, data, 0o644)

	rep, err := ReplayWALFile(path, 3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn || len(rep.Records) != 0 || rep.ValidBytes != hdr {
		t.Fatalf("corrupt first record: torn=%v records=%d valid=%d, want true/0/%d",
			rep.Torn, len(rep.Records), rep.ValidBytes, hdr)
	}
}

func TestWALHeaderMismatch(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.wal.00000001")
	w, _ := CreateWALSegment(good, 3, 5, 42)
	w.Append(&WALRecord{Kind: WALBatch, Seq: 1}, 3, 5)
	w.Close()

	if _, err := ReplayWALFile(good, 4, 5, 42); err == nil {
		t.Fatal("dimension mismatch replayed without error")
	}
	if _, err := ReplayWALFile(good, 3, 5, 43); err == nil {
		t.Fatal("fingerprint mismatch replayed without error")
	}
	// Fingerprint 0 on either side means "unknown" and is accepted.
	if _, err := ReplayWALFile(good, 3, 5, 0); err != nil {
		t.Fatalf("zero fingerprint rejected: %v", err)
	}

	junk := filepath.Join(dir, "junk.wal.00000001")
	os.WriteFile(junk, []byte("not a wal segment\nmore\n"), 0o644)
	if _, err := ReplayWALFile(junk, 3, 5, 0); err == nil {
		t.Fatal("non-WAL file replayed without error")
	}

	if rep, err := ReplayWALFile(filepath.Join(dir, "missing"), 3, 5, 0); rep != nil || err != nil {
		t.Fatalf("missing file: got %v, %v; want nil, nil", rep, err)
	}
}

// TestWALSeqRegression doctors a second record with a non-increasing
// sequence; replay must treat the log as torn there rather than apply
// a record out of order.
func TestWALSeqRegression(t *testing.T) {
	var buf []byte
	buf, _ = AppendWALRecord(buf, &WALRecord{Kind: WALBatch, Seq: 5}, 3, 5)
	buf, _ = AppendWALRecord(buf, &WALRecord{Kind: WALBatch, Seq: 5}, 3, 5)
	path := filepath.Join(t.TempDir(), "seq.wal.00000001")
	hdr := walHeader(3, 5, 0)
	os.WriteFile(path, append([]byte(hdr), buf...), 0o644)
	rep, err := ReplayWALFile(path, 3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn || len(rep.Records) != 1 {
		t.Fatalf("seq regression: torn=%v records=%d, want true/1", rep.Torn, len(rep.Records))
	}
}

func TestWALOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal.00000001")
	w, err := CreateWALSegment(path, 3, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(&WALRecord{Kind: WALBatch, Seq: 1, Reports: walSampleReports()}, 3, 5)
	valid := w.Size()
	w.Append(&WALRecord{Kind: WALBatch, Seq: 2, Reports: walSampleReports()}, 3, 5)
	w.Close()
	// Tear the second record.
	os.Truncate(path, valid+3)

	rep, err := ReplayWALFile(path, 3, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn || rep.ValidBytes != valid {
		t.Fatalf("torn=%v valid=%d, want true/%d", rep.Torn, rep.ValidBytes, valid)
	}
	w2, err := OpenWALSegment(path, 3, 5, 9, rep.ValidBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(&WALRecord{Kind: WALBatch, Seq: 2, Reports: walSampleReports()[:1]}, 3, 5); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	rep2, err := ReplayWALFile(path, 3, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Torn || len(rep2.Records) != 2 || rep2.MaxSeq != 2 {
		t.Fatalf("after reopen+append: torn=%v records=%d max=%d", rep2.Torn, len(rep2.Records), rep2.MaxSeq)
	}

	// validBytes below the header length rewrites the segment fresh.
	w3, err := OpenWALSegment(path, 3, 5, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !w3.Empty() {
		t.Fatal("reopen with tiny validBytes kept records")
	}
	w3.Close()
}

func TestWALTruncateTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tr.wal.00000001")
	w, err := CreateWALSegment(path, 3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := w.Size()
	w.Append(&WALRecord{Kind: WALBatch, Seq: 1}, 3, 5)
	mid := w.Size()
	w.Append(&WALRecord{Kind: WALBatch, Seq: 2}, 3, 5)
	if err := w.TruncateTo(mid); err != nil {
		t.Fatal(err)
	}
	if w.Size() != mid {
		t.Fatalf("size after TruncateTo = %d, want %d", w.Size(), mid)
	}
	// Appends continue cleanly at the truncation point.
	w.Append(&WALRecord{Kind: WALBatch, Seq: 2}, 3, 5)
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != hdr || !w.Empty() {
		t.Fatalf("size after Truncate = %d, want header %d", w.Size(), hdr)
	}
	// TruncateTo floors at the header.
	w.Append(&WALRecord{Kind: WALBatch, Seq: 3}, 3, 5)
	if err := w.TruncateTo(0); err != nil {
		t.Fatal(err)
	}
	if w.Size() != hdr {
		t.Fatalf("TruncateTo(0) size = %d, want %d", w.Size(), hdr)
	}
	w.Close()
	rep, err := ReplayWALFile(path, 3, 5, 0)
	if err != nil || rep.Torn || len(rep.Records) != 0 {
		t.Fatalf("truncated segment: %v torn=%v records=%d", err, rep.Torn, len(rep.Records))
	}
}

func TestListWALSegments(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "collector.wal")
	for _, idx := range []uint64{3, 1, 12} {
		os.WriteFile(WALSegmentName(base, idx), []byte("x"), 0o644)
	}
	// Distractors that must not match.
	os.WriteFile(base+".tmp", nil, 0o644)
	os.WriteFile(base+".0000000x", nil, 0o644)
	segs, err := ListWALSegments(base)
	if err != nil {
		t.Fatal(err)
	}
	var idxs []uint64
	for _, s := range segs {
		idxs = append(idxs, s.Index)
	}
	if !reflect.DeepEqual(idxs, []uint64{1, 3, 12}) {
		t.Fatalf("segment indexes %v, want [1 3 12]", idxs)
	}
}

func TestWALRecordEncodeErrors(t *testing.T) {
	long := string(make([]byte, maxWALBatchID+1))
	cases := []*WALRecord{
		{Kind: WALBatch, Seq: 1, BatchID: long},
		{Kind: WALMerge, Seq: 1}, // merge without snapshot
		{Kind: WALRevoke, Seq: 1, IDs: []string{long}},
		{Kind: 'Z', Seq: 1},
	}
	for i, rec := range cases {
		if _, err := AppendWALRecord(nil, rec, 3, 5); err == nil {
			t.Errorf("case %d: encode accepted invalid record", i)
		}
	}
}

// FuzzWALRoundTrip feeds arbitrary bytes to the record reader. The
// invariants: never panic, only clean EOF at a boundary, and any
// record that decodes must survive encode∘decode with the same
// semantic content (byte identity is not required — the reader accepts
// whitespace variants a canonical writer would not emit).
func FuzzWALRoundTrip(f *testing.F) {
	var seed []byte
	for _, rec := range walSampleRecords() {
		seed, _ = AppendWALRecord(seed, rec, 3, 5)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{WALBatch, 0x01, 0x00, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			rec, err := ReadWALRecord(br, 3, 5)
			if err != nil {
				return // torn, corrupt, or clean EOF — all fine, no panic
			}
			reenc, err := AppendWALRecord(nil, rec, 3, 5)
			if err != nil {
				t.Fatalf("decoded record failed to re-encode: %v", err)
			}
			rec2, err := ReadWALRecord(bufio.NewReader(bytes.NewReader(reenc)), 3, 5)
			if err != nil {
				t.Fatalf("re-encoded record failed to decode: %v", err)
			}
			if rec.Kind != rec2.Kind || rec.Seq != rec2.Seq || rec.BatchID != rec2.BatchID ||
				len(rec.Reports) != len(rec2.Reports) || len(rec.IDs) != len(rec2.IDs) {
				t.Fatalf("round trip drift: %+v vs %+v", rec, rec2)
			}
		}
	})
}
