package corpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"cbi/internal/report"
)

func deltaReport(failed bool, sites, preds []int32) (*report.Report, []byte) {
	r := &report.Report{Failed: failed, ObservedSites: sites, TruePreds: preds}
	return r, report.AppendRecord(nil, r)
}

func TestDeltaSegmentRoundTrip(t *testing.T) {
	r1, d1 := deltaReport(true, []int32{0, 2}, []int32{1, 4})
	r2, d2 := deltaReport(false, []int32{1}, []int32{3})
	snap := sampleSnap()
	var snapText bytes.Buffer
	if err := SaveAggSnapshot(&snapText, snap); err != nil {
		t.Fatal(err)
	}
	seg := &DeltaSegment{
		NumSites: 3, NumPreds: 5, Fingerprint: 0xdeadbeef,
		Epoch: 99, From: 10, To: 15,
		Events: []DeltaEvent{
			{Kind: DeltaAppend, Data: d1},
			{Kind: DeltaJoin, Data: d2},
			{Kind: DeltaEvict},
			{Kind: DeltaMerge, Data: snapText.Bytes()},
			{Kind: DeltaAppend, Data: d2},
		},
	}
	var buf bytes.Buffer
	if err := WriteDeltaSegment(&buf, seg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeltaSegment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSites != 3 || got.NumPreds != 5 || got.Fingerprint != 0xdeadbeef ||
		got.Epoch != 99 || got.From != 10 || got.To != 15 || len(got.Events) != 5 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Events[0].Report, r1) || !reflect.DeepEqual(got.Events[1].Report, r2) {
		t.Fatalf("decoded reports mismatch")
	}
	if got.Events[2].Kind != DeltaEvict || got.Events[2].Report != nil {
		t.Fatalf("evict event decoded wrong: %+v", got.Events[2])
	}
	if got.Events[3].Snap == nil || got.Events[3].Snap.NumF != snap.NumF {
		t.Fatalf("merge event snapshot mismatch: %+v", got.Events[3].Snap)
	}
}

func TestWriteDeltaSegmentCountMismatch(t *testing.T) {
	seg := &DeltaSegment{NumSites: 1, NumPreds: 1, From: 0, To: 3,
		Events: []DeltaEvent{{Kind: DeltaEvict}}}
	if err := WriteDeltaSegment(&bytes.Buffer{}, seg); err == nil {
		t.Fatal("event-count mismatch written without error")
	}
}

// TestApplyDeltaEquivalence replays a mixed event stream onto a warm
// state copy and compares it with the state built directly — the core
// invariant warm gateway views depend on.
func TestApplyDeltaEquivalence(t *testing.T) {
	r1, d1 := deltaReport(true, []int32{0, 2}, []int32{1, 4})
	r2, d2 := deltaReport(false, []int32{1}, []int32{3})
	r3, d3 := deltaReport(true, []int32{0}, []int32{0})
	peer := sampleSnap()
	var peerText bytes.Buffer
	if err := SaveAggSnapshot(&peerText, peer); err != nil {
		t.Fatal(err)
	}

	// Warm copy: starts with r1 counted and windowed.
	warm := NewAggSnapshot(3, 5)
	warm.ApplyReport(r1, +1)
	window := []*report.Report{r1}

	seg := &DeltaSegment{NumSites: 3, NumPreds: 5, From: 1, To: 6,
		Events: []DeltaEvent{
			{Kind: DeltaAppend, Data: d2},
			{Kind: DeltaAppend, Data: d3},
			{Kind: DeltaEvict}, // drops r1
			{Kind: DeltaMerge, Data: peerText.Bytes()},
			{Kind: DeltaJoin, Data: d1}, // merge-joined run, counters already folded
		}}
	var buf bytes.Buffer
	if err := WriteDeltaSegment(&buf, seg); err != nil {
		t.Fatal(err)
	}
	dec, err := ReadDeltaSegment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	window, err = ApplyDelta(warm, window, dec)
	if err != nil {
		t.Fatal(err)
	}

	// Cold reference: the same history applied directly.
	cold := NewAggSnapshot(3, 5)
	for _, r := range []*report.Report{r2, r3} {
		cold.ApplyReport(r, +1)
	}
	if err := MergeAggSnapshot(cold, peer); err != nil {
		t.Fatal(err)
	}
	cold.Logged = 3

	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm state diverged:\nwarm %+v\ncold %+v", warm, cold)
	}
	wantWindow := []*report.Report{r2, r3, r1}
	if !reflect.DeepEqual(window, wantWindow) {
		t.Fatalf("window mismatch: %+v, want %+v", window, wantWindow)
	}
}

func TestApplyDeltaEvictEmptyWindow(t *testing.T) {
	seg := &DeltaSegment{NumSites: 3, NumPreds: 5, From: 0, To: 1,
		Events: []DeltaEvent{{Kind: DeltaEvict}}}
	if _, err := ApplyDelta(NewAggSnapshot(3, 5), nil, seg); err == nil {
		t.Fatal("evict from empty window applied without error")
	}
}

func TestReadDeltaSegmentHostile(t *testing.T) {
	_, d1 := deltaReport(true, []int32{0}, []int32{1})
	good := func() *bytes.Buffer {
		var buf bytes.Buffer
		WriteDeltaSegment(&buf, &DeltaSegment{NumSites: 3, NumPreds: 5, From: 0, To: 1,
			Events: []DeltaEvent{{Kind: DeltaAppend, Data: d1}}})
		return &buf
	}
	cases := map[string]string{
		"not a delta":      "cbi-wal 1 3 5 0\n",
		"bad version":      "cbi-delta 9 3 5 0 1 0 0 0\n",
		"negative dims":    "cbi-delta 1 -3 5 0 1 0 0 0\n",
		"count mismatch":   "cbi-delta 1 3 5 0 1 0 5 2\n",
		"to before from":   "cbi-delta 1 3 5 0 1 9 5 0\n",
		"huge count":       "cbi-delta 1 3 5 0 1 0 9999999999 9999999999\n",
		"truncated events": "cbi-delta 1 3 5 0 1 0 2 2\nA",
		"unknown kind":     "cbi-delta 1 3 5 0 1 0 1 1\nZ",
	}
	for name, in := range cases {
		if _, err := ReadDeltaSegment(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
	// A valid segment still parses after all that.
	if _, err := ReadDeltaSegment(good()); err != nil {
		t.Errorf("good segment rejected: %v", err)
	}
	// Body shorter than its length prefix.
	buf := good().Bytes()
	if _, err := ReadDeltaSegment(bytes.NewReader(buf[:len(buf)-2])); err == nil {
		t.Error("truncated body parsed without error")
	}
	// Merge event whose snapshot dimensions disagree with the header.
	other := sampleSnap()
	other.NumSites, other.FobsSite, other.SobsSite = 2, []int64{1, 0}, []int64{1, 0}
	var snapText bytes.Buffer
	SaveAggSnapshot(&snapText, other)
	var seg bytes.Buffer
	WriteDeltaSegment(&seg, &DeltaSegment{NumSites: 3, NumPreds: 5, From: 0, To: 1,
		Events: []DeltaEvent{{Kind: DeltaMerge, Data: snapText.Bytes()}}})
	if _, err := ReadDeltaSegment(&seg); err == nil {
		t.Error("dimension-mismatched merge event parsed without error")
	}
}
