package corpus

import (
	"bytes"
	"strings"
	"testing"

	"cbi/internal/core"
	"cbi/internal/harness"
	"cbi/internal/subjects"
)

func runSmall(t *testing.T, mode harness.Mode) *harness.Result {
	t.Helper()
	return harness.Run(harness.Config{
		Subject:      subjects.Ccrypt(),
		Runs:         400,
		Mode:         mode,
		TrainingRuns: 100,
		Workers:      4,
	})
}

func TestSaveLoadRoundTrip(t *testing.T) {
	res := runSmall(t, harness.SampleAlways)
	var buf bytes.Buffer
	if err := Save(&buf, res); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Config.Subject.Name != "ccrypt" || loaded.Config.Mode != harness.SampleAlways {
		t.Errorf("config: %+v", loaded.Config)
	}
	if len(loaded.Set.Reports) != len(res.Set.Reports) {
		t.Fatalf("reports: %d vs %d", len(loaded.Set.Reports), len(res.Set.Reports))
	}
	for i := range res.Metas {
		a, b := &res.Metas[i], &loaded.Metas[i]
		if a.Crashed != b.Crashed || a.OracleMismatch != b.OracleMismatch ||
			a.Trap != b.Trap || a.StackSig != b.StackSig || len(a.Bugs) != len(b.Bugs) {
			t.Fatalf("meta %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Bugs {
			if a.Bugs[j] != b.Bugs[j] {
				t.Fatalf("meta %d bug list differs", i)
			}
		}
		if res.Set.Reports[i].Failed != loaded.Set.Reports[i].Failed {
			t.Fatalf("report %d label differs", i)
		}
	}
}

// TestLoadedCorpusAnalyzesIdentically is the property that matters: the
// analysis of a loaded corpus matches the analysis of the original.
func TestLoadedCorpusAnalyzesIdentically(t *testing.T) {
	res := runSmall(t, harness.SampleAlways)
	var buf bytes.Buffer
	if err := Save(&buf, res); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a := core.Eliminate(res.CoreInput(), core.ElimOptions{})
	b := core.Eliminate(loaded.CoreInput(), core.ElimOptions{})
	if len(a) != len(b) {
		t.Fatalf("selected %d vs %d predictors", len(a), len(b))
	}
	for i := range a {
		if a[i].Pred != b[i].Pred {
			t.Fatalf("selection %d differs: %d vs %d", i, a[i].Pred, b[i].Pred)
		}
	}
}

func TestSaveLoadRates(t *testing.T) {
	res := runSmall(t, harness.SampleNonuniform)
	if len(res.Rates) == 0 {
		t.Fatal("nonuniform run has no rates")
	}
	var buf bytes.Buffer
	if err := Save(&buf, res); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Rates) != len(res.Rates) {
		t.Fatalf("rates: %d vs %d", len(loaded.Rates), len(res.Rates))
	}
	for i := range res.Rates {
		if loaded.Rates[i] != res.Rates[i] {
			t.Fatalf("rate %d differs: %v vs %v", i, loaded.Rates[i], res.Rates[i])
		}
	}
}

func TestLoadErrors(t *testing.T) {
	res := runSmall(t, harness.SampleAlways)
	var buf bytes.Buffer
	if err := Save(&buf, res); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := []struct{ name, input, wantSub string }{
		{"empty", "", "header"},
		{"garbage", "not a corpus\n", "bad header"},
		{"bad version", strings.Replace(good, "cbi-corpus 1", "cbi-corpus 9", 1), "unsupported version"},
		{"unknown subject", strings.Replace(good, "ccrypt", "nosuch", 1), "unknown subject"},
		{"fingerprint", replaceFingerprint(good), "fingerprint mismatch"},
		{"truncated metas", good[:strings.Index(good, "METAS")+6], "metas truncated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// replaceFingerprint corrupts the header's fingerprint field.
func replaceFingerprint(s string) string {
	nl := strings.IndexByte(s, '\n')
	header := s[:nl]
	fields := strings.Fields(header)
	fields[len(fields)-1] = "12345"
	return strings.Join(fields, " ") + s[nl:]
}
