package corpus

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cbi/internal/report"
)

func sampleSnap() *AggSnapshot {
	return &AggSnapshot{
		NumSites:    3,
		NumPreds:    5,
		Fingerprint: 0xdeadbeef,
		NumF:        7,
		NumS:        13,
		FobsSite:    []int64{1, 0, 7},
		SobsSite:    []int64{13, 2, 0},
		FPred:       []int64{0, 1, 2, 3, 4},
		SPred:       []int64{5, 0, 0, 9, 13},
	}
}

func TestAggSnapshotRoundTrip(t *testing.T) {
	snap := sampleSnap()
	var buf bytes.Buffer
	if err := SaveAggSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAggSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", snap, got)
	}
}

func TestAggSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "collector.snap")

	// Missing file is a cold start, not an error.
	got, err := ReadAggSnapshotFile(path)
	if err != nil || got != nil {
		t.Fatalf("missing file: got %+v, %v; want nil, nil", got, err)
	}

	snap := sampleSnap()
	if err := WriteAggSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAggSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("file round trip mismatch: %+v vs %+v", snap, got)
	}

	// Overwrite with new counts; rename must replace atomically.
	snap.NumF = 100
	snap.FobsSite[0] = 42
	if err := WriteAggSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAggSnapshotFile(path)
	if err != nil || got.NumF != 100 || got.FobsSite[0] != 42 {
		t.Fatalf("overwrite: got %+v, %v", got, err)
	}
}

func TestRunLogFileRoundTrip(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "collector.snap")
	path := RunLogPath(snapPath)
	if path != snapPath+".runs" {
		t.Fatalf("RunLogPath = %q", path)
	}

	// Missing file is a cold start (or a pre-run-log snapshot), not an
	// error.
	got, err := ReadRunLogFile(path)
	if err != nil || got != nil {
		t.Fatalf("missing file: got %+v, %v; want nil, nil", got, err)
	}

	set := &report.Set{
		NumSites: 4,
		NumPreds: 9,
		Reports: []*report.Report{
			{Failed: true, ObservedSites: []int32{0, 2}, TruePreds: []int32{1, 5, 8}},
			{Failed: false, ObservedSites: []int32{1, 2, 3}, TruePreds: []int32{3}},
			{Failed: false},
		},
	}
	if err := WriteRunLogFile(path, set); err != nil {
		t.Fatal(err)
	}
	got, err = ReadRunLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set, got) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", set, got)
	}

	// Overwrite with a shorter window; rename must replace atomically.
	set.Reports = set.Reports[1:]
	if err := WriteRunLogFile(path, set); err != nil {
		t.Fatal(err)
	}
	got, err = ReadRunLogFile(path)
	if err != nil || len(got.Reports) != 2 {
		t.Fatalf("overwrite: got %+v, %v", got, err)
	}

	// Corrupt bytes (not gzip, truncated gzip) are errors, not silent
	// empty windows.
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRunLogFile(path); err == nil {
		t.Error("non-gzip run log: expected error")
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	set.MarshalBinary(gz)
	gz.Close()
	if err := os.WriteFile(path, buf.Bytes()[:buf.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRunLogFile(path); err == nil {
		t.Error("truncated run log: expected error")
	}
}

func TestAggSnapshotErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "cbi-aggsnap nope\n",
		"bad version":   "cbi-aggsnap 2 1 1 0 0 0\nFOBS 0\nSOBS 0\nFPRED 0\nSPRED 0\n",
		"missing sec":   "cbi-aggsnap 1 1 1 0 0 0\nFOBS 0\n",
		"wrong tag":     "cbi-aggsnap 1 1 1 0 0 0\nXOBS 0\nSOBS 0\nFPRED 0\nSPRED 0\n",
		"short section": "cbi-aggsnap 1 2 1 0 0 0\nFOBS 0\nSOBS 0 0\nFPRED 0\nSPRED 0\n",
		"bad int":       "cbi-aggsnap 1 1 1 0 0 0\nFOBS x\nSOBS 0\nFPRED 0\nSPRED 0\n",
		"negative dims": "cbi-aggsnap 1 -1 1 0 0 0\nFOBS\nSOBS\nFPRED 0\nSPRED 0\n",
	}
	for name, text := range cases {
		if _, err := LoadAggSnapshot(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	// Save refuses inconsistent dimensions.
	snap := sampleSnap()
	snap.FPred = snap.FPred[:2]
	if err := SaveAggSnapshot(&bytes.Buffer{}, snap); err == nil {
		t.Error("inconsistent save: expected error")
	}
}
