package corpus

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cbi/internal/report"
)

// The write-ahead log makes the collector's acked-but-unsnapshotted
// loss window ~zero: every accepted batch (and merge, and revoke) is
// appended to the current WAL segment before the client is acked, and
// replayed on boot against the last checkpoint. Each checkpoint rotates
// to a fresh segment; closed segments are deleted once the checkpoint
// watermark covers them, so the log never grows past roughly one
// checkpoint interval of traffic.
//
// A segment is a text header followed by binary records:
//
//	cbi-wal 1 <numSites> <numPreds> <fingerprint>\n
//	<record>...
//
// and each record is
//
//	kind     1 byte: 'B' batch | 'M' merge | 'R' revoke |
//	         'K' keyed batch | 'E' migration evict | 'D' drain residual
//	seq      uvarint (strictly increasing across the whole log)
//	idLen    uvarint, then idLen bytes of batch id (may be empty)
//	payLen   uvarint, then payLen bytes of payload
//	crc      4 bytes little-endian CRC32-C over kind..payload
//
// Batch payloads are a uvarint report count followed by that many
// report.AppendRecord encodings. Merge payloads are a WriteMergeSegment
// stream (the peer's counter snapshot + its run window). Revoke
// payloads are a uvarint id count followed by length-prefixed batch
// ids. A torn tail — the partial record a crash mid-write leaves — is
// detected by the CRC (or by running out of bytes) and dropped; a
// corrupt header or record in the middle of a segment is a hard error.

// WAL record kinds. The 'K', 'E' and 'D' kinds were added for live
// migration; they are self-describing by their kind byte, so the
// segment header version is unchanged — a pre-migration reader fails
// loudly on an unknown kind instead of silently dropping state.
const (
	WALBatch  = 'B'
	WALMerge  = 'M'
	WALRevoke = 'R'
	// WALKeyedBatch is a batch stamped with its routing-key hash: the
	// payload is a uvarint key followed by a WALBatch payload. Written
	// instead of WALBatch whenever the key is known, so replayed runs
	// stay addressable by key range.
	WALKeyedBatch = 'K'
	// WALEvict records a migration handoff eviction: the payload is a
	// WALBatch payload listing the exact records removed from the run
	// log (and uncounted). Replay re-removes them, so handed-off runs
	// stay handed off across a source crash.
	WALEvict = 'E'
	// WALDrainResidual records the subtraction of beyond-window residual
	// counters during a full drain: the payload is a SaveAggSnapshot
	// text of the subtracted counters.
	WALDrainResidual = 'D'
)

const (
	walVersion = 1
	// maxWALBatchID bounds a record's batch-id length.
	maxWALBatchID = 1 << 10
	// maxWALPayload bounds a record payload; matches the collector's
	// maximum accepted batch body.
	maxWALPayload = 64 << 20
	// maxWALRevokeIDs bounds the ids one revoke record may carry.
	maxWALRevokeIDs = 1 << 16
)

// walCRCTable is the WAL record checksum polynomial: CRC32-C
// (Castagnoli) rather than IEEE, because amd64 and arm64 compute it in
// hardware and the checksum runs over every payload byte on the hot
// ingest path.
var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// WALRecord is one durable collector mutation.
type WALRecord struct {
	Kind byte
	Seq  uint64
	// BatchID is the client batch id ('B' and 'M' records), used to
	// re-seed retry dedup on replay. May be empty.
	BatchID string
	// Reports holds the batch's runs ('B') or the merged peer's run
	// window ('M').
	Reports []*report.Report
	// Recs, when non-nil on a 'B' record, holds the batch's runs
	// already encoded with report.AppendRecord — the exact bytes the
	// payload would contain — letting a caller that needs the encodings
	// anyway (the collector reuses them as run-log records) pay for
	// encoding once. Ignored on other kinds; Reports is not consulted
	// when set.
	Recs [][]byte
	// Snap is the merged peer's counter snapshot ('M'), or the
	// subtracted residual counters ('D').
	Snap *AggSnapshot
	// IDs lists the batch ids reversed by a revoke ('R' only).
	IDs []string
	// Key is the routing-key hash of a keyed batch ('K' only).
	Key uint64
	// Keys, when non-nil on a 'M' record, carries the merged peer's
	// per-record routing-key hashes (aligned with Reports).
	Keys []uint64
}

// AppendWALRecord encodes rec and appends it to dst.
func AppendWALRecord(dst []byte, rec *WALRecord, numSites, numPreds int) ([]byte, error) {
	if len(rec.BatchID) > maxWALBatchID {
		return nil, fmt.Errorf("corpus: WAL batch id %d bytes long", len(rec.BatchID))
	}
	// preLen, when ≥ 0, is the payload length of the pre-encoded batch
	// fast path: the payload bytes are streamed straight into dst below
	// instead of being materialized (and copied) here — on the hot
	// ingest path the payload is the whole batch, so the extra ~batch
	// of garbage per append is worth avoiding.
	preLen := -1
	var payload []byte
	switch rec.Kind {
	case WALBatch, WALKeyedBatch, WALEvict:
		if rec.Kind == WALKeyedBatch {
			payload = binary.AppendUvarint(payload, rec.Key)
		}
		if rec.Recs != nil {
			preLen = len(payload) + uvarintLen(uint64(len(rec.Recs)))
			for _, r := range rec.Recs {
				preLen += len(r)
			}
		} else {
			payload = binary.AppendUvarint(payload, uint64(len(rec.Reports)))
			for _, r := range rec.Reports {
				payload = report.AppendRecord(payload, r)
			}
		}
	case WALMerge:
		if rec.Snap == nil {
			return nil, fmt.Errorf("corpus: WAL merge record without snapshot")
		}
		var buf bytes.Buffer
		set := &report.Set{NumSites: rec.Snap.NumSites, NumPreds: rec.Snap.NumPreds, Reports: rec.Reports}
		if err := WriteMergeSegmentKeyed(&buf, rec.Snap, set, rec.Keys); err != nil {
			return nil, err
		}
		payload = buf.Bytes()
	case WALDrainResidual:
		if rec.Snap == nil {
			return nil, fmt.Errorf("corpus: WAL drain-residual record without snapshot")
		}
		var buf bytes.Buffer
		if err := SaveAggSnapshot(&buf, rec.Snap); err != nil {
			return nil, err
		}
		payload = buf.Bytes()
	case WALRevoke:
		if len(rec.IDs) > maxWALRevokeIDs {
			return nil, fmt.Errorf("corpus: WAL revoke record with %d ids", len(rec.IDs))
		}
		payload = binary.AppendUvarint(payload, uint64(len(rec.IDs)))
		for _, id := range rec.IDs {
			if len(id) > maxWALBatchID {
				return nil, fmt.Errorf("corpus: WAL revoke id %d bytes long", len(id))
			}
			payload = binary.AppendUvarint(payload, uint64(len(id)))
			payload = append(payload, id...)
		}
	default:
		return nil, fmt.Errorf("corpus: unknown WAL record kind %q", rec.Kind)
	}
	plen := len(payload)
	if preLen >= 0 {
		plen = preLen
	}
	if plen > maxWALPayload {
		return nil, fmt.Errorf("corpus: WAL payload %d bytes exceeds cap", plen)
	}
	start := len(dst)
	dst = append(dst, rec.Kind)
	dst = binary.AppendUvarint(dst, rec.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(rec.BatchID)))
	dst = append(dst, rec.BatchID...)
	dst = binary.AppendUvarint(dst, uint64(plen))
	if preLen >= 0 {
		// payload holds any prefix built before the pre-encoded records
		// (the routing key of a 'K' record); the records stream after it.
		dst = append(dst, payload...)
		dst = binary.AppendUvarint(dst, uint64(len(rec.Recs)))
		for _, r := range rec.Recs {
			dst = append(dst, r...)
		}
	} else {
		dst = append(dst, payload...)
	}
	crc := crc32.Checksum(dst[start:], walCRCTable)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return dst, nil
}

// uvarintLen returns the encoded size of v without encoding it.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// crcByteReader threads a CRC32 through every byte read so the record
// checksum can be verified without buffering the raw encoding.
type crcByteReader struct {
	br  *bufio.Reader
	crc uint32
}

func (c *crcByteReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err != nil {
		return 0, err
	}
	one := [1]byte{b}
	c.crc = crc32.Update(c.crc, walCRCTable, one[:])
	return b, nil
}

// full reads len(p) bytes through the CRC. It is only ever called
// mid-record, so a clean EOF here still means a torn record — map it
// to ErrUnexpectedEOF so replay never mistakes it for a record
// boundary.
func (c *crcByteReader) full(p []byte) error {
	if _, err := io.ReadFull(c.br, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	c.crc = crc32.Update(c.crc, walCRCTable, p)
	return nil
}

// readUvarint reads a uvarint through the CRC, mapping EOF mid-value to
// ErrUnexpectedEOF (a torn record, not a clean boundary).
func (c *crcByteReader) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(c)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return v, err
}

// readBounded reads n payload bytes in bounded chunks so a hostile
// length prefix cannot demand a huge up-front allocation.
func (c *crcByteReader) readBounded(n uint64) ([]byte, error) {
	const chunk = 1 << 16
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		k := min(n-uint64(len(buf)), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, k)...)
		if err := c.full(buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// ReadWALRecord reads and validates one record. io.EOF is returned only
// at a clean record boundary; a record cut off mid-way surfaces as
// io.ErrUnexpectedEOF, and any corruption (bad CRC, bad structure,
// dimension mismatch) as a descriptive error. Replay treats anything
// but a clean EOF as a torn tail.
func ReadWALRecord(br *bufio.Reader, numSites, numPreds int) (*WALRecord, error) {
	c := &crcByteReader{br: br}
	kind, err := c.ReadByte()
	if err != nil {
		return nil, err // io.EOF here is a clean end of log
	}
	switch kind {
	case WALBatch, WALMerge, WALRevoke, WALKeyedBatch, WALEvict, WALDrainResidual:
	default:
		return nil, fmt.Errorf("corpus: unknown WAL record kind 0x%02x", kind)
	}
	seq, err := c.readUvarint()
	if err != nil {
		return nil, err
	}
	idLen, err := c.readUvarint()
	if err != nil {
		return nil, err
	}
	if idLen > maxWALBatchID {
		return nil, fmt.Errorf("corpus: WAL batch id %d bytes long", idLen)
	}
	id := make([]byte, idLen)
	if err := c.full(id); err != nil {
		return nil, err
	}
	payLen, err := c.readUvarint()
	if err != nil {
		return nil, err
	}
	if payLen > maxWALPayload {
		return nil, fmt.Errorf("corpus: WAL payload %d bytes exceeds cap", payLen)
	}
	payload, err := c.readBounded(payLen)
	if err != nil {
		return nil, err
	}
	sum := c.crc
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("corpus: WAL record checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != sum {
		return nil, fmt.Errorf("corpus: WAL record CRC mismatch (stored %08x, computed %08x)", got, sum)
	}
	rec := &WALRecord{Kind: kind, Seq: seq, BatchID: string(id)}
	switch kind {
	case WALBatch, WALKeyedBatch, WALEvict:
		pr := bytes.NewReader(payload)
		if kind == WALKeyedBatch {
			key, err := binary.ReadUvarint(pr)
			if err != nil {
				return nil, fmt.Errorf("corpus: WAL keyed batch key: %v", err)
			}
			rec.Key = key
		}
		count, err := binary.ReadUvarint(pr)
		if err != nil {
			return nil, fmt.Errorf("corpus: WAL batch count: %v", err)
		}
		// Every record costs at least 3 bytes (flags + two lengths).
		if count > uint64(len(payload)) {
			return nil, fmt.Errorf("corpus: WAL batch claims %d reports in %d bytes", count, len(payload))
		}
		rec.Reports = make([]*report.Report, 0, count)
		for i := uint64(0); i < count; i++ {
			r, err := report.ReadRecord(pr, numSites, numPreds)
			if err != nil {
				return nil, fmt.Errorf("corpus: WAL batch report %d: %v", i, err)
			}
			rec.Reports = append(rec.Reports, r)
		}
		if pr.Len() != 0 {
			return nil, fmt.Errorf("corpus: WAL batch has %d trailing bytes", pr.Len())
		}
	case WALMerge:
		snap, set, keys, err := ReadMergeSegmentKeyed(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("corpus: WAL merge payload: %v", err)
		}
		if snap.NumSites != numSites || snap.NumPreds != numPreds {
			return nil, fmt.Errorf("corpus: WAL merge dimensions %dx%d, log is %dx%d",
				snap.NumSites, snap.NumPreds, numSites, numPreds)
		}
		rec.Snap = snap
		rec.Reports = set.Reports
		rec.Keys = keys
	case WALDrainResidual:
		snap, err := LoadAggSnapshot(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("corpus: WAL drain-residual payload: %v", err)
		}
		if snap.NumSites != numSites || snap.NumPreds != numPreds {
			return nil, fmt.Errorf("corpus: WAL drain-residual dimensions %dx%d, log is %dx%d",
				snap.NumSites, snap.NumPreds, numSites, numPreds)
		}
		rec.Snap = snap
	case WALRevoke:
		pr := bytes.NewReader(payload)
		count, err := binary.ReadUvarint(pr)
		if err != nil {
			return nil, fmt.Errorf("corpus: WAL revoke count: %v", err)
		}
		if count > maxWALRevokeIDs || count > uint64(len(payload)) {
			return nil, fmt.Errorf("corpus: WAL revoke claims %d ids in %d bytes", count, len(payload))
		}
		rec.IDs = make([]string, 0, count)
		for i := uint64(0); i < count; i++ {
			n, err := binary.ReadUvarint(pr)
			if err != nil || n > maxWALBatchID || n > uint64(pr.Len()) {
				return nil, fmt.Errorf("corpus: WAL revoke id %d length", i)
			}
			buf := make([]byte, n)
			io.ReadFull(pr, buf)
			rec.IDs = append(rec.IDs, string(buf))
		}
		if pr.Len() != 0 {
			return nil, fmt.Errorf("corpus: WAL revoke has %d trailing bytes", pr.Len())
		}
	}
	return rec, nil
}

func walHeader(numSites, numPreds int, fingerprint uint64) string {
	return fmt.Sprintf("cbi-wal %d %d %d %d\n", walVersion, numSites, numPreds, fingerprint)
}

// WALReplay is the result of scanning one WAL segment.
type WALReplay struct {
	// Records are the intact records, in log order.
	Records []*WALRecord
	// ValidBytes is the offset just past the last intact record (or the
	// header, or zero when even the header is torn). Reopening the
	// segment for append truncates to this offset first.
	ValidBytes int64
	// Torn reports that the segment ended in a partial or corrupt
	// record (or a torn header) that was dropped.
	Torn bool
	// MaxSeq is the highest record sequence seen (0 when empty).
	MaxSeq uint64
}

// countingReader tracks how many bytes the wrapped reader has consumed,
// so replay can compute the valid prefix as consumed - buffered.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ReplayWALFile scans one WAL segment, validating the header against
// the collector's dimensions and plan fingerprint and stopping at the
// first torn or corrupt record. A missing file returns (nil, nil). A
// header that parses but disagrees with the collector — or a segment
// that is not a WAL at all — is a hard error: replaying it would
// corrupt state, so the operator must intervene (see OPERATIONS.md,
// "replay failed on boot").
func ReplayWALFile(path string, numSites, numPreds int, fingerprint uint64) (*WALReplay, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := &countingReader{r: f}
	br := bufio.NewReaderSize(cr, 1<<16)
	rep := &WALReplay{}
	header, err := br.ReadString('\n')
	if err != nil {
		// No complete header line: a crash tore the very first write.
		rep.Torn = len(header) > 0
		return rep, nil
	}
	var version, gotSites, gotPreds int
	var gotFP uint64
	if _, err := fmt.Sscanf(header, "cbi-wal %d %d %d %d", &version, &gotSites, &gotPreds, &gotFP); err != nil {
		return nil, fmt.Errorf("corpus: %s is not a WAL segment (header %q)", path, strings.TrimSpace(header))
	}
	if version != walVersion {
		return nil, fmt.Errorf("corpus: WAL segment %s has unsupported version %d", path, version)
	}
	if gotSites != numSites || gotPreds != numPreds {
		return nil, fmt.Errorf("corpus: WAL segment %s is %dx%d, collector is %dx%d",
			path, gotSites, gotPreds, numSites, numPreds)
	}
	if gotFP != 0 && fingerprint != 0 && gotFP != fingerprint {
		return nil, fmt.Errorf("corpus: WAL segment %s has plan fingerprint %d, collector has %d",
			path, gotFP, fingerprint)
	}
	rep.ValidBytes = cr.n - int64(br.Buffered())
	for {
		rec, err := ReadWALRecord(br, numSites, numPreds)
		if err == io.EOF {
			return rep, nil
		}
		if err != nil {
			rep.Torn = true
			return rep, nil
		}
		if rec.Seq <= rep.MaxSeq {
			// Sequences are strictly increasing; a regression means the
			// tail is garbage that happened to checksum (or a doctored
			// file). Treat as torn from here.
			rep.Torn = true
			return rep, nil
		}
		rep.Records = append(rep.Records, rec)
		rep.MaxSeq = rec.Seq
		rep.ValidBytes = cr.n - int64(br.Buffered())
	}
}

// WAL is one segment file open for appending.
type WAL struct {
	f    *os.File
	path string
	hdr  int64
	size int64
	buf  []byte
}

// CreateWALSegment creates (or truncates) a fresh segment at path and
// writes its header.
func CreateWALSegment(path string, numSites, numPreds int, fingerprint uint64) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	h := walHeader(numSites, numPreds, fingerprint)
	if _, err := f.WriteString(h); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f, path: path, hdr: int64(len(h)), size: int64(len(h))}, nil
}

// OpenWALSegment reopens an existing segment for appending, truncating
// it to validBytes first (dropping a torn tail found by ReplayWALFile).
// validBytes of zero or less than a header rewrites the segment fresh.
func OpenWALSegment(path string, numSites, numPreds int, fingerprint uint64, validBytes int64) (*WAL, error) {
	h := walHeader(numSites, numPreds, fingerprint)
	if validBytes < int64(len(h)) {
		return CreateWALSegment(path, numSites, numPreds, fingerprint)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f, path: path, hdr: int64(len(h)), size: validBytes}, nil
}

// Append encodes rec and writes it to the segment. The bytes are handed
// to the OS before returning (surviving a process crash, the threat
// model here); fsync is deliberately not issued per record.
func (w *WAL) Append(rec *WALRecord, numSites, numPreds int) error {
	buf, err := AppendWALRecord(w.buf[:0], rec, numSites, numPreds)
	if err != nil {
		return err
	}
	w.buf = buf[:0]
	n, err := w.f.Write(buf)
	w.size += int64(n)
	return err
}

// Truncate discards all records, resetting the segment to its header.
func (w *WAL) Truncate() error { return w.TruncateTo(w.hdr) }

// TruncateTo drops everything past size (floored at the header) — the
// repair path after a failed append left a partial record on disk.
func (w *WAL) TruncateTo(size int64) error {
	if size < w.hdr {
		size = w.hdr
	}
	if err := w.f.Truncate(size); err != nil {
		return err
	}
	if _, err := w.f.Seek(size, io.SeekStart); err != nil {
		return err
	}
	w.size = size
	return nil
}

// Size returns the segment's current byte length.
func (w *WAL) Size() int64 { return w.size }

// Path returns the segment's file path.
func (w *WAL) Path() string { return w.path }

// Empty reports whether the segment holds no records.
func (w *WAL) Empty() bool { return w.size <= w.hdr }

// Sync flushes the segment to stable storage.
func (w *WAL) Sync() error { return w.f.Sync() }

// Close closes the segment file.
func (w *WAL) Close() error { return w.f.Close() }

// walSegmentPattern formats segment file names: <base>.NNNNNNNN.
func walSegmentName(base string, index uint64) string {
	return fmt.Sprintf("%s.%08d", base, index)
}

// WALSegmentRef names one existing segment of a segmented log.
type WALSegmentRef struct {
	Path  string
	Index uint64
}

// ListWALSegments finds the existing segments of the log based at base,
// sorted by index.
func ListWALSegments(base string) ([]WALSegmentRef, error) {
	matches, err := filepath.Glob(base + ".*")
	if err != nil {
		return nil, err
	}
	var segs []WALSegmentRef
	for _, m := range matches {
		suffix := m[len(base)+1:]
		if len(suffix) < 8 {
			continue
		}
		idx, err := strconv.ParseUint(suffix, 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, WALSegmentRef{Path: m, Index: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Index < segs[j].Index })
	return segs, nil
}

// WALSegmentName exposes the segment naming scheme for the collector.
func WALSegmentName(base string, index uint64) string { return walSegmentName(base, index) }
