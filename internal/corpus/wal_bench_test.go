package corpus

import (
	"path/filepath"
	"testing"
)

// benchWALRecord builds a batch record shaped like a production ingest
// unit: 100 runs of ~2KB of pre-encoded report records, the scale a
// moss-sized deployment writes per append.
func benchWALRecord() *WALRecord {
	recs := make([][]byte, 100)
	for i := range recs {
		r := make([]byte, 2000)
		for j := range r {
			r[j] = byte(i + j)
		}
		recs[i] = r
	}
	return &WALRecord{Kind: WALBatch, BatchID: "bench-batch", Recs: recs}
}

// BenchmarkWALRecordEncode isolates the CPU half of an append: framing,
// payload copy, and checksum into a reused buffer, no I/O.
func BenchmarkWALRecordEncode(b *testing.B) {
	rec := benchWALRecord()
	var buf []byte
	var err error
	for i := 0; i < b.N; i++ {
		rec.Seq = uint64(i + 1)
		buf, err = AppendWALRecord(buf[:0], rec, 10, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkWALAppend is the full durable append: encode plus the write
// into the segment file (no fsync, as in production).
func BenchmarkWALAppend(b *testing.B) {
	w, err := CreateWALSegment(filepath.Join(b.TempDir(), "bench.wal.000000001"), 10, 10, 42)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := benchWALRecord()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Seq = uint64(i + 1)
		if err := w.Append(rec, 10, 10); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.SetBytes(w.Size() / int64(b.N))
}
