package corpus

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cbi/internal/core"
	"cbi/internal/report"
)

// aggSnapVersion is bumped on breaking aggregate-snapshot changes.
// Version 2 added the LOGGED line; version-1 files still load, with
// Logged reported as unknown (-1). Version 3 added the WALSEQ line
// (write-ahead-log applied watermark + islands); snapshots without WAL
// state still save as version 2, so non-WAL deployments keep producing
// byte-identical files.
const aggSnapVersion = 3

// maxWALIslands bounds the islands list a hostile WALSEQ line may
// demand. Real islands are bounded by the collector's in-flight batch
// count (at most the ingest queue), never anywhere near this.
const maxWALIslands = 1 << 20

// AggSnapshot is a persisted aggregate state: the per-site observation
// tallies and per-predicate truth tallies a streaming collector
// maintains, split by run outcome, plus the set-level run counts. It is
// the durable form of a live collector's counters — everything needed
// to serve /v1/scores and /v1/stats — without the reports themselves,
// so its size is O(sites + preds) no matter how many runs were
// ingested.
type AggSnapshot struct {
	NumSites int
	NumPreds int
	// Fingerprint identifies the instrumentation plan the counters are
	// for (0 when the collector was started without a plan).
	Fingerprint uint64
	// NumF and NumS are the failing and successful run counts.
	NumF, NumS int64
	// FobsSite and SobsSite count, per site, the failing/successful runs
	// that observed the site.
	FobsSite, SobsSite []int64
	// FPred and SPred count, per predicate, the failing/successful runs
	// in which the predicate was observed true.
	FPred, SPred []int64
	// Logged records how many retained runs the sibling run-log file
	// held when this snapshot was captured, so a restore can tell a
	// torn snapshot/log pair (recount from the log) from counters that
	// legitimately cover more runs than the retained window (merged-in
	// shard state whose own windows had evicted runs). -1 means unknown
	// (a version-1 file).
	Logged int64
	// WALSeq is the write-ahead-log applied watermark at capture: every
	// WAL record with sequence <= WALSeq is reflected in the counters.
	// WALIslands lists applied sequences above the watermark (batches
	// that finished out of order while earlier ones were still queued).
	// Both are zero/empty outside WAL-enabled checkpoints.
	WALSeq     uint64
	WALIslands []uint64
}

// NewAggSnapshot returns an all-zero snapshot for the given dimensions
// — the identity element reducers start from when folding shard
// snapshots with MergeAggSnapshot.
func NewAggSnapshot(numSites, numPreds int) *AggSnapshot {
	return &AggSnapshot{
		NumSites: numSites,
		NumPreds: numPreds,
		FobsSite: make([]int64, numSites),
		SobsSite: make([]int64, numSites),
		FPred:    make([]int64, numPreds),
		SPred:    make([]int64, numPreds),
	}
}

// MergeAggSnapshot folds src into dst element-wise. Because every
// counter is a sum over independent runs, merging is exact and
// commutative: folding N shard snapshots in any order yields exactly
// the snapshot one collector would have produced ingesting all their
// runs. Dimensions must match; fingerprints must agree where both are
// set (dst adopts src's fingerprint when it has none).
func MergeAggSnapshot(dst, src *AggSnapshot) error {
	if src.NumSites != dst.NumSites || src.NumPreds != dst.NumPreds {
		return fmt.Errorf("corpus: merging snapshot %dx%d into %dx%d",
			src.NumSites, src.NumPreds, dst.NumSites, dst.NumPreds)
	}
	if len(src.FobsSite) != src.NumSites || len(src.SobsSite) != src.NumSites ||
		len(src.FPred) != src.NumPreds || len(src.SPred) != src.NumPreds ||
		len(dst.FobsSite) != dst.NumSites || len(dst.SobsSite) != dst.NumSites ||
		len(dst.FPred) != dst.NumPreds || len(dst.SPred) != dst.NumPreds {
		return fmt.Errorf("corpus: snapshot slice lengths disagree with dimensions")
	}
	switch {
	case dst.Fingerprint == 0:
		dst.Fingerprint = src.Fingerprint
	case src.Fingerprint != 0 && src.Fingerprint != dst.Fingerprint:
		return fmt.Errorf("corpus: merging snapshot fingerprint %d into %d",
			src.Fingerprint, dst.Fingerprint)
	}
	dst.NumF += src.NumF
	dst.NumS += src.NumS
	for i, v := range src.FobsSite {
		dst.FobsSite[i] += v
	}
	for i, v := range src.SobsSite {
		dst.SobsSite[i] += v
	}
	for i, v := range src.FPred {
		dst.FPred[i] += v
	}
	for i, v := range src.SPred {
		dst.SPred[i] += v
	}
	return nil
}

// SubtractAggSnapshot removes src's counters from dst — the inverse of
// MergeAggSnapshot, used when a draining shard hands its beyond-window
// residual counters to a successor and must stop counting them itself.
// Underflow is an error: the caller computed src from dst's own state,
// so going negative means the two no longer describe the same runs.
func SubtractAggSnapshot(dst, src *AggSnapshot) error {
	if src.NumSites != dst.NumSites || src.NumPreds != dst.NumPreds {
		return fmt.Errorf("corpus: subtracting snapshot %dx%d from %dx%d",
			src.NumSites, src.NumPreds, dst.NumSites, dst.NumPreds)
	}
	if src.NumF > dst.NumF || src.NumS > dst.NumS {
		return fmt.Errorf("corpus: snapshot subtraction underflows run totals")
	}
	for i, v := range src.FobsSite {
		if v > dst.FobsSite[i] {
			return fmt.Errorf("corpus: snapshot subtraction underflows site %d", i)
		}
	}
	for i, v := range src.SobsSite {
		if v > dst.SobsSite[i] {
			return fmt.Errorf("corpus: snapshot subtraction underflows site %d", i)
		}
	}
	for i, v := range src.FPred {
		if v > dst.FPred[i] {
			return fmt.Errorf("corpus: snapshot subtraction underflows predicate %d", i)
		}
	}
	for i, v := range src.SPred {
		if v > dst.SPred[i] {
			return fmt.Errorf("corpus: snapshot subtraction underflows predicate %d", i)
		}
	}
	dst.NumF -= src.NumF
	dst.NumS -= src.NumS
	for i, v := range src.FobsSite {
		dst.FobsSite[i] -= v
	}
	for i, v := range src.SobsSite {
		dst.SobsSite[i] -= v
	}
	for i, v := range src.FPred {
		dst.FPred[i] -= v
	}
	for i, v := range src.SPred {
		dst.SPred[i] -= v
	}
	return nil
}

// ToAgg converts the snapshot counters into a core.Agg, attaching each
// predicate's site-observation counts via siteOf — the exact shape
// core.Aggregate produces, so all of core's scoring applies to merged
// shard state unchanged.
func (snap *AggSnapshot) ToAgg(siteOf []int32) *core.Agg {
	agg := &core.Agg{
		Stats: make([]core.Stats, snap.NumPreds),
		NumF:  int(snap.NumF),
		NumS:  int(snap.NumS),
	}
	for p := 0; p < snap.NumPreds; p++ {
		site := siteOf[p]
		agg.Stats[p] = core.Stats{
			F:    int(snap.FPred[p]),
			S:    int(snap.SPred[p]),
			Fobs: int(snap.FobsSite[site]),
			Sobs: int(snap.SobsSite[site]),
		}
	}
	return agg
}

// SaveAggSnapshot writes the snapshot in a line-oriented text format:
//
//	cbi-aggsnap 2 <numSites> <numPreds> <fingerprint> <numF> <numS>
//	FOBS <numSites ints>
//	SOBS <numSites ints>
//	FPRED <numPreds ints>
//	SPRED <numPreds ints>
//	LOGGED <runs in the sibling run log at capture>
//	WALSEQ <watermark> <island>...     (version 3; only with WAL state)
//
// Snapshots with no WAL state write version 2 with no WALSEQ line, so
// non-WAL deployments keep producing the exact bytes they always have.
func SaveAggSnapshot(w io.Writer, snap *AggSnapshot) error {
	if len(snap.FobsSite) != snap.NumSites || len(snap.SobsSite) != snap.NumSites ||
		len(snap.FPred) != snap.NumPreds || len(snap.SPred) != snap.NumPreds {
		return fmt.Errorf("corpus: snapshot slice lengths disagree with dimensions")
	}
	version := 2
	if snap.WALSeq != 0 || len(snap.WALIslands) > 0 {
		version = aggSnapVersion
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cbi-aggsnap %d %d %d %d %d %d\n",
		version, snap.NumSites, snap.NumPreds, snap.Fingerprint, snap.NumF, snap.NumS)
	for _, sec := range []struct {
		tag string
		xs  []int64
	}{
		{"FOBS", snap.FobsSite}, {"SOBS", snap.SobsSite},
		{"FPRED", snap.FPred}, {"SPRED", snap.SPred},
	} {
		bw.WriteString(sec.tag)
		for _, x := range sec.xs {
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(x, 10))
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintf(bw, "LOGGED %d\n", snap.Logged)
	if version >= 3 {
		bw.WriteString("WALSEQ ")
		bw.WriteString(strconv.FormatUint(snap.WALSeq, 10))
		for _, s := range snap.WALIslands {
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(s, 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// LoadAggSnapshot reads a snapshot written by SaveAggSnapshot.
func LoadAggSnapshot(r io.Reader) (*AggSnapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	if !sc.Scan() {
		return nil, fmt.Errorf("corpus: empty aggregate snapshot")
	}
	snap := &AggSnapshot{}
	var version int
	if _, err := fmt.Sscanf(sc.Text(), "cbi-aggsnap %d %d %d %d %d %d",
		&version, &snap.NumSites, &snap.NumPreds, &snap.Fingerprint, &snap.NumF, &snap.NumS); err != nil {
		return nil, fmt.Errorf("corpus: bad aggsnap header %q: %v", sc.Text(), err)
	}
	if version < 1 || version > aggSnapVersion {
		return nil, fmt.Errorf("corpus: unsupported aggsnap version %d", version)
	}
	if snap.NumSites < 0 || snap.NumPreds < 0 || snap.NumF < 0 || snap.NumS < 0 {
		return nil, fmt.Errorf("corpus: negative aggsnap dimensions")
	}
	for _, sec := range []struct {
		tag string
		n   int
		dst *[]int64
	}{
		{"FOBS", snap.NumSites, &snap.FobsSite}, {"SOBS", snap.NumSites, &snap.SobsSite},
		{"FPRED", snap.NumPreds, &snap.FPred}, {"SPRED", snap.NumPreds, &snap.SPred},
	} {
		if !sc.Scan() {
			return nil, fmt.Errorf("corpus: aggsnap missing %s section: %v", sec.tag, sc.Err())
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || fields[0] != sec.tag {
			return nil, fmt.Errorf("corpus: aggsnap expected %s section, got %q", sec.tag, sc.Text())
		}
		if len(fields)-1 != sec.n {
			return nil, fmt.Errorf("corpus: aggsnap %s has %d entries, want %d", sec.tag, len(fields)-1, sec.n)
		}
		xs := make([]int64, sec.n)
		for i, f := range fields[1:] {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("corpus: aggsnap %s entry %d: %v", sec.tag, i, err)
			}
			xs[i] = v
		}
		*sec.dst = xs
	}
	if version < 2 {
		snap.Logged = -1
		return snap, nil
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("corpus: aggsnap missing LOGGED line: %v", sc.Err())
	}
	if _, err := fmt.Sscanf(sc.Text(), "LOGGED %d", &snap.Logged); err != nil {
		return nil, fmt.Errorf("corpus: bad aggsnap LOGGED line %q: %v", sc.Text(), err)
	}
	if version < 3 {
		return snap, nil
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("corpus: aggsnap missing WALSEQ line: %v", sc.Err())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) < 2 || fields[0] != "WALSEQ" {
		return nil, fmt.Errorf("corpus: bad aggsnap WALSEQ line %q", sc.Text())
	}
	if len(fields)-2 > maxWALIslands {
		return nil, fmt.Errorf("corpus: aggsnap lists %d WAL islands", len(fields)-2)
	}
	w, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("corpus: bad aggsnap WALSEQ watermark %q: %v", fields[1], err)
	}
	snap.WALSeq = w
	for _, f := range fields[2:] {
		s, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("corpus: bad aggsnap WALSEQ island %q: %v", f, err)
		}
		if s <= snap.WALSeq {
			return nil, fmt.Errorf("corpus: aggsnap WAL island %d not above watermark %d", s, snap.WALSeq)
		}
		snap.WALIslands = append(snap.WALIslands, s)
	}
	return snap, nil
}

// Clone returns a deep copy of the snapshot. Warm gateway views hand
// out clones so in-place delta application never races a reader.
func (snap *AggSnapshot) Clone() *AggSnapshot {
	dup := *snap
	dup.FobsSite = append([]int64(nil), snap.FobsSite...)
	dup.SobsSite = append([]int64(nil), snap.SobsSite...)
	dup.FPred = append([]int64(nil), snap.FPred...)
	dup.SPred = append([]int64(nil), snap.SPred...)
	dup.WALIslands = append([]uint64(nil), snap.WALIslands...)
	return &dup
}

// ApplyReport folds one run into (delta=+1) or out of (delta=-1) the
// snapshot counters — exactly the per-run bump a live collector
// performs, so replaying a delta stream of appends and evictions
// reproduces the collector's counters bit for bit.
func (snap *AggSnapshot) ApplyReport(r *report.Report, delta int64) {
	if r.Failed {
		snap.NumF += delta
		for _, s := range r.ObservedSites {
			snap.FobsSite[s] += delta
		}
		for _, p := range r.TruePreds {
			snap.FPred[p] += delta
		}
	} else {
		snap.NumS += delta
		for _, s := range r.ObservedSites {
			snap.SobsSite[s] += delta
		}
		for _, p := range r.TruePreds {
			snap.SPred[p] += delta
		}
	}
}

// WriteAggSnapshotFile atomically persists the snapshot to path via a
// temp file + rename, so a crash mid-write never clobbers the previous
// good snapshot.
func WriteAggSnapshotFile(path string, snap *AggSnapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := SaveAggSnapshot(tmp, snap); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadAggSnapshotFile loads a snapshot file; a missing file returns
// (nil, nil) so callers can treat "no snapshot yet" as a cold start.
func ReadAggSnapshotFile(path string) (*AggSnapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadAggSnapshot(f)
}

// RunLogPath derives the run-log sibling of an aggregate snapshot path.
// The two files together are a collector's durable state: the counters
// (O(sites+preds)) and the retained run-level membership window the
// counters describe.
func RunLogPath(snapshotPath string) string { return snapshotPath + ".runs" }

// WriteRunLogFile atomically persists a retained-run window as a
// gzip-compressed binary report set (the wire codec doubles as the
// at-rest format), via temp file + rename like WriteAggSnapshotFile.
func WriteRunLogFile(path string, set *report.Set) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	gz := gzip.NewWriter(tmp)
	if err := set.MarshalBinary(gz); err != nil {
		tmp.Close()
		return err
	}
	if err := gz.Close(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteRunLogFileRecords is WriteRunLogFile fed directly with encoded
// run-log records (canonical report.AppendRecord bytes). The file is
// byte-identical to WriteRunLogFile over the decoded reports — the set
// body is exactly the record concatenation — so collectors can persist
// their window without a decode → re-encode round trip.
func WriteRunLogFileRecords(path string, numSites, numPreds int, recs [][]byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	gz := gzip.NewWriter(tmp)
	if err := report.MarshalRecords(gz, numSites, numPreds, recs); err != nil {
		tmp.Close()
		return err
	}
	if err := gz.Close(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// mergeSegVersion is bumped on breaking merge-segment changes.
// Version 1 is snapshot + run window; version 2 appends a per-record
// routing-key section and is only written when at least one record
// actually carries a key, so deployments that never migrate keep
// emitting byte-identical v1 segments.
const (
	mergeSegVersion      = 1
	mergeSegVersionKeyed = 2
)

// maxMergeSnapBytes bounds the snapshot part of a merge segment so a
// hostile header cannot demand an absurd allocation (a real snapshot is
// O(sites+preds) decimal integers).
const maxMergeSnapBytes = 1 << 28

// WriteMergeSegment writes one shard's exported state — its counter
// snapshot plus its retained run-log window as a binary report set —
// as a single framed stream:
//
//	cbi-merge 1 <snapshotBytes>
//	<snapshotBytes bytes of SaveAggSnapshot text>
//	<report.Set binary wire format>
//
// This is the payload of the collector's POST /v1/merge endpoint and
// GET /v1/snapshot export: together the two parts let a reducer fold N
// shard states into one exact global state (counters add, run windows
// concatenate).
func WriteMergeSegment(w io.Writer, snap *AggSnapshot, set *report.Set) error {
	return WriteMergeSegmentKeyed(w, snap, set, nil)
}

// WriteMergeSegmentKeyed writes a merge segment carrying a routing-key
// hash per record (keys[i] belongs to set.Reports[i]; see KeyHash).
// When keys is nil, or every key is NoKey, the output is a plain v1
// segment byte-for-byte; otherwise a v2 segment with a key section —
// a uvarint count followed by that many uvarint keys — after the run
// window. Keys let migrated runs stay addressable by range on the
// destination shard, so a later resize can move them again.
func WriteMergeSegmentKeyed(w io.Writer, snap *AggSnapshot, set *report.Set, keys []uint64) error {
	if set.NumSites != snap.NumSites || set.NumPreds != snap.NumPreds {
		return fmt.Errorf("corpus: merge segment set dimensions %dx%d disagree with snapshot %dx%d",
			set.NumSites, set.NumPreds, snap.NumSites, snap.NumPreds)
	}
	keyed := false
	if keys != nil {
		if len(keys) != len(set.Reports) {
			return fmt.Errorf("corpus: merge segment has %d keys for %d records", len(keys), len(set.Reports))
		}
		for _, k := range keys {
			if k != NoKey {
				keyed = true
				break
			}
		}
	}
	version := mergeSegVersion
	if keyed {
		version = mergeSegVersionKeyed
	}
	var buf bytes.Buffer
	if err := SaveAggSnapshot(&buf, snap); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "cbi-merge %d %d\n", version, buf.Len()); err != nil {
		return err
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	if err := set.MarshalBinary(w); err != nil {
		return err
	}
	if !keyed {
		return nil
	}
	kb := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		kb = binary.AppendUvarint(kb, k)
	}
	_, err := w.Write(kb)
	return err
}

// WriteMergeSegmentRecords is WriteMergeSegmentKeyed fed directly with
// encoded run-log records instead of decoded reports: the run-window
// part of the frame is exactly the record concatenation, so the output
// is byte-identical and the exporter skips a decode → re-encode round
// trip. keys[i] belongs to recs[i]; nil keys writes a v1 segment.
func WriteMergeSegmentRecords(w io.Writer, snap *AggSnapshot, numSites, numPreds int, recs [][]byte, keys []uint64) error {
	if numSites != snap.NumSites || numPreds != snap.NumPreds {
		return fmt.Errorf("corpus: merge segment set dimensions %dx%d disagree with snapshot %dx%d",
			numSites, numPreds, snap.NumSites, snap.NumPreds)
	}
	keyed := false
	if keys != nil {
		if len(keys) != len(recs) {
			return fmt.Errorf("corpus: merge segment has %d keys for %d records", len(keys), len(recs))
		}
		for _, k := range keys {
			if k != NoKey {
				keyed = true
				break
			}
		}
	}
	version := mergeSegVersion
	if keyed {
		version = mergeSegVersionKeyed
	}
	var buf bytes.Buffer
	if err := SaveAggSnapshot(&buf, snap); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "cbi-merge %d %d\n", version, buf.Len()); err != nil {
		return err
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	if err := report.MarshalRecords(w, numSites, numPreds, recs); err != nil {
		return err
	}
	if !keyed {
		return nil
	}
	kb := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		kb = binary.AppendUvarint(kb, k)
	}
	_, err := w.Write(kb)
	return err
}

// ReadMergeSegment parses a stream written by WriteMergeSegment,
// validating that the two parts describe the same predicate universe.
// It is safe on hostile input: allocation is bounded and errors are
// returned rather than panicking.
func ReadMergeSegment(r io.Reader) (*AggSnapshot, *report.Set, error) {
	snap, set, _, err := ReadMergeSegmentKeyed(r)
	return snap, set, err
}

// ReadMergeSegmentKeyed parses a merge segment and, for a keyed (v2)
// segment, also returns the per-record routing-key hashes (aligned
// with set.Reports). A v1 segment returns keys == nil.
func ReadMergeSegmentKeyed(r io.Reader) (*AggSnapshot, *report.Set, []uint64, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, nil, nil, fmt.Errorf("corpus: merge segment header: %v", err)
	}
	var version, snapLen int
	if _, err := fmt.Sscanf(line, "cbi-merge %d %d", &version, &snapLen); err != nil {
		return nil, nil, nil, fmt.Errorf("corpus: bad merge segment header %q: %v", strings.TrimSpace(line), err)
	}
	if version != mergeSegVersion && version != mergeSegVersionKeyed {
		return nil, nil, nil, fmt.Errorf("corpus: unsupported merge segment version %d", version)
	}
	if snapLen <= 0 || snapLen > maxMergeSnapBytes {
		return nil, nil, nil, fmt.Errorf("corpus: merge segment snapshot length %d out of range", snapLen)
	}
	snapText := make([]byte, snapLen)
	if _, err := io.ReadFull(br, snapText); err != nil {
		return nil, nil, nil, fmt.Errorf("corpus: merge segment snapshot: %v", err)
	}
	snap, err := LoadAggSnapshot(bytes.NewReader(snapText))
	if err != nil {
		return nil, nil, nil, err
	}
	set, err := report.UnmarshalBinary(br)
	if err != nil {
		return nil, nil, nil, err
	}
	if set.NumSites != snap.NumSites || set.NumPreds != snap.NumPreds {
		return nil, nil, nil, fmt.Errorf("corpus: merge segment set dimensions %dx%d disagree with snapshot %dx%d",
			set.NumSites, set.NumPreds, snap.NumSites, snap.NumPreds)
	}
	if int64(len(set.Reports)) > snap.NumF+snap.NumS {
		return nil, nil, nil, fmt.Errorf("corpus: merge segment logs %d runs but counts only %d",
			len(set.Reports), snap.NumF+snap.NumS)
	}
	var keys []uint64
	if version == mergeSegVersionKeyed {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("corpus: merge segment key count: %v", err)
		}
		if count != uint64(len(set.Reports)) {
			return nil, nil, nil, fmt.Errorf("corpus: merge segment has %d keys for %d records", count, len(set.Reports))
		}
		keys = make([]uint64, count)
		for i := range keys {
			k, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("corpus: merge segment key %d: %v", i, err)
			}
			keys[i] = k
		}
	}
	return snap, set, keys, nil
}

// WriteCheckpointFile atomically persists a checkpoint — a snapshot
// (including its WAL watermark) and the retained run window it
// describes — as a single gzip-compressed merge segment via temp file +
// rename. WAL-enabled collectors use this one-file form instead of the
// legacy snapshot + .runs pair: with a write-ahead log in the recovery
// path there must be no torn-pair window, because the legacy repair
// (recount counters from the log) would disagree with WAL replay.
func WriteCheckpointFile(path string, snap *AggSnapshot, set *report.Set) error {
	return WriteCheckpointFileKeyed(path, snap, set, nil)
}

// WriteCheckpointFileKeyed is WriteCheckpointFile carrying per-record
// routing-key hashes, so a restart does not lose the key stamps a
// range migration needs (see WriteMergeSegmentKeyed).
func WriteCheckpointFileKeyed(path string, snap *AggSnapshot, set *report.Set, keys []uint64) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	gz := gzip.NewWriter(tmp)
	if err := WriteMergeSegmentKeyed(gz, snap, set, keys); err != nil {
		tmp.Close()
		return err
	}
	if err := gz.Close(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteCheckpointFileRecords is WriteCheckpointFileKeyed fed directly
// with encoded run-log records (see WriteMergeSegmentRecords); the
// resulting file is byte-identical to the set-based writer over the
// decoded reports.
func WriteCheckpointFileRecords(path string, snap *AggSnapshot, numSites, numPreds int, recs [][]byte, keys []uint64) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	gz := gzip.NewWriter(tmp)
	if err := WriteMergeSegmentRecords(gz, snap, numSites, numPreds, recs, keys); err != nil {
		tmp.Close()
		return err
	}
	if err := gz.Close(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadStateFile loads a collector state file at path, which is either a
// gzip checkpoint written by WriteCheckpointFile (checkpoint=true, the
// run window inside the returned set) or a legacy plain-text snapshot
// written by WriteAggSnapshotFile (checkpoint=false, set=nil; the run
// window lives in the sibling .runs file). The two formats are
// distinguished by sniffing the gzip magic. A missing file returns all
// zero values: cold start.
func ReadStateFile(path string) (snap *AggSnapshot, set *report.Set, checkpoint bool, err error) {
	snap, set, _, checkpoint, err = ReadStateFileKeyed(path)
	return snap, set, checkpoint, err
}

// ReadStateFileKeyed is ReadStateFile that also surfaces the
// per-record routing-key hashes of a keyed checkpoint (nil for
// unkeyed checkpoints and legacy snapshots).
func ReadStateFileKeyed(path string) (snap *AggSnapshot, set *report.Set, keys []uint64, checkpoint bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil, nil, false, nil
	}
	if err != nil {
		return nil, nil, nil, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(2)
	if err != nil {
		return nil, nil, nil, false, fmt.Errorf("corpus: state file %s: %v", path, err)
	}
	if magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, nil, nil, false, fmt.Errorf("corpus: checkpoint %s: %v", path, err)
		}
		defer gz.Close()
		snap, set, keys, err := ReadMergeSegmentKeyed(gz)
		if err != nil {
			return nil, nil, nil, false, fmt.Errorf("corpus: checkpoint %s: %v", path, err)
		}
		return snap, set, keys, true, nil
	}
	snap, err = LoadAggSnapshot(br)
	if err != nil {
		return nil, nil, nil, false, err
	}
	return snap, nil, nil, false, nil
}

// ReadRunLogFile loads a run log written by WriteRunLogFile; a missing
// file returns (nil, nil) — collectors restarted from a pre-run-log
// snapshot (or with retention disabled) simply start with an empty
// window.
func ReadRunLogFile(path string) (*report.Set, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("corpus: run log %s: %v", path, err)
	}
	defer gz.Close()
	set, err := report.UnmarshalBinary(gz)
	if err != nil {
		return nil, fmt.Errorf("corpus: run log %s: %v", path, err)
	}
	return set, nil
}
