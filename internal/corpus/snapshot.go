package corpus

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cbi/internal/report"
)

// aggSnapVersion is bumped on breaking aggregate-snapshot changes.
const aggSnapVersion = 1

// AggSnapshot is a persisted aggregate state: the per-site observation
// tallies and per-predicate truth tallies a streaming collector
// maintains, split by run outcome, plus the set-level run counts. It is
// the durable form of a live collector's counters — everything needed
// to serve /v1/scores and /v1/stats — without the reports themselves,
// so its size is O(sites + preds) no matter how many runs were
// ingested.
type AggSnapshot struct {
	NumSites int
	NumPreds int
	// Fingerprint identifies the instrumentation plan the counters are
	// for (0 when the collector was started without a plan).
	Fingerprint uint64
	// NumF and NumS are the failing and successful run counts.
	NumF, NumS int64
	// FobsSite and SobsSite count, per site, the failing/successful runs
	// that observed the site.
	FobsSite, SobsSite []int64
	// FPred and SPred count, per predicate, the failing/successful runs
	// in which the predicate was observed true.
	FPred, SPred []int64
}

// SaveAggSnapshot writes the snapshot in a line-oriented text format:
//
//	cbi-aggsnap 1 <numSites> <numPreds> <fingerprint> <numF> <numS>
//	FOBS <numSites ints>
//	SOBS <numSites ints>
//	FPRED <numPreds ints>
//	SPRED <numPreds ints>
func SaveAggSnapshot(w io.Writer, snap *AggSnapshot) error {
	if len(snap.FobsSite) != snap.NumSites || len(snap.SobsSite) != snap.NumSites ||
		len(snap.FPred) != snap.NumPreds || len(snap.SPred) != snap.NumPreds {
		return fmt.Errorf("corpus: snapshot slice lengths disagree with dimensions")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cbi-aggsnap %d %d %d %d %d %d\n",
		aggSnapVersion, snap.NumSites, snap.NumPreds, snap.Fingerprint, snap.NumF, snap.NumS)
	for _, sec := range []struct {
		tag string
		xs  []int64
	}{
		{"FOBS", snap.FobsSite}, {"SOBS", snap.SobsSite},
		{"FPRED", snap.FPred}, {"SPRED", snap.SPred},
	} {
		bw.WriteString(sec.tag)
		for _, x := range sec.xs {
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(x, 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// LoadAggSnapshot reads a snapshot written by SaveAggSnapshot.
func LoadAggSnapshot(r io.Reader) (*AggSnapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	if !sc.Scan() {
		return nil, fmt.Errorf("corpus: empty aggregate snapshot")
	}
	snap := &AggSnapshot{}
	var version int
	if _, err := fmt.Sscanf(sc.Text(), "cbi-aggsnap %d %d %d %d %d %d",
		&version, &snap.NumSites, &snap.NumPreds, &snap.Fingerprint, &snap.NumF, &snap.NumS); err != nil {
		return nil, fmt.Errorf("corpus: bad aggsnap header %q: %v", sc.Text(), err)
	}
	if version != aggSnapVersion {
		return nil, fmt.Errorf("corpus: unsupported aggsnap version %d", version)
	}
	if snap.NumSites < 0 || snap.NumPreds < 0 || snap.NumF < 0 || snap.NumS < 0 {
		return nil, fmt.Errorf("corpus: negative aggsnap dimensions")
	}
	for _, sec := range []struct {
		tag string
		n   int
		dst *[]int64
	}{
		{"FOBS", snap.NumSites, &snap.FobsSite}, {"SOBS", snap.NumSites, &snap.SobsSite},
		{"FPRED", snap.NumPreds, &snap.FPred}, {"SPRED", snap.NumPreds, &snap.SPred},
	} {
		if !sc.Scan() {
			return nil, fmt.Errorf("corpus: aggsnap missing %s section: %v", sec.tag, sc.Err())
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || fields[0] != sec.tag {
			return nil, fmt.Errorf("corpus: aggsnap expected %s section, got %q", sec.tag, sc.Text())
		}
		if len(fields)-1 != sec.n {
			return nil, fmt.Errorf("corpus: aggsnap %s has %d entries, want %d", sec.tag, len(fields)-1, sec.n)
		}
		xs := make([]int64, sec.n)
		for i, f := range fields[1:] {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("corpus: aggsnap %s entry %d: %v", sec.tag, i, err)
			}
			xs[i] = v
		}
		*sec.dst = xs
	}
	return snap, nil
}

// WriteAggSnapshotFile atomically persists the snapshot to path via a
// temp file + rename, so a crash mid-write never clobbers the previous
// good snapshot.
func WriteAggSnapshotFile(path string, snap *AggSnapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := SaveAggSnapshot(tmp, snap); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadAggSnapshotFile loads a snapshot file; a missing file returns
// (nil, nil) so callers can treat "no snapshot yet" as a cold start.
func ReadAggSnapshotFile(path string) (*AggSnapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadAggSnapshot(f)
}

// RunLogPath derives the run-log sibling of an aggregate snapshot path.
// The two files together are a collector's durable state: the counters
// (O(sites+preds)) and the retained run-level membership window the
// counters describe.
func RunLogPath(snapshotPath string) string { return snapshotPath + ".runs" }

// WriteRunLogFile atomically persists a retained-run window as a
// gzip-compressed binary report set (the wire codec doubles as the
// at-rest format), via temp file + rename like WriteAggSnapshotFile.
func WriteRunLogFile(path string, set *report.Set) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	gz := gzip.NewWriter(tmp)
	if err := set.MarshalBinary(gz); err != nil {
		tmp.Close()
		return err
	}
	if err := gz.Close(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadRunLogFile loads a run log written by WriteRunLogFile; a missing
// file returns (nil, nil) — collectors restarted from a pre-run-log
// snapshot (or with retention disabled) simply start with an empty
// window.
func ReadRunLogFile(path string) (*report.Set, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("corpus: run log %s: %v", path, err)
	}
	defer gz.Close()
	set, err := report.UnmarshalBinary(gz)
	if err != nil {
		return nil, fmt.Errorf("corpus: run log %s: %v", path, err)
	}
	return set, nil
}
