package corpus

import "hash/fnv"

// Routing-key hashing and key ranges are shared vocabulary between the
// router (which places clients on the hash ring), the collector (which
// stamps every retained run with its routing-key hash so state can be
// exported per range), and the migration controller (which moves the
// key ranges a ring resize reassigns). They live in corpus because the
// collector cannot import the shard package (the gateway imports the
// collector) and both sides must agree bit-for-bit on the hash.

// KeyHash hashes a routing key onto the ring circle: FNV-1a for the
// content, then a splitmix64-style finalizer. Raw FNV of short,
// mostly-shared-prefix keys (vnode labels, sequential client ids)
// leaves the high bits — the bits that decide ring position — badly
// mixed; the finalizer's avalanche restores a near-uniform circle.
// This must stay identical to the router's ring hash or migrated
// records would land outside their owning shard's ranges.
func KeyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NoKey marks a run whose routing key is unknown (pre-migration
// records, runs merged from peers that did not carry keys). Unkeyed
// runs never match a KeyRange, so they are never moved by a range
// migration — only by a full drain. Merged query results stay exact
// either way; only placement locality is affected.
const NoKey uint64 = 0

// KeyRange is a half-open arc (Lo, Hi] of the hash circle, wrapping
// through zero when Lo >= Hi. It mirrors consistent-hash ownership:
// the vnode at Hi owns exactly the keys in (previous vnode, Hi].
type KeyRange struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// Contains reports whether hash h falls inside the arc. NoKey is in no
// range by definition.
func (kr KeyRange) Contains(h uint64) bool {
	if h == NoKey {
		return false
	}
	if kr.Lo < kr.Hi {
		return h > kr.Lo && h <= kr.Hi
	}
	// Wrapping arc (Lo >= Hi): everything clockwise of Lo through zero
	// up to Hi. A degenerate Lo == Hi arc is the full circle (a ring
	// with a single vnode boundary owns everything).
	return h > kr.Lo || h <= kr.Hi
}

// InRanges reports whether h falls in any of the arcs.
func InRanges(h uint64, ranges []KeyRange) bool {
	for _, kr := range ranges {
		if kr.Contains(h) {
			return true
		}
	}
	return false
}
