package corpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"cbi/internal/report"
)

func TestMergeAggSnapshot(t *testing.T) {
	dst := NewAggSnapshot(3, 5)
	a := sampleSnap()
	b := sampleSnap()
	b.NumF, b.NumS = 2, 3
	b.FPred = []int64{10, 10, 10, 10, 10}

	if err := MergeAggSnapshot(dst, a); err != nil {
		t.Fatal(err)
	}
	// A zero-fingerprint destination adopts the source's.
	if dst.Fingerprint != a.Fingerprint {
		t.Fatalf("dst fingerprint %x, want adopted %x", dst.Fingerprint, a.Fingerprint)
	}
	if err := MergeAggSnapshot(dst, b); err != nil {
		t.Fatal(err)
	}
	if dst.NumF != a.NumF+2 || dst.NumS != a.NumS+3 {
		t.Fatalf("run counts = %d/%d, want %d/%d", dst.NumF, dst.NumS, a.NumF+2, a.NumS+3)
	}
	for i := range dst.FPred {
		if dst.FPred[i] != a.FPred[i]+10 {
			t.Fatalf("FPred[%d] = %d, want %d", i, dst.FPred[i], a.FPred[i]+10)
		}
	}
	for i := range dst.FobsSite {
		if dst.FobsSite[i] != a.FobsSite[i]+b.FobsSite[i] {
			t.Fatalf("FobsSite[%d] = %d", i, dst.FobsSite[i])
		}
	}

	// Dimension mismatch refuses.
	if err := MergeAggSnapshot(dst, NewAggSnapshot(3, 6)); err == nil {
		t.Fatal("merging mismatched dimensions succeeded")
	}
	// Conflicting nonzero fingerprints refuse.
	c := sampleSnap()
	c.Fingerprint = 0x1234
	if err := MergeAggSnapshot(dst, c); err == nil {
		t.Fatal("merging conflicting fingerprints succeeded")
	}
	// A zero-fingerprint source merges into a stamped destination.
	d := sampleSnap()
	d.Fingerprint = 0
	if err := MergeAggSnapshot(dst, d); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSegmentRoundTrip(t *testing.T) {
	snap := sampleSnap()
	set := &report.Set{
		NumSites: snap.NumSites, NumPreds: snap.NumPreds,
		Reports: []*report.Report{
			{Failed: true, ObservedSites: []int32{0, 2}, TruePreds: []int32{1, 4}},
			{Failed: false, ObservedSites: []int32{1}, TruePreds: []int32{3}},
		},
	}
	var buf bytes.Buffer
	if err := WriteMergeSegment(&buf, snap, set); err != nil {
		t.Fatal(err)
	}
	gotSnap, gotSet, err := ReadMergeSegment(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSnap, snap) {
		t.Fatalf("snapshot round trip mismatch:\nin:  %+v\nout: %+v", snap, gotSnap)
	}
	if !reflect.DeepEqual(gotSet, set) {
		t.Fatalf("set round trip mismatch:\nin:  %+v\nout: %+v", set, gotSet)
	}
}

func TestMergeSegmentErrors(t *testing.T) {
	snap := sampleSnap()
	okSet := &report.Set{NumSites: snap.NumSites, NumPreds: snap.NumPreds}

	// Mismatched dimensions refuse at write time.
	if err := WriteMergeSegment(&bytes.Buffer{}, snap,
		&report.Set{NumSites: 9, NumPreds: 9}); err == nil {
		t.Fatal("writing mismatched segment succeeded")
	}

	// More logged reports than the counters claim refuse at read time.
	over := &report.Set{NumSites: snap.NumSites, NumPreds: snap.NumPreds}
	for i := int64(0); i < snap.NumF+snap.NumS+1; i++ {
		over.Reports = append(over.Reports, &report.Report{ObservedSites: []int32{0}})
	}
	var buf bytes.Buffer
	if err := WriteMergeSegment(&buf, snap, over); err == nil {
		if _, _, err := ReadMergeSegment(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("segment logging more runs than counted was accepted")
		}
	}

	for _, bad := range []string{
		"",
		"cbi-merge\n",
		"cbi-merge 99 10\n",
		"cbi-merge 1 -5\n",
		"cbi-merge 1 999999999999\n",
		"cbi-merge 1 3\nabc", // snapshot bytes are not an aggsnap
	} {
		if _, _, err := ReadMergeSegment(strings.NewReader(bad)); err == nil {
			t.Fatalf("ReadMergeSegment(%q) succeeded", bad)
		}
	}

	// Truncated stream: a valid header whose body was cut off.
	var full bytes.Buffer
	if err := WriteMergeSegment(&full, snap, okSet); err != nil {
		t.Fatal(err)
	}
	cut := full.Bytes()[:full.Len()/2]
	if _, _, err := ReadMergeSegment(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated segment was accepted")
	}
}

// TestAggSnapshotV1Compat loads a version-1 file (no LOGGED line):
// it must parse, with Logged reporting -1 (unknown).
func TestAggSnapshotV1Compat(t *testing.T) {
	snap := sampleSnap()
	var buf bytes.Buffer
	if err := SaveAggSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "\nLOGGED ") {
		t.Fatalf("v2 snapshot missing LOGGED line:\n%s", text)
	}
	v1 := strings.Replace(text, "cbi-aggsnap 2 ", "cbi-aggsnap 1 ", 1)
	v1 = v1[:strings.Index(v1, "LOGGED ")]
	got, err := LoadAggSnapshot(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("loading v1 snapshot: %v", err)
	}
	if got.Logged != -1 {
		t.Fatalf("v1 snapshot Logged = %d, want -1", got.Logged)
	}
	got.Logged = snap.Logged
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("v1 snapshot counters mismatch:\nin:  %+v\nout: %+v", snap, got)
	}

	// Future versions refuse.
	v9 := strings.Replace(text, "cbi-aggsnap 2 ", "cbi-aggsnap 9 ", 1)
	if _, err := LoadAggSnapshot(strings.NewReader(v9)); err == nil {
		t.Fatal("version-9 snapshot was accepted")
	}
}
