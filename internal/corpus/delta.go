package corpus

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"cbi/internal/report"
)

// Delta segments are the incremental form of GET /v1/snapshot: instead
// of re-shipping a shard's entire state, the collector replays the
// exact state mutations ("events") between two of its state versions,
// and a warm gateway view applies them to its cached copy. Versions
// are scoped by a per-boot epoch so a restarted shard (whose version
// counter restarts) can never be mistaken for the old one.
//
// A segment is a text header followed by binary events:
//
//	cbi-delta 1 <numSites> <numPreds> <fingerprint> <epoch> <from> <to> <numEvents>\n
//	<event>...
//
// and each event is a kind byte plus an optional length-prefixed body:
//
//	'A'  append a counted run:   uvarint len + report record
//	'J'  append an uncounted run (merge-joined): uvarint len + record
//	'E'  evict the oldest retained run (and uncount it): no body
//	'M'  fold merged counters:   uvarint len + SaveAggSnapshot text
//
// Applying the events of [from, to) to a copy of the shard's state at
// version `from` yields bit-for-bit the shard's state at version `to`.

// Delta event kinds.
const (
	DeltaAppend = 'A'
	DeltaJoin   = 'J'
	DeltaEvict  = 'E'
	DeltaMerge  = 'M'
)

const (
	deltaSegVersion = 1
	// maxDeltaEvents bounds a hostile header's event count.
	maxDeltaEvents = 1 << 22
	// maxDeltaEventBytes bounds one event body ('M' bodies are snapshot
	// text, separately bounded by maxMergeSnapBytes).
	maxDeltaEventBytes = 1 << 26
)

// DeltaEvent is one state mutation. Data is the raw body as stored by
// the collector; Report/Snap are the decoded forms ReadDeltaSegment
// fills for the consumer.
type DeltaEvent struct {
	Kind   byte
	Data   []byte
	Report *report.Report
	Snap   *AggSnapshot
}

// DeltaSegment is a decoded delta stream: the events that advance a
// shard's state from version From to version To within one Epoch.
type DeltaSegment struct {
	NumSites    int
	NumPreds    int
	Fingerprint uint64
	Epoch       uint64
	From, To    uint64
	Events      []DeltaEvent
}

// WriteDeltaSegment writes the segment; events need only Kind and Data.
func WriteDeltaSegment(w io.Writer, seg *DeltaSegment) error {
	if seg.To < seg.From || seg.To-seg.From != uint64(len(seg.Events)) {
		return fmt.Errorf("corpus: delta segment [%d,%d) carries %d events",
			seg.From, seg.To, len(seg.Events))
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cbi-delta %d %d %d %d %d %d %d %d\n",
		deltaSegVersion, seg.NumSites, seg.NumPreds, seg.Fingerprint,
		seg.Epoch, seg.From, seg.To, len(seg.Events))
	var lenBuf [binary.MaxVarintLen64]byte
	for _, ev := range seg.Events {
		bw.WriteByte(ev.Kind)
		if ev.Kind == DeltaEvict {
			continue
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(ev.Data)))
		bw.Write(lenBuf[:n])
		bw.Write(ev.Data)
	}
	return bw.Flush()
}

// ReadDeltaSegment parses and validates a delta stream, decoding each
// event body ('A'/'J' into Report, 'M' into Snap). It is safe on
// hostile input: every length is bounded and every body must decode
// against the header's dimensions.
func ReadDeltaSegment(r io.Reader) (*DeltaSegment, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("corpus: delta segment header: %v", err)
	}
	var version, numEvents int
	seg := &DeltaSegment{}
	if _, err := fmt.Sscanf(line, "cbi-delta %d %d %d %d %d %d %d %d",
		&version, &seg.NumSites, &seg.NumPreds, &seg.Fingerprint,
		&seg.Epoch, &seg.From, &seg.To, &numEvents); err != nil {
		return nil, fmt.Errorf("corpus: bad delta segment header %q: %v", strings.TrimSpace(line), err)
	}
	if version != deltaSegVersion {
		return nil, fmt.Errorf("corpus: unsupported delta segment version %d", version)
	}
	if seg.NumSites < 0 || seg.NumPreds < 0 {
		return nil, fmt.Errorf("corpus: negative delta segment dimensions")
	}
	if numEvents < 0 || numEvents > maxDeltaEvents {
		return nil, fmt.Errorf("corpus: delta segment event count %d out of range", numEvents)
	}
	if seg.To < seg.From || seg.To-seg.From != uint64(numEvents) {
		return nil, fmt.Errorf("corpus: delta segment [%d,%d) claims %d events",
			seg.From, seg.To, numEvents)
	}
	c := &crcByteReader{br: br} // reused for its bounded readers; CRC unused here
	seg.Events = make([]DeltaEvent, 0, min(numEvents, 1<<16))
	for i := 0; i < numEvents; i++ {
		kind, err := c.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("corpus: delta event %d: %v", i, err)
		}
		ev := DeltaEvent{Kind: kind}
		switch kind {
		case DeltaEvict:
			// no body
		case DeltaAppend, DeltaJoin, DeltaMerge:
			n, err := c.readUvarint()
			if err != nil {
				return nil, fmt.Errorf("corpus: delta event %d length: %v", i, err)
			}
			if n > maxDeltaEventBytes {
				return nil, fmt.Errorf("corpus: delta event %d is %d bytes", i, n)
			}
			ev.Data, err = c.readBounded(n)
			if err != nil {
				return nil, fmt.Errorf("corpus: delta event %d body: %v", i, err)
			}
			if kind == DeltaMerge {
				snap, err := LoadAggSnapshot(bytes.NewReader(ev.Data))
				if err != nil {
					return nil, fmt.Errorf("corpus: delta event %d snapshot: %v", i, err)
				}
				if snap.NumSites != seg.NumSites || snap.NumPreds != seg.NumPreds {
					return nil, fmt.Errorf("corpus: delta event %d snapshot is %dx%d, segment is %dx%d",
						i, snap.NumSites, snap.NumPreds, seg.NumSites, seg.NumPreds)
				}
				ev.Snap = snap
			} else {
				pr := bytes.NewReader(ev.Data)
				rpt, err := report.ReadRecord(pr, seg.NumSites, seg.NumPreds)
				if err != nil {
					return nil, fmt.Errorf("corpus: delta event %d report: %v", i, err)
				}
				if pr.Len() != 0 {
					return nil, fmt.Errorf("corpus: delta event %d has %d trailing bytes", i, pr.Len())
				}
				ev.Report = rpt
			}
		default:
			return nil, fmt.Errorf("corpus: unknown delta event kind 0x%02x", kind)
		}
		seg.Events = append(seg.Events, ev)
	}
	return seg, nil
}

// ApplyDelta replays a decoded delta segment onto a warm state copy:
// snap is mutated in place, and the (possibly resliced) run window is
// returned. The caller owns both; ApplyDelta assumes the segment was
// validated by ReadDeltaSegment.
func ApplyDelta(snap *AggSnapshot, window []*report.Report, seg *DeltaSegment) ([]*report.Report, error) {
	for i, ev := range seg.Events {
		switch ev.Kind {
		case DeltaAppend:
			snap.ApplyReport(ev.Report, +1)
			window = append(window, ev.Report)
		case DeltaJoin:
			window = append(window, ev.Report)
		case DeltaEvict:
			if len(window) == 0 {
				return window, fmt.Errorf("corpus: delta event %d evicts from an empty window", i)
			}
			snap.ApplyReport(window[0], -1)
			window = window[1:]
		case DeltaMerge:
			if err := MergeAggSnapshot(snap, ev.Snap); err != nil {
				return window, fmt.Errorf("corpus: delta event %d: %v", i, err)
			}
		}
	}
	snap.Logged = int64(len(window))
	return window, nil
}
