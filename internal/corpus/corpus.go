// Package corpus persists complete experiment results — feedback
// reports plus per-run ground-truth metadata — so expensive corpora
// (the paper's 32,000-run studies take minutes to produce) can be
// saved, shared, and re-analyzed without rerunning the subject.
//
// A corpus records the instrumentation plan's fingerprint; loading
// verifies it against a freshly derived plan, refusing corpora whose
// predicate universe does not match the current subject sources.
package corpus

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cbi/internal/harness"
	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/report"
	"cbi/internal/subjects"
)

// formatVersion is bumped on breaking format changes.
const formatVersion = 1

// Save writes the experiment result to w.
func Save(w io.Writer, res *harness.Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cbi-corpus %d %s %s %d %d\n",
		formatVersion,
		res.Config.Subject.Name,
		res.Config.Mode,
		len(res.Set.Reports),
		res.Plan.Fingerprint())
	if err := res.Set.Marshal(bw); err != nil {
		return err
	}
	fmt.Fprintln(bw, "METAS")
	for i := range res.Metas {
		m := &res.Metas[i]
		bugs := make([]string, len(m.Bugs))
		for j, b := range m.Bugs {
			bugs[j] = strconv.Itoa(b)
		}
		fmt.Fprintf(bw, "%s %s %d %s %s\n",
			boolStr(m.Crashed), boolStr(m.OracleMismatch), int(m.Trap),
			emptyDash(m.StackSig), emptyDash(strings.Join(bugs, ",")))
	}
	// Rates section (nonuniform mode).
	fmt.Fprintf(bw, "RATES %d\n", len(res.Rates))
	for _, r := range res.Rates {
		fmt.Fprintf(bw, "%g\n", r)
	}
	return bw.Flush()
}

func boolStr(b bool) string {
	if b {
		return "T"
	}
	return "F"
}

func emptyDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func dashEmpty(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// Load reads a corpus and reconstructs a harness.Result. The named
// subject must be registered, and the freshly derived instrumentation
// plan must match the corpus fingerprint.
func Load(r io.Reader) (*harness.Result, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("corpus: reading header: %v", err)
	}
	var version, runs int
	var name, mode string
	var fingerprint uint64
	if _, err := fmt.Sscanf(header, "cbi-corpus %d %s %s %d %d",
		&version, &name, &mode, &runs, &fingerprint); err != nil {
		return nil, fmt.Errorf("corpus: bad header %q: %v", strings.TrimSpace(header), err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("corpus: unsupported version %d", version)
	}
	subj := subjects.ByName(name)
	if subj == nil {
		return nil, fmt.Errorf("corpus: unknown subject %q", name)
	}
	plan := instrument.BuildPlan(subj.Program(true))
	if plan.Fingerprint() != fingerprint {
		return nil, fmt.Errorf("corpus: plan fingerprint mismatch: corpus %d, current %d (subject sources changed?)",
			fingerprint, plan.Fingerprint())
	}

	// Reports section: delimited by the METAS line, so read it into a
	// buffer first.
	var reportText strings.Builder
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF && line == "" {
			return nil, fmt.Errorf("corpus: missing METAS section")
		}
		if err != nil && err != io.EOF {
			return nil, err
		}
		if strings.TrimSpace(line) == "METAS" {
			break
		}
		reportText.WriteString(line)
		if err == io.EOF {
			return nil, fmt.Errorf("corpus: missing METAS section")
		}
	}
	set, err := report.Unmarshal(strings.NewReader(reportText.String()))
	if err != nil {
		return nil, fmt.Errorf("corpus: reports: %v", err)
	}
	if len(set.Reports) != runs {
		return nil, fmt.Errorf("corpus: header promised %d runs, reports section has %d", runs, len(set.Reports))
	}

	var modeVal harness.Mode
	switch mode {
	case "always":
		modeVal = harness.SampleAlways
	case "uniform":
		modeVal = harness.SampleUniform
	case "nonuniform":
		modeVal = harness.SampleNonuniform
	default:
		return nil, fmt.Errorf("corpus: unknown mode %q", mode)
	}

	res := &harness.Result{
		Config: harness.Config{Subject: subj, Runs: runs, Mode: modeVal},
		Plan:   plan,
		Set:    set,
		Metas:  make([]harness.RunMeta, 0, runs),
	}

	for i := 0; i < runs; i++ {
		line, err := br.ReadString('\n')
		if err != nil && !(err == io.EOF && line != "") {
			return nil, fmt.Errorf("corpus: metas truncated at %d: %v", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("corpus: bad meta line %q", strings.TrimSpace(line))
		}
		trap, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("corpus: bad trap in %q", line)
		}
		meta := harness.RunMeta{
			Crashed:        fields[0] == "T",
			OracleMismatch: fields[1] == "T",
			Trap:           interp.TrapKind(trap),
			StackSig:       dashEmpty(fields[3]),
		}
		if bugs := dashEmpty(fields[4]); bugs != "" {
			for _, b := range strings.Split(bugs, ",") {
				v, err := strconv.Atoi(b)
				if err != nil {
					return nil, fmt.Errorf("corpus: bad bug list %q", fields[4])
				}
				meta.Bugs = append(meta.Bugs, v)
			}
		}
		res.Metas = append(res.Metas, meta)
	}

	// Optional RATES section.
	line, err := br.ReadString('\n')
	if err == nil || (err == io.EOF && strings.TrimSpace(line) != "") {
		var n int
		if _, serr := fmt.Sscanf(line, "RATES %d", &n); serr == nil {
			for i := 0; i < n; i++ {
				rl, rerr := br.ReadString('\n')
				if rerr != nil && !(rerr == io.EOF && rl != "") {
					return nil, fmt.Errorf("corpus: rates truncated at %d", i)
				}
				v, perr := strconv.ParseFloat(strings.TrimSpace(rl), 64)
				if perr != nil {
					return nil, fmt.Errorf("corpus: bad rate %q", strings.TrimSpace(rl))
				}
				res.Rates = append(res.Rates, v)
			}
		}
	}
	return res, nil
}
