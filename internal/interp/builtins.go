package interp

import (
	"strings"

	"cbi/internal/lang"
)

// callBuiltin dispatches a builtin call from the tree-walker.
func (in *Interp) callBuiltin(f *frame, c *lang.Call, args []Value) Value {
	return in.st.CallBuiltin(c.Name, args)
}

// CallBuiltin executes a builtin by name. Argument counts and types
// were checked by the resolver, but corrupted values can still reach
// here, so every accessor re-validates kinds and traps on confusion.
// Shared by the tree-walking interpreter and the bytecode VM.
func (st *State) CallBuiltin(name string, args []Value) Value {
	wantInt := func(i int) int64 {
		if args[i].Kind != KInt {
			st.Trap(TrapTypeConfusion, "%s: argument %d is not an integer", name, i+1)
		}
		return args[i].Int
	}
	wantStr := func(i int) string {
		if args[i].Kind != KStr {
			st.Trap(TrapTypeConfusion, "%s: argument %d is not a string", name, i+1)
		}
		return args[i].Str
	}

	switch name {
	case "print":
		// Debug output: discarded. Subject programs use output() for
		// oracle-visible results.
		return Value{}
	case "output":
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(a.String())
		}
		st.out.Output = append(st.out.Output, sb.String())
		return Value{}
	case "fail":
		st.Trap(TrapExplicitFail, "%s", wantStr(0))
	case "arg":
		i := wantInt(0)
		if i < 0 || int(i) >= len(st.input.Args) {
			return IntVal(0)
		}
		return IntVal(st.input.Args[i])
	case "nargs":
		return IntVal(int64(len(st.input.Args)))
	case "sarg":
		i := wantInt(0)
		if i < 0 || int(i) >= len(st.input.SArgs) {
			return StrVal("")
		}
		return StrVal(st.input.SArgs[i])
	case "nsargs":
		return IntVal(int64(len(st.input.SArgs)))
	case "read":
		if st.streamPos >= len(st.input.Stream) {
			return IntVal(-1)
		}
		v := st.input.Stream[st.streamPos]
		st.streamPos++
		return IntVal(v)
	case "strlen":
		return IntVal(int64(len(wantStr(0))))
	case "strcmp":
		return IntVal(int64(strings.Compare(wantStr(0), wantStr(1))))
	case "strcat":
		return StrVal(wantStr(0) + wantStr(1))
	case "substr":
		s := wantStr(0)
		i, n := wantInt(1), wantInt(2)
		if i < 0 || n < 0 || i+n > int64(len(s)) {
			st.Trap(TrapStringRange, "substr(%q, %d, %d)", s, i, n)
		}
		return StrVal(s[i : i+n])
	case "char_at":
		s := wantStr(0)
		i := wantInt(1)
		if i < 0 || i >= int64(len(s)) {
			st.Trap(TrapStringRange, "char_at(%q, %d)", s, i)
		}
		return IntVal(int64(s[i]))
	case "itoa":
		return StrVal(IntVal(wantInt(0)).String())
	case "hash":
		// FNV-1a, folded to a non-negative int.
		s := wantStr(0)
		var h uint64 = 1469598103934665603
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		return IntVal(int64(h >> 1))
	case "rand":
		n := wantInt(0)
		if n <= 0 {
			return IntVal(0)
		}
		return IntVal(st.userRNG.intn(n))
	case "len":
		p := args[0]
		if p.Kind != KPtr {
			st.Trap(TrapTypeConfusion, "len: argument is not a pointer")
		}
		if p.IsNull() {
			st.Trap(TrapNullDeref, "len(null)")
		}
		n, ok := st.BlockLen(p.Block, p.Off)
		if !ok {
			st.Trap(TrapOutOfBounds, "len: pointer outside its block")
		}
		return IntVal(int64(n))
	case "observe_bug":
		k := int(wantInt(0))
		if !st.bugSeen[k] {
			st.bugSeen[k] = true
			st.out.BugsObserved = append(st.out.BugsObserved, k)
		}
		return Value{}
	}
	st.Trap(TrapTypeConfusion, "internal: unknown builtin %s", name)
	return Value{}
}
