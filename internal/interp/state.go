package interp

import (
	"fmt"

	"cbi/internal/lang"
)

// State is the machine state shared by MiniC execution engines: the
// tree-walking interpreter in this package and the bytecode VM in
// internal/vm. Keeping the heap model, trap discipline, RNG streams,
// builtins, and outcome bookkeeping in one place guarantees the two
// engines have identical observable semantics (the vm package's
// differential tests check this on whole corpora).
type State struct {
	// Limits bound the run; see DefaultLimits.
	Limits Limits
	// Mem configures the randomized heap layout.
	Mem MemModel

	heap      *heap
	Globals   []Value
	userRNG   *rng
	layoutRNG *rng
	input     Input
	streamPos int
	prevAlloc int
	steps     int64
	out       Outcome
	bugSeen   map[int]bool
}

// NewState returns a State with default limits and memory model.
func NewState() *State {
	return &State{Limits: DefaultLimits, Mem: DefaultMemModel}
}

// Reset prepares the state for one run of prog on input: fresh heap,
// zeroed step count, reinitialized globals, reseeded RNG streams.
func (st *State) Reset(prog *lang.Program, input Input) {
	st.heap = newHeap()
	st.Globals = make([]Value, prog.GlobalSlots)
	st.userRNG = newRNG(input.Seed*0x5851f42d + 0x14057b7e)
	st.layoutRNG = newRNG(input.Seed*0x2545f491 + 0x4f6cdd1d)
	st.input = input
	st.streamPos = 0
	st.prevAlloc = 0
	st.steps = 0
	st.out = Outcome{}
	st.bugSeen = map[int]bool{}
	for _, g := range prog.Globals {
		if g.Init == nil {
			st.Globals[g.Sym.Slot] = zeroOf(g.DeclType)
			continue
		}
		switch lit := g.Init.(type) {
		case *lang.IntLit:
			st.Globals[g.Sym.Slot] = IntVal(lit.Value)
		case *lang.StrLit:
			st.Globals[g.Sym.Slot] = StrVal(lit.Value)
		case *lang.NullLit:
			st.Globals[g.Sym.Slot] = Null
		}
	}
}

// Outcome returns the run outcome being accumulated.
func (st *State) Outcome() *Outcome { return &st.out }

// Steps returns the number of steps executed so far.
func (st *State) Steps() int64 { return st.steps }

// Trap aborts the run with the given fault; it panics internally and
// is caught by the engine's RecoverTrap.
func (st *State) Trap(kind TrapKind, format string, args ...any) {
	panic(trapPanic{kind: kind, msg: fmt.Sprintf(format, args...)})
}

// Step counts one execution step and traps on the step limit.
func (st *State) Step() {
	st.steps++
	if st.steps > st.Limits.Steps {
		st.Trap(TrapStepLimit, "exceeded %d steps", st.Limits.Steps)
	}
}

// RecoverTrap converts a trap panic (as produced by Trap) into a
// crashed Outcome with the given stack capture. Non-trap panics are
// re-raised. Call from a deferred function:
//
//	defer func() { st.RecoverTrap(recover(), captureStack) }()
func (st *State) RecoverTrap(r any, capture func() []StackEntry) {
	if r == nil {
		return
	}
	tp, ok := r.(trapPanic)
	if !ok {
		panic(r)
	}
	st.out.Crashed = true
	st.out.Trap = tp.kind
	st.out.Msg = tp.msg
	st.out.Stack = capture()
	st.out.Steps = st.steps
}

// Allocate creates a heap block of count elements of type elem, filled
// with typed zero values, with randomized adjacency to the previous
// allocation.
func (st *State) Allocate(count int, elem lang.Type) Value {
	elemSize := lang.SizeOf(elem)
	if count < 0 {
		st.Trap(TrapBadAlloc, "negative allocation size %d", count)
	}
	if st.heap.slots+count*elemSize > st.Limits.HeapSlots {
		st.Trap(TrapOutOfMemory, "heap limit of %d slots exceeded", st.Limits.HeapSlots)
	}
	adj := st.layoutRNG.chance(st.Mem.AdjacentProb)
	id := st.heap.alloc(count, elemSize, st.prevAlloc, adj)
	st.prevAlloc = id
	slots := st.heap.blocks[id].slots
	if sct, ok := elem.(*lang.StructType); ok {
		for i := range slots {
			slots[i] = zeroOf(sct.Fields[i%elemSize].Typ)
		}
	} else {
		z := zeroOf(elem)
		if z.Kind != KInt {
			for i := range slots {
				slots[i] = z
			}
		}
	}
	return PtrVal(id, 0)
}

// HeapLoad reads the heap through the overrun-adjacency model; ok is
// false for unmapped accesses.
func (st *State) HeapLoad(block, slot int) (Value, bool) {
	return st.heap.load(block, slot)
}

// HeapStore writes the heap through the overrun-adjacency model; false
// means unmapped.
func (st *State) HeapStore(block, slot int, v Value) bool {
	return st.heap.store(block, slot, v)
}

// BlockLen implements the len() builtin's view of a pointer.
func (st *State) BlockLen(block, off int) (int, bool) {
	return st.heap.blockLen(block, off)
}
