package interp

import "cbi/internal/lang"

// Input is the test input for one run: an argument vector, a string
// argument vector, an integer input stream for read(), and the seed that
// drives both rand() and the randomized heap layout.
type Input struct {
	Args   []int64
	SArgs  []string
	Stream []int64
	Seed   int64
}

// SymReader lets an Observer read the current value of an int-typed
// variable during a scalar-assignment event. ok is false if the variable
// currently holds a non-integer (e.g. corrupted) value.
type SymReader func(sym *lang.Symbol) (val int64, ok bool)

// Observer receives instrumentation events. The interpreter invokes it
// unconditionally at every event point; sampling happens inside the
// observer (see the instrument package). A nil Observer disables
// instrumentation entirely.
type Observer interface {
	// Branch fires when a conditional is evaluated: if/while/for
	// conditions and the implicit conditionals of && and ||.
	Branch(id lang.NodeID, cond bool)
	// IntReturn fires when a call to an int-returning function (user or
	// builtin) returns.
	IntReturn(id lang.NodeID, val int64)
	// ScalarAssign fires when an int value is stored by an assignment
	// or initialized declaration. oldOK is false when the target
	// location did not previously hold an int. read gives access to
	// in-scope variables for the scalar-pairs scheme.
	ScalarAssign(id lang.NodeID, newVal, oldVal int64, oldOK bool, read SymReader)
	// PtrAssign fires when a pointer value is stored by an assignment
	// or initialized declaration of pointer-typed target — the hook
	// for the nullness scheme, the heap-predicate extension the paper
	// flags as future work (§2, §4.2.4).
	PtrAssign(id lang.NodeID, isNull bool)
	// PtrDeref fires when a pointer is about to be dereferenced by
	// p[i] or p->f, before the null check — so a null dereference is
	// observed in the feedback report of the run it crashes.
	PtrDeref(id lang.NodeID, isNull bool)
}

// Limits bound a run's resources.
type Limits struct {
	// Steps is the maximum number of interpreter steps (0 = default).
	Steps int64
	// Frames is the maximum call depth (0 = default).
	Frames int
	// HeapSlots is the maximum number of live heap slots (0 = default).
	HeapSlots int
}

// DefaultLimits are used where Limits fields are zero.
var DefaultLimits = Limits{Steps: 4_000_000, Frames: 256, HeapSlots: 1 << 22}

// MemModel configures the randomized heap layout.
type MemModel struct {
	// AdjacentProb is the probability that a fresh allocation is laid
	// out directly after the previous one, making small overruns
	// corrupt it silently rather than trap.
	AdjacentProb float64
}

// DefaultMemModel matches the behaviour described in DESIGN.md.
var DefaultMemModel = MemModel{AdjacentProb: 0.8}

// Interp executes a resolved MiniC program on one input.
type Interp struct {
	prog  *lang.Program
	obs   Observer
	st    *State
	stack []*frame
}

type frame struct {
	fn     *lang.FuncDecl
	locals []Value
	// line tracks the statement currently executing, for stack traces.
	line int
	ret  Value
}

// control is the statement-level control-flow result.
type control int

const (
	ctlNone control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// trapPanic carries a trap out of the recursive evaluator.
type trapPanic struct {
	kind TrapKind
	msg  string
}

// New creates an interpreter for prog. The program must have been
// successfully resolved. obs may be nil.
func New(prog *lang.Program, obs Observer) *Interp {
	return &Interp{prog: prog, obs: obs, st: NewState()}
}

// SetLimits overrides resource limits; zero fields keep defaults.
func (in *Interp) SetLimits(l Limits) {
	if l.Steps > 0 {
		in.st.Limits.Steps = l.Steps
	}
	if l.Frames > 0 {
		in.st.Limits.Frames = l.Frames
	}
	if l.HeapSlots > 0 {
		in.st.Limits.HeapSlots = l.HeapSlots
	}
}

// SetMemModel overrides the heap layout model.
func (in *Interp) SetMemModel(m MemModel) { in.st.Mem = m }

// Run executes the program's main function on the given input and
// returns the run outcome. Run may be called repeatedly; each call is an
// independent run.
func Run(prog *lang.Program, input Input, obs Observer) *Outcome {
	return New(prog, obs).Run(input)
}

// Run executes one run.
func (in *Interp) Run(input Input) (result *Outcome) {
	in.st.Reset(in.prog, input)
	in.stack = in.stack[:0]

	defer func() {
		if r := recover(); r != nil {
			in.st.RecoverTrap(r, in.captureStack)
			in.stack = in.stack[:0]
			result = in.st.Outcome()
		}
	}()

	main := in.prog.FuncByName["main"]
	ret := in.callFunc(main, nil, 0)
	out := in.st.Outcome()
	out.ExitCode = ret.Int
	out.Steps = in.st.Steps()
	return out
}

func zeroOf(t lang.Type) Value {
	switch {
	case t.Equal(lang.String):
		return StrVal("")
	case lang.IsPointer(t):
		return Null
	default:
		return IntVal(0)
	}
}

func (in *Interp) trap(kind TrapKind, format string, args ...any) {
	in.st.Trap(kind, format, args...)
}

func (in *Interp) captureStack() []StackEntry {
	out := make([]StackEntry, 0, len(in.stack))
	for i := len(in.stack) - 1; i >= 0; i-- {
		f := in.stack[i]
		out = append(out, StackEntry{Func: f.fn.Name, Line: f.line})
	}
	return out
}

func (in *Interp) step() { in.st.Step() }

func (in *Interp) callFunc(fn *lang.FuncDecl, args []Value, callLine int) Value {
	if len(in.stack) >= in.st.Limits.Frames {
		in.trap(TrapStackOverflow, "call depth exceeds %d", in.st.Limits.Frames)
	}
	f := &frame{fn: fn, locals: make([]Value, fn.Locals), line: fn.Pos().Line}
	for i := range fn.Params {
		f.locals[fn.Params[i].Sym.Slot] = args[i]
	}
	for i := len(fn.Params); i < fn.Locals; i++ {
		f.locals[i] = IntVal(0)
	}
	in.stack = append(in.stack, f)
	ctl := in.execBlock(f, fn.Body)
	in.stack = in.stack[:len(in.stack)-1]
	if ctl == ctlReturn {
		return f.ret
	}
	// Falling off the end returns the zero value (C-ish leniency; the
	// resolver does not do flow analysis).
	if fn.Ret.Equal(lang.Void) {
		return Value{}
	}
	return zeroOf(fn.Ret)
}

func (in *Interp) execBlock(f *frame, b *lang.Block) control {
	for _, s := range b.Stmts {
		if ctl := in.execStmt(f, s); ctl != ctlNone {
			return ctl
		}
	}
	return ctlNone
}

func (in *Interp) execStmt(f *frame, s lang.Stmt) control {
	in.step()
	f.line = s.Pos().Line
	switch st := s.(type) {
	case *lang.VarDecl:
		var v Value
		if st.Init != nil {
			v = in.evalExpr(f, st.Init)
		} else {
			v = zeroOf(st.DeclType)
		}
		old := f.locals[st.Sym.Slot]
		f.locals[st.Sym.Slot] = v
		if in.obs != nil && st.Init != nil {
			if v.Kind == KInt && lang.IsScalar(st.DeclType) {
				in.obs.ScalarAssign(st.ID(), v.Int, old.Int, old.Kind == KInt, in.symReader(f))
			} else if v.Kind == KPtr && lang.IsPointer(st.DeclType) {
				in.obs.PtrAssign(st.ID(), v.IsNull())
			}
		}
		return ctlNone
	case *lang.Assign:
		in.execAssign(f, st)
		return ctlNone
	case *lang.If:
		c := in.evalCond(f, st.Cond)
		if c {
			return in.execBlock(f, st.Then)
		}
		if st.Else != nil {
			return in.execStmt(f, st.Else)
		}
		return ctlNone
	case *lang.While:
		for {
			if !in.evalCond(f, st.Cond) {
				return ctlNone
			}
			switch in.execBlock(f, st.Body) {
			case ctlBreak:
				return ctlNone
			case ctlReturn:
				return ctlReturn
			}
		}
	case *lang.For:
		if st.Init != nil {
			if ctl := in.execStmt(f, st.Init); ctl != ctlNone {
				return ctl
			}
		}
		for {
			if st.Cond != nil && !in.evalCond(f, st.Cond) {
				return ctlNone
			}
			switch in.execBlock(f, st.Body) {
			case ctlBreak:
				return ctlNone
			case ctlReturn:
				return ctlReturn
			}
			if st.Post != nil {
				if ctl := in.execStmt(f, st.Post); ctl != ctlNone {
					return ctl
				}
			}
		}
	case *lang.Return:
		if st.Value != nil {
			f.ret = in.evalExpr(f, st.Value)
		}
		return ctlReturn
	case *lang.Break:
		return ctlBreak
	case *lang.Continue:
		return ctlContinue
	case *lang.ExprStmt:
		in.evalExpr(f, st.E)
		return ctlNone
	case *lang.Block:
		return in.execBlock(f, st)
	}
	in.trap(TrapTypeConfusion, "internal: unknown statement %T", s)
	return ctlNone
}

// location is an lvalue: either a local/global slot or a heap cell.
type location struct {
	heapBlock int // 0 => variable
	heapSlot  int
	slots     []Value // frame or globals backing array (variable case)
	idx       int
}

func (in *Interp) loadLoc(loc location) (Value, bool) {
	if loc.heapBlock != 0 {
		return in.st.HeapLoad(loc.heapBlock, loc.heapSlot)
	}
	return loc.slots[loc.idx], true
}

func (in *Interp) storeLoc(loc location, v Value) bool {
	if loc.heapBlock != 0 {
		return in.st.HeapStore(loc.heapBlock, loc.heapSlot, v)
	}
	loc.slots[loc.idx] = v
	return true
}

// evalLValue computes the location denoted by an lvalue expression.
func (in *Interp) evalLValue(f *frame, e lang.Expr) location {
	switch ex := e.(type) {
	case *lang.VarRef:
		sym := ex.Sym
		if sym.Kind == lang.SymGlobal {
			return location{slots: in.st.Globals, idx: sym.Slot}
		}
		return location{slots: f.locals, idx: sym.Slot}
	case *lang.Index:
		base := in.evalExpr(f, ex.Base)
		idx := in.evalInt(f, ex.Idx)
		if base.Kind != KPtr {
			in.trap(TrapTypeConfusion, "indexing a non-pointer value")
		}
		if in.obs != nil {
			in.obs.PtrDeref(ex.ID(), base.IsNull())
		}
		if base.IsNull() {
			in.trap(TrapNullDeref, "indexing null pointer")
		}
		elemSize := lang.SizeOf(elemTypeOf(ex.Base))
		slot := base.Off + int(idx)*elemSize
		return location{heapBlock: base.Block, heapSlot: slot}
	case *lang.Field:
		if ex.Arrow {
			base := in.evalExpr(f, ex.Base)
			if base.Kind != KPtr {
				in.trap(TrapTypeConfusion, "-> on a non-pointer value")
			}
			if in.obs != nil {
				in.obs.PtrDeref(ex.ID(), base.IsNull())
			}
			if base.IsNull() {
				in.trap(TrapNullDeref, "-> on null pointer")
			}
			return location{heapBlock: base.Block, heapSlot: base.Off + ex.FieldIndex}
		}
		loc := in.evalLValue(f, ex.Base)
		if loc.heapBlock == 0 {
			in.trap(TrapTypeConfusion, "struct value outside the heap")
		}
		loc.heapSlot += ex.FieldIndex
		return loc
	}
	in.trap(TrapTypeConfusion, "internal: not an lvalue: %T", e)
	return location{}
}

// elemTypeOf returns the pointee type of a pointer-typed expression.
func elemTypeOf(base lang.Expr) lang.Type {
	if pt, ok := base.Type().(*lang.PointerType); ok {
		return pt.Elem
	}
	return lang.Int
}

func (in *Interp) execAssign(f *frame, st *lang.Assign) {
	loc := in.evalLValue(f, st.LHS)
	v := in.evalExpr(f, st.Value)
	old, oldMapped := in.loadLoc(loc)
	if !in.storeLoc(loc, v) {
		in.trap(TrapOutOfBounds, "write to unmapped memory")
	}
	if in.obs != nil {
		if v.Kind == KInt && lang.IsScalar(st.LHS.Type()) {
			in.obs.ScalarAssign(st.ID(), v.Int, old.Int, oldMapped && old.Kind == KInt, in.symReader(f))
		} else if v.Kind == KPtr && lang.IsPointer(st.LHS.Type()) {
			in.obs.PtrAssign(st.ID(), v.IsNull())
		}
	}
}

// symReader returns a SymReader closed over the current frame.
func (in *Interp) symReader(f *frame) SymReader {
	return func(sym *lang.Symbol) (int64, bool) {
		var v Value
		if sym.Kind == lang.SymGlobal {
			v = in.st.Globals[sym.Slot]
		} else {
			v = f.locals[sym.Slot]
		}
		if v.Kind != KInt {
			return 0, false
		}
		return v.Int, true
	}
}

func (in *Interp) evalCond(f *frame, e lang.Expr) bool {
	v := in.evalExpr(f, e)
	if v.Kind != KInt {
		in.trap(TrapTypeConfusion, "condition is not an integer")
	}
	c := v.Int != 0
	if in.obs != nil {
		in.obs.Branch(e.ID(), c)
	}
	return c
}

func (in *Interp) evalInt(f *frame, e lang.Expr) int64 {
	v := in.evalExpr(f, e)
	if v.Kind != KInt {
		in.trap(TrapTypeConfusion, "expected integer, found %s", v)
	}
	return v.Int
}

func (in *Interp) evalExpr(f *frame, e lang.Expr) Value {
	in.step()
	switch ex := e.(type) {
	case *lang.IntLit:
		return IntVal(ex.Value)
	case *lang.StrLit:
		return StrVal(ex.Value)
	case *lang.NullLit:
		return Null
	case *lang.VarRef:
		if ex.Sym.Kind == lang.SymGlobal {
			return in.st.Globals[ex.Sym.Slot]
		}
		return f.locals[ex.Sym.Slot]
	case *lang.Binary:
		return in.evalBinary(f, ex)
	case *lang.Unary:
		v := in.evalInt(f, ex.E)
		if ex.Op == lang.OpNeg {
			return IntVal(-v)
		}
		if v == 0 {
			return IntVal(1)
		}
		return IntVal(0)
	case *lang.Call:
		return in.evalCall(f, ex)
	case *lang.Index, *lang.Field:
		loc := in.evalLValue(f, e)
		v, ok := in.loadLoc(loc)
		if !ok {
			in.trap(TrapOutOfBounds, "read from unmapped memory")
		}
		return v
	case *lang.NewArray:
		n := in.evalInt(f, ex.Count)
		return in.allocate(int(n), ex.Elem)
	case *lang.NewStruct:
		return in.allocate(1, ex.Struct)
	}
	in.trap(TrapTypeConfusion, "internal: unknown expression %T", e)
	return Value{}
}

func (in *Interp) allocate(count int, elem lang.Type) Value {
	return in.st.Allocate(count, elem)
}

func (in *Interp) evalBinary(f *frame, b *lang.Binary) Value {
	switch b.Op {
	case lang.OpAnd:
		l := in.evalInt(f, b.L)
		// The right operand is guarded by an implicit conditional on
		// the left value: a branch site. It is keyed by the left
		// operand's node so it never collides with a Branch event for
		// the enclosing statement condition (which is keyed by the
		// condition root — possibly this && node itself).
		if in.obs != nil {
			in.obs.Branch(b.L.ID(), l != 0)
		}
		if l == 0 {
			return IntVal(0)
		}
		r := in.evalInt(f, b.R)
		return boolVal(r != 0)
	case lang.OpOr:
		l := in.evalInt(f, b.L)
		if in.obs != nil {
			in.obs.Branch(b.L.ID(), l != 0)
		}
		if l != 0 {
			return IntVal(1)
		}
		r := in.evalInt(f, b.R)
		return boolVal(r != 0)
	}

	l := in.evalExpr(f, b.L)
	r := in.evalExpr(f, b.R)

	switch b.Op {
	case lang.OpEq, lang.OpNe:
		eq, ok := valuesEqual(l, r)
		if !ok {
			in.trap(TrapTypeConfusion, "comparing %s with %s", l, r)
		}
		if b.Op == lang.OpNe {
			eq = !eq
		}
		return boolVal(eq)
	case lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe:
		if l.Kind == KStr && r.Kind == KStr {
			return boolVal(strOrder(b.Op, l.Str, r.Str))
		}
		if l.Kind != KInt || r.Kind != KInt {
			in.trap(TrapTypeConfusion, "ordering %s with %s", l, r)
		}
		return boolVal(intOrder(b.Op, l.Int, r.Int))
	case lang.OpAdd:
		if l.Kind == KStr && r.Kind == KStr {
			return StrVal(l.Str + r.Str)
		}
	}

	if l.Kind != KInt || r.Kind != KInt {
		in.trap(TrapTypeConfusion, "arithmetic on %s and %s", l, r)
	}
	switch b.Op {
	case lang.OpAdd:
		return IntVal(l.Int + r.Int)
	case lang.OpSub:
		return IntVal(l.Int - r.Int)
	case lang.OpMul:
		return IntVal(l.Int * r.Int)
	case lang.OpDiv:
		if r.Int == 0 {
			in.trap(TrapDivByZero, "division by zero")
		}
		return IntVal(DivWrap(l.Int, r.Int))
	case lang.OpMod:
		if r.Int == 0 {
			in.trap(TrapDivByZero, "modulo by zero")
		}
		return IntVal(ModWrap(l.Int, r.Int))
	}
	in.trap(TrapTypeConfusion, "internal: unknown operator %s", b.Op)
	return Value{}
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// DivWrap is MiniC's integer division: Go's, except that
// MinInt64 / -1 wraps to MinInt64 instead of panicking (two's
// complement overflow, like C on most hardware).
func DivWrap(l, r int64) int64 {
	if r == -1 {
		return -l // wraps for MinInt64
	}
	return l / r
}

// ModWrap is MiniC's integer modulo; MinInt64 % -1 is defined as 0.
func ModWrap(l, r int64) int64 {
	if r == -1 {
		return 0
	}
	return l % r
}

// ValuesEqual implements MiniC's == on two runtime values; ok is false
// when the kinds are incomparable (type confusion). Shared with the
// bytecode VM.
func ValuesEqual(l, r Value) (eq, ok bool) { return valuesEqual(l, r) }

func valuesEqual(l, r Value) (eq, ok bool) {
	switch {
	case l.Kind == KInt && r.Kind == KInt:
		return l.Int == r.Int, true
	case l.Kind == KStr && r.Kind == KStr:
		return l.Str == r.Str, true
	case l.Kind == KPtr && r.Kind == KPtr:
		return l.Block == r.Block && (l.Block == 0 || l.Off == r.Off), true
	}
	return false, false
}

func intOrder(op lang.BinOp, l, r int64) bool {
	switch op {
	case lang.OpLt:
		return l < r
	case lang.OpLe:
		return l <= r
	case lang.OpGt:
		return l > r
	default:
		return l >= r
	}
}

func strOrder(op lang.BinOp, l, r string) bool {
	switch op {
	case lang.OpLt:
		return l < r
	case lang.OpLe:
		return l <= r
	case lang.OpGt:
		return l > r
	default:
		return l >= r
	}
}

func (in *Interp) evalCall(f *frame, c *lang.Call) Value {
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		args[i] = in.evalExpr(f, a)
	}
	var ret Value
	if c.Builtin != nil {
		ret = in.callBuiltin(f, c, args)
	} else {
		ret = in.callFunc(c.Fn, args, c.Pos().Line)
	}
	if in.obs != nil && ret.Kind == KInt && c.Type().Equal(lang.Int) {
		in.obs.IntReturn(c.ID(), ret.Int)
	}
	return ret
}
