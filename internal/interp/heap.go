package interp

// heap is the simulated C-like memory. Allocations are slot arrays with
// known bounds, but out-of-bounds accesses are resolved through a
// randomized layout model: with probability adjProb a fresh allocation
// lands directly after the previous one, in which case a small overrun
// reads or corrupts the neighbour instead of trapping. Larger overruns
// (past the neighbour, or with no neighbour) always trap — the analogue
// of running off the mapped page.
type heap struct {
	blocks []hblock
	// slots is the total number of live value slots, for the OOM limit.
	slots int
}

type hblock struct {
	slots []Value
	// elemSize is the number of slots per language-level element.
	elemSize int
	// next is the block id physically adjacent after this one (0 if the
	// layout left a gap).
	next int
}

func newHeap() *heap {
	// Block 0 is the null block and is never used.
	return &heap{blocks: make([]hblock, 1)}
}

// alloc creates a block of count elements of elemSize slots each. adj
// tells whether the block is physically adjacent to prev (the previously
// allocated block id).
func (h *heap) alloc(count, elemSize int, prev int, adj bool) int {
	id := len(h.blocks)
	h.blocks = append(h.blocks, hblock{
		slots:    make([]Value, count*elemSize),
		elemSize: elemSize,
	})
	h.slots += count * elemSize
	if adj && prev > 0 && prev < id {
		h.blocks[prev].next = id
	}
	return id
}

// resolve maps (block, slot) to the final (block, slot) after modelling
// overruns through adjacency. ok=false means the access hits unmapped
// memory and must trap.
func (h *heap) resolve(block, slot int) (int, int, bool) {
	if block <= 0 || block >= len(h.blocks) {
		return 0, 0, false
	}
	if slot < 0 {
		// Underrun: treat the space before a block as unmapped.
		return 0, 0, false
	}
	b := &h.blocks[block]
	if slot < len(b.slots) {
		return block, slot, true
	}
	// Overrun: spill into the adjacent block, if any.
	over := slot - len(b.slots)
	if b.next != 0 {
		nb := &h.blocks[b.next]
		if over < len(nb.slots) {
			return b.next, over, true
		}
	}
	return 0, 0, false
}

// load reads the value at (block, slot); ok=false means unmapped.
func (h *heap) load(block, slot int) (Value, bool) {
	rb, rs, ok := h.resolve(block, slot)
	if !ok {
		return Value{}, false
	}
	return h.blocks[rb].slots[rs], true
}

// store writes the value at (block, slot); ok=false means unmapped.
func (h *heap) store(block, slot int, v Value) bool {
	rb, rs, ok := h.resolve(block, slot)
	if !ok {
		return false
	}
	h.blocks[rb].slots[rs] = v
	return true
}

// inBounds reports whether the access stays inside the block proper
// (i.e. is not an overrun resolved through adjacency).
func (h *heap) inBounds(block, slot int) bool {
	if block <= 0 || block >= len(h.blocks) {
		return false
	}
	return slot >= 0 && slot < len(h.blocks[block].slots)
}

// blockLen returns the element count of the block pointed to, measured
// from offset off (the len() builtin).
func (h *heap) blockLen(block, off int) (int, bool) {
	if block <= 0 || block >= len(h.blocks) {
		return 0, false
	}
	b := &h.blocks[block]
	total := len(b.slots) / b.elemSize
	idx := off / b.elemSize
	if idx < 0 || idx > total {
		return 0, false
	}
	return total - idx, true
}
