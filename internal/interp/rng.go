package interp

// rng is a small splitmix64 PRNG. We use our own generator rather than
// math/rand so that runs are bit-for-bit reproducible across Go versions
// — experiment tables depend on stable seeds.
type rng struct{ state uint64 }

func newRNG(seed int64) *rng { return &rng{state: uint64(seed)} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n). n must be positive.
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// chance returns true with probability p (0..1).
func (r *rng) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(r.next()>>11)/(1<<53) < p
}
