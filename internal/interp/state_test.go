package interp

import (
	"math"
	"testing"

	"cbi/internal/lang"
)

func TestDivModWrap(t *testing.T) {
	minInt := int64(math.MinInt64)
	if got := DivWrap(minInt, -1); got != minInt {
		t.Errorf("DivWrap(MinInt64, -1) = %d", got)
	}
	if got := ModWrap(minInt, -1); got != 0 {
		t.Errorf("ModWrap(MinInt64, -1) = %d", got)
	}
	if got := DivWrap(7, 2); got != 3 {
		t.Errorf("DivWrap(7,2) = %d", got)
	}
	if got := ModWrap(-7, 3); got != -1 {
		t.Errorf("ModWrap(-7,3) = %d", got)
	}
}

func TestValuesEqualExported(t *testing.T) {
	cases := []struct {
		l, r   Value
		eq, ok bool
	}{
		{IntVal(3), IntVal(3), true, true},
		{IntVal(3), IntVal(4), false, true},
		{StrVal("a"), StrVal("a"), true, true},
		{Null, Null, true, true},
		{PtrVal(1, 0), PtrVal(1, 0), true, true},
		{PtrVal(1, 0), PtrVal(1, 2), false, true},
		{PtrVal(1, 0), Null, false, true},
		{IntVal(0), StrVal("0"), false, false},
		{IntVal(0), Null, false, false},
	}
	for _, c := range cases {
		eq, ok := ValuesEqual(c.l, c.r)
		if eq != c.eq || ok != c.ok {
			t.Errorf("ValuesEqual(%s, %s) = %v,%v want %v,%v", c.l, c.r, eq, ok, c.eq, c.ok)
		}
	}
}

// trapOf runs fn inside a State trap guard and returns the recorded
// trap kind.
func trapOf(t *testing.T, st *State, fn func()) TrapKind {
	t.Helper()
	done := make(chan TrapKind, 1)
	func() {
		defer func() {
			st.RecoverTrap(recover(), func() []StackEntry { return nil })
			done <- st.Outcome().Trap
		}()
		fn()
	}()
	return <-done
}

func newResetState(t *testing.T, seed int64) *State {
	t.Helper()
	prog, err := lang.Parse("t", "int main() { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Resolve(prog); err != nil {
		t.Fatal(err)
	}
	st := NewState()
	st.Reset(prog, Input{Seed: seed, SArgs: []string{"ab"}, Args: []int64{5}, Stream: []int64{1, 2}})
	return st
}

func TestStateBuiltinTypeConfusion(t *testing.T) {
	st := newResetState(t, 1)
	// A corrupted (pointer) value reaching an int-typed builtin arg
	// must trap as type confusion, not panic the host.
	if k := trapOf(t, st, func() { st.CallBuiltin("strlen", []Value{IntVal(3)}) }); k != TrapTypeConfusion {
		t.Errorf("strlen(int) trap = %s", k)
	}
	st = newResetState(t, 1)
	if k := trapOf(t, st, func() { st.CallBuiltin("char_at", []Value{StrVal("ab"), StrVal("x")}) }); k != TrapTypeConfusion {
		t.Errorf("char_at(str, str) trap = %s", k)
	}
	st = newResetState(t, 1)
	if k := trapOf(t, st, func() { st.CallBuiltin("len", []Value{StrVal("nope")}) }); k != TrapTypeConfusion {
		t.Errorf("len(str) trap = %s", k)
	}
}

func TestStateBuiltinBounds(t *testing.T) {
	st := newResetState(t, 2)
	// Out-of-range arg()/sarg() indices return zero values, not traps
	// (the input vector is conceptually infinite, zero-padded).
	if v := st.CallBuiltin("arg", []Value{IntVal(99)}); v.Int != 0 {
		t.Errorf("arg(99) = %v", v)
	}
	if v := st.CallBuiltin("sarg", []Value{IntVal(-1)}); v.Str != "" {
		t.Errorf("sarg(-1) = %v", v)
	}
	if v := st.CallBuiltin("nargs", nil); v.Int != 1 {
		t.Errorf("nargs = %v", v)
	}
	if v := st.CallBuiltin("nsargs", nil); v.Int != 1 {
		t.Errorf("nsargs = %v", v)
	}
	// Stream drains to -1.
	if v := st.CallBuiltin("read", nil); v.Int != 1 {
		t.Errorf("read#1 = %v", v)
	}
	st.CallBuiltin("read", nil)
	if v := st.CallBuiltin("read", nil); v.Int != -1 {
		t.Errorf("read at EOF = %v", v)
	}
}

func TestStateHashDeterministic(t *testing.T) {
	a := newResetState(t, 3)
	b := newResetState(t, 4)
	ha := a.CallBuiltin("hash", []Value{StrVal("cbi")})
	hb := b.CallBuiltin("hash", []Value{StrVal("cbi")})
	if ha.Int != hb.Int {
		t.Error("hash depends on run state")
	}
	if ha.Int < 0 {
		t.Error("hash must be non-negative")
	}
	if hc := a.CallBuiltin("hash", []Value{StrVal("cbj")}); hc.Int == ha.Int {
		t.Error("hash collision on near strings (suspicious)")
	}
}

func TestStateAllocateTypedZeros(t *testing.T) {
	st := newResetState(t, 5)
	ptr := st.Allocate(3, lang.String)
	v, ok := st.HeapLoad(ptr.Block, 0)
	if !ok || v.Kind != KStr || v.Str != "" {
		t.Errorf("string slot zero = %v", v)
	}
	ptr2 := st.Allocate(2, lang.Pointer(lang.Int))
	v2, _ := st.HeapLoad(ptr2.Block, 1)
	if !v2.IsNull() {
		t.Errorf("pointer slot zero = %v", v2)
	}
}

func TestStateObserveBugDedup(t *testing.T) {
	st := newResetState(t, 6)
	st.CallBuiltin("observe_bug", []Value{IntVal(4)})
	st.CallBuiltin("observe_bug", []Value{IntVal(4)})
	st.CallBuiltin("observe_bug", []Value{IntVal(2)})
	out := st.Outcome()
	if len(out.BugsObserved) != 2 || out.BugsObserved[0] != 4 || out.BugsObserved[1] != 2 {
		t.Errorf("BugsObserved = %v", out.BugsObserved)
	}
}

func TestStackSignatureEmptyForSuccess(t *testing.T) {
	var o Outcome
	if o.StackSignature() != "" {
		t.Error("successful run has a stack signature")
	}
}

func TestTrapKindStrings(t *testing.T) {
	for k := TrapNone; k <= TrapBadAlloc; k++ {
		if s := k.String(); s == "" || len(s) > 60 {
			t.Errorf("TrapKind(%d).String() = %q", int(k), s)
		}
	}
	if TrapKind(99).String() == "" {
		t.Error("unknown trap kind has empty name")
	}
}
