// Package interp is a tree-walking interpreter for MiniC programs.
//
// It plays the role of native execution in the PLDI 2005 statistical
// debugging paper: it runs subject programs on concrete inputs, reports
// crashes with stack traces, and exposes an Observer hook through which
// predicate instrumentation watches branches, function return values,
// and scalar assignments.
//
// The heap model is deliberately C-like: allocations are bounds-tracked,
// but an out-of-bounds access does not necessarily trap. Depending on a
// per-run randomized layout, an overrun may silently corrupt an
// adjacent allocation instead, producing the delayed, non-deterministic
// failures that make statistical bug isolation interesting (paper §3.1:
// "buffer overrun bugs may or may not cause the program to crash
// depending on runtime system decisions about how data is laid out in
// memory").
package interp

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates runtime values.
type ValueKind uint8

// Runtime value kinds.
const (
	KInt ValueKind = iota
	KStr
	KPtr // Block==0 means null
)

// Value is a MiniC runtime value. The zero Value is the integer 0, which
// doubles as the zero-initialized content of fresh allocations.
type Value struct {
	Kind  ValueKind
	Int   int64
	Str   string
	Block int // heap block id; 0 = null
	Off   int // slot offset within the block
}

// IntVal returns an integer value.
func IntVal(v int64) Value { return Value{Kind: KInt, Int: v} }

// StrVal returns a string value.
func StrVal(s string) Value { return Value{Kind: KStr, Str: s} }

// PtrVal returns a pointer value.
func PtrVal(block, off int) Value { return Value{Kind: KPtr, Block: block, Off: off} }

// Null is the null pointer.
var Null = Value{Kind: KPtr}

// IsNull reports whether v is the null pointer.
func (v Value) IsNull() bool { return v.Kind == KPtr && v.Block == 0 }

// String renders the value for print/output.
func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return strconv.FormatInt(v.Int, 10)
	case KStr:
		return v.Str
	default:
		if v.IsNull() {
			return "null"
		}
		return fmt.Sprintf("ptr(%d+%d)", v.Block, v.Off)
	}
}

// TrapKind classifies run-terminating faults.
type TrapKind int

// Trap kinds.
const (
	TrapNone TrapKind = iota
	TrapNullDeref
	TrapOutOfBounds
	TrapTypeConfusion
	TrapDivByZero
	TrapStringRange
	TrapExplicitFail
	TrapStackOverflow
	TrapStepLimit
	TrapOutOfMemory
	TrapBadAlloc
)

var trapNames = map[TrapKind]string{
	TrapNone:          "none",
	TrapNullDeref:     "null pointer dereference",
	TrapOutOfBounds:   "out-of-bounds access",
	TrapTypeConfusion: "type confusion (corrupted memory)",
	TrapDivByZero:     "division by zero",
	TrapStringRange:   "string index out of range",
	TrapExplicitFail:  "explicit failure",
	TrapStackOverflow: "stack overflow",
	TrapStepLimit:     "step limit exceeded",
	TrapOutOfMemory:   "out of memory",
	TrapBadAlloc:      "invalid allocation size",
}

// String returns a human-readable trap description.
func (k TrapKind) String() string {
	if s, ok := trapNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TrapKind(%d)", int(k))
}

// StackEntry is one frame of a crash stack trace, innermost first.
type StackEntry struct {
	Func string
	Line int
}

// String renders the entry as "func:line".
func (e StackEntry) String() string { return fmt.Sprintf("%s:%d", e.Func, e.Line) }

// Outcome is the result of one program run.
type Outcome struct {
	// Crashed reports whether the run terminated with a trap.
	Crashed bool
	// Trap is the fault kind when Crashed.
	Trap TrapKind
	// Msg is the trap detail (e.g. the fail() message).
	Msg string
	// Stack is the crash stack trace, innermost frame first. Empty for
	// successful runs.
	Stack []StackEntry
	// ExitCode is main's return value for non-crashed runs.
	ExitCode int64
	// Output collects the values passed to output(), one line per call.
	Output []string
	// BugsObserved lists ground-truth bug ids recorded via the
	// observe_bug intrinsic, deduplicated, in first-observed order.
	BugsObserved []int
	// Steps is the number of interpreter steps executed.
	Steps int64
}

// StackSignature returns a compact signature of the crash stack (the
// chain of function names, innermost first), the unit of clustering used
// by the "current industrial practice" baseline in the paper's §6.
func (o *Outcome) StackSignature() string {
	if !o.Crashed {
		return ""
	}
	sig := ""
	for i, e := range o.Stack {
		if i > 0 {
			sig += "<"
		}
		sig += e.Func
	}
	return sig
}

// ObservedBug reports whether ground truth recorded bug k in this run.
func (o *Outcome) ObservedBug(k int) bool {
	for _, b := range o.BugsObserved {
		if b == k {
			return true
		}
	}
	return false
}
