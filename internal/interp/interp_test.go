package interp

import (
	"strings"
	"testing"

	"cbi/internal/lang"
)

func run(t *testing.T, src string, input Input) *Outcome {
	t.Helper()
	prog, err := lang.Parse("test.mc", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := lang.Resolve(prog); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	return Run(prog, input, nil)
}

func mustSucceed(t *testing.T, src string, input Input) *Outcome {
	t.Helper()
	out := run(t, src, input)
	if out.Crashed {
		t.Fatalf("unexpected crash: %s: %s (stack %v)", out.Trap, out.Msg, out.Stack)
	}
	return out
}

func TestArithmetic(t *testing.T) {
	out := mustSucceed(t, `int main() { return (1 + 2 * 3 - 4 / 2) % 5; }`, Input{})
	if out.ExitCode != 0 { // (1+6-2)%5 = 0
		t.Errorf("exit = %d, want 0", out.ExitCode)
	}
	out = mustSucceed(t, `int main() { return -7 % 3; }`, Input{})
	if out.ExitCode != -1 {
		t.Errorf("-7%%3 = %d, want -1", out.ExitCode)
	}
}

func TestControlFlow(t *testing.T) {
	out := mustSucceed(t, `
int main() {
  int s = 0;
  for (int i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 7) { break; }
    s = s + i;
  }
  int j = 0;
  while (j < 3) { s = s + 100; j = j + 1; }
  return s;
}`, Input{})
	if out.ExitCode != 1+3+5+7+300 {
		t.Errorf("exit = %d, want %d", out.ExitCode, 1+3+5+7+300)
	}
}

func TestRecursion(t *testing.T) {
	out := mustSucceed(t, `
int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
int main() { return fib(15); }`, Input{})
	if out.ExitCode != 610 {
		t.Errorf("fib(15) = %d, want 610", out.ExitCode)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not run when the left is false.
	out := mustSucceed(t, `
int g = 0;
int bump() { g = g + 1; return 1; }
int main() {
  int a = 0 && bump();
  int b = 1 || bump();
  int c = 1 && bump();
  return g * 10 + a + b + c;
}`, Input{})
	if out.ExitCode != 12 { // g=1 (only c's bump ran), a=0, b=1, c=1
		t.Errorf("exit = %d, want 12", out.ExitCode)
	}
}

func TestHeapStructsAndArrays(t *testing.T) {
	out := mustSucceed(t, `
struct P { int x; int y; }
int main() {
  P* a = new P[3];
  for (int i = 0; i < 3; i = i + 1) { a[i].x = i; a[i].y = i * i; }
  P* single = new P;
  single->x = 100;
  int s = single->x;
  for (int i = 0; i < 3; i = i + 1) { s = s + a[i].x + a[i].y; }
  return s;
}`, Input{})
	if out.ExitCode != 100+0+0+1+1+2+4 {
		t.Errorf("exit = %d, want 108", out.ExitCode)
	}
}

func TestLinkedList(t *testing.T) {
	out := mustSucceed(t, `
struct N { int v; N* next; }
int main() {
  N* head = null;
  for (int i = 1; i <= 5; i = i + 1) {
    N* n = new N;
    n->v = i;
    n->next = head;
    head = n;
  }
  int s = 0;
  N* p = head;
  while (p != null) { s = s + p->v; p = p->next; }
  return s;
}`, Input{})
	if out.ExitCode != 15 {
		t.Errorf("exit = %d, want 15", out.ExitCode)
	}
}

func TestStringsAndBuiltins(t *testing.T) {
	out := mustSucceed(t, `
int main() {
  string s = "hello" + " " + "world";
  output(s);
  output(strlen(s));
  output(substr(s, 0, 5));
  output(char_at(s, 0));
  output(itoa(42) + "!");
  if (strcmp("a", "b") < 0 && strcmp("b", "a") > 0 && strcmp("a", "a") == 0) {
    output("cmp-ok");
  }
  return 0;
}`, Input{})
	want := []string{"hello world", "11", "hello", "104", "42!", "cmp-ok"}
	if len(out.Output) != len(want) {
		t.Fatalf("output = %v, want %v", out.Output, want)
	}
	for i := range want {
		if out.Output[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, out.Output[i], want[i])
		}
	}
}

func TestInputAccess(t *testing.T) {
	out := mustSucceed(t, `
int main() {
  int total = 0;
  for (int i = 0; i < nargs(); i = i + 1) { total = total + arg(i); }
  int v = read();
  while (v != -1) { total = total + v; v = read(); }
  output(sarg(0));
  return total + strlen(sarg(1)) + nsargs();
}`, Input{Args: []int64{1, 2, 3}, SArgs: []string{"x", "yz"}, Stream: []int64{10, 20}})
	if out.ExitCode != 6+30+2+2 {
		t.Errorf("exit = %d, want 40", out.ExitCode)
	}
	if out.Output[0] != "x" {
		t.Errorf("output = %v", out.Output)
	}
}

func TestLenBuiltin(t *testing.T) {
	out := mustSucceed(t, `
struct S { int a; int b; int c; }
int main() {
  int* p = new int[10];
  S* q = new S[4];
  return len(p) * 100 + len(q);
}`, Input{})
	if out.ExitCode != 1004 {
		t.Errorf("exit = %d, want 1004", out.ExitCode)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	src := `int main() { int s = 0; for (int i = 0; i < 100; i = i + 1) { s = s + rand(1000); } return s; }`
	a := mustSucceed(t, src, Input{Seed: 7}).ExitCode
	b := mustSucceed(t, src, Input{Seed: 7}).ExitCode
	c := mustSucceed(t, src, Input{Seed: 8}).ExitCode
	if a != b {
		t.Errorf("same seed gave different results: %d vs %d", a, b)
	}
	if a == c {
		t.Errorf("different seeds gave identical rand sums (suspicious): %d", a)
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name string
		src  string
		trap TrapKind
	}{
		{"null index", `int main() { int* p = null; return p[0]; }`, TrapNullDeref},
		{"null arrow", `struct S { int v; } int main() { S* p = null; return p->v; }`, TrapNullDeref},
		{"div zero", `int main() { int z = 0; return 1 / z; }`, TrapDivByZero},
		{"mod zero", `int main() { int z = 0; return 1 % z; }`, TrapDivByZero},
		{"explicit fail", `int main() { fail("boom"); return 0; }`, TrapExplicitFail},
		{"substr range", `int main() { output(substr("abc", 1, 5)); return 0; }`, TrapStringRange},
		{"char_at range", `int main() { return char_at("abc", 3); }`, TrapStringRange},
		{"stack overflow", `int f(int n) { return f(n + 1); } int main() { return f(0); }`, TrapStackOverflow},
		{"step limit", `int main() { while (1) { } return 0; }`, TrapStepLimit},
		{"negative alloc", `int main() { int n = 0 - 5; int* p = new int[n]; return p[0]; }`, TrapBadAlloc},
		{"len null", `int main() { int* p = null; return len(p); }`, TrapNullDeref},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := run(t, tc.src, Input{})
			if !out.Crashed {
				t.Fatalf("did not crash (exit=%d)", out.ExitCode)
			}
			if out.Trap != tc.trap {
				t.Errorf("trap = %s, want %s", out.Trap, tc.trap)
			}
			if len(out.Stack) == 0 {
				t.Error("crash has no stack trace")
			}
		})
	}
}

func TestStackTraceShape(t *testing.T) {
	out := run(t, `
int inner() { int* p = null; return p[2]; }
int middle() { return inner(); }
int main() { return middle(); }`, Input{})
	if !out.Crashed {
		t.Fatal("expected crash")
	}
	var funcs []string
	for _, e := range out.Stack {
		funcs = append(funcs, e.Func)
	}
	want := []string{"inner", "middle", "main"}
	if len(funcs) != 3 {
		t.Fatalf("stack = %v", funcs)
	}
	for i := range want {
		if funcs[i] != want[i] {
			t.Errorf("stack[%d] = %s, want %s", i, funcs[i], want[i])
		}
	}
	sig := out.StackSignature()
	if sig != "inner<middle<main" {
		t.Errorf("signature = %q", sig)
	}
}

func TestOverrunMayCorruptOrTrap(t *testing.T) {
	// Writing one element past a block: with adjacency the write lands
	// in the neighbouring allocation; otherwise it traps. Across many
	// seeds both behaviours must appear (the paper's non-deterministic
	// bug model), and when it does not trap the neighbour must actually
	// be corrupted.
	src := `
int main() {
  int* a = new int[4];
  int* b = new int[4];
  b[0] = 111;
  a[4] = 999;  // one past the end of a
  return b[0];
}`
	var traps, corruptions, intact int
	for seed := int64(0); seed < 200; seed++ {
		out := run(t, src, Input{Seed: seed})
		switch {
		case out.Crashed && out.Trap == TrapOutOfBounds:
			traps++
		case !out.Crashed && out.ExitCode == 999:
			corruptions++
		case !out.Crashed && out.ExitCode == 111:
			intact++
		default:
			t.Fatalf("seed %d: unexpected outcome %+v", seed, out)
		}
	}
	if traps == 0 || corruptions == 0 {
		t.Errorf("want both traps and corruptions across seeds; traps=%d corruptions=%d intact=%d",
			traps, corruptions, intact)
	}
}

func TestCorruptionCausesDelayedTypeConfusion(t *testing.T) {
	// Overrun writes an int over a neighbouring pointer; dereferencing
	// that pointer later traps far from the overrun (the BC-style
	// "crash long after the overrun" behaviour).
	src := `
struct N { int v; N* next; }
int main() {
  int* a = new int[2];
  N* n = new N;
  n->v = 5;
  n->next = null;
  a[3] = 12345;   // may smash n->next
  N* p = n;
  int s = 0;
  while (p != null) { s = s + p->v; p = p->next; }
  return s;
}`
	var confusions, clean, oob int
	for seed := int64(0); seed < 300; seed++ {
		out := run(t, src, Input{Seed: seed})
		switch {
		case out.Crashed && out.Trap == TrapTypeConfusion:
			confusions++
		case out.Crashed && out.Trap == TrapOutOfBounds:
			oob++
		case !out.Crashed:
			clean++
		}
	}
	if confusions == 0 {
		t.Errorf("no delayed type-confusion crashes observed (clean=%d oob=%d)", clean, oob)
	}
}

func TestObserveBugGroundTruth(t *testing.T) {
	out := mustSucceed(t, `
int main() {
  observe_bug(3);
  observe_bug(3);
  observe_bug(7);
  return 0;
}`, Input{})
	if len(out.BugsObserved) != 2 || out.BugsObserved[0] != 3 || out.BugsObserved[1] != 7 {
		t.Errorf("BugsObserved = %v, want [3 7]", out.BugsObserved)
	}
	if !out.ObservedBug(3) || !out.ObservedBug(7) || out.ObservedBug(4) {
		t.Error("ObservedBug misreports")
	}
}

func TestGlobalsInitialization(t *testing.T) {
	out := mustSucceed(t, `
int g = 42;
string name = "cbi";
int uninit;
int main() { return g + strlen(name) + uninit; }`, Input{})
	if out.ExitCode != 45 {
		t.Errorf("exit = %d, want 45", out.ExitCode)
	}
}

func TestFallOffEndReturnsZero(t *testing.T) {
	out := mustSucceed(t, `
int f() { int x = 1; }
int main() { return f(); }`, Input{})
	if out.ExitCode != 0 {
		t.Errorf("exit = %d, want 0", out.ExitCode)
	}
}

func TestHeapOOM(t *testing.T) {
	prog, err := lang.Parse("t", `int main() { while (1) { int* p = new int[1000]; p[0] = 1; } return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Resolve(prog); err != nil {
		t.Fatal(err)
	}
	in := New(prog, nil)
	in.SetLimits(Limits{HeapSlots: 10000, Steps: 50_000_000})
	out := in.Run(Input{})
	if !out.Crashed || out.Trap != TrapOutOfMemory {
		t.Errorf("got %+v, want OOM trap", out)
	}
}

func TestRunIsRepeatable(t *testing.T) {
	prog, err := lang.Parse("t", `
int main() {
  int* a = new int[3];
  a[0] = rand(100);
  output(a[0]);
  return a[0];
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := lang.Resolve(prog); err != nil {
		t.Fatal(err)
	}
	in := New(prog, nil)
	a := in.Run(Input{Seed: 5}).ExitCode
	b := in.Run(Input{Seed: 5}).ExitCode
	if a != b {
		t.Errorf("reusing the interpreter changed results: %d vs %d", a, b)
	}
}

func TestOutputOracleComparison(t *testing.T) {
	// Two programs differing in a non-crashing bug produce different
	// Output vectors — the labeling mechanism for the paper's bug #9.
	good := mustSucceed(t, `int main() { output("a"); output(2 + 2); return 0; }`, Input{})
	bad := mustSucceed(t, `int main() { output("a"); output(2 + 3); return 0; }`, Input{})
	if strings.Join(good.Output, "\n") == strings.Join(bad.Output, "\n") {
		t.Error("oracle cannot distinguish the two runs")
	}
}
