package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cbi/internal/harness"
	"cbi/internal/logreg"
)

// Table9Row is one top-weighted logistic regression predicate (paper
// Table 9).
type Table9Row struct {
	Coefficient float64
	Pred        int
	Text        string
	Class       PredictorClass
}

// Table9 is the ℓ1-regularized logistic regression baseline on MOSS.
type Table9 struct {
	Rows     []Table9Row
	Accuracy float64
	Nonzero  int
}

// RunTable9 trains the baseline and lists the top 10 coefficients. The
// paper's finding: every one of them is a sub-bug or super-bug
// predictor, which the ground-truth classification column confirms.
func RunTable9(r *Runner) *Table9 {
	res := r.Result("moss", harness.SampleUniform)
	model := logreg.Train(res.Set, logreg.DefaultOptions)
	t := &Table9{
		Accuracy: model.Accuracy(res.Set),
		Nonzero:  model.NumNonzero(),
	}
	for _, c := range model.TopCoefficients(10) {
		t.Rows = append(t.Rows, Table9Row{
			Coefficient: c.Weight,
			Pred:        c.Pred,
			Text:        res.PredText(c.Pred),
			Class:       Classify(res, c.Pred),
		})
	}
	return t
}

// Render prints the Table 9 analog.
func (t *Table9) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "l1-regularized logistic regression on MOSS (accuracy %.3f, %d nonzero weights)\n",
		t.Accuracy, t.Nonzero)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Coefficient\tPredicate\tGround truth")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%.6f\t%s\t%s\n", r.Coefficient, r.Text, r.Class)
	}
	w.Flush()
	return sb.String()
}
