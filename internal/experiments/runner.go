// Package experiments regenerates every table of the paper's
// evaluation (§4): the ranking-strategy comparison (Table 1), the
// per-subject summary statistics (Table 2), the MOSS multi-bug
// validation (Table 3), the per-subject predictor lists (Tables 4-7),
// the how-many-runs analysis (Table 8), and the logistic-regression
// baseline (Table 9) — plus the §6 stack-signature study and the §5
// ablations.
//
// Absolute numbers differ from the paper (the subjects are MiniC
// analogs, not the original C programs), but the result shapes are the
// point: who wins, what gets pruned, which bugs are covered, and how
// many runs isolation needs.
package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cbi/internal/core"
	"cbi/internal/corpus"
	"cbi/internal/harness"
	"cbi/internal/subjects"
)

// Scale fixes experiment sizes. The paper uses ~32,000 monitored runs
// per subject; smaller scales keep CI fast and degrade gracefully
// (paper §4.3).
type Scale struct {
	// Runs is the number of monitored runs per subject.
	Runs int
	// TrainingRuns sizes the nonuniform-rate training set.
	TrainingRuns int
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// Standard scales.
var (
	// SmokeScale is for tests.
	SmokeScale = Scale{Runs: 1500, TrainingRuns: 200}
	// DefaultScale balances fidelity and wall-clock time.
	DefaultScale = Scale{Runs: 8000, TrainingRuns: 1000}
	// PaperScale matches the paper's run counts.
	PaperScale = Scale{Runs: 32000, TrainingRuns: 1000}
)

// Runner caches experiment results so several tables can share one
// expensive run. With CacheDir set, corpora are also persisted to disk
// and reused across processes (invalidated automatically when the
// subject sources change, via the plan fingerprint).
type Runner struct {
	Scale Scale
	// CacheDir, when non-empty, persists corpora as
	// <dir>/<subject>-<mode>-<runs>.corpus.
	CacheDir string
	cache    map[string]*harness.Result
}

// NewRunner returns a Runner at the given scale.
func NewRunner(scale Scale) *Runner {
	return &Runner{Scale: scale, cache: map[string]*harness.Result{}}
}

// Result runs (or fetches) the experiment for a subject under a
// sampling mode.
func (r *Runner) Result(name string, mode harness.Mode) *harness.Result {
	key := fmt.Sprintf("%s/%s", name, mode)
	if res, ok := r.cache[key]; ok {
		return res
	}
	subj := subjects.ByName(name)
	if subj == nil {
		panic("experiments: unknown subject " + name)
	}
	if res := r.loadCached(name, mode); res != nil {
		r.cache[key] = res
		return res
	}
	res := harness.Run(harness.Config{
		Subject:      subj,
		Runs:         r.Scale.Runs,
		Mode:         mode,
		TrainingRuns: r.Scale.TrainingRuns,
		Workers:      r.Scale.Workers,
	})
	r.cache[key] = res
	r.saveCached(name, mode, res)
	return res
}

func (r *Runner) cachePath(name string, mode harness.Mode) string {
	return filepath.Join(r.CacheDir, fmt.Sprintf("%s-%s-%d.corpus", name, mode, r.Scale.Runs))
}

func (r *Runner) loadCached(name string, mode harness.Mode) *harness.Result {
	if r.CacheDir == "" {
		return nil
	}
	f, err := os.Open(r.cachePath(name, mode))
	if err != nil {
		return nil
	}
	defer f.Close()
	res, err := corpus.Load(bufio.NewReader(f))
	if err != nil {
		// Stale or corrupt cache entries are simply regenerated.
		return nil
	}
	if len(res.Set.Reports) != r.Scale.Runs {
		return nil
	}
	return res
}

func (r *Runner) saveCached(name string, mode harness.Mode, res *harness.Result) {
	if r.CacheDir == "" {
		return
	}
	if err := os.MkdirAll(r.CacheDir, 0o755); err != nil {
		return
	}
	path := r.cachePath(name, mode)
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return
	}
	if err := corpus.Save(f, res); err != nil {
		f.Close()
		os.Remove(path + ".tmp")
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(path + ".tmp")
		return
	}
	os.Rename(path+".tmp", path)
}

// PredictorClass classifies a predicate against ground truth, using
// the paper's vocabulary.
type PredictorClass struct {
	// Class is "bug", "sub-bug", "super-bug", or "none".
	Class string
	// Bug is the dominant bug id (0 if none).
	Bug int
	// Share is the fraction of the predicate's true-failing runs that
	// exhibit the dominant bug.
	Share float64
	// Coverage is the fraction of the dominant bug's failing runs the
	// predicate covers.
	Coverage float64
}

// String renders the classification compactly.
func (c PredictorClass) String() string {
	switch c.Class {
	case "none":
		return "none"
	case "super-bug":
		return fmt.Sprintf("super-bug (top #%d %.0f%%)", c.Bug, c.Share*100)
	default:
		return fmt.Sprintf("%s of #%d (share %.0f%%, cover %.0f%%)", c.Class, c.Bug, c.Share*100, c.Coverage*100)
	}
}

// Classify determines whether predicate p is a bug, sub-bug, or
// super-bug predictor under the result's ground truth.
func Classify(res *harness.Result, p int) PredictorClass {
	perBug := map[int]int{}
	trueFailing := 0
	for i := range res.Metas {
		m := &res.Metas[i]
		if !m.Failed() || !res.Set.Reports[i].True(int32(p)) {
			continue
		}
		trueFailing++
		for _, b := range m.Bugs {
			perBug[b]++
		}
	}
	if trueFailing == 0 {
		return PredictorClass{Class: "none"}
	}
	bestBug, bestCount := 0, 0
	for b, c := range perBug {
		if c > bestCount || (c == bestCount && b < bestBug) {
			bestBug, bestCount = b, c
		}
	}
	totalForBug := res.FailingRunsPerBug()[bestBug]
	cls := PredictorClass{
		Bug:      bestBug,
		Share:    float64(bestCount) / float64(trueFailing),
		Coverage: float64(bestCount) / float64(max(1, totalForBug)),
	}
	switch {
	case cls.Share < 0.5:
		cls.Class = "super-bug"
	case cls.Coverage < 0.35:
		cls.Class = "sub-bug"
	default:
		cls.Class = "bug"
	}
	return cls
}

// BugCoverage reports, for each ground-truth bug with failing runs,
// whether some selected predicate is true in at least one failing run
// exhibiting it (the Lemma 3.1 coverage property).
func BugCoverage(res *harness.Result, selected []core.Ranked) map[int]bool {
	covered := map[int]bool{}
	for b := range res.FailingRunsPerBug() {
		covered[b] = false
	}
	for i := range res.Metas {
		m := &res.Metas[i]
		if !m.Failed() {
			continue
		}
		for _, r := range selected {
			if res.Set.Reports[i].True(int32(r.Pred)) {
				for _, b := range m.Bugs {
					covered[b] = true
				}
				break
			}
		}
	}
	return covered
}

// sortedBugIDs returns the bug ids present in a map, ascending.
func sortedBugIDs(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
