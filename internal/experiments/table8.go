package experiments

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"cbi/internal/core"
	"cbi/internal/harness"
)

// Table8Row reports, for one bug, the minimum number of runs N such
// that ImportanceFull(P) − ImportanceN(P) < 0.2 for the bug's chosen
// predictor P, plus F(P) among those N runs (paper Table 8).
type Table8Row struct {
	Subject string
	Bug     int
	Pred    int
	Text    string
	// MinRuns is the smallest N from the grid meeting the threshold
	// (-1 if never met).
	MinRuns int
	// FAtMin is F(P) among the first MinRuns runs.
	FAtMin int
}

// RunTable8 reproduces the how-many-runs analysis for every subject.
// The threshold 0.2 follows §4.3.
func RunTable8(r *Runner) []Table8Row {
	var rows []Table8Row
	for _, name := range []string{"moss", "ccrypt", "bc", "exif", "rhythmbox"} {
		res := r.Result(name, harness.SampleUniform)
		rows = append(rows, table8ForResult(res)...)
	}
	return rows
}

func table8ForResult(res *harness.Result) []Table8Row {
	in := res.CoreInput()
	ranked := core.Eliminate(in, core.ElimOptions{})

	// Choose one predictor per bug: the selected predicate whose
	// true-failing runs concentrate on that bug with the widest
	// coverage ("we pick the more natural one, not the sub-bug
	// predictor").
	chosen := map[int]core.Ranked{}
	coverage := map[int]float64{}
	for _, rk := range ranked {
		cls := Classify(res, rk.Pred)
		if cls.Class == "none" || cls.Class == "super-bug" {
			continue
		}
		if cls.Coverage > coverage[cls.Bug] {
			coverage[cls.Bug] = cls.Coverage
			chosen[cls.Bug] = rk
		}
	}

	fullAgg := core.Aggregate(in)
	grid := runGrid(len(res.Set.Reports))

	var rows []Table8Row
	for _, bug := range sortedBugIDs(res.FailingRunsPerBug()) {
		rk, ok := chosen[bug]
		if !ok {
			continue
		}
		fullImp := core.Importance(fullAgg.Stats[rk.Pred], fullAgg.NumF)
		row := Table8Row{
			Subject: res.Config.Subject.Name,
			Bug:     bug,
			Pred:    rk.Pred,
			Text:    res.PredText(rk.Pred),
			MinRuns: -1,
		}
		for _, n := range grid {
			agg := aggregatePrefix(in, n)
			imp := core.Importance(agg.Stats[rk.Pred], agg.NumF)
			// The predictor must actually rank (positive importance
			// requires at least two observed failures) and be within
			// 0.2 of its full-corpus score (§4.3).
			if imp > 0 && !math.IsNaN(imp) && fullImp-imp < 0.2 {
				row.MinRuns = n
				row.FAtMin = agg.Stats[rk.Pred].F
				break
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// runGrid reproduces the paper's N grid (100, 200, ..., 1000, 2000,
// ..., up to the corpus size).
func runGrid(total int) []int {
	var grid []int
	for n := 100; n <= 1000 && n <= total; n += 100 {
		grid = append(grid, n)
	}
	for n := 2000; n <= total; n += 1000 {
		grid = append(grid, n)
	}
	if len(grid) == 0 || grid[len(grid)-1] != total {
		grid = append(grid, total)
	}
	return grid
}

// aggregatePrefix aggregates only the first n runs.
func aggregatePrefix(in core.Input, n int) *core.Agg {
	active := make([]bool, len(in.Set.Reports))
	for i := 0; i < n && i < len(active); i++ {
		active[i] = true
	}
	return core.AggregateSubset(in, active, nil)
}

// RenderTable8 prints the minimum-runs table.
func RenderTable8(rows []Table8Row) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Subject\tBug\tF(P)\tRuns N\tPredicate")
	for _, r := range rows {
		n := fmt.Sprintf("%d", r.MinRuns)
		if r.MinRuns < 0 {
			n = "not reached"
		}
		fmt.Fprintf(w, "%s\t#%d\t%d\t%s\t%s\n", r.Subject, r.Bug, r.FAtMin, n, r.Text)
	}
	w.Flush()
	return sb.String()
}
