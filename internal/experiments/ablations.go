package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"cbi/internal/core"
	"cbi/internal/harness"
	"cbi/internal/instrument"
	"cbi/internal/subjects"
)

// DiscardAblation compares the paper's three run-discard proposals
// (§5) on one subject.
type DiscardAblation struct {
	Subject string
	Rows    []DiscardRow
}

// DiscardRow is one policy's outcome.
type DiscardRow struct {
	Policy      core.DiscardPolicy
	NumSelected int
	// BugsCovered counts ground-truth bugs covered per Lemma 3.1.
	BugsCovered int
	BugsTotal   int
	TopPred     string
}

// RunDiscardAblation evaluates all three policies.
func RunDiscardAblation(r *Runner, name string) *DiscardAblation {
	res := r.Result(name, harness.SampleUniform)
	in := res.CoreInput()
	out := &DiscardAblation{Subject: name}
	for _, policy := range []core.DiscardPolicy{core.DiscardAllRuns, core.DiscardFailingRuns, core.RelabelFailingRuns} {
		ranked := core.Eliminate(in, core.ElimOptions{Policy: policy})
		covered := BugCoverage(res, ranked)
		n := 0
		for _, ok := range covered {
			if ok {
				n++
			}
		}
		row := DiscardRow{
			Policy:      policy,
			NumSelected: len(ranked),
			BugsCovered: n,
			BugsTotal:   len(covered),
		}
		if len(ranked) > 0 {
			row.TopPred = res.PredText(ranked[0].Pred)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render prints the policy comparison.
func (a *DiscardAblation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Run-discard proposals on %s (§5)\n", a.Subject)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Policy\tSelected\tBugs covered\tTop predictor")
	for _, row := range a.Rows {
		fmt.Fprintf(w, "%s\t%d\t%d/%d\t%s\n", row.Policy, row.NumSelected, row.BugsCovered, row.BugsTotal, row.TopPred)
	}
	w.Flush()
	return sb.String()
}

// SamplingAblation compares predictor lists across sampling modes —
// the paper's §4 validation ("The results are identical except ...
// where we judge the differences to be minor").
type SamplingAblation struct {
	Subject string
	// Selected maps mode name to selected predicate texts, in order.
	Selected map[string][]string
	// CoverageEqual reports whether every mode covers the same bugs.
	CoverageEqual bool
	// SiteJaccard is the Jaccard similarity of the selected site sets
	// between full observation and each sparse mode.
	SiteJaccard map[string]float64
}

// RunSamplingAblation compares always/uniform/nonuniform sampling.
func RunSamplingAblation(r *Runner, name string) *SamplingAblation {
	out := &SamplingAblation{
		Subject:     name,
		Selected:    map[string][]string{},
		SiteJaccard: map[string]float64{},
	}
	coverages := map[string]string{}
	siteSets := map[string]map[int]bool{}
	for _, mode := range []harness.Mode{harness.SampleAlways, harness.SampleUniform, harness.SampleNonuniform} {
		res := r.Result(name, mode)
		in := res.CoreInput()
		ranked := core.Eliminate(in, core.ElimOptions{})
		var texts []string
		sites := map[int]bool{}
		for _, rk := range ranked {
			texts = append(texts, res.PredText(rk.Pred))
			sites[res.Plan.Preds[rk.Pred].Site] = true
		}
		out.Selected[mode.String()] = texts
		siteSets[mode.String()] = sites

		covered := BugCoverage(res, ranked)
		ids := make([]int, 0, len(covered))
		for b, ok := range covered {
			if ok {
				ids = append(ids, b)
			}
		}
		sort.Ints(ids)
		coverages[mode.String()] = fmt.Sprint(ids)
	}
	out.CoverageEqual = coverages["always"] == coverages["uniform"] &&
		coverages["always"] == coverages["nonuniform"]
	for _, m := range []string{"uniform", "nonuniform"} {
		out.SiteJaccard[m] = jaccard(siteSets["always"], siteSets[m])
	}
	return out
}

func jaccard(a, b map[int]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter, union := 0, 0
	seen := map[int]bool{}
	for k := range a {
		seen[k] = true
		if b[k] {
			inter++
		}
	}
	for k := range b {
		seen[k] = true
	}
	union = len(seen)
	return float64(inter) / float64(union)
}

// Render prints the sampling-mode comparison.
func (a *SamplingAblation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sampling ablation on %s\n", a.Subject)
	for _, m := range []string{"always", "uniform", "nonuniform"} {
		fmt.Fprintf(&sb, "  %s (%d selected):\n", m, len(a.Selected[m]))
		for _, t := range a.Selected[m] {
			fmt.Fprintf(&sb, "    %s\n", t)
		}
	}
	fmt.Fprintf(&sb, "same bug coverage across modes: %v\n", a.CoverageEqual)
	for _, m := range []string{"uniform", "nonuniform"} {
		fmt.Fprintf(&sb, "site-set Jaccard vs full observation (%s): %.2f\n", m, a.SiteJaccard[m])
	}
	return sb.String()
}

// DedupAblation evaluates the §3.4 observation that pre-eliminating
// logically redundant predicates within sites is unnecessary: the
// elimination algorithm already handles redundancy.
type DedupAblation struct {
	Subject string
	// Without/With are the selected predicate site lists.
	Without, With []int
	// CandidatesBefore/After are candidate counts with and without the
	// within-site dedup pass.
	CandidatesBefore, CandidatesAfter int
	// SameSites reports whether both runs select the same site set.
	SameSites bool
}

// RunDedupAblation compares elimination with and without within-site
// deduplication of predicates that were true in exactly the same runs.
func RunDedupAblation(r *Runner, name string) *DedupAblation {
	res := r.Result(name, harness.SampleUniform)
	in := res.CoreInput()
	agg := core.Aggregate(in)
	cands := core.FilterByIncrease(agg, core.Z95)

	deduped := dedupWithinSites(res, cands)

	plain := core.Eliminate(in, core.ElimOptions{})
	pre := core.Eliminate(in, core.ElimOptions{Candidates: deduped})

	sitesOf := func(rks []core.Ranked) []int {
		set := map[int]bool{}
		for _, rk := range rks {
			set[res.Plan.Preds[rk.Pred].Site] = true
		}
		var out []int
		for s := range set {
			out = append(out, s)
		}
		sort.Ints(out)
		return out
	}
	a := &DedupAblation{
		Subject:          name,
		Without:          sitesOf(plain),
		With:             sitesOf(pre),
		CandidatesBefore: len(cands),
		CandidatesAfter:  len(deduped),
	}
	a.SameSites = fmt.Sprint(a.Without) == fmt.Sprint(a.With)
	return a
}

// dedupWithinSites keeps, per site, one predicate of each distinct
// (F, S) true-count signature.
func dedupWithinSites(res *harness.Result, cands []int) []int {
	in := res.CoreInput()
	agg := core.Aggregate(in)
	type key struct {
		site int
		f, s int
	}
	seen := map[key]bool{}
	var out []int
	for _, p := range cands {
		k := key{site: res.Plan.Preds[p].Site, f: agg.Stats[p].F, s: agg.Stats[p].S}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out
}

// Render prints the dedup comparison.
func (a *DedupAblation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Within-site dedup ablation on %s (§3.4)\n", a.Subject)
	fmt.Fprintf(&sb, "  candidates: %d -> %d after within-site dedup\n", a.CandidatesBefore, a.CandidatesAfter)
	fmt.Fprintf(&sb, "  selected sites without dedup: %v\n", a.Without)
	fmt.Fprintf(&sb, "  selected sites with dedup:    %v\n", a.With)
	fmt.Fprintf(&sb, "  same site set: %v\n", a.SameSites)
	return sb.String()
}

// NullnessAblation evaluates the nullness scheme — the heap-predicate
// extension the paper flags as future work (§2, §4.2.4: the RHYTHMBOX
// bugs were "violations of subtle heap invariants that are not
// directly captured by our current instrumentation schemes").
type NullnessAblation struct {
	Subject string
	// BaselinePreds / NullnessPreds are total predicate counts.
	BaselinePreds, NullnessPreds int
	// Surviving is the number of nullness predicates that pass the
	// Increase test (i.e. are genuine failure predictors).
	Surviving int
	// Top lists the strongest nullness predicates by Importance.
	Top []string
	// Classes classifies each entry of Top.
	Classes []PredictorClass
	// TopImportance holds the Importance of each Top entry.
	TopImportance []float64
	// SelectedByElimination lists nullness predicates the elimination
	// algorithm itself picks (may be empty when equivalent branch
	// predicates are selected first — redundancy, not weakness).
	SelectedByElimination []string
}

// RunNullnessAblation reruns a subject with the nullness scheme
// enabled and reports which nullness predicates the elimination
// algorithm selects.
func RunNullnessAblation(r *Runner, name string) *NullnessAblation {
	subj := subjects.ByName(name)
	baseline := r.Result(name, harness.SampleUniform)
	res := harness.Run(harness.Config{
		Subject:    subj,
		Runs:       r.Scale.Runs,
		Mode:       harness.SampleUniform,
		Workers:    r.Scale.Workers,
		Instrument: instrument.Options{EnableNullness: true},
	})
	out := &NullnessAblation{
		Subject:       name,
		BaselinePreds: baseline.Plan.NumPreds(),
		NullnessPreds: res.Plan.NumPreds(),
	}
	in := res.CoreInput()
	agg := core.Aggregate(in)
	var nullCands []int
	for _, p := range core.FilterByIncrease(agg, core.Z95) {
		if res.Plan.SiteOf(p).Scheme == instrument.SchemeNullness {
			nullCands = append(nullCands, p)
		}
	}
	out.Surviving = len(nullCands)
	for i, p := range core.RankByImportance(in, nullCands) {
		if i >= 5 {
			break
		}
		out.Top = append(out.Top, res.PredText(p))
		out.Classes = append(out.Classes, Classify(res, p))
		out.TopImportance = append(out.TopImportance, core.Importance(agg.Stats[p], agg.NumF))
	}
	for _, rk := range core.Eliminate(in, core.ElimOptions{}) {
		if res.Plan.SiteOf(rk.Pred).Scheme == instrument.SchemeNullness {
			out.SelectedByElimination = append(out.SelectedByElimination, res.PredText(rk.Pred))
		}
	}
	return out
}

// Render prints the nullness ablation.
func (a *NullnessAblation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Nullness-scheme extension on %s (paper future work)\n", a.Subject)
	fmt.Fprintf(&sb, "  predicates: %d -> %d with nullness sites\n", a.BaselinePreds, a.NullnessPreds)
	fmt.Fprintf(&sb, "  nullness predicates passing the Increase test: %d\n", a.Surviving)
	for i, text := range a.Top {
		fmt.Fprintf(&sb, "  top: %-55s Imp=%.3f  %s\n", text, a.TopImportance[i], a.Classes[i])
	}
	if len(a.SelectedByElimination) == 0 {
		sb.WriteString("  elimination picked equivalent predicates from other schemes first\n")
	} else {
		for _, text := range a.SelectedByElimination {
			fmt.Fprintf(&sb, "  selected by elimination: %s\n", text)
		}
	}
	return sb.String()
}
