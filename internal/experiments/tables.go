package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cbi/internal/core"
	"cbi/internal/harness"
	"cbi/internal/thermo"
)

// Table1 reproduces the ranking-strategy comparison on MOSS without
// redundancy elimination: (a) descending F(P), (b) descending
// Increase(P), (c) descending harmonic mean. The paper's point: (a)
// surfaces highly non-deterministic super-bug-ish predicates, (b)
// surfaces sub-bug predictors with tiny F, and (c) balances both.
type Table1 struct {
	ByF, ByIncrease, ByImportance []Table1Row
}

// Table1Row is one predicate row with the paper's columns.
type Table1Row struct {
	Pred        int
	Text        string
	Thermometer string
	Context     float64
	Increase    float64
	IncreaseCI  float64
	S, F        int
	Class       PredictorClass
}

// RunTable1 computes the three rankings (top k rows each).
func RunTable1(r *Runner, k int) *Table1 {
	res := r.Result("moss", harness.SampleUniform)
	in := res.CoreInput()
	agg := core.Aggregate(in)
	cands := core.FilterByIncrease(agg, core.Z95)

	row := func(p int) Table1Row {
		st := agg.Stats[p]
		sc := core.ComputeScores(st, agg.NumF)
		th := thermo.Compute(st, sc, agg.NumF+agg.NumS)
		return Table1Row{
			Pred:        p,
			Text:        res.PredText(p),
			Thermometer: th.Text(20),
			Context:     sc.Context,
			Increase:    sc.Increase,
			IncreaseCI:  sc.IncreaseCI,
			S:           st.S,
			F:           st.F,
			Class:       Classify(res, p),
		}
	}
	take := func(ids []int) []Table1Row {
		if len(ids) > k {
			ids = ids[:k]
		}
		rows := make([]Table1Row, len(ids))
		for i, p := range ids {
			rows[i] = row(p)
		}
		return rows
	}
	return &Table1{
		ByF:          take(core.RankByF(in, cands)),
		ByIncrease:   take(core.RankByIncrease(in, cands)),
		ByImportance: take(core.RankByImportance(in, cands)),
	}
}

// Render prints the three sub-tables like the paper's Table 1.
func (t *Table1) Render() string {
	var sb strings.Builder
	section := func(title string, rows []Table1Row) {
		fmt.Fprintf(&sb, "(%s)\n", title)
		w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "Thermometer\tContext\tIncrease\tS\tF\tPredicate\tGround truth")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.3f\t%.3f ± %.3f\t%d\t%d\t%s\t%s\n",
				r.Thermometer, r.Context, r.Increase, r.IncreaseCI, r.S, r.F, r.Text, r.Class)
		}
		w.Flush()
		sb.WriteByte('\n')
	}
	section("a) sort descending by F(P)", t.ByF)
	section("b) sort descending by Increase(P)", t.ByIncrease)
	section("c) sort descending by harmonic mean (Importance)", t.ByImportance)
	return sb.String()
}

// Table2Row is one subject's summary statistics line (paper Table 2).
type Table2Row struct {
	Subject         string
	Successful      int
	Failing         int
	Sites           int
	PredsInitial    int
	PredsIncrease   int
	PredsEliminated int
}

// RunTable2 computes summary statistics for all five subjects.
func RunTable2(r *Runner) []Table2Row {
	var rows []Table2Row
	for _, name := range []string{"moss", "ccrypt", "bc", "exif", "rhythmbox"} {
		res := r.Result(name, harness.SampleUniform)
		in := res.CoreInput()
		agg := core.Aggregate(in)
		keep := core.FilterByIncrease(agg, core.Z95)
		ranked := core.Eliminate(in, core.ElimOptions{})
		rows = append(rows, Table2Row{
			Subject:         name,
			Successful:      res.Set.NumSuccessful(),
			Failing:         res.Set.NumFailing(),
			Sites:           res.Plan.NumSites(),
			PredsInitial:    res.Plan.NumPreds(),
			PredsIncrease:   len(keep),
			PredsEliminated: len(ranked),
		})
	}
	return rows
}

// RenderTable2 prints the summary table.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Subject\tSuccessful\tFailing\tSites\tInitial preds\tIncrease>0\tElimination")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Subject, r.Successful, r.Failing, r.Sites, r.PredsInitial, r.PredsIncrease, r.PredsEliminated)
	}
	w.Flush()
	return sb.String()
}

// Table3Row is one elimination-selected predictor with per-bug failing
// run counts (paper Table 3).
type Table3Row struct {
	Pred         int
	Text         string
	InitialTherm string
	EffTherm     string
	Initial      core.Scores
	Effective    core.Scores
	// PerBug maps bug id -> failing runs where both the predicate was
	// true and the bug occurred.
	PerBug map[int]int
	Class  PredictorClass
}

// Table3 is the MOSS validation experiment under nonuniform sampling.
type Table3 struct {
	Rows []Table3Row
	// BugIDs are the ground-truth bug ids, ascending.
	BugIDs []int
	// FailingPerBug counts failing runs per bug over the whole corpus.
	FailingPerBug map[int]int
	NumFailing    int
}

// RunTable3 reproduces the validation experiment: nonuniform sampling,
// elimination, ground-truth cross-tabulation.
func RunTable3(r *Runner) *Table3 {
	res := r.Result("moss", harness.SampleNonuniform)
	return CrossTab(res, 0)
}

// CrossTab runs elimination on a result and cross-tabulates the
// selected predictors against ground truth. maxPreds caps the list
// (0 = no cap).
func CrossTab(res *harness.Result, maxPreds int) *Table3 {
	in := res.CoreInput()
	full := core.Aggregate(in)
	ranked := core.Eliminate(in, core.ElimOptions{MaxPredictors: maxPreds})

	perBugTotal := res.FailingRunsPerBug()
	t := &Table3{
		BugIDs:        sortedBugIDs(perBugTotal),
		FailingPerBug: perBugTotal,
		NumFailing:    res.NumFailing(),
	}
	maxObs := full.NumF + full.NumS
	for _, rk := range ranked {
		row := Table3Row{
			Pred:      rk.Pred,
			Text:      res.PredText(rk.Pred),
			Initial:   rk.InitialScores,
			Effective: rk.EffectiveScores,
			PerBug:    map[int]int{},
			Class:     Classify(res, rk.Pred),
		}
		row.InitialTherm = thermo.Compute(rk.Initial, rk.InitialScores, maxObs).Text(20)
		row.EffTherm = thermo.Compute(rk.Effective, rk.EffectiveScores, maxObs).Text(20)
		for i := range res.Metas {
			m := &res.Metas[i]
			if !m.Failed() || !res.Set.Reports[i].True(int32(rk.Pred)) {
				continue
			}
			for _, b := range m.Bugs {
				row.PerBug[b]++
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Render prints the cross-tabulated predictor list.
func (t *Table3) Render() string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	header := "Initial\tEffective\tPredicate"
	for _, b := range t.BugIDs {
		header += fmt.Sprintf("\t#%d", b)
	}
	fmt.Fprintln(w, header)
	for _, row := range t.Rows {
		line := fmt.Sprintf("%s\t%s\t%s", row.InitialTherm, row.EffTherm, row.Text)
		for _, b := range t.BugIDs {
			line += fmt.Sprintf("\t%d", row.PerBug[b])
		}
		fmt.Fprintln(w, line)
	}
	w.Flush()
	footer := "failing runs per bug:"
	for _, b := range t.BugIDs {
		footer += fmt.Sprintf("  #%d=%d", b, t.FailingPerBug[b])
	}
	sb.WriteString(footer + "\n")
	return sb.String()
}

// SmallTable is the predictor list for one of the single-program case
// studies (paper Tables 4-7).
type SmallTable struct {
	Subject string
	Rows    []Table3Row
	// AffinityTop, for each row index, gives the predicate at the head
	// of its affinity list (sub-bug predictors point at their parent).
	AffinityTop []string
}

// RunSmallTable reproduces one of Tables 4-7 for the named subject.
func RunSmallTable(r *Runner, name string) *SmallTable {
	res := r.Result(name, harness.SampleUniform)
	ct := CrossTab(res, 0)
	st := &SmallTable{Subject: name, Rows: ct.Rows}

	in := res.CoreInput()
	var cands []int
	for _, row := range ct.Rows {
		cands = append(cands, row.Pred)
	}
	for _, row := range ct.Rows {
		top := core.TopAffinity(in, row.Pred, cands)
		if top < 0 {
			st.AffinityTop = append(st.AffinityTop, "")
		} else {
			st.AffinityTop = append(st.AffinityTop, res.PredText(top))
		}
	}
	return st
}

// Render prints the small predictor table.
func (t *SmallTable) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Predictors for %s\n", strings.ToUpper(t.Subject))
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Initial\tEffective\tPredicate\tGround truth\tTop affinity")
	for i, row := range t.Rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n",
			row.InitialTherm, row.EffTherm, row.Text, row.Class, t.AffinityTop[i])
	}
	w.Flush()
	return sb.String()
}
