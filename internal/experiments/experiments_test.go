package experiments

import (
	"strings"
	"testing"

	"cbi/internal/harness"
)

// One shared runner: experiments cache per (subject, mode), so the
// whole suite pays for each corpus once.
var testRunner = NewRunner(SmokeScale)

func TestTable1RankingShapes(t *testing.T) {
	t1 := RunTable1(testRunner, 8)
	if len(t1.ByF) == 0 || len(t1.ByIncrease) == 0 || len(t1.ByImportance) == 0 {
		t.Fatal("empty rankings")
	}
	// (a) maximizes F; (b) maximizes Increase; they disagree.
	if t1.ByF[0].F < t1.ByIncrease[0].F {
		t.Errorf("by-F top row has F=%d < by-Increase top row F=%d", t1.ByF[0].F, t1.ByIncrease[0].F)
	}
	if t1.ByIncrease[0].Increase < t1.ByF[0].Increase {
		t.Errorf("by-Increase top row has smaller Increase than by-F top row")
	}
	// The paper's observation: Increase-ranked top rows are (near-)
	// deterministic — very few successful runs.
	for _, r := range t1.ByIncrease[:min(3, len(t1.ByIncrease))] {
		if r.S > r.F {
			t.Errorf("by-Increase row %q has S=%d > F=%d; should be near-deterministic", r.Text, r.S, r.F)
		}
	}
	// The harmonic mean balances: its top row must have both a decent
	// Increase and a decent F.
	top := t1.ByImportance[0]
	if top.Increase < 0.2 {
		t.Errorf("importance top row Increase = %v, too small", top.Increase)
	}
	if top.F < t1.ByIncrease[0].F {
		t.Errorf("importance top row F = %d below the sub-bug predictors'", top.F)
	}
	out := t1.Render()
	for _, want := range []string{"sort descending by F(P)", "harmonic mean", "Thermometer"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2ReductionShape(t *testing.T) {
	rows := RunTable2(testRunner)
	if len(rows) != 5 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Failing == 0 {
			t.Errorf("%s: no failing runs", r.Subject)
		}
		if r.PredsIncrease == 0 {
			t.Errorf("%s: Increase filter kept nothing", r.Subject)
			continue
		}
		// The paper reports 2-4 orders of magnitude reduction; our
		// subjects are smaller, so require at least ~5x at the first
		// stage and further shrinkage at elimination.
		if float64(r.PredsIncrease) > float64(r.PredsInitial)/5 {
			t.Errorf("%s: weak Increase reduction: %d -> %d", r.Subject, r.PredsInitial, r.PredsIncrease)
		}
		if r.PredsEliminated == 0 || r.PredsEliminated > r.PredsIncrease {
			t.Errorf("%s: elimination selected %d of %d", r.Subject, r.PredsEliminated, r.PredsIncrease)
		}
	}
	if !strings.Contains(RenderTable2(rows), "moss") {
		t.Error("render missing subject")
	}
}

func TestTable3ValidationShape(t *testing.T) {
	t3 := RunTable3(testRunner)
	if len(t3.Rows) == 0 {
		t.Fatal("no predictors selected")
	}
	// Bug #8 never occurs, so it must not appear among the bug ids.
	for _, b := range t3.BugIDs {
		if b == 8 {
			t.Error("bug #8 (never triggered) appears in ground truth")
		}
	}
	// Every selected predictor's strongest bug column should be a real
	// spike: the paper's rows each concentrate on one bug.
	spiky := 0
	for _, row := range t3.Rows {
		totalRuns, maxRuns := 0, 0
		for _, c := range row.PerBug {
			totalRuns += c
			if c > maxRuns {
				maxRuns = c
			}
		}
		if totalRuns > 0 && float64(maxRuns) >= 0.5*float64(totalRuns) {
			spiky++
		}
	}
	if spiky*2 < len(t3.Rows) {
		t.Errorf("only %d/%d rows concentrate on a single bug", spiky, len(t3.Rows))
	}
	// Coverage: the selected list must cover most triggered crashing
	// bugs (bug #7 is masked, #9 needs the oracle and may be late).
	covered := map[int]bool{}
	for _, row := range t3.Rows {
		cls := row.Class
		if cls.Class == "bug" || cls.Class == "sub-bug" {
			covered[cls.Bug] = true
		}
	}
	for _, must := range []int{5, 4} { // the two most common crashing bugs
		if !covered[must] {
			t.Errorf("common bug #%d not covered by any selected predictor\n%s", must, t3.Render())
		}
	}
	if !strings.Contains(t3.Render(), "failing runs per bug") {
		t.Error("render missing footer")
	}
}

func TestSmallTables(t *testing.T) {
	for _, name := range []string{"ccrypt", "bc", "exif", "rhythmbox"} {
		t.Run(name, func(t *testing.T) {
			st := RunSmallTable(testRunner, name)
			if len(st.Rows) == 0 {
				t.Fatal("no predictors")
			}
			out := st.Render()
			if !strings.Contains(out, strings.ToUpper(name)) {
				t.Error("render missing subject name")
			}
		})
	}
}

func TestTable8Shape(t *testing.T) {
	rows := RunTable8(testRunner)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	reached := 0
	for _, r := range rows {
		if r.MinRuns > 0 {
			reached++
			if r.MinRuns > testRunner.Scale.Runs {
				t.Errorf("%s #%d: MinRuns %d exceeds corpus", r.Subject, r.Bug, r.MinRuns)
			}
		}
	}
	if reached == 0 {
		t.Error("no bug reached its importance threshold")
	}
	if !strings.Contains(RenderTable8(rows), "Runs N") {
		t.Error("render missing header")
	}
}

func TestTable9LogRegWeaknesses(t *testing.T) {
	t9 := RunTable9(testRunner)
	if len(t9.Rows) == 0 {
		t.Fatal("no coefficients")
	}
	// The paper's §4.4 complaints about the regression baseline:
	// (1) "highly redundant lists of predictors" — the top-10 repeats
	// predicates from the same sites/assignments;
	res := testRunner.Result("moss", harness.SampleUniform)
	sites := map[int]bool{}
	for _, r := range t9.Rows {
		sites[res.Plan.Preds[r.Pred].Site] = true
	}
	if len(sites) == len(t9.Rows) {
		t.Errorf("top-%d coefficients name %d distinct sites; expected redundancy\n%s",
			len(t9.Rows), len(sites), t9.Render())
	}
	// (2) it covers fewer distinct bugs than the elimination
	// algorithm's ranked list of the same length.
	logregBugs := map[int]bool{}
	for _, r := range t9.Rows {
		if r.Class.Class != "none" {
			logregBugs[r.Class.Bug] = true
		}
	}
	elimBugs := map[int]bool{}
	for _, row := range CrossTab(res, len(t9.Rows)).Rows {
		if row.Class.Class != "none" {
			elimBugs[row.Class.Bug] = true
		}
	}
	if len(logregBugs) >= len(elimBugs)+1 {
		t.Errorf("logreg top-10 covers %d bugs vs elimination's %d; expected elimination to cover at least as many",
			len(logregBugs), len(elimBugs))
	}
	if t9.Accuracy < 0.6 {
		t.Errorf("accuracy %.3f suspiciously low", t9.Accuracy)
	}
}

func TestStackStudies(t *testing.T) {
	studies, overall := RunStackStudies(testRunner)
	if len(studies) != 5 {
		t.Fatalf("studies: %d", len(studies))
	}
	for _, s := range studies {
		if s.NumCrashes == 0 {
			t.Errorf("%s: no crashes", s.Subject)
		}
	}
	// The paper's headline: stacks identify roughly half the bugs —
	// definitely not all of them, and not none.
	if overall <= 0 || overall >= 1 {
		t.Errorf("overall unique fraction %.2f should be strictly between 0 and 1", overall)
	}
	out := RenderStackStudies(studies, overall)
	if !strings.Contains(out, "unique stack signature") {
		t.Error("render missing summary")
	}
}

func TestDiscardAblation(t *testing.T) {
	a := RunDiscardAblation(testRunner, "moss")
	if len(a.Rows) != 3 {
		t.Fatalf("rows: %d", len(a.Rows))
	}
	for _, row := range a.Rows {
		if row.NumSelected == 0 {
			t.Errorf("policy %s selected nothing", row.Policy)
		}
		if row.BugsCovered == 0 {
			t.Errorf("policy %s covered nothing", row.Policy)
		}
	}
	if !strings.Contains(a.Render(), "discard-all") {
		t.Error("render missing policy")
	}
}

func TestDedupAblation(t *testing.T) {
	a := RunDedupAblation(testRunner, "ccrypt")
	if a.CandidatesAfter >= a.CandidatesBefore {
		t.Errorf("dedup did not shrink candidates: %d -> %d", a.CandidatesBefore, a.CandidatesAfter)
	}
	// The paper's claim: results are nearly identical. Require
	// substantial overlap of selected sites.
	if j := jaccardInts(a.Without, a.With); j < 0.5 {
		t.Errorf("dedup changed selected sites too much (jaccard %.2f)\n%s", j, a.Render())
	}
}

func jaccardInts(a, b []int) float64 {
	am := map[int]bool{}
	for _, x := range a {
		am[x] = true
	}
	bm := map[int]bool{}
	for _, x := range b {
		bm[x] = true
	}
	return jaccard(am, bm)
}

func TestSamplingAblation(t *testing.T) {
	a := RunSamplingAblation(testRunner, "ccrypt")
	if len(a.Selected["always"]) == 0 {
		t.Fatal("full observation selected nothing")
	}
	if !a.CoverageEqual {
		t.Errorf("sampling changed bug coverage\n%s", a.Render())
	}
}

func TestClassify(t *testing.T) {
	res := testRunner.Result("ccrypt", harness.SampleUniform)
	// Find the elimination top predictor; it must classify as a bug
	// predictor of bug 1.
	ct := CrossTab(res, 1)
	if len(ct.Rows) == 0 {
		t.Fatal("no predictor")
	}
	cls := ct.Rows[0].Class
	if cls.Bug != 1 {
		t.Errorf("top ccrypt predictor attributed to bug %d", cls.Bug)
	}
	if cls.Class == "none" {
		t.Error("top predictor classified as none")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestNullnessAblation(t *testing.T) {
	a := RunNullnessAblation(testRunner, "rhythmbox")
	if a.NullnessPreds <= a.BaselinePreds {
		t.Fatalf("nullness scheme added no predicates: %d -> %d", a.BaselinePreds, a.NullnessPreds)
	}
	// The rhythmbox bugs are heap-state bugs (destroyed/freed private
	// state); nullness predicates like `o->priv == null` after
	// destroy_player must survive the Increase test and rank as real
	// bug predictors (elimination may still prefer equivalent branch
	// predicates — redundancy, not weakness).
	if a.Surviving == 0 {
		t.Errorf("no nullness predicate passed the Increase test\n%s", a.Render())
	}
	if len(a.Top) == 0 || a.TopImportance[0] <= 0 {
		t.Errorf("no nullness predicate has positive Importance\n%s", a.Render())
	}
	foundBug := false
	for _, c := range a.Classes {
		if c.Class == "bug" || c.Class == "sub-bug" {
			foundBug = true
		}
	}
	if !foundBug {
		t.Errorf("no top nullness predicate classifies as a bug predictor\n%s", a.Render())
	}
	if !strings.Contains(a.Render(), "Nullness-scheme") {
		t.Error("render missing header")
	}
}

func TestRunnerDiskCache(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Runner {
		r := NewRunner(Scale{Runs: 300, TrainingRuns: 50})
		r.CacheDir = dir
		return r
	}
	a := mk().Result("ccrypt", harness.SampleUniform)
	// A second runner must load the persisted corpus, not regenerate.
	b := mk().Result("ccrypt", harness.SampleUniform)
	if len(a.Set.Reports) != len(b.Set.Reports) {
		t.Fatalf("cached corpus has %d reports, original %d", len(b.Set.Reports), len(a.Set.Reports))
	}
	for i := range a.Set.Reports {
		if a.Set.Reports[i].Failed != b.Set.Reports[i].Failed {
			t.Fatalf("cached corpus label %d differs", i)
		}
	}
	// Different scale must not reuse the file.
	r3 := NewRunner(Scale{Runs: 200, TrainingRuns: 50})
	r3.CacheDir = dir
	c := r3.Result("ccrypt", harness.SampleUniform)
	if len(c.Set.Reports) != 200 {
		t.Fatalf("scale-200 runner got %d reports", len(c.Set.Reports))
	}
}

func TestEngineTable(t *testing.T) {
	tbl := RunEngineTable(testRunner, []string{"moss"}, 20)
	if len(tbl.Rows) < 5 {
		t.Fatalf("expected every registered engine in the table, got %d rows", len(tbl.Rows))
	}
	byName := map[string]EngineTableRow{}
	for _, r := range tbl.Rows {
		byName[r.Engine] = r
		if r.Bugs == 0 {
			t.Errorf("%s: no ground-truth bugs tallied", r.Engine)
		}
		if r.Found > r.Bugs {
			t.Errorf("%s: found %d of %d bugs", r.Engine, r.Found, r.Bugs)
		}
		if r.MeanRank < 1 || r.MeanRank > float64(tbl.K+1) {
			t.Errorf("%s: mean rank %v outside [1, k+1]", r.Engine, r.MeanRank)
		}
		if r.Top1 > r.Top5 {
			t.Errorf("%s: top-1 rate %v exceeds top-5 rate %v", r.Engine, r.Top1, r.Top5)
		}
	}
	for _, want := range []string{"eliminate", "logreg", "stacktrace", "ochiai", "tarantula"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("engine %q missing from the table", want)
		}
	}
	// The paper's thesis, quantified: iterative elimination locates at
	// least as many bugs as any single-measure ranking.
	elim := byName["eliminate"]
	for _, n := range []string{"ochiai", "tarantula", "jaccard"} {
		if other := byName[n]; other.Found > elim.Found {
			t.Errorf("%s found %d bugs vs eliminate's %d; elimination should not lose", n, other.Found, elim.Found)
		}
	}
	// Rows are sorted best-first on (found, mean rank).
	for i := 1; i < len(tbl.Rows); i++ {
		a, b := tbl.Rows[i-1], tbl.Rows[i]
		if a.Found < b.Found {
			t.Errorf("rows not sorted by bugs found: %v before %v", a, b)
		}
	}
	// Determinism: the same runner must reproduce the table exactly —
	// the property the CI drift check relies on.
	again := RunEngineTable(testRunner, []string{"moss"}, 20)
	if tbl.RenderMarkdown() != again.RenderMarkdown() {
		t.Error("engine table is not deterministic for a fixed corpus")
	}
	out := tbl.RenderMarkdown()
	for _, want := range []string{"| Engine |", "| eliminate |", "subjects: moss"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown render missing %q", want)
		}
	}
}
