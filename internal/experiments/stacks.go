package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cbi/internal/harness"
	"cbi/internal/stacktrace"
)

// StackStudy reproduces §6's assessment of the industry-practice
// baseline: clustering crashes by stack signature and asking which
// bugs have unique signatures.
type StackStudy struct {
	Subject        string
	NumCrashes     int
	NumSignatures  int
	PerBug         []stacktrace.BugSignature
	FractionUnique float64
	// TopFrame repeats the analysis with top-of-stack-only signatures.
	TopFramePerBug         []stacktrace.BugSignature
	TopFrameFractionUnique float64
}

// RunStackStudy analyzes crash stacks for one subject.
func RunStackStudy(r *Runner, name string) *StackStudy {
	res := r.Result(name, harness.SampleUniform)
	var full, top []stacktrace.Run
	for i := range res.Metas {
		m := &res.Metas[i]
		if !m.Crashed || m.StackSig == "" {
			continue
		}
		full = append(full, stacktrace.Run{Sig: m.StackSig, Bugs: m.Bugs})
		top = append(top, stacktrace.Run{Sig: stacktrace.TopFrameOf(m.StackSig), Bugs: m.Bugs})
	}
	fullStats := stacktrace.Analyze(full)
	topStats := stacktrace.Analyze(top)
	return &StackStudy{
		Subject:                name,
		NumCrashes:             len(full),
		NumSignatures:          len(stacktrace.Clusters(full)),
		PerBug:                 fullStats,
		FractionUnique:         stacktrace.FractionUnique(fullStats),
		TopFramePerBug:         topStats,
		TopFrameFractionUnique: stacktrace.FractionUnique(topStats),
	}
}

// RunStackStudies analyzes all subjects and reports the overall
// fraction of bugs with unique stack signatures (paper: "in about half
// the cases the stack is useful").
func RunStackStudies(r *Runner) ([]*StackStudy, float64) {
	var out []*StackStudy
	unique, total := 0, 0
	for _, name := range []string{"moss", "ccrypt", "bc", "exif", "rhythmbox"} {
		s := RunStackStudy(r, name)
		out = append(out, s)
		for _, b := range s.PerBug {
			total++
			if b.Unique {
				unique++
			}
		}
	}
	frac := 0.0
	if total > 0 {
		frac = float64(unique) / float64(total)
	}
	return out, frac
}

// RenderStackStudies prints the per-subject stack analyses.
func RenderStackStudies(studies []*StackStudy, overall float64) string {
	var sb strings.Builder
	for _, s := range studies {
		fmt.Fprintf(&sb, "%s: %d crashes, %d distinct stack signatures\n",
			s.Subject, s.NumCrashes, s.NumSignatures)
		w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "Bug\tFailing\tSignatures\tUnique\tBest precision\tBest recall")
		for _, b := range s.PerBug {
			fmt.Fprintf(w, "#%d\t%d\t%d\t%v\t%.2f\t%.2f\n",
				b.Bug, b.Failing, len(b.Signatures), b.Unique, b.BestPrecision, b.BestRecall)
		}
		w.Flush()
		fmt.Fprintf(&sb, "unique fraction: %.2f (full chain), %.2f (top frame)\n\n",
			s.FractionUnique, s.TopFrameFractionUnique)
	}
	fmt.Fprintf(&sb, "overall: %.0f%% of bugs have a unique stack signature\n", overall*100)
	return sb.String()
}
