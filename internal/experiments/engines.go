package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cbi/internal/core"
	"cbi/internal/harness"

	// Register the full engine set (logreg, stacktrace) alongside the
	// core built-ins so the comparison covers every engine a collector
	// serves.
	_ "cbi/internal/logreg"
	_ "cbi/internal/stacktrace"
)

// EngineTableRow is one engine's ground-truth scorecard, pooled over
// every requested subject's seeded bugs.
type EngineTableRow struct {
	Engine string
	// Bugs counts ground-truth bugs with at least one failing run.
	Bugs int
	// Found counts bugs with a (sub-)bug predictor anywhere in the
	// engine's top-k list.
	Found int
	// Top1 and Top5 are the fractions of bugs whose first predictor
	// appears at rank 1 / within the top 5.
	Top1, Top5 float64
	// MeanRank averages each bug's first-predictor rank; a bug the
	// engine misses entirely counts as rank k+1.
	MeanRank float64
}

// EngineTable compares every registered scoring engine against the
// subjects' ground-truth bugs. It is the quantitative companion to
// ENGINES.md: which engine puts real bug predictors nearest the top.
type EngineTable struct {
	K        int
	Subjects []string
	Rows     []EngineTableRow
}

// RunEngineTable scores each subject's uniform-sampling corpus with
// every registered engine and ranks the engines by how early their
// lists surface a predictor for each seeded bug. A bug counts as found
// at the first rank whose predicate Classify()-ies as a bug or sub-bug
// predictor of it (super-bug predicates span several bugs and locate
// none). Engines iterate in sorted name order and bugs in ascending id
// order, so the table is deterministic for a fixed scale and subject
// list.
func RunEngineTable(r *Runner, subjectNames []string, k int) *EngineTable {
	t := &EngineTable{K: k, Subjects: subjectNames}
	miss := k + 1

	type tally struct {
		bugs, found, top1, top5, rankSum int
	}
	tallies := map[string]*tally{}
	names := core.EngineNames()
	for _, n := range names {
		tallies[n] = &tally{}
	}

	for _, subject := range subjectNames {
		res := r.Result(subject, harness.SampleUniform)
		in := res.CoreInput()
		bugIDs := sortedBugIDs(res.FailingRunsPerBug())
		for _, n := range names {
			e, ok := core.EngineByName(n)
			if !ok {
				continue
			}
			ranked := e.Score(in, k)
			// Classify each ranked predicate once; rank lists are short
			// (≤ k) and Classify scans the whole corpus.
			classes := make([]PredictorClass, len(ranked))
			for i, p := range ranked {
				classes[i] = Classify(res, p.Pred)
			}
			ta := tallies[n]
			for _, b := range bugIDs {
				ta.bugs++
				rank := miss
				for i, cls := range classes {
					if cls.Bug == b && (cls.Class == "bug" || cls.Class == "sub-bug") {
						rank = i + 1
						break
					}
				}
				ta.rankSum += rank
				if rank <= k {
					ta.found++
				}
				if rank == 1 {
					ta.top1++
				}
				if rank <= 5 {
					ta.top5++
				}
			}
		}
	}

	for _, n := range names {
		ta := tallies[n]
		row := EngineTableRow{Engine: n, Bugs: ta.bugs, Found: ta.found}
		if ta.bugs > 0 {
			row.Top1 = float64(ta.top1) / float64(ta.bugs)
			row.Top5 = float64(ta.top5) / float64(ta.bugs)
			row.MeanRank = float64(ta.rankSum) / float64(ta.bugs)
		}
		t.Rows = append(t.Rows, row)
	}
	// Best engine first: most bugs found, then lowest mean rank, then
	// name for a total order.
	sort.SliceStable(t.Rows, func(i, j int) bool {
		a, b := t.Rows[i], t.Rows[j]
		if a.Found != b.Found {
			return a.Found > b.Found
		}
		if a.MeanRank != b.MeanRank {
			return a.MeanRank < b.MeanRank
		}
		return a.Engine < b.Engine
	})
	return t
}

// RenderMarkdown prints the comparison as the markdown table embedded
// in EXPERIMENTS.md. CI regenerates the smoke-scale variant and diffs
// the `|` rows against the committed copy, so the format must stay
// byte-stable for a fixed corpus.
func (t *EngineTable) RenderMarkdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "subjects: %s (top-%d lists; a missed bug counts as rank %d)\n\n",
		strings.Join(t.Subjects, ", "), t.K, t.K+1)
	sb.WriteString("| Engine | Bugs found | Top-1 | Top-5 | Mean rank |\n")
	sb.WriteString("|---|---|---|---|---|\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "| %s | %d/%d | %.2f | %.2f | %.1f |\n",
			r.Engine, r.Found, r.Bugs, r.Top1, r.Top5, r.MeanRank)
	}
	return sb.String()
}
