// Package migrate is the control plane of an elastic ring resize: it
// drives a router's /v1/ring state machine and streams the moving
// state shard-to-shard so that adding or removing a collector is
// first-class, exact, and zero-downtime.
//
// The controller owns sequencing, not data: every byte moves through
// the collectors' own endpoints (POST /v1/export on the source, the
// ordinary POST /v1/merge on the destination, POST /v1/evict back on
// the source), so the collectors' WAL, dedup, and snapshot machinery
// give the migration its crash safety for free. One resize runs as:
//
//  1. stage    POST /v1/ring {add|remove, url} — the router computes
//     which hash-circle arcs move and to whom;
//  2. stream   per migration, export → merge → evict chunks until the
//     source has nothing retained in the moving ranges
//     (writes keep flowing; the watermark ratchets forward);
//  3. pause    the router parks writes into the moving ranges in a
//     bounded buffer; the controller waits for the source's
//     pipeline (router queue + collector apply queue) to
//     drain, then ships the final chunks;
//  4. cutover  the router routes the ranges to the new owner and
//     flushes the parked writes there;
//  5. commit   the target ring becomes the serving ring.
//
// A removal is the same machinery pointed at everything the victim
// holds (a drain export matches every retained run, plus a residual
// transfer for counters beyond the retained window).
//
// Exactness under crashes: chunk batch ids are deterministic in
// (migration, source epoch, watermark), so a re-delivered chunk dedups
// at the destination; eviction names exact record bytes, so a re-posted
// evict is a no-op for whatever already left. A crashed controller
// simply reruns `cbi resize` — the router's GET /v1/ring says what was
// staged, and re-streaming from sequence zero converges on the same
// end state.
package migrate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	"cbi/internal/corpus"
	"cbi/internal/shard"
)

// Config configures a Controller.
type Config struct {
	// Router is the router base URL whose ring is being resized.
	Router string
	// APIKey, when set, is presented (Bearer) on POST /v1/ring and on
	// the collectors' write endpoints (export, merge, evict, residual).
	APIKey string
	// ChunkRuns bounds one export chunk (default 512 runs).
	ChunkRuns int
	// DrainTimeout bounds the pause-phase wait for the source pipeline
	// to quiesce (default 60s).
	DrainTimeout time.Duration
	// Poll is the drain-wait polling period (default 50ms).
	Poll time.Duration
	// HTTP, when set, overrides the controller's HTTP client.
	HTTP *http.Client
	// Logf receives progress diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// Result summarizes a completed resize.
type Result struct {
	Action      string `json:"action"`
	Slot        int    `json:"slot"`
	Migrations  int    `json:"migrations"`
	RunsMoved   int64  `json:"runs_moved"`
	BytesMoved  int64  `json:"bytes_moved"`
	RingVersion uint64 `json:"ring_version"`
}

// Controller drives one router's resizes.
type Controller struct {
	cfg  Config
	hc   *http.Client
	logf func(string, ...any)
}

// New builds a controller for the router in cfg.
func New(cfg Config) (*Controller, error) {
	if cfg.Router == "" {
		return nil, fmt.Errorf("migrate: controller needs a router URL")
	}
	if cfg.ChunkRuns <= 0 {
		cfg.ChunkRuns = 512
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 60 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Controller{cfg: cfg, hc: hc, logf: cfg.Logf}, nil
}

// Add brings a new collector into the ring, streaming the arcs it takes
// over from their current owners.
func (c *Controller) Add(ctx context.Context, url string) (*Result, error) {
	return c.Resize(ctx, "add", url)
}

// Remove drains a collector out of the ring: everything it holds moves
// to the surviving backends.
func (c *Controller) Remove(ctx context.Context, url string) (*Result, error) {
	return c.Resize(ctx, "remove", url)
}

// Resize runs one full resize to completion. If a matching resize is
// already staged (a previous controller crashed mid-flight), it resumes
// it instead of failing.
func (c *Controller) Resize(ctx context.Context, action, url string) (*Result, error) {
	st, err := c.stage(ctx, action, url)
	if err != nil {
		return nil, err
	}
	if st.Resize == nil {
		return nil, fmt.Errorf("migrate: router staged no resize")
	}
	res := &Result{Action: action, Slot: st.Resize.Slot, Migrations: len(st.Resize.Migrations)}
	byURL := make(map[int]string, len(st.Backends))
	for _, b := range st.Backends {
		byURL[b.Slot] = b.URL
	}

	// Per-migration stream state: the export watermark ratchets across
	// the streaming and final phases. A removal streams once as a full
	// drain (the victim's run log may hold failover-rerouted runs whose
	// keys fall outside its owned arcs; a drain catches those too).
	type task struct {
		id       string
		src, dst string
		srcSlot  int
		ranges   []corpus.KeyRange
		drain    bool
		st       streamState
	}
	var tasks []*task
	if action == "remove" {
		victim := byURL[st.Resize.Slot]
		dst := byURL[st.Resize.Migrations[0].To]
		tasks = append(tasks, &task{
			id:  fmt.Sprintf("drain%d", st.Resize.Slot),
			src: victim, dst: dst, srcSlot: st.Resize.Slot, drain: true,
		})
	} else {
		for _, mg := range st.Resize.Migrations {
			tasks = append(tasks, &task{
				id:  mg.ID,
				src: byURL[mg.From], dst: byURL[mg.To], srcSlot: mg.From,
				ranges: mg.Ranges,
			})
		}
	}

	// Phase 2: stream while writes keep flowing.
	for _, t := range tasks {
		if err := c.stream(ctx, t.src, t.dst, t.id, t.ranges, t.drain, &t.st, res); err != nil {
			return nil, fmt.Errorf("migrate: streaming %s: %w", t.id, err)
		}
	}

	// Phase 3: pause the moving ranges, wait for everything already
	// acked to land at the sources, then ship the final chunks cut at a
	// watermark nothing can move past.
	if _, err := c.postRing(ctx, "pause", ""); err != nil {
		return nil, fmt.Errorf("migrate: pause: %w", err)
	}
	c.logf("migrate: paused %d migration(s); waiting for sources to quiesce", len(tasks))
	slots := make(map[int]string)
	for _, t := range tasks {
		slots[t.srcSlot] = t.src
	}
	if err := c.waitDrained(ctx, slots); err != nil {
		return nil, fmt.Errorf("migrate: drain wait: %w", err)
	}
	for _, t := range tasks {
		if err := c.stream(ctx, t.src, t.dst, t.id, t.ranges, t.drain, &t.st, res); err != nil {
			return nil, fmt.Errorf("migrate: final chunks for %s: %w", t.id, err)
		}
	}

	// Phase 4: cut the ranges over to their new owners (the router
	// flushes the parked writes there).
	if _, err := c.postRing(ctx, "cutover", ""); err != nil {
		return nil, fmt.Errorf("migrate: cutover: %w", err)
	}
	c.logf("migrate: cut over %d migration(s)", len(tasks))

	if action == "remove" {
		// Until commit the victim can still catch failover traffic for
		// non-moving ranges (it is another backend's fallback). Quiesce
		// and drain once more so nothing retained is stranded, then move
		// the residual counters the run window cannot explain.
		t := tasks[0]
		if err := c.waitDrained(ctx, slots); err != nil {
			return nil, fmt.Errorf("migrate: post-cutover drain wait: %w", err)
		}
		if err := c.stream(ctx, t.src, t.dst, t.id, t.ranges, t.drain, &t.st, res); err != nil {
			return nil, fmt.Errorf("migrate: post-cutover chunks: %w", err)
		}
		if err := c.moveResidual(ctx, t.src, t.dst, t.id); err != nil {
			return nil, fmt.Errorf("migrate: residual: %w", err)
		}
	}

	// Phase 5: adopt the target ring.
	final, err := c.postRing(ctx, "commit", "")
	if err != nil {
		return nil, fmt.Errorf("migrate: commit: %w", err)
	}
	res.RingVersion = final.Version
	c.logf("migrate: %s of %s committed (ring v%d, %d runs / %d bytes moved)",
		action, url, final.Version, res.RunsMoved, res.BytesMoved)
	return res, nil
}

// stage posts the add/remove action, resuming a matching staged resize
// instead of failing when one is already in flight.
func (c *Controller) stage(ctx context.Context, action, url string) (*shard.RingStatus, error) {
	st, err := c.postRing(ctx, action, url)
	if err == nil {
		return st, nil
	}
	cur, gerr := c.getRing(ctx)
	if gerr != nil || cur.Resize == nil || cur.Resize.Action != action {
		return nil, err
	}
	staged := ""
	for _, b := range cur.Backends {
		if b.Slot == cur.Resize.Slot {
			staged = b.URL
		}
	}
	if staged != url {
		return nil, fmt.Errorf("migrate: a different %s resize is staged (%s); finish or commit it first", action, staged)
	}
	c.logf("migrate: resuming staged %s of %s", action, url)
	return cur, nil
}

// streamState is one migration's export cursor.
type streamState struct {
	epoch string
	since uint64
}

// exportChunk is one delivered export: the verbatim gzip body plus the
// resume metadata from the headers.
type exportChunk struct {
	body      []byte
	epoch     string
	watermark uint64
	remaining int
}

// stream moves chunks source → destination until the source has nothing
// retained (past the watermark) in the migration's ranges. Each chunk
// is merged at the destination under a deterministic batch id, then
// evicted at the source by posting the identical body back.
func (c *Controller) stream(ctx context.Context, src, dst, migID string, ranges []corpus.KeyRange, drain bool, st *streamState, res *Result) error {
	for {
		chunk, err := c.export(ctx, src, ranges, drain, st)
		if err != nil {
			return err
		}
		if chunk.watermark == st.since {
			return nil // nothing new past the watermark
		}
		id := fmt.Sprintf("migrate-%s-e%s-w%d", migID, chunk.epoch, chunk.watermark)
		if err := c.merge(ctx, dst, chunk.body, id); err != nil {
			return fmt.Errorf("delivering chunk %s: %w", id, err)
		}
		evicted, err := c.evict(ctx, src, chunk.body)
		if err != nil {
			return fmt.Errorf("evicting chunk %s: %w", id, err)
		}
		st.since = chunk.watermark
		res.RunsMoved += evicted
		res.BytesMoved += int64(len(chunk.body))
		c.logf("migrate: %s moved %d runs (watermark %d, %d remaining)", migID, evicted, chunk.watermark, chunk.remaining)
	}
}

// export fetches the next chunk. A 409 means the source restarted and
// renumbered its log: adopt the new epoch and restart from sequence
// zero — eviction is idempotent and chunk ids are epoch-scoped, so the
// replay converges without double-counting.
func (c *Controller) export(ctx context.Context, src string, ranges []corpus.KeyRange, drain bool, st *streamState) (*exportChunk, error) {
	for attempt := 0; ; attempt++ {
		body, err := json.Marshal(map[string]any{
			"ranges":    ranges,
			"since_seq": st.since,
			"epoch":     st.epoch,
			"max_runs":  c.cfg.ChunkRuns,
			"drain":     drain,
		})
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, src+"/v1/export", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		c.auth(req)
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusConflict && attempt == 0 {
			next := resp.Header.Get("X-CBI-Export-Epoch")
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			if next == "" {
				return nil, fmt.Errorf("POST /v1/export: 409 without a new epoch")
			}
			c.logf("migrate: source %s restarted (epoch %s → %s); re-exporting from zero", src, st.epoch, next)
			st.epoch, st.since = next, 0
			continue
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			return nil, fmt.Errorf("POST /v1/export: %d: %s", resp.StatusCode, msg)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		chunk := &exportChunk{body: data, epoch: resp.Header.Get("X-CBI-Export-Epoch")}
		chunk.watermark, err = strconv.ParseUint(resp.Header.Get("X-CBI-Export-Watermark"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad export watermark: %v", err)
		}
		chunk.remaining, _ = strconv.Atoi(resp.Header.Get("X-CBI-Export-Remaining"))
		if st.epoch == "" {
			st.epoch = chunk.epoch
		}
		return chunk, nil
	}
}

// merge delivers an export chunk to the destination through the
// ordinary shard-merge endpoint. The batch id makes redelivery a dedup
// hit, never a double-count.
func (c *Controller) merge(ctx context.Context, dst string, body []byte, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, dst+"/v1/merge", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-cbi-merge+gzip")
	req.Header.Set("Content-Encoding", "gzip")
	req.Header.Set("X-CBI-Batch-ID", id)
	c.auth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("POST /v1/merge: %d: %s", resp.StatusCode, msg)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	return nil
}

// evict posts a delivered chunk back to the source, which removes and
// un-counts exactly those records. Returns how many were evicted (zero
// on a repeat — idempotent).
func (c *Controller) evict(ctx context.Context, src string, body []byte) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, src+"/v1/evict", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/x-cbi-merge+gzip")
	req.Header.Set("Content-Encoding", "gzip")
	c.auth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return 0, fmt.Errorf("POST /v1/evict: %d: %s", resp.StatusCode, msg)
	}
	var ack struct {
		EvictedRuns int64 `json:"evicted_runs"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<10)).Decode(&ack); err != nil {
		return 0, fmt.Errorf("decoding evict ack: %v", err)
	}
	return ack.EvictedRuns, nil
}

// moveResidual transfers a drained collector's beyond-window counters
// (history no retained run explains) to the destination, then commits
// the subtraction at the source. Compute → deliver → commit, each leg
// idempotent or deduped, so a crash at any point re-runs cleanly.
func (c *Controller) moveResidual(ctx context.Context, src, dst, migID string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, src+"/v1/residual", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	epoch := resp.Header.Get("X-CBI-Export-Epoch")
	if resp.StatusCode == http.StatusNoContent {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		return fmt.Errorf("GET /v1/residual: %d: %s", resp.StatusCode, msg)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	id := fmt.Sprintf("migrate-%s-residual-e%s", migID, epoch)
	if err := c.merge(ctx, dst, body, id); err != nil {
		return fmt.Errorf("delivering residual: %w", err)
	}
	commit, err := http.NewRequestWithContext(ctx, http.MethodPost, src+"/v1/residual", bytes.NewReader(body))
	if err != nil {
		return err
	}
	commit.Header.Set("Content-Type", "application/x-cbi-merge+gzip")
	commit.Header.Set("Content-Encoding", "gzip")
	commit.Header.Set("X-CBI-Batch-ID", id)
	c.auth(commit)
	cresp, err := c.hc.Do(commit)
	if err != nil {
		return err
	}
	defer cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(cresp.Body, 4<<10))
		return fmt.Errorf("POST /v1/residual: %d: %s", cresp.StatusCode, msg)
	}
	io.Copy(io.Discard, io.LimitReader(cresp.Body, 4<<10))
	c.logf("migrate: %s residual counters moved and committed", migID)
	return nil
}

// collectorQueue is the subset of the collector's /v1/stats the drain
// wait reads.
type collectorQueue struct {
	QueueDepth      int   `json:"queue_depth"`
	ReportsEnqueued int64 `json:"reports_enqueued"`
	ReportsApplied  int64 `json:"reports_applied"`
}

// waitDrained blocks until every source's pipeline is quiet: nothing
// queued or in flight for its slot at the router, and the collector has
// applied everything it enqueued. Only then is the export watermark
// final — every acked write either reached the source's run log (the
// final chunk carries it) or is parked in the router's migration buffer
// (the cutover flush delivers it to the destination).
func (c *Controller) waitDrained(ctx context.Context, slots map[int]string) error {
	deadline := time.Now().Add(c.cfg.DrainTimeout)
	for {
		quiet := true
		ring, err := c.getRing(ctx)
		if err != nil {
			return err
		}
		for _, b := range ring.Backends {
			if _, ok := slots[b.Slot]; ok && (b.QueueDepth > 0 || b.Inflight > 0) {
				quiet = false
			}
		}
		if quiet {
			for _, url := range slots {
				q, err := c.collectorStats(ctx, url)
				if err != nil {
					return err
				}
				if q.QueueDepth > 0 || q.ReportsApplied != q.ReportsEnqueued {
					quiet = false
					break
				}
			}
		}
		if quiet {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sources did not quiesce within %s", c.cfg.DrainTimeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.cfg.Poll):
		}
	}
}

func (c *Controller) collectorStats(ctx context.Context, url string) (*collectorQueue, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("GET %s/v1/stats: %d: %s", url, resp.StatusCode, msg)
	}
	var q collectorQueue
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&q); err != nil {
		return nil, err
	}
	return &q, nil
}

// getRing fetches the router's topology.
func (c *Controller) getRing(ctx context.Context) (*shard.RingStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.Router+"/v1/ring", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("GET /v1/ring: %d: %s", resp.StatusCode, msg)
	}
	var st shard.RingStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// postRing drives the ring state machine one action forward.
func (c *Controller) postRing(ctx context.Context, action, url string) (*shard.RingStatus, error) {
	body, err := json.Marshal(map[string]string{"action": action, "url": url})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.Router+"/v1/ring", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.auth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("POST /v1/ring %s: %d: %s", action, resp.StatusCode, msg)
	}
	var st shard.RingStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (c *Controller) auth(req *http.Request) {
	if c.cfg.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.APIKey)
	}
}
