package migrate

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"cbi/internal/collector"
	"cbi/internal/harness"
	"cbi/internal/report"
	"cbi/internal/shard"
	"cbi/internal/subjects"
)

var (
	corpusOnce sync.Once
	corpusRes  *harness.Result
)

// testCorpus runs one shared ccrypt experiment — a real subject corpus
// with real failures — reused by every test in the package.
func testCorpus(t *testing.T) *harness.Result {
	t.Helper()
	corpusOnce.Do(func() {
		corpusRes = harness.Run(harness.Config{
			Subject: subjects.Ccrypt(),
			Runs:    1000,
			Mode:    harness.SampleUniform,
			Workers: 4,
		})
	})
	if corpusRes.NumFailing() == 0 {
		t.Fatal("test corpus has no failing runs; exactness tests are vacuous")
	}
	return corpusRes
}

func quietLogf(string, ...any) {}

// swapFront is a stable address in front of a collector that can be
// "crashed": the serving instance is closed and a replacement restored
// from the same on-disk snapshot+WAL takes over — a shard process
// restarting behind a fixed URL, as the router and the migration
// controller would see it.
type swapFront struct {
	mu  sync.RWMutex
	srv *collector.Server
}

func (f *swapFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	f.srv.Handler().ServeHTTP(w, r)
}

// crashAndRestore kills the current instance and boots a replacement
// from cfg's durable state. Requests in flight finish against the old
// instance; requests arriving during the restart block until the new
// one serves.
func (f *swapFront) crashAndRestore(t *testing.T, cfg collector.Config) {
	t.Helper()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.srv.Close()
	srv, err := collector.New(cfg)
	if err != nil {
		t.Errorf("restoring crashed collector: %v", err)
		return
	}
	f.srv = srv
}

// hookTransport lets a test observe (and react to) every response the
// migration controller receives — the lever for injecting a shard crash
// or a controller interruption at an exact protocol step.
type hookTransport struct {
	mu   sync.Mutex
	hook func(req *http.Request, resp *http.Response)
}

func (ht *hookTransport) setHook(h func(*http.Request, *http.Response)) {
	ht.mu.Lock()
	ht.hook = h
	ht.mu.Unlock()
}

func (ht *hookTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err == nil {
		ht.mu.Lock()
		h := ht.hook
		ht.mu.Unlock()
		if h != nil {
			h(req, resp)
		}
	}
	return resp, err
}

// streamReports pushes a slice of the corpus through the router from
// numClients fixed identities, so shard placement is deterministic and
// every phase's writes spread over the ring.
func streamReports(url string, set *report.Set, reports []*report.Report, pace time.Duration) error {
	const numClients = 12
	var wg sync.WaitGroup
	errs := make(chan error, numClients)
	for w := 0; w < numClients; w++ {
		client := collector.NewClient(url, set.NumSites, set.NumPreds,
			collector.WithBatchSize(7+3*w),
			collector.WithClientID(fmt.Sprintf("client-%d", w)))
		wg.Add(1)
		go func(w int, client *collector.Client) {
			defer wg.Done()
			ctx := context.Background()
			for i := w; i < len(reports); i += numClients {
				if err := client.Add(ctx, reports[i]); err != nil {
					errs <- err
					return
				}
				if pace > 0 {
					time.Sleep(pace)
				}
			}
			errs <- client.Flush(ctx)
		}(w, client)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func collectorRuns(t *testing.T, url string) int64 {
	t.Helper()
	var st collector.Stats
	if code := getJSON(t, url+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("GET %s/v1/stats = %d", url, code)
	}
	return st.Runs
}

// TestResizeExactness is the headline property of elastic resharding: a
// deployment resized 2→3 and then 3→2 while writes are flowing — with a
// source shard crashing and restarting mid-migration, and the
// controller itself killed and re-run mid-drain — ends up serving
// /v1/scores, /v1/predictors, and /v1/stats element-for-element
// identical to one never-resized collector over the same corpus.
func TestResizeExactness(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	baseCfg := collector.Config{
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		Fingerprint: res.Plan.Fingerprint(),
		Logf:        quietLogf,
	}

	// c0 is crash-capable: durable snapshot+WAL behind a stable front.
	dir := t.TempDir()
	c0cfg := baseCfg
	c0cfg.SnapshotPath = filepath.Join(dir, "c0.snap")
	c0cfg.WALPath = filepath.Join(dir, "c0.wal")
	c0srv, err := collector.New(c0cfg)
	if err != nil {
		t.Fatal(err)
	}
	front0 := &swapFront{srv: c0srv}
	ts0 := httptest.NewServer(front0)
	t.Cleanup(ts0.Close)

	newShard := func() *httptest.Server {
		srv, err := collector.New(baseCfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	ts1 := newShard()
	ts2 := newShard() // the newcomer; not on the initial ring

	router, err := shard.NewRouter(shard.RouterConfig{
		Backends:       []string{ts0.URL, ts1.URL},
		HealthInterval: 100 * time.Millisecond,
		Logf:           quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	rt := httptest.NewServer(router.Handler())
	t.Cleanup(rt.Close)

	reports := in.Set.Reports
	third := len(reports) / 3
	ctx := context.Background()

	// Phase 1: a third of the corpus lands on the 2-shard ring.
	if err := streamReports(rt.URL, in.Set, reports[:third], 0); err != nil {
		t.Fatal(err)
	}

	// Phase 2: grow 2→3 while the second third streams in. The hooked
	// transport crashes and restores c0 right after its first evict ack —
	// the controller must adopt c0's new log epoch (409) and re-stream
	// from sequence zero without double-counting what already moved.
	ht := &hookTransport{}
	var crashOnce sync.Once
	crashed := make(chan struct{})
	ht.setHook(func(req *http.Request, resp *http.Response) {
		if req.URL.Path == "/v1/evict" && req.URL.Host == ts0.Listener.Addr().String() &&
			resp.StatusCode == http.StatusOK {
			crashOnce.Do(func() {
				front0.crashAndRestore(t, c0cfg)
				close(crashed)
			})
		}
	})
	ctrl, err := New(Config{
		Router:       rt.URL,
		ChunkRuns:    48,
		DrainTimeout: 30 * time.Second,
		Poll:         10 * time.Millisecond,
		HTTP:         &http.Client{Transport: ht, Timeout: 30 * time.Second},
		Logf:         quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ingestErr := make(chan error, 1)
	go func() {
		ingestErr <- streamReports(rt.URL, in.Set, reports[third:2*third], 200*time.Microsecond)
	}()
	addRes, err := ctrl.Add(ctx, ts2.URL)
	if err != nil {
		t.Fatalf("add resize: %v", err)
	}
	if err := <-ingestErr; err != nil {
		t.Fatalf("ingest during add: %v", err)
	}
	select {
	case <-crashed:
	default:
		t.Fatal("the source shard never crashed mid-migration; the crash-resume path went untested")
	}
	if addRes.RingVersion != 2 {
		t.Fatalf("ring version after add = %d, want 2", addRes.RingVersion)
	}
	if got := collectorRuns(t, ts2.URL); got == 0 {
		t.Fatal("newcomer shard holds no runs after the add migration")
	}

	// Phase 3: shrink 3→2 by draining c0 while the final third streams
	// in. The controller is killed after its first evict (context cancel)
	// and a fresh `cbi resize` resumes the staged remove to completion.
	ht.setHook(nil)
	ictx, interrupt := context.WithCancel(ctx)
	defer interrupt()
	var intOnce sync.Once
	ht2 := &hookTransport{}
	ht2.setHook(func(req *http.Request, resp *http.Response) {
		if req.URL.Path == "/v1/evict" && resp.StatusCode == http.StatusOK {
			intOnce.Do(interrupt)
		}
	})
	interrupted, err := New(Config{
		Router:    rt.URL,
		ChunkRuns: 48,
		HTTP:      &http.Client{Transport: ht2, Timeout: 30 * time.Second},
		Logf:      quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		ingestErr <- streamReports(rt.URL, in.Set, reports[2*third:], 200*time.Microsecond)
	}()
	if _, err := interrupted.Remove(ictx, ts0.URL); err == nil {
		t.Fatal("interrupted controller finished the remove; the interruption never fired")
	}
	resumed, err := New(Config{
		Router:       rt.URL,
		ChunkRuns:    48,
		DrainTimeout: 30 * time.Second,
		Poll:         10 * time.Millisecond,
		Logf:         quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rmRes, err := resumed.Remove(ctx, ts0.URL)
	if err != nil {
		t.Fatalf("resumed remove: %v", err)
	}
	if err := <-ingestErr; err != nil {
		t.Fatalf("ingest during remove: %v", err)
	}
	if rmRes.RingVersion != 3 {
		t.Fatalf("ring version after remove = %d, want 3", rmRes.RingVersion)
	}
	if err := router.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := collectorRuns(t, ts0.URL); got != 0 {
		t.Fatalf("drained shard still holds %d runs; remove left state behind", got)
	}

	// The ring itself reflects both resizes: the victim is inactive, the
	// newcomer active, and no resize is left in flight.
	var ring shard.RingStatus
	getJSON(t, rt.URL+"/v1/ring", &ring)
	if ring.Resize != nil {
		t.Fatalf("a resize is still staged after commit: %+v", ring.Resize)
	}
	active := map[string]bool{}
	for _, b := range ring.Backends {
		active[b.URL] = b.Active
	}
	if active[ts0.URL] || !active[ts1.URL] || !active[ts2.URL] {
		t.Fatalf("ring active set wrong after resizes: %v", active)
	}

	// Zero write-path loss across both resizes: nothing dropped, nothing
	// refused for want of a shard.
	var rst shard.RouterStats
	getJSON(t, rt.URL+"/v1/stats", &rst)
	if rst.Dropped != 0 || rst.NoShards != 0 {
		t.Fatalf("write path lost traffic during resizes: %+v", rst)
	}

	// The gateway discovers the post-resize shard set from the router's
	// ring — no static shard list.
	gwSrv, err := shard.NewGateway(shard.GatewayConfig{
		RingFrom:    rt.URL,
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		Fingerprint: res.Plan.Fingerprint(),
		Timeout:     5 * time.Second,
		Logf:        quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gwSrv.Close)
	gw := httptest.NewServer(gwSrv.Handler())
	t.Cleanup(gw.Close)

	// Reference: one collector that ingested the same corpus, never
	// resized.
	refSrv, err := collector.New(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := httptest.NewServer(refSrv.Handler())
	t.Cleanup(ref.Close)
	for _, r := range reports {
		refSrv.Ingest(r)
	}

	// Wait for both sides to finish applying, then compare element for
	// element.
	deadline := time.Now().Add(30 * time.Second)
	var gwStats shard.GatewayStats
	for {
		getJSON(t, gw.URL+"/v1/stats", &gwStats)
		if gwStats.Runs == int64(len(reports)) && refSrv.StatsNow().ReportsApplied == int64(len(reports)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resized deployment applied %d of %d runs before deadline", gwStats.Runs, len(reports))
		}
		time.Sleep(5 * time.Millisecond)
	}
	var refStats collector.Stats
	getJSON(t, ref.URL+"/v1/stats", &refStats)
	if gwStats.Runs != refStats.Runs || gwStats.Failing != refStats.Failing {
		t.Fatalf("resized /v1/stats (%d runs, %d failing) != reference (%d runs, %d failing)",
			gwStats.Runs, gwStats.Failing, refStats.Runs, refStats.Failing)
	}

	var gotScores, wantScores []collector.ScoreEntry
	getJSON(t, gw.URL+"/v1/scores?k=30", &gotScores)
	getJSON(t, ref.URL+"/v1/scores?k=30", &wantScores)
	if len(wantScores) == 0 {
		t.Fatal("reference collector returned no scores")
	}
	if !reflect.DeepEqual(gotScores, wantScores) {
		t.Fatalf("resized /v1/scores diverges from never-resized collector:\n got %+v\nwant %+v", gotScores, wantScores)
	}

	var gotPreds, wantPreds []collector.PredictorEntry
	getJSON(t, gw.URL+"/v1/predictors?k=0&affinity=3", &gotPreds)
	getJSON(t, ref.URL+"/v1/predictors?k=0&affinity=3", &wantPreds)
	if len(wantPreds) == 0 {
		t.Fatal("reference collector returned no predictors")
	}
	if !reflect.DeepEqual(gotPreds, wantPreds) {
		t.Fatalf("resized /v1/predictors diverges from never-resized collector:\n got %+v\nwant %+v", gotPreds, wantPreds)
	}
}

// syntheticSet builds a deterministic corpus for the benchmark.
func syntheticSet(n int) (*report.Set, []int32) {
	const numSites, numPreds = 32, 96
	siteOf := make([]int32, numPreds)
	for p := range siteOf {
		siteOf[p] = int32(p / 3)
	}
	rng := rand.New(rand.NewSource(42))
	set := &report.Set{NumSites: numSites, NumPreds: numPreds}
	allSites := make([]int32, numSites)
	for s := range allSites {
		allSites[s] = int32(s)
	}
	for i := 0; i < n; i++ {
		r := &report.Report{Failed: rng.Intn(4) == 0, ObservedSites: allSites}
		for p := 0; p < numPreds; p++ {
			if rng.Intn(3) == 0 {
				r.TruePreds = append(r.TruePreds, int32(p))
			}
		}
		set.Reports = append(set.Reports, r)
	}
	return set, siteOf
}

// BenchmarkMigrationThroughput measures the streaming leg of a
// migration: export → merge → evict of a 512-run drain between two live
// collectors, per iteration.
func BenchmarkMigrationThroughput(b *testing.B) {
	const runsPerIter = 512
	set, siteOf := syntheticSet(runsPerIter)
	mk := func() (*collector.Server, *httptest.Server) {
		srv, err := collector.New(collector.Config{
			NumSites: set.NumSites, NumPreds: set.NumPreds, SiteOf: siteOf,
			Logf: quietLogf,
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(ts.Close)
		return srv, ts
	}
	src, srcTS := mk()
	_, dstTS := mk()
	c, err := New(Config{Router: "http://unused", ChunkRuns: 128, Logf: quietLogf})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	st := &streamState{}
	total := &Result{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, r := range set.Reports {
			src.Ingest(r)
		}
		deadline := time.Now().Add(30 * time.Second)
		for src.StatsNow().ReportsApplied < int64((i+1)*runsPerIter) {
			if time.Now().After(deadline) {
				b.Fatal("source never applied the seeded runs")
			}
			time.Sleep(time.Millisecond)
		}
		b.StartTimer()
		if err := c.stream(ctx, srcTS.URL, dstTS.URL, fmt.Sprintf("bench-%d", i), nil, true, st, total); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if total.RunsMoved != int64(b.N*runsPerIter) {
		b.Fatalf("moved %d runs, want %d", total.RunsMoved, b.N*runsPerIter)
	}
	b.ReportMetric(float64(runsPerIter), "runs/op")
	b.ReportMetric(float64(total.BytesMoved)/float64(b.N), "bytes/op")
}
