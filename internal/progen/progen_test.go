package progen

import (
	"strings"
	"testing"

	"cbi/internal/instrument"
	"cbi/internal/interp"
	"cbi/internal/sampling"
	"cbi/internal/vm"
)

// TestGeneratedProgramsAreValid: every generated program must parse and
// resolve (Generate panics otherwise).
func TestGeneratedProgramsAreValid(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		Generate(seed, DefaultConfig)
	}
}

func TestSourceDeterministic(t *testing.T) {
	a := Source(42, DefaultConfig)
	b := Source(42, DefaultConfig)
	if a != b {
		t.Fatal("same seed generated different programs")
	}
	if Source(43, DefaultConfig) == a {
		t.Fatal("different seeds generated identical programs")
	}
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	limits := interp.Limits{Steps: 2_000_000}
	var crashed, clean, stepLimited int
	for seed := int64(0); seed < 200; seed++ {
		prog := Generate(seed, DefaultConfig)
		eng := interp.New(prog, nil)
		eng.SetLimits(limits)
		out := eng.Run(Input(seed))
		switch {
		case out.Crashed && out.Trap == interp.TrapStepLimit:
			stepLimited++
		case out.Crashed:
			crashed++
		default:
			clean++
		}
	}
	t.Logf("clean=%d crashed=%d step-limited=%d", clean, crashed, stepLimited)
	if clean == 0 {
		t.Error("no generated program ran cleanly")
	}
	if crashed == 0 {
		t.Error("no generated program crashed; risky generation is broken")
	}
	if stepLimited > 40 {
		t.Errorf("%d/200 programs hit the step limit; generator bounds too loose", stepLimited)
	}
}

func outcomesAgree(a, b *interp.Outcome) bool {
	if a.Crashed != b.Crashed || a.Trap != b.Trap {
		return false
	}
	if !a.Crashed && a.ExitCode != b.ExitCode {
		return false
	}
	if a.StackSignature() != b.StackSignature() {
		return false
	}
	return strings.Join(a.Output, "\n") == strings.Join(b.Output, "\n")
}

// TestDifferentialEngineFuzz is the core differential fuzz loop: random
// programs, random inputs, both engines, identical outcomes required.
// Step-limited runs are skipped (the engines count steps differently).
func TestDifferentialEngineFuzz(t *testing.T) {
	const seeds = 400
	limits := interp.Limits{Steps: 2_000_000}
	skipped := 0
	for seed := int64(0); seed < seeds; seed++ {
		prog := Generate(seed, DefaultConfig)
		tree := interp.New(prog, nil)
		tree.SetLimits(limits)
		machine := vm.New(vm.MustCompile(prog), nil)
		machine.SetLimits(limits)
		for trial := int64(0); trial < 3; trial++ {
			input := Input(seed*1000 + trial)
			a := tree.Run(input)
			b := machine.Run(input)
			if a.Trap == interp.TrapStepLimit || b.Trap == interp.TrapStepLimit {
				skipped++
				continue
			}
			if !outcomesAgree(a, b) {
				t.Fatalf("seed %d trial %d diverges:\n tree: crash=%v trap=%s exit=%d sig=%q out=%v\n   vm: crash=%v trap=%s exit=%d sig=%q out=%v\nprogram:\n%s",
					seed, trial,
					a.Crashed, a.Trap, a.ExitCode, a.StackSignature(), a.Output,
					b.Crashed, b.Trap, b.ExitCode, b.StackSignature(), b.Output,
					Source(seed, DefaultConfig))
			}
		}
	}
	if skipped > seeds/2 {
		t.Errorf("skipped %d step-limited trials; generator bounds too loose", skipped)
	}
}

// TestDifferentialInstrumentationFuzz: both engines under full
// instrumentation must produce identical feedback reports on random
// programs.
func TestDifferentialInstrumentationFuzz(t *testing.T) {
	const seeds = 120
	limits := interp.Limits{Steps: 2_000_000}
	for seed := int64(0); seed < seeds; seed++ {
		prog := Generate(seed, DefaultConfig)
		plan := instrument.BuildPlan(prog)
		rtTree := instrument.NewRuntime(plan, sampling.Always{})
		tree := interp.New(prog, rtTree)
		tree.SetLimits(limits)
		rtVM := instrument.NewRuntime(plan, sampling.Always{})
		machine := vm.New(vm.MustCompile(prog), rtVM)
		machine.SetLimits(limits)

		input := Input(seed * 77)
		rtTree.BeginRun(seed + 1)
		a := tree.Run(input)
		repA := rtTree.Snapshot(a.Crashed)
		rtVM.BeginRun(seed + 1)
		b := machine.Run(input)
		repB := rtVM.Snapshot(b.Crashed)

		if a.Trap == interp.TrapStepLimit || b.Trap == interp.TrapStepLimit {
			continue
		}
		if len(repA.TruePreds) != len(repB.TruePreds) {
			t.Fatalf("seed %d: pred counts differ: tree %d vs vm %d\nprogram:\n%s",
				seed, len(repA.TruePreds), len(repB.TruePreds), Source(seed, DefaultConfig))
		}
		for j := range repA.TruePreds {
			if repA.TruePreds[j] != repB.TruePreds[j] {
				t.Fatalf("seed %d: pred %d differs: %q vs %q\nprogram:\n%s",
					seed, j, plan.Preds[repA.TruePreds[j]].Text, plan.Preds[repB.TruePreds[j]].Text,
					Source(seed, DefaultConfig))
			}
		}
	}
}

// TestGeneratedProgramsExerciseFeatures: across many seeds the
// generator must produce loops, conditionals, calls, arrays, and
// strings (guards against silent generator regressions).
func TestGeneratedProgramsExerciseFeatures(t *testing.T) {
	var all strings.Builder
	for seed := int64(0); seed < 50; seed++ {
		all.WriteString(Source(seed, DefaultConfig))
	}
	src := all.String()
	for _, feature := range []string{"for (", "if (", "new int[", "string ", "substr(", "output(", "return", "fuse"} {
		if !strings.Contains(src, feature) {
			t.Errorf("no generated program uses %q", feature)
		}
	}
}

// TestDifferentialOptimizedVM fuzzes the optimizing compiler: optimized
// bytecode must agree with the tree-walker on random programs.
func TestDifferentialOptimizedVM(t *testing.T) {
	const seeds = 150
	limits := interp.Limits{Steps: 2_000_000}
	for seed := int64(0); seed < seeds; seed++ {
		prog := Generate(seed+5000, DefaultConfig)
		tree := interp.New(prog, nil)
		tree.SetLimits(limits)
		mod, err := vm.CompileOptimized(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		machine := vm.New(mod, nil)
		machine.SetLimits(limits)
		input := Input(seed * 31)
		a := tree.Run(input)
		b := machine.Run(input)
		if a.Trap == interp.TrapStepLimit || b.Trap == interp.TrapStepLimit {
			continue
		}
		if !outcomesAgree(a, b) {
			t.Fatalf("seed %d diverges under optimization:\n tree: crash=%v trap=%s exit=%d\n  opt: crash=%v trap=%s exit=%d\nprogram:\n%s",
				seed, a.Crashed, a.Trap, a.ExitCode, b.Crashed, b.Trap, b.ExitCode, Source(seed+5000, DefaultConfig))
		}
	}
}
