// Package progen generates random, well-typed MiniC programs for
// differential testing: the tree-walking interpreter and the bytecode
// VM must agree — outcome, trap kind, stack signature, outputs, and
// every instrumentation event — on every generated program and input.
//
// Generated programs always terminate far below the step limit (loops
// have small constant bounds and recursion carries an explicit
// decreasing fuse), because the two engines count steps differently
// and a program racing the step limit would trap at different logical
// points. Everything else is fair game: division by zero, negative
// allocations, out-of-bounds indices that the randomized heap layout
// may or may not forgive — trap parity on those is exactly what the
// differential tests are for.
package progen

import (
	"fmt"
	"strings"

	"cbi/internal/interp"
	"cbi/internal/lang"
)

// Config bounds program shapes.
type Config struct {
	// MaxFuncs is the number of helper functions (besides main).
	MaxFuncs int
	// MaxStmts bounds statements per block.
	MaxStmts int
	// MaxDepth bounds statement nesting.
	MaxDepth int
	// ExprDepth bounds expression nesting.
	ExprDepth int
	// Risky enables out-of-bounds indices, unchecked division, and
	// negative allocation sizes (crash parity testing).
	Risky bool
}

// DefaultConfig generates small risky programs.
var DefaultConfig = Config{MaxFuncs: 3, MaxStmts: 5, MaxDepth: 3, ExprDepth: 3, Risky: true}

type gen struct {
	cfg Config
	rng splitmix
	sb  strings.Builder

	// scope tracking: names of in-scope variables by type.
	ints []string
	strs []string
	ptrs []string // int* variables
	// funcs generated so far (all take (int, int) and return int).
	funcs   []string
	nextVar int
	depth   int
	// inFunc is the current function's fuse parameter name ("" in main).
	fuse string
}

type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *gen) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.rng.next() % uint64(n))
}

func (g *gen) chance(pct int) bool { return g.intn(100) < pct }

// Source generates the source text of a random program.
func Source(seed int64, cfg Config) string {
	g := &gen{cfg: cfg, rng: splitmix{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3}}
	g.emit()
	return g.sb.String()
}

// Generate produces a parsed and resolved random program. It panics if
// the generator emitted an invalid program (a generator bug, caught by
// this package's tests).
func Generate(seed int64, cfg Config) *lang.Program {
	src := Source(seed, cfg)
	prog, err := lang.Parse(fmt.Sprintf("gen-%d.mc", seed), src)
	if err != nil {
		panic(fmt.Sprintf("progen: seed %d generated invalid program: %v\n%s", seed, err, src))
	}
	if err := lang.Resolve(prog); err != nil {
		panic(fmt.Sprintf("progen: seed %d generated ill-typed program: %v\n%s", seed, err, src))
	}
	return prog
}

// Input produces a deterministic random input for a generated program.
func Input(seed int64) interp.Input {
	rng := splitmix{state: uint64(seed)*0x94d049bb133111eb + 0x452821e638d01377}
	n := 4 + int(rng.next()%12)
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = int64(rng.next()%200) - 20
	}
	return interp.Input{
		Args:   []int64{int64(rng.next() % 50), int64(rng.next()%40) - 10},
		SArgs:  []string{"alpha", "key"},
		Stream: stream,
		Seed:   seed,
	}
}

func (g *gen) line(format string, args ...any) {
	for i := 0; i < g.depth; i++ {
		g.sb.WriteString("  ")
	}
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *gen) fresh(prefix string) string {
	g.nextVar++
	return fmt.Sprintf("%s%d", prefix, g.nextVar)
}

func (g *gen) emit() {
	// Globals.
	nGlobals := g.intn(3)
	for i := 0; i < nGlobals; i++ {
		name := g.fresh("g")
		g.line("int %s = %d;", name, g.intn(20))
		g.ints = append(g.ints, name)
	}
	globalInts := append([]string(nil), g.ints...)
	if nGlobals > 0 {
		g.sb.WriteByte('\n')
	}

	// Helper functions: int f(int a, int fuse).
	nFuncs := g.intn(g.cfg.MaxFuncs + 1)
	for i := 0; i < nFuncs; i++ {
		name := g.fresh("f")
		g.ints = append([]string(nil), globalInts...)
		g.strs, g.ptrs = nil, nil
		g.line("int %s(int a%s, int fuse) {", name, name)
		g.depth++
		g.fuse = "fuse"
		g.ints = append(g.ints, "a"+name, "fuse")
		// The fuse guard guarantees recursion terminates: every call
		// passes fuse - 1 and this base case stops at zero.
		g.line("if (fuse < 1) { return a%s; }", name)
		// Recursion with a decreasing fuse: calls are only legal when
		// registered, so self/mutual recursion covers earlier funcs
		// plus this one.
		g.funcs = append(g.funcs, name)
		g.block(g.cfg.MaxStmts)
		g.line("return %s;", g.intExpr(1))
		g.depth--
		g.line("}")
		g.sb.WriteByte('\n')
	}

	// main.
	g.ints = append([]string(nil), globalInts...)
	g.strs, g.ptrs = nil, nil
	g.fuse = ""
	g.line("int main() {")
	g.depth++
	g.block(g.cfg.MaxStmts + 2)
	g.line("output(%s);", g.intExpr(1))
	g.line("return %s;", g.intExpr(1))
	g.depth--
	g.line("}")
}

func (g *gen) block(maxStmts int) {
	n := 1 + g.intn(maxStmts)
	for i := 0; i < n; i++ {
		g.stmt()
	}
}

func (g *gen) stmt() {
	roll := g.intn(100)
	switch {
	case roll < 25:
		// int declaration.
		name := g.fresh("v")
		g.line("int %s = %s;", name, g.intExpr(g.cfg.ExprDepth))
		g.ints = append(g.ints, name)
	case roll < 35 && len(g.ints) > 0:
		// assignment to an existing int.
		g.line("%s = %s;", g.pick(g.ints), g.intExpr(g.cfg.ExprDepth))
	case roll < 45:
		// string declaration or output.
		if g.chance(50) {
			name := g.fresh("s")
			g.line("string %s = %s;", name, g.strExpr(2))
			g.strs = append(g.strs, name)
		} else {
			g.line("output(%s);", g.strExpr(2))
		}
	case roll < 55:
		// array allocation / store / load.
		switch {
		case len(g.ptrs) == 0 || g.chance(34):
			name := g.fresh("p")
			size := 1 + g.intn(8)
			if g.cfg.Risky && g.chance(4) {
				g.line("int* %s = new int[%s];", name, g.intExpr(1))
			} else {
				g.line("int* %s = new int[%d];", name, size)
			}
			g.ptrs = append(g.ptrs, name)
		case g.chance(50):
			g.line("%s[%s] = %s;", g.pick(g.ptrs), g.indexExpr(), g.intExpr(2))
		default:
			name := g.fresh("v")
			g.line("int %s = %s[%s];", name, g.pick(g.ptrs), g.indexExpr())
			g.ints = append(g.ints, name)
		}
	case roll < 70 && g.depth <= g.cfg.MaxDepth:
		// if / if-else. Declarations inside the arms go out of scope
		// at the brace.
		g.line("if (%s) {", g.condExpr())
		g.nested(func() { g.block(g.cfg.MaxStmts - 1) })
		if g.chance(40) {
			g.line("} else {")
			g.nested(func() { g.block(g.cfg.MaxStmts - 1) })
		}
		g.line("}")
	case roll < 85 && g.depth <= g.cfg.MaxDepth:
		// bounded for loop; the loop variable and body declarations are
		// scoped to the loop.
		iv := g.fresh("i")
		bound := 1 + g.intn(12)
		g.line("for (int %s = 0; %s < %d; %s = %s + 1) {", iv, iv, bound, iv, iv)
		g.nested(func() {
			g.ints = append(g.ints, iv)
			g.block(g.cfg.MaxStmts - 1)
		})
		g.line("}")
	case roll < 92 && len(g.funcs) > 0:
		// call for effect.
		g.line("output(%s);", g.callExpr())
	default:
		g.line("output(%s);", g.intExpr(2))
	}
}

func (g *gen) pick(xs []string) string { return xs[g.intn(len(xs))] }

// nested runs body one indent deeper and restores the variable scopes
// afterwards, mirroring MiniC's block scoping.
func (g *gen) nested(body func()) {
	ni, ns, np := len(g.ints), len(g.strs), len(g.ptrs)
	g.depth++
	body()
	g.depth--
	g.ints = g.ints[:ni]
	g.strs = g.strs[:ns]
	g.ptrs = g.ptrs[:np]
}

// indexExpr yields an array index, occasionally out of bounds when
// Risky.
func (g *gen) indexExpr() string {
	if g.cfg.Risky && g.chance(6) {
		return fmt.Sprintf("%d", 8+g.intn(8))
	}
	if g.cfg.Risky && g.chance(3) {
		return fmt.Sprintf("-%d", 1+g.intn(3))
	}
	return fmt.Sprintf("%d", g.intn(8))
}

func (g *gen) condExpr() string {
	l, r := g.intExpr(2), g.intExpr(2)
	op := []string{"<", "<=", ">", ">=", "==", "!="}[g.intn(6)]
	cond := fmt.Sprintf("%s %s %s", l, op, r)
	if g.chance(25) {
		l2, r2 := g.intExpr(1), g.intExpr(1)
		op2 := []string{"<", ">", "=="}[g.intn(3)]
		join := "&&"
		if g.chance(50) {
			join = "||"
		}
		cond = fmt.Sprintf("%s %s %s %s %s", cond, join, l2, op2, r2)
	}
	return cond
}

func (g *gen) intExpr(depth int) string {
	if depth <= 0 || g.chance(30) {
		// Leaf.
		switch {
		case len(g.ints) > 0 && g.chance(55):
			return g.pick(g.ints)
		case g.chance(20):
			return fmt.Sprintf("arg(%d)", g.intn(3))
		case g.chance(15):
			return "read()"
		case g.chance(10) && len(g.strs) > 0:
			return fmt.Sprintf("strlen(%s)", g.pick(g.strs))
		case g.chance(10):
			return fmt.Sprintf("rand(%d)", 1+g.intn(20))
		default:
			return fmt.Sprintf("%d", g.intn(40))
		}
	}
	switch g.intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 3:
		if g.cfg.Risky && g.chance(20) {
			return fmt.Sprintf("(%s / %s)", g.intExpr(depth-1), g.intExpr(depth-1))
		}
		return fmt.Sprintf("(%s / %d)", g.intExpr(depth-1), 1+g.intn(9))
	case 4:
		if g.cfg.Risky && g.chance(20) {
			return fmt.Sprintf("(%s %% %s)", g.intExpr(depth-1), g.intExpr(depth-1))
		}
		return fmt.Sprintf("(%s %% %d)", g.intExpr(depth-1), 1+g.intn(9))
	case 5:
		if len(g.funcs) > 0 {
			return g.callExpr()
		}
		return fmt.Sprintf("-%s", g.intExpr(depth-1))
	default:
		return fmt.Sprintf("(%s)", g.condExpr())
	}
}

// callExpr calls a generated helper with a strictly decreasing fuse so
// recursion terminates.
func (g *gen) callExpr() string {
	fn := g.pick(g.funcs)
	fuseArg := fmt.Sprintf("%d", 2+g.intn(6))
	if g.fuse != "" {
		fuseArg = fmt.Sprintf("%s - 1", g.fuse)
	}
	return fmt.Sprintf("%s(%s, %s)", fn, g.intExpr(1), fuseArg)
}

func (g *gen) strExpr(depth int) string {
	if depth <= 0 || g.chance(40) {
		switch {
		case len(g.strs) > 0 && g.chance(50):
			return g.pick(g.strs)
		case g.chance(30):
			return fmt.Sprintf("sarg(%d)", g.intn(2))
		case g.chance(25):
			return fmt.Sprintf("itoa(%s)", g.intExpr(1))
		default:
			return fmt.Sprintf("%q", []string{"x", "lo", "cbi", "zz9"}[g.intn(4)])
		}
	}
	if g.chance(30) {
		// Possibly-trapping substring.
		return fmt.Sprintf("substr(%s, 0, %d)", g.strExpr(depth-1), g.intn(4))
	}
	return fmt.Sprintf("(%s + %s)", g.strExpr(depth-1), g.strExpr(depth-1))
}
