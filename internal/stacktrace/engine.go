package stacktrace

import (
	"sort"

	"cbi/internal/core"
)

// engine adapts §6's crash-signature clustering to the pluggable
// scoring-engine interface. Feedback reports carry no crash stacks, so
// the engine clusters failing runs by the signature they do leave in
// the run log — the observed-site membership vector (which code a
// failing run reached) — and scores each predicate by how precisely it
// identifies its best-matching failure cluster:
//
//	score(P) = max over clusters c of harmonic mean of
//	           precision = |c ∩ true(P)| / |failing ∩ true(P)|
//	           recall    = |c ∩ true(P)| / |c|
//
// A predicate true in exactly one cluster's runs and all of them gets
// 1.0 (the "truly unique signature" of the paper's §6); predicates
// smeared across many clusters score low — reproducing the paper's
// finding that only the most deterministic bugs are cluster-isolable.
type engine struct{}

func (engine) Name() string { return "stacktrace" }
func (engine) Doc() string {
	return "failure clustering by observed-site signature, best-cluster F1 per predicate (the §6 baseline)"
}

func (engine) Score(in core.Input, k int) []core.EnginePredictor {
	// Cluster failing runs by observed-site signature.
	clusters := map[string][]int{}
	for i, r := range in.Set.Reports {
		if !r.Failed {
			continue
		}
		sig := sigOf(r.ObservedSites)
		clusters[sig] = append(clusters[sig], i)
	}
	agg := core.Aggregate(in)

	// Per cluster, count how many of its runs each predicate is true
	// in, and keep each predicate's best-cluster F1. One reusable
	// counter slice keeps this O(total true bits), not O(preds).
	best := make([]float64, in.Set.NumPreds)
	count := make([]int32, in.Set.NumPreds)
	// Iterate clusters in sorted-signature order for determinism of
	// floating-point max chains (scores are computed per cluster, max
	// is order-independent, but keep the scan reproducible anyway).
	sigs := make([]string, 0, len(clusters))
	for s := range clusters {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		runs := clusters[sig]
		var touched []int32
		for _, i := range runs {
			for _, p := range in.Set.Reports[i].TruePreds {
				if count[p] == 0 {
					touched = append(touched, p)
				}
				count[p]++
			}
		}
		for _, p := range touched {
			tf := agg.Stats[p].F // failing runs with P true, across all clusters
			if tf > 0 {
				prec := float64(count[p]) / float64(tf)
				rec := float64(count[p]) / float64(len(runs))
				if f1 := 2 * prec * rec / (prec + rec); f1 > best[p] {
					best[p] = f1
				}
			}
			count[p] = 0
		}
	}

	var out []core.EnginePredictor
	for p, sc := range best {
		if sc > 0 {
			out = append(out, core.EnginePredictor{Pred: p, Score: sc, Stats: agg.Stats[p]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Stats.F != out[j].Stats.F {
			return out[i].Stats.F > out[j].Stats.F
		}
		return out[i].Pred < out[j].Pred
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// sigOf packs an ascending site list into a compact signature key.
func sigOf(sites []int32) string {
	b := make([]byte, 0, len(sites)*3)
	for _, s := range sites {
		for s >= 0x80 {
			b = append(b, byte(s)|0x80)
			s >>= 7
		}
		b = append(b, byte(s))
	}
	return string(b)
}

func init() { core.RegisterEngine(engine{}) }
