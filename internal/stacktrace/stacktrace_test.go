package stacktrace

import "testing"

func TestClusters(t *testing.T) {
	runs := []Run{
		{Sig: "a<main"},
		{Sig: "b<main"},
		{Sig: "a<main"},
	}
	c := Clusters(runs)
	if len(c) != 2 || len(c["a<main"]) != 2 || len(c["b<main"]) != 1 {
		t.Errorf("clusters = %v", c)
	}
}

func TestAnalyzeUniqueSignature(t *testing.T) {
	// Bug 1 always crashes at the same place, and nothing else crashes
	// there: unique. Bug 2 crashes in two different places, one shared
	// with bug 3: not unique.
	runs := []Run{
		{Sig: "f1<main", Bugs: []int{1}},
		{Sig: "f1<main", Bugs: []int{1}},
		{Sig: "f2<main", Bugs: []int{2}},
		{Sig: "f3<main", Bugs: []int{2}},
		{Sig: "f3<main", Bugs: []int{3}},
	}
	stats := Analyze(runs)
	byBug := map[int]BugSignature{}
	for _, s := range stats {
		byBug[s.Bug] = s
	}
	if !byBug[1].Unique {
		t.Error("bug 1 should have a unique signature")
	}
	if byBug[2].Unique {
		t.Error("bug 2 crashes at two sites; not unique")
	}
	if byBug[3].Unique {
		t.Error("bug 3 shares its crash site with bug 2; not unique")
	}
	if byBug[1].Failing != 2 {
		t.Errorf("bug 1 failing count = %d", byBug[1].Failing)
	}
	if byBug[1].BestPrecision != 1 || byBug[1].BestRecall != 1 {
		t.Errorf("bug 1 best precision/recall = %v/%v", byBug[1].BestPrecision, byBug[1].BestRecall)
	}
}

func TestAnalyzeMultiBugRuns(t *testing.T) {
	// A run exhibiting two bugs counts toward both.
	runs := []Run{
		{Sig: "x<main", Bugs: []int{1, 2}},
		{Sig: "x<main", Bugs: []int{1}},
	}
	stats := Analyze(runs)
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Bug != 1 || stats[1].Bug != 2 {
		t.Errorf("bugs not sorted: %+v", stats)
	}
	// Bug 2's only signature also appears in a run without bug 2, so
	// it is not unique.
	if stats[1].Unique {
		t.Error("bug 2 should not be unique")
	}
	// Bug 1 owns every run with the signature.
	if !stats[0].Unique {
		t.Error("bug 1 should be unique")
	}
}

func TestFractionUnique(t *testing.T) {
	stats := []BugSignature{{Unique: true}, {Unique: false}, {Unique: true}, {Unique: false}}
	if got := FractionUnique(stats); got != 0.5 {
		t.Errorf("FractionUnique = %v, want 0.5", got)
	}
	if got := FractionUnique(nil); got != 0 {
		t.Errorf("FractionUnique(nil) = %v", got)
	}
}

func TestTopFrameOf(t *testing.T) {
	if got := TopFrameOf("memcpy<save<main"); got != "memcpy" {
		t.Errorf("TopFrameOf = %q", got)
	}
	if got := TopFrameOf("main"); got != "main" {
		t.Errorf("TopFrameOf single = %q", got)
	}
}

func TestTopFrameCoarserThanFullChain(t *testing.T) {
	// Two distinct full chains with the same top frame merge under
	// TopFrame mode, possibly destroying uniqueness.
	full := []Run{
		{Sig: "f<a<main", Bugs: []int{1}},
		{Sig: "f<b<main", Bugs: []int{2}},
	}
	top := make([]Run, len(full))
	for i, r := range full {
		top[i] = Run{Sig: TopFrameOf(r.Sig), Bugs: r.Bugs}
	}
	if FractionUnique(Analyze(full)) != 1 {
		t.Error("full chains should be unique here")
	}
	if FractionUnique(Analyze(top)) != 0 {
		t.Error("top frames collide; nothing should be unique")
	}
}
