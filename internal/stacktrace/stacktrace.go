// Package stacktrace implements the "current industrial practice"
// baseline the paper discusses in §6: clustering failure reports by
// crash stack signature and asking whether each bug has a unique
// signature. The paper found that only the most deterministic bugs do
// (MOSS bugs #2 and #5), that some bugs crash with many different
// stacks, and that for bugs crashing long after the bad event the stack
// carries no information at all.
package stacktrace

import "sort"

// Run pairs a crash signature with ground-truth bug occurrence for one
// failing run.
type Run struct {
	// Sig is the crash signature: either the full function chain or
	// just the crash-site function, per Mode.
	Sig string
	// Bugs lists the ground-truth bugs that occurred in the run.
	Bugs []int
}

// Mode selects the clustering granularity.
type Mode int

// Clustering granularities.
const (
	// FullChain uses the entire function-call chain.
	FullChain Mode = iota
	// TopFrame uses only the innermost (crash-site) function, the
	// "same top-of-stack function" heuristic.
	TopFrame
)

// Clusters groups failing run indices by signature.
func Clusters(runs []Run) map[string][]int {
	out := map[string][]int{}
	for i, r := range runs {
		out[r.Sig] = append(out[r.Sig], i)
	}
	return out
}

// BugSignature summarizes how well stack signatures identify one bug.
type BugSignature struct {
	Bug int
	// Failing is the number of failing runs exhibiting the bug.
	Failing int
	// Signatures maps each signature seen in the bug's runs to its
	// count.
	Signatures map[string]int
	// Unique reports whether the bug has a signature that appears in a
	// failing run if and only if the bug occurred — the paper's
	// "truly unique signature stack" criterion.
	Unique bool
	// BestPrecision and BestRecall describe the single best signature:
	// precision = fraction of runs with that signature exhibiting the
	// bug; recall = fraction of the bug's runs showing that signature.
	BestPrecision float64
	BestRecall    float64
}

// Analyze computes per-bug signature statistics over failing runs.
// Runs exhibiting several bugs count toward each.
func Analyze(runs []Run) []BugSignature {
	bugRuns := map[int][]int{}
	for i, r := range runs {
		for _, b := range r.Bugs {
			bugRuns[b] = append(bugRuns[b], i)
		}
	}
	sigTotal := map[string]int{}
	for _, r := range runs {
		sigTotal[r.Sig]++
	}

	bugs := make([]int, 0, len(bugRuns))
	for b := range bugRuns {
		bugs = append(bugs, b)
	}
	sort.Ints(bugs)

	var out []BugSignature
	for _, b := range bugs {
		idx := bugRuns[b]
		bs := BugSignature{Bug: b, Failing: len(idx), Signatures: map[string]int{}}
		for _, i := range idx {
			bs.Signatures[runs[i].Sig]++
		}
		// A signature is fully identifying if (a) it is the only
		// signature the bug produces, and (b) every failing run with
		// that signature exhibits the bug.
		for sig, cnt := range bs.Signatures {
			precision := float64(cnt) / float64(sigTotal[sig])
			recall := float64(cnt) / float64(len(idx))
			f1best := bs.BestPrecision + bs.BestRecall
			if precision+recall > f1best {
				bs.BestPrecision, bs.BestRecall = precision, recall
			}
			if len(bs.Signatures) == 1 && cnt == sigTotal[sig] {
				bs.Unique = true
			}
			_ = sig
		}
		out = append(out, bs)
	}
	return out
}

// FractionUnique returns the fraction of bugs with a unique signature —
// the paper's headline "in about half the cases the stack is useful"
// statistic.
func FractionUnique(stats []BugSignature) float64 {
	if len(stats) == 0 {
		return 0
	}
	n := 0
	for _, s := range stats {
		if s.Unique {
			n++
		}
	}
	return float64(n) / float64(len(stats))
}

// TopFrameOf reduces a full-chain signature ("inner<mid<outer") to the
// crash-site function.
func TopFrameOf(fullChain string) string {
	for i := 0; i < len(fullChain); i++ {
		if fullChain[i] == '<' {
			return fullChain[:i]
		}
	}
	return fullChain
}
