package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMiddlewareRecordsCountLatencyStatusClass(t *testing.T) {
	reg := NewRegistry()
	h := NewHTTP(HTTPConfig{Registry: reg, Paths: []string{"/ok", "/fail"}})
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	mux.HandleFunc("/fail", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusTeapot)
	})
	ts := httptest.NewServer(h.Wrap(mux))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		mustGet(t, ts.URL+"/ok")
	}
	mustGet(t, ts.URL+"/fail")
	mustGet(t, ts.URL+"/unknown/path") // 404 from the mux, path collapses to "other"

	out := render(reg)
	for _, want := range []string{
		`cbi_http_requests_total{path="/ok",code="2xx"} 3`,
		`cbi_http_requests_total{path="/fail",code="4xx"} 1`,
		`cbi_http_requests_total{path="other",code="4xx"} 1`,
		`cbi_http_request_seconds_count{path="/ok"} 3`,
		"cbi_http_in_flight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestMiddlewareInFlightGauge(t *testing.T) {
	reg := NewRegistry()
	h := NewHTTP(HTTPConfig{Registry: reg, Paths: []string{"/slow"}})
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(entered) })
		<-release
	})
	ts := httptest.NewServer(h.Wrap(mux))
	defer ts.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := http.Get(ts.URL + "/slow")
		errc <- err
	}()
	<-entered
	if got := h.inflight.Value(); got != 1 {
		t.Errorf("in-flight during request = %v, want 1", got)
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got := h.inflight.Value(); got != 0 {
		t.Errorf("in-flight after request = %v, want 0", got)
	}
}

func TestMiddlewareSlowRequestLog(t *testing.T) {
	reg := NewRegistry()
	var mu sync.Mutex
	var lines []string
	h := NewHTTP(HTTPConfig{
		Registry:    reg,
		Paths:       []string{"/slow", "/fast"},
		SlowRequest: 10 * time.Millisecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(25 * time.Millisecond)
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("/fast", func(w http.ResponseWriter, r *http.Request) {})
	ts := httptest.NewServer(h.Wrap(mux))
	defer ts.Close()

	mustGet(t, ts.URL+"/fast")
	mustGet(t, ts.URL+"/slow")

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("got %d slow-request lines, want 1: %v", len(lines), lines)
	}
	for _, field := range []string{"method=GET", "path=/slow", "status=202", "elapsed=", "threshold=10ms"} {
		if !strings.Contains(lines[0], field) {
			t.Errorf("slow-request line missing %q: %s", field, lines[0])
		}
	}
}

func TestRegisterPprof(t *testing.T) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_x_total", "x").Inc()
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL, nil)
	post, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", post.StatusCode)
	}
}

func mustGet(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}
