package obs

import (
	"net/http"
	"net/http/pprof"
	"time"
)

// HTTPConfig configures the per-endpoint HTTP instrumentation.
type HTTPConfig struct {
	// Registry receives the http metric families (required).
	Registry *Registry
	// Paths is the closed set of endpoint paths to label samples with.
	// Requests for any other path are recorded under path="other", so a
	// scanner probing random URLs cannot inflate label cardinality.
	Paths []string
	// SlowRequest, when positive, emits one structured log line through
	// Logf for every request that takes longer — the "why was that poll
	// slow" breadcrumb that a latency histogram alone cannot give.
	SlowRequest time.Duration
	// Logf receives slow-request lines (default: discard).
	Logf func(format string, args ...any)
}

// HTTP records per-endpoint request count, latency, in-flight gauge,
// and status class for every request passing through Wrap. One HTTP
// instance registers three families:
//
//	cbi_http_requests_total{path,code}  counter, code is the status class ("2xx")
//	cbi_http_request_seconds{path}      histogram over LatencyBuckets
//	cbi_http_in_flight                  gauge of requests currently being served
type HTTP struct {
	cfg      HTTPConfig
	known    map[string]bool
	requests *CounterVec
	latency  *HistogramVec
	inflight *Gauge
}

// NewHTTP registers the http metric families on cfg.Registry and
// returns the middleware.
func NewHTTP(cfg HTTPConfig) *HTTP {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	known := make(map[string]bool, len(cfg.Paths))
	for _, p := range cfg.Paths {
		known[p] = true
	}
	reg := cfg.Registry
	return &HTTP{
		cfg:   cfg,
		known: known,
		requests: reg.CounterVec("cbi_http_requests_total",
			"HTTP requests served, by endpoint path and status class.", "path", "code"),
		latency: reg.HistogramVec("cbi_http_request_seconds",
			"HTTP request latency in seconds, by endpoint path.", nil, "path"),
		inflight: reg.Gauge("cbi_http_in_flight",
			"HTTP requests currently being served."),
	}
}

// statusWriter captures the response status code (default 200) while
// passing writes through.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	return w.ResponseWriter.Write(b)
}

// Flush passes through so streaming handlers keep working when wrapped.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// codeClass collapses a status code to its class label ("2xx").
func codeClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}

// Wrap instruments next: request count by path and status class, a
// latency histogram by path, an in-flight gauge, and the optional
// slow-request log line.
func (h *HTTP) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if !h.known[path] {
			path = "other"
		}
		h.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		defer func() {
			elapsed := time.Since(start)
			h.inflight.Add(-1)
			h.requests.With(path, codeClass(sw.code)).Inc()
			h.latency.With(path).ObserveDuration(elapsed)
			if h.cfg.SlowRequest > 0 && elapsed >= h.cfg.SlowRequest {
				h.cfg.Logf("obs: slow request: method=%s path=%s status=%d elapsed=%s threshold=%s",
					r.Method, r.URL.Path, sw.code, elapsed.Round(time.Millisecond), h.cfg.SlowRequest)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// RegisterPprof mounts the net/http/pprof handlers under /debug/pprof/
// on mux. Profiling is opt-in per server (`-pprof`): the handlers can
// reveal heap contents and cost CPU, so they stay off unless an
// operator asks.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
