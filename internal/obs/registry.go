// Package obs is the observability layer shared by every server in the
// CBI deployment tier — the collector (`cbi serve`), the shard router
// (`cbi route`), and the merging gateway (`cbi gateway`).
//
// It provides a zero-dependency metrics registry (counters, gauges, and
// histograms with fixed log-scale latency buckets) that renders the
// Prometheus text exposition format, an HTTP middleware that records
// per-endpoint request count / latency / in-flight / status class (plus
// an optional slow-request structured log line), and a helper that
// mounts net/http/pprof on a private mux for opt-in profiling.
//
// The registry is deliberately the *single* source of truth: servers
// keep their operational counters as registry metrics and derive their
// JSON /v1/stats responses from the same values, so the two surfaces
// can never disagree. That matters beyond ops hygiene — run-log
// evictions, 429 sheds, and failovers silently change the denominator
// of the paper's Failure(P)/Context(P) scores, so an operator needs the
// exact retained-window accounting, not an approximation of it.
//
// Every exported metric is documented in METRICS.md at the repository
// root; a contract test scrapes live servers and fails if code and
// documentation drift apart.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// validName is the Prometheus metric/label name grammar.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds a set of named metric families and renders them in
// Prometheus text exposition format. All registration methods panic on
// an invalid or duplicate name — both are programmer errors, caught the
// first time a server starts. Registration typically happens at server
// construction; observation methods on the returned metrics are safe
// for concurrent use and are designed to sit on hot paths (a Counter is
// one atomic add).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric: its metadata plus the concrete samples
// (a single unlabeled series, or labeled children for vectors).
type family struct {
	name, help, typ string
	labels          []string // label names, for vectors

	mu       sync.Mutex
	children map[string]sample // label-values key -> sample
	single   sample            // unlabeled metric
}

// sample is anything that can emit exposition lines for one series.
type sample interface {
	write(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register installs a family, panicking on bad or duplicate names.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	f := &family{name: name, help: help, typ: typ, labels: labels}
	if len(labels) > 0 {
		f.children = make(map[string]sample)
	}
	r.families[name] = f
	return f
}

// Counter registers and returns a monotonically increasing counter.
// Counter names should end in _total by Prometheus convention.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", nil).single = c
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotonic totals already maintained elsewhere (e.g. a run
// log's eviction count) that would otherwise need double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil).single = funcSample(fn)
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", nil).single = g
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time — the natural shape for instantaneous state the server already
// tracks (queue depth, retained-window size).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil).single = funcSample(fn)
}

// Histogram registers and returns a histogram over the given bucket
// upper bounds (ascending, in the observed unit; an implicit +Inf
// bucket is always appended). Nil bounds means LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, "histogram", nil).single = h
	return h
}

// CounterVec registers a labeled counter family. Children are created
// on first use via With; label values should be low-cardinality (shard
// indices, endpoint paths, status classes — never user data).
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, "counter", labels)}
}

// GaugeVec registers a labeled gauge family. Children may be settable
// (With) or read from a function at scrape time (WithFunc).
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, "gauge", labels)}
}

// HistogramVec registers a labeled histogram family; every child shares
// the same bucket bounds (nil means LatencyBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	return &HistogramVec{fam: r.register(name, help, "histogram", labels), bounds: bounds}
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format, sorted by family name (and by label values within
// a family) so scrapes are deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.write(w)
	}
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func (f *family) write(w io.Writer) {
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	if f.children == nil {
		if f.single != nil {
			f.single.write(w, f.name, "")
		}
		return
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type kv struct {
		labels string
		s      sample
	}
	rows := make([]kv, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, kv{labelString(f.labels, splitKey(k)), f.children[k]})
	}
	f.mu.Unlock()
	for _, row := range rows {
		row.s.write(w, f.name, row.labels)
	}
}

// child returns (creating if needed) the labeled sample for values,
// using mk to build a missing one.
func (f *family) child(values []string, mk func() sample) sample {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	k := joinKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.children[k]
	if !ok {
		s = mk()
		f.children[k] = s
	}
	return s
}

// joinKey/splitKey pack label values into one map key. 0x1f (unit
// separator) cannot collide with escaped values because escapeLabel
// never emits it... it can appear in raw values, so escape it too.
func joinKey(values []string) string {
	esc := make([]string, len(values))
	for i, v := range values {
		esc[i] = strings.ReplaceAll(v, "\x1f", "\x1f\x1f")
	}
	return strings.Join(esc, "\x1f ")
}

func splitKey(k string) []string {
	parts := strings.Split(k, "\x1f ")
	for i, p := range parts {
		parts[i] = strings.ReplaceAll(p, "\x1f\x1f", "\x1f")
	}
	return parts
}

func labelString(names, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- Counter ----

// Counter is a monotonically increasing count. The zero value is ready
// to use, but counters should be obtained from a Registry so they are
// scraped. One atomic add per observation.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Store overwrites the count. It exists solely for restart restoration
// (a collector restoring a snapshot resumes its applied-report totals);
// ordinary code must only Inc/Add.
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// ---- Gauge ----

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// funcSample reads its value at scrape time.
type funcSample func() float64

func (f funcSample) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(f()))
}

// ---- Histogram ----

// LatencyBuckets is the fixed log-scale bucket ladder shared by every
// latency histogram in the deployment tier: upper bounds doubling from
// 500µs to ~16s (in seconds). A fixed shared ladder keeps histograms
// from different servers aggregable and the per-observation cost a
// cheap branch-free index computation.
var LatencyBuckets = func() []float64 {
	b := make([]float64, 16)
	v := 0.0005
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram counts observations into fixed buckets by upper bound, and
// tracks the total sum — rendering as the cumulative
// <name>_bucket{le=...} / _sum / _count triplet Prometheus expects.
// Observations are lock-free: one atomic add on the bucket plus a CAS
// loop on the sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// bucketIndex returns the index of the first bucket whose upper bound
// is >= v — len(bounds) (the +Inf bucket) when v exceeds them all.
func (h *Histogram) bucketIndex(v float64) int {
	// Binary search, not sort.SearchFloat64s: bounds are tiny and this
	// sits on request paths.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Observe records one value (for latency histograms: seconds).
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) write(w io.Writer, name, labels string) {
	// Cumulative counts: each le bucket includes everything below it.
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="`+formatFloat(bound)+`"`), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// mergeLabels appends one extra label pair to an existing (possibly
// empty) rendered label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// ---- Vectors ----

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ fam *family }

// With returns the child counter for the given label values, creating
// it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.child(values, func() sample { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ fam *family }

// With returns the settable child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.child(values, func() sample { return &Gauge{} }).(*Gauge)
}

// WithFunc installs a child whose value is read from fn at scrape time.
func (v *GaugeVec) WithFunc(fn func() float64, values ...string) {
	v.fam.child(values, func() sample { return funcSample(fn) })
}

// HistogramVec is a histogram family partitioned by label values; all
// children share the family's bucket bounds.
type HistogramVec struct {
	fam    *family
	bounds []float64
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.child(values, func() sample { return newHistogram(v.bounds) }).(*Histogram)
}
