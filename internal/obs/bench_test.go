package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The benchmarks below bound the cost of instrumentation on hot paths.
// The collector's ingest loop does one Counter.Add per batch and one
// per report; both must stay at the cost of a bare atomic add so that
// wiring obs into the ingest path is a ≤2% change (checked end to end
// by BenchmarkCollectorIngest at the repository root).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "b")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "b", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkVecWith(b *testing.B) {
	v := NewRegistry().CounterVec("bench_vec_total", "b", "path")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("/v1/reports").Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_depth", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

// BenchmarkMiddleware measures the per-request overhead of the HTTP
// middleware (status capture, in-flight gauge, counter, histogram)
// against a no-op handler — the upper bound it adds to every endpoint.
func BenchmarkMiddleware(b *testing.B) {
	h := NewHTTP(HTTPConfig{
		Registry:    NewRegistry(),
		Paths:       []string{"/v1/reports", "/v1/stats"},
		SlowRequest: time.Second,
	})
	wrapped := h.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest(http.MethodPost, "/v1/reports", nil)
	w := httptest.NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wrapped.ServeHTTP(w, req)
	}
}

// BenchmarkWritePrometheus measures a full scrape render over a
// registry about the size of the collector's — the cost a scraper
// imposes per poll, which runs outside the ingest path entirely.
func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		r.Counter("bench_"+n+"_total", "b").Add(12345)
	}
	g := r.GaugeVec("bench_depth", "b", "backend")
	for _, k := range []string{"0", "1", "2"} {
		g.With(k).Set(7)
	}
	h := r.HistogramVec("bench_seconds", "b", LatencyBuckets, "path")
	for _, p := range []string{"/v1/reports", "/v1/stats", "/v1/scores"} {
		for i := 0; i < 100; i++ {
			h.With(p).Observe(0.001 * float64(i))
		}
	}
	var sb strings.Builder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		r.WritePrometheus(&sb)
	}
}
