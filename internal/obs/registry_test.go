package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events.")
	c.Inc()
	c.Add(41)
	g := r.Gauge("test_depth", "Depth.")
	g.Set(3)
	g.Add(-0.5)
	r.GaugeFunc("test_fn", "Func gauge.", func() float64 { return 7 })
	r.CounterFunc("test_fn_total", "Func counter.", func() float64 { return 9 })

	out := render(r)
	for _, want := range []string{
		"# HELP test_events_total Events.\n# TYPE test_events_total counter\ntest_events_total 42\n",
		"# TYPE test_depth gauge\ntest_depth 2.5\n",
		"test_fn 7\n",
		"test_fn_total 9\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q in:\n%s", want, out)
		}
	}
	if c.Value() != 42 {
		t.Errorf("counter value = %d, want 42", c.Value())
	}
}

func TestRenderingSortedAndDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_b_total", "b")
	r.Counter("test_a_total", "a")
	v := r.CounterVec("test_c_total", "c", "shard")
	v.With("2").Inc()
	v.With("0").Inc()
	v.With("1").Inc()
	out := render(r)
	ia, ib := strings.Index(out, "test_a_total 0"), strings.Index(out, "test_b_total 0")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	i0 := strings.Index(out, `test_c_total{shard="0"}`)
	i1 := strings.Index(out, `test_c_total{shard="1"}`)
	i2 := strings.Index(out, `test_c_total{shard="2"}`)
	if !(0 <= i0 && i0 < i1 && i1 < i2) {
		t.Errorf("children not sorted by label value:\n%s", out)
	}
	if out != render(r) {
		t.Error("two renders of an unchanged registry differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_esc_total", "esc", "path")
	v.With("a\"b\\c\nd").Inc()
	out := render(r)
	want := `test_esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped label missing %q in:\n%s", want, out)
	}
}

func TestDuplicateAndInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "x")
	for name, fn := range map[string]func(){
		"duplicate":     func() { r.Counter("test_dup_total", "x") },
		"invalid name":  func() { r.Counter("bad-name", "x") },
		"invalid label": func() { r.CounterVec("test_l_total", "x", "bad-label") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: registration did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramBucketMath(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})

	// Boundary semantics: le is inclusive, so an observation exactly on
	// a bound lands in that bound's bucket.
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, {1.0001, 1}, {2, 1}, {3, 2}, {4, 2},
		{7.9, 3}, {8, 3}, {8.1, 4}, {1e9, 4}, {math.Inf(1), 4},
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}

	for _, v := range []float64{0.5, 1, 1.5, 3, 9} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 15 {
		t.Errorf("sum = %v, want 15", h.Sum())
	}

	var b strings.Builder
	h.write(&b, "test_h", "")
	out := b.String()
	// Cumulative: le=1 covers {0.5, 1}; le=2 adds 1.5; le=4 adds 3;
	// le=8 adds nothing; +Inf adds 9.
	for _, want := range []string{
		`test_h_bucket{le="1"} 2`,
		`test_h_bucket{le="2"} 3`,
		`test_h_bucket{le="4"} 4`,
		`test_h_bucket{le="8"} 4`,
		`test_h_bucket{le="+Inf"} 5`,
		`test_h_sum 15`,
		`test_h_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram rendering missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramVecSharesBoundsAndLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_lat_seconds", "lat", []float64{0.1, 1}, "path")
	v.With("/a").Observe(0.05)
	v.With("/b").Observe(0.5)
	out := render(r)
	for _, want := range []string{
		`test_lat_seconds_bucket{path="/a",le="0.1"} 1`,
		`test_lat_seconds_bucket{path="/b",le="0.1"} 0`,
		`test_lat_seconds_bucket{path="/b",le="1"} 1`,
		`test_lat_seconds_count{path="/a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled histogram missing %q in:\n%s", want, out)
		}
	}
}

func TestLatencyBucketsShape(t *testing.T) {
	if len(LatencyBuckets) != 16 {
		t.Fatalf("LatencyBuckets has %d buckets, want 16", len(LatencyBuckets))
	}
	if LatencyBuckets[0] != 0.0005 {
		t.Errorf("first bound = %v, want 0.0005", LatencyBuckets[0])
	}
	for i := 1; i < len(LatencyBuckets); i++ {
		if LatencyBuckets[i] != 2*LatencyBuckets[i-1] {
			t.Errorf("bound %d = %v, want double of %v (log-scale ladder)",
				i, LatencyBuckets[i], LatencyBuckets[i-1])
		}
	}
}

func TestNonAscendingBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "c")
	h := r.Histogram("test_conc_seconds", "h", nil)
	v := r.CounterVec("test_conc_vec_total", "v", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
				v.With("a").Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if got := v.With("a").Value(); got != 8000 {
		t.Errorf("vec child = %d, want 8000", got)
	}
	if math.Abs(h.Sum()-8.0) > 1e-9 {
		t.Errorf("histogram sum = %v, want 8.0", h.Sum())
	}
}
