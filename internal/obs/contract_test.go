package obs_test

// The metrics contract: METRICS.md and the code cannot drift. This test
// parses the metric tables out of METRICS.md, boots a real
// collector + router + gateway, drives load through all three tiers,
// scrapes each /metrics, and then checks BOTH directions:
//
//   - every metric METRICS.md documents for a binary appears in that
//     binary's scrape (docs cannot promise what code does not export);
//   - every cbi_-prefixed family in a scrape appears in METRICS.md
//     (code cannot export what docs do not explain).
//
// It also validates that each scrape is well-formed Prometheus text
// exposition: every sample line parses, and every sample belongs to a
// family with a preceding # TYPE line.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"cbi/internal/collector"
	"cbi/internal/report"
	"cbi/internal/shard"
)

const (
	testSites = 6
	testPreds = 18
)

func testSiteOf() []int32 {
	siteOf := make([]int32, testPreds)
	for p := range siteOf {
		siteOf[p] = int32(p / 3) // three predicates per site, like the real schemes
	}
	return siteOf
}

// testReports builds a small deterministic corpus: even runs succeed,
// odd runs fail, with varied predicate membership.
func testReports(n int) []*report.Report {
	out := make([]*report.Report, n)
	for i := range out {
		r := &report.Report{Failed: i%2 == 1}
		for s := int32(0); s < testSites; s++ {
			if (i+int(s))%3 != 0 {
				r.ObservedSites = append(r.ObservedSites, s)
				for j := int32(0); j < 3; j++ {
					p := s*3 + j
					if (i+int(p))%2 == 0 {
						r.TruePreds = append(r.TruePreds, p)
					}
				}
			}
		}
		out[i] = r
	}
	return out
}

// metricsDoc is METRICS.md parsed into per-binary metric name sets.
type metricsDoc map[string]map[string]string // section -> name -> type

// sectionOf maps a METRICS.md heading to its key in metricsDoc.
var sectionHeads = map[string]string{
	"## Collector (`cbi serve`)":            "collector",
	"## Router (`cbi route`)":               "router",
	"## Gateway (`cbi gateway`)":            "gateway",
	"## Shared HTTP metrics (every binary)": "http",
}

var tableRow = regexp.MustCompile("^\\| `(cbi_[a-zA-Z0-9_]+)` \\| ([a-z]+) \\|")

func parseMetricsDoc(t *testing.T) metricsDoc {
	t.Helper()
	f, err := os.Open("../../METRICS.md")
	if err != nil {
		t.Fatalf("METRICS.md must exist at the repository root: %v", err)
	}
	defer f.Close()
	doc := metricsDoc{}
	section := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "## ") {
			section = sectionHeads[strings.TrimSpace(line)]
			continue
		}
		m := tableRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if section == "" {
			t.Fatalf("METRICS.md lists %s outside any known binary section", m[1])
		}
		if doc[section] == nil {
			doc[section] = map[string]string{}
		}
		doc[section][m[1]] = m[2]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"collector", "router", "gateway", "http"} {
		if len(doc[want]) == 0 {
			t.Fatalf("METRICS.md has no metric rows for section %q (headings renamed? update sectionHeads)", want)
		}
	}
	return doc
}

// scrape fetches and format-validates one /metrics endpoint, returning
// the set of family names (with # TYPE) it exposes.
func scrape(t *testing.T, url string) (families map[string]string, body string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET %s/metrics: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/metrics = %d: %s", url, resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("%s/metrics Content-Type = %q, want text exposition", url, ct)
	}
	body = string(raw)
	families = validateExposition(t, body)
	return families, body
}

var (
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	helpLine   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
)

// validateExposition checks the scraped body line by line against the
// Prometheus text format and returns family name -> declared type.
func validateExposition(t *testing.T, body string) map[string]string {
	t.Helper()
	families := map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if m := typeLine.FindStringSubmatch(line); m != nil {
			families[m[1]] = m[2]
			continue
		}
		if helpLine.MatchString(line) {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d is not valid Prometheus text exposition: %q", ln+1, line)
			continue
		}
		// A sample must belong to a family declared by a TYPE line;
		// histogram samples append _bucket/_sum/_count to the family.
		name := m[1]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if typ, ok := families[trimmed]; ok && typ == "histogram" {
					base = trimmed
				}
				break
			}
		}
		if _, ok := families[base]; !ok {
			t.Errorf("line %d: sample %q has no preceding # TYPE line", ln+1, name)
		}
	}
	return families
}

// TestMetricsContract is the doc/code drift gate (see file comment).
func TestMetricsContract(t *testing.T) {
	doc := parseMetricsDoc(t)
	ctx := context.Background()
	siteOf := testSiteOf()

	// One collector shard, fronted by a router and a gateway.
	coll, err := collector.New(collector.Config{
		NumSites:     testSites,
		NumPreds:     testPreds,
		SiteOf:       siteOf,
		RunLogSize:   64, // small cap so evictions actually happen under load
		RunLogMaxAge: time.Hour,
		SnapshotPath: t.TempDir() + "/contract.snap",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	collTS := httptest.NewServer(coll.Handler())
	defer collTS.Close()

	router, err := shard.NewRouter(shard.RouterConfig{
		Backends:       []string{collTS.URL},
		HealthInterval: 100 * time.Millisecond,
		Logf:           func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	routerTS := httptest.NewServer(router.Handler())
	defer routerTS.Close()

	gw, err := shard.NewGateway(shard.GatewayConfig{
		Shards:   []string{collTS.URL},
		NumSites: testSites,
		NumPreds: testPreds,
		SiteOf:   siteOf,
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	gwTS := httptest.NewServer(gw.Handler())
	defer gwTS.Close()

	// Drive load through every tier: batches through the router (small
	// batch size so several POSTs land), reads everywhere, a snapshot,
	// and an unknown path (the path="other" bucket).
	client := collector.NewClient(routerTS.URL, testSites, testPreds, collector.WithBatchSize(16))
	set := &report.Set{NumSites: testSites, NumPreds: testPreds, Reports: testReports(200)}
	if err := client.SubmitSet(ctx, set); err != nil {
		t.Fatal(err)
	}
	if err := router.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, coll, 200)
	if err := coll.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	for _, url := range []string{
		collTS.URL + "/v1/scores?k=5",
		collTS.URL + "/v1/predictors?k=5",
		collTS.URL + "/v1/stats",
		collTS.URL + "/healthz",
		collTS.URL + "/no/such/path",
		routerTS.URL + "/v1/stats",
		routerTS.URL + "/healthz",
		gwTS.URL + "/v1/scores?k=5",
		gwTS.URL + "/v1/predictors?k=5",
		gwTS.URL + "/v1/stats",
		gwTS.URL + "/healthz",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	for _, tier := range []struct {
		name, url string
	}{
		{"collector", collTS.URL},
		{"router", routerTS.URL},
		{"gateway", gwTS.URL},
	} {
		t.Run(tier.name, func(t *testing.T) {
			families, body := scrape(t, tier.url)

			// Documented -> exported.
			want := map[string]string{}
			for n, typ := range doc[tier.name] {
				want[n] = typ
			}
			for n, typ := range doc["http"] {
				want[n] = typ
			}
			for name, typ := range want {
				got, ok := families[name]
				if !ok {
					t.Errorf("METRICS.md documents %s for the %s but its /metrics does not export it", name, tier.name)
					continue
				}
				if got != typ {
					t.Errorf("%s: METRICS.md says %s is a %s, /metrics says %s", tier.name, name, typ, got)
				}
			}

			// Exported -> documented.
			for name := range families {
				if !strings.HasPrefix(name, "cbi_") {
					continue
				}
				if _, ok := want[name]; !ok {
					t.Errorf("%s exports %s but METRICS.md does not document it", tier.name, name)
				}
			}

			// Spot-check that load actually moved the needles: the scrape
			// must show real traffic, not a page of zeros.
			nonzero := map[string]string{
				"collector": `cbi_collector_reports_applied_total 200`,
				"router":    `cbi_router_accepted_total`,
				"gateway":   `cbi_gateway_merge_seconds_count`,
			}[tier.name]
			if !strings.Contains(body, nonzero) {
				t.Errorf("%s scrape does not show expected load marker %q:\n%s", tier.name, nonzero, body)
			}
		})
	}
}

func waitApplied(t *testing.T, s *collector.Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.StatsNow().ReportsApplied >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("collector applied %d of %d reports before deadline", s.StatsNow().ReportsApplied, n)
}

// TestStatsAndMetricsAgree pins the "single source of truth" property:
// the JSON /v1/stats counters and the /metrics rendering are the same
// objects, so after any load the two surfaces must report identical
// values.
func TestStatsAndMetricsAgree(t *testing.T) {
	ctx := context.Background()
	coll, err := collector.New(collector.Config{
		NumSites: testSites,
		NumPreds: testPreds,
		SiteOf:   testSiteOf(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	ts := httptest.NewServer(coll.Handler())
	defer ts.Close()

	client := collector.NewClient(ts.URL, testSites, testPreds, collector.WithBatchSize(32))
	if err := client.SubmitSet(ctx, &report.Set{
		NumSites: testSites, NumPreds: testPreds, Reports: testReports(128),
	}); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, coll, 128)

	st := coll.StatsNow()
	_, body := scrape(t, ts.URL)
	for metric, want := range map[string]int64{
		"cbi_collector_batches_accepted_total": st.BatchesAccepted,
		"cbi_collector_reports_applied_total":  st.ReportsApplied,
		"cbi_collector_reports_enqueued_total": st.ReportsEnqueued,
		"cbi_collector_runlog_runs":            int64(st.RunLogRuns),
		"cbi_collector_runs_failing":           st.Failing,
		"cbi_collector_runs_successful":        st.Successful,
	} {
		line := fmt.Sprintf("%s %d\n", metric, want)
		if !strings.Contains(body, line) {
			t.Errorf("/v1/stats and /metrics disagree: want %q in:\n%s", strings.TrimSpace(line), body)
		}
	}
}
