package ratelimit

import (
	"testing"
	"time"
)

func TestBurstThenRefill(t *testing.T) {
	l := New(10, 5) // 10/s, burst 5
	now := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		if ok, _ := l.Allow("k", now); !ok {
			t.Fatalf("request %d inside burst was limited", i)
		}
	}
	ok, retry := l.Allow("k", now)
	if ok {
		t.Fatal("6th immediate request should be limited")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry-after %v, want (0, 100ms]", retry)
	}
	// One token accrues after 100ms at 10/s.
	if ok, _ := l.Allow("k", now.Add(100*time.Millisecond)); !ok {
		t.Fatal("request after refill interval was limited")
	}
}

func TestKeysIndependent(t *testing.T) {
	l := New(1, 1)
	now := time.Unix(1000, 0)
	if ok, _ := l.Allow("a", now); !ok {
		t.Fatal("first request for key a limited")
	}
	if ok, _ := l.Allow("b", now); !ok {
		t.Fatal("first request for key b limited (buckets not independent)")
	}
	if ok, _ := l.Allow("a", now); ok {
		t.Fatal("second immediate request for key a not limited")
	}
}

func TestNilLimiterAllowsAll(t *testing.T) {
	var l *PerKey
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("k", time.Unix(1000, 0)); !ok {
			t.Fatal("nil limiter limited a request")
		}
	}
	if l := New(0, 0); l != nil {
		t.Fatal("New with rate 0 should return nil (limiting disabled)")
	}
}

func TestBurstDefault(t *testing.T) {
	l := New(3, 0)
	now := time.Unix(1000, 0)
	allowed := 0
	for i := 0; i < 20; i++ {
		if ok, _ := l.Allow("k", now); ok {
			allowed++
		}
	}
	if allowed != 6 { // default burst = 2*rate
		t.Fatalf("default burst allowed %d, want 6", allowed)
	}
}

func TestTableBounded(t *testing.T) {
	l := New(1, 1)
	now := time.Unix(1000, 0)
	for i := 0; i < maxKeys+100; i++ {
		l.Allow(string(rune('a'+i%26))+string(rune(i)), now.Add(time.Duration(i)))
	}
	if len(l.buckets) > maxKeys {
		t.Fatalf("bucket table grew to %d, cap is %d", len(l.buckets), maxKeys)
	}
}

func TestRetrySeconds(t *testing.T) {
	if got := RetrySeconds(0); got != 1 {
		t.Fatalf("RetrySeconds(0) = %d, want 1", got)
	}
	if got := RetrySeconds(1500 * time.Millisecond); got != 2 {
		t.Fatalf("RetrySeconds(1.5s) = %d, want 2", got)
	}
}
