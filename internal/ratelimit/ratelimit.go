// Package ratelimit provides a per-key token-bucket rate limiter for
// the write endpoints of the collector and the shard router. It lives
// in its own package because both sides need it and the collector
// cannot import the shard package (the gateway imports the collector).
//
// Each key gets an independent bucket of `burst` tokens refilled at
// `rate` tokens per second. A request costs one token; when the bucket
// is empty the limiter reports how long until the next token so the
// caller can emit a precise Retry-After.
package ratelimit

import (
	"sync"
	"time"
)

// maxKeys bounds the number of tracked buckets so an attacker cycling
// through fabricated keys cannot grow the table without bound. When the
// table is full, the stalest bucket (oldest refill time) is recycled —
// a full bucket for its new owner, which only ever errs permissive.
const maxKeys = 1 << 14

// PerKey is a per-key token-bucket limiter. The zero value is not
// usable; call New.
type PerKey struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time // last refill
}

// New builds a limiter granting `rate` requests per second per key with
// bursts of up to `burst`. A non-positive burst defaults to
// max(1, 2*rate). A non-positive rate returns nil, which every method
// treats as "no limiting".
func New(rate float64, burst int) *PerKey {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = 2 * rate
		if b < 1 {
			b = 1
		}
	}
	return &PerKey{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// Allow spends one token from key's bucket at time now. When the bucket
// is empty it returns ok=false and how long until a token accrues — the
// value to surface as Retry-After (rounded up to a whole second by the
// caller). A nil limiter always allows.
func (l *PerKey) Allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxKeys {
			l.evictStalest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / l.rate * float64(time.Second))
}

// evictStalest recycles the bucket with the oldest refill time.
// Callers hold mu.
func (l *PerKey) evictStalest() {
	var stalest string
	var when time.Time
	first := true
	for k, b := range l.buckets {
		if first || b.last.Before(when) {
			stalest, when, first = k, b.last, false
		}
	}
	delete(l.buckets, stalest)
}

// RetrySeconds converts a retry-after duration to the whole-second
// value HTTP Retry-After headers carry, never below 1.
func RetrySeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
