package collector

import (
	"bytes"
	"fmt"

	"cbi/internal/corpus"
	"cbi/internal/report"
)

// defaultRunLogCap is the default run-log retention cap: enough to hold
// every run of any realistic single-collector experiment, while
// bounding memory to the window a deployment actually analyzes.
const defaultRunLogCap = 1 << 18

// runLog is the collector's run-level predicate membership log: one
// compact binary record per retained run (report.AppendRecord — the
// wire format's per-report encoding), in arrival order, bounded by a
// retention cap with oldest-run eviction. Each record carries its
// arrival time so an age cap can evict stale runs alongside the count
// cap. It is what elevates the collector from aggregate counters
// (enough for Importance ranking) to full cause isolation:
// core.Eliminate discards *runs*, not counters, so it needs to know
// which predicates each retained run observed true.
//
// The log is not itself goroutine-safe; shardedAgg serializes access
// under its own locks so that counters and log always describe the
// same run set.
type runLog struct {
	cap int
	// maxBytes, when positive, additionally caps the summed encoded size
	// of retained records; bytes tracks the current sum. The newest run
	// is never evicted by the byte cap, so the window always holds at
	// least one run.
	maxBytes int64
	bytes    int64
	// Circular buffer: recs/times/keys/seqs share indices, len(recs) is
	// the allocated ring size (grows amortized up to cap), head the
	// oldest entry, n the live count. keys holds each run's routing-key
	// hash (corpus.NoKey when unknown) so a migration can select runs by
	// ring range; seqs holds a per-boot, strictly increasing append
	// sequence so an export can cut over on a watermark. Sequences are
	// only meaningful within one boot epoch — a restart renumbers.
	recs  [][]byte
	times []int64 // arrival UnixNano, same order as recs
	keys  []uint64
	seqs  []uint64
	head  int
	n     int
	// lastSeq is the most recently assigned append sequence.
	lastSeq uint64
	// version increments on every mutation; /v1/predictors caches are
	// keyed on it so repeated polls between ingests never rescan.
	version uint64
	// evicted counts runs dropped by retention (count, age, or byte cap)
	// since startup.
	evicted int64
	// interned dedups identical membership vectors behind refcounts:
	// many runs of the same subject observe the same sites and
	// predicates, so their encoded records are byte-identical. Each ring
	// slot holds exactly one reference to its canonical record; byte
	// accounting stays logical (len(rec) per retained slot), so caps and
	// stats describe the window, not the dedup. Canonical bytes are
	// immutable, and records returned from the log (evictions, exports)
	// stay valid after their entry is released — release only drops the
	// map entry, never reuses the bytes.
	interned map[string]*internEntry
}

// internEntry is one canonical encoded membership vector plus how many
// ring slots currently reference it.
type internEntry struct {
	rec  []byte
	refs int
}

func newRunLog(capRuns int, maxBytes int64) *runLog {
	return &runLog{cap: capRuns, maxBytes: maxBytes,
		interned: make(map[string]*internEntry)}
}

// intern returns the canonical copy of rec, adding one reference. When
// owned, a first-seen rec is adopted as the canonical bytes without
// copying (the caller must never mutate it afterwards); otherwise the
// first occurrence is copied, so callers may pass reused scratch
// buffers. The map lookup on the hit path allocates nothing.
func (l *runLog) intern(rec []byte, owned bool) []byte {
	if e := l.interned[string(rec)]; e != nil {
		e.refs++
		return e.rec
	}
	canon := rec
	if !owned {
		canon = append([]byte(nil), rec...)
	}
	l.interned[string(canon)] = &internEntry{rec: canon, refs: 1}
	return canon
}

// release drops one ring-slot reference to a canonical record, deleting
// the map entry when the last reference goes. The bytes themselves stay
// valid — outstanding copies handed out by records()/append() keep
// working.
func (l *runLog) release(rec []byte) {
	if e := l.interned[string(rec)]; e != nil {
		if e.refs--; e.refs == 0 {
			delete(l.interned, string(rec))
		}
	}
}

// internedCount returns the number of distinct membership vectors
// currently retained.
func (l *runLog) internedCount() int { return len(l.interned) }

// grow doubles the ring allocation (up to cap), relinearizing at 0.
func (l *runLog) grow() {
	size := 2 * len(l.recs)
	if size == 0 {
		size = 64
	}
	if size > l.cap {
		size = l.cap
	}
	recs := make([][]byte, size)
	times := make([]int64, size)
	keys := make([]uint64, size)
	seqs := make([]uint64, size)
	for i := 0; i < l.n; i++ {
		j := (l.head + i) % len(l.recs)
		recs[i], times[i], keys[i], seqs[i] = l.recs[j], l.times[j], l.keys[j], l.seqs[j]
	}
	l.recs, l.times, l.keys, l.seqs, l.head = recs, times, keys, seqs, 0
}

// append interns and stores one encoded record stamped with its arrival
// time. It returns the canonical (interned) record — callers that log
// or stash the batch must hold the canonical bytes, not the scratch
// they encoded into — plus the evicted records the retention caps force
// out, oldest first (nil when under cap): at most one for the count
// cap, plus as many oldest runs as it takes to get back under the byte
// cap. owned declares whether rec is a fresh allocation the log may
// adopt as canonical (see intern). The returned slices are immutable:
// rings swap record pointers, never reuse their bytes.
func (l *runLog) append(rec []byte, owned bool, key uint64, now int64) (canon []byte, evicted [][]byte) {
	if l.n == l.cap {
		evicted = append(evicted, l.evictOldest())
	} else if l.n == len(l.recs) {
		l.grow()
	}
	rec = l.intern(rec, owned)
	i := (l.head + l.n) % len(l.recs)
	l.lastSeq++
	l.recs[i], l.times[i], l.keys[i], l.seqs[i] = rec, now, key, l.lastSeq
	l.n++
	l.bytes += int64(len(rec))
	l.version++
	if l.maxBytes > 0 {
		for l.bytes > l.maxBytes && l.n > 1 {
			evicted = append(evicted, l.evictOldest())
		}
	}
	return rec, evicted
}

// evictOldest pops and returns the oldest record, dropping its intern
// reference (the returned bytes remain valid).
func (l *runLog) evictOldest() []byte {
	rec := l.recs[l.head]
	l.recs[l.head] = nil
	l.head = (l.head + 1) % len(l.recs)
	l.n--
	l.bytes -= int64(len(rec))
	l.evicted++
	l.version++
	l.release(rec)
	return rec
}

// evictExpired pops every record that arrived before cutoff (UnixNano),
// oldest first, and returns them so the caller can un-count each. Runs
// arrive in time order, so the expired set is always a prefix.
func (l *runLog) evictExpired(cutoff int64) (evicted [][]byte) {
	for l.n > 0 && l.times[l.head] < cutoff {
		evicted = append(evicted, l.evictOldest())
	}
	return evicted
}

// len returns the number of retained runs.
func (l *runLog) len() int { return l.n }

// records returns the retained records in arrival order. The returned
// slice is a fresh header but shares the (immutable) record bytes, so
// callers may decode it without holding the aggregate's locks.
func (l *runLog) records() [][]byte {
	out := make([][]byte, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.recs[(l.head+i)%len(l.recs)])
	}
	return out
}

// recordsKeyed returns the retained records and their routing-key
// hashes, aligned, in arrival order.
func (l *runLog) recordsKeyed() ([][]byte, []uint64) {
	recs := make([][]byte, 0, l.n)
	keys := make([]uint64, 0, l.n)
	for i := 0; i < l.n; i++ {
		j := (l.head + i) % len(l.recs)
		recs = append(recs, l.recs[j])
		keys = append(keys, l.keys[j])
	}
	return recs, keys
}

// matchRange reports whether a record with the given key matches a
// migration selector: nil ranges is a full drain and matches every
// record; otherwise the key must fall in one of the arcs (unkeyed
// records never do).
func matchRange(key uint64, ranges []corpus.KeyRange) bool {
	if ranges == nil {
		return true
	}
	return corpus.InRanges(key, ranges)
}

// selectRange collects up to max retained records whose key matches
// ranges and whose append sequence is > sinceSeq, in arrival order.
// It returns the records, their keys, the highest sequence included
// (the export watermark; sinceSeq when nothing matched), whether more
// matching records remain past the watermark, and how many.
func (l *runLog) selectRange(ranges []corpus.KeyRange, sinceSeq uint64, max int) (recs [][]byte, keys []uint64, watermark uint64, remaining int) {
	watermark = sinceSeq
	for i := 0; i < l.n; i++ {
		j := (l.head + i) % len(l.recs)
		if l.seqs[j] <= sinceSeq || !matchRange(l.keys[j], ranges) {
			continue
		}
		if max > 0 && len(recs) >= max {
			remaining++
			continue
		}
		recs = append(recs, l.recs[j])
		keys = append(keys, l.keys[j])
		watermark = l.seqs[j]
	}
	return recs, keys, watermark, remaining
}

// remove drops up to one retained occurrence per given encoded record,
// matching by exact bytes, preserving arrival order of the survivors.
// It returns the removed records (for the caller to un-count); the
// eviction counter is untouched — removal is revocation, not
// retention.
func (l *runLog) remove(recs [][]byte) (removed [][]byte) {
	if l.n == 0 || len(recs) == 0 {
		return nil
	}
	want := make(map[string]int, len(recs))
	for _, rec := range recs {
		want[string(rec)]++
	}
	kept := make([][]byte, 0, l.n)
	times := make([]int64, 0, l.n)
	keys := make([]uint64, 0, l.n)
	seqs := make([]uint64, 0, l.n)
	for i := 0; i < l.n; i++ {
		j := (l.head + i) % len(l.recs)
		rec := l.recs[j]
		if c := want[string(rec)]; c > 0 {
			want[string(rec)] = c - 1
			removed = append(removed, rec)
			continue
		}
		kept = append(kept, rec)
		times = append(times, l.times[j])
		keys = append(keys, l.keys[j])
		seqs = append(seqs, l.seqs[j])
	}
	if len(removed) == 0 {
		return nil
	}
	for _, rec := range removed {
		l.release(rec)
	}
	l.recs, l.times, l.keys, l.seqs, l.head, l.n = kept, times, keys, seqs, 0, len(kept)
	l.bytes = 0
	for _, rec := range kept {
		l.bytes += int64(len(rec))
	}
	l.version++
	return removed
}

// restore refills the log from decoded reports (oldest first), keeping
// only the newest cap runs (count and byte caps both apply), all
// stamped with the restore time (the at-rest format carries no per-run
// clock, so ages restart conservatively). It returns how many runs were
// retained so the caller can detect a trim. Counters are the caller's
// business.
func (l *runLog) restore(reports []*report.Report, keys []uint64, now int64) (retained int) {
	if len(keys) != 0 && len(keys) != len(reports) {
		keys = nil
	}
	if len(reports) > l.cap {
		if keys != nil {
			keys = keys[len(reports)-l.cap:]
		}
		reports = reports[len(reports)-l.cap:]
	}
	l.interned = make(map[string]*internEntry)
	l.recs = make([][]byte, len(reports))
	l.times = make([]int64, len(reports))
	l.keys = make([]uint64, len(reports))
	l.seqs = make([]uint64, len(reports))
	l.head, l.n, l.bytes = 0, len(reports), 0
	var scratch []byte
	for i, r := range reports {
		scratch = report.AppendRecord(scratch[:0], r)
		l.recs[i] = l.intern(scratch, false)
		l.times[i] = now
		if keys != nil {
			l.keys[i] = keys[i]
		}
		l.lastSeq++
		l.seqs[i] = l.lastSeq
		l.bytes += int64(len(l.recs[i]))
	}
	if l.maxBytes > 0 {
		for l.bytes > l.maxBytes && l.n > 1 {
			l.bytes -= int64(len(l.recs[l.head]))
			l.release(l.recs[l.head])
			l.recs[l.head] = nil
			l.head++
			l.n--
		}
	}
	l.version++
	return l.n
}

// decodeRecords decodes run-log records into reports, in order.
func decodeRecords(recs [][]byte, numSites, numPreds int) ([]*report.Report, error) {
	out := make([]*report.Report, 0, len(recs))
	for i, rec := range recs {
		r, err := report.ReadRecord(bytes.NewReader(rec), numSites, numPreds)
		if err != nil {
			return nil, fmt.Errorf("collector: run-log record %d: %v", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}
