package collector

import (
	"bytes"
	"fmt"

	"cbi/internal/report"
)

// defaultRunLogCap is the default run-log retention cap: enough to hold
// every run of any realistic single-collector experiment, while
// bounding memory to the window a deployment actually analyzes.
const defaultRunLogCap = 1 << 18

// runLog is the collector's run-level predicate membership log: one
// compact binary record per retained run (report.AppendRecord — the
// wire format's per-report encoding), in arrival order, bounded by a
// retention cap with oldest-run eviction. It is what elevates the
// collector from aggregate counters (enough for Importance ranking) to
// full cause isolation: core.Eliminate discards *runs*, not counters,
// so it needs to know which predicates each retained run observed true.
//
// The log is not itself goroutine-safe; shardedAgg serializes access
// under its own locks so that counters and log always describe the
// same run set.
type runLog struct {
	cap  int
	recs [][]byte // ring once len == cap
	head int      // index of the oldest record
	// version increments on every mutation; /v1/predictors caches are
	// keyed on it so repeated polls between ingests never rescan.
	version uint64
	// evicted counts runs dropped by retention since startup.
	evicted int64
}

func newRunLog(capRuns int) *runLog {
	return &runLog{cap: capRuns}
}

// append stores one encoded record, returning the evicted oldest
// record (nil when under cap). The returned slice is immutable: rings
// swap record pointers, never reuse their bytes.
func (l *runLog) append(rec []byte) (evicted []byte) {
	if len(l.recs) < l.cap {
		l.recs = append(l.recs, rec)
	} else {
		evicted = l.recs[l.head]
		l.recs[l.head] = rec
		l.head = (l.head + 1) % l.cap
		l.evicted++
	}
	l.version++
	return evicted
}

// len returns the number of retained runs.
func (l *runLog) len() int { return len(l.recs) }

// records returns the retained records in arrival order. The returned
// slice is a fresh header but shares the (immutable) record bytes, so
// callers may decode it without holding the aggregate's locks.
func (l *runLog) records() [][]byte {
	out := make([][]byte, 0, len(l.recs))
	out = append(out, l.recs[l.head:]...)
	out = append(out, l.recs[:l.head]...)
	return out
}

// restore refills the log from decoded reports (oldest first), keeping
// only the newest cap runs. Counters are the caller's business.
func (l *runLog) restore(reports []*report.Report) {
	if len(reports) > l.cap {
		reports = reports[len(reports)-l.cap:]
	}
	l.recs = make([][]byte, 0, len(reports))
	l.head = 0
	for _, r := range reports {
		l.recs = append(l.recs, report.AppendRecord(nil, r))
	}
	l.version++
}

// decodeRecords decodes run-log records into reports, in order.
func decodeRecords(recs [][]byte, numSites, numPreds int) ([]*report.Report, error) {
	out := make([]*report.Report, 0, len(recs))
	for i, rec := range recs {
		r, err := report.ReadRecord(bytes.NewReader(rec), numSites, numPreds)
		if err != nil {
			return nil, fmt.Errorf("collector: run-log record %d: %v", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}
