package collector

import (
	"compress/gzip"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"

	"cbi/internal/corpus"
	"cbi/internal/report"
)

// fetchState performs GET /v1/snapshot?since=... and decodes whichever
// form came back.
func fetchState(t *testing.T, url, since string) (snap *corpus.AggSnapshot, set *report.Set, delta *corpus.DeltaSegment, epoch, ver uint64) {
	t.Helper()
	if since != "" {
		url += "?since=" + since
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/snapshot = %d", resp.StatusCode)
	}
	epoch, _ = strconv.ParseUint(resp.Header.Get("X-CBI-State-Epoch"), 10, 64)
	ver, _ = strconv.ParseUint(resp.Header.Get("X-CBI-State-Version"), 10, 64)
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Content-Type") == "application/x-cbi-delta+gzip" {
		delta, err = corpus.ReadDeltaSegment(gz)
		if err != nil {
			t.Fatal(err)
		}
		return nil, nil, delta, epoch, ver
	}
	snap, set, err = corpus.ReadMergeSegment(gz)
	if err != nil {
		t.Fatal(err)
	}
	return snap, set, nil, epoch, ver
}

// TestSnapshotDeltaEndpoint drives the versioned /v1/snapshot
// protocol end to end: a warm copy advanced by deltas must equal the
// next full export exactly, and every resync trigger (bad epoch,
// version ahead of history, history overflow) must fall back to a full
// snapshot rather than serve a wrong delta.
func TestSnapshotDeltaEndpoint(t *testing.T) {
	in := testCorpus(t).CoreInput()
	reports := in.Set.Reports[:120]

	srv, err := New(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/snapshot"

	if err := srv.IngestBatch("d-0", reports[:40]); err != nil {
		t.Fatal(err)
	}
	snap, set, delta, epoch, ver := fetchState(t, url, "")
	if delta != nil {
		t.Fatal("unconditional snapshot answered with a delta")
	}
	if epoch == 0 || ver == 0 {
		t.Fatalf("full export without state headers (epoch %d, version %d)", epoch, ver)
	}
	window := set.Reports

	// More ingest, then ask for just the difference.
	if err := srv.IngestBatch("d-1", reports[40:90]); err != nil {
		t.Fatal(err)
	}
	_, _, delta, epoch2, ver2 := fetchState(t, url, fmt.Sprintf("%d:%d", epoch, ver))
	if delta == nil {
		t.Fatal("matching since was not answered with a delta")
	}
	if epoch2 != epoch || delta.Epoch != epoch || delta.From != ver {
		t.Fatalf("delta [%d,%d) epoch %d, asked since %d:%d", delta.From, delta.To, delta.Epoch, epoch, ver)
	}
	window, err = corpus.ApplyDelta(snap, window, delta)
	if err != nil {
		t.Fatal(err)
	}
	if ver2 != delta.To {
		t.Fatalf("version header %d != delta.To %d", ver2, delta.To)
	}

	// The advanced warm copy equals a fresh full export, field by field
	// and run by run.
	fullSnap, fullSet, _, _, ver3 := fetchState(t, url, "")
	if ver3 != ver2 {
		t.Fatalf("quiescent full export at version %d, warm copy at %d", ver3, ver2)
	}
	if !reflect.DeepEqual(snap, fullSnap) {
		t.Fatalf("warm counters diverged:\nwarm %+v\nfull %+v", snap, fullSnap)
	}
	if !reflect.DeepEqual(window, fullSet.Reports) {
		t.Fatalf("warm window (%d runs) diverged from full export (%d runs)",
			len(window), len(fullSet.Reports))
	}

	// An empty delta is still a delta: nothing changed since ver2.
	if _, _, d, _, _ := fetchState(t, url, fmt.Sprintf("%d:%d", epoch, ver2)); d == nil || len(d.Events) != 0 {
		t.Fatalf("no-change since did not yield an empty delta (%+v)", d)
	}

	// A foreign epoch (restarted shard) must force a full snapshot.
	if s, _, d, _, _ := fetchState(t, url, fmt.Sprintf("%d:%d", epoch+2, ver2)); d != nil || s == nil {
		t.Fatal("epoch mismatch was not answered with a full snapshot")
	}
	// A version from the future likewise.
	if s, _, d, _, _ := fetchState(t, url, fmt.Sprintf("%d:%d", epoch, ver2+1000)); d != nil || s == nil {
		t.Fatal("future version was not answered with a full snapshot")
	}
	// Malformed since likewise.
	if s, _, d, _, _ := fetchState(t, url, "bogus"); d != nil || s == nil {
		t.Fatal("malformed since was not answered with a full snapshot")
	}

	stats := srv.StatsNow()
	if stats.DeltaRequests == 0 || stats.DeltaServed == 0 || stats.DeltaServed > stats.DeltaRequests {
		t.Fatalf("delta stats inconsistent: %d requests, %d served", stats.DeltaRequests, stats.DeltaServed)
	}
}

// TestSnapshotDeltaHistoryOverflow shrinks the event history below the
// ingest volume: a since that fell out of history must get a full
// snapshot, never a partial delta.
func TestSnapshotDeltaHistoryOverflow(t *testing.T) {
	in := testCorpus(t).CoreInput()
	cfg := serverConfig(t)
	cfg.DeltaHistory = 8
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/snapshot"

	if err := srv.IngestBatch("h-0", in.Set.Reports[:4]); err != nil {
		t.Fatal(err)
	}
	_, _, _, epoch, ver := fetchState(t, url, "")
	// Blow past the 8-event history.
	if err := srv.IngestBatch("h-1", in.Set.Reports[4:40]); err != nil {
		t.Fatal(err)
	}
	snap, _, delta, _, _ := fetchState(t, url, fmt.Sprintf("%d:%d", epoch, ver))
	if delta != nil || snap == nil {
		t.Fatal("since beyond retained history was not answered with a full snapshot")
	}
}

// TestSnapshotDeltaDisabled checks the opt-outs: negative DeltaHistory
// and a disabled run log both serve plain full snapshots without state
// headers.
func TestSnapshotDeltaDisabled(t *testing.T) {
	for name, mut := range map[string]func(*Config){
		"negative-history": func(c *Config) { c.DeltaHistory = -1 },
		"no-runlog":        func(c *Config) { c.RunLogSize = -1 },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := serverConfig(t)
			mut(&cfg)
			srv, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			if err := srv.IngestBatch("x-0", testCorpus(t).CoreInput().Set.Reports[:10]); err != nil {
				t.Fatal(err)
			}
			snap, _, delta, epoch, _ := fetchState(t, ts.URL+"/v1/snapshot", "1:1")
			if delta != nil || snap == nil {
				t.Fatal("delta-disabled server answered with a delta")
			}
			if epoch != 0 {
				t.Fatal("delta-disabled server advertised state headers")
			}
		})
	}
}
