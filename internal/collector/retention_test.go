package collector

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"cbi/internal/corpus"
)

// fakeClock is an injectable retention clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestRunLogAgeEviction drives the age cap with an injected clock:
// runs older than RunLogMaxAge are evicted and un-counted on the next
// arrival, so stats and scores describe exactly the fresh window — the
// same evict-and-decrement consistency the count cap keeps.
func TestRunLogAgeEviction(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	cfg := serverConfig(t)
	cfg.RunLogMaxAge = time.Hour
	cfg.nowFn = clock.Now
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const old, fresh = 300, 120
	for _, r := range in.Set.Reports[:old] {
		srv.Ingest(r)
	}
	if st := srv.StatsNow(); st.Runs != old || st.RunLogRuns != old {
		t.Fatalf("before aging: %d runs / %d logged, want %d/%d", st.Runs, st.RunLogRuns, old, old)
	}

	// Two hours pass; every retained run is now stale. The next
	// arrivals must push all of them out.
	clock.Advance(2 * time.Hour)
	for _, r := range in.Set.Reports[old : old+fresh] {
		srv.Ingest(r)
	}
	st := srv.StatsNow()
	if st.Runs != fresh || st.RunLogRuns != fresh {
		t.Fatalf("after aging: %d runs / %d logged, want %d/%d", st.Runs, st.RunLogRuns, fresh, fresh)
	}
	if st.RunLogEvicted != old {
		t.Fatalf("evicted = %d, want %d", st.RunLogEvicted, old)
	}

	// Counters were decremented, not just the log truncated: the live
	// ranking equals the batch pipeline over only the fresh window.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, in.Set.NumSites, in.Set.NumPreds)
	got, err := client.Scores(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	want := wantTopK(in, in.Set.Reports[old:old+fresh], 20)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("scores after age eviction diverge from batch pipeline over the fresh window")
	}
}

// TestRunLogAgeSweep checks the background sweep: with no ingest at
// all, stale runs still leave on schedule.
func TestRunLogAgeSweep(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	cfg := serverConfig(t)
	cfg.RunLogMaxAge = 200 * time.Millisecond // sweep period clamps to 50ms
	cfg.nowFn = clock.Now
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, r := range in.Set.Reports[:50] {
		srv.Ingest(r)
	}
	clock.Advance(time.Minute)

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.StatsNow()
		if st.RunLogRuns == 0 && st.Runs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never evicted: %d runs / %d logged still retained", st.Runs, st.RunLogRuns)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCorruptSnapshotRecount is the torn-pair repair property: the
// counter snapshot on disk is corrupted (counters and LOGGED tampered,
// as a torn write would leave them), and on restart the collector must
// notice the disagreement and rebuild the counters from the run log —
// serving /v1/scores and /v1/predictors bit-for-bit identical to what
// it served before the kill.
func TestCorruptSnapshotRecount(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "collector.snap")

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range in.Set.Reports[:400] {
		srv1.Ingest(r)
	}
	if err := srv1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	raw := func(ts *httptest.Server, path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	scoresBefore := raw(ts1, "/v1/scores?k=25")
	predsBefore := raw(ts1, "/v1/predictors?k=25&affinity=4")
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the counter snapshot the way a torn write would: counters
	// drifted from the log the file claims to accompany.
	snap, err := corpus.ReadAggSnapshotFile(cfg.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	snap.NumF += 7
	snap.FPred[len(snap.FPred)/2] += 100
	snap.SobsSite[0] += 13
	snap.Logged -= 3
	if err := corpus.WriteAggSnapshotFile(cfg.SnapshotPath, snap); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart on corrupt snapshot: %v", err)
	}
	defer srv2.Close()
	if st := srv2.StatsNow(); st.Runs != 400 || st.RunLogRuns != 400 {
		t.Fatalf("recounted state = %d runs / %d logged, want 400/400", st.Runs, st.RunLogRuns)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if got := raw(ts2, "/v1/scores?k=25"); !bytes.Equal(got, scoresBefore) {
		t.Fatalf("recounted /v1/scores differs:\nbefore: %s\nafter:  %s", scoresBefore, got)
	}
	if got := raw(ts2, "/v1/predictors?k=25&affinity=4"); !bytes.Equal(got, predsBefore) {
		t.Fatalf("recounted /v1/predictors differs:\nbefore: %s\nafter:  %s", predsBefore, got)
	}
}
