package collector

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"cbi/internal/plan"
	"cbi/internal/report"
)

// TestPlanEndpoint covers the /v1/plan protocol end to end: the
// deterministic bootstrap plan is served immediately, conditional GETs
// are cheap 304s, authorized pushes advance the version monotonically,
// and the client wrapper tracks it all.
func TestPlanEndpoint(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	client := NewClient(ts.URL, in.Set.NumSites, in.Set.NumPreds)
	p, changed, err := client.FetchPlan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || p.Version != 1 || p.Source != "bootstrap" {
		t.Fatalf("first fetch: changed=%v plan=%+v", changed, p)
	}
	if len(p.Rates) != in.Set.NumSites {
		t.Fatalf("bootstrap plan has %d rates for %d sites", len(p.Rates), in.Set.NumSites)
	}

	// Refetch: the client sends If-None-Match and the server answers 304.
	if _, changed, err = client.FetchPlan(ctx); err != nil || changed {
		t.Fatalf("refetch: changed=%v err=%v, want cached plan", changed, err)
	}
	st := srv.StatsNow()
	if st.PlanFetches != 1 || st.PlanNotModified != 1 {
		t.Fatalf("fetch counters = %d/%d, want 1 fetch + 1 not-modified", st.PlanFetches, st.PlanNotModified)
	}
	if v, rates := client.PlanFunc()(); v != 1 || len(rates) != in.Set.NumSites {
		t.Fatalf("PlanFunc = v%d with %d rates", v, len(rates))
	}

	// Push a successor; the next conditional fetch picks it up.
	next := plan.Bootstrap(in.Set.NumSites, cfg.Fingerprint, 100, 0.01)
	next.Version = 5
	next.Source = "gateway"
	var buf bytes.Buffer
	if err := next.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("push = %d, want 202", resp.StatusCode)
	}
	if got := srv.Plan().Version; got != 5 {
		t.Fatalf("server plan version = %d after push, want 5", got)
	}
	p, changed, err = client.FetchPlan(ctx)
	if err != nil || !changed || p.Version != 5 {
		t.Fatalf("fetch after push: changed=%v v%d err=%v", changed, p.Version, err)
	}

	// An older or equal version is refused without forking the chain.
	stale := plan.Bootstrap(in.Set.NumSites, cfg.Fingerprint, 100, 0.01)
	stale.Version = 5
	buf.Reset()
	stale.Encode(&buf)
	resp, err = http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale push = %d, want 200 (not accepted)", resp.StatusCode)
	}
	if srv.Plan().Version != 5 {
		t.Fatal("stale push changed the version")
	}

	// A plan for a different instrumentation fingerprint is a 400.
	wrong := plan.Bootstrap(in.Set.NumSites, cfg.Fingerprint+1, 100, 0.01)
	wrong.Version = 9
	buf.Reset()
	wrong.Encode(&buf)
	resp, err = http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-fingerprint push = %d, want 400", resp.StatusCode)
	}
}

// TestReplanAndPersistence: a live re-plan bumps the version, persists
// the plan beside the snapshot, and a restarted collector serves the
// same version instead of regressing to bootstrap.
func TestReplanAndPersistence(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "collector.snap")
	cfg.PlanMinRuns = 10
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Under the MinRuns gate nothing publishes.
	if _, published := srv.Replan(); published {
		t.Fatal("re-plan published below the MinRuns gate")
	}

	for _, r := range in.Set.Reports[:200] {
		srv.Ingest(r)
	}
	p, published := srv.Replan()
	if !published {
		t.Fatal("re-plan over 200 runs did not publish")
	}
	if p.Version != 2 || p.Source != "collector" || p.Runs != 200 {
		t.Fatalf("published plan: %+v", p)
	}
	if st := srv.StatsNow(); st.Replans != 1 || st.PlanVersion != 2 {
		t.Fatalf("stats after re-plan: replans=%d version=%d", st.Replans, st.PlanVersion)
	}
	if err := srv.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// The sidecar file exists and round-trips.
	side, err := plan.ReadFile(plan.Path(cfg.SnapshotPath), cfg.NumSites)
	if err != nil || side == nil {
		t.Fatalf("plan sidecar: %v, %v", side, err)
	}
	if !reflect.DeepEqual(side, p) {
		t.Fatal("persisted plan differs from the published plan")
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	got := srv2.Plan()
	if got.Version != 2 || !reflect.DeepEqual(got.Rates, p.Rates) {
		t.Fatalf("restored plan v%d, want the persisted v2", got.Version)
	}
}

// TestPlanBatchAttribution: batches stamped with the current plan
// version count as current; batches stamped with an older version (a
// client that has not yet polled) count as stale.
func TestPlanBatchAttribution(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	cfg.PlanMinRuns = 10
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	client := NewClient(ts.URL, in.Set.NumSites, in.Set.NumPreds, WithBatchSize(16))
	if _, _, err := client.FetchPlan(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.SubmitSet(ctx, &report.Set{
		NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds,
		Reports: in.Set.Reports[:64],
	}); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, srv, 64)
	st := srv.StatsNow()
	if st.PlanBatchesCurrent != 4 || st.PlanBatchesStale != 0 {
		t.Fatalf("attribution v1 = %d current / %d stale, want 4/0", st.PlanBatchesCurrent, st.PlanBatchesStale)
	}

	// Re-plan; the client keeps streaming on the old version until it
	// polls again.
	if _, published := srv.Replan(); !published {
		t.Fatal("re-plan did not publish")
	}
	if err := client.SubmitSet(ctx, &report.Set{
		NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds,
		Reports: in.Set.Reports[64:96],
	}); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, srv, 96)
	st = srv.StatsNow()
	if st.PlanBatchesStale != 2 {
		t.Fatalf("stale batches = %d, want 2", st.PlanBatchesStale)
	}

	// After polling, batches are current again.
	if _, changed, err := client.FetchPlan(ctx); err != nil || !changed {
		t.Fatalf("poll after re-plan: changed=%v err=%v", changed, err)
	}
	if err := client.SubmitSet(ctx, &report.Set{
		NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds,
		Reports: in.Set.Reports[96:112],
	}); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, srv, 112)
	st = srv.StatsNow()
	if st.PlanBatchesCurrent != 5 || st.PlanBatchesStale != 2 {
		t.Fatalf("attribution v2 = %d current / %d stale, want 5/2", st.PlanBatchesCurrent, st.PlanBatchesStale)
	}
}

// TestRunLogByteCap: the byte cap evicts oldest-first with the same
// evict-and-decrement consistency as the count cap, never evicts the
// newest run, and reports its footprint in stats.
func TestRunLogByteCap(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	cfg.RunLogMaxBytes = 4096
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, r := range in.Set.Reports[:500] {
		srv.Ingest(r)
	}
	st := srv.StatsNow()
	if st.RunLogMaxBytes != 4096 {
		t.Fatalf("runlog_max_bytes = %d, want 4096", st.RunLogMaxBytes)
	}
	if st.RunLogBytes > 4096 {
		t.Fatalf("runlog_bytes = %d exceeds the cap", st.RunLogBytes)
	}
	if st.RunLogRuns == 0 {
		t.Fatal("byte cap evicted the newest run")
	}
	if st.RunLogRuns >= 500 {
		t.Fatalf("byte cap retained all %d runs under a 4KiB cap", st.RunLogRuns)
	}
	if st.RunLogEvicted != int64(500-st.RunLogRuns) {
		t.Fatalf("evicted = %d with %d retained, want %d", st.RunLogEvicted, st.RunLogRuns, 500-st.RunLogRuns)
	}
	// Evict-and-decrement: the counters describe exactly the retained
	// window, so runs == runlog_runs.
	if st.Runs != int64(st.RunLogRuns) {
		t.Fatalf("counters describe %d runs but the log retains %d", st.Runs, st.RunLogRuns)
	}
}

// TestAPIKeyRotation: SetAPIKeys swaps the accepted key set atomically;
// old keys stop working, new keys start, GET /v1/plan stays open
// throughout (a fleet must be able to poll plans across a rotation),
// and the reload is counted.
func TestAPIKeyRotation(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	cfg.APIKeys = []string{"old-key"}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := encodeBatch(t, in, in.Set.Reports[:2])
	post := func(key string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/reports", bytes.NewReader(batch))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/x-cbi-reports")
		req.Header.Set("Content-Encoding", "gzip")
		req.Header.Set("Authorization", "Bearer "+key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	planGet := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/plan")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("old-key"); code != http.StatusAccepted {
		t.Fatalf("pre-rotation POST with old key = %d, want 202", code)
	}
	if code := planGet(); code != http.StatusOK {
		t.Fatalf("pre-rotation GET /v1/plan = %d, want 200", code)
	}

	srv.SetAPIKeys([]string{"new-key"})

	if code := post("old-key"); code != http.StatusUnauthorized {
		t.Fatalf("post-rotation POST with old key = %d, want 401", code)
	}
	if code := post("new-key"); code != http.StatusAccepted {
		t.Fatalf("post-rotation POST with new key = %d, want 202", code)
	}
	if code := planGet(); code != http.StatusOK {
		t.Fatalf("post-rotation GET /v1/plan = %d, want 200", code)
	}
	if st := srv.StatsNow(); st.APIKeyReloads != 1 {
		t.Fatalf("api_key_reloads = %d, want 1", st.APIKeyReloads)
	}
}
