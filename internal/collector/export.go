package collector

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"cbi/internal/corpus"
	"cbi/internal/report"
)

// This file is the collector's side of live ring-resize migration: a
// controller (internal/migrate) streams a shard's retained runs for
// the key ranges a resize reassigns to their new owner, then evicts
// them here once the destination has acked. The protocol is exact
// under crashes on either side:
//
//	POST /v1/export  → next chunk of matching runs past a sequence
//	                   watermark, with counters computed from exactly
//	                   those runs, read-only (delivered to the
//	                   destination via the ordinary /v1/merge with a
//	                   deterministic batch id, so retries dedup);
//	POST /v1/evict   → the delivered chunk posted back verbatim; the
//	                   exact records it carries are removed and
//	                   un-counted, WAL-logged so the handoff survives
//	                   a source crash. Removing an absent record is a
//	                   no-op, so the call is idempotent — lost acks
//	                   and crash repairs just retry it;
//	GET  /v1/residual → the counters a full drain cannot attribute to
//	                   retained runs (beyond-window history), read-only;
//	POST /v1/residual → commit the residual subtraction after the
//	                   destination acked it, WAL-logged and deduped.
//
// Export sequences are scoped to a per-boot epoch: a restarted source
// renumbers its log, so an export names the epoch it is resuming
// within and gets 409 on a mismatch — the controller's signal to
// retry the one possibly-unevicted chunk and re-export from zero.
// Eviction needs no epoch: it names records, not sequences.

// defaultExportChunkRuns bounds one export chunk when the request does
// not say otherwise.
const defaultExportChunkRuns = 4096

// maxExportRequestBytes bounds the JSON control body of /v1/export.
const maxExportRequestBytes = 1 << 20

// exportRequest is the JSON body of POST /v1/export. Epochs are
// decimal strings, not JSON numbers: they are random 64-bit values and
// would not survive a float64 round-trip.
type exportRequest struct {
	// Ranges selects the hash-circle arcs to migrate. Null (absent)
	// with Drain set selects every retained run, keyed or not.
	Ranges []corpus.KeyRange `json:"ranges"`
	// SinceSeq resumes the export past this append-sequence watermark.
	SinceSeq uint64 `json:"since_seq"`
	// Epoch is the per-boot epoch the sequences are scoped to, as a
	// decimal string. Empty on a first export (the response names the
	// current epoch).
	Epoch string `json:"epoch,omitempty"`
	// MaxRuns bounds the chunk (default 4096).
	MaxRuns int `json:"max_runs,omitempty"`
	// Drain selects every retained run regardless of key — removing a
	// collector is a migration of everything.
	Drain bool `json:"drain,omitempty"`
}

// decodeExportRequest reads and validates the shared request shape.
func decodeExportRequest(w http.ResponseWriter, r *http.Request) (*exportRequest, bool) {
	var req exportRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxExportRequestBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad migration request: %v", err), http.StatusBadRequest)
		return nil, false
	}
	if !req.Drain && len(req.Ranges) == 0 {
		http.Error(w, "migration request needs ranges (or drain)", http.StatusBadRequest)
		return nil, false
	}
	if req.Drain {
		// nil ranges is the run-log's drain selector (every run matches).
		req.Ranges = nil
	}
	return &req, true
}

// checkEpoch enforces the request's epoch against the current boot.
// An empty epoch (first contact) passes. On mismatch it writes the 409
// — carrying the current epoch so the controller can resume — and
// returns false.
func (s *Server) checkEpoch(w http.ResponseWriter, epoch string, required bool) bool {
	cur := s.agg.Epoch()
	if epoch == "" {
		if required {
			http.Error(w, "migration request needs the export epoch", http.StatusBadRequest)
			return false
		}
		return true
	}
	want, err := strconv.ParseUint(epoch, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad epoch %q", epoch), http.StatusBadRequest)
		return false
	}
	if want != cur {
		w.Header().Set("X-CBI-Export-Epoch", strconv.FormatUint(cur, 10))
		http.Error(w, "export epoch does not match this boot (the source restarted; resume from sequence 0)", http.StatusConflict)
		return false
	}
	return true
}

// countingWriter counts the bytes written through it (the compressed
// export size, for the transferred-bytes metric).
type countingWriter struct {
	w http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// handleExport serves the next migration chunk: up to max_runs retained
// runs in the requested ranges past since_seq, as a gzip'd keyed merge
// segment whose counters are computed from exactly those runs. The
// response headers carry the epoch, the watermark to resume from, and
// how many matching runs remain past it (zero = the caller has it all,
// modulo writes still arriving).
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorize(w, r) {
		return
	}
	req, ok := decodeExportRequest(w, r)
	if !ok {
		return
	}
	if !s.checkEpoch(w, req.Epoch, false) {
		return
	}
	max := req.MaxRuns
	if max <= 0 {
		max = defaultExportChunkRuns
	}
	chunk, err := s.agg.ExportChunk(req.Ranges, req.SinceSeq, max)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	reports, err := decodeRecords(chunk.recs, s.cfg.NumSites, s.cfg.NumPreds)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	chunk.snap.Fingerprint = s.cfg.Fingerprint
	set := &report.Set{NumSites: s.cfg.NumSites, NumPreds: s.cfg.NumPreds, Reports: reports}

	w.Header().Set("Content-Type", "application/x-cbi-merge+gzip")
	w.Header().Set("X-CBI-Export-Epoch", strconv.FormatUint(chunk.epoch, 10))
	w.Header().Set("X-CBI-Export-Watermark", strconv.FormatUint(chunk.watermark, 10))
	w.Header().Set("X-CBI-Export-Remaining", strconv.Itoa(chunk.remaining))
	cw := &countingWriter{w: w}
	gz := gzip.NewWriter(cw)
	if err := corpus.WriteMergeSegmentKeyed(gz, chunk.snap, set, chunk.keys); err != nil {
		s.cfg.Logf("collector: export chunk: %v", err)
		return
	}
	if err := gz.Close(); err != nil {
		s.cfg.Logf("collector: export chunk: %v", err)
		return
	}
	s.exportChunks.Add(1)
	s.exportRuns.Add(int64(len(chunk.recs)))
	s.exportBytes.Add(cw.n)
	s.exportPending.Set(float64(chunk.remaining))
	s.cfg.Logf("collector: exported migration chunk (%d runs, %d remaining, watermark %d)",
		len(chunk.recs), chunk.remaining, chunk.watermark)
}

// handleEvict completes a handoff: the body is the delivered export
// chunk posted back verbatim (a gzip'd merge segment), and the exact
// records it carries are removed from the run log and un-counted. The
// eviction is WAL-logged with the removed records, so a source crash
// cannot resurrect handed-off runs. Removing a record that is not
// retained is a no-op, which makes the call idempotent: after a lost
// ack or a source restart the controller simply posts the same chunk
// again, and whatever the first attempt already removed stays removed
// exactly once. No epoch check — the request names records, not
// boot-scoped sequences.
func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorize(w, r) {
		return
	}
	reader, closer, ok := s.postBodyReader(w, r)
	if !ok {
		return
	}
	if closer != nil {
		defer closer.Close()
	}
	snap, set, _, err := corpus.ReadMergeSegmentKeyed(reader)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad evict chunk: %v", err), http.StatusBadRequest)
		return
	}
	if snap.NumSites != s.cfg.NumSites || snap.NumPreds != s.cfg.NumPreds {
		http.Error(w, fmt.Sprintf("evict dimensions %dx%d do not match collector %dx%d",
			snap.NumSites, snap.NumPreds, s.cfg.NumSites, s.cfg.NumPreds), http.StatusBadRequest)
		return
	}
	removed := s.agg.RemoveRecords(encodeReports(set.Reports))
	if len(removed) > 0 {
		s.migrateEvicted.Add(int64(len(removed)))
		if s.cfg.WALPath != "" {
			// Logged after the removal, like revokes: the state change is
			// already visible, and a crash in between merely resurrects
			// runs whose eviction the controller has not yet seen acked —
			// which it repairs by posting the same chunk again.
			if seq, err := s.walAppend(&corpus.WALRecord{Kind: corpus.WALEvict, Recs: removed}); err != nil {
				s.cfg.Logf("collector: WAL evict record: %v", err)
			} else {
				s.seqs.markApplied(seq)
			}
		}
		s.cfg.Logf("collector: evicted %d handed-off runs", len(removed))
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"evicted_runs":%d}`+"\n", len(removed))
}

// handleResidual is the drain residual in two steps. GET computes,
// read-only, the counters the retained run window does not explain
// (beyond-window history from merges and evictions) as a gzip'd
// counters-only merge segment — 204 when there is none. POST commits
// the subtraction of exactly the posted segment after the controller
// has delivered it to a successor; the commit is WAL-logged ('D') and
// deduped by X-CBI-Batch-ID, so lost-ack retries and crash replays
// subtract exactly once. Compute → deliver (idempotent) → commit is
// exact under a crash at any step: a quiesced drain recomputes the
// identical residual and the destination's dedup absorbs the repeat.
func (s *Server) handleResidual(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		residual, err := s.agg.ComputeResidual()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-CBI-Export-Epoch", strconv.FormatUint(s.agg.Epoch(), 10))
		if residual == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		residual.Fingerprint = s.cfg.Fingerprint
		set := &report.Set{NumSites: s.cfg.NumSites, NumPreds: s.cfg.NumPreds}
		w.Header().Set("Content-Type", "application/x-cbi-merge+gzip")
		gz := gzip.NewWriter(w)
		if err := corpus.WriteMergeSegment(gz, residual, set); err != nil {
			s.cfg.Logf("collector: residual export: %v", err)
			return
		}
		if err := gz.Close(); err != nil {
			s.cfg.Logf("collector: residual export: %v", err)
		}
	case http.MethodPost:
		if !s.authorize(w, r) {
			return
		}
		reader, closer, ok := s.postBodyReader(w, r)
		if !ok {
			return
		}
		if closer != nil {
			defer closer.Close()
		}
		snap, _, err := corpus.ReadMergeSegment(reader)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad residual segment: %v", err), http.StatusBadRequest)
			return
		}
		if snap.NumSites != s.cfg.NumSites || snap.NumPreds != s.cfg.NumPreds {
			http.Error(w, fmt.Sprintf("residual dimensions %dx%d do not match collector %dx%d",
				snap.NumSites, snap.NumPreds, s.cfg.NumSites, s.cfg.NumPreds), http.StatusBadRequest)
			return
		}
		batchID := r.Header.Get("X-CBI-Batch-ID")
		if batchID != "" && s.rememberBatch(batchID) {
			s.batchesDeduped.Add(1)
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"committed":true,"duplicate":true}`+"\n")
			return
		}
		var seq uint64
		if s.cfg.WALPath != "" {
			var werr error
			seq, werr = s.walAppend(&corpus.WALRecord{Kind: corpus.WALDrainResidual, BatchID: batchID, Snap: snap})
			if werr != nil {
				if batchID != "" {
					s.forgetBatch(batchID)
				}
				s.cfg.Logf("collector: WAL append: %v", werr)
				http.Error(w, "write-ahead log append failed", http.StatusInternalServerError)
				return
			}
		}
		if err := s.agg.SubtractSnapshot(snap, func() { s.seqs.markApplied(seq) }); err != nil {
			if batchID != "" {
				s.forgetBatch(batchID)
			}
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		s.residualCommits.Add(1)
		s.cfg.Logf("collector: committed drain-residual subtraction (%d runs)", snap.NumF+snap.NumS)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"committed":true}`+"\n")
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}
