package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cbi/internal/core"
)

// engineTestServer starts a collector over the first 300 corpus runs
// and returns its base URL plus the equivalent batch input.
func engineTestServer(t *testing.T) (*Server, string, core.Input) {
	t.Helper()
	res := testCorpus(t)
	in := res.CoreInput()
	srv, err := New(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	for _, r := range in.Set.Reports {
		srv.Ingest(r)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts.URL, in
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestDefaultEngineBitIdentical pins the refactor's central promise:
// the engine dispatch layer must not change a single byte of the
// default /v1/predictors response. No ?engine=, ?engine=eliminate, and
// the direct batch builder all produce identical JSON.
func TestDefaultEngineBitIdentical(t *testing.T) {
	_, base, in := engineTestServer(t)

	code, plain := getBody(t, base+"/v1/predictors?k=10&affinity=2")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/predictors = %d: %s", code, plain)
	}
	code, named := getBody(t, base+"/v1/predictors?engine=eliminate&k=10&affinity=2")
	if code != http.StatusOK {
		t.Fatalf("GET ?engine=eliminate = %d: %s", code, named)
	}
	if !bytes.Equal(plain, named) {
		t.Fatal("?engine=eliminate body differs from the engine-less body")
	}

	want, err := json.Marshal(BuildPredictors(in, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(plain, want) {
		t.Fatalf("default engine body diverges from BuildPredictors JSON:\nlive:  %s\nbatch: %s", plain, want)
	}
	var entries []PredictorEntry
	if err := json.Unmarshal(plain, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("default engine selected no predictors; test is vacuous")
	}
}

// TestEveryRegisteredEngineServes: each registered engine answers 200
// with a well-formed ranking (ranks 1..n, scores non-increasing, stats
// attached), both raw and through the typed client.
func TestEveryRegisteredEngineServes(t *testing.T) {
	_, base, _ := engineTestServer(t)
	names := core.EngineNames()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 registered engines, have %v", names)
	}
	client := NewClient(base, 0, 0)
	for _, name := range names {
		if name == core.DefaultEngineName {
			continue // richer shape, covered by TestDefaultEngineBitIdentical
		}
		rows, err := client.EnginePredictors(context.Background(), name, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) == 0 {
			t.Errorf("%s: empty ranking over a corpus with failing runs", name)
			continue
		}
		for i, r := range rows {
			if r.Rank != i+1 {
				t.Errorf("%s: row %d has rank %d", name, i, r.Rank)
			}
			if i > 0 && rows[i-1].Score < r.Score {
				t.Errorf("%s: scores increase at rank %d", name, r.Rank)
			}
			if r.F == 0 && r.S == 0 {
				t.Errorf("%s: rank %d has empty stats", name, r.Rank)
			}
		}
	}
}

// TestUnknownEngine400 — satellite requirement: an unresolvable
// ?engine= is a 400 whose body names every registered engine.
func TestUnknownEngine400(t *testing.T) {
	_, base, _ := engineTestServer(t)
	code, body := getBody(t, base+"/v1/predictors?engine=no-such-engine")
	if code != http.StatusBadRequest {
		t.Fatalf("unknown engine = %d, want 400", code)
	}
	text := string(body)
	if !strings.Contains(text, "no-such-engine") {
		t.Errorf("400 body does not echo the bad name: %q", text)
	}
	for _, name := range core.EngineNames() {
		if !strings.Contains(text, name) {
			t.Errorf("400 body does not list registered engine %q: %q", name, text)
		}
	}
}

// TestEngineCachePerEngine: each (engine, k, affinity) shape holds its
// own version-keyed cache slot — repeat polls never recompute, and one
// engine's slot does not evict another's.
func TestEngineCachePerEngine(t *testing.T) {
	srv, base, _ := engineTestServer(t)
	get := func(path string) []byte {
		t.Helper()
		code, body := getBody(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, code, body)
		}
		return body
	}
	first := get("/v1/predictors?engine=ochiai&k=10")
	base0 := srv.StatsNow().PredictorsComputed
	if again := get("/v1/predictors?engine=ochiai&k=10"); !bytes.Equal(first, again) {
		t.Fatal("cached engine poll returned different bytes")
	}
	get("/v1/predictors?engine=tarantula&k=10")
	get("/v1/predictors?engine=ochiai&k=10")
	st := srv.StatsNow()
	// After the first ochiai computation: one more computation
	// (tarantula); the two extra ochiai polls hit their slot.
	if st.PredictorsComputed != base0+1 {
		t.Fatalf("computed=%d, want %d (per-engine slots must coexist)", st.PredictorsComputed, base0+1)
	}
}

// TestCompareEndpoint covers /v1/compare: well-formed agreement between
// registered engines, and 400s for malformed engine lists.
func TestCompareEndpoint(t *testing.T) {
	_, base, _ := engineTestServer(t)
	code, body := getBody(t, base+"/v1/compare?engines=ochiai,tarantula,eliminate&k=10")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/compare = %d: %s", code, body)
	}
	var resp CompareResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Engines) != 3 || len(resp.Pairs) != 3 {
		t.Fatalf("engines=%v pairs=%d, want 3 engines and 3 pairs", resp.Engines, len(resp.Pairs))
	}
	for _, name := range resp.Engines {
		if len(resp.Rankings[name]) == 0 {
			t.Errorf("no ranking for %s", name)
		}
	}
	for _, p := range resp.Pairs {
		if p.Spearman < -1 || p.Spearman > 1 {
			t.Errorf("%s vs %s: spearman %v outside [-1,1]", p.A, p.B, p.Spearman)
		}
		if p.TopKOverlap < 0 || p.TopKOverlap > 1 {
			t.Errorf("%s vs %s: overlap %v outside [0,1]", p.A, p.B, p.TopKOverlap)
		}
	}

	// Ochiai and Jaccard both grow with F and shrink with S, so their
	// top lists overlap heavily on any corpus. (Tarantula does not: it
	// scores every deterministic S=0 predicate a flat 1.0 and so fills
	// its top-k with tiny-F predicates — the same weakness as Table 1's
	// sort-by-Increase, and exactly what /v1/compare exists to reveal.)
	client := NewClient(base, 0, 0)
	cr, err := client.Compare(context.Background(), []string{"ochiai", "jaccard"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Pairs[0].Common == 0 {
		t.Error("ochiai and jaccard share no top-10 members; expected heavy overlap")
	}

	for _, path := range []string{
		"/v1/compare",                             // missing list
		"/v1/compare?engines=ochiai",              // single engine
		"/v1/compare?engines=ochiai,ochiai",       // one distinct engine
		"/v1/compare?engines=ochiai,not-real",     // unregistered
		"/v1/compare?engines=ochiai,jaccard&k=-1", // bad k
	} {
		code, body := getBody(t, base+path)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400 (%s)", path, code, body)
		}
	}
}

// TestRankAgreementMath pins the agreement helpers on hand-built
// rankings: identical lists score 1/1, disjoint lists anticorrelate.
func TestRankAgreementMath(t *testing.T) {
	if got := rankCorrelation([]int{1, 2, 3}, []int{1, 2, 3}, 3); got != 1 {
		t.Errorf("identical rankings: spearman %v, want 1", got)
	}
	if got := topKOverlap([]int{1, 2, 3}, []int{1, 2, 3}); got != 1 {
		t.Errorf("identical rankings: overlap %v, want 1", got)
	}
	if got := rankCorrelation([]int{1, 2, 3}, []int{3, 2, 1}, 3); got != -1 {
		t.Errorf("reversed rankings: spearman %v, want -1", got)
	}
	if got := topKOverlap([]int{1, 2}, []int{3, 4}); got != 0 {
		t.Errorf("disjoint rankings: overlap %v, want 0", got)
	}
	if got := rankCorrelation(nil, nil, 5); got != 1 {
		t.Errorf("two empty rankings: spearman %v, want 1", got)
	}
	// Disjoint lists: every union member is a hit in one list and a
	// miss in the other, which anticorrelates.
	if got := rankCorrelation([]int{1, 2}, []int{3, 4}, 2); got >= 0 {
		t.Errorf("disjoint rankings: spearman %v, want negative", got)
	}
}

// TestPredictorCacheLRUBackstop: filling the cache past its hard cap
// with a sweep of distinct query shapes must evict only the
// least-recently-used entry per insert — never clear the map — so the
// hot slot a dashboard keeps polling survives the sweep.
func TestPredictorCacheLRUBackstop(t *testing.T) {
	c := newPredictorCache(8)
	const v = 42
	c.put("default", v, []byte("hot"))
	for i := 0; i < 50; i++ {
		// Keep the default slot hot while cold keys churn past the cap.
		if c.get("default", v) == nil {
			t.Fatalf("default slot evicted after %d cold inserts", i)
		}
		c.put(fmt.Sprintf("cold-%d", i), v, []byte("x"))
		if got := c.size(); got > 8 {
			t.Fatalf("cache grew to %d entries past cap 8", got)
		}
	}
	if c.get("default", v) == nil {
		t.Fatal("hot default slot did not survive the sweep")
	}
	// Re-putting an existing key must not evict anyone.
	n := c.size()
	c.put("default", v, []byte("hot2"))
	if c.size() != n {
		t.Fatalf("re-put of existing key changed size %d -> %d", n, c.size())
	}
	// An ingest-style version bump prunes every stale entry on the next
	// put, so the sweep's residue does not outlive its window.
	c.put("fresh", v+1, []byte("y"))
	if c.size() != 1 || !c.has("fresh", v+1) {
		t.Fatalf("stale entries survived version bump: size=%d", c.size())
	}
}

// TestPredictorCacheSurvivesEngineSweep hammers the live server with a
// two-engine k sweep wide enough to overflow the 256-entry cap while a
// dashboard-style poller keeps re-reading the default shape. The
// default body must stay cached throughout: exactly one computation
// per distinct swept shape, none for the repeated default polls.
func TestPredictorCacheSurvivesEngineSweep(t *testing.T) {
	srv, base, _ := engineTestServer(t)
	get := func(path string) []byte {
		t.Helper()
		code, body := getBody(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, code, body)
		}
		return body
	}
	defBody := get("/v1/predictors?k=10")
	base0 := srv.StatsNow().PredictorsComputed
	sweep := predCacheMax // 256 ks x 2 engines = 2x overflow
	for k := 1; k <= sweep; k++ {
		get(fmt.Sprintf("/v1/predictors?engine=ochiai&k=%d", k))
		get(fmt.Sprintf("/v1/predictors?engine=tarantula&k=%d", k))
		if again := get("/v1/predictors?k=10"); !bytes.Equal(defBody, again) {
			t.Fatalf("default body changed mid-sweep at k=%d", k)
		}
	}
	st := srv.StatsNow()
	if want := base0 + int64(2*sweep); st.PredictorsComputed != want {
		t.Fatalf("computed=%d, want %d: the default slot was evicted and recomputed during the sweep",
			st.PredictorsComputed, want)
	}
}
