package collector

import (
	"reflect"
	"sync"
	"testing"

	"cbi/internal/core"
	"cbi/internal/harness"
	"cbi/internal/subjects"
)

var (
	corpusOnce sync.Once
	corpusRes  *harness.Result
)

// testCorpus runs one shared ccrypt experiment — a full subject corpus
// with real failures — used by every equivalence test in the package.
func testCorpus(t *testing.T) *harness.Result {
	t.Helper()
	corpusOnce.Do(func() {
		corpusRes = harness.Run(harness.Config{
			Subject: subjects.Ccrypt(),
			Runs:    1000,
			Mode:    harness.SampleUniform,
			Workers: 4,
		})
	})
	if corpusRes.NumFailing() == 0 {
		t.Fatal("test corpus has no failing runs; equivalence tests are vacuous")
	}
	return corpusRes
}

// TestShardedAggMatchesBatchAggregate is the core streaming-equivalence
// property: folding reports one at a time into the sharded counters,
// from many goroutines in arbitrary order, must produce exactly the
// aggregate core.Aggregate computes over the same set.
func TestShardedAggMatchesBatchAggregate(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()

	for _, shards := range []int{1, 3, 16} {
		agg := newShardedAgg(in.Set.NumSites, in.Set.NumPreds, shards, defaultRunLogCap, 0, 0, nil)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(in.Set.Reports); i += 8 {
					agg.Apply(in.Set.Reports[i])
				}
			}(w)
		}
		wg.Wait()

		got := agg.ToAgg(in.SiteOf)
		want := core.Aggregate(in)
		if got.NumF != want.NumF || got.NumS != want.NumS {
			t.Fatalf("shards=%d: run counts (%d,%d), want (%d,%d)",
				shards, got.NumF, got.NumS, want.NumF, want.NumS)
		}
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Fatalf("shards=%d: per-predicate stats diverge from batch aggregate", shards)
		}
	}
}

func TestShardedAggSnapshotRestore(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()

	agg := newShardedAgg(in.Set.NumSites, in.Set.NumPreds, 8, defaultRunLogCap, 0, 0, nil)
	for _, r := range in.Set.Reports {
		agg.Apply(r)
	}
	snap, recs := agg.Snapshot(12345)
	if snap.Fingerprint != 12345 {
		t.Errorf("snapshot fingerprint = %d", snap.Fingerprint)
	}
	if len(recs) != len(in.Set.Reports) {
		t.Errorf("snapshot captured %d run-log records, want %d", len(recs), len(in.Set.Reports))
	}

	fresh := newShardedAgg(in.Set.NumSites, in.Set.NumPreds, 8, defaultRunLogCap, 0, 0, nil)
	fresh.Restore(snap)
	if !reflect.DeepEqual(fresh.ToAgg(in.SiteOf), agg.ToAgg(in.SiteOf)) {
		t.Fatal("restored aggregate differs from original")
	}
	numF, numS := fresh.Runs()
	if int(numF) != res.NumFailing() || int(numF+numS) != len(in.Set.Reports) {
		t.Fatalf("restored run counts (%d,%d) wrong", numF, numS)
	}

	// Snapshot must be a copy: further ingestion into the original must
	// not alias the snapshot's slices.
	savedFobs := append([]int64{}, snap.FobsSite...)
	savedFPred := append([]int64{}, snap.FPred...)
	for _, r := range in.Set.Reports {
		agg.Apply(r)
	}
	if !reflect.DeepEqual(snap.FobsSite, savedFobs) || !reflect.DeepEqual(snap.FPred, savedFPred) {
		t.Fatal("snapshot aliases live counters")
	}
}
