package collector

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"

	"cbi/internal/corpus"
	"cbi/internal/report"
)

// maxDeltaHistBytes caps the encoded bytes retained by the delta-event
// history regardless of the configured event count.
const maxDeltaHistBytes = 32 << 20

// maxRevokeIDs bounds one POST /v1/revoke request.
const maxRevokeIDs = 1 << 14

// ingestBatch is one queued unit of ingest work: the client batch id
// (for dedup/revoke bookkeeping), the WAL sequence its durable record
// carries (0 when the WAL is disabled), and the decoded reports.
// encodeReports produces each report's run-log record. The same bytes
// serve as the WAL batch payload and, index-aligned, as the aggregate's
// pre-encoded records — one encoding pass for both consumers.
func encodeReports(reports []*report.Report) [][]byte {
	recs := make([][]byte, len(reports))
	for i, r := range reports {
		recs[i] = report.AppendRecord(nil, r)
	}
	return recs
}

type ingestBatch struct {
	id      string
	seq     uint64
	reports []*report.Report
	// key is the batch's routing-key hash (corpus.NoKey when unknown);
	// every run in a batch shares one submitting client, hence one key.
	key uint64
	// recs holds each report's AppendRecord encoding when the WAL path
	// already produced it (the WAL payload reuses the same bytes), so
	// the apply worker doesn't encode the batch a second time.
	recs [][]byte
	// lease owns the arena buffers backing reports when the batch
	// arrived via the binary HTTP codec (nil otherwise); the apply
	// worker releases it after the batch is folded in.
	lease *report.Lease
}

// walSegment describes a closed (rotated) WAL segment awaiting a
// covering checkpoint.
type walSegment struct {
	path   string
	maxSeq uint64
	size   int64
}

// seqTracker tracks which WAL sequence numbers the aggregate has
// absorbed. Workers complete out of order, so coverage is a watermark
// (every sequence at or below it is applied) plus islands (applied
// sequences above it). Checkpoints persist both; boot replay skips
// anything covered.
type seqTracker struct {
	mu        sync.Mutex
	watermark uint64
	islands   map[uint64]struct{}
}

// markApplied records one applied sequence, advancing the watermark
// through any now-contiguous islands. Sequence 0 (WAL disabled) is a
// no-op.
func (t *seqTracker) markApplied(seq uint64) {
	if seq == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq <= t.watermark {
		return
	}
	if t.islands == nil {
		t.islands = make(map[uint64]struct{})
	}
	t.islands[seq] = struct{}{}
	for {
		if _, ok := t.islands[t.watermark+1]; !ok {
			return
		}
		t.watermark++
		delete(t.islands, t.watermark)
	}
}

// applied reports whether seq has been absorbed by the aggregate.
func (t *seqTracker) applied(seq uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq <= t.watermark {
		return true
	}
	_, ok := t.islands[seq]
	return ok
}

// capture returns the watermark and sorted islands for a checkpoint.
func (t *seqTracker) capture() (uint64, []uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.islands) == 0 {
		return t.watermark, nil
	}
	isl := make([]uint64, 0, len(t.islands))
	for s := range t.islands {
		isl = append(isl, s)
	}
	sort.Slice(isl, func(i, j int) bool { return isl[i] < isl[j] })
	return t.watermark, isl
}

// restoreState seeds the tracker from a checkpoint.
func (t *seqTracker) restoreState(watermark uint64, islands []uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.watermark = watermark
	t.islands = make(map[uint64]struct{}, len(islands))
	for _, s := range islands {
		if s > watermark {
			t.islands[s] = struct{}{}
		}
	}
	for {
		if _, ok := t.islands[t.watermark+1]; !ok {
			return
		}
		t.watermark++
		delete(t.islands, t.watermark)
	}
}

// newEpoch returns a random nonzero per-boot state epoch.
func newEpoch() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is catastrophic enough elsewhere; here a
		// constant would merely disable cross-boot delta detection, but
		// there is no reason not to insist.
		panic(fmt.Sprintf("collector: reading random epoch: %v", err))
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}

// walAppend assigns the next sequence number and appends one record to
// the current WAL segment, returning the sequence. Callers must only
// ack (or apply) the work after it returns nil. A failed append is
// rolled back by truncating the partial bytes; if even that fails the
// log is poisoned and every further append errors, so nothing is ever
// acked against a log that cannot replay.
func (s *Server) walAppend(rec *corpus.WALRecord) (uint64, error) {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil || s.walBroken {
		return 0, fmt.Errorf("collector: write-ahead log unavailable")
	}
	if s.cfg.walHook != nil {
		s.cfg.walHook("pre-append")
	}
	rec.Seq = s.walSeq + 1
	pre := s.wal.Size()
	if err := s.wal.Append(rec, s.cfg.NumSites, s.cfg.NumPreds); err != nil {
		if terr := s.wal.TruncateTo(pre); terr != nil {
			s.walBroken = true
			s.cfg.Logf("collector: WAL poisoned: append failed (%v) and truncate failed (%v)", err, terr)
		}
		return 0, err
	}
	s.walSeq++
	s.walAppends.Add(1)
	if s.cfg.walHook != nil {
		s.cfg.walHook("post-append")
	}
	return s.walSeq, nil
}

// walUsage returns the log's on-disk footprint: total bytes and live
// segment count (both zero when the WAL is disabled).
func (s *Server) walUsage() (bytes int64, segments int) {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return 0, 0
	}
	bytes = s.wal.Size()
	for _, seg := range s.walPrev {
		bytes += seg.size
	}
	return bytes, 1 + len(s.walPrev)
}

// replayWAL replays every WAL segment under cfg.WALPath, re-applying
// the records the restored checkpoint does not cover, and leaves the
// last segment open for appending. Only the last segment may carry a
// torn tail (a crash mid-write); a torn or unreadable earlier segment,
// or a corrupt header, is an operator problem — acked data would be
// silently lost — so boot refuses with instructions instead of
// guessing.
func (s *Server) replayWAL() error {
	cfg := s.cfg
	refs, err := corpus.ListWALSegments(cfg.WALPath)
	if err != nil {
		return fmt.Errorf("collector: listing WAL segments: %v", err)
	}

	// Baseline the sequence counter at the checkpoint's coverage so
	// fresh appends never collide even if the tail segments vanished.
	watermark, islands := s.seqs.capture()
	s.walSeq = watermark
	for _, x := range islands {
		if x > s.walSeq {
			s.walSeq = x
		}
	}

	type segState struct {
		ref    corpus.WALSegmentRef
		replay *corpus.WALReplay
	}
	var (
		states  []segState
		lastSeq uint64
	)
	for i, ref := range refs {
		rep, err := corpus.ReplayWALFile(ref.Path, cfg.NumSites, cfg.NumPreds, cfg.Fingerprint)
		if err != nil {
			return fmt.Errorf("collector: WAL replay %s: %v (move the segment aside to boot without it)", ref.Path, err)
		}
		if rep == nil {
			continue
		}
		if rep.Torn && i != len(refs)-1 {
			return fmt.Errorf("collector: WAL segment %s is torn mid-sequence; only the newest segment may have a torn tail (move the damaged segments aside to boot without them)", ref.Path)
		}
		if rep.Torn {
			s.walTornTails.Add(1)
			cfg.Logf("collector: WAL %s has a torn tail; keeping %d valid bytes", ref.Path, rep.ValidBytes)
		}
		for _, rec := range rep.Records {
			if rec.Seq <= lastSeq {
				return fmt.Errorf("collector: WAL %s: sequence %d out of order (last %d); segments disagree (move the damaged segments aside)", ref.Path, rec.Seq, lastSeq)
			}
			lastSeq = rec.Seq
			s.applyWALRecord(rec)
		}
		states = append(states, segState{ref: ref, replay: rep})
	}
	if lastSeq > s.walSeq {
		s.walSeq = lastSeq
	}

	if len(states) == 0 {
		s.walIndex = 1
		w, err := corpus.CreateWALSegment(corpus.WALSegmentName(cfg.WALPath, 1), cfg.NumSites, cfg.NumPreds, cfg.Fingerprint)
		if err != nil {
			return fmt.Errorf("collector: creating WAL segment: %v", err)
		}
		s.wal = w
		return nil
	}
	last := states[len(states)-1]
	for _, st := range states[:len(states)-1] {
		s.walPrev = append(s.walPrev, walSegment{
			path:   st.ref.Path,
			maxSeq: st.replay.MaxSeq,
			size:   st.replay.ValidBytes,
		})
	}
	s.walIndex = last.ref.Index
	w, err := corpus.OpenWALSegment(last.ref.Path, cfg.NumSites, cfg.NumPreds, cfg.Fingerprint, last.replay.ValidBytes)
	if err != nil {
		return fmt.Errorf("collector: opening WAL segment %s: %v", last.ref.Path, err)
	}
	s.wal = w
	if n := s.walReplayed.Value(); n > 0 {
		cfg.Logf("collector: replayed %d WAL records (through sequence %d)", n, lastSeq)
	}
	return nil
}

// applyWALRecord re-applies one replayed record unless the checkpoint
// already covers its sequence. Batch ids are re-remembered either way,
// so post-restart client retries still dedup and replayed batches stay
// revocable.
func (s *Server) applyWALRecord(rec *corpus.WALRecord) {
	covered := s.seqs.applied(rec.Seq)
	switch rec.Kind {
	case corpus.WALBatch, corpus.WALKeyedBatch:
		if rec.BatchID != "" {
			s.rememberBatch(rec.BatchID)
		}
		if !covered {
			s.agg.ApplyBatch(rec.Reports, nil, rec.Key, func(recs [][]byte) {
				s.seqs.markApplied(rec.Seq)
				if rec.BatchID != "" {
					s.storeBatchRecs(rec.BatchID, recs)
				}
			})
			s.walReplayed.Add(1)
		} else if rec.BatchID != "" {
			// Already in the checkpoint; rebuild the revoke records so a
			// failover repair arriving after the restart still works.
			recs := encodeReports(rec.Reports)
			s.storeBatchRecs(rec.BatchID, recs)
		}
	case corpus.WALMerge:
		if rec.BatchID != "" {
			s.rememberBatch(rec.BatchID)
		}
		if !covered {
			s.agg.MergeSegment(rec.Snap, rec.Reports, rec.Keys, func(recs [][]byte) {
				s.seqs.markApplied(rec.Seq)
				if rec.BatchID != "" {
					s.storeBatchRecs(rec.BatchID, recs)
				}
			})
			s.walReplayed.Add(1)
		}
	case corpus.WALEvict:
		// A migration handoff eviction: re-remove the exact records the
		// live eviction removed. Records the checkpoint (or an earlier
		// replayed evict) already dropped are simply not found, so the
		// replay is idempotent and coverage marks are advisory.
		if !covered {
			if removed := s.agg.RemoveRecords(encodeReports(rec.Reports)); len(removed) > 0 {
				s.migrateEvicted.Add(int64(len(removed)))
			}
			s.seqs.markApplied(rec.Seq)
			s.walReplayed.Add(1)
		}
	case corpus.WALDrainResidual:
		// A committed drain-residual subtraction. Unlike evict replay
		// this is not idempotent, so coverage is load-bearing: the
		// commit's markApplied runs under the same aggregate hold as the
		// subtraction, and a checkpoint can never capture one without
		// the other.
		if rec.BatchID != "" {
			s.rememberBatch(rec.BatchID)
		}
		if !covered {
			if err := s.agg.SubtractSnapshot(rec.Snap, func() { s.seqs.markApplied(rec.Seq) }); err != nil {
				s.cfg.Logf("collector: WAL drain-residual replay: %v", err)
			}
			s.walReplayed.Add(1)
		}
	case corpus.WALRevoke:
		if !covered {
			for _, id := range rec.IDs {
				if n := s.revokeBatch(id); n > 0 {
					s.revokedBatches.Add(1)
					s.revokedRuns.Add(int64(n))
				}
			}
			s.seqs.markApplied(rec.Seq)
			s.walReplayed.Add(1)
		}
	}
}

// pruneWAL drops WAL state a checkpoint covering sequence `covered` no
// longer needs: the current segment is truncated in place when fully
// covered, or rotated out so replay cost stays proportional to data
// since the last checkpoint; closed segments whose newest record is
// covered are deleted.
func (s *Server) pruneWAL(covered uint64) {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return
	}
	if s.walSeq <= covered && len(s.walPrev) == 0 {
		if !s.wal.Empty() {
			if err := s.wal.Truncate(); err != nil {
				s.cfg.Logf("collector: truncating WAL: %v", err)
			} else {
				s.walTruncations.Add(1)
			}
		}
		return
	}
	if !s.wal.Empty() {
		next := s.walIndex + 1
		nw, err := corpus.CreateWALSegment(corpus.WALSegmentName(s.cfg.WALPath, next), s.cfg.NumSites, s.cfg.NumPreds, s.cfg.Fingerprint)
		if err != nil {
			s.cfg.Logf("collector: rotating WAL: %v", err)
		} else {
			closed := walSegment{path: s.wal.Path(), maxSeq: s.walSeq, size: s.wal.Size()}
			if err := s.wal.Close(); err != nil {
				s.cfg.Logf("collector: closing WAL segment: %v", err)
			}
			s.walPrev = append(s.walPrev, closed)
			s.wal, s.walIndex = nw, next
		}
	}
	keep := s.walPrev[:0]
	for _, seg := range s.walPrev {
		if seg.maxSeq > covered {
			keep = append(keep, seg)
			continue
		}
		if err := os.Remove(seg.path); err != nil {
			s.cfg.Logf("collector: removing covered WAL segment %s: %v", seg.path, err)
			keep = append(keep, seg)
			continue
		}
		s.walTruncations.Add(1)
	}
	s.walPrev = keep
}

// revokeBatch removes one batch's retained runs from the aggregate (by
// the encoded records remembered at apply time), returning how many
// runs were removed. The id is remembered regardless, so a late client
// retry of the revoked batch cannot re-ingest it.
func (s *Server) revokeBatch(id string) int {
	s.rememberBatch(id)
	recs := s.takeBatchRecs(id)
	if len(recs) == 0 {
		return 0
	}
	return len(s.agg.RemoveRecords(recs))
}

// handleRevoke removes previously ingested batches by id — the
// failover double-count repair: when a router re-routes an
// unacknowledged batch to another shard and the original later turns
// out to have applied it too, the router revokes it here so the fleet
// total converges to exactly one copy. Only batches whose runs are
// still retained (and whose ids are still in the dedup window) can be
// removed; the response reports what actually happened. Revokes are
// themselves WAL-logged so the repair survives a crash before the next
// checkpoint.
func (s *Server) handleRevoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorize(w, r) {
		return
	}
	var req struct {
		IDs []string `json:"ids"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad revoke request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.IDs) > maxRevokeIDs {
		http.Error(w, fmt.Sprintf("too many ids (%d > %d)", len(req.IDs), maxRevokeIDs), http.StatusBadRequest)
		return
	}
	batches, runs := 0, 0
	var revoked []string
	for _, id := range req.IDs {
		if id == "" || len(id) > 1024 {
			continue
		}
		if n := s.revokeBatch(id); n > 0 {
			batches++
			runs += n
			revoked = append(revoked, id)
		}
	}
	if batches > 0 {
		s.revokedBatches.Add(int64(batches))
		s.revokedRuns.Add(int64(runs))
		s.cfg.Logf("collector: revoked %d batches (%d runs)", batches, runs)
		if s.cfg.WALPath != "" {
			// Logged after the removal (the state change is already
			// visible); a crash in between loses only the WAL record, and
			// the router's retry converges the repair.
			if seq, err := s.walAppend(&corpus.WALRecord{Kind: corpus.WALRevoke, IDs: revoked}); err != nil {
				s.cfg.Logf("collector: WAL revoke record: %v", err)
			} else {
				s.seqs.markApplied(seq)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"revoked_batches":%d,"revoked_runs":%d}`+"\n", batches, runs)
}

// IngestBatch ingests one batch through the full durability path — WAL
// append (when enabled), batch-atomic apply, dedup and revoke
// bookkeeping — without HTTP. It is what crash tests and ingest
// benchmarks use to exercise exactly the semantics of POST /v1/reports
// minus transport.
func (s *Server) IngestBatch(id string, reports []*report.Report) error {
	if len(reports) == 0 {
		return nil
	}
	if id != "" && s.rememberBatch(id) {
		s.batchesDeduped.Add(1)
		return nil
	}
	var seq uint64
	var encoded [][]byte
	if s.cfg.WALPath != "" {
		encoded = encodeReports(reports)
		var err error
		seq, err = s.walAppend(&corpus.WALRecord{Kind: corpus.WALBatch, BatchID: id, Recs: encoded})
		if err != nil {
			if id != "" {
				s.forgetBatch(id)
			}
			return err
		}
	}
	s.reportsEnqueued.Add(int64(len(reports)))
	s.agg.ApplyBatch(reports, encoded, corpus.NoKey, func(recs [][]byte) {
		s.seqs.markApplied(seq)
		if id != "" {
			s.storeBatchRecs(id, recs)
		}
	})
	s.reportsApplied.Add(int64(len(reports)))
	s.batchesAccepted.Add(1)
	return nil
}
