package collector

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cbi/internal/core"
	"cbi/internal/report"
)

// serverConfig builds a Config matching the shared test corpus.
func serverConfig(t *testing.T) Config {
	res := testCorpus(t)
	in := res.CoreInput()
	return Config{
		NumSites:    in.Set.NumSites,
		NumPreds:    in.Set.NumPreds,
		SiteOf:      in.SiteOf,
		Fingerprint: res.Plan.Fingerprint(),
	}
}

// waitApplied polls until the server has applied n reports.
func waitApplied(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s.StatsNow().ReportsApplied >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("server applied %d of %d reports before deadline", s.StatsNow().ReportsApplied, n)
}

// wantTopK is the batch pipeline's ranking over a report subset — the
// ground truth every live ranking must match exactly.
func wantTopK(in core.Input, reports []*report.Report, k int) []ScoreEntry {
	sub := core.Input{
		Set: &report.Set{
			NumSites: in.Set.NumSites,
			NumPreds: in.Set.NumPreds,
			Reports:  reports,
		},
		SiteOf: in.SiteOf,
	}
	ranked := core.TopKImportance(core.Aggregate(sub), k)
	out := make([]ScoreEntry, len(ranked))
	for i, ps := range ranked {
		out[i] = ScoreEntry{
			Pred:         ps.Pred,
			Importance:   ps.Scores.Importance,
			ImportanceCI: ps.Scores.ImportanceCI,
			Increase:     ps.Scores.Increase,
			IncreaseCI:   ps.Scores.IncreaseCI,
			Failure:      ps.Scores.Failure,
			Context:      ps.Scores.Context,
			F:            ps.Stats.F,
			S:            ps.Stats.S,
			Fobs:         ps.Stats.Fobs,
			Sobs:         ps.Stats.Sobs,
		}
	}
	return out
}

// TestEndToEndConcurrentClientsMatchBatch is the headline equivalence
// test: 8 concurrent clients stream a full subject corpus over HTTP
// into a live collector, and the resulting /v1/scores ranking must be
// identical — predicates, order, and every score — to the batch core
// pipeline run over the same reports.
func TestEndToEndConcurrentClientsMatchBatch(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()

	srv, err := New(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	const numClients = 8
	clients := make([]*Client, numClients)
	var wg sync.WaitGroup
	errs := make(chan error, numClients)
	for w := 0; w < numClients; w++ {
		// Vary batch sizes so flush boundaries differ across clients.
		clients[w] = NewClient(base, in.Set.NumSites, in.Set.NumPreds,
			WithBatchSize(7+w*5))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := w; i < len(in.Set.Reports); i += numClients {
				if err := clients[w].Add(ctx, in.Set.Reports[i]); err != nil {
					errs <- err
					return
				}
			}
			errs <- clients[w].Flush(ctx)
		}(w)
	}
	wg.Wait()
	for w := 0; w < numClients; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, srv, int64(len(in.Set.Reports)))

	ctx := context.Background()
	stats, err := clients[0].Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if int(stats.Runs) != len(in.Set.Reports) || int(stats.Failing) != res.NumFailing() {
		t.Fatalf("stats runs=%d failing=%d, want %d/%d",
			stats.Runs, stats.Failing, len(in.Set.Reports), res.NumFailing())
	}

	const k = 25
	got, err := clients[0].Scores(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	want := wantTopK(in, in.Set.Reports, k)
	if len(want) == 0 {
		t.Fatal("batch pipeline produced an empty ranking; test is vacuous")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("live ranking diverges from batch pipeline:\ngot:  %+v\nwant: %+v", got, want)
	}

	if !clients[0].Healthy(ctx) {
		t.Error("healthz not ok on a live server")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestSnapshotKillRestart kills a collector (no drain, no final
// snapshot) and restarts it from its latest snapshot: stats and ranking
// must equal the pre-kill snapshot state, and retrying the batches
// submitted after the snapshot must converge to the full-corpus state.
func TestSnapshotKillRestart(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "collector.snap")

	half := len(in.Set.Reports) / 2
	firstHalf, secondHalf := in.Set.Reports[:half], in.Set.Reports[half:]

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	client := NewClient(ts1.URL, in.Set.NumSites, in.Set.NumPreds, WithBatchSize(32))
	ctx := context.Background()

	submit := func(c *Client, reps []*report.Report) {
		t.Helper()
		if err := c.SubmitSet(ctx, &report.Set{
			NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds, Reports: reps,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Raw JSON bytes, so the restart check below is bit-for-bit, not
	// merely DeepEqual after a decode round trip.
	rawPredictors := func(ts *httptest.Server) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/predictors?k=25&affinity=4")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/predictors = %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	submit(client, firstHalf)
	waitApplied(t, srv1, int64(half))
	if err := srv1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	statsAtSnap := srv1.StatsNow()
	scoresAtSnap, err := client.Scores(ctx, 25)
	if err != nil {
		t.Fatal(err)
	}
	predsAtSnap := rawPredictors(ts1)

	// More reports arrive and are acked after the snapshot...
	submit(client, secondHalf)
	waitApplied(t, srv1, int64(len(in.Set.Reports)))

	// ...then the collector dies without warning.
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the latest snapshot: post-snapshot reports are gone,
	// everything up to the snapshot is intact.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client2 := NewClient(ts2.URL, in.Set.NumSites, in.Set.NumPreds, WithBatchSize(32))

	restored := srv2.StatsNow()
	if restored.Runs != statsAtSnap.Runs || restored.Failing != statsAtSnap.Failing ||
		restored.Successful != statsAtSnap.Successful {
		t.Fatalf("restored stats (%d/%d/%d) != snapshot stats (%d/%d/%d)",
			restored.Runs, restored.Failing, restored.Successful,
			statsAtSnap.Runs, statsAtSnap.Failing, statsAtSnap.Successful)
	}
	scoresRestored, err := client2.Scores(ctx, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scoresRestored, scoresAtSnap) {
		t.Fatal("restored ranking differs from pre-kill snapshot ranking")
	}
	if restored.RunLogRuns != int(statsAtSnap.Runs) {
		t.Fatalf("restored run log holds %d runs, want %d", restored.RunLogRuns, statsAtSnap.Runs)
	}
	// The restored run log must reproduce the live cause-isolation view
	// bit for bit — same JSON bytes as the pre-kill collector served.
	if predsRestored := rawPredictors(ts2); !bytes.Equal(predsRestored, predsAtSnap) {
		t.Fatalf("restored /v1/predictors differs from pre-kill bytes:\npre-kill: %s\nrestored: %s",
			predsAtSnap, predsRestored)
	}

	// Clients retry the unacknowledged tail; the collector converges to
	// exactly the batch pipeline over the full corpus.
	submit(client2, secondHalf)
	waitApplied(t, srv2, int64(len(in.Set.Reports)))
	finalScores, err := client2.Scores(ctx, 25)
	if err != nil {
		t.Fatal(err)
	}
	if want := wantTopK(in, in.Set.Reports, 25); !reflect.DeepEqual(finalScores, want) {
		t.Fatal("post-retry ranking diverges from batch pipeline over the full corpus")
	}
	finalPreds, err := client2.Predictors(ctx, 25, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := BuildPredictors(in, 25, 4); !reflect.DeepEqual(finalPreds, want) {
		t.Fatal("post-retry /v1/predictors diverges from batch cause isolation over the full corpus")
	}
	final := srv2.StatsNow()
	if int(final.Runs) != len(in.Set.Reports) || int(final.Failing) != res.NumFailing() {
		t.Fatalf("final stats (%d/%d) wrong", final.Runs, final.Failing)
	}
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulShutdownPersistsSnapshot checks Shutdown's contract:
// everything queued is applied and the final snapshot covers it.
func TestGracefulShutdownPersistsSnapshot(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "collector.snap")

	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, in.Set.NumSites, in.Set.NumPreds)
	ctx := context.Background()
	if err := client.SubmitSet(ctx, in.Set); err != nil {
		t.Fatal(err)
	}
	// No waitApplied: Shutdown itself must drain the queue.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	stats := srv2.StatsNow()
	if int(stats.Runs) != len(in.Set.Reports) || int(stats.Failing) != res.NumFailing() {
		t.Fatalf("snapshot after drain has %d runs (%d failing), want %d (%d)",
			stats.Runs, stats.Failing, len(in.Set.Reports), res.NumFailing())
	}
}

// encodeBatch builds a gzip'd binary POST body for raw HTTP tests.
func encodeBatch(t *testing.T, in core.Input, reps []*report.Report) []byte {
	t.Helper()
	set := &report.Set{NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds, Reports: reps}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if err := set.MarshalBinary(gz); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBackpressure429 wedges the apply pipeline and posts until the
// bounded queue overflows: the server must shed load with 429 +
// Retry-After rather than buffer without bound, and a retrying client
// must succeed once the pipeline unwedges.
func TestBackpressure429(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	cfg.QueueSize = 2
	cfg.Workers = 1
	gate := make(chan struct{})
	cfg.applyHook = func(*report.Report) { <-gate }

	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	payload := encodeBatch(t, in, in.Set.Reports[:1])
	post := func() *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/reports", bytes.NewReader(payload))
		req.Header.Set("Content-Encoding", "gzip")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	var saw429 bool
	var accepted int
	for i := 0; i < 50 && !saw429; i++ {
		resp := post()
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !saw429 {
		t.Fatalf("no 429 after %d accepted batches with queue size 2", accepted)
	}
	if srv.StatsNow().BatchesRejected == 0 {
		t.Error("stats do not count rejected batches")
	}

	// Unwedge; a client with retries drives its batch through.
	close(gate)
	retrying := NewClient(ts.URL, in.Set.NumSites, in.Set.NumPreds,
		WithBatchSize(8), WithRetry(20, time.Millisecond))
	if err := retrying.SubmitSet(context.Background(), &report.Set{
		NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds, Reports: in.Set.Reports[:20],
	}); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	waitApplied(t, srv, int64(accepted+20))
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestHandlerValidation covers the API's rejection paths.
func TestHandlerValidation(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	srv, err := New(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	postBody := func(body []byte, gzipped bool) int {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/reports", bytes.NewReader(body))
		if gzipped {
			req.Header.Set("Content-Encoding", "gzip")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/v1/reports"); got != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reports = %d, want 405", got)
	}
	if got := postBody(nil, false); got != http.StatusBadRequest {
		t.Errorf("empty POST = %d, want 400", got)
	}
	if got := postBody([]byte("CBR1 garbage"), false); got != http.StatusBadRequest {
		t.Errorf("garbage POST = %d, want 400", got)
	}
	if got := postBody([]byte("not gzip"), true); got != http.StatusBadRequest {
		t.Errorf("bad gzip POST = %d, want 400", got)
	}

	// Dimension mismatch must be rejected before ingestion.
	wrong := &report.Set{NumSites: 1, NumPreds: 1, Reports: []*report.Report{{}}}
	var buf bytes.Buffer
	if err := wrong.MarshalBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if got := postBody(buf.Bytes(), false); got != http.StatusBadRequest {
		t.Errorf("mismatched dimensions POST = %d, want 400", got)
	}

	// The text codec is accepted too, sniffed by magic.
	var txt bytes.Buffer
	sub := &report.Set{NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds,
		Reports: in.Set.Reports[:3]}
	if err := sub.Marshal(&txt); err != nil {
		t.Fatal(err)
	}
	if got := postBody(txt.Bytes(), false); got != http.StatusAccepted {
		t.Errorf("text codec POST = %d, want 202", got)
	}

	// A text batch with correct dimensions but an out-of-range
	// predicate id must be rejected with 400 — it used to be acked and
	// then panic an apply worker, killing the whole collector.
	hostile := fmt.Sprintf("cbi-reports 1 %d %d 1\nF | 0 | %d\n",
		in.Set.NumSites, in.Set.NumPreds, in.Set.NumPreds)
	if got := postBody([]byte(hostile), false); got != http.StatusBadRequest {
		t.Errorf("out-of-range text POST = %d, want 400", got)
	}

	if got := get("/v1/scores?k=bogus"); got != http.StatusBadRequest {
		t.Errorf("bad k = %d, want 400", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz = %d, want 200", got)
	}
	if got := get("/v1/stats"); got != http.StatusOK {
		t.Errorf("stats = %d, want 200", got)
	}
}

// TestBatchDedup: delivery is at-least-once — a batch can be enqueued
// while its ack is lost, and the client retries it with the same
// X-CBI-Batch-ID. The retry must be acked without being ingested twice.
func TestBatchDedup(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	srv, err := New(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	payload := encodeBatch(t, in, in.Set.Reports[:5])
	post := func(id string) (int, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/reports", bytes.NewReader(payload))
		req.Header.Set("Content-Encoding", "gzip")
		if id != "" {
			req.Header.Set("X-CBI-Batch-ID", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if got, _ := post("batch-1"); got != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", got)
	}
	got, body := post("batch-1")
	if got != http.StatusAccepted {
		t.Fatalf("retried POST = %d, want 202 (idempotent ack)", got)
	}
	if !strings.Contains(body, `"duplicate":true`) {
		t.Errorf("retried POST body %q does not flag the duplicate", body)
	}
	waitApplied(t, srv, 5)
	st := srv.StatsNow()
	if st.ReportsEnqueued != 5 {
		t.Errorf("duplicate batch was re-ingested: %d reports enqueued, want 5", st.ReportsEnqueued)
	}
	if st.BatchesDeduped != 1 {
		t.Errorf("BatchesDeduped = %d, want 1", st.BatchesDeduped)
	}

	// Batches without an id (legacy clients) are never deduplicated.
	if got, _ := post(""); got != http.StatusAccepted {
		t.Fatalf("id-less POST = %d, want 202", got)
	}
	if got, _ := post(""); got != http.StatusAccepted {
		t.Fatalf("second id-less POST = %d, want 202", got)
	}
	waitApplied(t, srv, 15)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBatchDedupNotClaimedOn429: a 429 rejection must not record the
// batch id — otherwise the client's retry of a batch that was never
// ingested would be dropped as a "duplicate".
func TestBatchDedupNotClaimedOn429(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	cfg.QueueSize = 1
	cfg.Workers = 1
	gate := make(chan struct{})
	cfg.applyHook = func(*report.Report) { <-gate }

	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	payload := encodeBatch(t, in, in.Set.Reports[:1])
	post := func(id string) (int, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/reports", bytes.NewReader(payload))
		req.Header.Set("Content-Encoding", "gzip")
		req.Header.Set("X-CBI-Batch-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// Wedge the pipeline until "retry-me" bounces with 429.
	saw429 := false
	for i := 0; i < 50 && !saw429; i++ {
		if got, _ := post(fmt.Sprintf("fill-%d", i)); got == http.StatusTooManyRequests {
			saw429 = true
		}
	}
	if !saw429 {
		t.Fatal("queue never overflowed")
	}
	if got, _ := post("retry-me"); got != http.StatusTooManyRequests {
		t.Fatal("expected 429 for retry-me while wedged")
	}

	// Unwedge; the retry must be accepted as fresh, not deduplicated.
	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, body := post("retry-me")
		if got == http.StatusAccepted {
			if strings.Contains(body, `"duplicate":true`) {
				t.Fatalf("retry after 429 treated as duplicate: %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry-me never accepted (last status %d)", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestNewValidation covers constructor error paths.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumSites: 1, NumPreds: 0}); err == nil {
		t.Error("zero preds accepted")
	}
	if _, err := New(Config{NumSites: 1, NumPreds: 2, SiteOf: []int32{0}}); err == nil {
		t.Error("short SiteOf accepted")
	}
	if _, err := New(Config{NumSites: 1, NumPreds: 1, SiteOf: []int32{5}}); err == nil {
		t.Error("out-of-range SiteOf accepted")
	}

	// A snapshot from a different universe must be refused.
	dir := t.TempDir()
	path := filepath.Join(dir, "s.snap")
	cfg := Config{NumSites: 2, NumPreds: 2, SiteOf: []int32{0, 1},
		Fingerprint: 7, SnapshotPath: path}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	bad := cfg
	bad.NumSites, bad.NumPreds, bad.SiteOf = 3, 3, []int32{0, 1, 2}
	if _, err := New(bad); err == nil {
		t.Error("dimension-mismatched snapshot accepted")
	}
	bad = cfg
	bad.Fingerprint = 8
	if _, err := New(bad); err == nil {
		t.Error("fingerprint-mismatched snapshot accepted")
	}
}
