package collector

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"cbi/internal/corpus"
	"cbi/internal/report"
)

// fetchSegment pulls a collector's /v1/snapshot merge segment, both as
// the raw gzip'd bytes (for re-POSTing) and decoded.
func fetchSegment(t *testing.T, ts *httptest.Server) ([]byte, *corpus.AggSnapshot, *report.Set) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/snapshot = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	snap, set, err := corpus.ReadMergeSegment(gz)
	if err != nil {
		t.Fatal(err)
	}
	return raw, snap, set
}

// postMerge re-POSTs a gzip'd merge segment with a batch id, returning
// the status code and decoded response.
func postMerge(t *testing.T, ts *httptest.Server, body []byte, batchID string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/merge", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-cbi-merge")
	req.Header.Set("Content-Encoding", "gzip")
	if batchID != "" {
		req.Header.Set("X-CBI-Batch-ID", batchID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// TestMergeEndpointEquivalence splits the corpus across two collectors,
// folds one into the other through POST /v1/merge, and requires the
// merged collector to serve exactly what a single collector over the
// whole corpus serves — scores and full cause isolation.
func TestMergeEndpointEquivalence(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)

	half := len(in.Set.Reports) / 2
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, r := range in.Set.Reports[:half] {
		a.Ingest(r)
	}
	for _, r := range in.Set.Reports[half:] {
		b.Ingest(r)
	}
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	seg, snap, set := fetchSegment(t, tsB)
	if got := snap.NumF + snap.NumS; got != int64(len(in.Set.Reports)-half) {
		t.Fatalf("b's snapshot counts %d runs, want %d", got, len(in.Set.Reports)-half)
	}
	if len(set.Reports) != len(in.Set.Reports)-half {
		t.Fatalf("b's segment logs %d runs, want %d", len(set.Reports), len(in.Set.Reports)-half)
	}

	code, body := postMerge(t, tsA, seg, "merge-b-into-a")
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/merge = %d: %v", code, body)
	}

	st := a.StatsNow()
	if st.MergesAccepted != 1 || st.MergedRuns != int64(len(set.Reports)) {
		t.Fatalf("merge stats = %d merges / %d runs, want 1 / %d", st.MergesAccepted, st.MergedRuns, len(set.Reports))
	}
	if int(st.Runs) != len(in.Set.Reports) {
		t.Fatalf("merged collector counts %d runs, want %d", st.Runs, len(in.Set.Reports))
	}

	ctx := context.Background()
	client := NewClient(tsA.URL, in.Set.NumSites, in.Set.NumPreds)
	gotScores, err := client.Scores(ctx, 30)
	if err != nil {
		t.Fatal(err)
	}
	if want := wantTopK(in, in.Set.Reports, 30); !reflect.DeepEqual(gotScores, want) {
		t.Fatal("merged /v1/scores diverges from batch pipeline over the full corpus")
	}
	gotPreds, err := client.Predictors(ctx, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := BuildPredictors(in, 0, 3); !reflect.DeepEqual(gotPreds, want) {
		t.Fatal("merged /v1/predictors diverges from batch cause isolation over the full corpus")
	}
}

// TestMergeDedup re-POSTs the same segment under the same batch id —
// the lost-ack retry — and requires the duplicate to be acked without
// double-counting.
func TestMergeDedup(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)

	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, r := range in.Set.Reports[:100] {
		b.Ingest(r)
	}
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	seg, _, _ := fetchSegment(t, tsB)
	code, _ := postMerge(t, tsA, seg, "retry-me")
	if code != http.StatusAccepted {
		t.Fatalf("first merge = %d", code)
	}
	code, body := postMerge(t, tsA, seg, "retry-me")
	if code != http.StatusAccepted {
		t.Fatalf("retried merge = %d", code)
	}
	if dup, _ := body["duplicate"].(bool); !dup {
		t.Fatalf("retried merge not flagged duplicate: %v", body)
	}
	st := a.StatsNow()
	if st.Runs != 100 || st.MergesAccepted != 1 {
		t.Fatalf("after duplicate merge: %d runs, %d merges; want 100 runs, 1 merge", st.Runs, st.MergesAccepted)
	}
}

// TestMergeValidation rejects malformed and mismatched segments.
func TestMergeValidation(t *testing.T) {
	cfg := serverConfig(t)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Garbage body.
	var gzGarbage bytes.Buffer
	gz := gzip.NewWriter(&gzGarbage)
	gz.Write([]byte("not a merge segment"))
	gz.Close()
	if code, _ := postMerge(t, ts, gzGarbage.Bytes(), ""); code != http.StatusBadRequest {
		t.Fatalf("garbage merge = %d, want 400", code)
	}

	// Wrong dimensions.
	snap := corpus.NewAggSnapshot(3, 5)
	set := &report.Set{NumSites: 3, NumPreds: 5}
	var seg bytes.Buffer
	gz = gzip.NewWriter(&seg)
	if err := corpus.WriteMergeSegment(gz, snap, set); err != nil {
		t.Fatal(err)
	}
	gz.Close()
	if code, _ := postMerge(t, ts, seg.Bytes(), ""); code != http.StatusBadRequest {
		t.Fatalf("mismatched-dimension merge = %d, want 400", code)
	}

	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/v1/merge")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/merge = %d, want 405", resp.StatusCode)
	}
}

// TestPushMergeClient drives the same path through Client.PushMerge.
func TestPushMergeClient(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, r := range in.Set.Reports[:64] {
		b.Ingest(r)
	}
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	_, snap, set := fetchSegment(t, tsB)
	client := NewClient(tsA.URL, in.Set.NumSites, in.Set.NumPreds)
	if err := client.PushMerge(context.Background(), snap, set); err != nil {
		t.Fatal(err)
	}
	if st := a.StatsNow(); st.Runs != 64 || st.RunLogRuns != 64 {
		t.Fatalf("after PushMerge: %d runs, %d logged; want 64/64", st.Runs, st.RunLogRuns)
	}
}

// TestMergeBeyondWindowSurvivesRestart is the subtle retention
// interaction: a counters-only peer (run log disabled) exports counters
// with no run-log segment, so after a merge the local counters
// legitimately exceed the retained window. A snapshot/restart must keep
// those counters rather than "repairing" them down to the log (aggsnap
// v2's LOGGED field is what distinguishes the two cases).
func TestMergeBeyondWindowSurvivesRestart(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	cfg.SnapshotPath = t.TempDir() + "/collector.snap"

	bCfg := serverConfig(t)
	bCfg.RunLogSize = -1 // counters-only peer: counts runs its segment can't carry
	b, err := New(bCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, r := range in.Set.Reports[:200] {
		b.Ingest(r)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	_, snap, set := fetchSegment(t, tsB)
	if len(set.Reports) != 0 {
		t.Fatalf("counters-only peer exported %d logged runs, want 0", len(set.Reports))
	}

	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 30 directly ingested runs populate a's own log, so the restart
	// below checks the mixed state: a real window plus counters from
	// beyond it.
	for _, r := range in.Set.Reports[200:230] {
		a.Ingest(r)
	}
	tsA := httptest.NewServer(a.Handler())
	client := NewClient(tsA.URL, in.Set.NumSites, in.Set.NumPreds)
	if err := client.PushMerge(context.Background(), snap, set); err != nil {
		t.Fatal(err)
	}
	st := a.StatsNow()
	if st.Runs != 230 || st.RunLogRuns != 30 {
		t.Fatalf("merged state = %d runs / %d logged, want 230/30", st.Runs, st.RunLogRuns)
	}
	scoresBefore, err := client.Scores(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	tsA.Close()
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	a2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	st2 := a2.StatsNow()
	if st2.Runs != 230 || st2.RunLogRuns != 30 {
		t.Fatalf("restored state = %d runs / %d logged, want 230/30 (counters were recounted from the log?)",
			st2.Runs, st2.RunLogRuns)
	}
	tsA2 := httptest.NewServer(a2.Handler())
	defer tsA2.Close()
	client2 := NewClient(tsA2.URL, in.Set.NumSites, in.Set.NumPreds)
	scoresAfter, err := client2.Scores(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scoresAfter, scoresBefore) {
		t.Fatal("restored scores diverge from pre-restart merged scores")
	}
}

// TestSnapshotEndpointRejectsNonGET nails the /v1/snapshot method.
func TestSnapshotEndpointRejectsNonGET(t *testing.T) {
	srv, err := New(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/snapshot", "text/plain", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/snapshot = %d, want 405", resp.StatusCode)
	}
}
