package collector

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"cbi/internal/core"

	// The logreg and stacktrace engines register themselves with the
	// core engine registry from package init; the serving tier links
	// them here so every /v1/predictors deployment offers the full
	// engine set.
	_ "cbi/internal/logreg"
	_ "cbi/internal/stacktrace"
)

// predCacheMax bounds the predictor cache: one slot per (engine, k,
// affinity) combination is tiny in practice, so the cap only matters
// against a caller sweeping k.
const predCacheMax = 256

// predictorCache caches rendered /v1/predictors bodies keyed by query
// parameters (engine, k, affinity), each entry remembering the run-log
// version it was computed at; any ingest bumps the version and thereby
// invalidates every entry. One slot per combination lets dashboards
// poll several engines between ingests without any of them evicting the
// others. When a sweep of distinct queries fills the hard cap, put
// evicts the least-recently-used entry only — the hot default-engine
// slot a dashboard touches every few seconds survives.
type predictorCache struct {
	mu      sync.Mutex
	max     int
	tick    uint64 // recency clock, bumped on every hit and insert
	entries map[string]*predCacheEntry
}

// predCacheEntry is one cached /v1/predictors body with the run-log
// version it was computed at.
type predCacheEntry struct {
	version uint64
	body    []byte
	used    uint64 // tick of the last get or put
}

func newPredictorCache(max int) *predictorCache {
	return &predictorCache{max: max, entries: make(map[string]*predCacheEntry)}
}

// get returns the cached body for a query key when it is still current
// at the given run-log version, bumping the entry's recency.
func (c *predictorCache) get(key string, version uint64) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || e.version != version {
		return nil
	}
	c.tick++
	e.used = c.tick
	return e.body
}

// put stores a computed body, first pruning every entry the ingest path
// has since invalidated (so the map stays bounded by the combinations
// polled at the current version) and then, if the cap is still hit,
// evicting the single least-recently-used entry.
func (c *predictorCache) put(key string, version uint64, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.version != version {
			delete(c.entries, k)
		}
	}
	if _, exists := c.entries[key]; !exists && len(c.entries) >= c.max {
		var lruKey string
		first := true
		var lruUsed uint64
		for k, e := range c.entries {
			if first || e.used < lruUsed {
				lruKey, lruUsed, first = k, e.used, false
			}
		}
		delete(c.entries, lruKey)
	}
	c.tick++
	c.entries[key] = &predCacheEntry{version: version, body: body, used: c.tick}
}

// size reports the number of cached entries (for tests).
func (c *predictorCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// has reports whether a key is cached at the given version, without
// touching recency (for tests).
func (c *predictorCache) has(key string, version uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	return e != nil && e.version == version
}

// EngineEntry is one row of a non-default GET /v1/predictors?engine=
// response: the engine's own score plus the predicate's full-window
// statistics. (The default engine keeps its richer PredictorEntry
// shape — thermometers, affinity, effective views — unchanged.)
type EngineEntry struct {
	Pred  int     `json:"pred"`
	Rank  int     `json:"rank"`
	Score float64 `json:"score"`
	F     int     `json:"f"`
	S     int     `json:"s"`
	Fobs  int     `json:"fobs"`
	Sobs  int     `json:"sobs"`
}

// EngineEntries renders an engine ranking into response rows — shared
// by the collector and the shard gateway so the two views marshal
// identically.
func EngineEntries(ranked []core.EnginePredictor) []EngineEntry {
	out := make([]EngineEntry, len(ranked))
	for i, p := range ranked {
		out[i] = EngineEntry{
			Pred:  p.Pred,
			Rank:  i + 1,
			Score: p.Score,
			F:     p.Stats.F,
			S:     p.Stats.S,
			Fobs:  p.Stats.Fobs,
			Sobs:  p.Stats.Sobs,
		}
	}
	return out
}

// ComparePair is one engine pair's agreement row in GET /v1/compare.
type ComparePair struct {
	A string `json:"a"`
	B string `json:"b"`
	// Spearman is the rank correlation over the union of the two top-k
	// lists, an id absent from one list taking rank k+1.
	Spearman float64 `json:"spearman"`
	// TopKOverlap is |A∩B| / min(|A|,|B|) over the two top-k sets.
	TopKOverlap float64 `json:"top_k_overlap"`
	// Common counts the predicates both rankings contain.
	Common int `json:"common"`
}

// CompareResponse is the GET /v1/compare body: each requested engine's
// top-k ranking over the same run window, plus pairwise agreement.
type CompareResponse struct {
	K        int              `json:"k"`
	Engines  []string         `json:"engines"`
	Rankings map[string][]int `json:"rankings"`
	Pairs    []ComparePair    `json:"pairs"`
}

// unknownEngineError formats the 400 body for an unresolvable ?engine=
// value: it must name the registered engines so a caller can self-fix.
func UnknownEngineError(name string) string {
	return fmt.Sprintf("unknown engine %q; registered engines: %s",
		name, strings.Join(core.EngineNames(), ", "))
}

// parseEngines splits and validates a ?engines=a,b,... list. It
// returns an error string suitable for a 400 body when the list is
// empty, shorter than two entries, or names an unregistered engine.
func ParseEngines(param string) ([]string, string) {
	if strings.TrimSpace(param) == "" {
		return nil, "missing engines parameter (engines=a,b); registered engines: " +
			strings.Join(core.EngineNames(), ", ")
	}
	var names []string
	seen := map[string]bool{}
	for _, n := range strings.Split(param, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, ok := core.EngineByName(n); !ok {
			return nil, UnknownEngineError(n)
		}
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	if len(names) < 2 {
		return nil, "need at least two distinct engines to compare (engines=a,b)"
	}
	return names, ""
}

// CompareEngines scores the run log with every named engine and
// computes pairwise rank agreement. Shared by the collector (its
// retained window) and the gateway (the merged shard union), so the
// two tiers answer /v1/compare identically over the same runs. Names
// must be pre-validated via parseEngines.
func CompareEngines(in core.Input, names []string, k int) *CompareResponse {
	resp := &CompareResponse{K: k, Engines: names, Rankings: map[string][]int{}}
	for _, n := range names {
		e, ok := core.EngineByName(n)
		if !ok {
			continue
		}
		ranked := e.Score(in, k)
		ids := make([]int, len(ranked))
		for i, p := range ranked {
			ids[i] = p.Pred
		}
		resp.Rankings[n] = ids
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := resp.Rankings[names[i]], resp.Rankings[names[j]]
			resp.Pairs = append(resp.Pairs, ComparePair{
				A:           names[i],
				B:           names[j],
				Spearman:    rankCorrelation(a, b, k),
				TopKOverlap: topKOverlap(a, b),
				Common:      commonCount(a, b),
			})
		}
	}
	return resp
}

// rankCorrelation computes Spearman's rho between two top-k rankings
// over the union of their members; an id absent from one ranking takes
// rank k+1 ("beyond the horizon"), so two lists that agree on members
// but disagree on order score below two that differ in membership
// only at the tail. Degenerate unions (fewer than two members, or a
// constant rank vector) return 1 for identical rankings and 0
// otherwise.
func rankCorrelation(a, b []int, k int) float64 {
	posA := rankOf(a)
	posB := rankOf(b)
	union := make([]int, 0, len(posA)+len(posB))
	for id := range posA {
		union = append(union, id)
	}
	for id := range posB {
		if _, dup := posA[id]; !dup {
			union = append(union, id)
		}
	}
	if len(union) == 0 {
		return 1 // two empty rankings agree perfectly
	}
	// With k == 0 (no cap) the horizon is just past the longer list.
	miss := float64(max(k, len(a), len(b)) + 1)
	var ra, rb []float64
	for _, id := range union {
		ra = append(ra, rankOr(posA, id, miss))
		rb = append(rb, rankOr(posB, id, miss))
	}
	return pearson(ra, rb, equalIntSlices(a, b))
}

func rankOf(ids []int) map[int]int {
	m := make(map[int]int, len(ids))
	for i, id := range ids {
		if _, dup := m[id]; !dup {
			m[id] = i + 1
		}
	}
	return m
}

func rankOr(m map[int]int, id int, miss float64) float64 {
	if r, ok := m[id]; ok {
		return float64(r)
	}
	return miss
}

// pearson computes the correlation of two equal-length vectors;
// degenerate variance collapses to 1 when the underlying rankings were
// identical and 0 otherwise.
func pearson(x, y []float64, identical bool) float64 {
	n := float64(len(x))
	if n < 2 {
		if identical {
			return 1
		}
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		cov += (x[i] - mx) * (y[i] - my)
		vx += (x[i] - mx) * (x[i] - mx)
		vy += (y[i] - my) * (y[i] - my)
	}
	if vx == 0 || vy == 0 {
		if identical {
			return 1
		}
		return 0
	}
	r := cov / math.Sqrt(vx*vy)
	// Clamp float noise so JSON consumers can rely on [-1, 1].
	return math.Max(-1, math.Min(1, r))
}

func topKOverlap(a, b []int) float64 {
	inter := commonCount(a, b)
	n := min(len(a), len(b))
	if n == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	return float64(inter) / float64(n)
}

func commonCount(a, b []int) int {
	in := map[int]bool{}
	for _, id := range a {
		in[id] = true
	}
	n := 0
	seen := map[int]bool{}
	for _, id := range b {
		if in[id] && !seen[id] {
			seen[id] = true
			n++
		}
	}
	return n
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
