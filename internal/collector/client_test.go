package collector

import (
	"compress/gzip"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbi/internal/report"
)

func testReport(i int) *report.Report {
	return &report.Report{Failed: i%3 == 0, ObservedSites: []int32{0}, TruePreds: []int32{int32(i % 2)}}
}

// TestClientRetriesTransientFailures drives a batch through a server
// that sheds load twice before accepting.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, "queue full", http.StatusTooManyRequests)
		case 2:
			http.Error(w, "transient", http.StatusInternalServerError)
		default:
			w.WriteHeader(http.StatusAccepted)
		}
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 2, 2, WithBatchSize(1), WithRetry(5, time.Millisecond))
	if err := c.Add(context.Background(), testReport(0)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	if c.Retries() != 2 {
		t.Errorf("Retries() = %d, want 2", c.Retries())
	}
	if c.Submitted() != 1 {
		t.Errorf("Submitted() = %d, want 1", c.Submitted())
	}
}

// TestClientBatchIDStableAcrossRetries: every attempt to deliver one
// batch must carry the same X-CBI-Batch-ID (so the server can dedup a
// retry whose ack was lost), and distinct batches must carry distinct
// ids.
func TestClientBatchIDStableAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get("X-CBI-Batch-ID"))
		first := len(ids) == 1
		mu.Unlock()
		if first {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 2, 2, WithBatchSize(1), WithRetry(5, time.Millisecond))
	ctx := context.Background()
	if err := c.Add(ctx, testReport(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(ctx, testReport(1)); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(ids))
	}
	if ids[0] == "" {
		t.Fatal("no batch id on first attempt")
	}
	if ids[0] != ids[1] {
		t.Errorf("retry changed the batch id: %q then %q", ids[0], ids[1])
	}
	if ids[2] == ids[0] {
		t.Errorf("distinct batches share batch id %q", ids[2])
	}
}

// TestClientTerminalErrorsDoNotRetry: a 400 means the batch itself is
// bad; retrying would loop forever.
func TestClientTerminalErrorsDoNotRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad batch", http.StatusBadRequest)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 2, 2, WithBatchSize(1), WithRetry(5, time.Millisecond))
	if err := c.Add(context.Background(), testReport(0)); err == nil {
		t.Fatal("expected error for 400")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1", got)
	}
}

// TestClientRetryBudgetExhausted: persistent backpressure eventually
// surfaces as an error instead of blocking forever.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 2, 2, WithBatchSize(1), WithRetry(3, time.Millisecond))
	if err := c.Add(context.Background(), testReport(0)); err == nil {
		t.Fatal("expected error after retry budget")
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("server saw %d attempts, want 4 (1 + 3 retries)", got)
	}
}

// TestClientContextCancellation: a cancelled context interrupts the
// backoff wait promptly.
func TestClientContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 2, 2, WithBatchSize(1), WithRetry(100, time.Hour))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Add(ctx, testReport(0))
	if err == nil {
		t.Fatal("expected context error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; backoff ignored the context", elapsed)
	}
}

// TestClientBatching: Adds below the batch size stay buffered until
// Flush; the server sees exactly the right report count.
func TestClientBatching(t *testing.T) {
	var batches atomic.Int64
	var reports atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		set, err := decodePost(r)
		if err != nil {
			t.Errorf("decoding batch: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		batches.Add(1)
		reports.Add(int64(len(set.Reports)))
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 2, 2, WithBatchSize(10))
	ctx := context.Background()
	for i := 0; i < 25; i++ {
		if err := c.Add(ctx, testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := batches.Load(); got != 2 {
		t.Errorf("before flush: %d batches, want 2", got)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got, n := batches.Load(), reports.Load(); got != 3 || n != 25 {
		t.Errorf("after flush: %d batches / %d reports, want 3 / 25", got, n)
	}
	// Flushing an empty buffer is a no-op.
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := batches.Load(); got != 3 {
		t.Errorf("empty flush sent a batch")
	}
}

// decodePost decodes a client POST the way the server does.
func decodePost(r *http.Request) (*report.Set, error) {
	body := r.Body
	if r.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(body)
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		return report.UnmarshalBinary(gz)
	}
	return report.UnmarshalBinary(body)
}
