package collector

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cbi/internal/core"
	"cbi/internal/corpus"
	"cbi/internal/report"
)

// The crash/torn-write recovery matrix. Each case kills a WAL-enabled
// collector at one exact durability boundary — by copying its state
// directory at that instant and booting the copy — and demands that
// the rebooted collector serves /v1/scores and /v1/predictors
// byte-for-byte identical to a collector that ingested the durable
// prefix and never crashed. All ingestion runs on the test goroutine
// (IngestBatch is synchronous), so a copy taken inside a WAL or
// checkpoint hook sees no concurrent disk writes.

const crashBatchSize = 20

// crashBatches slices the shared corpus into the matrix's batch stream.
func crashBatches(t *testing.T) (core.Input, [][]*report.Report) {
	t.Helper()
	in := testCorpus(t).CoreInput()
	reports := in.Set.Reports[:300]
	var batches [][]*report.Report
	for len(reports) > 0 {
		n := min(crashBatchSize, len(reports))
		batches = append(batches, reports[:n])
		reports = reports[n:]
	}
	return in, batches
}

func crashConfig(t *testing.T, dir string) Config {
	cfg := serverConfig(t)
	cfg.SnapshotPath = filepath.Join(dir, "collector.snap")
	cfg.WALPath = filepath.Join(dir, "collector.wal")
	cfg.CheckpointEvery = time.Hour // checkpoints only when the test says so
	return cfg
}

// copyTree snapshots a state directory into a fresh temp dir — the
// "power cut" that freezes whatever is on disk at this instant.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			t.Fatalf("unexpected directory %s in state dir", e.Name())
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// rawViews fetches the two rankings as raw JSON bytes so comparisons
// are bit-for-bit, not DeepEqual-after-decode.
func rawViews(t *testing.T, srv *Server) (scores, preds []byte) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func(path string) []byte {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	return get("/v1/scores?k=50"), get("/v1/predictors?k=25&affinity=4")
}

// refViews builds the never-killed reference: a fresh collector fed
// exactly the given batches, in order.
func refViews(t *testing.T, batches [][]*report.Report) (scores, preds []byte) {
	t.Helper()
	srv, err := New(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i, b := range batches {
		if err := srv.IngestBatch(fmt.Sprintf("ref-%03d", i), b); err != nil {
			t.Fatal(err)
		}
	}
	return rawViews(t, srv)
}

func batchID(i int) string { return fmt.Sprintf("batch-%03d", i) }

// runToCrash feeds batches through a WAL-enabled collector with a
// checkpoint after batch ckptAt, letting hooks capture the state dir,
// and returns the captured copy.
func runToCrash(t *testing.T, cfg Config, batches [][]*report.Report, ckptAt int, copied *string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i, b := range batches {
		if err := srv.IngestBatch(batchID(i), b); err != nil {
			t.Fatal(err)
		}
		if i == ckptAt {
			if err := srv.SnapshotNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if *copied == "" {
		t.Fatal("crash hook never fired")
	}
}

// checkRecovered boots the frozen state directory and compares it,
// bit for bit, against the reference over wantBatches batches. It then
// replays the client's retry of the first unacked batch (retryIdx) and
// checks convergence: the retry must dedup if the batch was durable
// and apply if it was not.
func checkRecovered(t *testing.T, dir string, batches [][]*report.Report, wantBatches, retryIdx int) *Server {
	t.Helper()
	srv, err := New(crashConfig(t, dir))
	if err != nil {
		t.Fatalf("reboot from crash copy: %v", err)
	}
	gotScores, gotPreds := rawViews(t, srv)
	wantScores, wantPreds := refViews(t, batches[:wantBatches])
	if !bytes.Equal(gotScores, wantScores) {
		t.Errorf("recovered /v1/scores differs from never-killed reference over %d batches", wantBatches)
	}
	if !bytes.Equal(gotPreds, wantPreds) {
		t.Errorf("recovered /v1/predictors differs from never-killed reference over %d batches", wantBatches)
	}

	if retryIdx >= 0 {
		wasDurable := retryIdx < wantBatches
		if err := srv.IngestBatch(batchID(retryIdx), batches[retryIdx]); err != nil {
			t.Fatalf("post-restart retry: %v", err)
		}
		after := max(wantBatches, retryIdx+1)
		wantScores, wantPreds = refViews(t, batches[:after])
		gotScores, gotPreds = rawViews(t, srv)
		if !bytes.Equal(gotScores, wantScores) || !bytes.Equal(gotPreds, wantPreds) {
			t.Errorf("post-retry state diverges from reference over %d batches", after)
		}
		if wasDurable && srv.StatsNow().BatchesDeduped == 0 {
			t.Error("retry of a durable batch was not deduped — it double-applied")
		}
	}
	return srv
}

func TestCrashRecoveryMatrix(t *testing.T) {
	_, batches := crashBatches(t)
	ckptAt, target := 7, len(batches)-3

	// Crash before the target batch's WAL record exists: recovery holds
	// everything up to (not including) it, and the client retry applies.
	t.Run("pre-wal-append", func(t *testing.T) {
		dir := t.TempDir()
		cfg := crashConfig(t, dir)
		var copied string
		appends := 0
		cfg.walHook = func(stage string) {
			if stage != "pre-append" {
				return
			}
			if appends == target {
				copied = copyTree(t, dir)
			}
			appends++
		}
		runToCrash(t, cfg, batches, ckptAt, &copied)
		srv := checkRecovered(t, copied, batches, target, target)
		defer srv.Close()
		if got := srv.StatsNow().WALReplayed; got != int64(target-ckptAt-1) {
			t.Errorf("replayed %d WAL records, want %d (checkpoint covers the rest)", got, target-ckptAt-1)
		}
	})

	// Crash after the WAL append but before the apply/ack: the record
	// is durable, so recovery includes it and the retry dedups.
	t.Run("post-append-pre-ack", func(t *testing.T) {
		dir := t.TempDir()
		cfg := crashConfig(t, dir)
		var copied string
		appends := 0
		cfg.walHook = func(stage string) {
			if stage != "post-append" {
				return
			}
			if appends == target {
				copied = copyTree(t, dir)
			}
			appends++
		}
		runToCrash(t, cfg, batches, ckptAt, &copied)
		srv := checkRecovered(t, copied, batches, target+1, target)
		defer srv.Close()
	})

	// Crash as a second checkpoint begins: disk still holds the first
	// checkpoint plus the full WAL tail. Nothing acked is lost.
	t.Run("mid-checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		cfg := crashConfig(t, dir)
		var copied string
		ckpts := 0
		cfg.checkpointHook = func(stage string) {
			if stage != "begin" {
				return
			}
			if ckpts == 1 {
				copied = copyTree(t, dir)
			}
			ckpts++
		}
		srv0, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range batches {
			if err := srv0.IngestBatch(batchID(i), b); err != nil {
				t.Fatal(err)
			}
			if i == ckptAt {
				if err := srv0.SnapshotNow(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := srv0.SnapshotNow(); err != nil { // the interrupted checkpoint
			t.Fatal(err)
		}
		srv0.Close()
		if copied == "" {
			t.Fatal("checkpoint hook never fired")
		}
		srv := checkRecovered(t, copied, batches, len(batches), -1)
		defer srv.Close()
		if got := srv.StatsNow().WALReplayed; got != int64(len(batches)-ckptAt-1) {
			t.Errorf("replayed %d WAL records, want %d", got, len(batches)-ckptAt-1)
		}
	})

	// Crash after the checkpoint file is committed but before the WAL
	// is pruned: replay finds every record already covered and must not
	// double-apply any of them.
	t.Run("post-checkpoint-pre-truncate", func(t *testing.T) {
		dir := t.TempDir()
		cfg := crashConfig(t, dir)
		var copied string
		cfg.checkpointHook = func(stage string) {
			if stage == "committed" && copied == "" {
				copied = copyTree(t, dir)
			}
		}
		runToCrash(t, cfg, batches, len(batches)-1, &copied)
		srv := checkRecovered(t, copied, batches, len(batches), 3)
		defer srv.Close()
		if got := srv.StatsNow().WALReplayed; got != 0 {
			t.Errorf("replayed %d WAL records past a covering checkpoint; all were covered", got)
		}
	})

	// Crash after the checkpoint fully completed (WAL pruned): clean
	// recovery from the checkpoint alone. No retry check here: pruning
	// also discards the batch ids, so the dedup horizon is the unpruned
	// WAL — retries of long-acked batches are the client's non-problem
	// (it has the ack), not the recovery path's.
	t.Run("post-checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		cfg := crashConfig(t, dir)
		var copied string
		cfg.checkpointHook = func(stage string) {
			if stage == "done" && copied == "" {
				copied = copyTree(t, dir)
			}
		}
		runToCrash(t, cfg, batches, len(batches)-1, &copied)
		srv := checkRecovered(t, copied, batches, len(batches), -1)
		defer srv.Close()
	})
}

// TestCrashTornWALTail doctors the frozen WAL the way a torn write
// does — a truncated tail, and separately a corrupted one — and checks
// the rebooted collector drops exactly the damaged record, keeps every
// earlier one, and counts the torn tail.
func TestCrashTornWALTail(t *testing.T) {
	_, batches := crashBatches(t)
	ckptAt := 7

	freeze := func(t *testing.T) string {
		dir := t.TempDir()
		cfg := crashConfig(t, dir)
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range batches {
			if err := srv.IngestBatch(batchID(i), b); err != nil {
				t.Fatal(err)
			}
			if i == ckptAt {
				if err := srv.SnapshotNow(); err != nil {
					t.Fatal(err)
				}
			}
		}
		copied := copyTree(t, dir)
		srv.Close()
		return copied
	}

	lastSegment := func(t *testing.T, dir string) string {
		segs, err := corpus.ListWALSegments(filepath.Join(dir, "collector.wal"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("listing WAL segments: %v (%d found)", err, len(segs))
		}
		return segs[len(segs)-1].Path
	}

	t.Run("truncated", func(t *testing.T) {
		dir := freeze(t)
		seg := lastSegment(t, dir)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Cut into (but not past) the final record: the last batch is
		// torn, everything before it intact.
		if err := os.Truncate(seg, fi.Size()-5); err != nil {
			t.Fatal(err)
		}
		srv := checkRecovered(t, dir, batches, len(batches)-1, len(batches)-1)
		defer srv.Close()
		if got := srv.StatsNow().WALTornTails; got != 1 {
			t.Errorf("WALTornTails = %d, want 1", got)
		}
	})

	t.Run("corrupted", func(t *testing.T) {
		dir := freeze(t)
		seg := lastSegment(t, dir)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-5] ^= 0x20 // flip a bit inside the last record
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		srv := checkRecovered(t, dir, batches, len(batches)-1, len(batches)-1)
		defer srv.Close()
		if got := srv.StatsNow().WALTornTails; got != 1 {
			t.Errorf("WALTornTails = %d, want 1", got)
		}
	})

	// A torn segment that is not the newest means acked data is gone;
	// boot must refuse rather than silently lose it. Build the two
	// segments by hand — the live checkpoint path truncates in place,
	// so an older segment only survives when pruning was interrupted.
	t.Run("torn-mid-sequence-refuses", func(t *testing.T) {
		dir := t.TempDir()
		cfg := crashConfig(t, dir)
		base := cfg.WALPath
		seq := uint64(0)
		for segIdx := uint64(1); segIdx <= 2; segIdx++ {
			w, err := corpus.CreateWALSegment(corpus.WALSegmentName(base, segIdx),
				cfg.NumSites, cfg.NumPreds, cfg.Fingerprint)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				seq++
				if err := w.Append(&corpus.WALRecord{Kind: corpus.WALBatch, Seq: seq,
					Reports: batches[0]}, cfg.NumSites, cfg.NumPreds); err != nil {
					t.Fatal(err)
				}
			}
			w.Close()
		}
		first := corpus.WALSegmentName(base, 1)
		fi, err := os.Stat(first)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(first, fi.Size()-3); err != nil {
			t.Fatal(err)
		}
		if _, err := New(cfg); err == nil ||
			!strings.Contains(err.Error(), "torn mid-sequence") {
			t.Fatalf("boot over a mid-sequence torn segment: err = %v, want refusal", err)
		}
	})
}

// TestCrashCheckpointIslands drives the out-of-order apply path: with
// two workers, WAL sequence 2 applies while sequence 1 is still
// in flight, so a checkpoint taken then records coverage as watermark
// plus islands. A crash right after must replay exactly sequence 1.
func TestCrashCheckpointIslands(t *testing.T) {
	in, batches := crashBatches(t)
	b0, b1 := batches[0], batches[1]

	dir := t.TempDir()
	cfg := crashConfig(t, dir)
	cfg.Workers = 2
	cfg.QueueSize = 4
	// The HTTP path decodes fresh Report values, so the wedge matches
	// batch 0's first report by value, and only once. The corpus could
	// hold an equal report inside batch 1; ensure it does not, so the
	// wedge cannot catch the wrong worker.
	gate := make(chan struct{})
	first := b0[0]
	same := func(a, b *report.Report) bool {
		return a.Failed == b.Failed &&
			reflect.DeepEqual(append([]int32{}, a.ObservedSites...), append([]int32{}, b.ObservedSites...)) &&
			reflect.DeepEqual(append([]int32{}, a.TruePreds...), append([]int32{}, b.TruePreds...))
	}
	for _, r := range b1 {
		if same(r, first) {
			t.Skip("corpus batch 1 duplicates batch 0's first report; wedge would be ambiguous")
		}
	}
	var wedgeMu sync.Mutex
	wedged := false
	cfg.applyHook = func(r *report.Report) {
		wedgeMu.Lock()
		hit := !wedged && same(r, first)
		if hit {
			wedged = true
		}
		wedgeMu.Unlock()
		if hit {
			<-gate // wedge batch 0's worker before it touches the aggregate
		}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	post := func(id string, reps []*report.Report) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/reports",
			bytes.NewReader(encodeBatch(t, in, reps)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Encoding", "gzip")
		req.Header.Set("X-CBI-Batch-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /v1/reports (%s) = %d", id, resp.StatusCode)
		}
	}
	post(batchID(0), b0) // WAL seq 1, wedged before apply
	post(batchID(1), b1) // WAL seq 2, applies while 1 is in flight
	waitApplied(t, srv, int64(len(b1)))

	// Checkpoint with sequence 2 applied but 1 still in flight: the
	// coverage must be watermark 0 + island {2}.
	if err := srv.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	copied := copyTree(t, dir)
	close(gate) // let batch 0 finish so shutdown is clean
	waitApplied(t, srv, int64(len(b0)+len(b1)))
	ts.Close()
	srv.Close()

	snap, _, isCheckpoint, err := corpus.ReadStateFile(filepath.Join(copied, "collector.snap"))
	if err != nil || !isCheckpoint {
		t.Fatalf("reading frozen checkpoint: %v (checkpoint=%v)", err, isCheckpoint)
	}
	if snap.WALSeq != 0 || !reflect.DeepEqual(snap.WALIslands, []uint64{2}) {
		t.Fatalf("checkpoint coverage = watermark %d islands %v, want 0 + [2]",
			snap.WALSeq, snap.WALIslands)
	}

	// Reboot: replay must apply sequence 1 (batch 0) and skip the
	// islanded sequence 2. The never-killed reference saw batch 1
	// apply first, then batch 0 — same for the recovered window.
	srv2, err := New(crashConfig(t, copied))
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	defer srv2.Close()
	if got := srv2.StatsNow().WALReplayed; got != 1 {
		t.Errorf("replayed %d WAL records, want exactly 1 (the non-island)", got)
	}
	gotScores, gotPreds := rawViews(t, srv2)
	wantScores, wantPreds := func() ([]byte, []byte) {
		ref, err := New(serverConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		if err := ref.IngestBatch(batchID(1), b1); err != nil {
			t.Fatal(err)
		}
		if err := ref.IngestBatch(batchID(0), b0); err != nil {
			t.Fatal(err)
		}
		return rawViews(t, ref)
	}()
	if !bytes.Equal(gotScores, wantScores) || !bytes.Equal(gotPreds, wantPreds) {
		t.Fatal("island recovery diverges from the never-killed apply order")
	}
}

// TestRevokeEndpoint exercises the failover double-count repair: a
// revoked batch's runs leave both counters and window, the state
// matches a collector that never saw the batch, and the repair
// survives a crash via its WAL record.
func TestRevokeEndpoint(t *testing.T) {
	_, batches := crashBatches(t)
	use := batches[:6]
	victim := 2

	dir := t.TempDir()
	cfg := crashConfig(t, dir)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range use {
		if err := srv.IngestBatch(batchID(i), b); err != nil {
			t.Fatal(err)
		}
	}

	ts := httptest.NewServer(srv.Handler())
	revoke := func(body string) string {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/revoke", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/revoke = %d", resp.StatusCode)
		}
		out, _ := io.ReadAll(resp.Body)
		return strings.TrimSpace(string(out))
	}

	// Revoking an unknown id is a no-op, not an error.
	if got := revoke(`{"ids":["never-seen"]}`); got != `{"revoked_batches":0,"revoked_runs":0}` {
		t.Fatalf("unknown-id revoke = %s", got)
	}
	want := fmt.Sprintf(`{"revoked_batches":1,"revoked_runs":%d}`, len(use[victim]))
	if got := revoke(fmt.Sprintf(`{"ids":[%q]}`, batchID(victim))); got != want {
		t.Fatalf("revoke = %s, want %s", got, want)
	}
	ts.Close()

	// State now equals a collector that never ingested the victim.
	var without [][]*report.Report
	for i, b := range use {
		if i != victim {
			without = append(without, b)
		}
	}
	// The window order after removal keeps the remaining runs in their
	// original order, so the reference is simply the other batches.
	gotScores, gotPreds := rawViews(t, srv)
	refSrv, err := New(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range without {
		if err := refSrv.IngestBatch(fmt.Sprintf("wo-%03d", i), b); err != nil {
			t.Fatal(err)
		}
	}
	wantScores, wantPreds := rawViews(t, refSrv)
	refSrv.Close()
	if !bytes.Equal(gotScores, wantScores) || !bytes.Equal(gotPreds, wantPreds) {
		t.Fatal("post-revoke state differs from a collector that never saw the batch")
	}

	// A retry of the revoked batch dedups — the id stays poisoned — so
	// the double count cannot come back through the retry path.
	if err := srv.IngestBatch(batchID(victim), use[victim]); err != nil {
		t.Fatal(err)
	}
	if again, _ := rawViews(t, srv); !bytes.Equal(again, wantScores) {
		t.Fatal("retry of a revoked batch re-applied it")
	}

	// Crash now (no checkpoint since the revoke): the 'R' record must
	// replay and the rebooted collector must still exclude the batch.
	copied := copyTree(t, dir)
	srv.Close()
	srv2, err := New(crashConfig(t, copied))
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	defer srv2.Close()
	gotScores, gotPreds = rawViews(t, srv2)
	if !bytes.Equal(gotScores, wantScores) || !bytes.Equal(gotPreds, wantPreds) {
		t.Fatal("revoke did not survive the crash")
	}
	if n := srv2.StatsNow().RevokedBatches; n != 1 {
		t.Errorf("replayed RevokedBatches = %d, want 1", n)
	}
}

// TestRevokeAfterCheckpoint covers the harder half of the repair: the
// revoked batch is already inside a checkpoint (its WAL record is
// covered), so replay must rebuild the batch→records mapping from the
// WAL for the revoke to find anything.
func TestRevokeAfterCheckpoint(t *testing.T) {
	_, batches := crashBatches(t)
	use := batches[:6]
	victim := 1

	dir := t.TempDir()
	cfg := crashConfig(t, dir)
	// Crash at the "committed" checkpoint stage: the checkpoint covers
	// every batch, but the WAL records still exist (pruning has not
	// run). Reboot replay must rebuild the batch→records mapping from
	// those covered records, or the revoke would find nothing.
	var copied string
	cfg.checkpointHook = func(stage string) {
		if stage == "committed" && copied == "" {
			copied = copyTree(t, dir)
		}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range use {
		if err := srv.IngestBatch(batchID(i), b); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if copied == "" {
		t.Fatal("checkpoint hook never fired")
	}

	srv2, err := New(crashConfig(t, copied))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv2.Handler())
	resp, err := http.Post(ts.URL+"/v1/revoke", "application/json",
		strings.NewReader(fmt.Sprintf(`{"ids":[%q]}`, batchID(victim))))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	ts.Close()
	want := fmt.Sprintf(`{"revoked_batches":1,"revoked_runs":%d}`, len(use[victim]))
	if got := strings.TrimSpace(string(body)); got != want {
		t.Fatalf("post-reboot revoke = %s, want %s", got, want)
	}

	var without [][]*report.Report
	for i, b := range use {
		if i != victim {
			without = append(without, b)
		}
	}
	gotScores, _ := rawViews(t, srv2)
	srv2.Close()
	wantScores, _ := refViews(t, without)
	if !bytes.Equal(gotScores, wantScores) {
		t.Fatal("post-reboot revoke did not remove the checkpointed batch")
	}
}
