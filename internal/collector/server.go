package collector

import (
	"bufio"
	"compress/gzip"
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cbi/internal/core"
	"cbi/internal/corpus"
	"cbi/internal/obs"
	"cbi/internal/plan"
	"cbi/internal/ratelimit"
	"cbi/internal/report"
	"cbi/internal/sampling"
)

// Config configures a collector server.
type Config struct {
	// NumSites and NumPreds fix the index spaces; batches with other
	// dimensions are rejected with 400.
	NumSites, NumPreds int
	// SiteOf maps each predicate to its site (len NumPreds), needed to
	// attach site-observation counts when scoring.
	SiteOf []int32
	// Fingerprint identifies the instrumentation plan (0 = unchecked).
	// Snapshots record it and a restart refuses a mismatched snapshot.
	Fingerprint uint64
	// QueueSize bounds the ingest queue in batches (default 256). When
	// the queue is full, POST /v1/reports sheds load with 429.
	QueueSize int
	// RunLogSize caps the run-level membership log in runs (default
	// 262144; negative disables it). The log is what powers the full
	// cause-isolation ranking: when it is at capacity the oldest run is
	// evicted and un-counted, so /v1/scores, /v1/stats, and
	// /v1/predictors all describe exactly the retained window. Negative
	// means counters-only operation (/v1/predictors returns 501).
	RunLogSize int
	// RunLogMaxAge, when positive, additionally evicts retained runs
	// older than the cap — with the same evict-and-decrement counter
	// consistency as the count cap. A background sweep enforces it even
	// when no new reports arrive.
	RunLogMaxAge time.Duration
	// RunLogMaxBytes, when positive, additionally caps the retained
	// window by summed encoded record size — the operator-facing knob
	// when memory, not run count, is the scarce resource. Eviction has
	// the same evict-and-decrement counter consistency as the other
	// caps; the newest run is never evicted.
	RunLogMaxBytes int64
	// APIKeys, when non-empty, gates the write endpoints: POST
	// /v1/reports, /v1/merge, and /v1/plan must carry "Authorization:
	// Bearer <key>" matching one of the keys (constant-time compare) or
	// they are rejected with 401 and counted in the auth_rejected stat.
	// Read endpoints — including GET /v1/plan, so key rollover never
	// blinds the fleet's rate control — stay open. Keys can be rotated
	// live with SetAPIKeys.
	APIKeys []string
	// RateLimit, when positive, rate-limits the write endpoints
	// (/v1/reports and /v1/merge) per API key (per client address when
	// auth is off) with a token bucket of RateLimit requests per second.
	// Limited requests get 429 with a Retry-After naming when the next
	// token accrues.
	RateLimit float64
	// RateBurst is the token-bucket burst size (default 2*RateLimit).
	RateBurst int
	// PlanEvery, when positive, runs the closed-loop sampling planner:
	// every period the live aggregate's observation counts are re-planned
	// into a new versioned sampling plan (see internal/plan) served at
	// GET /v1/plan. Zero disables the loop; the endpoint still serves the
	// bootstrap (or restored / pushed) plan, and Replan can be driven
	// manually.
	PlanEvery time.Duration
	// PlanTarget is the per-run expected sample count each site is
	// planned toward (default sampling.DefaultTargetSamples).
	PlanTarget float64
	// PlanMinRate floors planned rates (default sampling.DefaultRate).
	PlanMinRate float64
	// PlanMinRuns gates re-planning until the retained window holds at
	// least this many runs (default plan.DefaultMinRuns).
	PlanMinRuns int64
	// PlanBoostRadius, when positive, boosts the site neighborhood of
	// the current top predictor (±radius sites) to rate 1 in each new
	// plan — the targeted-deployment hook that confirms or kills the
	// leading cause faster. Zero disables boosting.
	PlanBoostRadius int
	// Workers is the number of apply workers (default GOMAXPROCS).
	Workers int
	// Shards is the number of counter stripes (default 16).
	Shards int
	// SnapshotPath, when set, is where periodic snapshots persist; an
	// existing snapshot is restored on startup.
	SnapshotPath string
	// SnapshotEvery is the snapshot period (0 = only on Shutdown).
	SnapshotEvery time.Duration
	// WALPath, when set, enables the write-ahead log: every accepted
	// batch, merge, and revoke is appended to the current WAL segment
	// (<WALPath>.<n>) before it is acked, shrinking the
	// acked-but-unsnapshotted loss window to ~zero. Requires
	// SnapshotPath: periodic snapshots become checkpoints (a single
	// atomic state file) that rotate and prune the log, and boot replays
	// the WAL records the checkpoint does not cover.
	WALPath string
	// CheckpointEvery is the checkpoint period when the WAL is enabled
	// (default: SnapshotEvery, or 30s when that is unset).
	CheckpointEvery time.Duration
	// DeltaHistory caps the in-memory state-mutation history backing
	// incremental GET /v1/snapshot?since= responses, in events (0 =
	// default 65536; negative disables delta serving). Only meaningful
	// when the run log is enabled.
	DeltaHistory int
	// Metrics, when set, is the registry the server's metrics register
	// into (shared registries let one process host several servers under
	// distinct names); nil creates a private registry. Either way the
	// registry is served at GET /metrics and is the single source of
	// truth for /v1/stats — the JSON view reads the same counters.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (opt-in:
	// profiling endpoints reveal heap contents and cost CPU).
	EnablePprof bool
	// SlowRequest, when positive, logs one structured line for every
	// HTTP request slower than this threshold.
	SlowRequest time.Duration
	// Logf receives server log lines (default: discard).
	Logf func(format string, args ...any)
	// applyHook, when set (tests only), runs before each report is
	// applied; it must be set before New so workers see it.
	applyHook func(*report.Report)
	// nowFn, when set (tests only), overrides the retention clock.
	nowFn func() time.Time
	// walHook, when set (tests only), runs around each WAL append
	// ("pre-append", "post-append") so crash tests can copy the state
	// directory at exact durability boundaries.
	walHook func(stage string)
	// checkpointHook, when set (tests only), runs at checkpoint stages
	// ("begin", "committed", "done").
	checkpointHook func(stage string)
}

// Stats is the GET /v1/stats response.
type Stats struct {
	NumSites        int    `json:"num_sites"`
	NumPreds        int    `json:"num_preds"`
	Fingerprint     uint64 `json:"fingerprint"`
	Runs            int64  `json:"runs"`
	Failing         int64  `json:"failing"`
	Successful      int64  `json:"successful"`
	QueueDepth      int    `json:"queue_depth"`
	BatchesAccepted int64  `json:"batches_accepted"`
	BatchesRejected int64  `json:"batches_rejected"`
	BatchesDeduped  int64  `json:"batches_deduped"`
	ReportsEnqueued int64  `json:"reports_enqueued"`
	ReportsApplied  int64  `json:"reports_applied"`
	Snapshots       int64  `json:"snapshots"`
	// Run-log retention: retained window size, configured caps, current
	// encoded byte footprint, and runs evicted (and un-counted) since
	// startup. All zero when the run log is disabled.
	RunLogRuns     int   `json:"runlog_runs"`
	RunLogCap      int   `json:"runlog_cap"`
	RunLogEvicted  int64 `json:"runlog_evicted"`
	RunLogBytes    int64 `json:"runlog_bytes"`
	RunLogMaxBytes int64 `json:"runlog_max_bytes"`
	// /v1/predictors cache behaviour: full eliminations computed vs
	// polls served from cache (no rescan between ingests).
	PredictorsComputed  int64 `json:"predictors_computed"`
	PredictorsCacheHits int64 `json:"predictors_cache_hits"`
	// Write-endpoint auth: requests rejected with 401 (only ever
	// non-zero when the server was configured with API keys).
	AuthRejected int64 `json:"auth_rejected"`
	// Shard-merge traffic on POST /v1/merge: segments folded in and the
	// total runs their counter snapshots carried.
	MergesAccepted int64 `json:"merges_accepted"`
	MergedRuns     int64 `json:"merged_runs"`
	// Closed-loop sampling plan state: the current plan version, how
	// many new versions this server published (locally re-planned or
	// accepted via POST /v1/plan push), /v1/plan fetch traffic, and how
	// many sites the current plan boosts to rate 1.
	PlanVersion      uint64 `json:"plan_version"`
	Replans          int64  `json:"replans"`
	PlanPushes       int64  `json:"plan_pushes"`
	PlanFetches      int64  `json:"plan_fetches"`
	PlanNotModified  int64  `json:"plan_not_modified"`
	PlanBoostedSites int    `json:"plan_boosted_sites"`
	// Report-batch plan attribution (X-CBI-Plan-Version): batches
	// produced under the currently served plan vs. an older one — the
	// operator's view of how far rate changes have propagated.
	PlanBatchesCurrent int64 `json:"plan_batches_current"`
	PlanBatchesStale   int64 `json:"plan_batches_stale"`
	// Live API-key rotations applied via SetAPIKeys (SIGHUP reload).
	APIKeyReloads int64 `json:"api_key_reloads"`
	// Write-ahead log state: records appended since startup, records
	// re-applied by boot replay, torn tails truncated, segments pruned
	// after a covering checkpoint, and the log's current on-disk
	// footprint. All zero when the WAL is disabled.
	WALAppends     int64 `json:"wal_appends"`
	WALReplayed    int64 `json:"wal_replayed"`
	WALTornTails   int64 `json:"wal_torn_tails"`
	WALTruncations int64 `json:"wal_truncations"`
	WALBytes       int64 `json:"wal_bytes"`
	WALSegments    int   `json:"wal_segments"`
	// Incremental snapshot serving: GET /v1/snapshot?since= requests
	// seen, and how many were answered with a delta segment instead of a
	// full state export.
	DeltaRequests int64 `json:"delta_requests"`
	DeltaServed   int64 `json:"delta_served"`
	// POST /v1/revoke traffic: batches whose retained runs were removed
	// and the total runs removed (the failover double-count repair path).
	RevokedBatches int64 `json:"revoked_batches"`
	RevokedRuns    int64 `json:"revoked_runs"`
}

// ScoreEntry is one row of the GET /v1/scores response.
type ScoreEntry struct {
	Pred         int     `json:"pred"`
	Importance   float64 `json:"importance"`
	ImportanceCI float64 `json:"importance_ci"`
	Increase     float64 `json:"increase"`
	IncreaseCI   float64 `json:"increase_ci"`
	Failure      float64 `json:"failure"`
	Context      float64 `json:"context"`
	F            int     `json:"f"`
	S            int     `json:"s"`
	Fobs         int     `json:"fobs"`
	Sobs         int     `json:"sobs"`
}

// Server ingests feedback-report batches and serves live rankings.
type Server struct {
	cfg Config
	agg *shardedAgg

	// apiKeys holds the live write-endpoint key set; SetAPIKeys swaps it
	// without a restart (SIGHUP rotation).
	apiKeys atomic.Pointer[[]string]

	// limiter rate-limits write endpoints per key (nil = no limiting).
	limiter *ratelimit.PerKey

	// planStore serves GET /v1/plan; planner computes successors from
	// the live aggregate (driven by planLoop or Replan).
	planStore *plan.Store
	planner   *plan.Planner
	// planMu serializes publication sources (local re-plans and POST
	// /v1/plan pushes) with their sidecar persistence.
	planMu sync.Mutex

	queue chan *ingestBatch
	// sem is the ingest admission semaphore (capacity == cap(queue)): a
	// handler acquires a slot *before* the WAL append so a batch is never
	// made durable and then shed with 429, and the subsequent queue send
	// can never block. Workers release the slot on dequeue.
	sem chan struct{}

	// acceptMu guards accepting and orders handler enqueues before the
	// queue close during drain.
	acceptMu  sync.RWMutex
	accepting bool

	// Write-ahead log state. walMu serializes sequence assignment,
	// appends, rotation, and pruning; seqs tracks which sequences the
	// aggregate has absorbed (watermark + out-of-order islands) so replay
	// and checkpoints agree on coverage.
	walMu     sync.Mutex
	wal       *corpus.WAL  // current segment; nil when the WAL is disabled
	walIndex  uint64       // current segment index
	walSeq    uint64       // last assigned sequence number
	walPrev   []walSegment // closed segments not yet covered by a checkpoint
	walBroken bool         // an un-repairable append failure poisoned the log
	seqs      seqTracker

	workers sync.WaitGroup
	bg      sync.WaitGroup
	die     chan struct{} // closed by Close (hard kill)
	stopped sync.Once

	// Operational counters live in the metrics registry; /v1/stats and
	// /metrics read the same objects, so the two views cannot disagree.
	metrics *obs.Registry
	httpObs *obs.HTTP

	batchesAccepted *obs.Counter
	batchesRejected *obs.Counter
	batchesDeduped  *obs.Counter
	reportsEnqueued *obs.Counter
	reportsApplied  *obs.Counter
	snapshots       *obs.Counter
	authRejected    *obs.Counter
	mergesAccepted  *obs.Counter
	mergedRuns      *obs.Counter
	runlogSweeps    *obs.Counter
	snapshotSeconds *obs.Histogram

	predictorsComputed  *obs.Counter
	predictorsCacheHits *obs.Counter

	// Per-engine /v1/predictors instrumentation: requests by scoring
	// engine, cache traffic, and the run-log scoring latency.
	engineRequests     *obs.CounterVec
	engineCacheHits    *obs.CounterVec
	engineCacheMisses  *obs.CounterVec
	engineScoreSeconds *obs.HistogramVec

	replans            *obs.Counter
	planPushes         *obs.Counter
	planFetches        *obs.Counter
	planNotModified    *obs.Counter
	planBatchesCurrent *obs.Counter
	planBatchesStale   *obs.Counter
	apiKeyReloads      *obs.Counter

	walAppends     *obs.Counter
	walReplayed    *obs.Counter
	walTornTails   *obs.Counter
	walTruncations *obs.Counter
	deltaRequests  *obs.Counter
	deltaServed    *obs.Counter
	revokedBatches *obs.Counter
	revokedRuns    *obs.Counter
	rateLimited    *obs.Counter

	// Migration (elastic resharding) instrumentation: chunks, runs, and
	// bytes exported via /v1/export; runs evicted after handoff via
	// /v1/evict; residual handoffs committed via /v1/residual; and the
	// matching-runs-still-pending gauge the last export observed (the
	// operator's migration-lag signal).
	exportChunks    *obs.Counter
	exportRuns      *obs.Counter
	exportBytes     *obs.Counter
	migrateEvicted  *obs.Counter
	residualCommits *obs.Counter
	exportPending   *obs.Gauge

	// Cached /v1/predictors responses (see predictorCache in
	// engines.go).
	predCache *predictorCache

	// arena recycles binary-batch decode buffers across /v1/reports
	// requests; a batch's lease is released after the apply workers fold
	// it in.
	arena report.Arena

	// Recently enqueued client batch ids (X-CBI-Batch-ID), so a retry
	// of a batch whose ack was lost in transit is not ingested twice.
	// The value, once the batch has applied, is its runs' encoded
	// run-log records (nil before apply or after a revoke) — what POST
	// /v1/revoke uses to surgically remove a batch that a failover
	// re-routed to another shard.
	dedupMu   sync.Mutex
	dedupSeen map[string][][]byte
	dedupFIFO []string

	srvMu   sync.Mutex
	httpSrv *http.Server
}

// New builds a server, restoring state from cfg.SnapshotPath when a
// snapshot exists, and starts its apply workers.
func New(cfg Config) (*Server, error) {
	if cfg.NumSites < 0 || cfg.NumPreds <= 0 {
		return nil, fmt.Errorf("collector: bad dimensions %d sites, %d preds", cfg.NumSites, cfg.NumPreds)
	}
	if len(cfg.SiteOf) != cfg.NumPreds {
		return nil, fmt.Errorf("collector: SiteOf has %d entries, want %d", len(cfg.SiteOf), cfg.NumPreds)
	}
	for p, s := range cfg.SiteOf {
		if s < 0 || int(s) >= cfg.NumSites {
			return nil, fmt.Errorf("collector: SiteOf[%d] = %d out of range", p, s)
		}
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.RunLogSize == 0 {
		cfg.RunLogSize = defaultRunLogCap
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.PlanTarget <= 0 {
		cfg.PlanTarget = sampling.DefaultTargetSamples
	}
	if cfg.PlanMinRate <= 0 {
		cfg.PlanMinRate = sampling.DefaultRate
	}
	if cfg.PlanMinRuns <= 0 {
		cfg.PlanMinRuns = plan.DefaultMinRuns
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.WALPath != "" {
		if cfg.SnapshotPath == "" {
			return nil, fmt.Errorf("collector: WALPath requires SnapshotPath (checkpoints anchor WAL replay)")
		}
		if cfg.CheckpointEvery <= 0 {
			if cfg.SnapshotEvery > 0 {
				cfg.CheckpointEvery = cfg.SnapshotEvery
			} else {
				cfg.CheckpointEvery = 30 * time.Second
			}
		}
		cfg.SnapshotEvery = cfg.CheckpointEvery
	}

	s := &Server{
		cfg:       cfg,
		agg:       newShardedAgg(cfg.NumSites, cfg.NumPreds, cfg.Shards, cfg.RunLogSize, cfg.RunLogMaxBytes, cfg.RunLogMaxAge, cfg.nowFn),
		queue:     make(chan *ingestBatch, cfg.QueueSize),
		sem:       make(chan struct{}, cfg.QueueSize),
		accepting: true,
		die:       make(chan struct{}),
		dedupSeen: make(map[string][][]byte),
		predCache: newPredictorCache(predCacheMax),
	}
	if cfg.RunLogSize > 0 && cfg.DeltaHistory >= 0 {
		// Per-boot epoch: a restarted collector's version counter resets,
		// so versions are only comparable within one epoch. Random and
		// nonzero so no two boots (or two shards) ever collide.
		s.agg.enableDeltaHistory(cfg.DeltaHistory, maxDeltaHistBytes, newEpoch())
	}
	keys := append([]string(nil), cfg.APIKeys...)
	s.apiKeys.Store(&keys)
	s.limiter = ratelimit.New(cfg.RateLimit, cfg.RateBurst)
	s.planStore = plan.NewStore(plan.Bootstrap(cfg.NumSites, cfg.Fingerprint, cfg.PlanTarget, cfg.PlanMinRate))
	s.planner = plan.NewPlanner(s.planStore, plan.PlannerConfig{
		Source:      s.planInput,
		Target:      cfg.PlanTarget,
		MinRate:     cfg.PlanMinRate,
		MinRuns:     cfg.PlanMinRuns,
		BoostRadius: cfg.PlanBoostRadius,
		Fingerprint: cfg.Fingerprint,
		SourceName:  "collector",
		Now:         cfg.nowFn,
	})
	s.initMetrics()

	if cfg.SnapshotPath != "" {
		if err := s.restore(); err != nil {
			return nil, err
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.applyLoop()
	}
	if cfg.SnapshotPath != "" && cfg.SnapshotEvery > 0 {
		s.bg.Add(1)
		go s.snapshotLoop()
	}
	if cfg.RunLogMaxAge > 0 && cfg.RunLogSize > 0 {
		s.bg.Add(1)
		go s.sweepLoop()
	}
	if cfg.PlanEvery > 0 {
		s.bg.Add(1)
		go s.planLoop()
	}
	return s, nil
}

// initMetrics registers every collector metric (documented in
// METRICS.md) on the configured registry. Counters on the ingest hot
// path are registry objects directly — one atomic add, no extra
// bookkeeping — and instantaneous state (queue depth, retained window)
// is read from the aggregate at scrape time, so /metrics, /v1/stats,
// and the actual server state are always the same numbers.
func (s *Server) initMetrics() {
	m := s.cfg.Metrics
	if m == nil {
		m = obs.NewRegistry()
		s.cfg.Metrics = m
	}
	s.metrics = m

	s.batchesAccepted = m.Counter("cbi_collector_batches_accepted_total",
		"Report batches accepted onto the ingest queue (202).")
	s.batchesRejected = m.Counter("cbi_collector_batches_rejected_total",
		"Report batches shed with 429 because the ingest queue was full.")
	s.batchesDeduped = m.Counter("cbi_collector_batches_deduped_total",
		"Retried batches recognized by X-CBI-Batch-ID and acked without re-ingesting.")
	s.reportsEnqueued = m.Counter("cbi_collector_reports_enqueued_total",
		"Individual run reports enqueued for aggregation.")
	s.reportsApplied = m.Counter("cbi_collector_reports_applied_total",
		"Individual run reports folded into the aggregate counters.")
	s.snapshots = m.Counter("cbi_collector_snapshots_total",
		"Snapshot+run-log pairs persisted to disk.")
	s.authRejected = m.Counter("cbi_collector_auth_rejected_total",
		"Write requests rejected with 401 (missing or invalid API key).")
	s.mergesAccepted = m.Counter("cbi_collector_merges_accepted_total",
		"Peer merge segments folded in via POST /v1/merge.")
	s.mergedRuns = m.Counter("cbi_collector_merged_runs_total",
		"Runs carried by accepted merge segments' counter snapshots.")
	s.runlogSweeps = m.Counter("cbi_collector_runlog_age_sweeps_total",
		"Background age-retention sweeps over the run log.")
	s.predictorsComputed = m.Counter("cbi_collector_predictors_computed_total",
		"Full cause-isolation eliminations computed for /v1/predictors.")
	s.predictorsCacheHits = m.Counter("cbi_collector_predictors_cache_hits_total",
		"/v1/predictors polls served from the version-keyed cache.")
	s.engineRequests = m.CounterVec("cbi_predictors_engine_requests_total",
		"GET /v1/predictors requests served, by scoring engine.", "engine")
	s.engineCacheHits = m.CounterVec("cbi_predictors_engine_cache_hits_total",
		"/v1/predictors polls answered from the per-engine version-keyed cache.", "engine")
	s.engineCacheMisses = m.CounterVec("cbi_predictors_engine_cache_misses_total",
		"/v1/predictors polls that rescored the run log, by engine.", "engine")
	s.engineScoreSeconds = m.HistogramVec("cbi_predictors_engine_score_seconds",
		"Run-log scoring latency on /v1/predictors cache misses, by engine.", nil, "engine")
	s.replans = m.Counter("cbi_collector_replans_total",
		"Sampling plans published by the local closed-loop planner.")
	s.planPushes = m.Counter("cbi_collector_plan_pushes_total",
		"Newer sampling plans accepted via POST /v1/plan (gateway pushes).")
	s.planFetches = m.Counter("cbi_collector_plan_fetches_total",
		"GET /v1/plan responses that carried a full plan body.")
	s.planNotModified = m.Counter("cbi_collector_plan_not_modified_total",
		"GET /v1/plan polls answered 304 (client already current).")
	s.planBatchesCurrent = m.Counter("cbi_collector_plan_batches_current_total",
		"Accepted report batches stamped with the currently served plan version.")
	s.planBatchesStale = m.Counter("cbi_collector_plan_batches_stale_total",
		"Accepted report batches stamped with an older plan version (rates still propagating).")
	s.apiKeyReloads = m.Counter("cbi_collector_api_key_reloads_total",
		"Live API-key set swaps applied via SetAPIKeys (SIGHUP rotation).")
	s.walAppends = m.Counter("cbi_collector_wal_appends_total",
		"Batch, merge, and revoke records appended to the write-ahead log.")
	s.walReplayed = m.Counter("cbi_collector_wal_replayed_total",
		"WAL records re-applied during boot replay (not covered by the checkpoint).")
	s.walTornTails = m.Counter("cbi_collector_wal_torn_tails_total",
		"Torn WAL tails truncated at boot (partial final record from a crash).")
	s.walTruncations = m.Counter("cbi_collector_wal_truncations_total",
		"WAL segments truncated or deleted after a covering checkpoint.")
	s.deltaRequests = m.Counter("cbi_collector_delta_requests_total",
		"GET /v1/snapshot requests that asked for an incremental delta (since=).")
	s.deltaServed = m.Counter("cbi_collector_delta_served_total",
		"Snapshot requests answered with a delta segment instead of a full export.")
	s.revokedBatches = m.Counter("cbi_collector_revoked_batches_total",
		"Batches whose retained runs were removed via POST /v1/revoke.")
	s.revokedRuns = m.Counter("cbi_collector_revoked_runs_total",
		"Individual runs removed (and un-counted) via POST /v1/revoke.")
	s.rateLimited = m.Counter("cbi_auth_rate_limited_total",
		"Write requests shed with 429 by the per-key rate limiter.")
	s.exportChunks = m.Counter("cbi_collector_export_chunks_total",
		"Migration chunks served via POST /v1/export.")
	s.exportRuns = m.Counter("cbi_collector_export_runs_total",
		"Retained runs exported in migration chunks.")
	s.exportBytes = m.Counter("cbi_collector_export_bytes_total",
		"Compressed bytes of migration chunks served via POST /v1/export.")
	s.migrateEvicted = m.Counter("cbi_collector_migrate_evicted_runs_total",
		"Runs removed (and un-counted) after a migration handoff via POST /v1/evict.")
	s.residualCommits = m.Counter("cbi_collector_residual_commits_total",
		"Drain residual subtractions committed via POST /v1/residual.")
	s.exportPending = m.Gauge("cbi_collector_export_pending_runs",
		"Matching runs still awaiting export past the watermark, as of the last /v1/export — the migration-lag signal.")
	s.snapshotSeconds = m.Histogram("cbi_collector_snapshot_write_seconds",
		"Wall time to persist one snapshot+run-log pair, in seconds.", nil)

	m.GaugeFunc("cbi_collector_queue_depth",
		"Report batches waiting on the ingest queue.",
		func() float64 { return float64(len(s.queue)) })
	m.GaugeFunc("cbi_collector_queue_capacity",
		"Ingest queue bound in batches; 429s begin when depth reaches it.",
		func() float64 { return float64(cap(s.queue)) })
	m.GaugeFunc("cbi_collector_runs_failing",
		"Failing runs in the retained window (falls on eviction).",
		func() float64 { f, _ := s.agg.Runs(); return float64(f) })
	m.GaugeFunc("cbi_collector_runs_successful",
		"Successful runs in the retained window (falls on eviction).",
		func() float64 { _, ns := s.agg.Runs(); return float64(ns) })
	m.GaugeFunc("cbi_collector_runlog_runs",
		"Runs currently retained in the run-level membership log.",
		func() float64 { return float64(s.agg.LogStats().retained) })
	m.GaugeFunc("cbi_collector_runlog_cap",
		"Run-log retention cap in runs (0 when retention is disabled).",
		func() float64 { return float64(s.agg.LogStats().capRuns) })
	m.CounterFunc("cbi_collector_runlog_evicted_total",
		"Runs evicted (and un-counted) by the count, age, or byte retention cap.",
		func() float64 { return float64(s.agg.LogStats().evicted) })
	m.GaugeFunc("cbi_collector_runlog_bytes",
		"Encoded bytes currently retained in the run-level membership log.",
		func() float64 { return float64(s.agg.LogStats().bytes) })
	m.GaugeFunc("cbi_collector_runlog_max_bytes",
		"Run-log retention cap in encoded bytes (0 when no byte cap is set).",
		func() float64 { return float64(s.agg.LogStats().maxBytes) })
	m.GaugeFunc("cbi_runlog_interned_vectors",
		"Distinct interned membership vectors behind the retained runs (runlog_runs minus this is the dedup win).",
		func() float64 { return float64(s.agg.LogStats().interned) })
	m.GaugeFunc("cbi_collector_arena_leases_active",
		"Arena-decoded report batches currently leased (decoded but not yet folded in).",
		func() float64 { return float64(s.arena.Stats().ActiveLeases) })
	m.CounterFunc("cbi_collector_arena_decodes_total",
		"Binary report batches decoded through the pooled arena.",
		func() float64 { return float64(s.arena.Stats().Decodes) })
	m.CounterFunc("cbi_collector_arena_pool_misses_total",
		"Arena decodes that built a fresh workspace instead of reusing a pooled one.",
		func() float64 { return float64(s.arena.Stats().PoolMisses) })
	m.GaugeFunc("cbi_collector_wal_bytes",
		"On-disk bytes across all live write-ahead-log segments (0 when disabled).",
		func() float64 { b, _ := s.walUsage(); return float64(b) })
	m.GaugeFunc("cbi_collector_wal_segments",
		"Live write-ahead-log segment files (0 when the WAL is disabled).",
		func() float64 { _, n := s.walUsage(); return float64(n) })
	m.GaugeFunc("cbi_collector_plan_version",
		"Version of the sampling plan currently served at /v1/plan.",
		func() float64 { return float64(s.planStore.Version()) })
	m.GaugeFunc("cbi_collector_plan_boosted_sites",
		"Sites boosted to rate 1 by the current plan's targeted-deployment hook.",
		func() float64 {
			if p := s.planStore.Current(); p != nil {
				return float64(len(p.Boosts))
			}
			return 0
		})

	s.httpObs = obs.NewHTTP(obs.HTTPConfig{
		Registry: m,
		Paths: []string{"/v1/reports", "/v1/merge", "/v1/revoke", "/v1/snapshot", "/v1/scores",
			"/v1/predictors", "/v1/compare", "/v1/stats", "/v1/plan", "/v1/export", "/v1/evict",
			"/v1/residual", "/healthz", "/metrics"},
		SlowRequest: s.cfg.SlowRequest,
		Logf:        s.cfg.Logf,
	})
}

// Metrics returns the server's metrics registry (also served at
// GET /metrics).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// sweepLoop periodically evicts runs older than the age cap, so the
// retained window shrinks on schedule even when no reports arrive.
func (s *Server) sweepLoop() {
	defer s.bg.Done()
	period := s.cfg.RunLogMaxAge / 10
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.die:
			return
		case <-t.C:
			s.agg.EvictExpired()
			s.runlogSweeps.Inc()
		}
	}
}

// planLoop periodically re-plans sampling rates from the live
// aggregate, publishing (and persisting) a new plan version whenever
// the rates actually change.
func (s *Server) planLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.cfg.PlanEvery)
	defer t.Stop()
	for {
		select {
		case <-s.die:
			return
		case <-t.C:
			s.Replan()
		}
	}
}

// planInput captures the planner's view of the aggregate: per-site
// observed-run counts, the window size, and (when boosting is on) the
// site of the current top predictor.
func (s *Server) planInput() plan.Input {
	observed, runs := s.agg.SiteObservedRuns()
	in := plan.Input{Observed: observed, Runs: runs, TopSite: -1}
	if s.cfg.PlanBoostRadius > 0 {
		if ranked := core.TopKImportance(s.agg.ToAgg(s.cfg.SiteOf), 1); len(ranked) > 0 {
			in.TopSite = int(s.cfg.SiteOf[ranked[0].Pred])
		}
	}
	return in
}

// Replan runs one planning pass over the live aggregate, publishing a
// new plan version if the window is large enough and the rates changed.
// It returns the plan now being served and whether a new version was
// published. The periodic loop (Config.PlanEvery) calls this; tests and
// operators can drive it directly.
func (s *Server) Replan() (*plan.Plan, bool) {
	s.planMu.Lock()
	defer s.planMu.Unlock()
	p, published := s.planner.Replan()
	if published {
		s.replans.Add(1)
		s.persistPlanLocked(p)
		s.cfg.Logf("collector: published sampling plan v%d (%d runs, %d boosted sites)",
			p.Version, p.Runs, len(p.Boosts))
	}
	return p, published
}

// persistPlanLocked writes the current plan's sidecar file (best
// effort; the plan is already live). Callers hold planMu.
func (s *Server) persistPlanLocked(p *plan.Plan) {
	if s.cfg.SnapshotPath == "" {
		return
	}
	if err := plan.WriteFile(plan.Path(s.cfg.SnapshotPath), p); err != nil {
		s.cfg.Logf("collector: persisting sampling plan v%d: %v", p.Version, err)
	}
}

// Plan returns the sampling plan currently served at GET /v1/plan.
func (s *Server) Plan() *plan.Plan { return s.planStore.Current() }

// SetAPIKeys swaps the write-endpoint API-key set live — the SIGHUP
// rotation path. An empty set disables auth (matching Config.APIKeys
// semantics). In-flight requests finish against whichever set they
// loaded; new requests see the new set.
func (s *Server) SetAPIKeys(keys []string) {
	cp := append([]string(nil), keys...)
	s.apiKeys.Store(&cp)
	s.apiKeyReloads.Add(1)
	s.cfg.Logf("collector: API key set reloaded (%d keys)", len(cp))
}

// restore loads durable state from cfg.SnapshotPath — either a
// checkpoint (one atomic file: counters + window together, written when
// the WAL is on) or the legacy snapshot + run-log pair — and then, when
// the WAL is enabled, replays every WAL record the loaded state does
// not cover. For the legacy pair the run log is the source of truth: if
// the counters disagree with it (a crash tore the pair, or retention
// caps trimmed the restored window), the counters are rebuilt from the
// retained runs so the two views can never serve different windows.
func (s *Server) restore() error {
	cfg := s.cfg
	snap, ckptSet, ckptKeys, isCheckpoint, err := corpus.ReadStateFileKeyed(cfg.SnapshotPath)
	if err != nil {
		return fmt.Errorf("collector: loading snapshot: %v", err)
	}
	if snap != nil {
		if snap.NumSites != cfg.NumSites || snap.NumPreds != cfg.NumPreds {
			return fmt.Errorf("collector: snapshot dimensions %dx%d do not match server %dx%d",
				snap.NumSites, snap.NumPreds, cfg.NumSites, cfg.NumPreds)
		}
		if cfg.Fingerprint != 0 && snap.Fingerprint != 0 && snap.Fingerprint != cfg.Fingerprint {
			return fmt.Errorf("collector: snapshot fingerprint %d does not match plan %d",
				snap.Fingerprint, cfg.Fingerprint)
		}
		s.agg.Restore(snap)
		s.seqs.restoreState(snap.WALSeq, snap.WALIslands)
	}

	if isCheckpoint {
		// Counters and window were written atomically; they can only
		// disagree if retention caps shrank across the restart.
		if cfg.RunLogSize > 0 && ckptSet != nil && len(ckptSet.Reports) > 0 {
			retained := s.agg.RestoreLog(ckptSet.Reports, ckptKeys)
			if retained != len(ckptSet.Reports) {
				cfg.Logf("collector: retention caps trimmed the checkpoint window (%d runs checkpointed, %d retained); recounting",
					len(ckptSet.Reports), retained)
				if err := s.agg.RecountFromLog(); err != nil {
					return fmt.Errorf("collector: recounting from checkpoint window: %v", err)
				}
			}
		}
	} else {
		logSet, err := corpus.ReadRunLogFile(corpus.RunLogPath(cfg.SnapshotPath))
		if err != nil {
			return fmt.Errorf("collector: loading run log: %v", err)
		}
		if logSet != nil && cfg.RunLogSize > 0 {
			if logSet.NumSites != cfg.NumSites || logSet.NumPreds != cfg.NumPreds {
				return fmt.Errorf("collector: run log dimensions %dx%d do not match server %dx%d",
					logSet.NumSites, logSet.NumPreds, cfg.NumSites, cfg.NumPreds)
			}
			retained := s.agg.RestoreLog(logSet.Reports, nil)
			// The snapshot records how many runs its companion log held (a
			// legacy v1 snapshot does not; fall back to its run counts,
			// which equal the logged count unless state was merged in).
			wantLogged := int64(-1)
			if snap != nil {
				wantLogged = snap.Logged
				if wantLogged < 0 {
					wantLogged = snap.NumF + snap.NumS
				}
			}
			// Recount whenever the counters cannot match the retained window:
			// torn snapshot pair, or retention caps (count or bytes) trimmed
			// the restored log below what the snapshot described.
			if snap == nil || wantLogged != int64(len(logSet.Reports)) || retained != len(logSet.Reports) {
				cfg.Logf("collector: counters disagree with run log (%d runs logged, %d retained); recounting from the log",
					len(logSet.Reports), retained)
				if err := s.agg.RecountFromLog(); err != nil {
					return fmt.Errorf("collector: recounting from run log: %v", err)
				}
			}
		} else if snap != nil && snap.NumF+snap.NumS > 0 && cfg.RunLogSize > 0 {
			cfg.Logf("collector: snapshot has no run log; /v1/predictors starts empty until new runs arrive")
		}
	}

	if cfg.WALPath != "" {
		if err := s.replayWAL(); err != nil {
			return err
		}
	}

	// The sampling plan persists beside the snapshot; restoring it keeps
	// the fleet's rates (and the version clients resume polling from)
	// across a restart. A missing sidecar just leaves the bootstrap plan.
	p, err := plan.ReadFile(plan.Path(cfg.SnapshotPath), cfg.NumSites)
	if err != nil {
		return fmt.Errorf("collector: loading sampling plan: %v", err)
	}
	if p != nil {
		if cfg.Fingerprint != 0 && p.Fingerprint != 0 && p.Fingerprint != cfg.Fingerprint {
			return fmt.Errorf("collector: sampling plan fingerprint %d does not match plan %d",
				p.Fingerprint, cfg.Fingerprint)
		}
		s.planStore.Publish(p)
		cfg.Logf("collector: restored sampling plan v%d", p.Version)
	}

	numF, numS := s.agg.Runs()
	restored := numF + numS
	if restored > 0 || snap != nil {
		s.reportsEnqueued.Store(restored)
		s.reportsApplied.Store(restored)
		s.cfg.Logf("collector: restored snapshot %s (%d runs)", cfg.SnapshotPath, restored)
	}
	return nil
}

func (s *Server) applyLoop() {
	defer s.workers.Done()
	for {
		select {
		case <-s.die:
			return
		case b, ok := <-s.queue:
			if !ok {
				return
			}
			// Release the admission slot taken by the handler: the batch
			// has left the queue, so a new one may enter. Every queued
			// batch holds exactly one slot, so this never blocks.
			<-s.sem
			// Hooks run before the aggregate lock is touched — test hooks
			// may block on channels.
			if s.cfg.applyHook != nil {
				for _, r := range b.reports {
					s.cfg.applyHook(r)
				}
			}
			s.agg.ApplyBatch(b.reports, b.recs, b.key, func(recs [][]byte) {
				s.seqs.markApplied(b.seq)
				if b.id != "" {
					s.storeBatchRecs(b.id, recs)
				}
			})
			s.reportsApplied.Add(int64(len(b.reports)))
			// Nothing downstream retains the decoded reports — the log
			// holds interned record bytes, revoke state holds recs — so
			// the arena buffers can recycle.
			b.lease.Release()
		}
	}
}

func (s *Server) snapshotLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-s.die:
			return
		case <-t.C:
			if err := s.SnapshotNow(); err != nil {
				s.cfg.Logf("collector: periodic snapshot: %v", err)
			}
		}
	}
}

// Ingest folds one report into the live aggregate synchronously,
// bypassing the HTTP path and queue — for in-process feeding (a harness
// and collector sharing a process) and ingestion benchmarks. Safe for
// concurrent use with itself and with HTTP ingestion.
func (s *Server) Ingest(r *report.Report) {
	s.reportsEnqueued.Add(1)
	s.agg.Apply(r)
	s.reportsApplied.Add(1)
}

// SnapshotNow persists the current aggregate to cfg.SnapshotPath.
//
// With the WAL enabled this is a checkpoint: counters, window, and the
// WAL coverage watermark are captured under one lock and land in a
// single atomically-renamed file (no torn-pair window at all), after
// which WAL segments the checkpoint covers are pruned.
//
// Without the WAL it is the legacy pair — the run log lands on disk
// before the counters: the aggregate snapshot is the commit point, and
// a crash between the two writes leaves a mismatch that restore detects
// and repairs by recounting from the log.
func (s *Server) SnapshotNow() error {
	if s.cfg.SnapshotPath == "" {
		return fmt.Errorf("collector: no snapshot path configured")
	}
	start := time.Now()
	defer func() { s.snapshotSeconds.ObserveDuration(time.Since(start)) }()
	if s.cfg.checkpointHook != nil {
		s.cfg.checkpointHook("begin")
	}
	walOn := s.cfg.WALPath != ""
	snap, recs, keys, _, _ := s.agg.SnapshotState(s.cfg.Fingerprint, func(sn *corpus.AggSnapshot) {
		if walOn {
			sn.WALSeq, sn.WALIslands = s.seqs.capture()
		}
	})
	if walOn {
		// The retained records are already canonical wire encodings, so
		// the checkpoint streams them directly — no decode → re-encode.
		if err := corpus.WriteCheckpointFileRecords(s.cfg.SnapshotPath, snap, s.cfg.NumSites, s.cfg.NumPreds, recs, keys); err != nil {
			return err
		}
		s.snapshots.Add(1)
		if s.cfg.checkpointHook != nil {
			s.cfg.checkpointHook("committed")
		}
		s.pruneWAL(snap.WALSeq)
		if s.cfg.checkpointHook != nil {
			s.cfg.checkpointHook("done")
		}
		s.cfg.Logf("collector: checkpoint %s (%d runs, %d logged, WAL covered through %d)",
			s.cfg.SnapshotPath, snap.NumF+snap.NumS, len(recs), snap.WALSeq)
		return nil
	}
	if recs != nil {
		if err := corpus.WriteRunLogFileRecords(corpus.RunLogPath(s.cfg.SnapshotPath), s.cfg.NumSites, s.cfg.NumPreds, recs); err != nil {
			return err
		}
	}
	if err := corpus.WriteAggSnapshotFile(s.cfg.SnapshotPath, snap); err != nil {
		return err
	}
	s.snapshots.Add(1)
	s.cfg.Logf("collector: snapshot %s (%d runs, %d logged)",
		s.cfg.SnapshotPath, snap.NumF+snap.NumS, len(recs))
	return nil
}

// dedupWindow bounds how many recent batch ids the server remembers.
// It only needs to cover ids still inside some client's retry loop, so
// a small FIFO window suffices.
const dedupWindow = 8192

// rememberBatch records a client batch id and reports whether it was
// already seen — i.e. this POST is a retry of a batch the server
// enqueued but whose ack was lost. Old ids age out FIFO.
func (s *Server) rememberBatch(id string) (dup bool) {
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	if _, ok := s.dedupSeen[id]; ok {
		return true
	}
	s.dedupSeen[id] = nil
	s.dedupFIFO = append(s.dedupFIFO, id)
	if len(s.dedupFIFO) > dedupWindow {
		delete(s.dedupSeen, s.dedupFIFO[0])
		s.dedupFIFO = s.dedupFIFO[1:]
	}
	return false
}

// storeBatchRecs attaches a just-applied batch's encoded run records to
// its remembered id, making the batch revocable (POST /v1/revoke). A
// no-op if the id has already aged out of the dedup window.
func (s *Server) storeBatchRecs(id string, recs [][]byte) {
	s.dedupMu.Lock()
	if _, ok := s.dedupSeen[id]; ok {
		s.dedupSeen[id] = recs
	}
	s.dedupMu.Unlock()
}

// takeBatchRecs detaches and returns a batch's stored run records (nil
// if unknown or already revoked). It only touches dedupMu — callers
// remove the runs from the aggregate afterwards, never while holding
// it, so the worker's aggregate-then-dedup lock order can't deadlock.
func (s *Server) takeBatchRecs(id string) [][]byte {
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	recs := s.dedupSeen[id]
	if recs != nil {
		s.dedupSeen[id] = nil
	}
	return recs
}

// forgetBatch drops an id recorded by rememberBatch when the batch was
// not actually enqueued (queue full, draining), so the client's retry
// is not mistaken for a duplicate.
func (s *Server) forgetBatch(id string) {
	s.dedupMu.Lock()
	delete(s.dedupSeen, id)
	s.dedupMu.Unlock()
}

// Handler returns the server's HTTP API, wrapped in the per-endpoint
// metrics middleware. /metrics serves the same registry /v1/stats
// reads; /debug/pprof/ appears only when cfg.EnablePprof is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/reports", s.handleReports)
	mux.HandleFunc("/v1/merge", s.handleMerge)
	mux.HandleFunc("/v1/revoke", s.handleRevoke)
	mux.HandleFunc("/v1/export", s.handleExport)
	mux.HandleFunc("/v1/evict", s.handleEvict)
	mux.HandleFunc("/v1/residual", s.handleResidual)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/scores", s.handleScores)
	mux.HandleFunc("/v1/predictors", s.handlePredictors)
	mux.HandleFunc("/v1/compare", s.handleCompare)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.metrics.Handler())
	if s.cfg.EnablePprof {
		obs.RegisterPprof(mux)
	}
	return s.httpObs.Wrap(mux)
}

// authorize enforces API-key auth on a write endpoint. When keys are
// configured, the request must present "Authorization: Bearer <key>"
// for one of them; comparison is constant-time per key so response
// timing leaks nothing about key contents. On rejection it writes the
// 401 itself and returns false.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) bool {
	keys := *s.apiKeys.Load()
	if len(keys) == 0 {
		return true
	}
	const scheme = "Bearer "
	auth := r.Header.Get("Authorization")
	presented := ""
	if len(auth) > len(scheme) && strings.EqualFold(auth[:len(scheme)], scheme) {
		presented = auth[len(scheme):]
	}
	ok := false
	for _, key := range keys {
		// No early exit: every configured key is compared on every
		// request so match position is not observable either.
		if subtle.ConstantTimeCompare([]byte(presented), []byte(key)) == 1 {
			ok = true
		}
	}
	if !ok {
		s.authRejected.Add(1)
		w.Header().Set("WWW-Authenticate", `Bearer realm="cbi-collector"`)
		http.Error(w, "missing or invalid API key", http.StatusUnauthorized)
	}
	return ok
}

// rateLimit enforces the per-key write rate limit. The bucket key is
// the presented bearer token when there is one (each API key gets its
// own budget) and the client address otherwise. On a limited request
// it writes the 429 itself — with a Retry-After naming when the next
// token accrues — and returns false. No-op (true) when Config.RateLimit
// is unset.
func (s *Server) rateLimit(w http.ResponseWriter, r *http.Request) bool {
	if s.limiter == nil {
		return true
	}
	key := r.Header.Get("Authorization")
	if key == "" {
		key = r.RemoteAddr
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			key = host
		}
	}
	ok, retry := s.limiter.Allow(key, time.Now())
	if !ok {
		s.rateLimited.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(ratelimit.RetrySeconds(retry)))
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
	}
	return ok
}

// batchKey derives the routing-key hash a batch's runs are stamped
// with. A shard router forwards the hash it placed the batch by
// (X-CBI-Routing-Key); a direct client is keyed exactly as the router
// would key it — client id first, then batch id — so records land in
// the same ring ranges either way. Unkeyed batches get corpus.NoKey
// and are only ever moved by a full drain.
func batchKey(r *http.Request, batchID string) uint64 {
	if v := r.Header.Get("X-CBI-Routing-Key"); v != "" {
		if h, err := strconv.ParseUint(v, 10, 64); err == nil {
			return h
		}
	}
	if cid := r.Header.Get("X-CBI-Client-ID"); cid != "" {
		return corpus.KeyHash(cid)
	}
	if batchID != "" {
		return corpus.KeyHash(batchID)
	}
	return corpus.NoKey
}

// maxBatchBytes bounds one POST body (decompressed input is further
// bounded by the codec's own validation).
const maxBatchBytes = 64 << 20

// postBodyReader wraps a write-endpoint request body: size-bounded,
// transparently gunzipped per Content-Encoding. On a bad gzip header it
// writes the 400 itself and returns ok=false. closer must be closed by
// the caller when non-nil.
func (s *Server) postBodyReader(w http.ResponseWriter, r *http.Request) (reader *bufio.Reader, closer io.Closer, ok bool) {
	body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
	reader = bufio.NewReader(body)
	if r.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(reader)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad gzip body: %v", err), http.StatusBadRequest)
			return nil, nil, false
		}
		// Bound the decompressed size too, so a gzip bomb cannot smuggle
		// an oversized batch past MaxBytesReader; a truncated stream
		// fails decoding with 400.
		return bufio.NewReader(io.LimitReader(gz, maxBatchBytes)), gz, true
	}
	return reader, nil, true
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorize(w, r) {
		return
	}
	if !s.rateLimit(w, r) {
		return
	}
	reader, closer, ok := s.postBodyReader(w, r)
	if !ok {
		return
	}
	if closer != nil {
		defer closer.Close()
	}
	// Accept both codecs, sniffed by magic: "CBR1" (binary wire format)
	// or the "cbi-reports" text header. Binary batches — the hot path —
	// decode through the pooled arena; the lease travels with the batch
	// and is released once the apply workers have folded it in. Every
	// pre-enqueue exit must release it instead.
	magic, err := reader.Peek(4)
	if err != nil {
		http.Error(w, "empty body", http.StatusBadRequest)
		return
	}
	var set *report.Set
	var lease *report.Lease
	if string(magic) == "CBR1" {
		set, lease, err = s.arena.Decode(reader)
	} else {
		set, err = report.Unmarshal(reader)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
		return
	}
	if set.NumSites != s.cfg.NumSites || set.NumPreds != s.cfg.NumPreds {
		http.Error(w, fmt.Sprintf("batch dimensions %dx%d do not match collector %dx%d",
			set.NumSites, set.NumPreds, s.cfg.NumSites, s.cfg.NumPreds), http.StatusBadRequest)
		lease.Release()
		return
	}
	if len(set.Reports) == 0 {
		w.WriteHeader(http.StatusOK)
		lease.Release()
		return
	}

	// Delivery is at-least-once: a batch can be enqueued while the ack
	// is lost in transit, and the client then retries it. The batch id
	// makes the retry idempotent — ack it again without re-ingesting.
	batchID := r.Header.Get("X-CBI-Batch-ID")
	if batchID != "" && s.rememberBatch(batchID) {
		s.batchesDeduped.Add(1)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"accepted":%d,"duplicate":true}`+"\n", len(set.Reports))
		lease.Release()
		return
	}

	s.acceptMu.RLock()
	if !s.accepting {
		s.acceptMu.RUnlock()
		if batchID != "" {
			s.forgetBatch(batchID)
		}
		// A draining backend tells clients when to try again, so a
		// shard router's retry can land on whatever replaces it.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "collector is shutting down", http.StatusServiceUnavailable)
		lease.Release()
		return
	}
	// Admission before durability: take a queue slot first, so a batch
	// that would be shed with 429 is never written to the WAL, and a
	// batch that was written is always enqueued and acked.
	select {
	case s.sem <- struct{}{}:
	default:
		s.acceptMu.RUnlock()
		if batchID != "" {
			s.forgetBatch(batchID)
		}
		s.batchesRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "ingest queue full", http.StatusTooManyRequests)
		lease.Release()
		return
	}
	b := &ingestBatch{id: batchID, key: batchKey(r, batchID), reports: set.Reports, lease: lease}
	if s.cfg.WALPath != "" {
		b.recs = encodeReports(set.Reports)
		kind := byte(corpus.WALBatch)
		if b.key != corpus.NoKey {
			kind = corpus.WALKeyedBatch
		}
		seq, err := s.walAppend(&corpus.WALRecord{Kind: kind, BatchID: batchID, Key: b.key, Recs: b.recs})
		if err != nil {
			<-s.sem
			s.acceptMu.RUnlock()
			if batchID != "" {
				s.forgetBatch(batchID)
			}
			s.cfg.Logf("collector: WAL append: %v", err)
			http.Error(w, "write-ahead log append failed", http.StatusInternalServerError)
			lease.Release()
			return
		}
		b.seq = seq
	}
	// Capture the batch size before handing the batch off: the apply
	// loop releases the arena lease when it finishes, which severs the
	// decoded Set — reading set.Reports after the enqueue would race
	// with that release.
	accepted := len(set.Reports)
	// Cannot block: we hold an admission slot, and slots are only
	// released when a batch leaves the queue.
	s.queue <- b
	s.acceptMu.RUnlock()
	s.batchesAccepted.Add(1)
	s.reportsEnqueued.Add(int64(accepted))
	// Plan attribution: clients stamp batches with the plan version
	// their sampler ran under, so operators can see how much of the
	// stream is still producing counts under superseded rates.
	if pv := r.Header.Get("X-CBI-Plan-Version"); pv != "" {
		if v, err := strconv.ParseUint(pv, 10, 64); err == nil {
			if v >= s.planStore.Version() {
				s.planBatchesCurrent.Add(1)
			} else {
				s.planBatchesStale.Add(1)
			}
		}
	}
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, `{"accepted":%d}`+"\n", accepted)
}

// handleMerge folds a peer collector's exported state (counter
// snapshot + retained run-log segment, the WriteMergeSegment framing)
// into this one. Counters add exactly; the peer's runs join the run
// log without re-counting. Merges are applied synchronously — they are
// rare reducer traffic, not the per-run hot path — and are idempotent
// under lost-ack retries via the same X-CBI-Batch-ID dedup as
// /v1/reports.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorize(w, r) {
		return
	}
	if !s.rateLimit(w, r) {
		return
	}
	reader, closer, ok := s.postBodyReader(w, r)
	if !ok {
		return
	}
	if closer != nil {
		defer closer.Close()
	}
	snap, set, keys, err := corpus.ReadMergeSegmentKeyed(reader)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad merge segment: %v", err), http.StatusBadRequest)
		return
	}
	if snap.NumSites != s.cfg.NumSites || snap.NumPreds != s.cfg.NumPreds {
		http.Error(w, fmt.Sprintf("merge dimensions %dx%d do not match collector %dx%d",
			snap.NumSites, snap.NumPreds, s.cfg.NumSites, s.cfg.NumPreds), http.StatusBadRequest)
		return
	}
	if s.cfg.Fingerprint != 0 && snap.Fingerprint != 0 && snap.Fingerprint != s.cfg.Fingerprint {
		http.Error(w, fmt.Sprintf("merge fingerprint %d does not match plan %d",
			snap.Fingerprint, s.cfg.Fingerprint), http.StatusBadRequest)
		return
	}

	batchID := r.Header.Get("X-CBI-Batch-ID")
	if batchID != "" && s.rememberBatch(batchID) {
		s.batchesDeduped.Add(1)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"merged_runs":%d,"duplicate":true}`+"\n", snap.NumF+snap.NumS)
		return
	}

	s.acceptMu.RLock()
	if !s.accepting {
		s.acceptMu.RUnlock()
		if batchID != "" {
			s.forgetBatch(batchID)
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, "collector is shutting down", http.StatusServiceUnavailable)
		return
	}
	var seq uint64
	if s.cfg.WALPath != "" {
		var werr error
		seq, werr = s.walAppend(&corpus.WALRecord{Kind: corpus.WALMerge, BatchID: batchID, Snap: snap, Reports: set.Reports, Keys: keys})
		if werr != nil {
			s.acceptMu.RUnlock()
			if batchID != "" {
				s.forgetBatch(batchID)
			}
			s.cfg.Logf("collector: WAL append: %v", werr)
			http.Error(w, "write-ahead log append failed", http.StatusInternalServerError)
			return
		}
	}
	s.agg.MergeSegment(snap, set.Reports, keys, func(recs [][]byte) {
		s.seqs.markApplied(seq)
		if batchID != "" {
			// Stash the joined records so the merge is revocable — the
			// repair path when a migration chunk's source crashes between
			// delivery and its evict confirmation.
			s.storeBatchRecs(batchID, recs)
		}
	})
	s.acceptMu.RUnlock()
	s.mergesAccepted.Add(1)
	s.mergedRuns.Add(snap.NumF + snap.NumS)
	s.cfg.Logf("collector: merged peer segment (%d runs counted, %d logged)",
		snap.NumF+snap.NumS, len(set.Reports))
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, `{"merged_runs":%d,"merged_logged":%d}`+"\n", snap.NumF+snap.NumS, len(set.Reports))
}

// handleSnapshot exports the collector's live state for shard gateways
// and offline reducers (`cbi merge`).
//
// Without `since`, the response is the full state as a gzip'd merge
// segment — counter snapshot plus retained run-log window, captured
// atomically. When delta serving is on, the response carries
// X-CBI-State-Epoch / X-CBI-State-Version headers naming the exact
// state version exported.
//
// With `?since=<epoch>:<version>`, a client that already holds the
// state at that version asks for just the mutations after it. If the
// epoch matches this boot and the version is still inside the retained
// event history, the response is a gzip'd delta segment
// (application/x-cbi-delta+gzip) whose replay advances the client's
// copy bit-for-bit to the version in the response headers; otherwise
// the full export is returned and the client resyncs from it.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if since := r.URL.Query().Get("since"); since != "" && s.agg.DeltaCapable() {
		s.deltaRequests.Add(1)
		if epoch, ver, ok := parseSince(since); ok {
			if events, from, to, ok := s.agg.DeltaSince(epoch, ver); ok {
				seg := &corpus.DeltaSegment{
					NumSites:    s.cfg.NumSites,
					NumPreds:    s.cfg.NumPreds,
					Fingerprint: s.cfg.Fingerprint,
					Epoch:       epoch,
					From:        from,
					To:          to,
					Events:      events,
				}
				w.Header().Set("Content-Type", "application/x-cbi-delta+gzip")
				w.Header().Set("X-CBI-State-Epoch", strconv.FormatUint(epoch, 10))
				w.Header().Set("X-CBI-State-Version", strconv.FormatUint(to, 10))
				gz := gzip.NewWriter(w)
				if err := corpus.WriteDeltaSegment(gz, seg); err != nil {
					s.cfg.Logf("collector: delta export: %v", err)
					return
				}
				if err := gz.Close(); err != nil {
					s.cfg.Logf("collector: delta export: %v", err)
					return
				}
				s.deltaServed.Add(1)
				return
			}
		}
	}
	snap, recs, keys, epoch, ver := s.agg.SnapshotState(s.cfg.Fingerprint, nil)
	w.Header().Set("Content-Type", "application/x-cbi-merge+gzip")
	if s.agg.DeltaCapable() {
		w.Header().Set("X-CBI-State-Epoch", strconv.FormatUint(epoch, 10))
		w.Header().Set("X-CBI-State-Version", strconv.FormatUint(ver, 10))
	}
	gz := gzip.NewWriter(w)
	if err := corpus.WriteMergeSegmentRecords(gz, snap, s.cfg.NumSites, s.cfg.NumPreds, recs, keys); err != nil {
		s.cfg.Logf("collector: snapshot export: %v", err)
		return
	}
	if err := gz.Close(); err != nil {
		s.cfg.Logf("collector: snapshot export: %v", err)
	}
}

// parseSince parses the `since` query value: "<epoch>:<version>".
func parseSince(v string) (epoch, ver uint64, ok bool) {
	i := strings.IndexByte(v, ':')
	if i < 0 {
		return 0, 0, false
	}
	epoch, err1 := strconv.ParseUint(v[:i], 10, 64)
	ver, err2 := strconv.ParseUint(v[i+1:], 10, 64)
	return epoch, ver, err1 == nil && err2 == nil
}

func (s *Server) handleScores(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	k := 20
	if q := r.URL.Query().Get("k"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &k); err != nil {
			http.Error(w, "bad k", http.StatusBadRequest)
			return
		}
	}
	writeJSON(w, ScoreEntries(core.TopKImportance(s.agg.ToAgg(s.cfg.SiteOf), k)))
}

// ScoreEntries converts a TopKImportance ranking into /v1/scores
// response rows — shared by the collector and the shard gateway so the
// two views marshal identically.
func ScoreEntries(ranked []core.PredScore) []ScoreEntry {
	out := make([]ScoreEntry, len(ranked))
	for i, ps := range ranked {
		out[i] = ScoreEntry{
			Pred:         ps.Pred,
			Importance:   ps.Scores.Importance,
			ImportanceCI: ps.Scores.ImportanceCI,
			Increase:     ps.Scores.Increase,
			IncreaseCI:   ps.Scores.IncreaseCI,
			Failure:      ps.Scores.Failure,
			Context:      ps.Scores.Context,
			F:            ps.Stats.F,
			S:            ps.Stats.S,
			Fobs:         ps.Stats.Fobs,
			Sobs:         ps.Stats.Sobs,
		}
	}
	return out
}

// predCacheGet returns the cached body for a query key when it is
// still current at the given run-log version.
func (s *Server) predCacheGet(key string, version uint64) []byte {
	return s.predCache.get(key, version)
}

// predCachePut stores a computed body (see predictorCache.put for the
// pruning and LRU-backstop rules).
func (s *Server) predCachePut(key string, version uint64, body []byte) {
	s.predCache.put(key, version, body)
}

// handlePredictors serves ranked bug predictors over the retained run
// window, scored by a pluggable engine. Query parameters: engine
// selects the scoring engine (default "eliminate", the paper's
// pipeline — core.Eliminate with affinity lists and thermometers,
// exactly what the batch pipeline produces over the same runs; see
// BuildPredictors and core.EngineNames for the alternatives), k caps
// the ranked list (default 20, 0 = no cap) and affinity caps each
// predictor's affinity list (default 5, 0 = none; default engine
// only). An unknown engine is a 400 naming the registered engines.
// Responses are cached per (engine, k, affinity) and invalidated
// whenever a run is ingested or evicted, so repeated polls between
// ingests never rescan the log — each engine holds its own slot.
func (s *Server) handlePredictors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	k, affinityK := 20, 5
	for _, q := range []struct {
		name string
		dst  *int
	}{{"k", &k}, {"affinity", &affinityK}} {
		if v := r.URL.Query().Get(q.name); v != "" {
			if _, err := fmt.Sscanf(v, "%d", q.dst); err != nil || *q.dst < 0 {
				http.Error(w, "bad "+q.name, http.StatusBadRequest)
				return
			}
		}
	}
	engineName := r.URL.Query().Get("engine")
	if engineName == "" {
		engineName = core.DefaultEngineName
	}
	eng, ok := core.EngineByName(engineName)
	if !ok {
		http.Error(w, UnknownEngineError(engineName), http.StatusBadRequest)
		return
	}
	s.engineRequests.With(engineName).Inc()
	key := fmt.Sprintf("engine=%s&k=%d&affinity=%d", engineName, k, affinityK)

	version := s.agg.LogVersion()
	if body := s.predCacheGet(key, version); body != nil {
		s.predictorsCacheHits.Add(1)
		s.engineCacheHits.With(engineName).Inc()
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}

	recs, version, ok := s.agg.LogView()
	if !ok {
		http.Error(w, "run log disabled (collector started with RunLogSize < 0)", http.StatusNotImplemented)
		return
	}
	reports, err := decodeRecords(recs, s.cfg.NumSites, s.cfg.NumPreds)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	in := inputFromReports(s.cfg.NumSites, s.cfg.NumPreds, s.cfg.SiteOf, reports)
	s.engineCacheMisses.With(engineName).Inc()
	start := time.Now()
	var payload any
	if engineName == core.DefaultEngineName {
		payload = BuildPredictors(in, k, affinityK)
	} else {
		payload = EngineEntries(eng.Score(in, k))
	}
	s.engineScoreSeconds.With(engineName).ObserveDuration(time.Since(start))
	s.predictorsComputed.Add(1)

	body, err := json.Marshal(payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body = append(body, '\n')
	s.predCachePut(key, version, body)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleCompare serves GET /v1/compare?engines=a,b[&k=20]: every named
// engine's top-k ranking over the same retained run window, plus
// pairwise rank agreement (Spearman over the union of the two lists,
// top-K overlap, common-member count). Side-by-side answers from one
// snapshot of the log — the engines are never scored against different
// windows.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	k := 20
	if v := r.URL.Query().Get("k"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &k); err != nil || k < 0 {
			http.Error(w, "bad k", http.StatusBadRequest)
			return
		}
	}
	names, errMsg := ParseEngines(r.URL.Query().Get("engines"))
	if errMsg != "" {
		http.Error(w, errMsg, http.StatusBadRequest)
		return
	}
	recs, _, ok := s.agg.LogView()
	if !ok {
		http.Error(w, "run log disabled (collector started with RunLogSize < 0)", http.StatusNotImplemented)
		return
	}
	reports, err := decodeRecords(recs, s.cfg.NumSites, s.cfg.NumPreds)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	in := inputFromReports(s.cfg.NumSites, s.cfg.NumPreds, s.cfg.SiteOf, reports)
	for _, n := range names {
		s.engineRequests.With(n).Inc()
	}
	writeJSON(w, CompareEngines(in, names, k))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.StatsNow())
}

// StatsNow returns the server's current statistics.
func (s *Server) StatsNow() Stats {
	numF, numS := s.agg.Runs()
	ls := s.agg.LogStats()
	boosted := 0
	if p := s.planStore.Current(); p != nil {
		boosted = len(p.Boosts)
	}
	walBytes, walSegments := s.walUsage()
	return Stats{
		NumSites:            s.cfg.NumSites,
		NumPreds:            s.cfg.NumPreds,
		Fingerprint:         s.cfg.Fingerprint,
		Runs:                numF + numS,
		Failing:             numF,
		Successful:          numS,
		QueueDepth:          len(s.queue),
		BatchesAccepted:     s.batchesAccepted.Value(),
		BatchesRejected:     s.batchesRejected.Value(),
		BatchesDeduped:      s.batchesDeduped.Value(),
		ReportsEnqueued:     s.reportsEnqueued.Value(),
		ReportsApplied:      s.reportsApplied.Value(),
		Snapshots:           s.snapshots.Value(),
		RunLogRuns:          ls.retained,
		RunLogCap:           ls.capRuns,
		RunLogEvicted:       ls.evicted,
		RunLogBytes:         ls.bytes,
		RunLogMaxBytes:      ls.maxBytes,
		PredictorsComputed:  s.predictorsComputed.Value(),
		PredictorsCacheHits: s.predictorsCacheHits.Value(),
		AuthRejected:        s.authRejected.Value(),
		MergesAccepted:      s.mergesAccepted.Value(),
		MergedRuns:          s.mergedRuns.Value(),
		PlanVersion:         s.planStore.Version(),
		Replans:             s.replans.Value(),
		PlanPushes:          s.planPushes.Value(),
		PlanFetches:         s.planFetches.Value(),
		PlanNotModified:     s.planNotModified.Value(),
		PlanBoostedSites:    boosted,
		PlanBatchesCurrent:  s.planBatchesCurrent.Value(),
		PlanBatchesStale:    s.planBatchesStale.Value(),
		APIKeyReloads:       s.apiKeyReloads.Value(),
		WALAppends:          s.walAppends.Value(),
		WALReplayed:         s.walReplayed.Value(),
		WALTornTails:        s.walTornTails.Value(),
		WALTruncations:      s.walTruncations.Value(),
		WALBytes:            walBytes,
		WALSegments:         walSegments,
		DeltaRequests:       s.deltaRequests.Value(),
		DeltaServed:         s.deltaServed.Value(),
		RevokedBatches:      s.revokedBatches.Value(),
		RevokedRuns:         s.revokedRuns.Value(),
	}
}

// handlePlan serves the current sampling plan (GET, open: clients must
// always be able to learn their rates, even mid key-rotation) and
// accepts newer-version plan pushes (POST, authorized: a fleet gateway
// replacing per-shard plans with the fleet-wide one). GET honors
// `?since=<version>` and If-None-Match with 304, so steady-state
// polling costs no body bytes.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		if plan.ServeGet(w, r, s.planStore) {
			s.planNotModified.Add(1)
		} else {
			s.planFetches.Add(1)
		}
	case http.MethodPost:
		if !s.authorize(w, r) {
			return
		}
		p, err := plan.Decode(http.MaxBytesReader(w, r.Body, plan.MaxEncodedBytes), s.cfg.NumSites)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if s.cfg.Fingerprint != 0 && p.Fingerprint != 0 && p.Fingerprint != s.cfg.Fingerprint {
			http.Error(w, fmt.Sprintf("plan fingerprint %d does not match %d",
				p.Fingerprint, s.cfg.Fingerprint), http.StatusBadRequest)
			return
		}
		s.planMu.Lock()
		accepted := s.planStore.Publish(p)
		if accepted {
			s.planPushes.Add(1)
			s.persistPlanLocked(p)
		}
		s.planMu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if accepted {
			s.cfg.Logf("collector: accepted pushed sampling plan v%d (%s)", p.Version, p.Source)
			w.WriteHeader(http.StatusAccepted)
		}
		fmt.Fprintf(w, `{"accepted":%v,"version":%d}`+"\n", accepted, s.planStore.Version())
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.acceptMu.RLock()
	ok := s.accepting
	s.acceptMu.RUnlock()
	if !ok {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// Serve accepts HTTP connections on l until Shutdown or Close.
func (s *Server) Serve(l net.Listener) error {
	s.srvMu.Lock()
	srv := &http.Server{Handler: s.Handler()}
	s.httpSrv = srv
	s.srvMu.Unlock()
	err := srv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// httpServer returns the HTTP server, if Serve was called.
func (s *Server) httpServer() *http.Server {
	s.srvMu.Lock()
	defer s.srvMu.Unlock()
	return s.httpSrv
}

// ListenAndServe listens on addr and serves until Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.cfg.Logf("collector: listening on %s", l.Addr())
	return s.Serve(l)
}

// stopAccepting flips the accepting flag; returns true on the first
// call. After it returns, no handler can enqueue to the queue.
func (s *Server) stopAccepting() bool {
	s.acceptMu.Lock()
	defer s.acceptMu.Unlock()
	was := s.accepting
	s.accepting = false
	return was
}

// Shutdown drains gracefully: it stops accepting new batches, waits for
// the queue to empty, persists a final snapshot (when configured), and
// closes the HTTP listener.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.stopAccepting() {
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.stopped.Do(func() { close(s.die) })
	s.bg.Wait()

	var err error
	if s.cfg.SnapshotPath != "" {
		err = s.SnapshotNow()
	}
	s.closeWAL()
	if srv := s.httpServer(); srv != nil {
		if herr := srv.Shutdown(ctx); err == nil {
			err = herr
		}
	}
	s.cfg.Logf("collector: drained and stopped (%d reports applied)", s.reportsApplied.Value())
	return err
}

// closeWAL closes the current WAL segment file; later appends fail.
func (s *Server) closeWAL() {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
}

// Close hard-stops the server without draining the queue or writing a
// final snapshot — the moral equivalent of kill -9, used to test
// restart-from-snapshot behaviour.
func (s *Server) Close() error {
	s.stopAccepting()
	s.stopped.Do(func() { close(s.die) })
	s.workers.Wait()
	s.bg.Wait()
	s.closeWAL()
	if srv := s.httpServer(); srv != nil {
		return srv.Close()
	}
	return nil
}
