package collector

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cbi/internal/corpus"
	"cbi/internal/plan"
	"cbi/internal/report"
)

// Client ships feedback reports to a collector server. It batches
// reports, compresses batches, and retries transient failures (429
// backpressure, 5xx, network errors) with exponential backoff. Each
// batch carries a stable random id so the server can deduplicate
// retries whose original ack was lost in transit — without it,
// at-least-once delivery would silently double-count reports. Safe
// for concurrent use — a parallel harness can stream from all workers
// through one client.
type Client struct {
	base string
	hc   *http.Client

	numSites, numPreds int

	batchSize   int
	maxRetries  int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	gzipOn      bool

	// Key is the API key presented as "Authorization: Bearer <Key>" on
	// write requests when the collector (or the shard router in front
	// of it) requires one. Empty means unauthenticated.
	Key string
	// clientID is a stable identity sent as X-CBI-Client-ID so a shard
	// router can consistently partition this client's traffic.
	clientID string

	mu    sync.Mutex
	batch []*report.Report

	// plan is the most recent sampling plan fetched from /v1/plan; its
	// version stamps outgoing batches so the collector can attribute
	// counts to the rates that produced them.
	plan atomic.Pointer[plan.Plan]

	submitted atomic.Int64 // reports acked by the server
	retries   atomic.Int64 // transient failures retried
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithBatchSize sets the flush threshold in reports (default 64).
func WithBatchSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.batchSize = n
		}
	}
}

// WithHTTPClient substitutes the HTTP client (default: 30s timeout).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithRetry sets the retry budget per batch and the initial backoff,
// which doubles per attempt up to 10s (defaults: 5 retries, 50ms).
func WithRetry(maxRetries int, base time.Duration) ClientOption {
	return func(c *Client) {
		c.maxRetries = maxRetries
		if base > 0 {
			c.baseBackoff = base
		}
	}
}

// WithGzip toggles batch compression (default on).
func WithGzip(on bool) ClientOption {
	return func(c *Client) { c.gzipOn = on }
}

// WithAPIKey sets the API key presented on write requests.
func WithAPIKey(key string) ClientOption {
	return func(c *Client) { c.Key = key }
}

// WithClientID pins the routing identity sent as X-CBI-Client-ID
// (default: a random id per Client). A shard router hashes it to pick
// this client's collector backend.
func WithClientID(id string) ClientOption {
	return func(c *Client) { c.clientID = id }
}

// NewClient builds a client for the collector at baseURL (e.g.
// "http://localhost:7575"). numSites and numPreds must match the
// collector's configured dimensions.
func NewClient(baseURL string, numSites, numPreds int, opts ...ClientOption) *Client {
	c := &Client{
		base:        baseURL,
		hc:          &http.Client{Timeout: 30 * time.Second},
		numSites:    numSites,
		numPreds:    numPreds,
		batchSize:   64,
		maxRetries:  5,
		baseBackoff: 50 * time.Millisecond,
		maxBackoff:  10 * time.Second,
		gzipOn:      true,
		clientID:    randomID(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// randomID returns a 24-hex-char random identifier (empty only if the
// system entropy source fails).
func randomID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return hex.EncodeToString(b[:])
}

// Add buffers one report, flushing the batch to the server when it
// reaches the batch size.
func (c *Client) Add(ctx context.Context, r *report.Report) error {
	c.mu.Lock()
	c.batch = append(c.batch, r)
	if len(c.batch) < c.batchSize {
		c.mu.Unlock()
		return nil
	}
	batch := c.batch
	c.batch = nil
	c.mu.Unlock()
	return c.send(ctx, batch)
}

// Flush sends any buffered reports.
func (c *Client) Flush(ctx context.Context) error {
	c.mu.Lock()
	batch := c.batch
	c.batch = nil
	c.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	return c.send(ctx, batch)
}

// SubmitSet streams a whole report set in batch-size chunks.
func (c *Client) SubmitSet(ctx context.Context, set *report.Set) error {
	if set.NumSites != c.numSites || set.NumPreds != c.numPreds {
		return fmt.Errorf("collector: set dimensions %dx%d do not match client %dx%d",
			set.NumSites, set.NumPreds, c.numSites, c.numPreds)
	}
	for lo := 0; lo < len(set.Reports); lo += c.batchSize {
		hi := lo + c.batchSize
		if hi > len(set.Reports) {
			hi = len(set.Reports)
		}
		if err := c.send(ctx, set.Reports[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// Submitted returns the number of reports acked by the server.
func (c *Client) Submitted() int64 { return c.submitted.Load() }

// Retries returns the number of transient failures retried.
func (c *Client) Retries() int64 { return c.retries.Load() }

// send encodes one batch and POSTs it, retrying transient failures.
func (c *Client) send(ctx context.Context, batch []*report.Report) error {
	set := &report.Set{NumSites: c.numSites, NumPreds: c.numPreds, Reports: batch}
	var buf bytes.Buffer
	if c.gzipOn {
		gz := gzip.NewWriter(&buf)
		if err := set.MarshalBinary(gz); err != nil {
			return err
		}
		if err := gz.Close(); err != nil {
			return err
		}
	} else if err := set.MarshalBinary(&buf); err != nil {
		return err
	}
	payload := buf.Bytes()

	// A batch id, stable across retry attempts, lets the server
	// recognize re-deliveries: a POST can land server-side while the
	// response is lost (timeout, connection reset), and without the id
	// the retry would ingest the whole batch a second time.
	err := c.deliver(ctx, "/v1/reports", "application/x-cbi-reports",
		payload, len(batch), randomID())
	if err != nil {
		return fmt.Errorf("collector: submitting batch of %d: %v", len(batch), err)
	}
	return nil
}

// PushMerge ships a counter snapshot plus its run-log segment to the
// collector's /v1/merge endpoint as one gzip'd merge segment, with the
// same retry/dedup discipline as report batches. It is how a shard (or
// an offline reducer) folds its state into a peer.
func (c *Client) PushMerge(ctx context.Context, snap *corpus.AggSnapshot, set *report.Set) error {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if err := corpus.WriteMergeSegment(gz, snap, set); err != nil {
		return err
	}
	if err := gz.Close(); err != nil {
		return err
	}
	err := c.deliver(ctx, "/v1/merge", "application/x-cbi-merge",
		buf.Bytes(), len(set.Reports), randomID())
	if err != nil {
		return fmt.Errorf("collector: pushing merge of %d runs: %v", len(set.Reports), err)
	}
	return nil
}

// deliver POSTs one gzip'd payload with retries: exponential backoff
// doubling from baseBackoff, overridden by a server Retry-After hint on
// 429/503, capped at maxBackoff.
func (c *Client) deliver(ctx context.Context, path, contentType string, payload []byte, n int, batchID string) error {
	backoff := c.baseBackoff
	for attempt := 0; ; attempt++ {
		retryable, err := c.post(ctx, path, contentType, payload, n, batchID)
		if err == nil {
			return nil
		}
		if !retryable || attempt >= c.maxRetries {
			return err
		}
		c.retries.Add(1)
		delay := backoff
		// An explicit Retry-After from a 429/503 is the server telling
		// us when capacity returns; honor it (even zero — "now") rather
		// than guessing with backoff.
		if he, ok := err.(*httpError); ok && he.hasRetryAfter &&
			(he.status == http.StatusTooManyRequests || he.status == http.StatusServiceUnavailable) {
			delay = he.retryAfter
		}
		if delay > c.maxBackoff {
			delay = c.maxBackoff
		}
		backoff *= 2
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// httpError is a non-2xx response; it keeps the Retry-After hint.
type httpError struct {
	status        int
	body          string
	retryAfter    time.Duration
	hasRetryAfter bool
}

func (e *httpError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.status, e.body)
}

// parseRetryAfter handles both RFC 9110 forms: delta-seconds and an
// HTTP-date.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		d := at.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// post performs one POST attempt; the bool reports retryability.
func (c *Client) post(ctx context.Context, path, contentType string, payload []byte, n int, batchID string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+path, bytes.NewReader(payload))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", contentType)
	if batchID != "" {
		req.Header.Set("X-CBI-Batch-ID", batchID)
	}
	if c.clientID != "" {
		req.Header.Set("X-CBI-Client-ID", c.clientID)
	}
	if c.Key != "" {
		req.Header.Set("Authorization", "Bearer "+c.Key)
	}
	if c.gzipOn || path == "/v1/merge" {
		req.Header.Set("Content-Encoding", "gzip")
	}
	if p := c.plan.Load(); p != nil {
		req.Header.Set("X-CBI-Plan-Version", strconv.FormatUint(p.Version, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Network-level failures (refused, reset, timeout) are the
		// retryable case a flaky deployment hits constantly.
		return true, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		c.submitted.Add(int64(n))
		return false, nil
	}
	he := &httpError{status: resp.StatusCode, body: string(bytes.TrimSpace(body))}
	he.retryAfter, he.hasRetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	retryable := resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500
	return retryable, he
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.getJSON(ctx, "/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Scores fetches the live top-k ranking from GET /v1/scores.
func (c *Client) Scores(ctx context.Context, k int) ([]ScoreEntry, error) {
	var out []ScoreEntry
	if err := c.getJSON(ctx, fmt.Sprintf("/v1/scores?k=%d", k), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Predictors fetches the live cause-isolation ranking from
// GET /v1/predictors: at most k ranked predictors (0 = no cap), each
// with at most affinityK affinity entries (0 = none).
func (c *Client) Predictors(ctx context.Context, k, affinityK int) ([]PredictorEntry, error) {
	var out []PredictorEntry
	path := fmt.Sprintf("/v1/predictors?k=%d&affinity=%d", k, affinityK)
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// EnginePredictors fetches GET /v1/predictors?engine=<name>: the named
// scoring engine's ranked predicate list (k caps it, 0 = no cap). The
// default engine's richer entries — thermometers, affinity lists —
// are fetched with Predictors instead. An unknown engine surfaces the
// server's 400, which names the registered engines.
func (c *Client) EnginePredictors(ctx context.Context, engine string, k int) ([]EngineEntry, error) {
	var out []EngineEntry
	path := fmt.Sprintf("/v1/predictors?engine=%s&k=%d", url.QueryEscape(engine), k)
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Compare fetches GET /v1/compare: each named engine's top-k ranking
// over the same run window plus pairwise rank agreement.
func (c *Client) Compare(ctx context.Context, engines []string, k int) (*CompareResponse, error) {
	var out CompareResponse
	path := fmt.Sprintf("/v1/compare?engines=%s&k=%d", url.QueryEscape(strings.Join(engines, ",")), k)
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthy reports whether GET /healthz returns 200.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// FetchPlan fetches the current sampling plan from GET /v1/plan,
// conditionally: when the client already holds a plan, the request
// carries `?since=<version>` and If-None-Match, and a 304 (plan
// unchanged) returns (current, false, nil) without a body transfer.
// A newly fetched plan is remembered: CurrentPlan returns it and every
// subsequent batch is stamped with its version.
func (c *Client) FetchPlan(ctx context.Context) (p *plan.Plan, changed bool, err error) {
	cur := c.plan.Load()
	path := "/v1/plan"
	if cur != nil {
		path = fmt.Sprintf("/v1/plan?since=%d", cur.Version)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return cur, false, err
	}
	if cur != nil {
		req.Header.Set("If-None-Match", cur.ETag())
	}
	if c.clientID != "" {
		req.Header.Set("X-CBI-Client-ID", c.clientID)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return cur, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		io.Copy(io.Discard, resp.Body)
		return cur, false, nil
	case http.StatusOK:
		next, err := plan.Decode(resp.Body, c.numSites)
		if err != nil {
			return cur, false, err
		}
		// Keep the newest plan even if responses race out of order.
		if cur != nil && next.Version <= cur.Version {
			return cur, false, nil
		}
		c.plan.Store(next)
		return next, true, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return cur, false, fmt.Errorf("collector: GET %s: %d: %s", path, resp.StatusCode, bytes.TrimSpace(body))
	}
}

// CurrentPlan returns the most recently fetched sampling plan (nil
// before the first successful FetchPlan).
func (c *Client) CurrentPlan() *plan.Plan { return c.plan.Load() }

// PlanFunc adapts the client's current plan to the harness's
// Config.Plan hook: it returns the fetched plan's version and rates
// (0, nil before the first fetch) without any network traffic — pair
// it with FollowPlan or explicit FetchPlan calls to keep it fresh.
func (c *Client) PlanFunc() func() (version uint64, rates []float64) {
	return func() (uint64, []float64) {
		p := c.plan.Load()
		if p == nil {
			return 0, nil
		}
		return p.Version, p.Rates
	}
}

// FollowPlan polls /v1/plan every interval (conditionally, so an
// unchanged plan costs a 304) until the returned stop function is
// called or ctx is done. Fetch errors are transient by construction —
// the client just keeps its current plan — so they are not reported.
func (c *Client) FollowPlan(ctx context.Context, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-done:
				return
			case <-t.C:
				c.FetchPlan(ctx)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("collector: GET %s: %d: %s", path, resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
