package collector

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"cbi/internal/core"
	"cbi/internal/report"
)

// TestLiveBatchEquivalence is the cause-isolation analogue of the
// /v1/scores equivalence test: a full subject corpus is streamed over
// HTTP by concurrent clients (arrival order nondeterministic, batch
// boundaries all different), and the /v1/predictors output must be
// element-for-element identical — predicate ids, elimination order,
// Increase, confidence intervals, Importance, thermometers, and
// affinity lists — to the batch pipeline run over the same corpus.
// CI runs it under -race with -count=2.
func TestLiveBatchEquivalence(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()

	srv, err := New(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	const numClients = 8
	var wg sync.WaitGroup
	errs := make(chan error, numClients)
	clients := make([]*Client, numClients)
	for w := 0; w < numClients; w++ {
		clients[w] = NewClient(base, in.Set.NumSites, in.Set.NumPreds,
			WithBatchSize(5+w*7))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := w; i < len(in.Set.Reports); i += numClients {
				if err := clients[w].Add(ctx, in.Set.Reports[i]); err != nil {
					errs <- err
					return
				}
			}
			errs <- clients[w].Flush(ctx)
		}(w)
	}
	wg.Wait()
	for w := 0; w < numClients; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, srv, int64(len(in.Set.Reports)))

	ctx := context.Background()
	const k, affinityK = 25, 4
	got, err := clients[0].Predictors(ctx, k, affinityK)
	if err != nil {
		t.Fatal(err)
	}
	want := BuildPredictors(in, k, affinityK)
	if len(want) == 0 {
		t.Fatal("batch cause isolation selected no predictors; test is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("live selected %d predictors, batch %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("predictor %d diverges between live and batch:\nlive:  %+v\nbatch: %+v",
				i, got[i], want[i])
		}
	}

	// The retained window covers the whole corpus (no eviction at the
	// default cap), and nothing was double-counted.
	st := srv.StatsNow()
	if st.RunLogRuns != len(in.Set.Reports) || st.RunLogEvicted != 0 {
		t.Fatalf("run log retained %d runs with %d evictions, want %d and 0",
			st.RunLogRuns, st.RunLogEvicted, len(in.Set.Reports))
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
}

// TestBuildPredictorsMatchesEliminate pins the shared builder to
// core.Eliminate itself: same predicates, same order, same initial and
// effective scores — so the endpoint's equivalence to the builder is
// transitively an equivalence to the paper's algorithm.
func TestBuildPredictorsMatchesEliminate(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()

	const k = 25
	entries := BuildPredictors(in, k, 0)
	ranked := core.Eliminate(in, core.ElimOptions{MaxPredictors: k})
	if len(entries) != len(ranked) {
		t.Fatalf("builder selected %d predictors, Eliminate %d", len(entries), len(ranked))
	}
	for i, rk := range ranked {
		e := entries[i]
		if e.Pred != rk.Pred || e.Round != rk.Round {
			t.Fatalf("rank %d: builder pred %d round %d, Eliminate pred %d round %d",
				i, e.Pred, e.Round, rk.Pred, rk.Round)
		}
		if e.Initial.Importance != rk.InitialScores.Importance ||
			e.Initial.Increase != rk.InitialScores.Increase ||
			e.Initial.IncreaseCI != rk.InitialScores.IncreaseCI ||
			e.Effective.Importance != rk.EffectiveScores.Importance ||
			e.Effective.F != rk.Effective.F {
			t.Fatalf("rank %d: builder scores diverge from Eliminate", i)
		}
	}
}

// TestRunLogEviction fills the run log far past its retention cap and
// checks the collector's whole surface stays consistent with a batch
// run over only the retained runs: run counts, scores, and predictors
// all describe exactly the newest cap runs — no double-count from the
// evicted prefix, no stale membership in the log.
func TestRunLogEviction(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()

	const capRuns = 350
	cfg := serverConfig(t)
	cfg.RunLogSize = capRuns
	cfg.Workers = 1 // serialize application so the retained window is deterministic
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := NewClient(ts.URL, in.Set.NumSites, in.Set.NumPreds, WithBatchSize(32))
	ctx := context.Background()
	if err := client.SubmitSet(ctx, in.Set); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, srv, int64(len(in.Set.Reports)))

	retained := in.Set.Reports[len(in.Set.Reports)-capRuns:]
	retIn := core.Input{
		Set: &report.Set{NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds,
			Reports: retained},
		SiteOf: in.SiteOf,
	}
	wantAgg := core.Aggregate(retIn)

	st := srv.StatsNow()
	if st.RunLogRuns != capRuns || int(st.RunLogEvicted) != len(in.Set.Reports)-capRuns {
		t.Fatalf("run log retained %d, evicted %d; want %d and %d",
			st.RunLogRuns, st.RunLogEvicted, capRuns, len(in.Set.Reports)-capRuns)
	}
	if int(st.Runs) != capRuns || int(st.Failing) != wantAgg.NumF || int(st.Successful) != wantAgg.NumS {
		t.Fatalf("stats (%d runs, %d failing, %d successful) disagree with retained window (%d, %d, %d)",
			st.Runs, st.Failing, st.Successful, capRuns, wantAgg.NumF, wantAgg.NumS)
	}
	if int(st.ReportsApplied) != len(in.Set.Reports) {
		t.Fatalf("ReportsApplied = %d, want %d (eviction must not rewrite ingest totals)",
			st.ReportsApplied, len(in.Set.Reports))
	}

	const k, affinityK = 25, 4
	scores, err := client.Scores(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	if wantScores := wantTopK(in, retained, k); !reflect.DeepEqual(scores, wantScores) {
		t.Fatal("live /v1/scores diverges from batch pipeline over the retained window")
	}

	preds, err := client.Predictors(ctx, k, affinityK)
	if err != nil {
		t.Fatal(err)
	}
	want := BuildPredictors(retIn, k, affinityK)
	if len(want) == 0 {
		t.Fatal("batch over retained window selected no predictors; test is vacuous")
	}
	if !reflect.DeepEqual(preds, want) {
		t.Fatalf("live /v1/predictors diverges from batch over the retained window:\nlive:  %+v\nbatch: %+v",
			preds, want)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestPredictorsCacheInvalidation: repeated polls between ingests are
// served from cache; any ingested run invalidates it.
func TestPredictorsCacheInvalidation(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	srv, err := New(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, r := range in.Set.Reports[:200] {
		srv.Ingest(r)
	}
	get := func() []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/predictors?k=10&affinity=2")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/predictors = %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	first := get()
	second := get()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached poll returned different bytes")
	}
	st := srv.StatsNow()
	if st.PredictorsComputed != 1 || st.PredictorsCacheHits != 1 {
		t.Fatalf("computed=%d hits=%d after two identical polls, want 1 and 1",
			st.PredictorsComputed, st.PredictorsCacheHits)
	}

	// A new run invalidates; a different query shape also recomputes.
	srv.Ingest(in.Set.Reports[200])
	get()
	if st := srv.StatsNow(); st.PredictorsComputed != 2 {
		t.Fatalf("computed=%d after post-ingest poll, want 2", st.PredictorsComputed)
	}
	resp, err := http.Get(ts.URL + "/v1/predictors?k=5&affinity=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := srv.StatsNow(); st.PredictorsComputed != 3 {
		t.Fatalf("computed=%d after changed-shape poll, want 3", st.PredictorsComputed)
	}
}

// TestPredictorsDisabledAndBadParams covers the rejection paths.
func TestPredictorsDisabledAndBadParams(t *testing.T) {
	cfg := serverConfig(t)
	cfg.RunLogSize = -1
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/v1/predictors"); got != http.StatusNotImplemented {
		t.Errorf("predictors with run log disabled = %d, want 501", got)
	}
	if st := srv.StatsNow(); st.RunLogCap != 0 || st.RunLogRuns != 0 {
		t.Errorf("disabled run log reports cap=%d runs=%d, want 0/0", st.RunLogCap, st.RunLogRuns)
	}

	srv2, err := New(serverConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	for _, path := range []string{
		"/v1/predictors?k=bogus",
		"/v1/predictors?k=-1",
		"/v1/predictors?affinity=x",
		"/v1/predictors?affinity=-2",
	} {
		resp, err := http.Get(ts2.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
		}
	}
}
