// Package collector implements the paper's deployment model as a
// networked system: thousands of instrumented clients ship feedback
// reports to a central server, which aggregates them incrementally and
// serves a live Importance ranking (§2's "central database" made
// concrete). The server never stores reports — ingestion folds each
// one into sharded aggregate counters whose totals are exactly what
// core.Aggregate would compute over the same report set, so live
// rankings match the batch pipeline bit for bit.
package collector

import (
	"sync"
	"sync/atomic"

	"cbi/internal/core"
	"cbi/internal/corpus"
	"cbi/internal/report"
)

// shardedAgg maintains the per-site and per-predicate tallies of
// core.AggregateSubset under concurrent ingestion. Counters are striped
// into contiguous blocks, each guarded by its own mutex; because report
// id lists are sorted ascending, an applier walks each list taking each
// stripe lock at most once.
//
// A top-level RWMutex makes whole reports atomic with respect to
// readers: appliers hold the read side for the duration of one report,
// snapshots and score queries take the write side, so they never
// observe a half-applied report.
type shardedAgg struct {
	numSites, numPreds   int
	siteBlock, predBlock int // stripe widths (ids per stripe)

	gate        sync.RWMutex
	siteStripes []sync.Mutex
	predStripes []sync.Mutex

	// Guarded by the stripe owning the index.
	fObsSite, sObsSite []int64
	fPred, sPred       []int64

	// Run counts, updated atomically after a report's counters land.
	numF, numS atomic.Int64
}

func newShardedAgg(numSites, numPreds, shards int) *shardedAgg {
	if shards < 1 {
		shards = 1
	}
	a := &shardedAgg{
		numSites:    numSites,
		numPreds:    numPreds,
		siteBlock:   blockSize(numSites, shards),
		predBlock:   blockSize(numPreds, shards),
		siteStripes: make([]sync.Mutex, shards),
		predStripes: make([]sync.Mutex, shards),
		fObsSite:    make([]int64, numSites),
		sObsSite:    make([]int64, numSites),
		fPred:       make([]int64, numPreds),
		sPred:       make([]int64, numPreds),
	}
	return a
}

func blockSize(dim, shards int) int {
	b := (dim + shards - 1) / shards
	if b < 1 {
		b = 1
	}
	return b
}

// Apply folds one report into the aggregate. Safe for concurrent use.
func (a *shardedAgg) Apply(r *report.Report) {
	a.gate.RLock()
	defer a.gate.RUnlock()

	siteCounts, predCounts := a.sObsSite, a.sPred
	if r.Failed {
		siteCounts, predCounts = a.fObsSite, a.fPred
	}
	bumpStriped(a.siteStripes, a.siteBlock, siteCounts, r.ObservedSites)
	bumpStriped(a.predStripes, a.predBlock, predCounts, r.TruePreds)

	if r.Failed {
		a.numF.Add(1)
	} else {
		a.numS.Add(1)
	}
}

// bumpStriped increments counts[id] for each id in the ascending list,
// acquiring each stripe's lock once as the walk crosses stripes.
func bumpStriped(stripes []sync.Mutex, block int, counts []int64, ids []int32) {
	held := -1
	for _, id := range ids {
		st := int(id) / block
		if st != held {
			if held >= 0 {
				stripes[held].Unlock()
			}
			stripes[st].Lock()
			held = st
		}
		counts[id]++
	}
	if held >= 0 {
		stripes[held].Unlock()
	}
}

// Runs returns the (failing, successful) run counts applied so far.
func (a *shardedAgg) Runs() (numF, numS int64) {
	return a.numF.Load(), a.numS.Load()
}

// Snapshot captures a consistent copy of all counters.
func (a *shardedAgg) Snapshot(fingerprint uint64) *corpus.AggSnapshot {
	a.gate.Lock()
	defer a.gate.Unlock()
	return &corpus.AggSnapshot{
		NumSites:    a.numSites,
		NumPreds:    a.numPreds,
		Fingerprint: fingerprint,
		NumF:        a.numF.Load(),
		NumS:        a.numS.Load(),
		FobsSite:    append([]int64{}, a.fObsSite...),
		SobsSite:    append([]int64{}, a.sObsSite...),
		FPred:       append([]int64{}, a.fPred...),
		SPred:       append([]int64{}, a.sPred...),
	}
}

// Restore overwrites the counters from a snapshot. Callers must ensure
// no concurrent Apply (it is used before a server starts ingesting).
func (a *shardedAgg) Restore(snap *corpus.AggSnapshot) {
	a.gate.Lock()
	defer a.gate.Unlock()
	copy(a.fObsSite, snap.FobsSite)
	copy(a.sObsSite, snap.SobsSite)
	copy(a.fPred, snap.FPred)
	copy(a.sPred, snap.SPred)
	a.numF.Store(snap.NumF)
	a.numS.Store(snap.NumS)
}

// ToAgg converts the live counters into a core.Agg, attaching each
// predicate's site-observation counts via siteOf — the exact shape
// core.Aggregate produces, so all of core's scoring applies unchanged.
func (a *shardedAgg) ToAgg(siteOf []int32) *core.Agg {
	a.gate.Lock()
	defer a.gate.Unlock()
	agg := &core.Agg{
		Stats: make([]core.Stats, a.numPreds),
		NumF:  int(a.numF.Load()),
		NumS:  int(a.numS.Load()),
	}
	for p := 0; p < a.numPreds; p++ {
		site := siteOf[p]
		agg.Stats[p] = core.Stats{
			F:    int(a.fPred[p]),
			S:    int(a.sPred[p]),
			Fobs: int(a.fObsSite[site]),
			Sobs: int(a.sObsSite[site]),
		}
	}
	return agg
}
