// Package collector implements the paper's deployment model as a
// networked system: thousands of instrumented clients ship feedback
// reports to a central server, which aggregates them incrementally and
// serves live rankings (§2's "central database" made concrete). The
// server keeps two complementary representations of the stream: sharded
// aggregate counters whose totals are exactly what core.Aggregate would
// compute over the same report set (serving the pre-elimination
// /v1/scores ranking), and a compact run-level membership log that
// records which predicates each retained run observed true (serving the
// full /v1/predictors cause-isolation ranking — elimination discards
// runs, so counters alone cannot drive it). The log is bounded by a
// retention cap; when a run is evicted, its contribution is subtracted
// from the counters, so counters and log always describe exactly the
// retained window.
//
// The server's counters live in an internal/obs registry exported at
// GET /metrics (Prometheus text format, documented in METRICS.md);
// the /v1/stats JSON reads the same registry objects, so the two
// surfaces cannot disagree.
package collector

import (
	"bytes"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"cbi/internal/core"
	"cbi/internal/corpus"
	"cbi/internal/report"
)

// shardedAgg maintains the per-site and per-predicate tallies of
// core.AggregateSubset under concurrent ingestion, plus the run-level
// membership log. Per-id counters are bumped with *plain* adds under
// contiguous-range stripe locks: a report's id lists are ascending, so
// each list crosses each stripe at most once — one lock acquisition
// per stripe touched, then branch-free in-cache adds. Plain adds beat
// per-id atomics decisively on the hot path (a dense report can carry
// thousands of ids, and a LOCK-prefixed add costs several times a
// plain one), and the stripe count keeps parallel appliers from
// convoying. Run totals stripe across cache-line padded cells (see
// runCounts) since every report hits one of only two of them.
//
// A top-level RWMutex makes whole reports atomic with respect to
// readers: appliers hold the read side for the duration of one report
// (counter bumps, log append, and eviction decrement together), while
// snapshots and score queries take the write side, so they never
// observe a half-applied report or a log/counter mismatch — and, since
// readers exclude every applier, they read the counter arrays without
// touching the stripe locks at all.
type shardedAgg struct {
	numSites, numPreds int

	gate sync.RWMutex

	// Written with plain adds under gate.RLock + the covering stripe
	// lock; read plainly under gate.Lock.
	fObsSite, sObsSite []int64
	fPred, sPred       []int64

	// Counter stripe locks: stripe s covers ids [s*block, (s+1)*block).
	siteMu, predMu       []stripeMutex
	siteBlock, predBlock int

	// Run counts, striped to keep parallel appliers off one cache line.
	runs *runCounts

	// encPool recycles record-encode scratch buffers (*[]byte) for the
	// ingest path that hasn't pre-encoded its reports.
	encPool sync.Pool
	// foldPool recycles batched-fold workspaces (*foldScratch).
	foldPool sync.Pool

	// logMu guards log; nil log means run-level retention is disabled
	// (counters only, /v1/predictors unavailable).
	logMu sync.Mutex
	log   *runLog

	// Delta-sync state, guarded by logMu alongside the log it describes.
	// epoch is a random per-boot scope for state versions; stateVer
	// counts every state mutation; hist retains the recent mutations as
	// delta events so GET /v1/snapshot?since= can replay just the
	// changes. nil hist disables delta serving.
	epoch    uint64
	stateVer uint64
	hist     *deltaHist

	// maxAge, when positive, additionally evicts retained runs older
	// than the cap; now is the retention clock (time.Now outside tests).
	maxAge time.Duration
	now    func() time.Time
}

// defaultDeltaHistory is the default delta-event retention: enough to
// cover many polling intervals of heavy ingest while bounding memory
// (events are tiny except merge folds, which the byte cap bounds).
const defaultDeltaHistory = 1 << 16

// deltaHist retains the most recent state-mutation events. The event at
// offset i (from the oldest) advanced the state from version base+i to
// base+i+1, where base = stateVer - len(history).
type deltaHist struct {
	maxEvents int
	maxBytes  int64
	evs       []corpus.DeltaEvent
	head      int // index of the oldest retained event
	bytes     int64
}

func (h *deltaHist) add(ev corpus.DeltaEvent) {
	h.evs = append(h.evs, ev)
	h.bytes += int64(len(ev.Data))
	for (h.maxEvents > 0 && len(h.evs)-h.head > h.maxEvents) ||
		(h.maxBytes > 0 && h.bytes > h.maxBytes && len(h.evs)-h.head > 1) {
		h.bytes -= int64(len(h.evs[h.head].Data))
		h.evs[h.head] = corpus.DeltaEvent{}
		h.head++
	}
	// Compact the dead prefix once it dominates the backing array.
	if h.head > 1024 && h.head*2 >= len(h.evs) {
		h.evs = append([]corpus.DeltaEvent(nil), h.evs[h.head:]...)
		h.head = 0
	}
}

func (h *deltaHist) len() int { return len(h.evs) - h.head }

// since returns a copy of the events from the given offset (0 = oldest
// retained) onward; the copies share the immutable Data bytes.
func (h *deltaHist) since(offset int) []corpus.DeltaEvent {
	return append([]corpus.DeltaEvent(nil), h.evs[h.head+offset:]...)
}

func (h *deltaHist) reset() {
	h.evs, h.head, h.bytes = nil, 0, 0
}

func newShardedAgg(numSites, numPreds, shards, runLogCap int, runLogMaxBytes int64, maxAge time.Duration, now func() time.Time) *shardedAgg {
	if shards < 1 {
		shards = 1
	}
	if now == nil {
		now = time.Now
	}
	a := &shardedAgg{
		numSites:  numSites,
		numPreds:  numPreds,
		fObsSite:  make([]int64, numSites),
		sObsSite:  make([]int64, numSites),
		fPred:     make([]int64, numPreds),
		sPred:     make([]int64, numPreds),
		siteMu:    make([]stripeMutex, shards),
		predMu:    make([]stripeMutex, shards),
		siteBlock: blockFor(numSites, shards),
		predBlock: blockFor(numPreds, shards),
		runs:      newRunCounts(shards),
		maxAge:    maxAge,
		now:       now,
	}
	if runLogCap > 0 {
		a.log = newRunLog(runLogCap, runLogMaxBytes)
	}
	// Every boot gets a fresh random epoch even when delta serving is
	// off: range exports and evicts scope their sequence watermarks to
	// it, so a migration controller can tell a restarted source (whose
	// sequences renumbered) from a live one.
	a.epoch = newEpoch()
	return a
}

// stripeMutex is a cache-line padded mutex guarding one contiguous
// range of a counter array.
type stripeMutex struct {
	sync.Mutex
	_ [56]byte
}

// blockFor sizes a stripe's id range so `stripes` stripes cover `dim`.
func blockFor(dim, stripes int) int {
	b := (dim + stripes - 1) / stripes
	if b < 1 {
		b = 1
	}
	return b
}

// addStriped lands delta onto dst[id] for every id in the ascending
// list, taking each covering stripe lock exactly once. blockFor
// guarantees stripes*block >= dim, so id/block always indexes a stripe.
func addStriped(dst []int64, ids []int32, delta int64, mus []stripeMutex, block int) {
	i := 0
	for i < len(ids) {
		s := int(ids[i]) / block
		hi := int32((s + 1) * block)
		mus[s].Lock()
		for i < len(ids) && ids[i] < hi {
			dst[ids[i]] += delta
			i++
		}
		mus[s].Unlock()
	}
}

// runCounts holds the failing/successful run totals striped across
// cache-line padded cells. Every report increments exactly one of two
// counters, so a single atomic pair would serialize all appliers on one
// line; cells plus a sync.Pool for P-local cell affinity spread that
// traffic. Readers sum the cells.
type runCounts struct {
	cells []runCountCell
	pool  sync.Pool // *runCountCell, P-local affinity
	next  atomic.Uint32
}

type runCountCell struct {
	f, s atomic.Int64
	_    [48]byte // pad to a 64-byte cache line
}

func newRunCounts(stripes int) *runCounts {
	if stripes < 1 {
		stripes = 1
	}
	return &runCounts{cells: make([]runCountCell, stripes)}
}

// BumpN adds batch totals through the calling goroutine's pooled cell.
// Callers must hold gate.RLock (concurrent with other bumps) or
// stronger.
func (c *runCounts) BumpN(f, s int64) {
	v := c.pool.Get()
	if v == nil {
		v = &c.cells[int(c.next.Add(1))%len(c.cells)]
	}
	cell := v.(*runCountCell)
	if f != 0 {
		cell.f.Add(f)
	}
	if s != 0 {
		cell.s.Add(s)
	}
	c.pool.Put(v)
}

// Add folds totals into the first cell — for exclusive-hold paths
// (merge, subtract) where striping buys nothing.
func (c *runCounts) Add(f, s int64) {
	c.cells[0].f.Add(f)
	c.cells[0].s.Add(s)
}

// Load sums the cells: exact under gate.Lock; a lock-free reader gets a
// momentary view, same as the single atomic pair this replaces.
func (c *runCounts) Load() (f, s int64) {
	for i := range c.cells {
		f += c.cells[i].f.Load()
		s += c.cells[i].s.Load()
	}
	return f, s
}

// Store resets every cell and sets the totals. Callers must exclude
// concurrent bumps.
func (c *runCounts) Store(f, s int64) {
	for i := range c.cells {
		c.cells[i].f.Store(0)
		c.cells[i].s.Store(0)
	}
	c.cells[0].f.Store(f)
	c.cells[0].s.Store(s)
}

// enableDeltaHistory turns on delta serving: state mutations are
// recorded as delta events under the given per-boot epoch. maxEvents 0
// picks the default; callers must invoke this before ingestion starts.
// No-op when run-level retention is disabled (deltas replay the run
// window, so there is nothing to serve without one).
func (a *shardedAgg) enableDeltaHistory(maxEvents int, maxBytes int64, epoch uint64) {
	if a.log == nil {
		return
	}
	if maxEvents == 0 {
		maxEvents = defaultDeltaHistory
	}
	a.hist = &deltaHist{maxEvents: maxEvents, maxBytes: maxBytes}
	a.epoch = epoch
}

// noteLocked records one state mutation; callers hold logMu (plus gate,
// either side) and only call when hist is enabled.
func (a *shardedAgg) noteLocked(kind byte, data []byte) {
	a.stateVer++
	a.hist.add(corpus.DeltaEvent{Kind: kind, Data: data})
}

// Apply folds one report into the aggregate and the run log, evicting
// (and un-counting) runs the retention caps no longer cover — the
// oldest run when the log is at its count capacity, plus any runs
// older than the age cap. Safe for concurrent use.
func (a *shardedAgg) Apply(r *report.Report) {
	a.gate.RLock()
	defer a.gate.RUnlock()
	a.applyOne(r, nil, corpus.NoKey)
}

// ApplyBatch folds a whole batch atomically with respect to snapshots
// and queries: the gate is held across every report, and after (when
// non-nil) runs under the same hold with the batch's encoded run-log
// records — the point where callers mark the batch's WAL sequence
// applied and stash the records for revoke reversal, so a concurrent
// snapshot can never capture half a batch or a mark without its state.
// encoded, when non-nil, supplies each report's AppendRecord bytes
// (index-aligned with reports) so a caller that already encoded the
// batch — the WAL append path — doesn't pay for it twice. key is the
// batch's routing-key hash (corpus.NoKey when unknown); every run in a
// batch shares one submitting client and hence one key. recs is nil
// when retention is disabled.
func (a *shardedAgg) ApplyBatch(reports []*report.Report, encoded [][]byte, key uint64, after func(recs [][]byte)) [][]byte {
	a.gate.RLock()
	defer a.gate.RUnlock()
	var recs, evicted [][]byte
	if a.log != nil {
		recs = make([][]byte, 0, len(reports))
		now := a.now().UnixNano()
		var scratch *[]byte
		if encoded == nil {
			scratch = a.getEncBuf()
		}
		a.logMu.Lock()
		if a.maxAge > 0 {
			// One age sweep covers the whole batch: every append below is
			// stamped with this same now, so nothing can expire mid-batch
			// — the per-report sweeps this replaces would all be no-ops.
			evicted = a.log.evictExpired(now - int64(a.maxAge))
			if a.hist != nil {
				for range evicted {
					a.noteLocked(corpus.DeltaEvict, nil)
				}
			}
		}
		for i, r := range reports {
			var pre []byte
			owned := encoded != nil
			if owned {
				pre = encoded[i]
			} else {
				*scratch = report.AppendRecord((*scratch)[:0], r)
				pre = *scratch
			}
			rec, ev := a.log.append(pre, owned, key, now)
			if a.hist != nil {
				for range ev {
					a.noteLocked(corpus.DeltaEvict, nil)
				}
				a.noteLocked(corpus.DeltaAppend, rec)
			}
			evicted = append(evicted, ev...)
			recs = append(recs, rec)
		}
		a.logMu.Unlock()
		if scratch != nil {
			a.encPool.Put(scratch)
		}
	}
	a.bumpBatch(reports)
	a.uncount(evicted)
	if after != nil {
		after(recs)
	}
	return recs
}

// getEncBuf fetches a pooled record-encode scratch buffer.
func (a *shardedAgg) getEncBuf() *[]byte {
	if v := a.encPool.Get(); v != nil {
		return v.(*[]byte)
	}
	return new([]byte)
}

// applyOne folds one report; callers hold gate.RLock. pre, when
// non-nil, is the report's pre-computed AppendRecord encoding. Returns
// the canonical (interned) run-log record (nil when retention is
// disabled).
func (a *shardedAgg) applyOne(r *report.Report, pre []byte, key uint64) []byte {
	var rec []byte
	var evicted [][]byte
	if a.log != nil {
		owned := pre != nil
		var scratch *[]byte
		if pre == nil {
			scratch = a.getEncBuf()
			*scratch = report.AppendRecord((*scratch)[:0], r)
			pre = *scratch
		}
		now := a.now().UnixNano()
		a.logMu.Lock()
		if a.maxAge > 0 {
			evicted = a.log.evictExpired(now - int64(a.maxAge))
		}
		var ev [][]byte
		rec, ev = a.log.append(pre, owned, key, now)
		evicted = append(evicted, ev...)
		if a.hist != nil {
			// Recording the evictions before the append is equivalent to
			// the interleaved order above: the byte cap never evicts the
			// newest run, and counter updates commute.
			for range evicted {
				a.noteLocked(corpus.DeltaEvict, nil)
			}
			a.noteLocked(corpus.DeltaAppend, rec)
		}
		a.logMu.Unlock()
		if scratch != nil {
			a.encPool.Put(scratch)
		}
	}

	a.bump(r, +1)
	a.uncount(evicted)
	return rec
}

// foldScratch is the batched fold's workspace: dense per-id delta
// arrays (sized to the aggregate's dims) plus the lists of ids a batch
// actually touched, so flushing is proportional to the batch, not the
// dims. Deltas are always back to zero when the scratch returns to the
// pool.
type foldScratch struct {
	fSite, sSite, fPred, sPred []int64
	tfSite, tsSite             []int32
	tfPred, tsPred             []int32
}

// bumpBatch folds a whole batch of +1 reports into the counters with
// one add per distinct (id, outcome) the batch touches — and one
// stripe-lock acquisition per stripe touched — instead of one per
// report occurrence. Callers hold gate.RLock.
func (a *shardedAgg) bumpBatch(reports []*report.Report) {
	if len(reports) == 0 {
		return
	}
	if len(reports) == 1 {
		a.bump(reports[0], +1)
		return
	}
	var sc *foldScratch
	if v := a.foldPool.Get(); v != nil {
		sc = v.(*foldScratch)
	} else {
		sc = &foldScratch{}
	}
	if len(sc.fSite) < a.numSites {
		sc.fSite = make([]int64, a.numSites)
		sc.sSite = make([]int64, a.numSites)
	}
	if len(sc.fPred) < a.numPreds {
		sc.fPred = make([]int64, a.numPreds)
		sc.sPred = make([]int64, a.numPreds)
	}
	var nf, ns int64
	for _, r := range reports {
		site, pred := sc.sSite, sc.sPred
		touchedS, touchedP := &sc.tsSite, &sc.tsPred
		if r.Failed {
			site, pred = sc.fSite, sc.fPred
			touchedS, touchedP = &sc.tfSite, &sc.tfPred
			nf++
		} else {
			ns++
		}
		// Deltas are all +1, so a slot is first-touched exactly when it
		// is still zero.
		for _, id := range r.ObservedSites {
			if site[id] == 0 {
				*touchedS = append(*touchedS, id)
			}
			site[id]++
		}
		for _, id := range r.TruePreds {
			if pred[id] == 0 {
				*touchedP = append(*touchedP, id)
			}
			pred[id]++
		}
	}
	flushFold(a.fObsSite, sc.fSite, sc.tfSite, a.siteMu, a.siteBlock)
	flushFold(a.sObsSite, sc.sSite, sc.tsSite, a.siteMu, a.siteBlock)
	flushFold(a.fPred, sc.fPred, sc.tfPred, a.predMu, a.predBlock)
	flushFold(a.sPred, sc.sPred, sc.tsPred, a.predMu, a.predBlock)
	sc.tfSite, sc.tsSite = sc.tfSite[:0], sc.tsSite[:0]
	sc.tfPred, sc.tsPred = sc.tfPred[:0], sc.tsPred[:0]
	a.foldPool.Put(sc)
	a.runs.BumpN(nf, ns)
}

// flushFold lands accumulated deltas with one plain add per touched
// id under the covering stripe locks, re-zeroing the dense array as it
// goes. Sorting the touched list first makes the walk take each stripe
// lock once and touch dst in ascending (cache-friendly) order.
func flushFold(dst, deltas []int64, touched []int32, mus []stripeMutex, block int) {
	slices.Sort(touched)
	i := 0
	for i < len(touched) {
		s := int(touched[i]) / block
		hi := int32((s + 1) * block)
		mus[s].Lock()
		for i < len(touched) && touched[i] < hi {
			id := touched[i]
			dst[id] += deltas[id]
			deltas[id] = 0
			i++
		}
		mus[s].Unlock()
	}
}

// uncount subtracts evicted run-log records from the counters. Callers
// must hold gate (either side).
func (a *shardedAgg) uncount(evicted [][]byte) {
	if len(evicted) == 0 {
		return
	}
	// The records were produced by AppendRecord on already-validated
	// reports, so decoding cannot fail; a corrupted record would mean
	// memory corruption, and dropping it silently would desync the
	// counters from the log.
	old, err := decodeRecords(evicted, a.numSites, a.numPreds)
	if err != nil {
		panic(err)
	}
	for _, r := range old {
		a.bump(r, -1)
	}
}

// EvictExpired evicts (and un-counts) runs older than the age cap, so
// retention holds even across idle stretches with no ingest. No-op
// when the log or the age cap is disabled. Safe for concurrent use.
func (a *shardedAgg) EvictExpired() {
	if a.log == nil || a.maxAge <= 0 {
		return
	}
	a.gate.RLock()
	defer a.gate.RUnlock()
	cutoff := a.now().UnixNano() - int64(a.maxAge)
	a.logMu.Lock()
	evicted := a.log.evictExpired(cutoff)
	if a.hist != nil {
		for range evicted {
			a.noteLocked(corpus.DeltaEvict, nil)
		}
	}
	a.logMu.Unlock()
	a.uncount(evicted)
}

// MergeSegment folds a peer collector's exported state in: the peer's
// counters add onto ours (exact, since every counter is a sum over
// independent runs), and its retained runs join the log *without*
// re-counting — the snapshot already includes them — while retention
// caps apply to them as usual. The whole merge is atomic with respect
// to snapshots and score queries; after (when non-nil) runs under the
// same hold with the joined runs' encoded records (nil when retention
// is disabled) — where the caller marks the merge's WAL sequence
// applied and stashes the records so the merge is revocable (a
// migration chunk whose source crashed mid-handoff is un-applied by
// exactly these bytes). keys, when non-nil, carries the peer's
// per-record routing-key hashes (aligned with reports) so migrated
// runs stay addressable by range on this shard; nil keys joins the
// runs unkeyed.
func (a *shardedAgg) MergeSegment(snap *corpus.AggSnapshot, reports []*report.Report, keys []uint64, after func(recs [][]byte)) {
	a.gate.Lock()
	defer a.gate.Unlock()
	for i, v := range snap.FobsSite {
		a.fObsSite[i] += v
	}
	for i, v := range snap.SobsSite {
		a.sObsSite[i] += v
	}
	for i, v := range snap.FPred {
		a.fPred[i] += v
	}
	for i, v := range snap.SPred {
		a.sPred[i] += v
	}
	a.runs.Add(snap.NumF, snap.NumS)

	var evicted, joined [][]byte
	if a.log != nil {
		joined = make([][]byte, 0, len(reports))
		now := a.now().UnixNano()
		a.logMu.Lock()
		if a.hist != nil {
			// The counter fold becomes one 'M' event carrying the peer
			// snapshot; the joined runs follow as uncounted 'J' appends.
			clean := *snap
			clean.WALSeq, clean.WALIslands = 0, nil
			var buf bytes.Buffer
			if err := corpus.SaveAggSnapshot(&buf, &clean); err == nil {
				a.noteLocked(corpus.DeltaMerge, buf.Bytes())
			} else {
				// An unencodable snapshot cannot reach warm views; force
				// them to full-resync rather than serve a gap.
				a.stateVer++
				a.hist.reset()
			}
		}
		if a.maxAge > 0 {
			ev := a.log.evictExpired(now - int64(a.maxAge))
			if a.hist != nil {
				for range ev {
					a.noteLocked(corpus.DeltaEvict, nil)
				}
			}
			evicted = append(evicted, ev...)
		}
		for i, r := range reports {
			key := corpus.NoKey
			if keys != nil {
				key = keys[i]
			}
			rec, ev := a.log.append(report.AppendRecord(nil, r), true, key, now)
			joined = append(joined, rec)
			if a.hist != nil {
				for range ev {
					a.noteLocked(corpus.DeltaEvict, nil)
				}
				a.noteLocked(corpus.DeltaJoin, rec)
			}
			evicted = append(evicted, ev...)
		}
		a.logMu.Unlock()
	}
	a.uncount(evicted)
	if after != nil {
		after(joined)
	}
}

// bump adds delta to every counter the report touches, with lock-free
// atomic adds. Callers must hold gate.RLock (or stronger).
func (a *shardedAgg) bump(r *report.Report, delta int64) {
	siteCounts, predCounts := a.sObsSite, a.sPred
	if r.Failed {
		siteCounts, predCounts = a.fObsSite, a.fPred
	}
	addStriped(siteCounts, r.ObservedSites, delta, a.siteMu, a.siteBlock)
	addStriped(predCounts, r.TruePreds, delta, a.predMu, a.predBlock)

	if r.Failed {
		a.runs.BumpN(delta, 0)
	} else {
		a.runs.BumpN(0, delta)
	}
}

// Runs returns the (failing, successful) run counts currently retained.
func (a *shardedAgg) Runs() (numF, numS int64) {
	return a.runs.Load()
}

// Snapshot captures a consistent copy of all counters together with the
// run-log records they describe (nil when retention is disabled). The
// record slices are immutable and safe to decode without locks.
func (a *shardedAgg) Snapshot(fingerprint uint64) (*corpus.AggSnapshot, [][]byte) {
	snap, recs, _, _, _ := a.SnapshotState(fingerprint, nil)
	return snap, recs
}

// SnapshotState is Snapshot plus the delta-sync coordinates the state
// was captured at: the per-boot epoch and the state version the
// returned counters+window correspond to (both zero when delta serving
// is disabled). capture, when non-nil, runs on the snapshot under the
// same exclusive hold — the point where the server stamps the WAL
// watermark, so checkpoint state and WAL coverage cannot tear.
func (a *shardedAgg) SnapshotState(fingerprint uint64, capture func(*corpus.AggSnapshot)) (*corpus.AggSnapshot, [][]byte, []uint64, uint64, uint64) {
	a.gate.Lock()
	defer a.gate.Unlock()
	numF, numS := a.runs.Load()
	snap := &corpus.AggSnapshot{
		NumSites:    a.numSites,
		NumPreds:    a.numPreds,
		Fingerprint: fingerprint,
		NumF:        numF,
		NumS:        numS,
		FobsSite:    append([]int64{}, a.fObsSite...),
		SobsSite:    append([]int64{}, a.sObsSite...),
		FPred:       append([]int64{}, a.fPred...),
		SPred:       append([]int64{}, a.sPred...),
	}
	var recs [][]byte
	var keys []uint64
	if a.log != nil {
		recs, keys = a.log.recordsKeyed()
	}
	snap.Logged = int64(len(recs))
	var epoch, ver uint64
	if a.hist != nil {
		// No mutator can be active under gate.Lock, so the version is
		// exactly the one the captured counters correspond to.
		epoch, ver = a.epoch, a.stateVer
	}
	if capture != nil {
		capture(snap)
	}
	return snap, recs, keys, epoch, ver
}

// DeltaCapable reports whether delta serving is enabled.
func (a *shardedAgg) DeltaCapable() bool {
	if a.log == nil {
		return false
	}
	a.logMu.Lock()
	defer a.logMu.Unlock()
	return a.hist != nil
}

// DeltaSince returns the state-mutation events that advance a copy of
// this collector's state at version since (within the given epoch) to
// the current version. ok is false when the request cannot be served
// incrementally — delta serving disabled, a different epoch (the
// collector restarted), or since outside the retained history — in
// which case the caller falls back to a full snapshot. The returned
// events share immutable Data bytes and are safe to encode without
// locks.
func (a *shardedAgg) DeltaSince(epoch, since uint64) (events []corpus.DeltaEvent, from, to uint64, ok bool) {
	if a.log == nil {
		return nil, 0, 0, false
	}
	a.logMu.Lock()
	defer a.logMu.Unlock()
	if a.hist == nil || epoch != a.epoch || since > a.stateVer {
		return nil, 0, 0, false
	}
	base := a.stateVer - uint64(a.hist.len())
	if since < base {
		return nil, 0, 0, false
	}
	return a.hist.since(int(since - base)), since, a.stateVer, true
}

// RemoveRecords removes up to one log occurrence per given encoded
// record (matching by exact bytes — the canonical AppendRecord
// encoding) and subtracts the removed runs from the counters. It
// serves both revocation (un-applying a batch that a router failover
// caused to land on two shards) and migration handoff eviction
// (removing the runs a delivered export chunk carried). Records the
// retention caps already evicted are simply not found (they were
// un-counted at eviction), which makes a retry of the same removal a
// no-op — the property the migration controller's crash repair leans
// on. Removal has no incremental delta representation, so the event
// history resets and warm views full-resync. Returns the removed
// records (for WAL logging); len() of it is the removed-run count.
func (a *shardedAgg) RemoveRecords(recs [][]byte) [][]byte {
	if a.log == nil || len(recs) == 0 {
		return nil
	}
	a.gate.Lock()
	defer a.gate.Unlock()
	a.logMu.Lock()
	removed := a.log.remove(recs)
	if a.hist != nil && len(removed) > 0 {
		a.stateVer++
		a.hist.reset()
	}
	a.logMu.Unlock()
	a.uncount(removed)
	return removed
}

// Restore overwrites the counters from a snapshot. Callers must ensure
// no concurrent Apply (it is used before a server starts ingesting).
func (a *shardedAgg) Restore(snap *corpus.AggSnapshot) {
	a.gate.Lock()
	defer a.gate.Unlock()
	copy(a.fObsSite, snap.FobsSite)
	copy(a.sObsSite, snap.SobsSite)
	copy(a.fPred, snap.FPred)
	copy(a.sPred, snap.SPred)
	a.runs.Store(snap.NumF, snap.NumS)
}

// RestoreLog refills the run log from decoded reports (oldest first),
// without touching the counters, and returns how many runs the
// retention caps let it keep. No-op (returning 0) when retention is
// disabled.
func (a *shardedAgg) RestoreLog(reports []*report.Report, keys []uint64) (retained int) {
	if a.log == nil {
		return 0
	}
	a.gate.Lock()
	defer a.gate.Unlock()
	return a.log.restore(reports, keys, a.now().UnixNano())
}

// RecountFromLog rebuilds every counter from the retained run log —
// the log is the source of truth whenever the two disagree (e.g. a
// crash tore the snapshot pair). Callers must ensure no concurrent
// Apply.
func (a *shardedAgg) RecountFromLog() error {
	a.gate.Lock()
	defer a.gate.Unlock()
	for _, xs := range [][]int64{a.fObsSite, a.sObsSite, a.fPred, a.sPred} {
		for i := range xs {
			xs[i] = 0
		}
	}
	a.runs.Store(0, 0)
	if a.log == nil {
		return nil
	}
	reports, err := decodeRecords(a.log.records(), a.numSites, a.numPreds)
	if err != nil {
		return err
	}
	for _, r := range reports {
		a.bump(r, +1)
	}
	return nil
}

// LogView returns the retained run-log records in arrival order along
// with the log version (for cache invalidation). ok is false when
// retention is disabled. The records are immutable and may be decoded
// without holding any lock; a view taken concurrently with ingestion is
// a consistent prefix of the stream as the log saw it.
func (a *shardedAgg) LogView() (recs [][]byte, version uint64, ok bool) {
	if a.log == nil {
		return nil, 0, false
	}
	a.logMu.Lock()
	defer a.logMu.Unlock()
	return a.log.records(), a.log.version, true
}

// LogVersion returns the current run-log version (0 when disabled).
func (a *shardedAgg) LogVersion() uint64 {
	if a.log == nil {
		return 0
	}
	a.logMu.Lock()
	defer a.logMu.Unlock()
	return a.log.version
}

// runLogStats is a consistent read of the run log's retention state.
type runLogStats struct {
	retained int   // runs currently retained
	evicted  int64 // runs evicted by any retention cap since startup
	capRuns  int   // configured count cap (0 = retention disabled)
	bytes    int64 // summed (logical) encoded size of retained records
	maxBytes int64 // configured byte cap (0 = no byte cap)
	interned int   // distinct membership vectors behind the retained runs
}

// LogStats returns the run log's retention state (zero when retention
// is disabled).
func (a *shardedAgg) LogStats() runLogStats {
	if a.log == nil {
		return runLogStats{}
	}
	a.logMu.Lock()
	defer a.logMu.Unlock()
	return runLogStats{
		retained: a.log.len(),
		evicted:  a.log.evicted,
		capRuns:  a.log.cap,
		bytes:    a.log.bytes,
		maxBytes: a.log.maxBytes,
		interned: a.log.internedCount(),
	}
}

// SiteObservedRuns returns, under one consistent capture, the number of
// retained runs that observed each site (failing + successful) and the
// total retained run count — the planner's raw input.
func (a *shardedAgg) SiteObservedRuns() (observed []int64, runs int64) {
	a.gate.Lock()
	defer a.gate.Unlock()
	observed = make([]int64, a.numSites)
	for i := range observed {
		observed[i] = a.fObsSite[i] + a.sObsSite[i]
	}
	numF, numS := a.runs.Load()
	return observed, numF + numS
}

// Epoch returns the per-boot random epoch scoping this aggregate's
// append sequences (and delta-sync versions).
func (a *shardedAgg) Epoch() uint64 { return a.epoch }

// exportChunk is one bounded slice of a shard's migratable state: up
// to max retained runs matching ranges past sinceSeq, their keys, the
// counters those exact runs contribute (a chunk merged elsewhere and
// then evicted here nets to zero), and the watermark to resume from.
type exportChunk struct {
	snap      *corpus.AggSnapshot
	recs      [][]byte
	keys      []uint64
	watermark uint64
	remaining int // matching runs left past the watermark
	epoch     uint64
}

// ExportChunk selects the next chunk of a range migration. nil ranges
// is a full drain (every retained run matches, keyed or not). The
// chunk counters are computed from the selected records themselves, so
// chunk.snap is exactly the runs' contribution regardless of what else
// the counters hold. Returns an error only on a corrupt log record.
func (a *shardedAgg) ExportChunk(ranges []corpus.KeyRange, sinceSeq uint64, max int) (*exportChunk, error) {
	if a.log == nil {
		return &exportChunk{snap: corpus.NewAggSnapshot(a.numSites, a.numPreds), watermark: sinceSeq, epoch: a.epoch}, nil
	}
	a.logMu.Lock()
	recs, keys, watermark, remaining := a.log.selectRange(ranges, sinceSeq, max)
	a.logMu.Unlock()
	snap := corpus.NewAggSnapshot(a.numSites, a.numPreds)
	reports, err := decodeRecords(recs, a.numSites, a.numPreds)
	if err != nil {
		return nil, err
	}
	for _, r := range reports {
		snap.ApplyReport(r, +1)
	}
	snap.Logged = int64(len(recs))
	return &exportChunk{snap: snap, recs: recs, keys: keys, watermark: watermark, remaining: remaining, epoch: a.epoch}, nil
}

// ComputeResidual returns the counters not explained by the retained
// run window — merged-in state whose own windows had already evicted
// runs, or legacy restores without a log. It is read-only: a drain
// controller fetches the residual, delivers it to a successor as a
// counters-only merge (idempotent under a deterministic batch id), and
// only then commits the subtraction here via SubtractSnapshot — so a
// crash at any point re-computes the identical residual (the shard is
// quiesced during a drain) and the retry converges. Returns nil when
// there is no residual.
func (a *shardedAgg) ComputeResidual() (*corpus.AggSnapshot, error) {
	a.gate.Lock()
	defer a.gate.Unlock()
	numF, numS := a.runs.Load()
	residual := &corpus.AggSnapshot{
		NumSites: a.numSites,
		NumPreds: a.numPreds,
		NumF:     numF,
		NumS:     numS,
		FobsSite: append([]int64{}, a.fObsSite...),
		SobsSite: append([]int64{}, a.sObsSite...),
		FPred:    append([]int64{}, a.fPred...),
		SPred:    append([]int64{}, a.sPred...),
	}
	var recs [][]byte
	if a.log != nil {
		a.logMu.Lock()
		recs = a.log.records()
		a.logMu.Unlock()
	}
	reports, err := decodeRecords(recs, a.numSites, a.numPreds)
	if err != nil {
		return nil, err
	}
	for _, r := range reports {
		residual.ApplyReport(r, -1)
	}
	zero := residual.NumF == 0 && residual.NumS == 0
	for _, xs := range [][]int64{residual.FobsSite, residual.SobsSite, residual.FPred, residual.SPred} {
		for _, v := range xs {
			if v != 0 {
				zero = false
			}
		}
	}
	if zero {
		return nil, nil
	}
	return residual, nil
}

// SubtractSnapshot subtracts a residual snapshot from the counters —
// the commit step of a drain handoff, and its WAL 'D' replay. It
// refuses (changing nothing) if any counter would go negative, which
// catches a double-commit that slipped past batch-id dedup. after,
// when non-nil, runs under the same exclusive hold, where the caller
// marks the commit's WAL sequence applied so a concurrent checkpoint
// can never capture the subtraction without its coverage mark. The
// subtraction has no incremental delta representation, so warm views
// full-resync.
func (a *shardedAgg) SubtractSnapshot(snap *corpus.AggSnapshot, after func()) error {
	a.gate.Lock()
	defer a.gate.Unlock()
	if numF, numS := a.runs.Load(); numF < snap.NumF || numS < snap.NumS {
		return fmt.Errorf("collector: residual subtraction would make run counts negative")
	}
	for i, v := range snap.FobsSite {
		if a.fObsSite[i] < v {
			return fmt.Errorf("collector: residual subtraction would make site %d counters negative", i)
		}
	}
	for i, v := range snap.SobsSite {
		if a.sObsSite[i] < v {
			return fmt.Errorf("collector: residual subtraction would make site %d counters negative", i)
		}
	}
	for i, v := range snap.FPred {
		if a.fPred[i] < v {
			return fmt.Errorf("collector: residual subtraction would make predicate %d counters negative", i)
		}
	}
	for i, v := range snap.SPred {
		if a.sPred[i] < v {
			return fmt.Errorf("collector: residual subtraction would make predicate %d counters negative", i)
		}
	}
	for i, v := range snap.FobsSite {
		a.fObsSite[i] -= v
	}
	for i, v := range snap.SobsSite {
		a.sObsSite[i] -= v
	}
	for i, v := range snap.FPred {
		a.fPred[i] -= v
	}
	for i, v := range snap.SPred {
		a.sPred[i] -= v
	}
	a.runs.Add(-snap.NumF, -snap.NumS)
	a.logMu.Lock()
	if a.hist != nil {
		a.stateVer++
		a.hist.reset()
	}
	a.logMu.Unlock()
	if after != nil {
		after()
	}
	return nil
}

// LogSeq returns the most recently assigned run-log append sequence
// (0 when retention is disabled or nothing appended this boot).
func (a *shardedAgg) LogSeq() uint64 {
	if a.log == nil {
		return 0
	}
	a.logMu.Lock()
	defer a.logMu.Unlock()
	return a.log.lastSeq
}

// ToAgg converts the live counters into a core.Agg, attaching each
// predicate's site-observation counts via siteOf — the exact shape
// core.Aggregate produces, so all of core's scoring applies unchanged.
func (a *shardedAgg) ToAgg(siteOf []int32) *core.Agg {
	a.gate.Lock()
	defer a.gate.Unlock()
	numF, numS := a.runs.Load()
	agg := &core.Agg{
		Stats: make([]core.Stats, a.numPreds),
		NumF:  int(numF),
		NumS:  int(numS),
	}
	for p := 0; p < a.numPreds; p++ {
		site := siteOf[p]
		agg.Stats[p] = core.Stats{
			F:    int(a.fPred[p]),
			S:    int(a.sPred[p]),
			Fobs: int(a.fObsSite[site]),
			Sobs: int(a.sObsSite[site]),
		}
	}
	return agg
}
