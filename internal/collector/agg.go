// Package collector implements the paper's deployment model as a
// networked system: thousands of instrumented clients ship feedback
// reports to a central server, which aggregates them incrementally and
// serves live rankings (§2's "central database" made concrete). The
// server keeps two complementary representations of the stream: sharded
// aggregate counters whose totals are exactly what core.Aggregate would
// compute over the same report set (serving the pre-elimination
// /v1/scores ranking), and a compact run-level membership log that
// records which predicates each retained run observed true (serving the
// full /v1/predictors cause-isolation ranking — elimination discards
// runs, so counters alone cannot drive it). The log is bounded by a
// retention cap; when a run is evicted, its contribution is subtracted
// from the counters, so counters and log always describe exactly the
// retained window.
//
// The server's counters live in an internal/obs registry exported at
// GET /metrics (Prometheus text format, documented in METRICS.md);
// the /v1/stats JSON reads the same registry objects, so the two
// surfaces cannot disagree.
package collector

import (
	"sync"
	"sync/atomic"
	"time"

	"cbi/internal/core"
	"cbi/internal/corpus"
	"cbi/internal/report"
)

// shardedAgg maintains the per-site and per-predicate tallies of
// core.AggregateSubset under concurrent ingestion, plus the run-level
// membership log. Counters are striped into contiguous blocks, each
// guarded by its own mutex; because report id lists are sorted
// ascending, an applier walks each list taking each stripe lock at most
// once.
//
// A top-level RWMutex makes whole reports atomic with respect to
// readers: appliers hold the read side for the duration of one report
// (counter bumps, log append, and eviction decrement together), while
// snapshots and score queries take the write side, so they never
// observe a half-applied report or a log/counter mismatch.
type shardedAgg struct {
	numSites, numPreds   int
	siteBlock, predBlock int // stripe widths (ids per stripe)

	gate        sync.RWMutex
	siteStripes []sync.Mutex
	predStripes []sync.Mutex

	// Guarded by the stripe owning the index.
	fObsSite, sObsSite []int64
	fPred, sPred       []int64

	// Run counts, updated atomically after a report's counters land.
	numF, numS atomic.Int64

	// logMu guards log; nil log means run-level retention is disabled
	// (counters only, /v1/predictors unavailable).
	logMu sync.Mutex
	log   *runLog

	// maxAge, when positive, additionally evicts retained runs older
	// than the cap; now is the retention clock (time.Now outside tests).
	maxAge time.Duration
	now    func() time.Time
}

func newShardedAgg(numSites, numPreds, shards, runLogCap int, runLogMaxBytes int64, maxAge time.Duration, now func() time.Time) *shardedAgg {
	if shards < 1 {
		shards = 1
	}
	if now == nil {
		now = time.Now
	}
	a := &shardedAgg{
		numSites:    numSites,
		numPreds:    numPreds,
		siteBlock:   blockSize(numSites, shards),
		predBlock:   blockSize(numPreds, shards),
		siteStripes: make([]sync.Mutex, shards),
		predStripes: make([]sync.Mutex, shards),
		fObsSite:    make([]int64, numSites),
		sObsSite:    make([]int64, numSites),
		fPred:       make([]int64, numPreds),
		sPred:       make([]int64, numPreds),
		maxAge:      maxAge,
		now:         now,
	}
	if runLogCap > 0 {
		a.log = newRunLog(runLogCap, runLogMaxBytes)
	}
	return a
}

func blockSize(dim, shards int) int {
	b := (dim + shards - 1) / shards
	if b < 1 {
		b = 1
	}
	return b
}

// Apply folds one report into the aggregate and the run log, evicting
// (and un-counting) runs the retention caps no longer cover — the
// oldest run when the log is at its count capacity, plus any runs
// older than the age cap. Safe for concurrent use.
func (a *shardedAgg) Apply(r *report.Report) {
	a.gate.RLock()
	defer a.gate.RUnlock()

	var evicted [][]byte
	if a.log != nil {
		rec := report.AppendRecord(nil, r)
		now := a.now().UnixNano()
		a.logMu.Lock()
		if a.maxAge > 0 {
			evicted = a.log.evictExpired(now - int64(a.maxAge))
		}
		evicted = append(evicted, a.log.append(rec, now)...)
		a.logMu.Unlock()
	}

	a.bump(r, +1)
	a.uncount(evicted)
}

// uncount subtracts evicted run-log records from the counters. Callers
// must hold gate (either side).
func (a *shardedAgg) uncount(evicted [][]byte) {
	if len(evicted) == 0 {
		return
	}
	// The records were produced by AppendRecord on already-validated
	// reports, so decoding cannot fail; a corrupted record would mean
	// memory corruption, and dropping it silently would desync the
	// counters from the log.
	old, err := decodeRecords(evicted, a.numSites, a.numPreds)
	if err != nil {
		panic(err)
	}
	for _, r := range old {
		a.bump(r, -1)
	}
}

// EvictExpired evicts (and un-counts) runs older than the age cap, so
// retention holds even across idle stretches with no ingest. No-op
// when the log or the age cap is disabled. Safe for concurrent use.
func (a *shardedAgg) EvictExpired() {
	if a.log == nil || a.maxAge <= 0 {
		return
	}
	a.gate.RLock()
	defer a.gate.RUnlock()
	cutoff := a.now().UnixNano() - int64(a.maxAge)
	a.logMu.Lock()
	evicted := a.log.evictExpired(cutoff)
	a.logMu.Unlock()
	a.uncount(evicted)
}

// MergeSegment folds a peer collector's exported state in: the peer's
// counters add onto ours (exact, since every counter is a sum over
// independent runs), and its retained runs join the log *without*
// re-counting — the snapshot already includes them — while retention
// caps apply to them as usual. The whole merge is atomic with respect
// to snapshots and score queries.
func (a *shardedAgg) MergeSegment(snap *corpus.AggSnapshot, reports []*report.Report) {
	a.gate.Lock()
	defer a.gate.Unlock()
	for i, v := range snap.FobsSite {
		a.fObsSite[i] += v
	}
	for i, v := range snap.SobsSite {
		a.sObsSite[i] += v
	}
	for i, v := range snap.FPred {
		a.fPred[i] += v
	}
	for i, v := range snap.SPred {
		a.sPred[i] += v
	}
	a.numF.Add(snap.NumF)
	a.numS.Add(snap.NumS)

	var evicted [][]byte
	if a.log != nil {
		now := a.now().UnixNano()
		a.logMu.Lock()
		if a.maxAge > 0 {
			evicted = a.log.evictExpired(now - int64(a.maxAge))
		}
		for _, r := range reports {
			evicted = append(evicted, a.log.append(report.AppendRecord(nil, r), now)...)
		}
		a.logMu.Unlock()
	}
	a.uncount(evicted)
}

// bump adds delta to every counter the report touches. Callers must
// hold gate.RLock.
func (a *shardedAgg) bump(r *report.Report, delta int64) {
	siteCounts, predCounts := a.sObsSite, a.sPred
	if r.Failed {
		siteCounts, predCounts = a.fObsSite, a.fPred
	}
	bumpStriped(a.siteStripes, a.siteBlock, siteCounts, r.ObservedSites, delta)
	bumpStriped(a.predStripes, a.predBlock, predCounts, r.TruePreds, delta)

	if r.Failed {
		a.numF.Add(delta)
	} else {
		a.numS.Add(delta)
	}
}

// bumpStriped adds delta to counts[id] for each id in the ascending
// list, acquiring each stripe's lock once as the walk crosses stripes.
func bumpStriped(stripes []sync.Mutex, block int, counts []int64, ids []int32, delta int64) {
	held := -1
	for _, id := range ids {
		st := int(id) / block
		if st != held {
			if held >= 0 {
				stripes[held].Unlock()
			}
			stripes[st].Lock()
			held = st
		}
		counts[id] += delta
	}
	if held >= 0 {
		stripes[held].Unlock()
	}
}

// Runs returns the (failing, successful) run counts currently retained.
func (a *shardedAgg) Runs() (numF, numS int64) {
	return a.numF.Load(), a.numS.Load()
}

// Snapshot captures a consistent copy of all counters together with the
// run-log records they describe (nil when retention is disabled). The
// record slices are immutable and safe to decode without locks.
func (a *shardedAgg) Snapshot(fingerprint uint64) (*corpus.AggSnapshot, [][]byte) {
	a.gate.Lock()
	defer a.gate.Unlock()
	snap := &corpus.AggSnapshot{
		NumSites:    a.numSites,
		NumPreds:    a.numPreds,
		Fingerprint: fingerprint,
		NumF:        a.numF.Load(),
		NumS:        a.numS.Load(),
		FobsSite:    append([]int64{}, a.fObsSite...),
		SobsSite:    append([]int64{}, a.sObsSite...),
		FPred:       append([]int64{}, a.fPred...),
		SPred:       append([]int64{}, a.sPred...),
	}
	var recs [][]byte
	if a.log != nil {
		recs = a.log.records()
	}
	snap.Logged = int64(len(recs))
	return snap, recs
}

// Restore overwrites the counters from a snapshot. Callers must ensure
// no concurrent Apply (it is used before a server starts ingesting).
func (a *shardedAgg) Restore(snap *corpus.AggSnapshot) {
	a.gate.Lock()
	defer a.gate.Unlock()
	copy(a.fObsSite, snap.FobsSite)
	copy(a.sObsSite, snap.SobsSite)
	copy(a.fPred, snap.FPred)
	copy(a.sPred, snap.SPred)
	a.numF.Store(snap.NumF)
	a.numS.Store(snap.NumS)
}

// RestoreLog refills the run log from decoded reports (oldest first),
// without touching the counters, and returns how many runs the
// retention caps let it keep. No-op (returning 0) when retention is
// disabled.
func (a *shardedAgg) RestoreLog(reports []*report.Report) (retained int) {
	if a.log == nil {
		return 0
	}
	a.gate.Lock()
	defer a.gate.Unlock()
	return a.log.restore(reports, a.now().UnixNano())
}

// RecountFromLog rebuilds every counter from the retained run log —
// the log is the source of truth whenever the two disagree (e.g. a
// crash tore the snapshot pair). Callers must ensure no concurrent
// Apply.
func (a *shardedAgg) RecountFromLog() error {
	a.gate.Lock()
	defer a.gate.Unlock()
	for _, xs := range [][]int64{a.fObsSite, a.sObsSite, a.fPred, a.sPred} {
		for i := range xs {
			xs[i] = 0
		}
	}
	a.numF.Store(0)
	a.numS.Store(0)
	if a.log == nil {
		return nil
	}
	reports, err := decodeRecords(a.log.records(), a.numSites, a.numPreds)
	if err != nil {
		return err
	}
	for _, r := range reports {
		a.bump(r, +1)
	}
	return nil
}

// LogView returns the retained run-log records in arrival order along
// with the log version (for cache invalidation). ok is false when
// retention is disabled. The records are immutable and may be decoded
// without holding any lock; a view taken concurrently with ingestion is
// a consistent prefix of the stream as the log saw it.
func (a *shardedAgg) LogView() (recs [][]byte, version uint64, ok bool) {
	if a.log == nil {
		return nil, 0, false
	}
	a.logMu.Lock()
	defer a.logMu.Unlock()
	return a.log.records(), a.log.version, true
}

// LogVersion returns the current run-log version (0 when disabled).
func (a *shardedAgg) LogVersion() uint64 {
	if a.log == nil {
		return 0
	}
	a.logMu.Lock()
	defer a.logMu.Unlock()
	return a.log.version
}

// runLogStats is a consistent read of the run log's retention state.
type runLogStats struct {
	retained int   // runs currently retained
	evicted  int64 // runs evicted by any retention cap since startup
	capRuns  int   // configured count cap (0 = retention disabled)
	bytes    int64 // summed encoded size of retained records
	maxBytes int64 // configured byte cap (0 = no byte cap)
}

// LogStats returns the run log's retention state (zero when retention
// is disabled).
func (a *shardedAgg) LogStats() runLogStats {
	if a.log == nil {
		return runLogStats{}
	}
	a.logMu.Lock()
	defer a.logMu.Unlock()
	return runLogStats{
		retained: a.log.len(),
		evicted:  a.log.evicted,
		capRuns:  a.log.cap,
		bytes:    a.log.bytes,
		maxBytes: a.log.maxBytes,
	}
}

// SiteObservedRuns returns, under one consistent capture, the number of
// retained runs that observed each site (failing + successful) and the
// total retained run count — the planner's raw input.
func (a *shardedAgg) SiteObservedRuns() (observed []int64, runs int64) {
	a.gate.Lock()
	defer a.gate.Unlock()
	observed = make([]int64, a.numSites)
	for i := range observed {
		observed[i] = a.fObsSite[i] + a.sObsSite[i]
	}
	return observed, a.numF.Load() + a.numS.Load()
}

// ToAgg converts the live counters into a core.Agg, attaching each
// predicate's site-observation counts via siteOf — the exact shape
// core.Aggregate produces, so all of core's scoring applies unchanged.
func (a *shardedAgg) ToAgg(siteOf []int32) *core.Agg {
	a.gate.Lock()
	defer a.gate.Unlock()
	agg := &core.Agg{
		Stats: make([]core.Stats, a.numPreds),
		NumF:  int(a.numF.Load()),
		NumS:  int(a.numS.Load()),
	}
	for p := 0; p < a.numPreds; p++ {
		site := siteOf[p]
		agg.Stats[p] = core.Stats{
			F:    int(a.fPred[p]),
			S:    int(a.sPred[p]),
			Fobs: int(a.fObsSite[site]),
			Sobs: int(a.sObsSite[site]),
		}
	}
	return agg
}
