package collector

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriteRateLimitPerKey pins the collector's write throttle: each
// API key draws from its own token bucket, a limited request is
// refused with 429 + Retry-After before the body is read, and the
// refusals are counted in cbi_auth_rate_limited_total.
func TestWriteRateLimitPerKey(t *testing.T) {
	srv, err := New(Config{
		NumSites:  2,
		NumPreds:  4,
		SiteOf:    []int32{0, 0, 1, 1},
		RateLimit: 0.001, // effectively: the burst and nothing more
		RateBurst: 1,
		Logf:      func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	post := func(auth string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/reports", strings.NewReader("garbage"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", auth)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// First request spends key-a's burst token; it reaches the decoder
	// (and 400s on the garbage body) instead of being throttled.
	if resp := post("Bearer key-a"); resp.StatusCode == http.StatusTooManyRequests {
		t.Fatalf("first write for key-a throttled (%d); the burst token should admit it", resp.StatusCode)
	}
	resp := post("Bearer key-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second write for key-a = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limit 429 carries no Retry-After")
	}
	if resp := post("Bearer key-b"); resp.StatusCode == http.StatusTooManyRequests {
		t.Fatalf("first write for key-b throttled (%d); buckets must be per key", resp.StatusCode)
	}

	var metrics strings.Builder
	srv.Metrics().WritePrometheus(&metrics)
	if !strings.Contains(metrics.String(), "cbi_auth_rate_limited_total 1") {
		t.Fatalf("throttled request not counted in cbi_auth_rate_limited_total:\n%s", metrics.String())
	}
}
