package collector

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cbi/internal/corpus"
)

// TestSpeedPassEquivalence pins the hot-path rewrite (arena decode,
// batched stripe fold, run-log vector interning) to the slow path it
// replaced: the same corpus ingested report-by-report through the
// in-process API and as HTTP binary batches through the arena decoder
// must yield byte-identical /v1/scores, /v1/predictors, and snapshot
// files. Run under -race in CI so the pooled workspaces and atomic
// counters are exercised with the detector on.
func TestSpeedPassEquivalence(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()

	newSrv := func(name string) (*Server, string) {
		t.Helper()
		cfg := serverConfig(t)
		cfg.SnapshotPath = filepath.Join(t.TempDir(), name+".snap")
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Shutdown(context.Background()) })
		return srv, cfg.SnapshotPath
	}

	// Reference: one report at a time through the in-process path.
	refSrv, refSnap := newSrv("ref")
	for _, r := range in.Set.Reports {
		refSrv.Ingest(r)
	}
	waitApplied(t, refSrv, int64(len(in.Set.Reports)))

	// Hot path: HTTP binary batches through the arena decoder.
	hotSrv, hotSnap := newSrv("hot")
	ts := httptest.NewServer(hotSrv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, in.Set.NumSites, in.Set.NumPreds,
		WithBatchSize(64), WithRetry(3, 10*time.Millisecond))
	if err := client.SubmitSet(context.Background(), in.Set); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, hotSrv, int64(len(in.Set.Reports)))

	refTS := httptest.NewServer(refSrv.Handler())
	t.Cleanup(refTS.Close)

	get := func(base, path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, buf.Bytes())
		}
		return buf.Bytes()
	}

	for _, path := range []string{
		"/v1/scores?k=0",
		"/v1/predictors?k=0&affinity=3",
		"/v1/predictors?engine=ochiai&k=25",
		"/v1/predictors?engine=logreg&k=15",
	} {
		ref := get(refTS.URL, path)
		hot := get(ts.URL, path)
		if !bytes.Equal(ref, hot) {
			t.Errorf("%s: hot-path body differs from per-report reference", path)
		}
	}

	// Snapshots from the two servers must be byte-identical: counters,
	// run-log records, and record order all survived the rewrite.
	if err := refSrv.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := hotSrv.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"", corpus.RunLogPath("")} {
		refBytes, err := os.ReadFile(refSnap + suffix)
		if err != nil {
			t.Fatal(err)
		}
		hotBytes, err := os.ReadFile(hotSnap + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refBytes, hotBytes) {
			t.Errorf("snapshot file %q differs between hot path and reference", suffix)
		}
	}

	// The interned run log must hold no more distinct vectors than
	// retained runs, and the same count on both servers.
	refStats, hotStats := refSrv.agg.LogStats(), hotSrv.agg.LogStats()
	if refStats.interned != hotStats.interned {
		t.Errorf("interned vectors differ: ref=%d hot=%d", refStats.interned, hotStats.interned)
	}
	if hotStats.interned > hotStats.retained {
		t.Errorf("interned=%d exceeds retained runs=%d", hotStats.interned, hotStats.retained)
	}
	if hotStats.interned == 0 && hotStats.retained > 0 {
		t.Error("run log retains runs but interning table is empty")
	}
}
