package collector

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"cbi/internal/report"
)

// TestAPIKeyAuth locks the write endpoints behind bearer keys: requests
// without a valid key get 401 (and the auth_rejected stat), requests
// with any configured key pass, and the read endpoints stay open.
func TestAPIKeyAuth(t *testing.T) {
	res := testCorpus(t)
	in := res.CoreInput()
	cfg := serverConfig(t)
	cfg.APIKeys = []string{"alpha-key", "beta-key"}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := encodeBatch(t, in, in.Set.Reports[:3])
	post := func(auth string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/reports", bytes.NewReader(batch))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/x-cbi-reports")
		req.Header.Set("Content-Encoding", "gzip")
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusUnauthorized {
			if www := resp.Header.Get("WWW-Authenticate"); www == "" {
				t.Fatal("401 without WWW-Authenticate header")
			}
		}
		return resp.StatusCode
	}

	for _, bad := range []string{"", "Bearer wrong-key", "Bearer ", "Basic alpha-key", "alpha-key"} {
		if code := post(bad); code != http.StatusUnauthorized {
			t.Fatalf("POST with auth %q = %d, want 401", bad, code)
		}
	}
	rejected := srv.StatsNow().AuthRejected
	if rejected != 5 {
		t.Fatalf("auth_rejected = %d, want 5", rejected)
	}
	if srv.StatsNow().Runs != 0 {
		t.Fatal("unauthorized batches were ingested")
	}

	for _, good := range []string{"Bearer alpha-key", "Bearer beta-key", "bearer alpha-key"} {
		if code := post(good); code != http.StatusAccepted {
			t.Fatalf("POST with auth %q = %d, want 202", good, code)
		}
	}
	waitApplied(t, srv, 9)

	// /v1/merge is gated the same way.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/merge", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated POST /v1/merge = %d, want 401", resp.StatusCode)
	}

	// Reads stay open.
	for _, path := range []string{"/v1/stats", "/v1/scores?k=5", "/healthz", "/v1/snapshot"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without key = %d, want 200", path, resp.StatusCode)
		}
	}

	// The client option wires the key end to end.
	client := NewClient(ts.URL, in.Set.NumSites, in.Set.NumPreds,
		WithAPIKey("beta-key"), WithRetry(0, 0))
	if err := client.SubmitSet(context.Background(), &report.Set{
		NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds,
		Reports: in.Set.Reports[:4],
	}); err != nil {
		t.Fatalf("keyed client rejected: %v", err)
	}
	badClient := NewClient(ts.URL, in.Set.NumSites, in.Set.NumPreds,
		WithAPIKey("not-a-key"), WithRetry(0, 0))
	if err := badClient.SubmitSet(context.Background(), &report.Set{
		NumSites: in.Set.NumSites, NumPreds: in.Set.NumPreds,
		Reports: in.Set.Reports[:4],
	}); err == nil {
		t.Fatal("client with a wrong key was accepted")
	}
}
