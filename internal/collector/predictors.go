package collector

import (
	"cbi/internal/core"
	"cbi/internal/report"
	"cbi/internal/thermo"
)

// PredictorScores is one side (initial or effective) of a ranked
// predictor: the paper's per-predicate statistics, metrics, and bug
// thermometer over a report set.
type PredictorScores struct {
	Importance   float64 `json:"importance"`
	ImportanceCI float64 `json:"importance_ci"`
	Increase     float64 `json:"increase"`
	IncreaseCI   float64 `json:"increase_ci"`
	Failure      float64 `json:"failure"`
	Context      float64 `json:"context"`
	F            int     `json:"f"`
	S            int     `json:"s"`
	Fobs         int     `json:"fobs"`
	Sobs         int     `json:"sobs"`
	Thermo       Thermo  `json:"thermo"`
}

// Thermo is the bug-thermometer rendering data (paper §3.3): band
// fractions plus the log-scaled relative length.
type Thermo struct {
	Len01 float64 `json:"len01"`
	Black float64 `json:"black"`
	Dark  float64 `json:"dark"`
	Light float64 `json:"light"`
	White float64 `json:"white"`
	Obs   int     `json:"obs"`
}

// AffinityItem is one row of a predictor's affinity list: how much
// discarding the predictor's true runs drops this predicate's
// Importance (paper §4.1).
type AffinityItem struct {
	Pred   int     `json:"pred"`
	Before float64 `json:"before"`
	After  float64 `json:"after"`
	Drop   float64 `json:"drop"`
}

// PredictorEntry is one row of the GET /v1/predictors response: a
// predictor selected by the iterative elimination algorithm (§3.4), in
// selection order, with initial and effective views and its affinity
// list.
type PredictorEntry struct {
	Pred      int             `json:"pred"`
	Round     int             `json:"round"`
	Initial   PredictorScores `json:"initial"`
	Effective PredictorScores `json:"effective"`
	Affinity  []AffinityItem  `json:"affinity,omitempty"`
}

func toThermo(th thermo.Thermometer) Thermo {
	return Thermo{Len01: th.Len01, Black: th.Black, Dark: th.Dark,
		Light: th.Light, White: th.White, Obs: th.Obs}
}

func toPredictorScores(st core.Stats, sc core.Scores, maxObs int) PredictorScores {
	return PredictorScores{
		Importance:   sc.Importance,
		ImportanceCI: sc.ImportanceCI,
		Increase:     sc.Increase,
		IncreaseCI:   sc.IncreaseCI,
		Failure:      sc.Failure,
		Context:      sc.Context,
		F:            st.F,
		S:            st.S,
		Fobs:         st.Fobs,
		Sobs:         st.Sobs,
		Thermo:       toThermo(thermo.Compute(st, sc, maxObs)),
	}
}

// BuildPredictors runs the full cause-isolation pipeline over a report
// set: Increase-CI pruning, iterative elimination (discard proposal 1,
// capped at maxPredictors; 0 = no cap), then per-predictor affinity
// lists over the pruned candidate set (truncated to affinityK entries;
// 0 = none) and initial/effective bug thermometers.
//
// It is deliberately the ONLY path that renders ranked predictors in
// this package: the live /v1/predictors handler feeds it the decoded
// run log, the equivalence tests feed it the original batch corpus, and
// because both go through this one function — and every core step is
// order-independent with deterministic tie-breaking (see
// core.Eliminate) — the live output is element-for-element identical to
// batch cause isolation over the same runs.
func BuildPredictors(in core.Input, maxPredictors, affinityK int) []PredictorEntry {
	full := core.Aggregate(in)
	candidates := core.FilterByIncrease(full, core.Z95)
	ranked := core.Eliminate(in, core.ElimOptions{MaxPredictors: maxPredictors, Candidates: candidates})
	maxObs := full.NumF + full.NumS

	out := make([]PredictorEntry, 0, len(ranked))
	for _, rk := range ranked {
		e := PredictorEntry{
			Pred:      rk.Pred,
			Round:     rk.Round,
			Initial:   toPredictorScores(rk.Initial, rk.InitialScores, maxObs),
			Effective: toPredictorScores(rk.Effective, rk.EffectiveScores, maxObs),
		}
		if affinityK > 0 {
			aff := core.Affinity(in, rk.Pred, candidates)
			if len(aff) > affinityK {
				aff = aff[:affinityK]
			}
			for _, a := range aff {
				e.Affinity = append(e.Affinity, AffinityItem{
					Pred: a.Pred, Before: a.Before, After: a.After, Drop: a.Drop})
			}
		}
		out = append(out, e)
	}
	return out
}

// inputFromReports adapts a decoded run window into the batch
// pipeline's input shape.
func inputFromReports(numSites, numPreds int, siteOf []int32, reports []*report.Report) core.Input {
	return core.Input{
		Set:    &report.Set{NumSites: numSites, NumPreds: numPreds, Reports: reports},
		SiteOf: siteOf,
	}
}
