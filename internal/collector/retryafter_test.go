package collector

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestParseRetryAfter covers both RFC 9110 forms and the junk cases.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"5", 5 * time.Second, true},
		{"0", 0, true},
		{"-3", 0, false},
		{"soon", 0, false},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		// A date in the past means "now"; it must not go negative.
		{now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
	}
	for _, c := range cases {
		got, ok := parseRetryAfter(c.in, now)
		if got != c.want || ok != c.ok {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestClientHonorsRetryAfterZero is the bugfix regression: a 429 with
// "Retry-After: 0" means "retry now". The old client ignored zero and
// fell back to its exponential backoff, so with a large base backoff a
// shed batch sat idle for seconds. The fixed client must come back
// immediately.
func TestClientHonorsRetryAfterZero(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()

	// Base backoff of 30s: if the hint is ignored, this test times out.
	c := NewClient(ts.URL, 2, 2, WithBatchSize(1), WithRetry(3, 30*time.Second))
	start := time.Now()
	if err := c.Add(context.Background(), testReport(0)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry after 'Retry-After: 0' took %v; the hint was ignored", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", calls.Load())
	}
}

// TestClientHonorsRetryAfterDate accepts the HTTP-date form, which the
// old integer-only parse dropped on the floor.
func TestClientHonorsRetryAfterDate(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// A date already in the past: "retry now".
			w.Header().Set("Retry-After", time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat))
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 2, 2, WithBatchSize(1), WithRetry(3, 30*time.Second))
	start := time.Now()
	if err := c.Add(context.Background(), testReport(0)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry after HTTP-date Retry-After took %v; the hint was ignored", elapsed)
	}
}

// TestRetryAfterOnlyOn429And503: a 500 with a (bogus) Retry-After
// header must not override the client's own backoff policy — the hint
// is only meaningful on the two shed statuses.
func TestRetryAfterOnlyOn429And503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			http.Error(w, "oops", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 2, 2, WithBatchSize(1), WithRetry(3, time.Millisecond))
	start := time.Now()
	if err := c.Add(context.Background(), testReport(0)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("500 with Retry-After: 3600 delayed the retry %v; hint must be ignored on 500", elapsed)
	}
}
